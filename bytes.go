package repro

import (
	"sync"

	"repro/internal/core"
	"repro/internal/lpm"
	"repro/internal/packet"
	"repro/internal/rule"
)

// This file implements the raw-packet ingestion path of every Engine
// composition: wire bytes go in, verdicts come out, and the hot paths
// stay off the heap. The decoders write into caller-provided headers
// (internal/packet), the batch paths reuse pooled frame-slab decoders
// and result slabs, and the classifier core classifies into
// caller-owned result memory (LookupBatchInto), so a steady-state
// LookupBytes/LookupBytesBatch performs zero allocations per frame on
// the decomposition backend.

// rawBurstPool recycles the frame-slab decoders shared by the baseline
// and flow-cached batch paths.
var rawBurstPool = sync.Pool{New: func() any { return new(packet.Burst) }}

// v4RawScratch is the pooled working set of Classifier.LookupBytesBatch:
// the burst decoder plus the key-typed header slab and result slab that
// feed the core's caller-owned-memory batch lookup.
type v4RawScratch struct {
	burst packet.Burst
	hdrs  []core.Header[lpm.V4]
	res   []core.Result
}

var v4RawPool = sync.Pool{New: func() any { return new(v4RawScratch) }}

// v6RawScratch is the IPv6 counterpart for Classifier6.LookupBytesBatch.
type v6RawScratch struct {
	burst packet.Burst
	hdrs  []core.Header[lpm.V6]
	res   []core.Result
}

var v6RawPool = sync.Pool{New: func() any { return new(v6RawScratch) }}

// LookupBytes implements Engine: it decodes the IPv4-over-Ethernet frame
// in place and classifies the 5-tuple against the current RCU snapshot.
//
//repro:noalloc
func (c *Classifier) LookupBytes(frame []byte) (Result, error) {
	var h rule.Header
	if err := packet.DecodeEthernet(frame, &h); err != nil {
		return Result{}, err
	}
	res, _ := c.inner.Lookup(core.V4Header(h))
	return res, nil
}

// LookupBytesBatch implements Engine: the frame slab is decoded by a
// pooled burst decoder, the decoded headers are classified into a pooled
// result slab against one consistent snapshot, and the verdicts are
// scattered back to the frames' positions. Undecodable frames yield the
// zero Result; the return value is the number of frames decoded.
//
//repro:noalloc
func (c *Classifier) LookupBytesBatch(frames [][]byte, out []Result) int {
	sc := v4RawPool.Get().(*v4RawScratch)
	raw, idx := sc.burst.DecodeV4(frames)
	for i := range frames {
		out[i] = Result{}
	}
	n := len(raw)
	if n > 0 {
		hdrs := sc.hdrs[:0]
		res := sc.res[:0]
		for _, h := range raw {
			hdrs = append(hdrs, core.V4Header(h))
			res = append(res, core.Result{})
		}
		sc.hdrs, sc.res = hdrs, res
		c.inner.LookupBatchInto(hdrs, res)
		for j, r := range res {
			out[idx[j]] = r
		}
	}
	v4RawPool.Put(sc)
	return n
}

// LookupBytes implements Engine for the Table I baselines: decode in
// place, then one snapshot lookup. The decode never allocates; whether
// the lookup does depends on the baseline algorithm.
func (e *baselineEngine) LookupBytes(frame []byte) (Result, error) {
	var h rule.Header
	if err := packet.DecodeEthernet(frame, &h); err != nil {
		return Result{}, err
	}
	res, _ := e.Lookup(h)
	return res, nil
}

// LookupBytesBatch implements Engine: pooled burst decode, then the
// baseline's batched snapshot lookup, scattered back by frame index.
func (e *baselineEngine) LookupBytesBatch(frames [][]byte, out []Result) int {
	b := rawBurstPool.Get().(*packet.Burst)
	hdrs, idx := b.DecodeV4(frames)
	for i := range frames {
		out[i] = Result{}
	}
	if len(hdrs) > 0 {
		for j, res := range e.LookupBatch(hdrs) {
			out[idx[j]] = res
		}
	}
	n := len(hdrs)
	rawBurstPool.Put(b)
	return n
}

// LookupBytes implements Engine for flow-cached compositions with the
// raw-key probe: the 5-tuple hash is computed once off the freshly
// decoded header and threaded through both the cache probe and the
// miss-path fill, so a miss never hashes the header twice. The
// steady-state hit path performs no allocations.
//
//repro:noalloc
func (c *cachedEngine) LookupBytes(frame []byte) (Result, error) {
	var h rule.Header
	if err := packet.DecodeEthernet(frame, &h); err != nil {
		return Result{}, err
	}
	k := c.cache.Hash(h)
	res, gen, ok := c.cache.GetHashed(k, h)
	if ok {
		return res, nil
	}
	res, _ = c.inner.Lookup(h)
	c.cache.PutHashed(k, gen, h, res)
	return res, nil
}

// LookupBytesBatch implements Engine: decoded headers probe the cache
// with once-computed hashes; only the misses reach the inner engine's
// batched path — compacted into pooled scratch, classified by one
// batched inner lookup, and scattered back — and their fills reuse the
// same hashes. Zero allocations per slab in steady state.
//
//repro:noalloc
func (c *cachedEngine) LookupBytesBatch(frames [][]byte, out []Result) int {
	b := rawBurstPool.Get().(*packet.Burst)
	hdrs, idx := b.DecodeV4(frames)
	for i := range frames {
		out[i] = Result{}
	}
	sc := cacheBatchPool.Get().(*cacheBatchScratch)
	missIdx := sc.missIdx[:0]
	miss := sc.miss[:0]
	missKey := sc.missKey[:0]
	var fillGen uint64
	for j, h := range hdrs {
		k := c.cache.Hash(h)
		res, gen, ok := c.cache.GetHashed(k, h)
		if ok {
			out[idx[j]] = res
			continue
		}
		if len(miss) == 0 {
			// The first generation observed lower-bounds every later one
			// and precedes the engine read below, so stamping all fills
			// with it is safe (see cachedEngine.LookupBatchInto).
			fillGen = gen
		}
		missIdx = append(missIdx, idx[j])
		miss = append(miss, h)
		missKey = append(missKey, k)
	}
	if len(miss) > 0 {
		res := sc.res[:0]
		for range miss {
			res = append(res, Result{})
		}
		sc.res = res
		c.inner.LookupBatchInto(miss, res)
		for j, r := range res {
			out[missIdx[j]] = r
			c.cache.PutHashed(missKey[j], fillGen, miss[j], r)
		}
	}
	sc.missIdx, sc.miss, sc.missKey = missIdx, miss, missKey
	cacheBatchPool.Put(sc)
	n := len(hdrs)
	rawBurstPool.Put(b)
	return n
}

// LookupBytes classifies a raw IPv6-over-Ethernet frame: the in-place
// decoder walks the base header and any leading hop-by-hop, routing or
// destination-options extension headers to the transport ports, then
// the 128-bit decomposition (two 64-bit LPM probes plus the combination
// table under LPMSplit64) classifies the 6-tuple.
//
//repro:noalloc
func (c *Classifier6) LookupBytes(frame []byte) (Result, error) {
	var h rule.Header6
	if err := packet.DecodeEthernet6(frame, &h); err != nil {
		return Result{}, err
	}
	res, _ := c.inner.Lookup(core.V6Header(h))
	return res, nil
}

// LookupBytesBatch classifies an IPv6 frame slab against one consistent
// snapshot, with the same contract as the IPv4 engines: zero Result for
// undecodable frames, decoded count returned, out at least len(frames).
//
//repro:noalloc
func (c *Classifier6) LookupBytesBatch(frames [][]byte, out []Result) int {
	sc := v6RawPool.Get().(*v6RawScratch)
	raw, idx := sc.burst.DecodeV6(frames)
	for i := range frames {
		out[i] = Result{}
	}
	n := len(raw)
	if n > 0 {
		hdrs := sc.hdrs[:0]
		res := sc.res[:0]
		for _, h := range raw {
			hdrs = append(hdrs, core.V6Header(h))
			res = append(res, core.Result{})
		}
		sc.hdrs, sc.res = hdrs, res
		c.inner.LookupBatchInto(hdrs, res)
		for j, r := range res {
			out[idx[j]] = r
		}
	}
	v6RawPool.Put(sc)
	return n
}
