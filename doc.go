// Package repro is a Go reproduction of "Feature Study on a Programmable
// Network Traffic Classifier" (Guerra Pérez, Yang, Scott-Hayward, Sezer —
// IEEE SOCC 2016): a programmable multi-dimensional packet-classification
// lookup architecture based on the decomposition approach.
//
// The classifier searches each 5-tuple header field with an independently
// selected engine (multi-bit trie or binary search tree for IP prefixes, a
// register bank, segment tree or range tree for port ranges, direct index
// or hash table for the protocol), expresses per-field results as
// priority-ordered label lists, and combines labels against a Rule Filter
// to find the Highest-Priority Matching Rule — with full incremental rule
// update support.
//
// Every operation additionally reports a hardware cost (clock cycles,
// memory lines) from a model of the paper's 200 MHz FPGA lookup domain, so
// the published update-time, lookup-time and throughput results can be
// regenerated; see DESIGN.md and EXPERIMENTS.md in the repository root.
//
// Quick start:
//
//	cls, err := repro.NewClassifier(repro.Config{LPM: repro.LPMMultiBitTrie}, nil)
//	if err != nil { ... }
//	cls.Insert(repro.Rule{
//		ID: 1, Priority: 1,
//		SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
//		SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
//		Proto:   repro.ExactProto(repro.ProtoTCP),
//		Action:  repro.ActionPermit,
//	})
//	res, cost := cls.Lookup(repro.Header{SrcIP: 0x0a000001, DstPort: 80, Proto: repro.ProtoTCP})
//
// The internal packages implement the substrates: internal/core (the
// paper's architecture), internal/lpm, internal/rangematch and
// internal/exactmatch (the per-field engines of Table II),
// internal/baseline (the multi-dimensional comparators of Table I),
// internal/ruleset (ClassBench-style ACL/FW/IPC generators) and
// internal/hwsim (the FPGA cycle and memory model).
package repro
