// Package repro is a Go reproduction of "Feature Study on a Programmable
// Network Traffic Classifier" (Guerra Pérez, Yang, Scott-Hayward, Sezer —
// IEEE SOCC 2016): a programmable multi-dimensional packet-classification
// lookup architecture based on the decomposition approach.
//
// # The Engine API
//
// Every lookup algorithm in the repository — the paper's decomposition
// architecture and all of its Table I comparators (linear search, TCAM,
// RFC, HiCuts, HyperCuts, cross-producting, DCFL, BV, ABV, TSS) — is
// constructed through one entry point and used through one interface:
//
//	eng, err := repro.New(
//		repro.WithBackend(repro.BackendTSS),
//		repro.WithRules(rs),
//	)
//	if err != nil { ... }
//	res, _ := eng.Lookup(repro.Header{SrcIP: 0x0a000001, DstPort: 80, Proto: repro.ProtoTCP})
//
// The default backend is BackendDecomposition, the paper's architecture.
// Its per-field algorithm set (the decision-control choice of Section
// III.A) is selected with WithConfig:
//
//	eng, err := repro.New(
//		repro.WithConfig(repro.Config{LPM: repro.LPMMultiBitTrie}),
//		repro.WithRules(rs),
//	)
//
// The decomposition engine searches each 5-tuple field with an
// independently selected engine (multi-bit trie, AM-Trie or binary
// search tree for IP prefixes; a register bank, segment tree or range
// tree for port ranges; direct index or hash table for the protocol),
// expresses per-field results as priority-ordered label lists, and
// combines labels against a Rule Filter to find the Highest-Priority
// Matching Rule — with full incremental rule update support.
//
// # Concurrency and the fast path
//
// Every Engine is safe for concurrent use. Lookups read an RCU-style
// snapshot — the read path takes no locks — while Insert and Delete
// serialize behind the snapshot writer and never stall in-flight
// lookups. LookupBatch classifies a whole batch against one consistent
// snapshot, amortizing the snapshot acquisition and the per-field label
// buffers.
//
// The decomposition lookup path is allocation-free in steady state:
// per-field label buffers are pooled, the ULI label-combination walk is
// iterative (no closures, no recursion), and the Rule Filter plus the
// partial-combination validity maps are flat open-addressing hash
// tables built at rule-update time and read-only during lookups.
// AllocsPerRun guard tests pin the 0 allocs/op property.
//
// # Vector burst path
//
// For batches the decomposition engine does not classify header-at-a-
// time: LookupBatchInto runs a stage-fused vector kernel. Bursts of at
// least 4 headers (smaller bursts fall back to the scalar loop, whose
// per-header overhead they cannot amortize) are processed one *stage*
// at a time across the whole burst — source LPM over all N headers,
// then destination LPM over all N, then ports and protocol, then the
// label combination and Rule Filter probes over all N — so each
// stage's tables stream through the cache once per burst instead of
// once per header. Per-field label lists land in a pooled
// structure-of-arrays slab (one label arena per field plus int32
// offsets, no per-header slice headers), and bursts larger than 256
// are chunked so the slab stays cache-resident.
//
//	out := make([]repro.Result, len(hs))
//	eng.LookupBatchInto(hs, out)        // 0 allocs/op, any composition
//
// LookupBatch is the convenience form (it allocates the result slice
// and delegates); LookupBatchInto is the steady-state form and is
// allocation-free on every composition: a flow-cached engine probes
// the cache for all N, compacts the misses into a pooled scratch
// burst, runs one fused lookup over just the misses and scatters the
// verdicts back; a sharded engine reuses one pooled result column
// across its replica merges; LookupBytesBatch feeds decoded frames
// through the same kernel. Burst sizes of 64 or more get the full
// fusion benefit (see BenchmarkLookupBatch and the engine_burst_lookup
// records cmd/lookupbench -burst emits into BENCH_lookup.json, where
// CI tracks the burst-size curve).
//
// # Raw-packet ingestion
//
// Lookups need not start from a parsed Header: every Engine also
// classifies straight off wire bytes. LookupBytes decodes one
// IPv4-over-Ethernet frame in place and classifies it; LookupBytesBatch
// runs a whole frame slab against one consistent snapshot:
//
//	res, err := eng.LookupBytes(frame)          // one Ethernet frame
//	n := eng.LookupBytesBatch(frames, out)      // burst of frames
//
// The decoders live in internal/packet and write into caller-provided
// header structs — no slicing of the input, no escapes, no per-frame
// allocation — so the raw path is 0 allocs/op in steady state (within
// ~5% of the pre-parsed Lookup on ACL-10K; BenchmarkLookupBytes pins
// both properties). Frames that are too short, non-IP or otherwise
// undecodable yield a decode error from internal/packet (the batch
// form writes the zero Result for them and returns the number decoded)
// rather than a partial header. Flow-cached engines
// hash the decoded 5-tuple once and probe the cache with that raw key;
// sharded engines fan a decoded burst across replicas against their
// RCU snapshots. Classifier6.LookupBytes does the same for
// IPv6-over-Ethernet frames. This is the substrate for a future pcap
// or AF_PACKET front end: cmd/loadgen -raw and cmd/lookupbench -raw
// replay traces as synthesized frames through this path today.
//
// # Flow cache
//
// WithFlowCache(entries) puts a sharded, lock-free exact-match header
// cache in front of any engine:
//
//	eng, err := repro.New(
//		repro.WithRules(rs),
//		repro.WithShards(4),
//		repro.WithFlowCache(1<<16),
//	)
//
// Real traffic is Zipf-skewed — a few flows carry most packets — so
// caching the full classification verdict per exact 5-tuple turns the
// common case into a single hash probe (an order of magnitude faster
// than the full decomposition search; see cmd/lookupbench -zipf).
// Entries are generation-stamped: every completed Insert or Delete
// bumps the cache generation, so a lookup issued after an update
// returns can never see a pre-update verdict. Cached engines expose
// CacheStats (hits, misses, evictions, invalidations); the hit, miss
// and eviction counters are also surfaced through the ctl STATS
// response.
//
// # Stateful flow tracking
//
// WithFlowState(entries, ttl) wraps any engine composition in a
// sharded, lock-free conntrack layer — the stateful firewall primitive
// built over the stateless classifier:
//
//	eng, err := repro.New(
//		repro.WithRules(rs),
//		repro.WithFlowCache(1<<16),
//		repro.WithFlowState(1<<20, 5*time.Minute),
//	)
//
// Rules whose Action is ActionEstablish ("allow-established") install a
// flow entry when a forward packet matches: the entry is keyed by the
// direction-normalized 5-tuple, so it covers the reverse direction too,
// and subsequent packets of the flow — in either direction — are
// admitted by a single hash probe carrying the establishing rule's
// verdict, without consulting the classifier. That is how a reply
// packet with no matching rule of its own is accepted: connection
// state, not rule state, admits it. Entries expire ttl after their
// last hit (refresh is a wait-free atomic store on the probe path) and
// are generation-stamped like flow-cache lines: Insert, Delete and
// Replace invalidate all established flows in one generation bump, so
// a revoked rule cannot keep admitting traffic through stale state —
// unless WithFlowStatePreserve opts into keeping flows across rule
// updates, the conntrack behavior of a production firewall. Stateful
// engines expose StateStats (entries, installs, hits, misses,
// expiries, evictions, invalidations), surfaced through ctl STATS, the
// JSON admin API and /metrics; ctl table specs take a fourth
// state-slot field (name=backend[:shards[:cache[:state]]]), and the
// stateful probe path is allocation-free under the same //repro:noalloc
// regime as the lookup kernels.
//
// # Sharding
//
// WithShards(n) partitions the ruleset across n replicas of the
// selected backend:
//
//	eng, err := repro.New(
//		repro.WithBackend(repro.BackendTSS),
//		repro.WithRules(rs),
//		repro.WithShards(4),
//	)
//
// Each replica keeps its own RCU snapshot pair. Updates route to one
// replica by a hash of the rule ID, so per-update work shrinks with n;
// lookups fan out across the replicas and merge by priority, with
// LookupBatch running the replicas on parallel goroutines. Stats,
// memory maps and (for the decomposition backend) the modeled
// throughput aggregate across replicas.
//
// # Atomic ruleset snapshots
//
// A whole ruleset is a first-class unit, mirroring the paper's model of
// downloading a complete ruleset to the hardware. Engine.Snapshot
// exports the installed rules from one consistent snapshot (sorted by
// ascending rule ID), and Engine.Replace swaps the entire ruleset in
// one atomic step:
//
//	rules := eng.Snapshot()            // consistent export
//	_, err := eng.Replace(newRules)    // build aside, publish with one RCU swap
//	_, err = eng.Replace(nil)          // atomic reset
//
// Replace builds the new state off to the side and publishes it with a
// single RCU pointer swap — on a sharded engine the whole replica set
// is rebuilt aside and installed with one atomic pointer store — so
// concurrent lookups observe either the complete old ruleset or the
// complete new one, never the intermediate states an Insert/Delete
// churn would expose. On error the published ruleset is unchanged. A
// flow-cached engine invalidates with a single generation bump per
// swap.
//
// The serialized form lives in internal/snapfile: a versioned,
// CRC-32-checksummed text format that round-trips byte-for-byte. The
// ctl protocol exposes the subsystem as SNAPSHOT (wire dump),
// SNAPSHOT SAVE / RESTORE (checkpoint files), RESET and SWAP (pipelined
// rule body, one atomic apply), and classifierd -snapshot-dir makes the
// daemon persistent: tables are saved on drain and restored on start,
// so a SIGTERM'd daemon comes back with its tables intact.
//
// # Serving
//
// The ctl protocol (internal/ctl, served by cmd/classifierd) exposes
// engines over TCP as named tables — each table its own backend and
// shard count — with batched MLOOKUP, pipelined BULK insert and the
// snapshot commands above, so one daemon serves heterogeneous
// workloads side by side. cmd/classifierctl is the matching one-shot
// CLI. The table lifecycle itself lives in internal/tables: an
// RCU-published registry (a single atomic pointer load resolves a
// table, writers clone-and-swap under a mutex) that every control
// surface shares.
//
// # Observability
//
// Each registry table carries an internal/metrics block —
// cache-line-padded atomic counters for lookups, updates, atomic swaps
// and errors, plus concurrent HDR latency histograms built on the same
// internal/hdr bucket geometry the workload-replay histograms use, so
// live-daemon quantiles and offline replay reports are directly
// comparable. Recording is wait-free (a few atomic adds per sample)
// and sits on the serving path without perturbing the allocation-free
// lookup kernels.
//
// Three surfaces read the same tables.TableStats record, so they
// cannot disagree: the ctl STATS response (engine pipeline stats,
// optional CACHE and STATE sections, and an OPS section with the
// serving-layer counters), a typed JSON admin API (GET/POST /v1/tables,
// DELETE /v1/tables/{name}, GET /v1/tables/{name}/stats), and a
// Prometheus text exposition at /metrics with per-table operation
// totals, latency quantile summaries, shard-balance gauges and modeled
// memory. The HTTP plane (internal/httpapi, stdlib-only) is enabled
// with classifierd's -http flag; classifierctl mirrors the typed
// records with its stats -json and tables -json commands.
//
// # Workload replay
//
// internal/workload generates and replays deterministic trace
// workloads: timestamped event schedules mixing lookups, incremental
// updates and atomic whole-ruleset swaps under five traffic models —
// uniform, Zipf-skewed popularity, bursty on/off arrivals, a
// locality-shift model whose hot set migrates mid-run (the flow-cache
// stress case), and a conntrack model that opens bidirectional
// connections with forward-first packet ordering and optional one-shot
// SYN-flood aggressors (the flow-state stress case). The same
// (ruleset, config) pair always yields the same
// schedule, so a schedule is a reproducible experiment: the conformance
// suite replays each one sequentially against every backend composition
// and asserts identical per-lookup verdict sequences.
//
// cmd/loadgen is the load driver: it replays a schedule either
// in-process against any Engine composition (backend × WithShards ×
// WithFlowCache × WithFlowState) or over TCP against a live
// classifierd, using N
// concurrent workers with an open-loop pacer — latency is measured from
// each event's scheduled arrival, so queueing delay is charged to the
// distribution rather than coordinating with the load. Updates apply in
// schedule order on a dedicated control lane, mirroring the paper's
// single decision-control channel; remote workers drain arrival backlog
// through pipelined LOOKUP writes. Results — HDR-style latency
// quantiles (p50/p90/p99/p999), achieved throughput and per-op error
// counts — are written as BENCH_workload.json, which cmd/benchdiff
// compares across runs the same way it gates BENCH_lookup.json.
//
// # Hardware model
//
// Operations on the decomposition backend report a hardware cost (clock
// cycles, memory lines) from a model of the paper's 200 MHz FPGA lookup
// domain, so the published update-time, lookup-time and throughput
// results can be regenerated; see DESIGN.md and EXPERIMENTS.md in the
// repository root. The concrete *Classifier type (what New returns for
// BackendDecomposition) additionally exposes Stats, Memory,
// ModelThroughput and ModelLookupCycles. Baseline backends report update
// costs through the same download model (two cycles per line written)
// and their storage as a hardware memory map.
//
// # IPv6
//
// The engines are generic over the address width; New6 builds the same
// decomposition architecture over 128-bit prefixes (the Table I
// baselines are defined over the IPv4 5-tuple only). The default New6
// address engine is the split-64 design: each 128-bit prefix is
// decomposed into two bounded 64-bit LPM probes (address hi/lo halves)
// joined through a combination table, so an IPv6 lookup costs two trie
// walks plus one table index instead of a 128-level descent. IPv6 is
// first-class through the serving stack: Classifier6 has the same
// Snapshot/Replace/LookupBatch/LookupBytes surface, `TABLE CREATE
// <name> v6` makes a v6 table in classifierd (colon-hex rule lines and
// lookup addresses; the snapfile family attribute keeps checkpoints
// from being restored across address families), and cmd/lookupbench
// -raw records the v6 raw-frame path next to the v4 records.
//
// # Checked invariants
//
// The concurrency and hot-path contracts above are machine-checked by
// reprolint, the repo's static-analysis suite (internal/lint, run via
// `go run ./cmd/reprolint ./...` and as a required CI step):
//
//   - rcusafe: a value read from an RCU store (rcu.Handle.Value), an
//     atomic.Pointer load, or an engine Snapshot is a published
//     snapshot shared with lock-free readers; any write to memory
//     reachable from it — field stores, slice-element writes, copy or
//     append into it — is flagged as a data race at analysis time.
//
//   - atomicfield: a struct field accessed through sync/atomic anywhere
//     in its package must be accessed that way everywhere; one plain
//     load of a generation counter reintroduces the torn read the
//     atomic was bought to prevent. Copying a sync/atomic wrapper-typed
//     field is flagged for the same reason.
//
//   - noalloc: functions carrying a //repro:noalloc directive in their
//     doc comment (the lookup fast path, the RCU read side, the flow
//     cache probe, the shard fan-out) must contain no allocation-
//     introducing constructs — make/new/literals, growing appends,
//     interface boxing, fmt calls, string building. This is the
//     build-time complement of the testing.AllocsPerRun guards, which
//     cannot run under -race; a meta-test additionally requires every
//     exported annotated function to have such a runtime guard in its
//     package.
//
//   - ctlerr: every statically-analyzable ctl response string and conn
//     write must lead with a protocol verb, keeping the line protocol's
//     first-token dispatch grammar closed.
//
// The internal packages implement the substrates: internal/core (the
// paper's architecture and its concurrent wrapper), internal/rcu (the
// snapshot store), internal/lpm, internal/rangematch and
// internal/exactmatch (the per-field engines of Table II),
// internal/baseline (the multi-dimensional comparators of Table I),
// internal/ruleset (ClassBench-style ACL/FW/IPC generators),
// internal/hwsim (the FPGA cycle and memory model) and internal/lint
// (the invariant analyzers behind cmd/reprolint).
package repro
