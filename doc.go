// Package repro is a Go reproduction of "Feature Study on a Programmable
// Network Traffic Classifier" (Guerra Pérez, Yang, Scott-Hayward, Sezer —
// IEEE SOCC 2016): a programmable multi-dimensional packet-classification
// lookup architecture based on the decomposition approach.
//
// # The Engine API
//
// Every lookup algorithm in the repository — the paper's decomposition
// architecture and all of its Table I comparators (linear search, TCAM,
// RFC, HiCuts, HyperCuts, cross-producting, DCFL, BV, ABV, TSS) — is
// constructed through one entry point and used through one interface:
//
//	eng, err := repro.New(
//		repro.WithBackend(repro.BackendTSS),
//		repro.WithRules(rs),
//	)
//	if err != nil { ... }
//	res, _ := eng.Lookup(repro.Header{SrcIP: 0x0a000001, DstPort: 80, Proto: repro.ProtoTCP})
//
// The default backend is BackendDecomposition, the paper's architecture.
// Its per-field algorithm set (the decision-control choice of Section
// III.A) is selected with WithConfig:
//
//	eng, err := repro.New(
//		repro.WithConfig(repro.Config{LPM: repro.LPMMultiBitTrie}),
//		repro.WithRules(rs),
//	)
//
// The decomposition engine searches each 5-tuple field with an
// independently selected engine (multi-bit trie, AM-Trie or binary
// search tree for IP prefixes; a register bank, segment tree or range
// tree for port ranges; direct index or hash table for the protocol),
// expresses per-field results as priority-ordered label lists, and
// combines labels against a Rule Filter to find the Highest-Priority
// Matching Rule — with full incremental rule update support.
//
// # Concurrency
//
// Every Engine is safe for concurrent use. Lookups read an RCU-style
// snapshot — the read path takes no locks — while Insert and Delete
// serialize behind the snapshot writer and never stall in-flight
// lookups. LookupBatch classifies a whole batch against one consistent
// snapshot, amortizing the snapshot acquisition and the per-field label
// buffers.
//
// # Sharding
//
// WithShards(n) partitions the ruleset across n replicas of the
// selected backend:
//
//	eng, err := repro.New(
//		repro.WithBackend(repro.BackendTSS),
//		repro.WithRules(rs),
//		repro.WithShards(4),
//	)
//
// Each replica keeps its own RCU snapshot pair. Updates route to one
// replica by a hash of the rule ID, so per-update work shrinks with n;
// lookups fan out across the replicas and merge by priority, with
// LookupBatch running the replicas on parallel goroutines. Stats,
// memory maps and (for the decomposition backend) the modeled
// throughput aggregate across replicas.
//
// # Serving
//
// The ctl protocol (internal/ctl, served by cmd/classifierd) exposes
// engines over TCP as named tables — each table its own backend and
// shard count — with batched MLOOKUP and pipelined BULK insert
// commands, so one daemon serves heterogeneous workloads side by side.
//
// # Hardware model
//
// Operations on the decomposition backend report a hardware cost (clock
// cycles, memory lines) from a model of the paper's 200 MHz FPGA lookup
// domain, so the published update-time, lookup-time and throughput
// results can be regenerated; see DESIGN.md and EXPERIMENTS.md in the
// repository root. The concrete *Classifier type (what New returns for
// BackendDecomposition) additionally exposes Stats, Memory,
// ModelThroughput and ModelLookupCycles. Baseline backends report update
// costs through the same download model (two cycles per line written)
// and their storage as a hardware memory map.
//
// # IPv6
//
// The engines are generic over the address width; New6 builds the same
// decomposition architecture over 128-bit prefixes (the Table I
// baselines are defined over the IPv4 5-tuple only).
//
// The internal packages implement the substrates: internal/core (the
// paper's architecture and its concurrent wrapper), internal/rcu (the
// snapshot store), internal/lpm, internal/rangematch and
// internal/exactmatch (the per-field engines of Table II),
// internal/baseline (the multi-dimensional comparators of Table I),
// internal/ruleset (ClassBench-style ACL/FW/IPC generators) and
// internal/hwsim (the FPGA cycle and memory model).
package repro
