package repro

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/lpm"
	"repro/internal/packet"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// Rule model, re-exported from the internal rule package so callers build
// rules without importing internals.
type (
	// Rule is a 5-tuple classification rule with first-match priority.
	Rule = rule.Rule
	// Header is the 5-tuple lookup point.
	Header = rule.Header
	// Prefix is an IPv4 prefix match.
	Prefix = rule.Prefix
	// PortRange is an inclusive port interval match.
	PortRange = rule.PortRange
	// ProtoMatch is an exact-or-wildcard protocol match.
	ProtoMatch = rule.ProtoMatch
	// Action is a rule verdict.
	Action = rule.Action
	// RuleSet is an ordered rule collection with a linear-scan oracle.
	RuleSet = rule.Set
	// Rule6 and Header6 are the IPv6 counterparts.
	Rule6 = rule.Rule6
	// Header6 is the IPv6 5-tuple lookup point.
	Header6 = rule.Header6
	// Addr6 is a 128-bit IPv6 address.
	Addr6 = rule.Addr6
	// Prefix6 is an IPv6 prefix match.
	Prefix6 = rule.Prefix6
)

// Re-exported rule actions.
const (
	ActionPermit = rule.ActionPermit
	ActionDeny   = rule.ActionDeny
	ActionQueue  = rule.ActionQueue
	ActionMirror = rule.ActionMirror
	ActionCount  = rule.ActionCount
	// ActionEstablish ("allow-established") permits the packet and asks
	// a WithFlowState engine to install a flow entry covering both
	// directions, so return traffic is accepted by state.
	ActionEstablish = rule.ActionEstablish
)

// Re-exported protocol numbers.
const (
	ProtoICMP = rule.ProtoICMP
	ProtoTCP  = rule.ProtoTCP
	ProtoUDP  = rule.ProtoUDP
)

// FullPortRange matches every port.
func FullPortRange() PortRange { return rule.FullPortRange() }

// ExactPort matches a single port.
func ExactPort(p uint16) PortRange { return rule.ExactPort(p) }

// ExactProto matches a single protocol value.
func ExactProto(v uint8) ProtoMatch { return rule.ExactProto(v) }

// AnyProto matches every protocol value.
func AnyProto() ProtoMatch { return rule.AnyProto() }

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) { return rule.ParsePrefix(s) }

// ParsePrefix6 parses colon-hex IPv6 prefix notation (eight explicit
// hex groups, "hhhh:...:hhhh/len").
func ParsePrefix6(s string) (Prefix6, error) { return rule.ParsePrefix6(s) }

// ParseRule6 parses one ClassBench-style IPv6 rule line.
func ParseRule6(line string) (Rule6, error) { return rule.ParseRule6(line) }

// MustParsePrefix parses a prefix, panicking on malformed input; intended
// for literals in examples and tests.
func MustParsePrefix(s string) Prefix {
	p, err := rule.ParsePrefix(s)
	if err != nil {
		panic(fmt.Sprintf("repro: bad prefix literal %q: %v", s, err))
	}
	return p
}

// ParseRules reads a ClassBench-format ruleset.
func ParseRules(r io.Reader) (*RuleSet, error) { return rule.ParseSet(r) }

// WriteRules emits a ruleset in ClassBench format.
func WriteRules(w io.Writer, s *RuleSet) error { return rule.WriteSet(w, s) }

// NewRuleSet builds a validated rule set; IDs and priorities default to
// position order.
func NewRuleSet(rules []Rule) (*RuleSet, error) { return rule.NewSet(rules) }

// ParsePacket extracts the IPv4 5-tuple from an Ethernet frame.
func ParsePacket(frame []byte) (Header, error) { return packet.ParseEthernet(frame) }

// ParseIPv4Packet extracts the 5-tuple from a raw IPv4 packet.
func ParseIPv4Packet(pkt []byte) (Header, error) { return packet.ParseIPv4(pkt) }

// Configuration, re-exported from the core package.
type (
	// Config selects the per-field algorithm set (the decision-control
	// choice of Section III.A).
	Config = core.Config
	// Result is the outcome of one lookup.
	Result = core.Result
	// Stats aggregates lookup-domain statistics.
	Stats = core.Stats
	// Cost is a hardware operation cost (cycles, memory lines).
	Cost = hwsim.Cost
	// Throughput is the modeled forwarding performance.
	Throughput = core.Throughput
	// MemoryMap lists the occupied hardware RAM blocks.
	MemoryMap = hwsim.MemoryMap
)

// Engine selections.
const (
	LPMMultiBitTrie     = core.LPMMultiBitTrie
	LPMBinarySearchTree = core.LPMBinarySearchTree
	LPMAMTrie           = core.LPMAMTrie
	LPMSplit64          = core.LPMSplit64

	RangeRegisterBank = core.RangeRegisterBank
	RangeSegmentTree  = core.RangeSegmentTree
	RangeRangeTree    = core.RangeRangeTree

	ExactDirectIndex = core.ExactDirectIndex
	ExactHashTable   = core.ExactHashTable

	CombinePruned     = core.CombinePruned
	CombineExhaustive = core.CombineExhaustive
)

// Classifier is the programmable IPv4 lookup domain — the decomposition
// architecture behind BackendDecomposition. It implements Engine, plus
// the hardware-model methods (stats, memory map, modeled throughput) that
// only the paper's architecture can report.
//
// All methods are safe for concurrent use: lookups acquire an RCU
// snapshot and never lock, while Insert/Delete/BuildFromSet serialize
// behind the snapshot writer.
type Classifier struct {
	inner *core.Concurrent[lpm.V4]
}

// NewClassifier returns a classifier for the configuration, optionally
// pre-loaded with a rule set (nil starts empty).
//
// Deprecated: use New with WithConfig and WithRules; NewClassifier
// remains as a thin wrapper over the same engine. Note one behavior
// change from the pre-Engine API: Insert now enforces the shared Engine
// rule contract, so rules with a zero ID or zero priority are rejected
// instead of silently accepted.
func NewClassifier(cfg Config, rules *RuleSet) (*Classifier, error) {
	return newDecomposition(cfg, rules)
}

// newDecomposition is the BackendDecomposition constructor shared by New
// and the deprecated NewClassifier.
func newDecomposition(cfg Config, rules *RuleSet) (*Classifier, error) {
	inner, err := core.NewConcurrentV4(cfg, rules)
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: inner}, nil
}

// Backend implements Engine.
func (c *Classifier) Backend() Backend { return BackendDecomposition }

// IncrementalUpdate implements Engine: the decomposition architecture
// updates in place (Section III.D).
func (c *Classifier) IncrementalUpdate() bool { return true }

// BuildFromSet bulk-loads a rule set, returning the total hardware update
// cost.
func (c *Classifier) BuildFromSet(s *RuleSet) (Cost, error) {
	return c.inner.Build(core.CompileSet(s))
}

// Insert installs one rule incrementally; the rule must carry a unique
// non-zero ID and a non-zero priority (see Engine).
func (c *Classifier) Insert(r Rule) (Cost, error) {
	if err := validateEngineRule(r); err != nil {
		return Cost{}, err
	}
	return c.inner.Insert(core.V4Tuple(r))
}

// Delete removes a rule by ID.
func (c *Classifier) Delete(id int) (Cost, error) { return c.inner.Delete(id) }

// Len returns the number of installed rules.
func (c *Classifier) Len() int { return c.inner.Len() }

// Lookup classifies one header. Safe for concurrent use, including while
// rules are being inserted or deleted.
//
//repro:noalloc
func (c *Classifier) Lookup(h Header) (Result, Cost) {
	return c.inner.Lookup(core.V4Header(h))
}

// LookupBatch implements Engine: it classifies the headers in order
// against one consistent snapshot, amortizing the snapshot acquisition
// and the per-field label buffers over the batch.
func (c *Classifier) LookupBatch(hs []Header) []Result {
	out := make([]Result, len(hs))
	c.LookupBatchInto(hs, out)
	return out
}

// v4BatchScratch is the pooled header-conversion slab behind
// Classifier.LookupBatchInto: public rule.Header values are re-typed to
// the core's key-typed headers without a per-call allocation.
type v4BatchScratch struct {
	hdrs []core.Header[lpm.V4]
}

var v4BatchPool = sync.Pool{New: func() any { return new(v4BatchScratch) }}

// LookupBatchInto implements Engine: it classifies the headers in order
// into out[:len(hs)] — the allocation-free batch path. Batches of four
// or more headers run through the core's stage-fused vector kernel.
//
//repro:noalloc
func (c *Classifier) LookupBatchInto(hs []Header, out []Result) {
	sc := v4BatchPool.Get().(*v4BatchScratch)
	hdrs := sc.hdrs[:0]
	for _, h := range hs {
		hdrs = append(hdrs, core.V4Header(h))
	}
	sc.hdrs = hdrs
	c.inner.LookupBatchInto(hdrs, out[:len(hs)])
	v4BatchPool.Put(sc)
}

// LookupBatchCost classifies a batch like LookupBatch and additionally
// returns the summed hardware cost.
func (c *Classifier) LookupBatchCost(hs []Header) ([]Result, Cost) {
	headers := make([]core.Header[lpm.V4], len(hs))
	for i, h := range hs {
		headers[i] = core.V4Header(h)
	}
	return c.inner.LookupBatch(headers)
}

// Snapshot implements Engine: it exports the installed ruleset from one
// consistent RCU snapshot, sorted by ascending rule ID.
func (c *Classifier) Snapshot() []Rule {
	ts := c.inner.Tuples()
	out := make([]Rule, len(ts))
	for i, t := range ts {
		out[i] = core.V4Rule(t)
	}
	return out
}

// Replace implements Engine: the replacement ruleset is built on the
// quiesced RCU spare and published with a single pointer swap, so
// concurrent lookups see the old or the new ruleset, never a mix.
func (c *Classifier) Replace(rules []Rule) (Cost, error) {
	if err := validateReplaceRules(rules); err != nil {
		return Cost{}, err
	}
	ts := make([]core.Tuple[lpm.V4], len(rules))
	for i, r := range rules {
		ts[i] = core.V4Tuple(r)
	}
	return c.inner.Replace(ts)
}

// LookupPacket parses an Ethernet frame and classifies it.
func (c *Classifier) LookupPacket(frame []byte) (Result, Cost, error) {
	h, err := packet.ParseEthernet(frame)
	if err != nil {
		return Result{}, Cost{}, err
	}
	res, cost := c.Lookup(h)
	return res, cost, nil
}

// Stats returns a statistics snapshot.
func (c *Classifier) Stats() Stats { return c.inner.Stats() }

// ResetStats clears the lookup counters.
func (c *Classifier) ResetStats() { c.inner.ResetStats() }

// Memory reports the occupied hardware RAM blocks.
func (c *Classifier) Memory() MemoryMap { return c.inner.Memory() }

// ModelThroughput reports the modeled forwarding performance at the
// paper's 200 MHz clock.
func (c *Classifier) ModelThroughput() Throughput { return c.inner.Throughput() }

// ModelLookupCycles models the clock cycles to stream n headers through
// the lookup pipeline (the Fig. 4 quantity).
func (c *Classifier) ModelLookupCycles(n int) float64 { return c.inner.LookupCycles(n) }

// Classifier6 is the IPv6 lookup domain: the same architecture over
// 128-bit prefixes. Like Classifier it is safe for concurrent use.
type Classifier6 struct {
	inner *core.Concurrent[lpm.V6]
}

// NewClassifier6 returns an IPv6 classifier.
//
// Deprecated: use New6 with WithConfig; NewClassifier6 remains as a thin
// wrapper over the same engine.
func NewClassifier6(cfg Config) (*Classifier6, error) {
	inner, err := core.NewConcurrent[lpm.V6](cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Classifier6{inner: inner}, nil
}

// Backend identifies the algorithm behind the IPv6 classifier. Only the
// decomposition architecture generalizes to 128-bit fields here, so this
// always reports BackendDecomposition — mirroring Classifier.Backend.
func (c *Classifier6) Backend() Backend { return BackendDecomposition }

// IncrementalUpdate reports whether Insert/Delete avoid a rebuild; the
// IPv6 decomposition pipeline updates in place exactly like the IPv4 one
// (Section III.D).
func (c *Classifier6) IncrementalUpdate() bool { return true }

// Insert installs one IPv6 rule; like the IPv4 engines, the rule must
// carry a unique non-zero ID and a non-zero priority.
func (c *Classifier6) Insert(r Rule6) (Cost, error) {
	if err := validateRuleIdentity(r.ID, r.Priority); err != nil {
		return Cost{}, err
	}
	return c.inner.Insert(core.V6Tuple(r))
}

// Delete removes a rule by ID.
func (c *Classifier6) Delete(id int) (Cost, error) { return c.inner.Delete(id) }

// Len returns the number of installed rules.
func (c *Classifier6) Len() int { return c.inner.Len() }

// Lookup classifies one IPv6 header.
func (c *Classifier6) Lookup(h Header6) (Result, Cost) {
	return c.inner.Lookup(core.V6Header(h))
}

// LookupBatch classifies the headers in order against one consistent
// snapshot, mirroring the IPv4 engines.
func (c *Classifier6) LookupBatch(hs []Header6) []Result {
	out := make([]Result, len(hs))
	c.LookupBatchInto(hs, out)
	return out
}

// v6BatchScratch is the IPv6 counterpart of v4BatchScratch.
type v6BatchScratch struct {
	hdrs []core.Header[lpm.V6]
}

var v6BatchPool = sync.Pool{New: func() any { return new(v6BatchScratch) }}

// LookupBatchInto classifies the headers in order into out[:len(hs)],
// mirroring the IPv4 engines' allocation-free batch path.
//
//repro:noalloc
func (c *Classifier6) LookupBatchInto(hs []Header6, out []Result) {
	sc := v6BatchPool.Get().(*v6BatchScratch)
	hdrs := sc.hdrs[:0]
	for _, h := range hs {
		hdrs = append(hdrs, core.V6Header(h))
	}
	sc.hdrs = hdrs
	c.inner.LookupBatchInto(hdrs, out[:len(hs)])
	v6BatchPool.Put(sc)
}

// LookupBatchCost classifies a batch like LookupBatch and additionally
// returns the summed hardware cost, mirroring Classifier.LookupBatchCost.
func (c *Classifier6) LookupBatchCost(hs []Header6) ([]Result, Cost) {
	headers := make([]core.Header[lpm.V6], len(hs))
	for i, h := range hs {
		headers[i] = core.V6Header(h)
	}
	return c.inner.LookupBatch(headers)
}

// Snapshot exports the installed IPv6 ruleset from one consistent RCU
// snapshot, sorted by ascending rule ID.
func (c *Classifier6) Snapshot() []Rule6 {
	ts := c.inner.Tuples()
	out := make([]Rule6, len(ts))
	for i, t := range ts {
		out[i] = core.V6Rule(t)
	}
	return out
}

// Replace atomically swaps the whole IPv6 ruleset, with the same
// contract as Engine.Replace: the new state is built on the quiesced RCU
// spare and published with a single pointer swap; nil or empty rules
// reset the domain; on error the published ruleset is unchanged.
func (c *Classifier6) Replace(rules []Rule6) (Cost, error) {
	seen := make(map[int]struct{}, len(rules))
	ts := make([]core.Tuple[lpm.V6], len(rules))
	for i := range rules {
		if err := validateRuleIdentity(rules[i].ID, rules[i].Priority); err != nil {
			return Cost{}, err
		}
		if err := rules[i].Validate(); err != nil {
			return Cost{}, err
		}
		if _, dup := seen[rules[i].ID]; dup {
			return Cost{}, fmt.Errorf("rule %d: %w", rules[i].ID, core.ErrDuplicateRule)
		}
		seen[rules[i].ID] = struct{}{}
		ts[i] = core.V6Tuple(rules[i])
	}
	return c.inner.Replace(ts)
}

// LookupPacket parses an IPv6 Ethernet frame and classifies it.
func (c *Classifier6) LookupPacket(frame []byte) (Result, Cost, error) {
	h, err := packet.ParseEthernet6(frame)
	if err != nil {
		return Result{}, Cost{}, err
	}
	res, cost := c.Lookup(h)
	return res, cost, nil
}

// Stats returns a statistics snapshot.
func (c *Classifier6) Stats() Stats { return c.inner.Stats() }

// ResetStats zeroes the cumulative probe statistics, mirroring
// Classifier.ResetStats — rule population and memory are unaffected.
func (c *Classifier6) ResetStats() { c.inner.ResetStats() }

// Memory reports the occupied hardware RAM blocks.
func (c *Classifier6) Memory() MemoryMap { return c.inner.Memory() }

// ModelThroughput reports the modeled forwarding performance.
func (c *Classifier6) ModelThroughput() Throughput { return c.inner.Throughput() }

// ModelLookupCycles predicts the modeled cycle cost of classifying n
// headers, mirroring Classifier.ModelLookupCycles.
func (c *Classifier6) ModelLookupCycles(n int) float64 { return c.inner.LookupCycles(n) }

// Synthetic workloads, re-exported from the ruleset generator.
type (
	// Family selects ACL, FW or IPC ruleset structure.
	Family = ruleset.Family
	// GenConfig parameterizes ruleset generation.
	GenConfig = ruleset.Config
	// TraceConfig parameterizes packet-header-set generation.
	TraceConfig = ruleset.TraceConfig
)

// Ruleset families.
const (
	ACL = ruleset.ACL
	FW  = ruleset.FW
	IPC = ruleset.IPC
)

// GenerateRules builds a synthetic ClassBench-style ruleset.
func GenerateRules(cfg GenConfig) (*RuleSet, error) { return ruleset.Generate(cfg) }

// GenerateTrace builds a packet header set correlated with a ruleset.
func GenerateTrace(s *RuleSet, cfg TraceConfig) ([]Header, error) {
	return ruleset.GenerateTrace(s, cfg)
}

// OptimizeRules applies the decision controller's ruleset optimization
// (shadowed-rule removal), returning the optimized set and removed IDs.
func OptimizeRules(s *RuleSet) (*RuleSet, []int, error) { return core.OptimizeSet(s) }
