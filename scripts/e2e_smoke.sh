#!/usr/bin/env bash
# e2e_smoke.sh — the CI smoke test for the classifierd snapshot
# subsystem: boot the real daemon with -tables and -snapshot-dir, drive
# table creation, pipelined bulk loads and snapshot checkpoints over TCP
# through the classifierctl client, SIGTERM the process, restart it on
# the same snapshot directory, and assert every table came back
# byte-for-byte. The second life also exercises the HTTP observability
# plane end to end: the Prometheus /metrics exposition and the JSON
# admin API must serve the registry, and the operation counters must
# advance when traffic flows.
#
# Set E2E_RACE=1 to build the daemon and client with -race, turning the
# whole drive into a race-detector pass over the real server loop.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
snaps=$(mktemp -d)
work=$(mktemp -d)
addr=127.0.0.1:9177
httpaddr=127.0.0.1:9178
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$snaps" "$work"
}
trap cleanup EXIT

build_flags=()
if [ "${E2E_RACE:-0}" = "1" ]; then
    build_flags+=(-race)
    echo "== build (-race) =="
else
    echo "== build =="
fi
go build "${build_flags[@]}" -o "$bin/classifierd" ./cmd/classifierd
go build "${build_flags[@]}" -o "$bin/classifierctl" ./cmd/classifierctl
go run ./cmd/rulegen -family acl -size 200 -seed 7 -o "$work/rules.txt"

ctl() { "$bin/classifierctl" -addr "$addr" "$@"; }

start_daemon() {
    "$bin/classifierd" -listen "$addr" -http "$httpaddr" -tables "edge=linear:2" -snapshot-dir "$snaps" &
    pid=$!
    for _ in $(seq 1 100); do
        if ctl tables >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "daemon did not come up" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$pid"
    wait "$pid"
    pid=""
}

echo "== first life: create, bulk, snapshot =="
start_daemon
ctl create hot tss 1 256
ctl bulk "$work/rules.txt"
ctl -table edge bulk "$work/rules.txt"
ctl -table hot bulk "$work/rules.txt"
ctl -table hot save checkpoint
ctl -table hot snapshot > "$work/before.txt"
ctl tables

echo "== SIGTERM: drain must persist every table =="
stop_daemon
for t in main edge hot; do
    if [ ! -f "$snaps/$t.snap" ]; then
        echo "missing $snaps/$t.snap after drain" >&2
        exit 1
    fi
done

echo "== second life: tables must survive the restart =="
start_daemon
ctl tables | tee "$work/tables.txt"
grep -q '^hot.*tss.*200 rule' "$work/tables.txt" || { echo "hot table lost" >&2; exit 1; }
grep -q '^edge.*linear.*2 shard.*200 rule' "$work/tables.txt" || { echo "edge table lost" >&2; exit 1; }
grep -q '^main.*200 rule' "$work/tables.txt" || { echo "main table lost" >&2; exit 1; }
if grep -q '^checkpoint' "$work/tables.txt"; then
    echo "user checkpoint resurrected as a table" >&2
    exit 1
fi

ctl -table hot snapshot > "$work/after.txt"
cmp "$work/before.txt" "$work/after.txt" || { echo "hot ruleset changed across restart" >&2; exit 1; }

echo "== RESTORE: an explicit checkpoint survives a reset =="
ctl -table hot reset
ctl -table hot restore checkpoint
ctl -table hot snapshot > "$work/restored.txt"
cmp "$work/before.txt" "$work/restored.txt" || { echo "checkpoint restore diverged" >&2; exit 1; }

echo "== HTTP plane: /metrics and the JSON admin API serve the registry =="
curl -fsS "http://$httpaddr/metrics" > "$work/metrics1.txt"
grep -q '^repro_table_rules{table="hot"} 200$' "$work/metrics1.txt" \
    || { echo "/metrics missing hot table rules gauge" >&2; exit 1; }
grep -q '^repro_table_shards{table="edge"} 2$' "$work/metrics1.txt" \
    || { echo "/metrics missing edge shard gauge" >&2; exit 1; }

curl -fsS "http://$httpaddr/v1/tables" > "$work/tables.json"
grep -q '"name": "hot"' "$work/tables.json" || { echo "JSON table list missing hot" >&2; exit 1; }
curl -fsS "http://$httpaddr/v1/tables/hot/stats" > "$work/hotstats.json"
grep -q '"backend": "tss"' "$work/hotstats.json" || { echo "hot stats backend wrong" >&2; exit 1; }
grep -q '"rules": 200' "$work/hotstats.json" || { echo "hot stats rules wrong" >&2; exit 1; }

echo "== HTTP plane: counters must advance with traffic =="
lookups_before=$(sed -n 's/^repro_table_lookups_total{table="hot"} //p' "$work/metrics1.txt")
ctl -table hot lookup 10.0.0.1 8.8.8.8 999 80 6 >/dev/null
ctl -table hot lookup 10.0.0.2 8.8.4.4 999 443 6 >/dev/null
curl -fsS "http://$httpaddr/metrics" > "$work/metrics2.txt"
lookups_after=$(sed -n 's/^repro_table_lookups_total{table="hot"} //p' "$work/metrics2.txt")
if [ "$lookups_after" -lt $((lookups_before + 2)) ]; then
    echo "lookup counter did not advance ($lookups_before -> $lookups_after)" >&2
    exit 1
fi

echo "== stateful flow tracking: establish forward, admit reverse by state =="
ctl create ct tss 1 0 4096
ctl -table ct insert 1 1 allow-established \
    @10.0.0.0/8 0.0.0.0/0 0 : 65535 443 : 443 0x06/0xff
# Reverse before establishment: the classifier has no rule for it.
ctl -table ct lookup 8.8.8.8 10.0.0.1 443 1234 6 | grep -q '^NOMATCH' \
    || { echo "reverse matched before establishment" >&2; exit 1; }
# The forward packet matches the establish rule and installs the flow.
ctl -table ct lookup 10.0.0.1 8.8.8.8 1234 443 6 | grep -q 'allow-established' \
    || { echo "forward packet missed the establish rule" >&2; exit 1; }
# The reverse direction is now admitted purely by flow state.
ctl -table ct lookup 8.8.8.8 10.0.0.1 443 1234 6 | grep -q '^MATCH rule 1' \
    || { echo "reverse not admitted by flow state" >&2; exit 1; }
ctl -table ct stats | grep -q 'state installs 1 hits 1' \
    || { echo "ctl stats missing state counters" >&2; exit 1; }
curl -fsS "http://$httpaddr/metrics" > "$work/metrics3.txt"
grep -q '^repro_table_state_entries{table="ct"} 4096$' "$work/metrics3.txt" \
    || { echo "/metrics missing ct state entries gauge" >&2; exit 1; }
grep -q '^repro_table_state_installs_total{table="ct"} 1$' "$work/metrics3.txt" \
    || { echo "/metrics missing ct state install counter" >&2; exit 1; }
grep -q '^repro_table_state_hits_total{table="ct"} 1$' "$work/metrics3.txt" \
    || { echo "/metrics missing ct state hit counter" >&2; exit 1; }
# A whole-ruleset swap invalidates established flows: the replayed
# reverse packet must not be served by state, so the hit counter stays
# where it was.
ctl -table ct swap "$work/rules.txt"
ctl -table ct lookup 8.8.8.8 10.0.0.1 443 1234 6 >/dev/null
ctl -table ct stats | grep -q 'state installs 1 hits 1 ' \
    || { echo "flow state survived a ruleset swap" >&2; exit 1; }
ctl drop ct

echo "== HTTP plane: create/drop round-trip through the admin API =="
curl -fsS -X POST -d '{"name":"api_made","backend":"linear"}' "http://$httpaddr/v1/tables" >/dev/null
ctl tables | grep -q '^api_made' || { echo "API-created table invisible to ctl" >&2; exit 1; }
ctl stats -json > "$work/mainstats.json"
grep -q '"lookups"' "$work/mainstats.json" || { echo "ctl stats -json missing ops block" >&2; exit 1; }
curl -fsS -X DELETE "http://$httpaddr/v1/tables/api_made" >/dev/null
ctl tables | grep -q '^api_made' && { echo "API-dropped table still visible" >&2; exit 1; }

stop_daemon
echo "e2e smoke OK"
