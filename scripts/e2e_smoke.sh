#!/usr/bin/env bash
# e2e_smoke.sh — the CI smoke test for the classifierd snapshot
# subsystem: boot the real daemon with -tables and -snapshot-dir, drive
# table creation, pipelined bulk loads and snapshot checkpoints over TCP
# through the classifierctl client, SIGTERM the process, restart it on
# the same snapshot directory, and assert every table came back
# byte-for-byte.
#
# Set E2E_RACE=1 to build the daemon and client with -race, turning the
# whole drive into a race-detector pass over the real server loop.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
snaps=$(mktemp -d)
work=$(mktemp -d)
addr=127.0.0.1:9177
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$snaps" "$work"
}
trap cleanup EXIT

build_flags=()
if [ "${E2E_RACE:-0}" = "1" ]; then
    build_flags+=(-race)
    echo "== build (-race) =="
else
    echo "== build =="
fi
go build "${build_flags[@]}" -o "$bin/classifierd" ./cmd/classifierd
go build "${build_flags[@]}" -o "$bin/classifierctl" ./cmd/classifierctl
go run ./cmd/rulegen -family acl -size 200 -seed 7 -o "$work/rules.txt"

ctl() { "$bin/classifierctl" -addr "$addr" "$@"; }

start_daemon() {
    "$bin/classifierd" -listen "$addr" -tables "edge=linear:2" -snapshot-dir "$snaps" &
    pid=$!
    for _ in $(seq 1 100); do
        if ctl tables >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "daemon did not come up" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$pid"
    wait "$pid"
    pid=""
}

echo "== first life: create, bulk, snapshot =="
start_daemon
ctl create hot tss 1 256
ctl bulk "$work/rules.txt"
ctl -table edge bulk "$work/rules.txt"
ctl -table hot bulk "$work/rules.txt"
ctl -table hot save checkpoint
ctl -table hot snapshot > "$work/before.txt"
ctl tables

echo "== SIGTERM: drain must persist every table =="
stop_daemon
for t in main edge hot; do
    if [ ! -f "$snaps/$t.snap" ]; then
        echo "missing $snaps/$t.snap after drain" >&2
        exit 1
    fi
done

echo "== second life: tables must survive the restart =="
start_daemon
ctl tables | tee "$work/tables.txt"
grep -q '^hot.*tss.*200 rule' "$work/tables.txt" || { echo "hot table lost" >&2; exit 1; }
grep -q '^edge.*linear.*2 shard.*200 rule' "$work/tables.txt" || { echo "edge table lost" >&2; exit 1; }
grep -q '^main.*200 rule' "$work/tables.txt" || { echo "main table lost" >&2; exit 1; }
if grep -q '^checkpoint' "$work/tables.txt"; then
    echo "user checkpoint resurrected as a table" >&2
    exit 1
fi

ctl -table hot snapshot > "$work/after.txt"
cmp "$work/before.txt" "$work/after.txt" || { echo "hot ruleset changed across restart" >&2; exit 1; }

echo "== RESTORE: an explicit checkpoint survives a reset =="
ctl -table hot reset
ctl -table hot restore checkpoint
ctl -table hot snapshot > "$work/restored.txt"
cmp "$work/before.txt" "$work/restored.txt" || { echo "checkpoint restore diverged" >&2; exit 1; }

stop_daemon
echo "e2e smoke OK"
