package repro_test

import (
	"sync"
	"testing"

	repro "repro"
	"repro/internal/packet"
	"repro/internal/ruleset"
)

// sanitizeTrace maps trace headers onto the frame-representable subset:
// only TCP and UDP carry ports on the wire, so other protocols get
// their ports zeroed before a build/decode round trip.
func sanitizeTrace(trace []repro.Header) []repro.Header {
	out := append([]repro.Header(nil), trace...)
	for i := range out {
		if out[i].Proto != repro.ProtoTCP && out[i].Proto != repro.ProtoUDP {
			out[i].SrcPort, out[i].DstPort = 0, 0
		}
	}
	return out
}

// framesFor synthesizes one Ethernet frame per header.
func framesFor(trace []repro.Header) [][]byte {
	frames := make([][]byte, len(trace))
	for i, h := range trace {
		frames[i] = packet.BuildEthernet(packet.BuildIPv4(h))
	}
	return frames
}

// rawVariants enumerates the engine compositions the raw-ingestion path
// must agree across for a given backend.
func rawVariants(t *testing.T, b repro.Backend, rs *repro.RuleSet) map[string]repro.Engine {
	t.Helper()
	variants := make(map[string]repro.Engine)
	for name, opts := range map[string][]repro.Option{
		"plain":   {repro.WithBackend(b), repro.WithRules(rs)},
		"shards4": {repro.WithBackend(b), repro.WithRules(rs), repro.WithShards(4)},
		"cache":   {repro.WithBackend(b), repro.WithRules(rs), repro.WithFlowCache(1024)},
	} {
		eng, err := repro.New(opts...)
		if err != nil {
			t.Fatalf("%v/%s: New: %v", b, name, err)
		}
		variants[name] = eng
	}
	return variants
}

// TestLookupBytesConformance is the raw-ingestion differential gate:
// for every backend and composition, LookupBytesBatch over built frames
// must equal LookupBatch over the parsed headers, and single-frame
// LookupBytes must equal both.
func TestLookupBytesConformance(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 120, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	trace := sanitizeTrace(corpusTrace(t, rs, 200, 104))
	frames := framesFor(trace)
	parsed := make([]repro.Header, len(frames))
	for i, f := range frames {
		h, err := repro.ParsePacket(f)
		if err != nil {
			t.Fatalf("frame %d does not parse: %v", i, err)
		}
		if h != trace[i] {
			t.Fatalf("frame %d round-trips to %+v, want %+v", i, h, trace[i])
		}
		parsed[i] = h
	}
	out := make([]repro.Result, len(frames))
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for name, eng := range rawVariants(t, b, rs) {
				want := eng.LookupBatch(parsed)
				// Run the byte path twice so the second pass exercises the
				// warmed pools (and, for "cache", the hashed hit path).
				for pass := 0; pass < 2; pass++ {
					n := eng.LookupBytesBatch(frames, out)
					if n != len(frames) {
						t.Fatalf("%s pass %d: decoded %d of %d frames", name, pass, n, len(frames))
					}
					for i := range out {
						if out[i] != want[i] {
							t.Fatalf("%s pass %d frame %d: LookupBytesBatch %+v, LookupBatch %+v",
								name, pass, i, out[i], want[i])
						}
					}
				}
				for i, f := range frames {
					res, err := eng.LookupBytes(f)
					if err != nil {
						t.Fatalf("%s frame %d: %v", name, i, err)
					}
					if res != want[i] {
						t.Fatalf("%s frame %d: LookupBytes %+v, LookupBatch %+v", name, i, res, want[i])
					}
				}
			}
		})
	}
}

// TestLookupBytesBatchBadFrames pins the decode-failure contract: bad
// frames yield the zero Result at their slab position, good frames
// still classify, and the return value counts only the decoded ones.
func TestLookupBytesBatchBadFrames(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 60, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	trace := sanitizeTrace(corpusTrace(t, rs, 8, 105))
	good := framesFor(trace)
	want := make([]repro.Result, len(trace))
	for name, eng := range rawVariants(t, repro.BackendDecomposition, rs) {
		for i, h := range trace {
			want[i], _ = eng.Lookup(h)
		}
		frames := [][]byte{
			good[0],
			nil,          // empty
			good[1][:10], // truncated Ethernet
			good[2],
			{0xde, 0xad}, // garbage
			good[3],
		}
		out := make([]repro.Result, len(frames))
		if n := eng.LookupBytesBatch(frames, out); n != 3 {
			t.Fatalf("%s: decoded %d frames, want 3", name, n)
		}
		for i, wi := range []int{0, -1, -1, 2, -1, 3} {
			if wi < 0 {
				if out[i] != (repro.Result{}) {
					t.Fatalf("%s: bad frame %d produced %+v, want zero Result", name, i, out[i])
				}
				if _, err := eng.LookupBytes(frames[i]); err == nil {
					t.Fatalf("%s: LookupBytes on bad frame %d should fail", name, i)
				}
			} else if out[i] != want[wi] {
				t.Fatalf("%s: frame %d: %+v, want %+v", name, i, out[i], want[wi])
			}
		}
	}
}

// TestLookupBytesConformanceUnderChurn keeps the byte path and the
// header path in agreement while a writer churns rules, meaningful
// under -race. The churned rules match protocol 200, which no trace
// header carries, so the verdicts for the trace are invariant across
// every snapshot the readers might observe.
// sameVerdict compares results by match identity, ignoring the probe
// counters (which legitimately vary with the live ruleset under churn).
func sameVerdict(a, b repro.Result) bool {
	return a.Found == b.Found && a.RuleID == b.RuleID &&
		a.Priority == b.Priority && a.Action == b.Action
}

func TestLookupBytesConformanceUnderChurn(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.IPC, Size: 80, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	trace := sanitizeTrace(corpusTrace(t, rs, 64, 106))
	frames := framesFor(trace)
	for name, eng := range rawVariants(t, repro.BackendDecomposition, rs) {
		want := eng.LookupBatch(trace)
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			churn := repro.Rule{
				ID: 100000, Priority: 100000,
				SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
				Proto: repro.ExactProto(200), Action: repro.ActionDeny,
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if i%2 == 0 {
					if _, err := eng.Insert(churn); err != nil {
						t.Errorf("churn insert: %v", err)
						return
					}
				} else if _, err := eng.Delete(churn.ID); err != nil {
					t.Errorf("churn delete: %v", err)
					return
				}
			}
		}()
		out := make([]repro.Result, len(frames))
		for round := 0; round < 50; round++ {
			eng.LookupBytesBatch(frames, out)
			for i := range out {
				if !sameVerdict(out[i], want[i]) {
					t.Errorf("%s round %d frame %d: %+v, want %+v", name, round, i, out[i], want[i])
				}
			}
			res, err := eng.LookupBytes(frames[round%len(frames)])
			if err != nil || !sameVerdict(res, want[round%len(frames)]) {
				t.Errorf("%s round %d: LookupBytes (%+v, %v)", name, round, res, err)
			}
		}
		close(done)
		wg.Wait()
	}
}

// TestLookupBytesZeroAllocs is the runtime half of the //repro:noalloc
// annotations on the raw-ingestion path: single-frame and burst
// classification on the decomposition backend, and the hashed
// flow-cache hit path, must stay off the heap once the pools are warm.
func TestLookupBytesZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 300, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	trace := sanitizeTrace(corpusTrace(t, rs, 64, 107))
	frames := framesFor(trace)
	out := make([]repro.Result, len(frames))

	eng, err := repro.New(repro.WithRules(rs))
	if err != nil {
		t.Fatal(err)
	}
	eng.LookupBytesBatch(frames, out) // warm the pooled scratch
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := eng.LookupBytes(frames[i%len(frames)]); err != nil {
			t.Fatal(err)
		}
		eng.LookupBytesBatch(frames, out)
		i++
	})
	if allocs != 0 {
		t.Errorf("decomposition LookupBytes/LookupBytesBatch allocates %.1f objects/op steady-state, want 0", allocs)
	}

	cached, err := repro.New(repro.WithRules(rs), repro.WithFlowCache(4096))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := cached.LookupBytes(f); err != nil { // fill the cache
			t.Fatal(err)
		}
	}
	i = 0
	allocs = testing.AllocsPerRun(300, func() {
		cached.LookupBytes(frames[i%len(frames)])
		i++
	})
	if allocs != 0 {
		t.Errorf("cached LookupBytes hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// frames6For synthesizes one IPv6 Ethernet frame per embedded header.
func frames6For(trace []repro.Header) ([]repro.Header6, [][]byte) {
	hdrs := make([]repro.Header6, len(trace))
	frames := make([][]byte, len(trace))
	for i, h := range trace {
		hdrs[i] = ruleset.Embed6Header(h)
		frames[i] = packet.BuildEthernet6(hdrs[i])
	}
	return hdrs, frames
}

// TestLookupBytes6Conformance drives the IPv6 fast path end to end:
// the IPv4 corpus is embedded into 2001:db8::/32, classified by the
// split-64 decomposition from raw frames, and checked against both the
// header-path lookups and the IPv4 linear oracle (which the embedding
// preserves verdict-for-verdict).
func TestLookupBytes6Conformance(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 150, Seed: 49})
	if err != nil {
		t.Fatal(err)
	}
	trace := sanitizeTrace(corpusTrace(t, rs, 200, 108))
	hdrs, frames := frames6For(trace)

	c6, err := repro.New6()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c6.Replace(ruleset.Embed6Set(rs)); err != nil {
		t.Fatal(err)
	}
	if got, want := c6.Len(), rs.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	want := c6.LookupBatch(hdrs)
	out := make([]repro.Result, len(frames))
	if n := c6.LookupBytesBatch(frames, out); n != len(frames) {
		t.Fatalf("decoded %d of %d frames", n, len(frames))
	}
	for i := range frames {
		if out[i] != want[i] {
			t.Fatalf("frame %d: LookupBytesBatch %+v, LookupBatch %+v", i, out[i], want[i])
		}
		res, err := c6.LookupBytes(frames[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if res != want[i] {
			t.Fatalf("frame %d: LookupBytes %+v, LookupBatch %+v", i, res, want[i])
		}
		oracle, ok := rs.Match(trace[i])
		if res.Found != ok || (ok && res.RuleID != oracle.ID) {
			t.Fatalf("frame %d: v6 verdict (%d,%v), v4 oracle (%d,%v)",
				i, res.RuleID, res.Found, oracle.ID, ok)
		}
	}
	// Snapshot must export the embedded ruleset verbatim (sorted by ID).
	snap := c6.Snapshot()
	if len(snap) != rs.Len() {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), rs.Len())
	}
	byID := make(map[int]repro.Rule6, len(snap))
	for _, r := range snap {
		byID[r.ID] = r
	}
	for _, r := range ruleset.Embed6Set(rs) {
		if got, ok := byID[r.ID]; !ok || got != r {
			t.Fatalf("Snapshot rule %d = %+v, want %+v", r.ID, got, r)
		}
	}
}

// TestLookupBytes6ZeroAllocs guards the IPv6 raw path: in-place v6
// decode plus the two 64-bit LPM probes and the combination walk must
// not allocate once warm.
func TestLookupBytes6ZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 200, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	trace := sanitizeTrace(corpusTrace(t, rs, 64, 109))
	_, frames := frames6For(trace)
	c6, err := repro.New6()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c6.Replace(ruleset.Embed6Set(rs)); err != nil {
		t.Fatal(err)
	}
	out := make([]repro.Result, len(frames))
	c6.LookupBytesBatch(frames, out) // warm the pooled scratch
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := c6.LookupBytes(frames[i%len(frames)]); err != nil {
			t.Fatal(err)
		}
		c6.LookupBytesBatch(frames, out)
		i++
	})
	if allocs != 0 {
		t.Errorf("IPv6 LookupBytes/LookupBytesBatch allocates %.1f objects/op steady-state, want 0", allocs)
	}
}
