package repro

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	cls, err := NewClassifier(Config{LPM: LPMMultiBitTrie}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := []Rule{
		{
			ID: 1, Priority: 1,
			SrcIP:   MustParsePrefix("10.0.0.0/8"),
			SrcPort: FullPortRange(), DstPort: ExactPort(80),
			Proto:  ExactProto(ProtoTCP),
			Action: ActionPermit,
		},
		{
			ID: 2, Priority: 2,
			SrcPort: FullPortRange(), DstPort: FullPortRange(),
			Proto:  AnyProto(),
			Action: ActionDeny,
		},
	}
	for _, r := range rules {
		if _, err := cls.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	res, cost := cls.Lookup(Header{SrcIP: 0x0a000001, DstPort: 80, Proto: ProtoTCP})
	if !res.Found || res.RuleID != 1 || res.Action != ActionPermit {
		t.Fatalf("Lookup = %+v", res)
	}
	if cost.Cycles <= 0 {
		t.Error("lookup cost should be positive")
	}
	res, _ = cls.Lookup(Header{SrcIP: 0xc0000001, DstPort: 22, Proto: ProtoTCP})
	if !res.Found || res.RuleID != 2 || res.Action != ActionDeny {
		t.Fatalf("default Lookup = %+v", res)
	}
	if _, err := cls.Delete(1); err != nil {
		t.Fatal(err)
	}
	res, _ = cls.Lookup(Header{SrcIP: 0x0a000001, DstPort: 80, Proto: ProtoTCP})
	if res.RuleID != 2 {
		t.Fatalf("after delete, Lookup = %+v", res)
	}
}

func TestPublicAPIGenerated(t *testing.T) {
	rs, err := GenerateRules(GenConfig{Family: ACL, Size: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := NewClassifier(Config{}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Len() != 200 {
		t.Fatalf("Len = %d", cls.Len())
	}
	trace, err := GenerateTrace(rs, TraceConfig{Size: 500, HitRatio: 0.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		got, _ := cls.Lookup(h)
		want, ok := rs.Match(h)
		if got.Found != ok || (ok && got.RuleID != want.ID) {
			t.Fatalf("mismatch vs oracle: %+v vs (%d,%v)", got, want.ID, ok)
		}
	}
	tp := cls.ModelThroughput()
	if tp.Mpps <= 0 || tp.Gbps <= 0 {
		t.Errorf("throughput = %+v", tp)
	}
	if cls.Memory().TotalBytes() == 0 {
		t.Error("memory empty")
	}
}

func TestPublicAPIPacketPath(t *testing.T) {
	cls, err := NewClassifier(Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cls.Insert(Rule{
		ID: 1, Priority: 1,
		SrcIP:   MustParsePrefix("192.168.0.0/16"),
		SrcPort: FullPortRange(), DstPort: ExactPort(443),
		Proto:  ExactProto(ProtoTCP),
		Action: ActionPermit,
	}); err != nil {
		t.Fatal(err)
	}
	h := Header{SrcIP: 0xc0a80105, DstIP: 0x08080808, SrcPort: 40000, DstPort: 443, Proto: ProtoTCP}
	frame := packet.BuildEthernet(packet.BuildIPv4(h))
	res, _, err := cls.LookupPacket(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.RuleID != 1 {
		t.Fatalf("LookupPacket = %+v", res)
	}
	if _, _, err := cls.LookupPacket(frame[:8]); err == nil {
		t.Error("truncated frame should fail")
	}
}

func TestPublicAPIClassBenchText(t *testing.T) {
	src := "@10.0.0.0/8\t0.0.0.0/0\t0 : 65535\t80 : 80\t0x06/0xFF\n"
	rs, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteRules(&sb, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10.0.0.0/8") {
		t.Errorf("WriteRules output: %q", sb.String())
	}
}

func TestPublicAPIv6(t *testing.T) {
	cls, err := NewClassifier6(Config{LPM: LPMBinarySearchTree})
	if err != nil {
		t.Fatal(err)
	}
	r := Rule6{
		ID: 1, Priority: 1,
		SrcIP:   rule6Prefix(0x20010db8_00000000, 0, 32),
		SrcPort: FullPortRange(), DstPort: ExactPort(443),
		Proto:  ExactProto(ProtoTCP),
		Action: ActionPermit,
	}
	if _, err := cls.Insert(r); err != nil {
		t.Fatal(err)
	}
	res, _ := cls.Lookup(Header6{
		SrcIP:   addr6(0x20010db8_00001234, 42),
		DstPort: 443, Proto: ProtoTCP,
	})
	if !res.Found || res.RuleID != 1 {
		t.Fatalf("v6 Lookup = %+v", res)
	}
	if _, err := cls.Delete(1); err != nil {
		t.Fatal(err)
	}
	if cls.Len() != 0 {
		t.Error("v6 delete failed")
	}
}

func addr6(hi, lo uint64) Addr6 { return Addr6{Hi: hi, Lo: lo} }

func rule6Prefix(hi, lo uint64, l uint8) Prefix6 {
	return Prefix6{Addr: Addr6{Hi: hi, Lo: lo}, Len: l}.Canonical()
}

func TestMustParsePrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParsePrefix should panic on bad input")
		}
	}()
	MustParsePrefix("not-a-prefix")
}

func TestOptimizeRulesPublic(t *testing.T) {
	rs, err := NewRuleSet([]Rule{
		{SrcIP: MustParsePrefix("10.0.0.0/8"), SrcPort: FullPortRange(), DstPort: FullPortRange(), Proto: AnyProto()},
		{SrcIP: MustParsePrefix("10.1.0.0/16"), SrcPort: FullPortRange(), DstPort: FullPortRange(), Proto: ExactProto(ProtoTCP)},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, removed, err := OptimizeRules(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || opt.Len() != 1 {
		t.Fatalf("removed=%v len=%d", removed, opt.Len())
	}
}
