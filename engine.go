package repro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/shard"
)

// Engine is the unified lookup-engine abstraction: one interface that the
// paper's decomposition architecture and every Table I baseline
// implement, so workloads can swap algorithms — the paper's core
// programmability claim — without changing caller code.
//
// Every Engine is safe for concurrent use. Lookups acquire an RCU-style
// snapshot (no locks on the read path) while Insert and Delete serialize
// behind the snapshot writer, so classification continues at full rate
// during rule updates. LookupBatch amortizes the snapshot acquisition
// over a whole batch and guarantees all headers see one consistent
// ruleset.
//
// Rules inserted through an Engine must carry a unique non-zero ID and a
// non-zero Priority (lower is better): backends that rebuild on update
// re-validate the whole ruleset, and implicit position-derived IDs would
// not survive a rebuild.
type Engine interface {
	// Backend identifies the algorithm behind this engine.
	Backend() Backend
	// Insert installs one rule; Delete removes one by ID. Backends
	// without native incremental update transparently rebuild, reporting
	// the full rebuild in the returned download cost.
	Insert(r Rule) (Cost, error)
	Delete(id int) (Cost, error)
	// Len returns the number of installed rules.
	Len() int
	// Lookup classifies one header; LookupBatch classifies a batch
	// against one consistent snapshot. LookupBatchInto is the
	// allocation-free form: it classifies into caller-owned memory
	// (out must hold at least len(hs) results), so pooled callers pay
	// zero allocations per batch in steady state. Batches of four or
	// more headers run the decomposition backend's stage-fused vector
	// kernel (see the package "Vector burst path" doc section).
	Lookup(h Header) (Result, Cost)
	LookupBatch(hs []Header) []Result
	LookupBatchInto(hs []Header, out []Result)
	// LookupBytes decodes a raw IPv4-over-Ethernet frame in place and
	// classifies it — the bytes-in/verdict-out ingestion path, which
	// never allocates on the decomposition backend. LookupBytesBatch
	// does the same for a frame slab against one consistent snapshot:
	// frames that fail to decode yield the zero Result at their index,
	// the return value is the number of frames decoded, and out must
	// hold at least len(frames) results.
	LookupBytes(frame []byte) (Result, error)
	LookupBytesBatch(frames [][]byte, out []Result) int
	// Memory reports the data-structure storage as hardware RAM blocks.
	Memory() MemoryMap
	// IncrementalUpdate reports whether Insert/Delete avoid a rebuild
	// (the Table I incremental-update column).
	IncrementalUpdate() bool
	// Snapshot exports the installed ruleset from one consistent
	// snapshot, sorted by ascending rule ID — the deterministic order
	// the snapshot file format serializes.
	Snapshot() []Rule
	// Replace atomically swaps the entire ruleset: the new state is
	// built off to the side and published with a single RCU pointer
	// swap, so concurrent Lookup/LookupBatch callers observe either the
	// complete old ruleset or the complete new one, never a mix. The
	// rules follow the same contract as Insert (unique non-zero IDs,
	// non-zero priorities); nil or empty rules reset the engine. On
	// error the published ruleset is unchanged. The returned cost is
	// the full download of the new state (plus teardown of the old),
	// mirroring the paper's whole-ruleset download model.
	Replace(rules []Rule) (Cost, error)
}

// Backend selects the algorithm behind an Engine: the paper's
// decomposition architecture or one of the Table I comparators.
type Backend int

// Engine backends.
const (
	// BackendDecomposition is the paper's architecture: per-field search
	// engines, label combination and rule filter. The default.
	BackendDecomposition Backend = iota + 1
	// BackendLinear is the brute-force O(N) reference.
	BackendLinear
	// BackendTCAM simulates a ternary CAM with range-to-prefix expansion.
	BackendTCAM
	// BackendRFC is Recursive Flow Classification.
	BackendRFC
	// BackendHiCuts is the HiCuts decision tree.
	BackendHiCuts
	// BackendHyperCuts is the multi-dimensional HyperCuts tree.
	BackendHyperCuts
	// BackendCrossProduct is cross-producting with lazy table
	// materialization.
	BackendCrossProduct
	// BackendDCFL is Distributed Crossproducting of Field Labels.
	BackendDCFL
	// BackendBV is the Lucent bit-vector scheme.
	BackendBV
	// BackendABV is Aggregated Bit Vectors.
	BackendABV
	// BackendTSS is Tuple Space Search.
	BackendTSS
)

// String returns the backend's display name (the Table I row).
func (b Backend) String() string {
	switch b {
	case BackendDecomposition:
		return "Decomposition"
	case BackendLinear:
		return "Linear"
	case BackendTCAM:
		return "TCAM"
	case BackendRFC:
		return "RFC"
	case BackendHiCuts:
		return "HiCuts"
	case BackendHyperCuts:
		return "HyperCuts"
	case BackendCrossProduct:
		return "CrossProducting"
	case BackendDCFL:
		return "DCFL"
	case BackendBV:
		return "BV"
	case BackendABV:
		return "ABV"
	case BackendTSS:
		return "TSS"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// Backends lists every available backend, decomposition first — the
// iteration order used by the conformance suite and the benchmarks.
func Backends() []Backend {
	return []Backend{
		BackendDecomposition,
		BackendLinear,
		BackendTCAM,
		BackendRFC,
		BackendHiCuts,
		BackendHyperCuts,
		BackendCrossProduct,
		BackendDCFL,
		BackendBV,
		BackendABV,
		BackendTSS,
	}
}

// ParseBackend resolves a backend from its flag spelling (case-
// insensitive; e.g. "tss", "hicuts", "decomposition").
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "decomposition", "decomp", "this-work", "thiswork":
		return BackendDecomposition, nil
	case "linear":
		return BackendLinear, nil
	case "tcam":
		return BackendTCAM, nil
	case "rfc":
		return BackendRFC, nil
	case "hicuts":
		return BackendHiCuts, nil
	case "hypercuts":
		return BackendHyperCuts, nil
	case "crossproduct", "crossproducting", "crossprod":
		return BackendCrossProduct, nil
	case "dcfl":
		return BackendDCFL, nil
	case "bv", "bitmap":
		return BackendBV, nil
	case "abv":
		return BackendABV, nil
	case "tss":
		return BackendTSS, nil
	default:
		return 0, fmt.Errorf("unknown backend %q", s)
	}
}

// Option configures New.
type Option func(*engineOptions)

type engineOptions struct {
	backend       Backend
	cfg           Config
	rules         *RuleSet
	optimize      bool
	shards        int
	flowCache     int
	state         int
	stateTTL      time.Duration
	statePreserve bool
}

// WithBackend selects the lookup algorithm; the default is
// BackendDecomposition.
func WithBackend(b Backend) Option {
	return func(o *engineOptions) { o.backend = b }
}

// WithConfig selects the per-field algorithm set for the decomposition
// backend (other backends ignore it).
func WithConfig(cfg Config) Option {
	return func(o *engineOptions) { o.cfg = cfg }
}

// WithRules pre-loads the engine with a rule set.
func WithRules(rs *RuleSet) Option {
	return func(o *engineOptions) { o.rules = rs }
}

// WithOptimize applies the decision controller's ruleset optimization
// (shadowed-rule removal, Section III.D) to the WithRules set before
// loading it.
func WithOptimize() Option {
	return func(o *engineOptions) { o.optimize = true }
}

// WithShards partitions the ruleset across n replicas of the selected
// backend, each with its own RCU snapshot pair. Updates are routed to
// one replica by a hash of the rule ID; lookups fan out across the
// replicas and merge by priority, with LookupBatch running the replicas
// on parallel goroutines. Stats, memory and modeled throughput are
// aggregated across the replicas. n = 1 (the default) builds the
// backend unwrapped.
//
// Rules should carry unique priorities (rulesets built by NewRuleSet
// from zero-priority rules always do): when two matching rules share a
// priority, the shard merge resolves the tie to the lowest rule ID,
// whereas an unsharded engine resolves it by insertion order.
func WithShards(n int) Option {
	return func(o *engineOptions) { o.shards = n }
}

// New builds an Engine from functional options:
//
//	eng, err := repro.New(
//		repro.WithBackend(repro.BackendTSS),
//		repro.WithRules(rs),
//	)
//
// With no options it returns an empty decomposition engine with the
// default configuration.
func New(opts ...Option) (Engine, error) {
	o := engineOptions{backend: BackendDecomposition, shards: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards < 1 {
		return nil, fmt.Errorf("repro: shard count %d, want >= 1", o.shards)
	}
	if err := validateFlowCache(o.flowCache); err != nil {
		return nil, err
	}
	if err := validateFlowState(o.state); err != nil {
		return nil, err
	}
	rules := o.rules
	if o.optimize && rules != nil {
		opt, _, err := OptimizeRules(rules)
		if err != nil {
			return nil, err
		}
		rules = opt
	}
	var eng Engine
	var err error
	if o.shards > 1 {
		eng, err = newSharded(o, rules)
	} else {
		eng, err = newSingle(o, rules)
	}
	if err != nil {
		return nil, err
	}
	if o.flowCache > 0 {
		eng = newFlowCached(eng, o.flowCache)
	}
	if o.state > 0 {
		// The state table wraps outermost: an established-flow hit skips
		// the cache probe and the classifier alike.
		eng = newFlowState(eng, o.state, o.stateTTL, o.statePreserve)
	}
	return eng, nil
}

// newSingle builds one unwrapped replica of the selected backend.
func newSingle(o engineOptions, rules *RuleSet) (Engine, error) {
	if o.backend == BackendDecomposition {
		return newDecomposition(o.cfg, rules)
	}
	mk, ok := baselineConstructor(o.backend)
	if !ok {
		return nil, fmt.Errorf("repro: unknown backend %d", int(o.backend))
	}
	return newBaselineEngine(o.backend, mk, rules)
}

// newSharded partitions the rules by shard.For and builds one replica
// per partition behind the shard wrapper.
func newSharded(o engineOptions, rules *RuleSet) (Engine, error) {
	parts := make([][]Rule, o.shards)
	if rules != nil {
		for _, r := range rules.Rules() {
			i := shard.For(r.ID, o.shards)
			parts[i] = append(parts[i], r)
		}
	}
	replicas := make([]shard.Engine, o.shards)
	for i := range replicas {
		var sub *RuleSet
		if len(parts[i]) > 0 {
			s, err := rule.NewSet(parts[i])
			if err != nil {
				return nil, err
			}
			sub = s
		}
		eng, err := newSingle(o, sub)
		if err != nil {
			return nil, err
		}
		replicas[i] = eng
	}
	// The factory hands Replace fresh, empty replicas of the same
	// backend/config so a whole-ruleset swap can build the next replica
	// set off to the side before its single atomic publish.
	factory := func() (shard.Engine, error) { return newSingle(o, nil) }
	inner, err := shard.New(replicas, factory)
	if err != nil {
		return nil, err
	}
	s := sharded{Sharded: inner, backend: o.backend}
	if o.backend == BackendDecomposition {
		return &shardedDecomposition{sharded: s}, nil
	}
	return &s, nil
}

// sharded tags the shard wrapper with its backend so it satisfies the
// full Engine interface.
type sharded struct {
	*shard.Sharded
	backend Backend
}

// Backend implements Engine.
func (s *sharded) Backend() Backend { return s.backend }

// shardedDecomposition additionally surfaces the hardware throughput
// model that only decomposition replicas carry, mirroring *Classifier.
type shardedDecomposition struct {
	sharded
}

// ModelThroughput reports the aggregate modeled forwarding rate of the
// parallel replicas.
func (s *shardedDecomposition) ModelThroughput() Throughput {
	tp, _ := s.AggregateThroughput()
	return tp
}

// New6 builds the IPv6 lookup domain from the same options. Only the
// decomposition backend classifies IPv6 (the Table I baselines are
// defined over the IPv4 5-tuple), so WithBackend must name it or be
// omitted, and WithRules (an IPv4 set) must be absent.
func New6(opts ...Option) (*Classifier6, error) {
	o := engineOptions{backend: BackendDecomposition, shards: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.backend != BackendDecomposition {
		return nil, fmt.Errorf("repro: backend %v does not support IPv6", o.backend)
	}
	if o.shards != 1 {
		return nil, fmt.Errorf("repro: WithShards is IPv4-only; the IPv6 domain is unsharded")
	}
	if o.flowCache != 0 {
		return nil, fmt.Errorf("repro: WithFlowCache is IPv4-only; the IPv6 domain is uncached")
	}
	if o.state != 0 {
		return nil, fmt.Errorf("repro: WithFlowState is IPv4-only; the IPv6 domain is stateless")
	}
	if o.rules != nil {
		return nil, fmt.Errorf("repro: WithRules carries IPv4 rules; insert Rule6 values instead")
	}
	if o.cfg.LPM == 0 {
		// The IPv6 fast path defaults to the split-64 decomposition: two
		// 64-bit LPM probes plus a combination table, instead of walking
		// a single 128-bit trie.
		o.cfg.LPM = core.LPMSplit64
	}
	inner, err := core.NewConcurrent[lpm.V6](o.cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Classifier6{inner: inner}, nil
}

// baselineConstructor maps a backend to its fresh-instance constructor.
func baselineConstructor(b Backend) (func() baseline.Classifier, bool) {
	switch b {
	case BackendLinear:
		return func() baseline.Classifier { return baseline.NewLinear() }, true
	case BackendTCAM:
		return func() baseline.Classifier { return baseline.NewTCAM() }, true
	case BackendRFC:
		return func() baseline.Classifier { return baseline.NewRFC() }, true
	case BackendHiCuts:
		return func() baseline.Classifier { return baseline.NewHiCuts(baseline.DefaultHiCutsConfig()) }, true
	case BackendHyperCuts:
		return func() baseline.Classifier { return baseline.NewHyperCuts(baseline.DefaultHyperCutsConfig()) }, true
	case BackendCrossProduct:
		return func() baseline.Classifier { return baseline.NewCrossProduct() }, true
	case BackendDCFL:
		return func() baseline.Classifier { return baseline.NewDCFL() }, true
	case BackendBV:
		return func() baseline.Classifier { return baseline.NewBitmapIntersection() }, true
	case BackendABV:
		return func() baseline.Classifier { return baseline.NewABV() }, true
	case BackendTSS:
		return func() baseline.Classifier { return baseline.NewTSS() }, true
	default:
		return nil, false
	}
}

// validateEngineRule enforces the Engine rule contract shared by every
// backend: structural validity plus explicit identity, so incremental
// inserts and rebuild-on-update backends agree on rule identity.
func validateEngineRule(r Rule) error {
	if err := validateRuleIdentity(r.ID, r.Priority); err != nil {
		return err
	}
	return r.Validate()
}

// validateReplaceRules checks a whole Replace candidate list up front —
// per-rule contract plus ID uniqueness — so backends can reject a bad
// list before touching any state.
func validateReplaceRules(rules []Rule) error {
	seen := make(map[int]struct{}, len(rules))
	for i := range rules {
		if err := validateEngineRule(rules[i]); err != nil {
			return err
		}
		if _, dup := seen[rules[i].ID]; dup {
			return fmt.Errorf("rule %d: %w", rules[i].ID, core.ErrDuplicateRule)
		}
		seen[rules[i].ID] = struct{}{}
	}
	return nil
}

// validateRuleIdentity is the identity half of the Engine rule contract,
// shared with the IPv6 path.
func validateRuleIdentity(id, priority int) error {
	if id == 0 {
		return fmt.Errorf("repro: rule must carry a non-zero ID")
	}
	if priority == 0 {
		return fmt.Errorf("repro: rule %d must carry a non-zero priority", id)
	}
	return nil
}
