package repro

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rcu"
	"repro/internal/rule"
)

// baselineEngine adapts a Table I baseline classifier to the Engine
// interface. It supplies the three things the raw baselines lack:
//
//   - concurrency: the classifier pair lives in the same RCU snapshot
//     store as the decomposition backend, so lookups never lock and
//     updates never stall them;
//   - uniform updates: backends without native incremental update are
//     transparently rebuilt from the authoritative rule list, surfacing
//     the rebuild in the returned cost rather than as an error;
//   - hwsim reporting: update costs follow the paper's download model
//     (two cycles per line plus one for hash indexing) with the line
//     count equal to the rules written, and MemoryBytes is exposed as a
//     hardware memory map.
type baselineEngine struct {
	backend     Backend
	incremental bool
	store       *rcu.Store[baseline.Classifier]

	mu    sync.Mutex  // guards the authoritative list behind the store's writer
	list  []Rule      // committed rules in insertion order
	index map[int]int // rule ID -> position in list
}

// newBaselineEngine builds the adapter, loading rules if given.
func newBaselineEngine(b Backend, mk func() baseline.Classifier, rules *RuleSet) (*baselineEngine, error) {
	first := mk()
	e := &baselineEngine{
		backend:     b,
		incremental: first.IncrementalUpdate(),
		store:       rcu.NewStore(first, mk()),
		index:       make(map[int]int),
	}
	if rules != nil {
		next := append([]Rule(nil), rules.Rules()...)
		if err := e.applyList(next); err != nil {
			return nil, err
		}
		e.commit(next)
	}
	return e, nil
}

// Backend implements Engine.
func (e *baselineEngine) Backend() Backend { return e.backend }

// IncrementalUpdate implements Engine, reporting the underlying
// algorithm's Table I property (the adapter hides the rebuild, not its
// cost).
func (e *baselineEngine) IncrementalUpdate() bool { return e.incremental }

// Len implements Engine.
func (e *baselineEngine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.list)
}

// Insert implements Engine.
func (e *baselineEngine) Insert(r Rule) (Cost, error) {
	if err := validateEngineRule(r); err != nil {
		return Cost{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.index[r.ID]; dup {
		return Cost{}, fmt.Errorf("rule %d: %w", r.ID, core.ErrDuplicateRule)
	}
	if e.incremental {
		before, hasEntries := e.entryCount()
		err := e.store.Update(
			func(c baseline.Classifier) error { return c.Insert(r) },
			e.resync,
		)
		if err != nil {
			return Cost{}, err
		}
		e.index[r.ID] = len(e.list)
		e.list = append(e.list, r)
		return downloadCost(e.linesChanged(before, hasEntries)), nil
	}
	next := append(append([]Rule(nil), e.list...), r)
	if err := e.applyList(next); err != nil {
		return Cost{}, err
	}
	e.commit(next)
	return downloadCost(len(next)), nil
}

// Delete implements Engine.
func (e *baselineEngine) Delete(id int) (Cost, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.index[id]
	if !ok {
		return Cost{}, fmt.Errorf("rule %d: %w", id, core.ErrUnknownRule)
	}
	if e.incremental {
		before, hasEntries := e.entryCount()
		err := e.store.Update(
			func(c baseline.Classifier) error { return c.Delete(id) },
			e.resync,
		)
		if err != nil {
			return Cost{}, err
		}
		e.list = append(e.list[:i], e.list[i+1:]...)
		e.reindex()
		return downloadCost(e.linesChanged(before, hasEntries)), nil
	}
	next := make([]Rule, 0, len(e.list)-1)
	next = append(next, e.list[:i]...)
	next = append(next, e.list[i+1:]...)
	if err := e.applyList(next); err != nil {
		return Cost{}, err
	}
	e.commit(next)
	return downloadCost(len(next) + 1), nil
}

// Snapshot implements Engine, exporting the committed rule list sorted
// by ascending ID.
func (e *baselineEngine) Snapshot() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := append([]Rule(nil), e.list...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Replace implements Engine: the replacement classifier state is built
// on the quiesced RCU spare and published with one pointer swap — the
// same applyList path a rebuild-on-update Insert takes, but with the
// whole list swapped in one step. On failure the committed list stays
// published. The cost models tearing down the old lines and downloading
// the new ones.
func (e *baselineEngine) Replace(rules []Rule) (Cost, error) {
	if err := validateReplaceRules(rules); err != nil {
		return Cost{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	next := append([]Rule(nil), rules...)
	if err := e.applyList(next); err != nil {
		return Cost{}, err
	}
	lines := len(e.list) + len(next)
	e.commit(next)
	return downloadCost(lines), nil
}

// Lookup implements Engine.
func (e *baselineEngine) Lookup(h Header) (Result, Cost) {
	hd := e.store.Acquire()
	r, ok := hd.Value().Match(h)
	hd.Release()
	return matchResult(r, ok), Cost{}
}

// LookupBatch implements Engine: one snapshot acquisition for the whole
// batch.
func (e *baselineEngine) LookupBatch(hs []Header) []Result {
	out := make([]Result, len(hs))
	e.LookupBatchInto(hs, out)
	return out
}

// LookupBatchInto implements Engine: one snapshot acquisition, verdicts
// into caller-owned memory. The adapter itself is allocation-free;
// whether the wrapped baseline's Match allocates depends on the
// algorithm.
func (e *baselineEngine) LookupBatchInto(hs []Header, out []Result) {
	hd := e.store.Acquire()
	cls := hd.Value()
	for i, h := range hs {
		r, ok := cls.Match(h)
		out[i] = matchResult(r, ok)
	}
	hd.Release()
}

// Memory implements Engine, presenting the baseline's byte estimate as
// one hardware RAM block.
func (e *baselineEngine) Memory() MemoryMap {
	hd := e.store.Acquire()
	defer hd.Release()
	var mm MemoryMap
	mm.Add(strings.ToLower(hd.Value().Name()), 8, hd.Value().MemoryBytes())
	return mm
}

// applyList rebuilds both snapshot instances from a candidate rule list.
// On failure (e.g. a precomputed table exceeding its bound) the published
// state is rolled back to the committed list and the error returned.
func (e *baselineEngine) applyList(list []Rule) error {
	set, err := rule.NewSet(list)
	if err != nil {
		return err
	}
	return e.store.Update(
		func(c baseline.Classifier) error { return c.Build(set) },
		e.resync,
	)
}

// resync restores one snapshot instance to the committed rule list after
// a failed update.
func (e *baselineEngine) resync(c baseline.Classifier) error {
	set, err := rule.NewSet(e.list)
	if err != nil {
		return err
	}
	return c.Build(set)
}

// commit records a successfully installed rule list.
func (e *baselineEngine) commit(list []Rule) {
	e.list = list
	e.reindex()
}

func (e *baselineEngine) reindex() {
	e.index = make(map[int]int, len(e.list))
	for i := range e.list {
		e.index[e.list[i].ID] = i
	}
}

// entryCount reads the backend's stored-line count when it exposes one
// (TCAM reports ternary entries, capturing its range-to-prefix
// expansion); ok is false for backends without a line notion.
func (e *baselineEngine) entryCount() (n int, ok bool) {
	e.store.Locked(func(active, _ baseline.Classifier) {
		if ec, isEC := active.(interface{ Entries() int }); isEC {
			n, ok = ec.Entries(), true
		}
	})
	return n, ok
}

// linesChanged converts an entry-count delta into the lines written by
// an incremental update; backends without entry counts charge one line
// per rule touched.
func (e *baselineEngine) linesChanged(before int, hasEntries bool) int {
	if !hasEntries {
		return 1
	}
	after, _ := e.entryCount()
	d := after - before
	if d < 0 {
		d = -d
	}
	if d < 1 {
		d = 1
	}
	return d
}

// downloadCost models streaming n lines of information to the hardware:
// two clock cycles per line plus one hash-index cycle (Section IV.B).
func downloadCost(lines int) Cost {
	return Cost{Writes: lines, Cycles: 2*lines + 1}
}

// matchResult converts a baseline match to the Engine result shape.
func matchResult(r Rule, ok bool) Result {
	if !ok {
		return Result{}
	}
	return Result{RuleID: r.ID, Priority: r.Priority, Action: r.Action, Found: true}
}
