package repro_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	repro "repro"
)

// cacheStatser is the capability a flow-cached engine must expose.
type cacheStatser interface {
	CacheStats() repro.FlowCacheStats
}

// TestFlowCacheConformanceDifferential runs every backend behind a flow
// cache against the linear oracle on a repeated trace, so most of the
// second and third passes are served from the cache, and the cached
// verdicts must still be HPMR-identical.
func TestFlowCacheConformanceDifferential(t *testing.T) {
	for name, rs := range conformanceCorpus(t) {
		name, rs := name, rs
		t.Run(name, func(t *testing.T) {
			trace := corpusTrace(t, rs, 200, 301)
			for _, b := range repro.Backends() {
				eng, err := repro.New(repro.WithBackend(b), repro.WithRules(rs), repro.WithFlowCache(1024))
				if err != nil {
					t.Fatalf("%v: %v", b, err)
				}
				for pass := 0; pass < 3; pass++ {
					checkAgainstOracle(t, eng, rs, trace)
				}
				cs := eng.(cacheStatser).CacheStats()
				if cs.Hits == 0 {
					t.Errorf("%v: repeated trace produced no cache hits (%+v)", b, cs)
				}
			}
		})
	}
}

// TestFlowCacheIncrementalChurn is the invalidation conformance run: a
// flow-cached engine (sharded decomposition, the full composition) is
// churned rule by rule with the whole trace replayed between updates —
// the cache is hot when each Insert/Delete lands, so any entry
// surviving an update would immediately diverge from the refreshed
// oracle.
func TestFlowCacheIncrementalChurn(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.FW, Size: 70, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	rules := rs.Rules()
	trace := corpusTrace(t, rs, 120, 303)
	for _, tc := range []struct {
		name string
		opts []repro.Option
	}{
		{"decomposition", []repro.Option{repro.WithFlowCache(512)}},
		{"decomposition-sharded", []repro.Option{repro.WithFlowCache(512), repro.WithShards(3)}},
		{"linear", []repro.Option{repro.WithBackend(repro.BackendLinear), repro.WithFlowCache(512)}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng, err := repro.New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			live := make([]repro.Rule, 0, len(rules))
			oracle := func() *repro.RuleSet {
				s, err := repro.NewRuleSet(append([]repro.Rule(nil), live...))
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			// Grow: warm the cache, insert, and require the post-update
			// verdicts to match the grown oracle immediately.
			for i, r := range rules {
				if _, err := eng.Insert(r); err != nil {
					t.Fatalf("insert %d: %v", r.ID, err)
				}
				live = append(live, r)
				if i%10 == 9 {
					checkAgainstOracle(t, eng, oracle(), trace)
				}
			}
			// Shrink: every deletion must invalidate the hot cache.
			for len(live) > 0 {
				r := live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := eng.Delete(r.ID); err != nil {
					t.Fatalf("delete %d: %v", r.ID, err)
				}
				if len(live)%10 == 0 {
					checkAgainstOracle(t, eng, oracle(), trace)
				}
			}
			cs := eng.(cacheStatser).CacheStats()
			if cs.Invalidations != uint64(2*len(rules)) {
				t.Errorf("invalidations = %d, want %d (one per update)", cs.Invalidations, 2*len(rules))
			}
			if cs.Hits == 0 {
				t.Errorf("churn run never hit the cache (%+v)", cs)
			}
		})
	}
}

// TestFlowCacheCapabilities pins the wrapper's capability surface: a
// cached decomposition engine still models throughput, a cached sharded
// engine still reports its replica count, and baseline backends stay
// model-free.
func TestFlowCacheCapabilities(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 50, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	trace := corpusTrace(t, rs, 32, 307)
	eng, err := repro.New(repro.WithRules(rs), repro.WithShards(4), repro.WithFlowCache(256))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		eng.Lookup(h)
	}
	te, ok := eng.(interface{ ModelThroughput() repro.Throughput })
	if !ok {
		t.Fatal("cached decomposition engine lost ModelThroughput")
	}
	if tp := te.ModelThroughput(); tp.Mpps <= 0 {
		t.Errorf("ModelThroughput = %+v", tp)
	}
	if sh, ok := eng.(interface{ Shards() int }); !ok || sh.Shards() != 4 {
		t.Fatalf("cached engine Shards capability: %v", ok)
	}
	if _, ok := eng.(cacheStatser); !ok {
		t.Fatal("cached engine lost CacheStats")
	}

	lin, err := repro.New(repro.WithBackend(repro.BackendLinear), repro.WithFlowCache(256))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lin.(interface{ ModelThroughput() repro.Throughput }); ok {
		t.Error("cached linear engine claims a throughput model")
	}
	if sh, ok := lin.(interface{ Shards() int }); !ok || sh.Shards() != 1 {
		t.Error("cached unsharded engine should report 1 shard")
	}
}

// TestFlowCacheConcurrentChurn hammers a flow-cached sharded engine
// with parallel readers while a writer churns rules; under -race this
// exercises the lock-free cache slots against the RCU update path. Once
// the writer is done, a full differential pass against the final oracle
// proves no stale entry survived the last update.
func TestFlowCacheConcurrentChurn(t *testing.T) {
	pool, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 60, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	rules := pool.Rules()
	trace := corpusTrace(t, pool, 64, 305)
	eng, err := repro.New(repro.WithShards(2), repro.WithFlowCache(256))
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(700 + w)))
			for !stop.Load() {
				h := trace[rnd.Intn(len(trace))]
				res, _ := eng.Lookup(h)
				if res.Found && res.RuleID == 0 {
					t.Error("found result with zero rule ID")
					return
				}
				_ = eng.LookupBatch(trace[:16])
				lookups.Add(17)
			}
		}()
	}
	rnd := rand.New(rand.NewSource(58))
	live := make([]repro.Rule, 0, len(rules))
	next := 0
	for op := 0; op < 200; op++ {
		if next < len(rules) && (len(live) == 0 || rnd.Intn(3) > 0) {
			if _, err := eng.Insert(rules[next]); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			live = append(live, rules[next])
			next++
			continue
		}
		if len(live) == 0 {
			break // pool exhausted and everything deleted
		}
		i := rnd.Intn(len(live))
		if _, err := eng.Delete(live[i].ID); err != nil {
			t.Fatalf("op %d delete: %v", op, err)
		}
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	for lookups.Load() == 0 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	oracle, err := repro.NewRuleSet(append([]repro.Rule(nil), live...))
	if err != nil {
		t.Fatal(err)
	}
	// Two passes: the first may fill from the post-churn state, the
	// second is served largely from cache — both must match the final
	// oracle, proving no mid-churn entry is still live.
	checkAgainstOracle(t, eng, oracle, trace)
	checkAgainstOracle(t, eng, oracle, trace)
}
