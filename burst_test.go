package repro_test

import (
	"fmt"
	"sync"
	"testing"

	repro "repro"
)

// batchCompositions are the engine stackings the burst path crosses:
// bare backend, sharded fan-out, flow cache, and both.
var batchCompositions = []struct {
	name string
	opts []repro.Option
}{
	{"plain", nil},
	{"shards4", []repro.Option{repro.WithShards(4)}},
	{"cache", []repro.Option{repro.WithFlowCache(1024)}},
	{"shards4+cache", []repro.Option{repro.WithShards(4), repro.WithFlowCache(1024)}},
}

// verdictEq compares the classification verdict (HPMR identity), the
// property the burst path must preserve bit-for-bit against the
// single-header path.
func verdictEq(a, b repro.Result) bool {
	return a.Found == b.Found && a.RuleID == b.RuleID && a.Priority == b.Priority
}

// TestBurstVsSingleDifferential is the burst-vs-single property: for
// every backend × composition × burst size — straddling the fusion
// threshold (1, 3), one full fused pass (64) and a chunked pass (257 >
// maxBurst) — LookupBatch and LookupBatchInto must return exactly the
// verdicts single-header Lookup produces.
func TestBurstVsSingleDifferential(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 100, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 257, HitRatio: 0.8, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range repro.Backends() {
		for _, c := range batchCompositions {
			t.Run(fmt.Sprintf("%s/%s", b, c.name), func(t *testing.T) {
				opts := append([]repro.Option{repro.WithBackend(b), repro.WithRules(rs)}, c.opts...)
				eng, err := repro.New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				single := make([]repro.Result, len(trace))
				for i, h := range trace {
					single[i], _ = eng.Lookup(h)
				}
				for _, burst := range []int{1, 3, 64, 257} {
					out := make([]repro.Result, burst)
					for off := 0; off < len(trace); off += burst {
						end := off + burst
						if end > len(trace) {
							end = len(trace)
						}
						hs := trace[off:end]
						got := eng.LookupBatch(hs)
						if len(got) != len(hs) {
							t.Fatalf("burst %d: LookupBatch returned %d results for %d headers", burst, len(got), len(hs))
						}
						eng.LookupBatchInto(hs, out[:len(hs)])
						for j := range hs {
							want := single[off+j]
							if !verdictEq(got[j], want) {
								t.Fatalf("burst %d header %d: LookupBatch %+v != Lookup %+v", burst, off+j, got[j], want)
							}
							if !verdictEq(out[j], want) {
								t.Fatalf("burst %d header %d: LookupBatchInto %+v != Lookup %+v", burst, off+j, out[j], want)
							}
						}
					}
				}
			})
		}
	}
}

// TestBurstChurnDifferential drives fused bursts while a writer flips
// the whole ruleset between two generations with Replace. Every verdict
// must equal what one of the two rulesets' linear oracles produces for
// that header — the RCU swap (single pointer store, sharded or not) and
// the flow cache's generation stamp guarantee no burst ever observes a
// mix within one header's classification. Run under -race this doubles
// as the data-race exercise for the burst kernel's pooled slabs.
func TestBurstChurnDifferential(t *testing.T) {
	rsA, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 80, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 80, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rsA, repro.TraceConfig{Size: 256, HitRatio: 0.8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	type oracle struct {
		found bool
		id    int
	}
	oracleA := make([]oracle, len(trace))
	oracleB := make([]oracle, len(trace))
	for i, h := range trace {
		rA, okA := rsA.Match(h)
		rB, okB := rsB.Match(h)
		oracleA[i] = oracle{okA, rA.ID}
		oracleB[i] = oracle{okB, rB.ID}
	}
	for _, c := range batchCompositions {
		t.Run(c.name, func(t *testing.T) {
			opts := append([]repro.Option{repro.WithRules(rsA)}, c.opts...)
			eng, err := repro.New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					next := rsB
					if i%2 == 1 {
						next = rsA
					}
					if _, err := eng.Replace(next.Rules()); err != nil {
						t.Errorf("Replace: %v", err)
						return
					}
				}
			}()
			const burst = 64
			out := make([]repro.Result, burst)
			for iter := 0; iter < 100; iter++ {
				off := (iter * burst) % (len(trace) - burst + 1)
				hs := trace[off : off+burst]
				eng.LookupBatchInto(hs, out)
				for j := range hs {
					got := out[j]
					a, b := oracleA[off+j], oracleB[off+j]
					okA := got.Found == a.found && (!got.Found || got.RuleID == a.id)
					okB := got.Found == b.found && (!got.Found || got.RuleID == b.id)
					if !okA && !okB {
						t.Fatalf("header %d: verdict %+v matches neither ruleset generation (A=%+v, B=%+v)",
							off+j, got, a, b)
					}
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
