package hwsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostAddMax(t *testing.T) {
	a := Cost{Cycles: 3, Reads: 2, Writes: 1}
	b := Cost{Cycles: 1, Reads: 5, Writes: 0}
	if got := a.Add(b); got != (Cost{Cycles: 4, Reads: 7, Writes: 1}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Max(b); got != (Cost{Cycles: 3, Reads: 5, Writes: 1}) {
		t.Errorf("Max = %+v", got)
	}
}

func TestCostAddCommutative(t *testing.T) {
	f := func(a, b Cost) bool { return a.Add(b) == b.Add(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Charge(Cost{Cycles: 10})
	m.Charge(Cost{Cycles: 20, Writes: 3})
	if m.Ops() != 2 {
		t.Errorf("Ops = %d", m.Ops())
	}
	if m.Total().Cycles != 30 || m.Total().Writes != 3 {
		t.Errorf("Total = %+v", m.Total())
	}
	if m.CyclesPerOp() != 15 {
		t.Errorf("CyclesPerOp = %v", m.CyclesPerOp())
	}
	m.Reset()
	if m.Ops() != 0 || m.Total() != (Cost{}) || m.CyclesPerOp() != 0 {
		t.Error("Reset did not clear the meter")
	}
}

func TestMemoryMap(t *testing.T) {
	var mm MemoryMap
	mm.Add("trie", 36, 1024) // 36-bit words round to 5 bytes
	mm.Add("labels", 16, 512)
	if got := mm.TotalBytes(); got != 1024*5+512*2 {
		t.Errorf("TotalBytes = %d", got)
	}
	if s := mm.String(); s == "" {
		t.Error("String empty")
	}
}

func TestPipelineCycles(t *testing.T) {
	p := Pipeline{Latency: 8, II: 2}
	if got := p.CyclesFor(1); got != 8 {
		t.Errorf("CyclesFor(1) = %v, want 8 (latency)", got)
	}
	if got := p.CyclesFor(101); got != 8+100*2 {
		t.Errorf("CyclesFor(101) = %v", got)
	}
	if got := p.CyclesFor(0); got != 0 {
		t.Errorf("CyclesFor(0) = %v", got)
	}
}

func TestPipelineStalls(t *testing.T) {
	p := Pipeline{Latency: 8, II: 2, StallProb: 0.05, StallPenalty: 2}
	if got := p.EffectiveII(); math.Abs(got-2.1) > 1e-9 {
		t.Errorf("EffectiveII = %v, want 2.1", got)
	}
}

func TestPaperThroughputArithmetic(t *testing.T) {
	// Section IV.D: 200 MHz with the MBT pipeline gives 95.23 Mpps, which
	// at 72-byte minimum frames is ~54 Gbps; the BST mode is 8x slower,
	// ~6.5-6.9 Gbps.
	pps := PacketsPerSecond(DefaultClockHz, 2.1)
	if got := Mpps(pps); math.Abs(got-95.238) > 0.01 {
		t.Errorf("Mpps = %v, want ~95.238", got)
	}
	if got := Gbps(pps, MinFrameBytes); math.Abs(got-54.857) > 0.01 {
		t.Errorf("Gbps = %v, want ~54.86", got)
	}
	bst := PacketsPerSecond(DefaultClockHz, 2.1*8)
	if got := Gbps(bst, MinFrameBytes); math.Abs(got-6.857) > 0.01 {
		t.Errorf("BST Gbps = %v, want ~6.86", got)
	}
}

func TestPacketsPerSecondZeroCycles(t *testing.T) {
	if got := PacketsPerSecond(DefaultClockHz, 0); !math.IsInf(got, 1) {
		t.Errorf("zero cycles should be +Inf, got %v", got)
	}
}
