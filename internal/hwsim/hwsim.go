// Package hwsim models the hardware cost of the paper's FPGA lookup domain.
//
// The paper prototypes its lookup domain on an Altera Stratix V FPGA
// (5SGXMB6R3F43C4) clocked at 200 MHz using embedded RAM blocks, and
// reports every result as a clock-cycle count (Figs. 3 and 4) or as
// throughput derived from cycles (Section IV.D). This package substitutes
// for the FPGA: engines charge the cycles and memory words their RTL
// counterparts would consume, and the same arithmetic the paper applies
// (cycles → Mpps → Gbps at minimum Ethernet frame size) converts them to
// the reported quantities.
package hwsim

import (
	"fmt"
	"math"
)

// DefaultClockHz is the paper's lookup-domain clock: "it is safe to operate
// the system at the clock of frequency of 200 MHz for timing closure".
const DefaultClockHz = 200e6

// MinFrameBytes is the minimum Ethernet frame size the paper uses for its
// Gbps arithmetic ("given a minimum Ethernet frame size of 72 bytes"),
// i.e. a 64-byte frame plus the 8-byte preamble.
const MinFrameBytes = 72

// Cost is the hardware cost of one operation: sequential clock cycles plus
// the memory words touched. Writes correspond to the paper's "lines of
// information" written during the update process.
type Cost struct {
	Cycles int
	Reads  int
	Writes int
}

// Add returns the sum of two costs.
func (c Cost) Add(d Cost) Cost {
	return Cost{Cycles: c.Cycles + d.Cycles, Reads: c.Reads + d.Reads, Writes: c.Writes + d.Writes}
}

// Max returns the per-component maximum, modeling operations that proceed
// in parallel and complete when the slowest does.
func (c Cost) Max(d Cost) Cost {
	return Cost{
		Cycles: maxInt(c.Cycles, d.Cycles),
		Reads:  maxInt(c.Reads, d.Reads),
		Writes: maxInt(c.Writes, d.Writes),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Meter accumulates operation costs.
type Meter struct {
	total Cost
	ops   int
}

// Charge adds a cost to the meter.
func (m *Meter) Charge(c Cost) {
	m.total = m.total.Add(c)
	m.ops++
}

// Total returns the accumulated cost.
func (m *Meter) Total() Cost { return m.total }

// Ops returns the number of charged operations.
func (m *Meter) Ops() int { return m.ops }

// Reset clears the meter.
func (m *Meter) Reset() { m.total = Cost{}; m.ops = 0 }

// CyclesPerOp returns the mean cycles per charged operation.
func (m *Meter) CyclesPerOp() float64 {
	if m.ops == 0 {
		return 0
	}
	return float64(m.total.Cycles) / float64(m.ops)
}

// MemoryBlock models one logical FPGA embedded RAM allocation (the Stratix V
// M20K blocks the paper's design maps onto).
type MemoryBlock struct {
	Name     string
	WordBits int
	Words    int
}

// Bytes returns the block's size in bytes, rounded up per word.
func (b MemoryBlock) Bytes() int {
	return b.Words * ((b.WordBits + 7) / 8)
}

// MemoryMap is the set of RAM blocks an engine or system occupies.
type MemoryMap struct {
	Blocks []MemoryBlock
}

// Add appends a block.
func (m *MemoryMap) Add(name string, wordBits, words int) {
	m.Blocks = append(m.Blocks, MemoryBlock{Name: name, WordBits: wordBits, Words: words})
}

// TotalBytes sums all block sizes.
func (m MemoryMap) TotalBytes() int {
	total := 0
	for _, b := range m.Blocks {
		total += b.Bytes()
	}
	return total
}

// String lists the blocks with sizes.
func (m MemoryMap) String() string {
	s := ""
	for _, b := range m.Blocks {
		s += fmt.Sprintf("%s: %d x %db (%d B)\n", b.Name, b.Words, b.WordBits, b.Bytes())
	}
	return s + fmt.Sprintf("total: %d B", m.TotalBytes())
}

// Pipeline models a pipelined lookup path: a new item can enter every II
// cycles (initiation interval) and the first result appears after Latency
// cycles. StallProb is the probability an item needs one extra round of
// StallPenalty cycles — in the paper's system, the chance that the first
// label combination misses in the Rule Filter and the ULI must issue
// another combination.
type Pipeline struct {
	Latency      float64
	II           float64
	StallProb    float64
	StallPenalty float64
}

// EffectiveII returns the mean initiation interval including stalls.
func (p Pipeline) EffectiveII() float64 {
	return p.II + p.StallProb*p.StallPenalty
}

// CyclesFor returns the total cycles to process n items through the
// pipeline: fill latency once, then one effective II per further item.
func (p Pipeline) CyclesFor(n int) float64 {
	if n <= 0 {
		return 0
	}
	return p.Latency + float64(n-1)*p.EffectiveII()
}

// PacketsPerSecond converts a steady-state per-packet cycle cost to packet
// throughput at the given clock.
func PacketsPerSecond(clockHz, cyclesPerPacket float64) float64 {
	if cyclesPerPacket <= 0 {
		return math.Inf(1)
	}
	return clockHz / cyclesPerPacket
}

// Gbps converts packet throughput to line throughput for a given wire
// frame size (the paper uses the 72-byte minimum Ethernet frame).
func Gbps(pps float64, frameBytes int) float64 {
	return pps * float64(frameBytes) * 8 / 1e9
}

// Mpps formats packet throughput in millions of packets per second.
func Mpps(pps float64) float64 { return pps / 1e6 }
