// Package tables is the daemon's typed table registry: the one shared
// catalog of named serving tenants that every control front end — the
// ctl line protocol, the JSON admin API and the /metrics exposition —
// resolves tables through. It owns the full table lifecycle (create an
// IPv4 table from a backend/shards/cache Spec or an IPv6 table from
// the split-64 default, drop, list, resolve by name) plus the
// engine-construction attrs that snapshot files persist, and it
// carries one metrics.Table per table so the front ends report from
// identical counters.
//
// The registry is published RCU-style: the name→table map behind an
// atomic.Pointer is immutable once stored, writers clone-and-swap
// under a mutex, and Resolve/List are single atomic loads — the
// serving path never takes a lock to find its table, matching the
// engines' own lock-free lookup contract (and staying inside the
// reprolint rcusafe gate: a loaded map is frozen and is never written).
package tables

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	repro "repro"
	"repro/internal/metrics"
	"repro/internal/snapfile"
)

// LabelV6 is the address-family token shared across surfaces: the
// backend argument spelling of "TABLE CREATE <name> v6", the backend
// column of table listings, the snapfile family attr value, and the
// JSON family field of IPv6 tables.
const LabelV6 = "v6"

// Family selects a table's address family.
type Family int

// Table address families.
const (
	V4 Family = iota
	V6
)

// String returns the family's wire spelling.
func (f Family) String() string {
	if f == V6 {
		return LabelV6
	}
	return "v4"
}

// Spec is the typed construction recipe of one table: everything
// needed to build (or rebuild, from a snapshot file's attrs) its
// engine. IPv6 tables are unsharded and uncached — the split-64
// decomposition engine is their only backend — so a V6 spec carries
// only the name.
type Spec struct {
	Name    string
	Family  Family
	Backend repro.Backend
	Shards  int
	Cache   int
	// State is the flow-state (conntrack) table size in entries; 0
	// builds a stateless table. Registry-created stateful tables use
	// the fwstate default TTL.
	State int
}

// normalize fills defaulted fields and validates the spec.
func (s *Spec) normalize() error {
	if !ValidName(s.Name) {
		return fmt.Errorf("invalid table name %q", s.Name)
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Family == V6 {
		if s.Backend == 0 {
			s.Backend = repro.BackendDecomposition
		}
		if s.Backend != repro.BackendDecomposition {
			return fmt.Errorf("backend %v does not support IPv6", s.Backend)
		}
		if s.Shards != 1 || s.Cache != 0 || s.State != 0 {
			return fmt.Errorf("IPv6 tables are unsharded, uncached and stateless")
		}
		return nil
	}
	if s.Backend == 0 {
		s.Backend = repro.BackendDecomposition
	}
	if s.Shards < 1 {
		return fmt.Errorf("shard count %d, want >= 1", s.Shards)
	}
	if s.Cache < 0 {
		return fmt.Errorf("cache size %d, want >= 0", s.Cache)
	}
	if s.State < 0 {
		return fmt.Errorf("state size %d, want >= 0", s.State)
	}
	return nil
}

// BackendLabel is the listing spelling of the table's backend: the
// repro.ParseBackend token for IPv4 tables, LabelV6 for IPv6 ones.
func (s Spec) BackendLabel() string {
	if s.Family == V6 {
		return LabelV6
	}
	return strings.ToLower(s.Backend.String())
}

// ValidName reports whether a table (or snapshot) name is safe across
// every surface: non-empty, at most 64 bytes, and drawn from
// [A-Za-z0-9_.-] — no whitespace, no ':' (the listing separator), no
// path separators (names become <name>.snap files and URL path
// segments).
func ValidName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// Table is one named serving tenant: an engine, the Spec it was built
// from, and its metrics block. Exactly one of Eng/Eng6 is non-nil,
// selected by the spec's family. A Table is immutable after creation
// (its engine and counters mutate through their own concurrency-safe
// methods), so handing it out from the RCU-published registry map is
// safe.
type Table struct {
	spec Spec
	eng  repro.Engine
	eng6 *repro.Classifier6
	met  metrics.Table
}

// Name returns the table's registry name.
func (t *Table) Name() string { return t.spec.Name }

// Spec returns the table's construction recipe.
func (t *Table) Spec() Spec { return t.spec }

// V6 reports whether the table serves the IPv6 data path.
func (t *Table) V6() bool { return t.spec.Family == V6 }

// Eng returns the IPv4 engine (nil on IPv6 tables).
func (t *Table) Eng() repro.Engine { return t.eng }

// Eng6 returns the IPv6 engine (nil on IPv4 tables).
func (t *Table) Eng6() *repro.Classifier6 { return t.eng6 }

// Metrics returns the table's instrumentation block.
func (t *Table) Metrics() *metrics.Table { return &t.met }

// Rules reads the table's live rule population.
func (t *Table) Rules() int {
	if t.eng6 != nil {
		return t.eng6.Len()
	}
	return t.eng.Len()
}

// Unwrapped walks Unwrap through capability-transparent wrappers (the
// flow cache, the state table) to the engine that carries model-level
// capabilities like the shard count and the hardware throughput model.
func Unwrapped(eng repro.Engine) repro.Engine {
	for {
		u, ok := eng.(interface{ Unwrap() repro.Engine })
		if !ok {
			return eng
		}
		eng = u.Unwrap()
	}
}

// CacheLayer walks the wrapper chain to the flow-cache capability: the
// state table wraps outside the cache, so a direct type assertion on
// the outermost engine would miss a cached-and-stateful composition.
func CacheLayer(eng repro.Engine) (interface{ CacheStats() repro.FlowCacheStats }, bool) {
	for {
		if ce, ok := eng.(interface{ CacheStats() repro.FlowCacheStats }); ok {
			return ce, true
		}
		u, ok := eng.(interface{ Unwrap() repro.Engine })
		if !ok {
			return nil, false
		}
		eng = u.Unwrap()
	}
}

// SpecFor derives the construction spec of a prebuilt engine by
// probing its capabilities — the path a daemon takes when it assembles
// the default table from flags before registering it.
func SpecFor(name string, eng repro.Engine) Spec {
	spec := Spec{Name: name, Backend: eng.Backend(), Shards: 1}
	if sh, ok := Unwrapped(eng).(interface{ Shards() int }); ok {
		spec.Shards = sh.Shards()
	}
	if ce, ok := CacheLayer(eng); ok {
		spec.Cache = ce.CacheStats().Entries
	}
	if se, ok := eng.(interface{ StateStats() repro.FlowStateStats }); ok {
		spec.State = se.StateStats().Entries
	}
	return spec
}

// Registry is the shared table catalog. Reads (Resolve, List, Len) are
// lock-free atomic loads of an immutable map; Create/Add/Drop clone
// the map under the writer mutex and publish the successor with one
// atomic store.
type Registry struct {
	mu   sync.Mutex
	tabs atomic.Pointer[map[string]*Table]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	m := map[string]*Table{}
	r.tabs.Store(&m)
	return r
}

// Resolve returns the named table. Lock-free: one atomic load and one
// map index against the immutable published catalog.
func (r *Registry) Resolve(name string) (*Table, error) {
	t, ok := (*r.tabs.Load())[name]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return t, nil
}

// List returns the tables sorted by name, from one consistent
// published catalog.
func (r *Registry) List() []*Table {
	cur := *r.tabs.Load()
	out := make([]*Table, 0, len(cur))
	for _, t := range cur {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// Len returns the number of registered tables.
func (r *Registry) Len() int { return len(*r.tabs.Load()) }

// Create builds a fresh engine from the spec and registers it: an
// IPv4 engine via repro.New (backend × shards × flow cache) or an
// IPv6 split-64 engine via repro.New6.
func (r *Registry) Create(spec Spec) (*Table, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	t := &Table{spec: spec}
	if spec.Family == V6 {
		eng6, err := repro.New6()
		if err != nil {
			return nil, err
		}
		t.eng6 = eng6
	} else {
		eng, err := repro.New(repro.WithBackend(spec.Backend),
			repro.WithShards(spec.Shards), repro.WithFlowCache(spec.Cache),
			repro.WithFlowState(spec.State, 0))
		if err != nil {
			return nil, err
		}
		t.eng = eng
	}
	return t, r.publish(t)
}

// Add registers a prebuilt IPv4 engine under the spec — the daemon's
// bootstrap path for engines assembled from flags (custom per-field
// config, pre-loaded rules).
func (r *Registry) Add(spec Spec, eng repro.Engine) (*Table, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	if spec.Family == V6 {
		return nil, fmt.Errorf("table %q: Add registers IPv4 engines; use Create for IPv6 tables", spec.Name)
	}
	t := &Table{spec: spec, eng: eng}
	return t, r.publish(t)
}

// publish installs a table into a cloned successor catalog.
func (r *Registry) publish(t *Table) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.tabs.Load()
	if _, dup := cur[t.spec.Name]; dup {
		return fmt.Errorf("table %q exists", t.spec.Name)
	}
	next := make(map[string]*Table, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[t.spec.Name] = t
	r.tabs.Store(&next)
	return nil
}

// Drop removes a table. In-flight operations holding the *Table keep
// a valid engine (RCU semantics: the old catalog stays readable until
// its readers drain); later resolves see the successor catalog.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.tabs.Load()
	if _, ok := cur[name]; !ok {
		return fmt.Errorf("unknown table %q", name)
	}
	next := make(map[string]*Table, len(cur)-1)
	for k, v := range cur {
		if k != name {
			next[k] = v
		}
	}
	r.tabs.Store(&next)
	return nil
}

// Attrs renders the table's engine-construction metadata for its
// snapshot file — enough to rebuild the table from the file alone via
// ParseAttrs. asTable additionally marks the file as daemon table
// persistence (the save-on-drain kind restored into the registry on
// start); user checkpoints omit the mark so a restart does not
// resurrect them as tables.
func (t *Table) Attrs(asTable bool) map[string]string {
	attrs := map[string]string{
		"backend": strings.ToLower(t.spec.Backend.String()),
		"shards":  strconv.Itoa(t.spec.Shards),
		"cache":   strconv.Itoa(t.spec.Cache),
		"state":   strconv.Itoa(t.spec.State),
	}
	if t.V6() {
		attrs[snapfile.FamilyAttr] = LabelV6
	}
	if asTable {
		attrs["table"] = t.spec.Name
	}
	return attrs
}

// PersistedTable reads the daemon-persistence mark Attrs(true) wrote:
// the table name the snapshot restores into, or "" for a user
// checkpoint.
func PersistedTable(attrs map[string]string) string { return attrs["table"] }

// ParseAttrs decodes a snapshot file's engine-construction attrs into
// a Spec (the caller sets Name), defaulting to an unsharded, uncached
// IPv4 decomposition table when attrs are absent.
func ParseAttrs(attrs map[string]string) (Spec, error) {
	spec := Spec{Family: V4, Backend: repro.BackendDecomposition, Shards: 1}
	if attrs[snapfile.FamilyAttr] == LabelV6 {
		return Spec{Family: V6, Backend: repro.BackendDecomposition, Shards: 1}, nil
	}
	if v, ok := attrs["backend"]; ok {
		backend, err := repro.ParseBackend(v)
		if err != nil {
			return Spec{}, err
		}
		spec.Backend = backend
	}
	if v, ok := attrs["shards"]; ok {
		shards, err := strconv.Atoi(v)
		if err != nil || shards < 1 {
			return Spec{}, fmt.Errorf("shards attr %q", v)
		}
		spec.Shards = shards
	}
	if v, ok := attrs["cache"]; ok {
		cache, err := strconv.Atoi(v)
		if err != nil || cache < 0 {
			return Spec{}, fmt.Errorf("cache attr %q", v)
		}
		spec.Cache = cache
	}
	if v, ok := attrs["state"]; ok {
		state, err := strconv.Atoi(v)
		if err != nil || state < 0 {
			return Spec{}, fmt.Errorf("state attr %q", v)
		}
		spec.State = state
	}
	return spec, nil
}
