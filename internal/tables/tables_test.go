package tables

import (
	"fmt"
	"sync"
	"testing"

	repro "repro"
	"repro/internal/snapfile"
)

func TestCreateResolveDrop(t *testing.T) {
	r := NewRegistry()
	tab, err := r.Create(Spec{Name: "edge", Backend: repro.BackendDecomposition, Shards: 2, Cache: 64})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if tab.Name() != "edge" || tab.V6() || tab.Eng() == nil || tab.Eng6() != nil {
		t.Fatalf("table shape: name=%q v6=%v eng=%v eng6=%v", tab.Name(), tab.V6(), tab.Eng(), tab.Eng6())
	}
	if got, err := r.Resolve("edge"); err != nil || got != tab {
		t.Fatalf("Resolve = %v, %v; want the created table", got, err)
	}
	if _, err := r.Create(Spec{Name: "edge"}); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	if _, err := r.Resolve("ghost"); err == nil {
		t.Fatal("Resolve of unknown table succeeded")
	}
	if err := r.Drop("edge"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := r.Drop("edge"); err == nil {
		t.Fatal("double Drop succeeded")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drop, want 0", r.Len())
	}
	// The dropped *Table stays fully usable (RCU: readers holding it
	// keep a valid engine).
	if tab.Rules() != 0 {
		t.Fatalf("dropped table Rules = %d, want 0", tab.Rules())
	}
}

func TestCreateV6(t *testing.T) {
	r := NewRegistry()
	tab, err := r.Create(Spec{Name: "six", Family: V6})
	if err != nil {
		t.Fatalf("Create v6: %v", err)
	}
	if !tab.V6() || tab.Eng6() == nil || tab.Eng() != nil {
		t.Fatalf("v6 table shape: v6=%v eng6=%v eng=%v", tab.V6(), tab.Eng6(), tab.Eng())
	}
	if got := tab.Spec().BackendLabel(); got != LabelV6 {
		t.Fatalf("BackendLabel = %q, want %q", got, LabelV6)
	}
	if _, err := r.Create(Spec{Name: "bad6", Family: V6, Shards: 4}); err == nil {
		t.Fatal("sharded v6 Create succeeded")
	}
	if _, err := r.Create(Spec{Name: "bad6", Family: V6, Backend: repro.BackendTCAM}); err == nil {
		t.Fatal("non-decomposition v6 Create succeeded")
	}
}

func TestSpecValidation(t *testing.T) {
	r := NewRegistry()
	for _, spec := range []Spec{
		{Name: ""},
		{Name: "has space"},
		{Name: "has:colon"},
		{Name: "../escape"},
		{Name: "x", Shards: -1},
		{Name: "x", Cache: -1},
	} {
		if _, err := r.Create(spec); err == nil {
			t.Errorf("Create(%+v) succeeded, want error", spec)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after rejected creates, want 0", r.Len())
	}
}

func TestListSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.Create(Spec{Name: name}); err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
	}
	list := r.List()
	if len(list) != 3 || list[0].Name() != "alpha" || list[1].Name() != "mid" || list[2].Name() != "zeta" {
		names := make([]string, len(list))
		for i, tab := range list {
			names[i] = tab.Name()
		}
		t.Fatalf("List order %v, want [alpha mid zeta]", names)
	}
}

func TestAddPrebuiltAndSpecFor(t *testing.T) {
	eng, err := repro.New(repro.WithBackend(repro.BackendDecomposition),
		repro.WithShards(2), repro.WithFlowCache(128))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := SpecFor("default", eng)
	if spec.Backend != repro.BackendDecomposition || spec.Shards != 2 || spec.Cache != 128 {
		t.Fatalf("SpecFor = %+v, want decomposition/2 shards/128 cache", spec)
	}
	r := NewRegistry()
	tab, err := r.Add(spec, eng)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if tab.Eng() != eng {
		t.Fatal("Add did not register the provided engine")
	}
	if _, err := r.Add(Spec{Name: "six", Family: V6}, eng); err == nil {
		t.Fatal("Add of a v6 spec succeeded")
	}
}

func TestAttrsRoundTrip(t *testing.T) {
	r := NewRegistry()
	tab, err := r.Create(Spec{Name: "edge", Backend: repro.BackendTCAM, Shards: 4, Cache: 256})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	attrs := tab.Attrs(true)
	if PersistedTable(attrs) != "edge" {
		t.Fatalf("PersistedTable = %q, want edge", PersistedTable(attrs))
	}
	spec, err := ParseAttrs(attrs)
	if err != nil {
		t.Fatalf("ParseAttrs: %v", err)
	}
	if spec.Backend != repro.BackendTCAM || spec.Shards != 4 || spec.Cache != 256 || spec.Family != V4 {
		t.Fatalf("round-trip spec = %+v", spec)
	}
	if PersistedTable(tab.Attrs(false)) != "" {
		t.Fatal("user checkpoint attrs carry a table mark")
	}

	six, err := r.Create(Spec{Name: "six", Family: V6})
	if err != nil {
		t.Fatalf("Create v6: %v", err)
	}
	spec6, err := ParseAttrs(six.Attrs(false))
	if err != nil {
		t.Fatalf("ParseAttrs v6: %v", err)
	}
	if spec6.Family != V6 {
		t.Fatalf("v6 round-trip family = %v, want V6", spec6.Family)
	}
	if six.Attrs(false)[snapfile.FamilyAttr] != LabelV6 {
		t.Fatal("v6 attrs missing family mark")
	}

	if _, err := ParseAttrs(map[string]string{"backend": "warp-drive"}); err == nil {
		t.Fatal("ParseAttrs accepted unknown backend")
	}
	if _, err := ParseAttrs(map[string]string{"shards": "zero-ish"}); err == nil {
		t.Fatal("ParseAttrs accepted malformed shards")
	}
	spec, err = ParseAttrs(nil)
	if err != nil || spec.Backend != repro.BackendDecomposition || spec.Shards != 1 {
		t.Fatalf("ParseAttrs(nil) = %+v, %v; want decomposition/1-shard default", spec, err)
	}
}

// TestConcurrentLifecycle hammers create/drop/resolve/list from many
// goroutines; under -race this proves the RCU publication discipline —
// readers index only immutable published maps while writers clone and
// swap.
func TestConcurrentLifecycle(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create(Spec{Name: "anchor"}); err != nil {
		t.Fatalf("Create anchor: %v", err)
	}
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", w)
			for i := 0; i < iters; i++ {
				if _, err := r.Create(Spec{Name: name}); err != nil {
					t.Errorf("worker %d Create: %v", w, err)
					return
				}
				if _, err := r.Resolve(name); err != nil {
					t.Errorf("worker %d Resolve own table: %v", w, err)
					return
				}
				if err := r.Drop(name); err != nil {
					t.Errorf("worker %d Drop: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Reader goroutines spin on the anchor table and the listing while
	// the catalog churns underneath them.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*4; i++ {
				tab, err := r.Resolve("anchor")
				if err != nil || tab.Name() != "anchor" {
					t.Errorf("anchor lost mid-churn: %v", err)
					return
				}
				if n := r.Len(); n < 1 || n > workers+1 {
					t.Errorf("Len = %d mid-churn, want 1..%d", n, workers+1)
					return
				}
				for _, tab := range r.List() {
					_ = tab.Rules()
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 1 {
		t.Fatalf("Len = %d after churn, want 1 (anchor)", r.Len())
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"edge":     true,
		"Edge-9.x": true,
		"a_b":      true,
		"":         false,
		"a b":      false,
		"a:b":      false,
		"a/b":      false,
		"a\nb":     false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	if ValidName(string(long)) {
		t.Error("ValidName accepted 65-byte name")
	}
}
