package tables

import (
	"time"

	repro "repro"
	"repro/internal/metrics"
)

// TableStats is the one typed per-table statistics record every
// control surface reports from: the ctl STATS line, the JSON admin
// API's stats endpoint and the Prometheus /metrics exposition all
// render this struct, so the surfaces cannot disagree about a table.
type TableStats struct {
	// Identity and construction shape.
	Name    string `json:"name"`
	Family  string `json:"family"`
	Backend string `json:"backend"`
	Shards  int    `json:"shards"`

	// Engine-reported pipeline statistics. Probes/ProbeOps/MaxListLen/
	// HardwareOverflows are populated by the decomposition pipeline;
	// other backends report population only.
	Rules             int `json:"rules"`
	Probes            int `json:"probes"`
	ProbeOps          int `json:"probe_ops"`
	MaxListLen        int `json:"max_list_len"`
	HardwareOverflows int `json:"hardware_overflows"`

	// MemoryBytes totals the engine's modeled hardware RAM blocks;
	// ShardRules is the per-replica rule population of a sharded engine
	// (absent otherwise) — the shard-balance exposition.
	MemoryBytes int   `json:"memory_bytes"`
	ShardRules  []int `json:"shard_rules,omitempty"`

	// Cache carries the flow-cache counters of a cached table (absent
	// otherwise); State carries the flow-state (conntrack) counters of
	// a stateful table (absent otherwise).
	Cache *CacheCounters `json:"cache,omitempty"`
	State *StateCounters `json:"state,omitempty"`

	// Ops are the serving-layer operation counters; the latency blocks
	// summarize the matching histograms.
	Ops           OpCounters     `json:"ops"`
	LookupLatency LatencySummary `json:"lookup_latency"`
	UpdateLatency LatencySummary `json:"update_latency"`
}

// CacheCounters is the flow-cache section of TableStats.
type CacheCounters struct {
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// StateCounters is the flow-state (conntrack) section of TableStats.
type StateCounters struct {
	Entries       int    `json:"entries"`
	Installs      uint64 `json:"installs"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Expiries      uint64 `json:"expiries"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// OpCounters are the serving-layer per-table operation counters.
type OpCounters struct {
	Lookups uint64 `json:"lookups"`
	Updates uint64 `json:"updates"`
	Swaps   uint64 `json:"swaps"`
	Errors  uint64 `json:"errors"`
}

// LatencySummary condenses one latency histogram into the quantiles
// the surfaces export. All values are nanoseconds.
type LatencySummary struct {
	Count  uint64 `json:"count"`
	SumNs  uint64 `json:"sum_ns"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

// summarize reads one histogram into its exported quantile block.
func summarize(h *metrics.Histogram) LatencySummary {
	ns := func(d time.Duration) uint64 { return uint64(d.Nanoseconds()) }
	return LatencySummary{
		Count:  h.Count(),
		SumNs:  h.Sum(),
		MeanNs: ns(h.Mean()),
		P50Ns:  ns(h.Quantile(0.50)),
		P99Ns:  ns(h.Quantile(0.99)),
		P999Ns: ns(h.Quantile(0.999)),
		MaxNs:  ns(h.Max()),
	}
}

// Stats assembles the table's full statistics record: engine pipeline
// stats, memory, shard balance and flow-cache counters, plus the
// serving-layer operation counters and latency quantiles. Every read
// is a lock-free engine snapshot or atomic counter load, so Stats is
// safe to call from a scrape racing live traffic.
func (t *Table) Stats() TableStats {
	st := TableStats{
		Name:    t.spec.Name,
		Family:  t.spec.Family.String(),
		Backend: t.spec.BackendLabel(),
		Shards:  t.spec.Shards,
	}
	if t.eng6 != nil {
		es := t.eng6.Stats()
		st.Rules, st.Probes, st.ProbeOps = es.Rules, es.Probes, es.ProbeOps
		st.MaxListLen, st.HardwareOverflows = es.MaxListLen, es.HardwareOverflows
		st.MemoryBytes = t.eng6.Memory().TotalBytes()
	} else {
		if se, ok := t.eng.(interface{ Stats() repro.Stats }); ok {
			es := se.Stats()
			st.Rules, st.Probes, st.ProbeOps = es.Rules, es.Probes, es.ProbeOps
			st.MaxListLen, st.HardwareOverflows = es.MaxListLen, es.HardwareOverflows
		} else {
			st.Rules = t.eng.Len()
		}
		st.MemoryBytes = t.eng.Memory().TotalBytes()
		if sl, ok := Unwrapped(t.eng).(interface{ ShardLens() []int }); ok {
			st.ShardRules = sl.ShardLens()
		}
		if ce, ok := CacheLayer(t.eng); ok {
			cs := ce.CacheStats()
			st.Cache = &CacheCounters{
				Entries: cs.Entries, Hits: cs.Hits, Misses: cs.Misses,
				Evictions: cs.Evictions, Invalidations: cs.Invalidations,
			}
		}
		if se, ok := t.eng.(interface{ StateStats() repro.FlowStateStats }); ok {
			ss := se.StateStats()
			st.State = &StateCounters{
				Entries: ss.Entries, Installs: ss.Installs, Hits: ss.Hits,
				Misses: ss.Misses, Expiries: ss.Expiries,
				Evictions: ss.Evictions, Invalidations: ss.Invalidations,
			}
		}
	}
	m := &t.met
	st.Ops = OpCounters{
		Lookups: m.Lookups.Load(),
		Updates: m.Updates.Load(),
		Swaps:   m.Swaps.Load(),
		Errors:  m.Errors.Load(),
	}
	st.LookupLatency = summarize(&m.LookupLatency)
	st.UpdateLatency = summarize(&m.UpdateLatency)
	return st
}
