package rangematch

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/label"
	"repro/internal/rule"
)

// refLookup computes the canonical expected output by brute force.
func refLookup(stored []entry, p uint16) []label.Label {
	var ms []entry
	for _, e := range stored {
		if e.r.Matches(p) {
			ms = append(ms, e)
		}
	}
	sort.Slice(ms, func(i, j int) bool { return lessSpecific(ms[i], ms[j]) })
	out := make([]label.Label, len(ms))
	for i, m := range ms {
		out[i] = m.lab
	}
	return out
}

func randomRanges(rnd *rand.Rand, n int) []rule.PortRange {
	seen := make(map[rule.PortRange]bool)
	var out []rule.PortRange
	for len(out) < n {
		var r rule.PortRange
		switch rnd.Intn(4) {
		case 0:
			r = rule.FullPortRange()
		case 1:
			r = rule.ExactPort(uint16(rnd.Intn(1 << 16)))
		case 2:
			lo := uint16(rnd.Intn(1 << 15))
			r = rule.PortRange{Lo: lo, Hi: lo + uint16(rnd.Intn(1<<13))}
		default:
			r = rule.PortRange{Lo: 0, Hi: uint16(rnd.Intn(1 << 16))}
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

func engines() map[string]func() Engine {
	return map[string]func() Engine{
		"segtree":   func() Engine { return NewSegmentTree() },
		"rangetree": func() Engine { return NewRangeTree() },
		"bank":      func() Engine { return NewRegisterBank(0) },
	}
}

func TestEnginesMatchReference(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(1))
			eng := mk()
			ranges := randomRanges(rnd, 60)
			var stored []entry
			for i, r := range ranges {
				if _, err := eng.Insert(r, label.Label(i)); err != nil {
					t.Fatalf("Insert(%v): %v", r, err)
				}
				stored = append(stored, entry{r: r, lab: label.Label(i)})
			}
			if eng.Len() != len(ranges) {
				t.Fatalf("Len = %d, want %d", eng.Len(), len(ranges))
			}
			probe := func(phase string) {
				for i := 0; i < 2000; i++ {
					var p uint16
					if rnd.Intn(2) == 0 && len(stored) > 0 {
						e := stored[rnd.Intn(len(stored))]
						p = e.r.Lo + uint16(rnd.Intn(e.r.Width()))
					} else {
						p = uint16(rnd.Intn(1 << 16))
					}
					got, _ := eng.Lookup(p, nil)
					want := refLookup(stored, p)
					if len(got) != len(want) {
						t.Fatalf("%s: lookup(%d) = %v, want %v", phase, p, got, want)
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("%s: lookup(%d) = %v, want %v", phase, p, got, want)
						}
					}
				}
			}
			probe("initial")

			// Delete half.
			for i := 0; i < len(ranges); i += 2 {
				lab, _, ok := eng.Delete(ranges[i])
				if !ok {
					t.Fatalf("Delete(%v) not found", ranges[i])
				}
				if lab != label.Label(i) {
					t.Fatalf("Delete(%v) = %v, want %v", ranges[i], lab, label.Label(i))
				}
			}
			var kept []entry
			for _, e := range stored {
				if int(e.lab)%2 == 1 {
					kept = append(kept, e)
				}
			}
			stored = kept
			probe("after delete")
		})
	}
}

func TestEngineReplaceLabel(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			eng := mk()
			r := rule.PortRange{Lo: 10, Hi: 20}
			if _, err := eng.Insert(r, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Insert(r, 2); err != nil {
				t.Fatal(err)
			}
			if eng.Len() != 1 {
				t.Fatalf("Len after replace = %d, want 1", eng.Len())
			}
			got, _ := eng.Lookup(15, nil)
			if len(got) != 1 || got[0] != 2 {
				t.Fatalf("Lookup = %v, want [L2]", got)
			}
		})
	}
}

func TestDeleteMissing(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			eng := mk()
			if _, _, ok := eng.Delete(rule.PortRange{Lo: 1, Hi: 2}); ok {
				t.Error("delete of absent range reported found")
			}
		})
	}
}

func TestRegisterBankTwoCycleLookup(t *testing.T) {
	b := NewRegisterBank(16)
	for i := 0; i < 10; i++ {
		lo := uint16(i * 1000)
		if _, err := b.Insert(rule.PortRange{Lo: lo, Hi: lo + 999}, label.Label(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, cost := b.Lookup(4500, nil)
	if cost.Cycles != 2 {
		t.Errorf("bank lookup cycles = %d, want 2 (paper Section IV.C)", cost.Cycles)
	}
}

func TestRegisterBankCapacity(t *testing.T) {
	b := NewRegisterBank(2)
	if _, err := b.Insert(rule.ExactPort(1), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(rule.ExactPort(2), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(rule.ExactPort(3), 3); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	// Replacing an existing range must still work at capacity.
	if _, err := b.Insert(rule.ExactPort(2), 9); err != nil {
		t.Fatalf("replace at capacity: %v", err)
	}
	// Delete then insert frees a slot.
	if _, _, ok := b.Delete(rule.ExactPort(1)); !ok {
		t.Fatal("delete failed")
	}
	if _, err := b.Insert(rule.ExactPort(3), 3); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

func TestSegmentTreeSlowestLookup(t *testing.T) {
	seg := NewSegmentTree()
	rt := NewRangeTree()
	bank := NewRegisterBank(0)
	rnd := rand.New(rand.NewSource(2))
	for i, r := range randomRanges(rnd, 40) {
		if _, err := seg.Insert(r, label.Label(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Insert(r, label.Label(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := bank.Insert(r, label.Label(i)); err != nil {
			t.Fatal(err)
		}
	}
	var segC, rtC, bankC int
	for i := 0; i < 500; i++ {
		p := uint16(rnd.Intn(1 << 16))
		_, c1 := seg.Lookup(p, nil)
		_, c2 := rt.Lookup(p, nil)
		_, c3 := bank.Lookup(p, nil)
		segC += c1.Cycles
		rtC += c2.Cycles
		bankC += c3.Cycles
	}
	// Table II ordering: register bank (very fast) < range tree (fast) <
	// segment tree (very slow).
	if !(bankC < rtC && rtC < segC) {
		t.Errorf("cycle ordering wrong: bank=%d rangetree=%d segtree=%d", bankC, rtC, segC)
	}
}

func TestRangeTreeHighMemory(t *testing.T) {
	rt := NewRangeTree()
	seg := NewSegmentTree()
	// Size the bank for the workload; its register file is allocated at
	// full capacity regardless of occupancy.
	bank := NewRegisterBank(64)
	rnd := rand.New(rand.NewSource(3))
	// Heavily overlapping ranges trigger duplication in the range tree.
	for i := 0; i < 50; i++ {
		r := rule.PortRange{Lo: uint16(i * 100), Hi: uint16(30000 + i*100)}
		if _, err := rt.Insert(r, label.Label(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := seg.Insert(r, label.Label(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := bank.Insert(r, label.Label(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = rnd
	if rt.Memory().TotalBytes() <= bank.Memory().TotalBytes() {
		t.Errorf("range tree memory (%d) should exceed bank memory (%d) under overlap",
			rt.Memory().TotalBytes(), bank.Memory().TotalBytes())
	}
	if rt.Intervals() == 0 {
		t.Error("range tree has no intervals after inserts")
	}
}

func TestSegmentTreeNodesGrow(t *testing.T) {
	seg := NewSegmentTree()
	before := seg.Nodes()
	if _, err := seg.Insert(rule.PortRange{Lo: 1000, Hi: 2000}, 1); err != nil {
		t.Fatal(err)
	}
	if seg.Nodes() <= before {
		t.Error("segment tree did not allocate structural nodes")
	}
	if seg.Memory().TotalBytes() == 0 {
		t.Error("segment tree memory is zero")
	}
}

func TestInvalidRange(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			eng := mk()
			if _, err := eng.Insert(rule.PortRange{Lo: 5, Hi: 1}, 0); err == nil {
				t.Error("inverted range should fail")
			}
		})
	}
}

func TestWildcardRange(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			eng := mk()
			if _, err := eng.Insert(rule.FullPortRange(), 7); err != nil {
				t.Fatal(err)
			}
			for _, p := range []uint16{0, 1, 32768, 65535} {
				got, _ := eng.Lookup(p, nil)
				if len(got) != 1 || got[0] != 7 {
					t.Fatalf("wildcard lookup(%d) = %v", p, got)
				}
			}
		})
	}
}
