package rangematch

import (
	"testing"
	"testing/quick"

	"repro/internal/label"
	"repro/internal/rule"
)

// TestQuickEnginesAgree drives all three engines with the same
// quick-generated range sets and points; any divergence between two
// independent implementations is a bug in one of them.
func TestQuickEnginesAgree(t *testing.T) {
	type op struct {
		Lo, Span uint16
		Lab      uint16
	}
	f := func(ops []op, probes []uint16) bool {
		seg := NewSegmentTree()
		rt := NewRangeTree()
		bank := NewRegisterBank(len(ops) + 1)
		for _, o := range ops {
			r := rule.PortRange{Lo: o.Lo, Hi: o.Lo + o.Span%2000}
			if !r.Valid() {
				continue
			}
			if _, err := seg.Insert(r, label.Label(o.Lab)); err != nil {
				return false
			}
			if _, err := rt.Insert(r, label.Label(o.Lab)); err != nil {
				return false
			}
			if _, err := bank.Insert(r, label.Label(o.Lab)); err != nil {
				return false
			}
		}
		for _, p := range probes {
			a, _ := seg.Lookup(p, nil)
			b, _ := rt.Lookup(p, nil)
			c, _ := bank.Lookup(p, nil)
			if len(a) != len(b) || len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != b[i] || a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSegmentTreeInsertDeleteInverse: deleting everything restores
// empty lookups.
func TestQuickSegmentTreeInsertDeleteInverse(t *testing.T) {
	f := func(los []uint16, spans []uint16) bool {
		seg := NewSegmentTree()
		n := len(los)
		if len(spans) < n {
			n = len(spans)
		}
		inserted := make(map[rule.PortRange]bool)
		for i := 0; i < n; i++ {
			r := rule.PortRange{Lo: los[i], Hi: los[i] + spans[i]%5000}
			if !r.Valid() || inserted[r] {
				continue
			}
			inserted[r] = true
			if _, err := seg.Insert(r, label.Label(i)); err != nil {
				return false
			}
		}
		for r := range inserted {
			if _, _, ok := seg.Delete(r); !ok {
				return false
			}
		}
		if seg.Len() != 0 {
			return false
		}
		for _, p := range []uint16{0, 1, 1000, 40000, 65535} {
			if got, _ := seg.Lookup(p, nil); len(got) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
