package rangematch

import (
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/rule"
)

// SegmentTree stores ranges at the canonical nodes of a binary segmentation
// of the port space. Lookup walks root to leaf collecting labels — about
// log2(65536)+1 = 17 sequential RAM reads, the "very slow" figure of
// Table II — while supporting the label method and incremental update.
// Structural nodes without labels are the "empty nodes" storage overhead
// the paper mentions.
type SegmentTree struct {
	root  *segNode
	count int
	nodes int
}

type segNode struct {
	lo, hi      uint32 // node span, inclusive
	entries     []entry
	left, right *segNode
}

const segSpan = 1 << 16

// NewSegmentTree returns an empty tree over the full port space.
func NewSegmentTree() *SegmentTree {
	return &SegmentTree{root: &segNode{lo: 0, hi: segSpan - 1}, nodes: 1}
}

// Len returns the number of stored ranges.
func (t *SegmentTree) Len() int { return t.count }

// Insert stores the range at its canonical decomposition nodes.
func (t *SegmentTree) Insert(r rule.PortRange, lab label.Label) (hwsim.Cost, error) {
	if !r.Valid() {
		return hwsim.Cost{}, rule.ErrBadRange
	}
	var cost hwsim.Cost
	replaced := false
	t.update(t.root, r, func(n *segNode) {
		for i := range n.entries {
			if n.entries[i].r == r {
				n.entries[i].lab = lab
				replaced = true
				cost.Writes++
				return
			}
		}
		n.entries = append(n.entries, entry{r: r, lab: lab})
		cost.Writes++
	}, &cost)
	if !replaced {
		t.count++
	}
	cost.Cycles = cost.Reads + cost.Writes
	return cost, nil
}

// Delete removes the range from its canonical nodes.
func (t *SegmentTree) Delete(r rule.PortRange) (label.Label, hwsim.Cost, bool) {
	var cost hwsim.Cost
	lab := label.None
	found := false
	t.update(t.root, r, func(n *segNode) {
		for i := range n.entries {
			if n.entries[i].r == r {
				lab = n.entries[i].lab
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				found = true
				cost.Writes++
				return
			}
		}
	}, &cost)
	if found {
		t.count--
	}
	cost.Cycles = cost.Reads + cost.Writes
	return lab, cost, found
}

// update visits the canonical decomposition of r, applying fn at each
// canonical node, creating children as needed.
func (t *SegmentTree) update(n *segNode, r rule.PortRange, fn func(*segNode), cost *hwsim.Cost) {
	cost.Reads++
	if uint32(r.Lo) <= n.lo && n.hi <= uint32(r.Hi) {
		fn(n)
		return
	}
	mid := (n.lo + n.hi) / 2
	if n.left == nil {
		n.left = &segNode{lo: n.lo, hi: mid}
		n.right = &segNode{lo: mid + 1, hi: n.hi}
		t.nodes += 2
		cost.Writes += 2
	}
	if uint32(r.Lo) <= mid {
		t.update(n.left, r, fn, cost)
	}
	if uint32(r.Hi) > mid {
		t.update(n.right, r, fn, cost)
	}
}

// Lookup walks the root-to-leaf path of p, collecting labels stored at
// every node on the way.
func (t *SegmentTree) Lookup(p uint16, buf []label.Label) ([]label.Label, hwsim.Cost) {
	var cost hwsim.Cost
	var scratch [8]entry
	matches := scratch[:0]
	n := t.root
	for n != nil {
		cost.Reads++
		matches = append(matches, n.entries...)
		if n.left == nil {
			break
		}
		mid := (n.lo + n.hi) / 2
		if uint32(p) <= mid {
			n = n.left
		} else {
			n = n.right
		}
	}
	cost.Cycles = cost.Reads
	return emit(buf, matches), cost
}

// segNodeBits models the RAM word per node: span bounds are implicit in
// the addressing; the word holds an entry-list pointer and two child
// pointers.
const segNodeBits = 52

// Memory reports node pool plus label entries. The canonical decomposition
// stores a range in up to 2*log2(65536) nodes, and structural splits
// allocate empty nodes — the "inefficient memory usage" of Section III.C.2.
func (t *SegmentTree) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("segtree-nodes", segNodeBits, t.nodes)
	entries := 0
	var walk func(n *segNode)
	walk = func(n *segNode) {
		if n == nil {
			return
		}
		entries += len(n.entries)
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	mm.Add("segtree-entries", 48, entries)
	return mm
}

// Nodes returns the allocated node count.
func (t *SegmentTree) Nodes() int { return t.nodes }
