package rangematch

import (
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/rule"
)

// DefaultBankCapacity bounds the register bank. A hardware register bank
// compares all entries in parallel, so its size is limited by logic
// resources; the distinct port ranges of real filter sets are few enough
// to fit ("a small register bank is another option for Port field
// lookup").
const DefaultBankCapacity = 256

// RegisterBank is the paper's preferred port engine: a bank of registers
// holding {low bound, high bound, label}, compared against the input point
// in parallel. Lookup takes two clock cycles regardless of occupancy
// (compare, then priority-encode), updates write a single register line,
// and the label method is fully supported — the "very fast" row of
// Table II.
type RegisterBank struct {
	entries  []entry // kept in canonical priority order
	capacity int
}

// NewRegisterBank returns a bank with the given capacity; cap <= 0 selects
// DefaultBankCapacity.
func NewRegisterBank(capacity int) *RegisterBank {
	if capacity <= 0 {
		capacity = DefaultBankCapacity
	}
	return &RegisterBank{capacity: capacity}
}

// Len returns the number of stored ranges.
func (b *RegisterBank) Len() int { return len(b.entries) }

// Capacity returns the bank size.
func (b *RegisterBank) Capacity() int { return b.capacity }

// Insert stores the range in priority position. Hardware writes one
// register line; ordering is maintained by the software shadow so the
// priority encoder can be a fixed positional one.
func (b *RegisterBank) Insert(r rule.PortRange, lab label.Label) (hwsim.Cost, error) {
	if !r.Valid() {
		return hwsim.Cost{}, rule.ErrBadRange
	}
	for i := range b.entries {
		if b.entries[i].r == r {
			b.entries[i].lab = lab
			return hwsim.Cost{Cycles: 1, Writes: 1}, nil
		}
	}
	if len(b.entries) >= b.capacity {
		return hwsim.Cost{Cycles: 1, Reads: 1}, ErrFull
	}
	e := entry{r: r, lab: lab}
	// Insert keeping canonical priority order.
	i := 0
	for i < len(b.entries) && lessSpecific(b.entries[i], e) {
		i++
	}
	b.entries = append(b.entries, entry{})
	copy(b.entries[i+1:], b.entries[i:])
	b.entries[i] = e
	return hwsim.Cost{Cycles: 1, Writes: 1}, nil
}

// Delete removes the range.
func (b *RegisterBank) Delete(r rule.PortRange) (label.Label, hwsim.Cost, bool) {
	for i := range b.entries {
		if b.entries[i].r == r {
			lab := b.entries[i].lab
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return lab, hwsim.Cost{Cycles: 1, Writes: 1}, true
		}
	}
	return label.None, hwsim.Cost{Cycles: 1, Reads: 1}, false
}

// Lookup compares p against every register in parallel: two cycles (the
// paper: "the range search engine produces the labels in two clock
// cycles"), one logical read of the whole bank.
func (b *RegisterBank) Lookup(p uint16, buf []label.Label) ([]label.Label, hwsim.Cost) {
	cost := hwsim.Cost{Cycles: 2, Reads: 1}
	for _, e := range b.entries {
		if e.r.Matches(p) {
			buf = append(buf, e.lab)
		}
	}
	return buf, cost
}

// bankEntryBits models one register line: two 16-bit bounds, a 16-bit
// label and a valid flag.
const bankEntryBits = 49

// Memory reports the register file. Registers cost more per bit than RAM,
// which is why the bank only suits the small distinct-range sets of port
// fields ("moderate" in Table II despite the low entry count).
func (b *RegisterBank) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("registerbank", bankEntryBits*4, b.capacity) // 4x area weight for registers vs RAM
	return mm
}
