package rangematch

import (
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/rule"
)

// DefaultBankCapacity bounds the register bank. A hardware register bank
// compares all entries in parallel, so its size is limited by logic
// resources; the distinct port ranges of real filter sets are few enough
// to fit ("a small register bank is another option for Port field
// lookup").
const DefaultBankCapacity = 256

// RegisterBank is the paper's preferred port engine: a bank of registers
// holding {low bound, high bound, label}, compared against the input point
// in parallel. Lookup takes two clock cycles regardless of occupancy
// (compare, then priority-encode), updates write a single register line,
// and the label method is fully supported — the "very fast" row of
// Table II.
type RegisterBank struct {
	entries  []entry // kept in canonical priority order
	capacity int

	// The software shadow of the parallel compare: the port space is cut
	// at every range bound into elementary intervals, and each interval
	// precomputes which registers cover it (entry indices, in canonical
	// priority order). A lookup is then one binary search over the cut
	// points plus a short indexed append instead of an O(entries) scan —
	// the modeled hardware cost is unchanged, since the real bank
	// compares every register in parallel regardless. points[0] is
	// always 0; interval i spans [points[i], points[i+1]) with the last
	// interval closed at 65535. Label-only updates (Insert of an
	// existing range) leave the index untouched because intervals store
	// entry indices, not labels; structural inserts and deletes rebuild
	// it (O(entries × intervals), bounded by the bank capacity).
	points []uint32
	cover  [][]uint16
}

// NewRegisterBank returns a bank with the given capacity; cap <= 0 selects
// DefaultBankCapacity.
func NewRegisterBank(capacity int) *RegisterBank {
	if capacity <= 0 {
		capacity = DefaultBankCapacity
	}
	return &RegisterBank{capacity: capacity}
}

// Len returns the number of stored ranges.
func (b *RegisterBank) Len() int { return len(b.entries) }

// Capacity returns the bank size.
func (b *RegisterBank) Capacity() int { return b.capacity }

// Insert stores the range in priority position. Hardware writes one
// register line; ordering is maintained by the software shadow so the
// priority encoder can be a fixed positional one.
func (b *RegisterBank) Insert(r rule.PortRange, lab label.Label) (hwsim.Cost, error) {
	if !r.Valid() {
		return hwsim.Cost{}, rule.ErrBadRange
	}
	for i := range b.entries {
		if b.entries[i].r == r {
			b.entries[i].lab = lab
			return hwsim.Cost{Cycles: 1, Writes: 1}, nil
		}
	}
	if len(b.entries) >= b.capacity {
		return hwsim.Cost{Cycles: 1, Reads: 1}, ErrFull
	}
	e := entry{r: r, lab: lab}
	// Insert keeping canonical priority order.
	i := 0
	for i < len(b.entries) && lessSpecific(b.entries[i], e) {
		i++
	}
	b.entries = append(b.entries, entry{})
	copy(b.entries[i+1:], b.entries[i:])
	b.entries[i] = e
	b.reindex()
	return hwsim.Cost{Cycles: 1, Writes: 1}, nil
}

// reindex rebuilds the elementary-interval index from the entries. Called
// on structural mutations only, which the RCU snapshot scheme serializes
// against lookups.
func (b *RegisterBank) reindex() {
	b.points = b.points[:0]
	b.points = append(b.points, 0)
	for _, e := range b.entries {
		b.points = append(b.points, uint32(e.r.Lo), uint32(e.r.Hi)+1)
	}
	sortU32(b.points)
	b.points = dedupU32(b.points)
	if n := len(b.points); n > 0 && b.points[n-1] > 65535 {
		b.points = b.points[:n-1] // hi+1 past the port space opens no interval
	}
	if cap(b.cover) < len(b.points) {
		b.cover = make([][]uint16, len(b.points))
	}
	b.cover = b.cover[:len(b.points)]
	for i, lo := range b.points {
		list := b.cover[i][:0]
		for j, e := range b.entries {
			if e.r.Matches(uint16(lo)) {
				list = append(list, uint16(j))
			}
		}
		b.cover[i] = list
	}
}

// sortU32 is an insertion sort: the point set is small (at most twice the
// bank capacity) and nearly sorted on incremental updates.
func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// dedupU32 compacts a sorted slice in place.
func dedupU32(s []uint32) []uint32 {
	if len(s) == 0 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Delete removes the range.
func (b *RegisterBank) Delete(r rule.PortRange) (label.Label, hwsim.Cost, bool) {
	for i := range b.entries {
		if b.entries[i].r == r {
			lab := b.entries[i].lab
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			b.reindex()
			return lab, hwsim.Cost{Cycles: 1, Writes: 1}, true
		}
	}
	return label.None, hwsim.Cost{Cycles: 1, Reads: 1}, false
}

// Lookup compares p against every register in parallel: two cycles (the
// paper: "the range search engine produces the labels in two clock
// cycles"), one logical read of the whole bank. The software shadow
// resolves the parallel compare through the precomputed interval index:
// one binary search over the cut points, then the covering registers'
// labels in canonical priority order.
//
//repro:noalloc
func (b *RegisterBank) Lookup(p uint16, buf []label.Label) ([]label.Label, hwsim.Cost) {
	cost := hwsim.Cost{Cycles: 2, Reads: 1}
	if len(b.points) == 0 {
		return buf, cost
	}
	// Largest i with points[i] <= p; points[0] == 0, so lo is in range.
	lo, hi := 0, len(b.points)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if uint32(p) >= b.points[mid] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	for _, j := range b.cover[lo] {
		buf = append(buf, b.entries[j].lab)
	}
	return buf, cost
}

// bankEntryBits models one register line: two 16-bit bounds, a 16-bit
// label and a valid flag.
const bankEntryBits = 49

// Memory reports the register file. Registers cost more per bit than RAM,
// which is why the bank only suits the small distinct-range sets of port
// fields ("moderate" in Table II despite the low entry count).
func (b *RegisterBank) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("registerbank", bankEntryBits*4, b.capacity) // 4x area weight for registers vs RAM
	return mm
}
