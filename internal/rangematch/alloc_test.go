package rangematch

import (
	"testing"

	"repro/internal/label"
	"repro/internal/rule"
)

// TestRegisterBankLookupZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotation on RegisterBank.Lookup: the binary search
// over the precomputed interval index plus the indexed label append must
// stay off the heap with a caller-supplied buffer.
func TestRegisterBankLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	b := NewRegisterBank(0)
	ranges := []rule.PortRange{
		{Lo: 0, Hi: 65535},
		{Lo: 80, Hi: 80},
		{Lo: 0, Hi: 1023},
		{Lo: 1024, Hi: 65535},
		{Lo: 443, Hi: 443},
	}
	for i, r := range ranges {
		if _, err := b.Insert(r, label.Label(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]label.Label, 0, 16)
	matched := 0
	allocs := testing.AllocsPerRun(1000, func() {
		out, _ := b.Lookup(443, buf[:0])
		matched += len(out)
	})
	if allocs != 0 {
		t.Errorf("Lookup allocated %v times per run, want 0", allocs)
	}
	if matched == 0 {
		t.Fatal("overlapping ranges should match")
	}
}
