//go:build !race

package rangematch

// raceEnabled reports whether this binary was built with -race; see
// race_test.go.
const raceEnabled = false
