// Package rangematch implements the range-matching engine candidates for
// the port fields (Section III.C.2): the segment tree, the range tree and
// the register bank the paper prefers. Engines return the labels of all
// stored ranges containing a 16-bit point, most specific (narrowest range)
// first, together with hardware cost.
package rangematch

import (
	"errors"

	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/rule"
)

// ErrFull is returned when a fixed-capacity engine (the register bank)
// cannot accept another range.
var ErrFull = errors.New("range engine full")

// Engine is the common shape of the range-matching candidates.
type Engine interface {
	// Insert stores the range with its label, replacing the label if the
	// range is already present.
	Insert(r rule.PortRange, lab label.Label) (hwsim.Cost, error)
	// Delete removes the range, returning its label and presence.
	Delete(r rule.PortRange) (label.Label, hwsim.Cost, bool)
	// Lookup appends the labels of all ranges containing p to buf in
	// priority order (narrowest first, ties by low bound then label).
	Lookup(p uint16, buf []label.Label) ([]label.Label, hwsim.Cost)
	// Len returns the number of stored ranges.
	Len() int
	// Memory reports the RAM/register resources occupied.
	Memory() hwsim.MemoryMap
}

// entry is a stored range with its label.
type entry struct {
	r   rule.PortRange
	lab label.Label
}

// lessSpecific orders entries by priority: narrowest range first, then low
// bound, then label — the canonical per-field label priority all engines
// must agree on.
func lessSpecific(a, b entry) bool {
	if aw, bw := a.r.Width(), b.r.Width(); aw != bw {
		return aw < bw
	}
	if a.r.Lo != b.r.Lo {
		return a.r.Lo < b.r.Lo
	}
	return a.lab < b.lab
}

// sortEntries sorts matches into canonical priority order. It is on the
// lookup hot path (emit), so it is an insertion sort over the
// stack-resident match list rather than sort.Slice, whose closure would
// heap-allocate on every lookup.
func sortEntries(es []entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && lessSpecific(e, es[j]) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

func emit(buf []label.Label, es []entry) []label.Label {
	sortEntries(es)
	for _, e := range es {
		buf = append(buf, e.lab)
	}
	return buf
}
