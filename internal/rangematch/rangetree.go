package rangematch

import (
	"sort"

	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/rule"
)

// RangeTree is the fast/high-memory candidate: all stored ranges are
// flattened into disjoint elementary intervals, each carrying the complete
// pre-sorted list of matching labels. Lookup is a binary search over the
// interval table (fast, easily pipelined); the label duplication across
// elementary intervals is the "high" memory figure of Table II, and every
// update rebuilds the table, so incremental update is not supported
// ("label method support: No" — labels cannot be edited in place).
type RangeTree struct {
	stored []entry

	// flattened table: bounds[i] is the first point of interval i;
	// interval i spans [bounds[i], bounds[i+1]-1]; lists[i] holds its
	// matching labels in canonical priority order.
	bounds []uint32
	lists  [][]label.Label
	dup    int // total duplicated label entries, for memory accounting
}

// NewRangeTree returns an empty range tree.
func NewRangeTree() *RangeTree { return &RangeTree{} }

// Len returns the number of stored ranges.
func (t *RangeTree) Len() int { return len(t.stored) }

// Insert stores the range and rebuilds the elementary-interval table.
func (t *RangeTree) Insert(r rule.PortRange, lab label.Label) (hwsim.Cost, error) {
	if !r.Valid() {
		return hwsim.Cost{}, rule.ErrBadRange
	}
	for i := range t.stored {
		if t.stored[i].r == r {
			t.stored[i].lab = lab
			return t.rebuild(), nil
		}
	}
	t.stored = append(t.stored, entry{r: r, lab: lab})
	return t.rebuild(), nil
}

// Delete removes the range and rebuilds.
func (t *RangeTree) Delete(r rule.PortRange) (label.Label, hwsim.Cost, bool) {
	for i := range t.stored {
		if t.stored[i].r == r {
			lab := t.stored[i].lab
			t.stored = append(t.stored[:i], t.stored[i+1:]...)
			return lab, t.rebuild(), true
		}
	}
	return label.None, hwsim.Cost{Cycles: 1, Reads: 1}, false
}

// rebuild recomputes the elementary intervals; its write cost is the whole
// table, which is what disqualifies the structure for frequently updated
// rulesets.
func (t *RangeTree) rebuild() hwsim.Cost {
	pts := map[uint32]struct{}{0: {}}
	for _, e := range t.stored {
		pts[uint32(e.r.Lo)] = struct{}{}
		pts[uint32(e.r.Hi)+1] = struct{}{}
	}
	bounds := make([]uint32, 0, len(pts))
	for p := range pts {
		if p < segSpan {
			bounds = append(bounds, p)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	lists := make([][]label.Label, len(bounds))
	dup := 0
	for i, lo := range bounds {
		var matches []entry
		for _, e := range t.stored {
			if e.r.Matches(uint16(lo)) {
				matches = append(matches, e)
			}
		}
		sortEntries(matches)
		ls := make([]label.Label, len(matches))
		for j, m := range matches {
			ls[j] = m.lab
		}
		lists[i] = ls
		dup += len(ls)
	}
	t.bounds, t.lists, t.dup = bounds, lists, dup
	return hwsim.Cost{Cycles: len(bounds) + dup, Writes: len(bounds) + dup}
}

// Lookup binary-searches the elementary interval containing p and returns
// its precomputed list.
func (t *RangeTree) Lookup(p uint16, buf []label.Label) ([]label.Label, hwsim.Cost) {
	var cost hwsim.Cost
	if len(t.bounds) == 0 {
		cost.Cycles, cost.Reads = 1, 1
		return buf, cost
	}
	// Binary search: number of probes = ceil(log2(n))+1 reads.
	lo, hi := 0, len(t.bounds)-1
	for lo < hi {
		cost.Reads++
		mid := (lo + hi + 1) / 2
		if t.bounds[mid] <= uint32(p) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	cost.Reads++ // fetch the list word
	cost.Cycles = cost.Reads
	return append(buf, t.lists[lo]...), cost
}

// Memory reports the interval table including duplicated label entries.
func (t *RangeTree) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("rangetree-bounds", 17+20, len(t.bounds))
	mm.Add("rangetree-labels", 16, t.dup)
	return mm
}

// Intervals returns the number of elementary intervals (for tests and
// reports).
func (t *RangeTree) Intervals() int { return len(t.bounds) }
