package fwstate

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rule"
)

// The tests in this file discharge the TEST_PLAN.md contracts for Key
// and Table; each test name matches its plan entry.

func fwd(i int) rule.Header {
	return rule.Header{SrcIP: 0x0a000000 | uint32(i), DstIP: 0x08080808,
		SrcPort: uint16(1024 + i), DstPort: 443, Proto: rule.ProtoTCP}
}

func reverse(h rule.Header) rule.Header {
	return rule.Header{SrcIP: h.DstIP, DstIP: h.SrcIP,
		SrcPort: h.DstPort, DstPort: h.SrcPort, Proto: h.Proto}
}

func reverse6(h rule.Header6) rule.Header6 {
	return rule.Header6{SrcIP: h.DstIP, DstIP: h.SrcIP,
		SrcPort: h.DstPort, DstPort: h.SrcPort, Proto: h.Proto}
}

// manualClock is a settable nanosecond clock for deterministic TTL
// tests.
type manualClock struct{ ns atomic.Int64 }

func (c *manualClock) now() int64          { return c.ns.Load() }
func (c *manualClock) set(d time.Duration) { c.ns.Store(int64(d)) }

// clockedTable builds a table on a manual clock starting at t=0.
func clockedTable(entries int, ttl time.Duration) (*Table, *manualClock) {
	t := New(entries, ttl)
	c := &manualClock{}
	t.SetClock(c.now)
	return t, c
}

func TestKeyForwardReverseCollide(t *testing.T) {
	for i := 0; i < 64; i++ {
		h := fwd(i)
		if KeyOf(h) != KeyOf(reverse(h)) {
			t.Fatalf("KeyOf(%+v) != KeyOf(reverse)", h)
		}
	}
	// Self-flow: forward is its own reverse; normalization must be
	// stable.
	self := rule.Header{SrcIP: 1, DstIP: 1, SrcPort: 7, DstPort: 7, Proto: rule.ProtoUDP}
	if KeyOf(self) != KeyOf(reverse(self)) {
		t.Fatal("self-flow key unstable")
	}
}

func TestKeyDistinctFlowsDiffer(t *testing.T) {
	base := fwd(1)
	variants := []rule.Header{
		{SrcIP: base.SrcIP + 1, DstIP: base.DstIP, SrcPort: base.SrcPort, DstPort: base.DstPort, Proto: base.Proto},
		{SrcIP: base.SrcIP, DstIP: base.DstIP + 1, SrcPort: base.SrcPort, DstPort: base.DstPort, Proto: base.Proto},
		{SrcIP: base.SrcIP, DstIP: base.DstIP, SrcPort: base.SrcPort + 1, DstPort: base.DstPort, Proto: base.Proto},
		{SrcIP: base.SrcIP, DstIP: base.DstIP, SrcPort: base.SrcPort, DstPort: base.DstPort + 1, Proto: base.Proto},
		{SrcIP: base.SrcIP, DstIP: base.DstIP, SrcPort: base.SrcPort, DstPort: base.DstPort, Proto: rule.ProtoUDP},
		// Ports swapped in place: NOT the reverse (addresses kept), so a
		// different flow.
		{SrcIP: base.SrcIP, DstIP: base.DstIP, SrcPort: base.DstPort, DstPort: base.SrcPort, Proto: base.Proto},
	}
	for i, v := range variants {
		if KeyOf(base) == KeyOf(v) {
			t.Errorf("variant %d: KeyOf(%+v) collided with base", i, v)
		}
	}
}

func TestKey6ForwardReverseCollide(t *testing.T) {
	h6 := rule.Header6{
		SrcIP:   rule.Addr6{Hi: 0x20010db800000000, Lo: 1},
		DstIP:   rule.Addr6{Hi: 0x20010db800000000, Lo: 2},
		SrcPort: 40000, DstPort: 53, Proto: rule.ProtoUDP,
	}
	if KeyOf6(h6) != KeyOf6(reverse6(h6)) {
		t.Fatal("v6 forward/reverse keys differ")
	}
	// A v4 flow whose addresses zero-extend to a v6 flow's halves must
	// not share a key with it (family tag).
	h4 := rule.Header{SrcIP: 1, DstIP: 2, SrcPort: 40000, DstPort: 53, Proto: rule.ProtoUDP}
	z6 := rule.Header6{
		SrcIP:   rule.Addr6{Lo: 1},
		DstIP:   rule.Addr6{Lo: 2},
		SrcPort: 40000, DstPort: 53, Proto: rule.ProtoUDP,
	}
	if KeyOf(h4) == KeyOf6(z6) {
		t.Fatal("v4 and zero-extended v6 flows share a key")
	}
}

func TestNewClamps(t *testing.T) {
	tb := New(0, 0)
	if tb.Entries() != MinEntries {
		t.Errorf("Entries() = %d, want %d", tb.Entries(), MinEntries)
	}
	if tb.TTL() != DefaultTTL {
		t.Errorf("TTL() = %v, want %v", tb.TTL(), DefaultTTL)
	}
	if got := New(1000, time.Second).Entries(); got != 1024 {
		t.Errorf("New(1000).Entries() = %d, want 1024", got)
	}
}

func TestInstallOnForward(t *testing.T) {
	tb, _ := clockedTable(256, time.Second)
	k := KeyOf(fwd(1))
	if _, _, ok := tb.Get(k); ok {
		t.Fatal("hit on empty table")
	}
	res := core.Result{RuleID: 7, Priority: 3, Action: rule.ActionPermit, Found: true}
	_, gen, _ := tb.Get(k)
	tb.Put(gen, k, res)
	got, _, ok := tb.Get(k)
	if !ok || got != res {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, res)
	}
	st := tb.Stats()
	if st.Installs != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 install, 1 hit, 2 misses", st)
	}
}

func TestReverseAccept(t *testing.T) {
	tb, _ := clockedTable(256, time.Second)
	h := fwd(2)
	res := core.Result{RuleID: 9, Priority: 1, Found: true}
	_, gen, _ := tb.Get(KeyOf(h))
	tb.Put(gen, KeyOf(h), res)
	// The reverse direction probes with its own KeyOf — which must land
	// on the entry the forward direction installed.
	got, _, ok := tb.Get(KeyOf(reverse(h)))
	if !ok || got != res {
		t.Fatalf("reverse Get = %+v, %v; want the forward verdict", got, ok)
	}
}

func TestTTLExpiry(t *testing.T) {
	tb, clk := clockedTable(256, time.Second)
	k := KeyOf(fwd(3))
	_, gen, _ := tb.Get(k)
	tb.Put(gen, k, core.Result{RuleID: 1, Found: true})
	clk.set(500 * time.Millisecond)
	if _, _, ok := tb.Get(k); !ok {
		t.Fatal("entry expired before its TTL")
	}
	// The hit above refreshed the deadline to 1.5s; step past it.
	clk.set(1600 * time.Millisecond)
	if _, _, ok := tb.Get(k); ok {
		t.Fatal("expired entry served")
	}
	st := tb.Stats()
	if st.Expiries != 1 {
		t.Errorf("expiries = %d, want 1", st.Expiries)
	}
	// Conservation: every probe is a hit or a miss (expiry doubles as a
	// miss).
	if st.Hits+st.Misses != 3 {
		t.Errorf("hits+misses = %d, want 3 (probes issued)", st.Hits+st.Misses)
	}
}

func TestTTLRefreshOnHit(t *testing.T) {
	tb, clk := clockedTable(256, time.Second)
	k := KeyOf(fwd(4))
	_, gen, _ := tb.Get(k)
	tb.Put(gen, k, core.Result{RuleID: 2, Found: true})
	// Each probe lands 0.9s after the previous one: past the install
	// TTL but inside the refreshed deadline every time.
	for _, at := range []time.Duration{900, 1800, 2700} {
		clk.set(at * time.Millisecond)
		if _, _, ok := tb.Get(k); !ok {
			t.Fatalf("entry not served at t=%vms despite refreshes", at)
		}
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	tb, _ := clockedTable(MinEntries, time.Second)
	base := KeyOf(fwd(1))
	slot := hash(base) & tb.mask
	var other Key
	for i := 2; ; i++ {
		if k := KeyOf(fwd(i)); hash(k)&tb.mask == slot {
			other = k
			break
		}
	}
	_, gen, _ := tb.Get(base)
	tb.Put(gen, base, core.Result{RuleID: 1, Found: true})
	tb.Put(gen, other, core.Result{RuleID: 2, Found: true})
	if st := tb.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if got, _, ok := tb.Get(other); !ok || got.RuleID != 2 {
		t.Errorf("displacing flow not served: %+v, %v", got, ok)
	}
	if _, _, ok := tb.Get(base); ok {
		t.Error("displaced flow still served")
	}
}

func TestGenerationInvalidation(t *testing.T) {
	tb, _ := clockedTable(256, time.Second)
	k := KeyOf(fwd(5))
	_, gen, _ := tb.Get(k)
	tb.Put(gen, k, core.Result{RuleID: 1, Found: true})
	if _, _, ok := tb.Get(k); !ok {
		t.Fatal("warm entry missing")
	}
	tb.Invalidate()
	if _, _, ok := tb.Get(k); ok {
		t.Fatal("stale flow served after Invalidate")
	}
	if st := tb.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestStaleFillNeverServed(t *testing.T) {
	tb, _ := clockedTable(256, time.Second)
	k := KeyOf(fwd(6))
	_, gen, _ := tb.Get(k) // generation observed pre-invalidate
	tb.Invalidate()
	tb.Put(gen, k, core.Result{RuleID: 42, Found: true})
	if _, _, ok := tb.Get(k); ok {
		t.Fatal("stale-generation fill served")
	}
}

// TestConcurrentChurn drives probers, installers and an invalidator in
// parallel (the -race half of the lock-free contract), then checks the
// table still answers a sequential pass consistently.
func TestConcurrentChurn(t *testing.T) {
	tb := New(1024, time.Minute)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				k := KeyOf(fwd(i % 512))
				res, gen, ok := tb.Get(k)
				if !ok {
					tb.Put(gen, k, core.Result{RuleID: i % 512, Found: true})
				} else if !res.Found {
					t.Error("not-found verdict served from state")
					return
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tb.Invalidate()
	}
	wg.Wait()
	st := tb.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
	if st.Invalidations != 100 {
		t.Errorf("invalidations = %d, want 100", st.Invalidations)
	}
	// Sequential differential pass against a map oracle on the settled
	// table: a served verdict must be the installed one (the table is
	// direct-mapped, so a miss — the flow was evicted by a colliding
	// install — is legal; a wrong verdict never is).
	oracle := make(map[Key]core.Result)
	for i := 0; i < 512; i++ {
		k := KeyOf(fwd(i))
		res, gen, ok := tb.Get(k)
		if !ok {
			res = core.Result{RuleID: i, Found: true}
			tb.Put(gen, k, res)
		}
		oracle[k] = res
	}
	served := 0
	for i := 0; i < 512; i++ {
		k := KeyOf(fwd(i))
		if res, _, ok := tb.Get(k); ok {
			served++
			if res != oracle[k] {
				t.Fatalf("flow %d: got %+v; oracle %+v", i, res, oracle[k])
			}
		}
	}
	if served == 0 {
		t.Fatal("no flow survived to the differential pass")
	}
}

// TestTableProbeZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotations on the probe path: KeyOf, KeyOf6, Hash,
// Get and GetHashed must stay off the heap on hits, misses and
// expiries.
func TestTableProbeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	tb, _ := clockedTable(256, time.Second)
	h := fwd(7)
	h6 := rule.Header6{SrcIP: rule.Addr6{Hi: 1, Lo: 2}, DstIP: rule.Addr6{Hi: 3, Lo: 4},
		SrcPort: 1, DstPort: 2, Proto: rule.ProtoTCP}
	k := KeyOf(h)
	miss := KeyOf(fwd(8))
	_, gen, _ := tb.Get(k)
	tb.PutHashed(tb.Hash(k), gen, k, core.Result{RuleID: 7, Found: true})
	hits := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := tb.Get(KeyOf(h)); ok {
			hits++
		}
		tb.GetHashed(tb.Hash(miss), miss)
		_ = KeyOf6(h6)
	})
	if allocs != 0 {
		t.Errorf("probe path allocated %v times per run, want 0", allocs)
	}
	if hits == 0 {
		t.Fatal("hit path never exercised")
	}
}
