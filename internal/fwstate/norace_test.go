//go:build !race

package fwstate

// raceEnabled reports whether this binary was built with -race; see
// race_test.go.
const raceEnabled = false
