package fwstate

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestFlowKeySeedCorpus pins the checked-in FuzzFlowKey seed corpus to
// the in-code seed set, so the two cannot drift apart. Run with
// FWSTATE_WRITE_SEEDS=1 to regenerate the files after changing
// seedFlowPairs.
func TestFlowKeySeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFlowKey")
	write := os.Getenv("FWSTATE_WRITE_SEEDS") == "1"
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range seedFlowPairs() {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if write {
			if err := os.WriteFile(name, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("seed corpus file missing (regenerate with FWSTATE_WRITE_SEEDS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("%s drifted from seedFlowPairs; regenerate with FWSTATE_WRITE_SEEDS=1", name)
		}
	}
}
