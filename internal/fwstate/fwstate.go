// Package fwstate implements a sharded, TTL-expiring, lock-free flow
// table over the classifier — the conntrack layer of a stateful
// firewall. A forward-direction packet whose verdict says
// "allow-established" installs an entry under the flow's canonical Key
// (endpoints sorted, so both directions map to one entry); subsequent
// packets of either direction are then accepted by state with one hash
// probe, before the full classification pipeline runs.
//
// Concurrency model: like internal/flowcache, the table is an array of
// atomic.Pointer slots over immutable entries — readers load one
// pointer and compare Key and generation, no locks, no retries.
// Entries are generation-stamped with the generation observed *before*
// the classifying engine lookup ran, and Invalidate (called by the
// engine wrapper after each rule update or atomic Replace completes)
// bumps the generation, so established state can never outlive the
// ruleset it was derived from and readers never mix generations. The
// one mutable field of a published entry is its expiry deadline, an
// atomic.Int64 the probe path pushes forward on every hit — a
// wait-free TTL refresh that never re-publishes the entry.
//
// The slot array is split into shards only for statistics: per-shard
// counters (installs, hits, misses, expiries, evictions) keep the hot
// path off a single contended cache line.
package fwstate

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// statShards is the number of counter shards; a power of two so the
// shard pick is a mask of the key hash.
const statShards = 16

// MinEntries is the smallest table the constructor will build.
const MinEntries = 64

// DefaultTTL is the idle lifetime of an established flow when the
// caller passes a non-positive TTL — the common conntrack default for
// generic (non-TCP-aware) state.
const DefaultTTL = 60 * time.Second

// Stats is a point-in-time snapshot of flow-table effectiveness.
type Stats struct {
	// Entries is the slot capacity of the table.
	Entries int
	// Installs counts published flow entries (Put calls).
	Installs uint64
	// Hits and Misses count Get outcomes; an expired entry counts as
	// both an expiry and a miss, so Hits+Misses covers every probe.
	Hits, Misses uint64
	// Expiries counts probes that found a matching entry past its
	// deadline.
	Expiries uint64
	// Evictions counts installs that displaced a live (same-generation,
	// unexpired, different-key) entry.
	Evictions uint64
	// Invalidations counts generation bumps (one per completed rule
	// update or atomic replace on the wrapped engine).
	Invalidations uint64
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// entry is one published flow. key, res and gen are immutable; expire
// is the one mutable field — the idle deadline in clock nanoseconds,
// pushed forward atomically on every served hit.
type entry struct {
	key    Key
	res    core.Result
	gen    uint64
	expire atomic.Int64
}

// statShard keeps one shard of the counters, padded to a cache line so
// shards do not false-share.
type statShard struct {
	installs  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	expiries  atomic.Uint64
	evictions atomic.Uint64
	_         [3]uint64
}

// Table is the sharded lock-free flow table.
type Table struct {
	gen   atomic.Uint64
	inval atomic.Uint64
	slots []atomic.Pointer[entry]
	mask  uint64
	ttl   int64
	now   func() int64
	stats [statShards]statShard
}

// New returns a table with at least the requested number of entry
// slots (rounded up to a power of two, minimum MinEntries). A
// non-positive ttl falls back to DefaultTTL.
func New(entries int, ttl time.Duration) *Table {
	n := MinEntries
	for n < entries {
		n <<= 1
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Table{
		slots: make([]atomic.Pointer[entry], n),
		mask:  uint64(n - 1),
		ttl:   int64(ttl),
		now:   func() int64 { return time.Now().UnixNano() },
	}
}

// Entries returns the slot capacity.
func (t *Table) Entries() int { return len(t.slots) }

// TTL returns the configured idle lifetime.
func (t *Table) TTL() time.Duration { return time.Duration(t.ttl) }

// SetClock replaces the table's nanosecond clock — deterministic TTL
// tests only. Must be called before the table is shared between
// goroutines.
func (t *Table) SetClock(now func() int64) { t.now = now }

// Hash exposes the slot hash of a Key, so callers that probe and then
// install on the same flow compute it once and thread it through
// GetHashed and PutHashed.
//
//repro:noalloc
func (t *Table) Hash(k Key) uint64 { return hash(k) }

// Get probes the table for an established flow. On a hit it returns
// the stored verdict and pushes the flow's idle deadline forward by
// one TTL. On a miss it returns the generation observed at probe time:
// a caller that goes on to classify and install must thread that
// generation through to Put, so the fill is stamped no newer than the
// engine state it read (see the package comment's staleness argument).
//
//repro:noalloc
func (t *Table) Get(k Key) (res core.Result, gen uint64, ok bool) {
	return t.GetHashed(hash(k), k)
}

// GetHashed is Get with the caller-computed hash hk (which must equal
// Hash(k)).
//
//repro:noalloc
func (t *Table) GetHashed(hk uint64, k Key) (res core.Result, gen uint64, ok bool) {
	gen = t.gen.Load()
	st := &t.stats[hk&(statShards-1)]
	if e := t.slots[hk&t.mask].Load(); e != nil && e.gen == gen && e.key == k {
		now := t.now()
		if e.expire.Load() >= now {
			// Wait-free TTL refresh: the deadline is the entry's one
			// mutable field, so a hit never re-publishes the entry.
			e.expire.Store(now + t.ttl)
			st.hits.Add(1)
			return e.res, gen, true
		}
		st.expiries.Add(1)
	}
	st.misses.Add(1)
	return core.Result{}, gen, false
}

// Put installs an established flow computed against the engine state
// current at generation gen. A fill stamped with a stale generation is
// published anyway but can never be served, so a racing rule update
// silently turns the install into a no-op.
func (t *Table) Put(gen uint64, k Key, res core.Result) {
	t.PutHashed(hash(k), gen, k, res)
}

// PutHashed is Put with the caller-computed hash hk (which must equal
// Hash(k)).
func (t *Table) PutHashed(hk uint64, gen uint64, k Key, res core.Result) {
	slot := &t.slots[hk&t.mask]
	st := &t.stats[hk&(statShards-1)]
	if old := slot.Load(); old != nil && old.key != k &&
		old.gen == t.gen.Load() && old.expire.Load() >= t.now() {
		st.evictions.Add(1)
	}
	e := &entry{key: k, res: res, gen: gen}
	e.expire.Store(t.now() + t.ttl)
	slot.Store(e)
	st.installs.Add(1)
}

// Invalidate marks every established flow stale with one generation
// bump. The engine wrapper calls it after a rule update or atomic
// Replace has fully completed, so the generation a reader observes is
// always no newer than the engine state it will read.
func (t *Table) Invalidate() {
	t.gen.Add(1)
	t.inval.Add(1)
}

// Stats aggregates the per-shard counters.
func (t *Table) Stats() Stats {
	s := Stats{Entries: len(t.slots), Invalidations: t.inval.Load()}
	for i := range t.stats {
		st := &t.stats[i]
		s.Installs += st.installs.Load()
		s.Hits += st.hits.Load()
		s.Misses += st.misses.Load()
		s.Expiries += st.expiries.Load()
		s.Evictions += st.evictions.Load()
	}
	return s
}
