//go:build race

package fwstate

// raceEnabled reports that this binary was built with -race, whose
// instrumentation allocates on otherwise allocation-free paths;
// AllocsPerRun guards skip themselves under it.
const raceEnabled = true
