package fwstate

import (
	"encoding/binary"
	"testing"

	"repro/internal/rule"
)

// flowPairLen is the fuzz input size: one flags byte plus two encoded
// flows (srcHi, srcLo, dstHi, dstLo uint64; sport, dport uint16; proto
// uint8 = 37 bytes each).
const flowPairLen = 1 + 2*37

// decodeFlow reads one encoded flow at off.
func decodeFlow(data []byte, off int) rule.Header6 {
	return rule.Header6{
		SrcIP:   rule.Addr6{Hi: binary.BigEndian.Uint64(data[off:]), Lo: binary.BigEndian.Uint64(data[off+8:])},
		DstIP:   rule.Addr6{Hi: binary.BigEndian.Uint64(data[off+16:]), Lo: binary.BigEndian.Uint64(data[off+24:])},
		SrcPort: binary.BigEndian.Uint16(data[off+32:]),
		DstPort: binary.BigEndian.Uint16(data[off+34:]),
		Proto:   data[off+36],
	}
}

// to4 truncates an encoded flow to its IPv4 shape (low 32 address
// bits), the projection the v4 half of the property uses.
func to4(h rule.Header6) rule.Header {
	return rule.Header{
		SrcIP: uint32(h.SrcIP.Lo), DstIP: uint32(h.DstIP.Lo),
		SrcPort: h.SrcPort, DstPort: h.DstPort, Proto: h.Proto,
	}
}

// encodeFlowPair builds a fuzz input from two flows — shared with the
// seed-corpus generator in seedgen_test.go.
func encodeFlowPair(v6 bool, a, b rule.Header6) []byte {
	data := make([]byte, flowPairLen)
	if v6 {
		data[0] = 1
	}
	for i, h := range []rule.Header6{a, b} {
		off := 1 + 37*i
		binary.BigEndian.PutUint64(data[off:], h.SrcIP.Hi)
		binary.BigEndian.PutUint64(data[off+8:], h.SrcIP.Lo)
		binary.BigEndian.PutUint64(data[off+16:], h.DstIP.Hi)
		binary.BigEndian.PutUint64(data[off+24:], h.DstIP.Lo)
		binary.BigEndian.PutUint16(data[off+32:], h.SrcPort)
		binary.BigEndian.PutUint16(data[off+34:], h.DstPort)
		data[off+36] = h.Proto
	}
	return data
}

// FuzzFlowKey checks the Key normalization contract on arbitrary flow
// pairs: the forward and reverse directions of one flow must collide,
// two flows that are neither equal nor each other's reverse must not,
// and the v4/v6 families never share a key.
func FuzzFlowKey(f *testing.F) {
	for _, s := range seedFlowPairs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < flowPairLen {
			return
		}
		v6 := data[0]&1 != 0
		h1, h2 := decodeFlow(data, 1), decodeFlow(data, 1+37)
		if v6 {
			k1, k2 := KeyOf6(h1), KeyOf6(h2)
			if k1 != KeyOf6(reverse6(h1)) {
				t.Fatalf("v6 forward/reverse keys differ for %+v", h1)
			}
			sameFlow := h1 == h2 || h1 == reverse6(h2)
			if (k1 == k2) != sameFlow {
				t.Fatalf("v6 keys equal=%v, same flow=%v for %+v / %+v", k1 == k2, sameFlow, h1, h2)
			}
			return
		}
		g1, g2 := to4(h1), to4(h2)
		k1, k2 := KeyOf(g1), KeyOf(g2)
		if k1 != KeyOf(reverse(g1)) {
			t.Fatalf("forward/reverse keys differ for %+v", g1)
		}
		sameFlow := g1 == g2 || g1 == reverse(g2)
		if (k1 == k2) != sameFlow {
			t.Fatalf("keys equal=%v, same flow=%v for %+v / %+v", k1 == k2, sameFlow, g1, g2)
		}
		// Family separation: the zero-extended v6 reading of the same
		// flow must never share a key with the v4 reading.
		z1 := rule.Header6{SrcIP: rule.Addr6{Lo: uint64(g1.SrcIP)}, DstIP: rule.Addr6{Lo: uint64(g1.DstIP)},
			SrcPort: g1.SrcPort, DstPort: g1.DstPort, Proto: g1.Proto}
		if k1 == KeyOf6(z1) {
			t.Fatalf("v4 and zero-extended v6 keys collide for %+v", g1)
		}
	})
}

// seedFlowPairs is the in-code seed set; the checked-in corpus under
// testdata/fuzz/FuzzFlowKey mirrors it (see TestWriteFlowKeySeeds).
func seedFlowPairs() [][]byte {
	h := rule.Header6{SrcIP: rule.Addr6{Lo: 0x0a000001}, DstIP: rule.Addr6{Lo: 0x08080808},
		SrcPort: 1234, DstPort: 53, Proto: rule.ProtoUDP}
	v6 := rule.Header6{SrcIP: rule.Addr6{Hi: 0x20010db800000000, Lo: 1},
		DstIP:   rule.Addr6{Hi: 0x20010db800000000, Lo: 2},
		SrcPort: 443, DstPort: 40000, Proto: rule.ProtoTCP}
	swapped := h
	swapped.SrcPort, swapped.DstPort = h.DstPort, h.SrcPort
	self := rule.Header6{SrcIP: rule.Addr6{Lo: 7}, DstIP: rule.Addr6{Lo: 7},
		SrcPort: 9, DstPort: 9, Proto: rule.ProtoTCP}
	return [][]byte{
		encodeFlowPair(false, h, reverse6(h)), // same flow, reverse direction
		encodeFlowPair(false, h, swapped),     // ports swapped in place: distinct
		encodeFlowPair(false, h, h),           // identical
		encodeFlowPair(false, self, self),     // self-flow
		encodeFlowPair(true, v6, reverse6(v6)),
		encodeFlowPair(true, v6, h),
	}
}
