package fwstate

import "repro/internal/rule"

// Address-family tags carried in the Key so a v4 flow and a v6 flow
// whose addresses happen to zero-extend to each other never collide.
const (
	familyV4 = 4
	familyV6 = 6
)

// Key is the canonical identity of one bidirectional flow: the two
// endpoints (address + port) ordered so that the forward and reverse
// directions of the same flow produce the identical Key, plus the
// protocol and address family. The Key is exact — two headers that are
// neither equal nor each other's reverse always yield distinct Keys —
// so the flow table never confuses flows, only (harmlessly) directions.
type Key struct {
	loHi, loLo uint64 // lesser endpoint address (v4 in loLo, hi zero)
	hiHi, hiLo uint64 // greater endpoint address
	loPort     uint16 // lesser endpoint port
	hiPort     uint16 // greater endpoint port
	proto      uint8
	family     uint8
}

// less orders two endpoints lexicographically by (address hi, address
// lo, port).
//
//repro:noalloc
func less(aHi, aLo uint64, aPort uint16, bHi, bLo uint64, bPort uint16) bool {
	if aHi != bHi {
		return aHi < bHi
	}
	if aLo != bLo {
		return aLo < bLo
	}
	return aPort < bPort
}

// KeyOf normalizes an IPv4 header into its flow Key: the source and
// destination endpoints are sorted, so KeyOf(h) == KeyOf(reverse(h)).
//
//repro:noalloc
func KeyOf(h rule.Header) Key {
	k := Key{proto: h.Proto, family: familyV4}
	if less(0, uint64(h.SrcIP), h.SrcPort, 0, uint64(h.DstIP), h.DstPort) {
		k.loLo, k.loPort = uint64(h.SrcIP), h.SrcPort
		k.hiLo, k.hiPort = uint64(h.DstIP), h.DstPort
	} else {
		k.loLo, k.loPort = uint64(h.DstIP), h.DstPort
		k.hiLo, k.hiPort = uint64(h.SrcIP), h.SrcPort
	}
	return k
}

// KeyOf6 normalizes an IPv6 header into its flow Key, with the same
// forward/reverse collapsing as KeyOf.
//
//repro:noalloc
func KeyOf6(h rule.Header6) Key {
	k := Key{proto: h.Proto, family: familyV6}
	if less(h.SrcIP.Hi, h.SrcIP.Lo, h.SrcPort, h.DstIP.Hi, h.DstIP.Lo, h.DstPort) {
		k.loHi, k.loLo, k.loPort = h.SrcIP.Hi, h.SrcIP.Lo, h.SrcPort
		k.hiHi, k.hiLo, k.hiPort = h.DstIP.Hi, h.DstIP.Lo, h.DstPort
	} else {
		k.loHi, k.loLo, k.loPort = h.DstIP.Hi, h.DstIP.Lo, h.DstPort
		k.hiHi, k.hiLo, k.hiPort = h.SrcIP.Hi, h.SrcIP.Lo, h.SrcPort
	}
	return k
}

// mix64 is the splitmix64 finalizer.
//
//repro:noalloc
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash mixes the whole Key into a slot index.
//
//repro:noalloc
func hash(k Key) uint64 {
	x := mix64(k.loHi*0x9e3779b97f4a7c15 ^ k.loLo)
	x = mix64(x ^ k.hiHi*0x9e3779b97f4a7c15 ^ k.hiLo)
	return mix64(x ^ uint64(k.loPort)<<32 ^ uint64(k.hiPort)<<16 ^
		uint64(k.proto)<<8 ^ uint64(k.family))
}
