// Package rcu provides the read-copy-update concurrency scheme behind the
// public Engine API: a double-buffered snapshot store in the style of the
// left-right algorithm. Two structurally identical instances exist; the
// active one is published through an atomic pointer and serves lookups,
// while writers mutate the quiesced spare, install it with a single
// atomic store, wait for the old active's readers to drain, and replay
// the same mutation there. Readers therefore never take a lock — a read
// is one pointer load plus two atomic reference-count updates — and
// writers pay each update twice instead of copying the whole structure,
// which preserves the paper's O(1) incremental-update property.
package rcu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Store manages the two instances of one lookup structure.
type Store[T any] struct {
	mu     sync.Mutex // serializes writers
	active atomic.Pointer[instance[T]]
	spare  *instance[T] // quiesced twin, mutated first on update
}

type instance[T any] struct {
	val     T
	readers atomic.Int64
}

// NewStore wraps two structurally identical instances. Every Update must
// keep them identical: a and b receive the same deterministic mutations.
func NewStore[T any](a, b T) *Store[T] {
	s := &Store[T]{spare: &instance[T]{val: b}}
	s.active.Store(&instance[T]{val: a})
	return s
}

// Handle is a leased reference to the active instance. It must be
// released exactly once; holding it pins the instance against writer
// mutation, so batch readers amortize one Acquire over many operations.
type Handle[T any] struct {
	inst *instance[T]
}

// Acquire leases the active instance for reading. The increment-recheck
// loop closes the race with a concurrent pointer swap: a reader that
// loses the race backs off without ever dereferencing the instance.
//
//repro:noalloc
func (s *Store[T]) Acquire() Handle[T] {
	for {
		in := s.active.Load()
		in.readers.Add(1)
		if s.active.Load() == in {
			return Handle[T]{inst: in}
		}
		in.readers.Add(-1)
	}
}

// Value returns the leased instance.
//
//repro:noalloc
func (h Handle[T]) Value() T { return h.inst.val }

// Release returns the lease. After the last release of a retired
// instance, the writer's drain loop proceeds.
//
//repro:noalloc
func (h Handle[T]) Release() { h.inst.readers.Add(-1) }

// Update applies a deterministic mutation to both instances: spare first,
// then — after publishing the spare and draining the old active's readers
// — the retired twin. If apply fails on the spare (e.g. a build that
// exceeds a storage bound), repair is invoked to restore the spare to the
// pre-update state and the error is returned with the published state
// unchanged. A failure on the twin after success on the spare means the
// mutation was not deterministic — the instances have diverged and no
// local repair can be trusted (the published instance already carries the
// update), so Update panics rather than silently serve two different
// rulesets.
func (s *Store[T]) Update(apply func(T) error, repair func(T) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := s.spare
	if err := apply(idle.val); err != nil {
		if repair != nil {
			if rerr := repair(idle.val); rerr != nil {
				panic(fmt.Sprintf("rcu: spare repair failed after %v: %v", err, rerr))
			}
		}
		return err
	}
	cur := s.active.Load()
	s.active.Store(idle)
	s.spare = cur
	drain(cur)
	if err := apply(cur.val); err != nil {
		panic(fmt.Sprintf("rcu: update diverged between instances: %v", err))
	}
	return nil
}

// Locked runs f under the writer lock with both instances. The spare is
// quiesced; the active may still serve readers, so f must touch only
// writer-owned or atomic state on it.
func (s *Store[T]) Locked(f func(active, spare T)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s.active.Load().val, s.spare.val)
}

// drain waits for every reader lease on in to be released. Backed-off
// readers from Acquire's recheck loop may still blip the count, but they
// never dereference the instance, so observing zero at any point is a
// safe linearization.
func drain[T any](in *instance[T]) {
	for in.readers.Load() != 0 {
		runtime.Gosched()
	}
}
