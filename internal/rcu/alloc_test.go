package rcu

import "testing"

// TestAcquireValueReleaseZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotations on Acquire, Value and Release: the whole
// read-side critical section must stay off the heap.
func TestAcquireValueReleaseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	s := NewStore(1, 1)
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		h := s.Acquire()
		sink += h.Value()
		h.Release()
	})
	if allocs != 0 {
		t.Errorf("Acquire/Value/Release allocated %v times per run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("reads were optimized away")
	}
}
