package rcu

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// counterBox is a trivially clonable structure for exercising the store.
type counterBox struct {
	vals map[int]int
}

func newBox() *counterBox { return &counterBox{vals: make(map[int]int)} }

func TestUpdateAppliesToBothInstances(t *testing.T) {
	s := NewStore(newBox(), newBox())
	for i := 0; i < 10; i++ {
		i := i
		if err := s.Update(func(b *counterBox) error {
			b.vals[i] = i * i
			return nil
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Locked(func(active, spare *counterBox) {
		if len(active.vals) != 10 || len(spare.vals) != 10 {
			t.Fatalf("instances diverged: %d vs %d entries", len(active.vals), len(spare.vals))
		}
		for k, v := range active.vals {
			if spare.vals[k] != v {
				t.Fatalf("key %d: active %d, spare %d", k, v, spare.vals[k])
			}
		}
	})
}

func TestUpdateErrorLeavesPublishedStateUnchanged(t *testing.T) {
	s := NewStore(newBox(), newBox())
	if err := s.Update(func(b *counterBox) error { b.vals[1] = 1; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	repaired := 0
	err := s.Update(
		func(b *counterBox) error { b.vals[2] = 2; return boom },
		func(b *counterBox) error { delete(b.vals, 2); repaired++; return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if repaired != 1 {
		t.Fatalf("repair ran %d times", repaired)
	}
	h := s.Acquire()
	defer h.Release()
	if _, ok := h.Value().vals[2]; ok {
		t.Error("failed update visible to readers")
	}
	if h.Value().vals[1] != 1 {
		t.Error("prior state lost")
	}
}

// TestConcurrentReadersDuringUpdates is the core -race exercise: readers
// must always observe a consistent snapshot (every key k holds k) while a
// writer churns.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	s := NewStore(newBox(), newBox())
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h := s.Acquire()
				for k, v := range h.Value().vals {
					if v != k {
						t.Errorf("torn read: vals[%d] = %d", k, v)
						h.Release()
						return
					}
				}
				h.Release()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		i := i
		if i%3 == 2 {
			if err := s.Update(func(b *counterBox) error { delete(b.vals, i-2); return nil }, nil); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := s.Update(func(b *counterBox) error { b.vals[i] = i; return nil }, nil); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
