package rule

import (
	"math/rand"
	"strings"
	"testing"
)

func testSet(t *testing.T) *Set {
	t.Helper()
	rules := []Rule{
		{
			SrcIP: Prefix{Addr: 0x0a000000, Len: 8}, DstIP: Prefix{},
			SrcPort: FullPortRange(), DstPort: ExactPort(80),
			Proto: ExactProto(ProtoTCP), Action: ActionPermit,
		},
		{
			SrcIP: Prefix{Addr: 0x0a010000, Len: 16}, DstIP: Prefix{},
			SrcPort: FullPortRange(), DstPort: FullPortRange(),
			Proto: ExactProto(ProtoTCP), Action: ActionDeny,
		},
		{
			SrcIP: Prefix{}, DstIP: Prefix{},
			SrcPort: FullPortRange(), DstPort: FullPortRange(),
			Proto: AnyProto(), Action: ActionDeny,
		},
	}
	s, err := NewSet(rules)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestSetMatchFirstMatchWins(t *testing.T) {
	s := testSet(t)
	h := Header{SrcIP: 0x0a010101, DstIP: 1, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	// Both rule 1 (10/8, dport 80) and rule 2 (10.1/16) match; rule 1 has
	// higher priority (earlier line).
	got, ok := s.Match(h)
	if !ok {
		t.Fatal("expected a match")
	}
	if got.ID != 1 {
		t.Errorf("HPMR = rule %d, want rule 1", got.ID)
	}
	// Default rule catches everything else.
	h2 := Header{SrcIP: 0xc0000001, Proto: ProtoUDP}
	got, ok = s.Match(h2)
	if !ok || got.ID != 3 {
		t.Errorf("default match = %v/%v, want rule 3", got.ID, ok)
	}
}

func TestSetMatchAllOrdered(t *testing.T) {
	s := testSet(t)
	h := Header{SrcIP: 0x0a010101, DstPort: 80, Proto: ProtoTCP}
	all := s.MatchAll(h)
	if len(all) != 3 {
		t.Fatalf("MatchAll returned %d rules, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Priority > all[i].Priority {
			t.Error("MatchAll not in priority order")
		}
	}
}

func TestSetDuplicateID(t *testing.T) {
	rules := []Rule{
		{ID: 7, SrcPort: FullPortRange(), DstPort: FullPortRange()},
		{ID: 7, SrcPort: FullPortRange(), DstPort: FullPortRange()},
	}
	if _, err := NewSet(rules); err == nil {
		t.Fatal("expected duplicate ID error")
	}
}

func TestSetShadowed(t *testing.T) {
	rules := []Rule{
		{ // broad rule first: shadows anything it covers
			SrcIP:   Prefix{Addr: 0x0a000000, Len: 8},
			SrcPort: FullPortRange(), DstPort: FullPortRange(), Proto: AnyProto(),
		},
		{ // fully inside rule 1 -> shadowed
			SrcIP:   Prefix{Addr: 0x0a010000, Len: 16},
			SrcPort: FullPortRange(), DstPort: FullPortRange(), Proto: ExactProto(ProtoTCP),
		},
		{ // partially outside -> not shadowed
			SrcIP:   Prefix{Addr: 0x0b000000, Len: 8},
			SrcPort: FullPortRange(), DstPort: FullPortRange(), Proto: AnyProto(),
		},
	}
	s, err := NewSet(rules)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	sh := s.Shadowed()
	if len(sh) != 1 || sh[0] != 2 {
		t.Errorf("Shadowed = %v, want [2]", sh)
	}
}

func TestFieldStats(t *testing.T) {
	rules := []Rule{
		{SrcIP: Prefix{Addr: 0x0a000000, Len: 8}, SrcPort: FullPortRange(), DstPort: PortRange{Lo: 0, Hi: 100}, Proto: ExactProto(ProtoTCP)},
		{SrcIP: Prefix{Addr: 0x0a010000, Len: 16}, SrcPort: FullPortRange(), DstPort: PortRange{Lo: 50, Hi: 150}, Proto: AnyProto()},
		{SrcIP: Prefix{Addr: 0x0a010100, Len: 24}, SrcPort: FullPortRange(), DstPort: PortRange{Lo: 200, Hi: 300}, Proto: ExactProto(ProtoUDP)},
	}
	s, err := NewSet(rules)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	st := s.Stats()
	if st.DistinctSrcPrefixes != 3 {
		t.Errorf("DistinctSrcPrefixes = %d, want 3", st.DistinctSrcPrefixes)
	}
	if st.MaxSrcNesting != 3 {
		t.Errorf("MaxSrcNesting = %d, want 3 (8 contains 16 contains 24)", st.MaxSrcNesting)
	}
	if st.MaxDstPortOver != 2 {
		t.Errorf("MaxDstPortOver = %d, want 2 ([0,100] and [50,150] overlap)", st.MaxDstPortOver)
	}
	if st.MaxProtoMatches != 2 {
		t.Errorf("MaxProtoMatches = %d, want 2 (exact + wildcard)", st.MaxProtoMatches)
	}
}

func TestMatchAgainstBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var rules []Rule
	for i := 0; i < 200; i++ {
		rules = append(rules, randomRule(rnd))
	}
	s, err := NewSet(rules)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	for i := 0; i < 1000; i++ {
		h := Header{
			SrcIP: rnd.Uint32(), DstIP: rnd.Uint32(),
			SrcPort: uint16(rnd.Intn(1 << 16)), DstPort: uint16(rnd.Intn(1 << 16)),
			Proto: uint8(rnd.Intn(256)),
		}
		got, ok := s.Match(h)
		// Brute force over rules directly.
		bestPrio, bestID, found := 1<<31, 0, false
		for j := range s.Rules() {
			r := &s.Rules()[j]
			if r.Matches(h) && r.Priority < bestPrio {
				bestPrio, bestID, found = r.Priority, r.ID, true
			}
		}
		if ok != found || (ok && got.ID != bestID) {
			t.Fatalf("Match mismatch: got (%v,%v), want (%v,%v)", got.ID, ok, bestID, found)
		}
	}
}

func TestClassBenchRoundTrip(t *testing.T) {
	src := `# comment line
@192.168.0.0/16	10.0.0.0/8	0 : 65535	80 : 80	0x06/0xFF

@0.0.0.0/0	0.0.0.0/0	1024 : 2048	0 : 65535	0x11/0xFF
@10.1.2.3/32	172.16.0.0/12	53 : 53	53 : 53	0x00/0x00
`
	s, err := ParseSet(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("parsed %d rules, want 3", s.Len())
	}
	r0 := s.Rules()[0]
	if r0.SrcIP.String() != "192.168.0.0/16" {
		t.Errorf("rule 0 src = %v", r0.SrcIP)
	}
	if !r0.DstPort.IsExact() || r0.DstPort.Lo != 80 {
		t.Errorf("rule 0 dport = %v", r0.DstPort)
	}
	if r0.Proto.Value != ProtoTCP {
		t.Errorf("rule 0 proto = %v", r0.Proto)
	}
	if !s.Rules()[2].Proto.IsWildcard() {
		t.Error("rule 2 proto should be wildcard")
	}

	var sb strings.Builder
	if err := WriteSet(&sb, s); err != nil {
		t.Fatalf("WriteSet: %v", err)
	}
	s2, err := ParseSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-ParseSet: %v", err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("round trip changed rule count: %d != %d", s2.Len(), s.Len())
	}
	for i := range s.Rules() {
		a, b := s.Rules()[i], s2.Rules()[i]
		a.ID, b.ID, a.Priority, b.Priority, a.Action, b.Action = 0, 0, 0, 0, 0, 0
		if a != b {
			t.Errorf("rule %d changed in round trip: %v != %v", i, a.String(), b.String())
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"192.168.0.0/16 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF", // missing @
		"@192.168.0.0/16 10.0.0.0/8 0 : 65535 80 : 80",          // missing proto
		"@192.168.0.0/33 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF",
		"@192.168.0.0/16 10.0.0.0/8 65535 : 0 80 : 80 0x06/0xFF", // inverted range
		"@192.168.0.0/16 10.0.0.0/8 0 ; 65535 80 : 80 0x06/0xFF", // bad separator
		"@192.168.0.0/16 10.0.0.0/8 0 : 65535 80 : 80 0x06/0x0F", // bad mask
		"@192.168.0/16 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF",   // short address
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q) should fail", line)
		}
	}
}

func TestPrefix6(t *testing.T) {
	p := Prefix6{Addr: Addr6{Hi: 0x20010db8_00000000}, Len: 32}
	if !p.Matches(Addr6{Hi: 0x20010db8_12345678, Lo: 42}) {
		t.Error("2001:db8::/32 should match 2001:db8:1234:5678::x")
	}
	if p.Matches(Addr6{Hi: 0x20010db9_00000000}) {
		t.Error("2001:db8::/32 should not match 2001:db9::")
	}
	long := Prefix6{Addr: Addr6{Hi: 0x20010db8_00000000, Lo: 0xaa00000000000000}, Len: 72}
	if !long.Matches(Addr6{Hi: 0x20010db8_00000000, Lo: 0xaa12345678000000}) {
		t.Error("/72 prefix should match address with same first 72 bits")
	}
	if long.Matches(Addr6{Hi: 0x20010db8_00000000, Lo: 0xab12345678000000}) {
		t.Error("/72 prefix should not match differing 72nd-bit region")
	}
	if !p.Contains(long) || long.Contains(p) {
		t.Error("containment across the 64-bit boundary wrong")
	}
	w := Prefix6{}
	if !w.Matches(Addr6{Hi: ^uint64(0), Lo: ^uint64(0)}) {
		t.Error("wildcard v6 prefix should match everything")
	}
}
