// Package rule models packet-classification rules: 5-tuple match
// specifications (source/destination IP prefixes, source/destination port
// ranges, protocol), rule priorities and actions, and the ClassBench text
// format used to exchange rulesets with the decision-control domain.
//
// The model follows the paper's rule syntax: IP address fields are matched
// by prefix (longest-prefix semantics at the classifier level), port fields
// by arbitrary inclusive ranges, and the protocol field by exact value or
// wildcard.
package rule

import (
	"fmt"
)

// Action is the verdict associated with a rule. The paper's architecture
// forwards the matched action to a downstream function block; the concrete
// values here cover the common cases of its ACL/FW/IPC rulesets.
type Action uint8

// Supported rule actions.
const (
	ActionPermit Action = iota + 1
	ActionDeny
	ActionQueue // per-flow queueing (router with per-flow queues, Section IV.B)
	ActionMirror
	ActionCount
	// ActionEstablish permits the packet and asks the stateful layer
	// (internal/fwstate, repro.WithFlowState) to install a flow entry
	// covering both directions, so return traffic is accepted by state.
	ActionEstablish
)

// ParseAction resolves an action from its lower-case mnemonic — the
// inverse of Action.String, shared by the ctl protocol and the snapshot
// file format.
func ParseAction(s string) (Action, error) {
	switch s {
	case "permit":
		return ActionPermit, nil
	case "deny":
		return ActionDeny, nil
	case "queue":
		return ActionQueue, nil
	case "mirror":
		return ActionMirror, nil
	case "count":
		return ActionCount, nil
	case "allow-established":
		return ActionEstablish, nil
	default:
		return 0, fmt.Errorf("unknown action %q", s)
	}
}

// String returns the lower-case mnemonic for the action.
func (a Action) String() string {
	switch a {
	case ActionPermit:
		return "permit"
	case ActionDeny:
		return "deny"
	case ActionQueue:
		return "queue"
	case ActionMirror:
		return "mirror"
	case ActionCount:
		return "count"
	case ActionEstablish:
		return "allow-established"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Prefix is an IPv4 prefix match: the high Len bits of Addr are significant.
// Len == 0 is the full wildcard. The zero value is the wildcard prefix.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// MaxPrefixLen is the number of bits in an IPv4 address.
const MaxPrefixLen = 32

// Mask returns the network mask implied by the prefix length.
func (p Prefix) Mask() uint32 {
	if p.Len == 0 {
		return 0
	}
	return ^uint32(0) << (MaxPrefixLen - uint32(p.Len))
}

// Canonical returns the prefix with the don't-care bits of Addr zeroed.
// Engines index prefixes by their canonical form.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & p.Mask(), Len: p.Len}
}

// Matches reports whether addr falls inside the prefix.
func (p Prefix) Matches(addr uint32) bool {
	return (addr^p.Addr)&p.Mask() == 0
}

// Contains reports whether every address matched by q is also matched by p.
func (p Prefix) Contains(q Prefix) bool {
	return p.Len <= q.Len && p.Matches(q.Addr)
}

// IsWildcard reports whether the prefix matches every address.
func (p Prefix) IsWildcard() bool { return p.Len == 0 }

// Valid reports whether the prefix length is in range and the address is
// canonical with respect to it.
func (p Prefix) Valid() bool {
	return p.Len <= MaxPrefixLen && p.Addr&^p.Mask() == 0
}

// String formats the prefix in dotted-quad/len notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Len)
}

// PortRange is an inclusive [Lo, Hi] match on a 16-bit port field.
// The zero value is invalid; use FullPortRange for the wildcard.
type PortRange struct {
	Lo, Hi uint16
}

// FullPortRange matches every port value.
func FullPortRange() PortRange { return PortRange{Lo: 0, Hi: 0xffff} }

// ExactPort matches a single port value.
func ExactPort(p uint16) PortRange { return PortRange{Lo: p, Hi: p} }

// Matches reports whether port falls inside the range.
func (r PortRange) Matches(port uint16) bool { return r.Lo <= port && port <= r.Hi }

// Contains reports whether every port matched by q is also matched by r.
func (r PortRange) Contains(q PortRange) bool { return r.Lo <= q.Lo && q.Hi <= r.Hi }

// Overlaps reports whether the two ranges share at least one port.
func (r PortRange) Overlaps(q PortRange) bool { return r.Lo <= q.Hi && q.Lo <= r.Hi }

// IsWildcard reports whether the range matches every port.
func (r PortRange) IsWildcard() bool { return r.Lo == 0 && r.Hi == 0xffff }

// IsExact reports whether the range matches a single port.
func (r PortRange) IsExact() bool { return r.Lo == r.Hi }

// Width returns the number of ports matched by the range.
func (r PortRange) Width() int { return int(r.Hi) - int(r.Lo) + 1 }

// Valid reports whether Lo <= Hi.
func (r PortRange) Valid() bool { return r.Lo <= r.Hi }

// String formats the range in "lo : hi" ClassBench notation.
func (r PortRange) String() string { return fmt.Sprintf("%d : %d", r.Lo, r.Hi) }

// Well-known protocol numbers used throughout the rulesets. The paper notes
// that "three values are possible in any of the used filters, for example
// TCP, UDP or ICMP".
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// ProtoMatch is an exact-or-wildcard match on the 8-bit protocol field,
// expressed as value/mask in the ClassBench style: mask 0xff is an exact
// match, mask 0x00 the wildcard. Other masks are not used by the paper's
// rulesets and are rejected at parse time.
type ProtoMatch struct {
	Value uint8
	Mask  uint8
}

// AnyProto matches every protocol value.
func AnyProto() ProtoMatch { return ProtoMatch{} }

// ExactProto matches a single protocol value.
func ExactProto(v uint8) ProtoMatch { return ProtoMatch{Value: v, Mask: 0xff} }

// Matches reports whether proto satisfies the match.
func (m ProtoMatch) Matches(proto uint8) bool { return proto&m.Mask == m.Value&m.Mask }

// IsWildcard reports whether the match accepts every protocol.
func (m ProtoMatch) IsWildcard() bool { return m.Mask == 0 }

// Contains reports whether every protocol matched by q is also matched by m.
func (m ProtoMatch) Contains(q ProtoMatch) bool {
	if m.IsWildcard() {
		return true
	}
	return !q.IsWildcard() && m.Value&m.Mask == q.Value&q.Mask
}

// String formats the match in "value/mask" hex ClassBench notation.
func (m ProtoMatch) String() string { return fmt.Sprintf("0x%02x/0x%02x", m.Value, m.Mask) }

// Rule is one 5-tuple classification rule. Priority follows first-match
// semantics: lower Priority values win, and the classifier returns the
// Highest-Priority Matching Rule (HPMR), i.e. the matching rule with the
// smallest Priority.
type Rule struct {
	// ID identifies the rule across updates. IDs are assigned by the
	// decision-control domain and stay stable while the rule exists.
	ID int
	// Priority orders rules for HPMR resolution; lower is higher priority.
	Priority int

	SrcIP   Prefix
	DstIP   Prefix
	SrcPort PortRange
	DstPort PortRange
	Proto   ProtoMatch

	Action Action
}

// Header is the 5-tuple point extracted from a packet that the classifier
// matches against. It mirrors the output of the Packet Header Partition
// block in Fig. 1 of the paper.
type Header struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Matches reports whether the header satisfies all five field matches.
func (r *Rule) Matches(h Header) bool {
	return r.SrcIP.Matches(h.SrcIP) &&
		r.DstIP.Matches(h.DstIP) &&
		r.SrcPort.Matches(h.SrcPort) &&
		r.DstPort.Matches(h.DstPort) &&
		r.Proto.Matches(h.Proto)
}

// Covers reports whether r matches every header that q matches, i.e. r is a
// (not necessarily strict) generalization of q in all five fields.
func (r *Rule) Covers(q *Rule) bool {
	return r.SrcIP.Contains(q.SrcIP) &&
		r.DstIP.Contains(q.DstIP) &&
		r.SrcPort.Contains(q.SrcPort) &&
		r.DstPort.Contains(q.DstPort) &&
		r.Proto.Contains(q.Proto)
}

// Overlaps reports whether some header is matched by both rules.
func (r *Rule) Overlaps(q *Rule) bool {
	if !r.SrcPort.Overlaps(q.SrcPort) || !r.DstPort.Overlaps(q.DstPort) {
		return false
	}
	if !prefixesOverlap(r.SrcIP, q.SrcIP) || !prefixesOverlap(r.DstIP, q.DstIP) {
		return false
	}
	if r.Proto.IsWildcard() || q.Proto.IsWildcard() {
		return true
	}
	return r.Proto.Value == q.Proto.Value
}

func prefixesOverlap(a, b Prefix) bool { return a.Contains(b) || b.Contains(a) }

// Validate checks field well-formedness.
func (r *Rule) Validate() error {
	if !r.SrcIP.Valid() {
		return fmt.Errorf("rule %d: source prefix %v: %w", r.ID, r.SrcIP, ErrBadPrefix)
	}
	if !r.DstIP.Valid() {
		return fmt.Errorf("rule %d: destination prefix %v: %w", r.ID, r.DstIP, ErrBadPrefix)
	}
	if !r.SrcPort.Valid() {
		return fmt.Errorf("rule %d: source port range %v: %w", r.ID, r.SrcPort, ErrBadRange)
	}
	if !r.DstPort.Valid() {
		return fmt.Errorf("rule %d: destination port range %v: %w", r.ID, r.DstPort, ErrBadRange)
	}
	if m := r.Proto.Mask; m != 0 && m != 0xff {
		return fmt.Errorf("rule %d: protocol mask 0x%02x: %w", r.ID, m, ErrBadProtoMask)
	}
	return nil
}

// String formats the rule in ClassBench notation.
func (r *Rule) String() string {
	return fmt.Sprintf("@%v\t%v\t%v\t%v\t%v", r.SrcIP, r.DstIP, r.SrcPort, r.DstPort, r.Proto)
}
