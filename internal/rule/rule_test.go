package rule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestPrefixMask(t *testing.T) {
	tests := []struct {
		len  uint8
		want uint32
	}{
		{0, 0x00000000},
		{1, 0x80000000},
		{8, 0xff000000},
		{16, 0xffff0000},
		{24, 0xffffff00},
		{31, 0xfffffffe},
		{32, 0xffffffff},
	}
	for _, tc := range tests {
		if got := (Prefix{Len: tc.len}).Mask(); got != tc.want {
			t.Errorf("Mask(len=%d) = %08x, want %08x", tc.len, got, tc.want)
		}
	}
}

func TestPrefixMatches(t *testing.T) {
	p := mustPrefix(t, "192.168.0.0/16")
	if !p.Matches(0xc0a80101) { // 192.168.1.1
		t.Error("192.168.0.0/16 should match 192.168.1.1")
	}
	if p.Matches(0xc0a90101) { // 192.169.1.1
		t.Error("192.168.0.0/16 should not match 192.169.1.1")
	}
	wild := Prefix{}
	if !wild.Matches(0) || !wild.Matches(^uint32(0)) {
		t.Error("wildcard prefix should match everything")
	}
}

func TestPrefixContains(t *testing.T) {
	outer := mustPrefix(t, "10.0.0.0/8")
	inner := mustPrefix(t, "10.1.0.0/16")
	other := mustPrefix(t, "11.0.0.0/8")
	if !outer.Contains(inner) {
		t.Error("10.0.0.0/8 should contain 10.1.0.0/16")
	}
	if inner.Contains(outer) {
		t.Error("10.1.0.0/16 should not contain 10.0.0.0/8")
	}
	if outer.Contains(other) || other.Contains(outer) {
		t.Error("disjoint /8s should not contain each other")
	}
	if !outer.Contains(outer) {
		t.Error("prefix should contain itself")
	}
}

func TestPrefixContainsImpliesMatches(t *testing.T) {
	// Property: if p.Contains(q), any address matching q matches p.
	f := func(addr uint32, plen, qlen uint8, qaddr uint32) bool {
		p := Prefix{Addr: addr, Len: plen % 33}.Canonical()
		q := Prefix{Addr: qaddr, Len: qlen % 33}.Canonical()
		if !p.Contains(q) {
			return true
		}
		// Sample addresses inside q: base and base | ^mask variations.
		samples := []uint32{q.Addr, q.Addr | ^q.Mask(), q.Addr | (^q.Mask() >> 1)}
		for _, a := range samples {
			if !q.Matches(a) || !p.Matches(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortRange(t *testing.T) {
	r := PortRange{Lo: 1024, Hi: 2048}
	if !r.Matches(1024) || !r.Matches(2048) || !r.Matches(1500) {
		t.Error("range should match its bounds and interior")
	}
	if r.Matches(1023) || r.Matches(2049) {
		t.Error("range should not match outside points")
	}
	if !FullPortRange().IsWildcard() {
		t.Error("FullPortRange should be wildcard")
	}
	if !ExactPort(80).IsExact() {
		t.Error("ExactPort should be exact")
	}
	if r.Width() != 1025 {
		t.Errorf("Width = %d, want 1025", r.Width())
	}
}

func TestPortRangeOverlaps(t *testing.T) {
	a := PortRange{Lo: 10, Hi: 20}
	tests := []struct {
		b    PortRange
		want bool
	}{
		{PortRange{Lo: 20, Hi: 30}, true},  // touch at 20
		{PortRange{Lo: 21, Hi: 30}, false}, // adjacent
		{PortRange{Lo: 0, Hi: 9}, false},
		{PortRange{Lo: 0, Hi: 100}, true}, // containment
		{PortRange{Lo: 12, Hi: 15}, true}, // contained
	}
	for _, tc := range tests {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, tc.b, got, tc.want)
		}
	}
}

func TestProtoMatch(t *testing.T) {
	tcp := ExactProto(ProtoTCP)
	if !tcp.Matches(ProtoTCP) || tcp.Matches(ProtoUDP) {
		t.Error("exact TCP match wrong")
	}
	any := AnyProto()
	if !any.Matches(0) || !any.Matches(255) {
		t.Error("wildcard proto should match everything")
	}
	if !any.Contains(tcp) || tcp.Contains(any) {
		t.Error("wildcard contains exact, not vice versa")
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{
		SrcIP:   mustPrefix(t, "10.0.0.0/8"),
		DstIP:   mustPrefix(t, "192.168.1.0/24"),
		SrcPort: FullPortRange(),
		DstPort: ExactPort(80),
		Proto:   ExactProto(ProtoTCP),
	}
	h := Header{SrcIP: 0x0a000001, DstIP: 0xc0a80105, SrcPort: 4242, DstPort: 80, Proto: ProtoTCP}
	if !r.Matches(h) {
		t.Error("rule should match header")
	}
	h.DstPort = 81
	if r.Matches(h) {
		t.Error("rule should not match wrong dst port")
	}
}

func TestRuleCoversImpliesMatches(t *testing.T) {
	// Property: if r covers q, then any header matching q matches r.
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		r := randomRule(rnd)
		q := randomRule(rnd)
		if !r.Covers(&q) {
			continue
		}
		h := sampleHeader(rnd, &q)
		if !q.Matches(h) {
			t.Fatalf("sampled header %+v should match its own rule %v", h, q.String())
		}
		if !r.Matches(h) {
			t.Fatalf("r covers q but header %+v in q does not match r=%v q=%v", h, r.String(), q.String())
		}
	}
}

func TestRuleOverlapsSymmetric(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randomRule(rnd), randomRule(rnd)
		if a.Overlaps(&b) != b.Overlaps(&a) {
			t.Fatalf("Overlaps not symmetric for %v and %v", a.String(), b.String())
		}
		// If a header matches both, they must overlap.
		h := sampleHeader(rnd, &a)
		if a.Matches(h) && b.Matches(h) && !a.Overlaps(&b) {
			t.Fatalf("common header %+v but Overlaps=false for %v and %v", h, a.String(), b.String())
		}
	}
}

func randomRule(rnd *rand.Rand) Rule {
	randPrefix := func() Prefix {
		l := uint8(rnd.Intn(5) * 8) // 0,8,16,24,32
		return Prefix{Addr: rnd.Uint32(), Len: l}.Canonical()
	}
	randRange := func() PortRange {
		switch rnd.Intn(3) {
		case 0:
			return FullPortRange()
		case 1:
			return ExactPort(uint16(rnd.Intn(1 << 16)))
		default:
			lo := uint16(rnd.Intn(1 << 15))
			return PortRange{Lo: lo, Hi: lo + uint16(rnd.Intn(1<<14))}
		}
	}
	randProto := func() ProtoMatch {
		if rnd.Intn(3) == 0 {
			return AnyProto()
		}
		vals := []uint8{ProtoTCP, ProtoUDP, ProtoICMP}
		return ExactProto(vals[rnd.Intn(len(vals))])
	}
	return Rule{
		SrcIP: randPrefix(), DstIP: randPrefix(),
		SrcPort: randRange(), DstPort: randRange(),
		Proto: randProto(), Action: ActionPermit,
	}
}

// sampleHeader returns a header drawn from inside the rule's match region.
func sampleHeader(rnd *rand.Rand, r *Rule) Header {
	inPrefix := func(p Prefix) uint32 {
		return p.Addr | (rnd.Uint32() &^ p.Mask())
	}
	inRange := func(pr PortRange) uint16 {
		return pr.Lo + uint16(rnd.Intn(pr.Width()))
	}
	proto := r.Proto.Value
	if r.Proto.IsWildcard() {
		proto = uint8(rnd.Intn(256))
	}
	return Header{
		SrcIP: inPrefix(r.SrcIP), DstIP: inPrefix(r.DstIP),
		SrcPort: inRange(r.SrcPort), DstPort: inRange(r.DstPort),
		Proto: proto,
	}
}
