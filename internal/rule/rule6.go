package rule

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv6 support. The paper motivates the architecture with the need to
// migrate to IPv6, where headers differ in field number and length; the
// lookup engines in internal/lpm are generic over the address width, and
// this file provides the 128-bit rule model they operate on.

// Addr6 is a 128-bit IPv6 address split into two 64-bit halves,
// most-significant half first.
type Addr6 struct {
	Hi, Lo uint64
}

// MaxPrefixLen6 is the number of bits in an IPv6 address.
const MaxPrefixLen6 = 128

// Prefix6 is an IPv6 prefix match.
type Prefix6 struct {
	Addr Addr6
	Len  uint8
}

func mask64(bits int) uint64 {
	switch {
	case bits <= 0:
		return 0
	case bits >= 64:
		return ^uint64(0)
	default:
		return ^uint64(0) << (64 - bits)
	}
}

// Canonical returns the prefix with don't-care bits zeroed.
func (p Prefix6) Canonical() Prefix6 {
	p.Addr.Hi &= mask64(int(p.Len))
	p.Addr.Lo &= mask64(int(p.Len) - 64)
	return p
}

// Matches reports whether addr falls inside the prefix.
func (p Prefix6) Matches(a Addr6) bool {
	return (a.Hi^p.Addr.Hi)&mask64(int(p.Len)) == 0 &&
		(a.Lo^p.Addr.Lo)&mask64(int(p.Len)-64) == 0
}

// Contains reports whether every address matched by q is matched by p.
func (p Prefix6) Contains(q Prefix6) bool {
	return p.Len <= q.Len && p.Matches(q.Addr)
}

// Valid reports whether the prefix length is in range and the address
// canonical.
func (p Prefix6) Valid() bool {
	return p.Len <= MaxPrefixLen6 && p.Canonical().Addr == p.Addr
}

// String formats the prefix as colon-hex/len.
func (p Prefix6) String() string {
	return fmt.Sprintf("%04x:%04x:%04x:%04x:%04x:%04x:%04x:%04x/%d",
		uint16(p.Addr.Hi>>48), uint16(p.Addr.Hi>>32), uint16(p.Addr.Hi>>16), uint16(p.Addr.Hi),
		uint16(p.Addr.Lo>>48), uint16(p.Addr.Lo>>32), uint16(p.Addr.Lo>>16), uint16(p.Addr.Lo), p.Len)
}

// Rule6 is a 5-tuple rule over IPv6 addresses.
type Rule6 struct {
	ID       int
	Priority int
	SrcIP    Prefix6
	DstIP    Prefix6
	SrcPort  PortRange
	DstPort  PortRange
	Proto    ProtoMatch
	Action   Action
}

// Header6 is the IPv6 5-tuple point.
type Header6 struct {
	SrcIP   Addr6
	DstIP   Addr6
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Validate checks structural validity, mirroring Rule.Validate.
func (r *Rule6) Validate() error {
	if !r.SrcIP.Valid() {
		return fmt.Errorf("rule %d: source prefix %v: %w", r.ID, r.SrcIP, ErrBadPrefix)
	}
	if !r.DstIP.Valid() {
		return fmt.Errorf("rule %d: destination prefix %v: %w", r.ID, r.DstIP, ErrBadPrefix)
	}
	if !r.SrcPort.Valid() {
		return fmt.Errorf("rule %d: source port range %v: %w", r.ID, r.SrcPort, ErrBadRange)
	}
	if !r.DstPort.Valid() {
		return fmt.Errorf("rule %d: destination port range %v: %w", r.ID, r.DstPort, ErrBadRange)
	}
	if m := r.Proto.Mask; m != 0 && m != 0xff {
		return fmt.Errorf("rule %d: protocol mask 0x%02x: %w", r.ID, m, ErrBadProtoMask)
	}
	return nil
}

// String formats the rule in the ClassBench-style notation ParseRule6
// reads, with colon-hex IPv6 prefixes in the address slots.
func (r *Rule6) String() string {
	return fmt.Sprintf("@%v\t%v\t%v\t%v\t%v", r.SrcIP, r.DstIP, r.SrcPort, r.DstPort, r.Proto)
}

// ParsePrefix6 parses colon-hex prefix notation
// "hhhh:hhhh:hhhh:hhhh:hhhh:hhhh:hhhh:hhhh/len" — eight explicit 16-bit
// hex groups (no "::" compression), the format Prefix6.String emits.
func ParsePrefix6(s string) (Prefix6, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix6{}, fmt.Errorf("missing '/len' in %q: %w", s, ErrBadPrefix)
	}
	groups := strings.Split(s[:slash], ":")
	if len(groups) != 8 {
		return Prefix6{}, fmt.Errorf("address %q: want 8 colon-separated hex groups, got %d: %w",
			s[:slash], len(groups), ErrBadPrefix)
	}
	var a Addr6
	for i, g := range groups {
		v, err := strconv.ParseUint(g, 16, 16)
		if err != nil {
			return Prefix6{}, fmt.Errorf("address group %q: %w", g, ErrBadPrefix)
		}
		if i < 4 {
			a.Hi = a.Hi<<16 | v
		} else {
			a.Lo = a.Lo<<16 | v
		}
	}
	l, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || l > MaxPrefixLen6 {
		return Prefix6{}, fmt.Errorf("prefix length %q: %w", s[slash+1:], ErrBadPrefix)
	}
	return Prefix6{Addr: a, Len: uint8(l)}.Canonical(), nil
}

// ParseRule6 parses one IPv6 rule line in the same shape as ParseRule:
//
//	@<srcPrefix6> <dstPrefix6> <loSP> : <hiSP> <loDP> : <hiDP> <proto>/<mask>
//
// with the prefixes in ParsePrefix6's colon-hex notation.
func ParseRule6(line string) (Rule6, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "@") {
		return Rule6{}, fmt.Errorf("rule must start with '@': %q", line)
	}
	fields := strings.Fields(line[1:])
	if len(fields) != 9 {
		return Rule6{}, fmt.Errorf("want 9 whitespace-separated tokens, got %d: %q", len(fields), line)
	}
	var r Rule6
	var err error
	if r.SrcIP, err = ParsePrefix6(fields[0]); err != nil {
		return Rule6{}, fmt.Errorf("source prefix: %w", err)
	}
	if r.DstIP, err = ParsePrefix6(fields[1]); err != nil {
		return Rule6{}, fmt.Errorf("destination prefix: %w", err)
	}
	if r.SrcPort, err = parseRangeTokens(fields[2], fields[3], fields[4]); err != nil {
		return Rule6{}, fmt.Errorf("source port range: %w", err)
	}
	if r.DstPort, err = parseRangeTokens(fields[5], fields[6], fields[7]); err != nil {
		return Rule6{}, fmt.Errorf("destination port range: %w", err)
	}
	if r.Proto, err = ParseProtoMatch(fields[8]); err != nil {
		return Rule6{}, fmt.Errorf("protocol: %w", err)
	}
	r.Action = ActionPermit
	return r, nil
}

// Matches reports whether the header satisfies all five field matches.
func (r *Rule6) Matches(h Header6) bool {
	return r.SrcIP.Matches(h.SrcIP) &&
		r.DstIP.Matches(h.DstIP) &&
		r.SrcPort.Matches(h.SrcPort) &&
		r.DstPort.Matches(h.DstPort) &&
		r.Proto.Matches(h.Proto)
}
