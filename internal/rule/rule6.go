package rule

import "fmt"

// IPv6 support. The paper motivates the architecture with the need to
// migrate to IPv6, where headers differ in field number and length; the
// lookup engines in internal/lpm are generic over the address width, and
// this file provides the 128-bit rule model they operate on.

// Addr6 is a 128-bit IPv6 address split into two 64-bit halves,
// most-significant half first.
type Addr6 struct {
	Hi, Lo uint64
}

// MaxPrefixLen6 is the number of bits in an IPv6 address.
const MaxPrefixLen6 = 128

// Prefix6 is an IPv6 prefix match.
type Prefix6 struct {
	Addr Addr6
	Len  uint8
}

func mask64(bits int) uint64 {
	switch {
	case bits <= 0:
		return 0
	case bits >= 64:
		return ^uint64(0)
	default:
		return ^uint64(0) << (64 - bits)
	}
}

// Canonical returns the prefix with don't-care bits zeroed.
func (p Prefix6) Canonical() Prefix6 {
	p.Addr.Hi &= mask64(int(p.Len))
	p.Addr.Lo &= mask64(int(p.Len) - 64)
	return p
}

// Matches reports whether addr falls inside the prefix.
func (p Prefix6) Matches(a Addr6) bool {
	return (a.Hi^p.Addr.Hi)&mask64(int(p.Len)) == 0 &&
		(a.Lo^p.Addr.Lo)&mask64(int(p.Len)-64) == 0
}

// Contains reports whether every address matched by q is matched by p.
func (p Prefix6) Contains(q Prefix6) bool {
	return p.Len <= q.Len && p.Matches(q.Addr)
}

// Valid reports whether the prefix length is in range and the address
// canonical.
func (p Prefix6) Valid() bool {
	return p.Len <= MaxPrefixLen6 && p.Canonical().Addr == p.Addr
}

// String formats the prefix as colon-hex/len.
func (p Prefix6) String() string {
	return fmt.Sprintf("%04x:%04x:%04x:%04x:%04x:%04x:%04x:%04x/%d",
		uint16(p.Addr.Hi>>48), uint16(p.Addr.Hi>>32), uint16(p.Addr.Hi>>16), uint16(p.Addr.Hi),
		uint16(p.Addr.Lo>>48), uint16(p.Addr.Lo>>32), uint16(p.Addr.Lo>>16), uint16(p.Addr.Lo), p.Len)
}

// Rule6 is a 5-tuple rule over IPv6 addresses.
type Rule6 struct {
	ID       int
	Priority int
	SrcIP    Prefix6
	DstIP    Prefix6
	SrcPort  PortRange
	DstPort  PortRange
	Proto    ProtoMatch
	Action   Action
}

// Header6 is the IPv6 5-tuple point.
type Header6 struct {
	SrcIP   Addr6
	DstIP   Addr6
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Matches reports whether the header satisfies all five field matches.
func (r *Rule6) Matches(h Header6) bool {
	return r.SrcIP.Matches(h.SrcIP) &&
		r.DstIP.Matches(h.DstIP) &&
		r.SrcPort.Matches(h.SrcPort) &&
		r.DstPort.Matches(h.DstPort) &&
		r.Proto.Matches(h.Proto)
}
