package rule

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestActionString(t *testing.T) {
	want := map[Action]string{
		ActionPermit: "permit", ActionDeny: "deny", ActionQueue: "queue",
		ActionMirror: "mirror", ActionCount: "count", Action(99): "action(99)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestRule6Matches(t *testing.T) {
	r := Rule6{
		SrcIP:   Prefix6{Addr: Addr6{Hi: 0x20010db8_00000000}, Len: 32},
		DstIP:   Prefix6{}, // wildcard
		SrcPort: FullPortRange(),
		DstPort: ExactPort(443),
		Proto:   ExactProto(ProtoTCP),
	}
	h := Header6{
		SrcIP:   Addr6{Hi: 0x20010db8_00000001, Lo: 42},
		DstIP:   Addr6{Hi: 1, Lo: 2},
		DstPort: 443, Proto: ProtoTCP,
	}
	if !r.Matches(h) {
		t.Error("rule should match")
	}
	h.DstPort = 80
	if r.Matches(h) {
		t.Error("rule should not match wrong port")
	}
	h.DstPort = 443
	h.SrcIP.Hi = 0x20010db9_00000000
	if r.Matches(h) {
		t.Error("rule should not match wrong source prefix")
	}
}

func TestPrefix6ValidAndString(t *testing.T) {
	good := Prefix6{Addr: Addr6{Hi: 0x20010db8_00000000}, Len: 32}
	if !good.Valid() {
		t.Error("canonical /32 should be valid")
	}
	bad := Prefix6{Addr: Addr6{Hi: 0x20010db8_00000001}, Len: 32} // dirty low bits
	if bad.Valid() {
		t.Error("non-canonical prefix should be invalid")
	}
	over := Prefix6{Len: 129}
	if over.Valid() {
		t.Error("length 129 should be invalid")
	}
	if s := good.String(); !strings.HasSuffix(s, "/32") || !strings.HasPrefix(s, "2001:0db8") {
		t.Errorf("String = %q", s)
	}
}

func TestQuickPrefix6CanonicalIdempotent(t *testing.T) {
	f := func(hi, lo uint64, l uint8) bool {
		p := Prefix6{Addr: Addr6{Hi: hi, Lo: lo}, Len: l % 129}
		c := p.Canonical()
		return c.Canonical() == c && c.Valid() && c.Matches(p.Addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixCanonicalIdempotent(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		p := Prefix{Addr: addr, Len: l % 33}
		c := p.Canonical()
		return c.Canonical() == c && c.Valid() && c.Matches(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetRuleByID(t *testing.T) {
	s := testSet(t)
	r, ok := s.Rule(2)
	if !ok || r.ID != 2 {
		t.Errorf("Rule(2) = %+v, %v", r, ok)
	}
	if _, ok := s.Rule(999); ok {
		t.Error("Rule(999) should not exist")
	}
}

func TestNewSetSortsByPriority(t *testing.T) {
	rules := []Rule{
		{ID: 1, Priority: 30, SrcPort: FullPortRange(), DstPort: FullPortRange()},
		{ID: 2, Priority: 10, SrcPort: FullPortRange(), DstPort: FullPortRange()},
		{ID: 3, Priority: 20, SrcPort: FullPortRange(), DstPort: FullPortRange()},
	}
	s, err := NewSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{s.Rules()[0].ID, s.Rules()[1].ID, s.Rules()[2].ID}
	if got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Errorf("priority order = %v, want [2 3 1]", got)
	}
}

func TestProtoMatchString(t *testing.T) {
	if s := ExactProto(ProtoTCP).String(); s != "0x06/0xff" {
		t.Errorf("String = %q", s)
	}
	if s := AnyProto().String(); s != "0x00/0x00" {
		t.Errorf("wildcard String = %q", s)
	}
}
