package rule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The ClassBench filter format, used by the paper's ACL/FW/IPC rule files,
// is one rule per line:
//
//	@<srcIP>/<len> <dstIP>/<len> <loSP> : <hiSP> <loDP> : <hiDP> <proto>/<mask>
//
// e.g.
//
//	@192.168.0.0/16 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF
//
// ParseSet reads that format; WriteSet emits it. Lines beginning with '#'
// and blank lines are ignored.

// ParseSet reads a ClassBench-format ruleset. Rules receive IDs and
// priorities in line order (first line = highest priority).
func ParseSet(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var rules []Rule
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rl, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		rules = append(rules, rl)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read ruleset: %w", err)
	}
	return NewSet(rules)
}

// ParseRule parses one ClassBench-format rule line.
func ParseRule(line string) (Rule, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "@") {
		return Rule{}, fmt.Errorf("rule must start with '@': %q", line)
	}
	fields := strings.Fields(line[1:])
	// Expected: src/len dst/len loSP : hiSP loDP : hiDP proto/mask
	if len(fields) != 9 {
		return Rule{}, fmt.Errorf("want 9 whitespace-separated tokens, got %d: %q", len(fields), line)
	}
	var r Rule
	var err error
	if r.SrcIP, err = ParsePrefix(fields[0]); err != nil {
		return Rule{}, fmt.Errorf("source prefix: %w", err)
	}
	if r.DstIP, err = ParsePrefix(fields[1]); err != nil {
		return Rule{}, fmt.Errorf("destination prefix: %w", err)
	}
	if r.SrcPort, err = parseRangeTokens(fields[2], fields[3], fields[4]); err != nil {
		return Rule{}, fmt.Errorf("source port range: %w", err)
	}
	if r.DstPort, err = parseRangeTokens(fields[5], fields[6], fields[7]); err != nil {
		return Rule{}, fmt.Errorf("destination port range: %w", err)
	}
	if r.Proto, err = ParseProtoMatch(fields[8]); err != nil {
		return Rule{}, fmt.Errorf("protocol: %w", err)
	}
	r.Action = ActionPermit
	return r, nil
}

// ParsePrefix parses dotted-quad prefix notation "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("missing '/len' in %q: %w", s, ErrBadPrefix)
	}
	addr, err := parseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || l > MaxPrefixLen {
		return Prefix{}, fmt.Errorf("prefix length %q: %w", s[slash+1:], ErrBadPrefix)
	}
	p := Prefix{Addr: addr, Len: uint8(l)}.Canonical()
	return p, nil
}

func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q: %w", s, ErrBadPrefix)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address octet %q: %w", p, ErrBadPrefix)
		}
		addr = addr<<8 | uint32(b)
	}
	return addr, nil
}

func parseRangeTokens(lo, colon, hi string) (PortRange, error) {
	if colon != ":" {
		return PortRange{}, fmt.Errorf("want ':' between bounds, got %q: %w", colon, ErrBadRange)
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("low bound %q: %w", lo, ErrBadRange)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("high bound %q: %w", hi, ErrBadRange)
	}
	r := PortRange{Lo: uint16(l), Hi: uint16(h)}
	if !r.Valid() {
		return PortRange{}, fmt.Errorf("bounds %d > %d: %w", l, h, ErrBadRange)
	}
	return r, nil
}

// ParseProtoMatch parses "value/mask" with hex (0x..) or decimal numbers.
func ParseProtoMatch(s string) (ProtoMatch, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return ProtoMatch{}, fmt.Errorf("missing '/mask' in %q: %w", s, ErrBadProtoMask)
	}
	v, err := parseByte(s[:slash])
	if err != nil {
		return ProtoMatch{}, err
	}
	m, err := parseByte(s[slash+1:])
	if err != nil {
		return ProtoMatch{}, err
	}
	if m != 0 && m != 0xff {
		return ProtoMatch{}, fmt.Errorf("mask 0x%02x: %w", m, ErrBadProtoMask)
	}
	return ProtoMatch{Value: v & m, Mask: m}, nil
}

func parseByte(s string) (uint8, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), baseOf(s), 8)
	if err != nil {
		return 0, fmt.Errorf("byte value %q: %w", s, ErrBadProtoMask)
	}
	return uint8(v), nil
}

func baseOf(s string) int {
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		return 16
	}
	return 10
}

// WriteSet emits the set in ClassBench format, one rule per line in
// priority order.
func WriteSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	for i := range s.Rules() {
		if _, err := fmt.Fprintln(bw, s.Rules()[i].String()); err != nil {
			return fmt.Errorf("write ruleset: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write ruleset: %w", err)
	}
	return nil
}
