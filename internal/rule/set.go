package rule

import (
	"errors"
	"fmt"
	"sort"
)

// Errors reported by rule and set validation.
var (
	ErrBadPrefix    = errors.New("invalid prefix")
	ErrBadRange     = errors.New("invalid port range")
	ErrBadProtoMask = errors.New("unsupported protocol mask")
	ErrDuplicateID  = errors.New("duplicate rule id")
	ErrUnknownRule  = errors.New("unknown rule id")
)

// Set is an ordered collection of rules with first-match priority: index
// order is priority order unless rules carry explicit priorities.
type Set struct {
	rules []Rule
	byID  map[int]int // rule ID -> index in rules
}

// NewSet builds a set from rules, assigning Priority from position for any
// rule whose Priority is zero, and IDs from position for any rule whose ID
// is zero and unclaimed. It validates every rule and stores them sorted by
// priority, so Rules() index order is priority order.
func NewSet(rules []Rule) (*Set, error) {
	s := &Set{
		rules: make([]Rule, len(rules)),
		byID:  make(map[int]int, len(rules)),
	}
	copy(s.rules, rules)
	for i := range s.rules {
		r := &s.rules[i]
		if r.ID == 0 {
			r.ID = i + 1
		}
		if r.Priority == 0 {
			r.Priority = i + 1
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(s.rules, func(i, j int) bool { return s.rules[i].Priority < s.rules[j].Priority })
	for i := range s.rules {
		if _, dup := s.byID[s.rules[i].ID]; dup {
			return nil, fmt.Errorf("rule id %d: %w", s.rules[i].ID, ErrDuplicateID)
		}
		s.byID[s.rules[i].ID] = i
	}
	return s, nil
}

// Len returns the number of rules in the set.
func (s *Set) Len() int { return len(s.rules) }

// Rules returns the rules in priority order. The returned slice is shared;
// callers must not modify it.
func (s *Set) Rules() []Rule { return s.rules }

// Rule returns the rule with the given ID.
func (s *Set) Rule(id int) (Rule, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Rule{}, false
	}
	return s.rules[i], true
}

// Match returns the Highest-Priority Matching Rule for the header by linear
// scan. It is the reference oracle every classifier in this repository is
// differential-tested against.
func (s *Set) Match(h Header) (Rule, bool) {
	best := -1
	for i := range s.rules {
		if s.rules[i].Matches(h) {
			if best < 0 || s.rules[i].Priority < s.rules[best].Priority {
				best = i
			}
		}
	}
	if best < 0 {
		return Rule{}, false
	}
	return s.rules[best], true
}

// MatchAll returns every matching rule in priority order.
func (s *Set) MatchAll(h Header) []Rule {
	var out []Rule
	for i := range s.rules {
		if s.rules[i].Matches(h) {
			out = append(out, s.rules[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

// Shadowed returns the IDs of rules that can never be the HPMR because an
// earlier (higher-priority) rule covers them completely. The decision
// controller removes these during ruleset optimization (Section III.D).
func (s *Set) Shadowed() []int {
	var ids []int
	for i := range s.rules {
		for j := range s.rules {
			if s.rules[j].Priority < s.rules[i].Priority && s.rules[j].Covers(&s.rules[i]) {
				ids = append(ids, s.rules[i].ID)
				break
			}
		}
	}
	return ids
}

// FieldStats summarizes the per-field structure of a set: how many distinct
// match specifications each field uses and the worst-case number of
// simultaneously matching specifications (the label-list length bound the
// paper fixes at five).
type FieldStats struct {
	DistinctSrcPrefixes int
	DistinctDstPrefixes int
	DistinctSrcRanges   int
	DistinctDstRanges   int
	DistinctProtos      int

	// Max*Nesting is the maximum number of specs in the field that can
	// match one point: nested prefixes for IP fields, overlapping ranges
	// at one port for port fields.
	MaxSrcNesting   int
	MaxDstNesting   int
	MaxSrcPortOver  int
	MaxDstPortOver  int
	MaxProtoMatches int
}

// Stats computes FieldStats for the set.
func (s *Set) Stats() FieldStats {
	var st FieldStats

	src := uniquePrefixes(s.rules, func(r *Rule) Prefix { return r.SrcIP })
	dst := uniquePrefixes(s.rules, func(r *Rule) Prefix { return r.DstIP })
	st.DistinctSrcPrefixes = len(src)
	st.DistinctDstPrefixes = len(dst)
	st.MaxSrcNesting = maxPrefixNesting(src)
	st.MaxDstNesting = maxPrefixNesting(dst)

	sp := uniqueRanges(s.rules, func(r *Rule) PortRange { return r.SrcPort })
	dp := uniqueRanges(s.rules, func(r *Rule) PortRange { return r.DstPort })
	st.DistinctSrcRanges = len(sp)
	st.DistinctDstRanges = len(dp)
	st.MaxSrcPortOver = maxRangeOverlap(sp)
	st.MaxDstPortOver = maxRangeOverlap(dp)

	protos := make(map[ProtoMatch]struct{})
	anyWildcard := false
	for i := range s.rules {
		protos[s.rules[i].Proto] = struct{}{}
		if s.rules[i].Proto.IsWildcard() {
			anyWildcard = true
		}
	}
	st.DistinctProtos = len(protos)
	st.MaxProtoMatches = 1
	if anyWildcard && len(protos) > 1 {
		st.MaxProtoMatches = 2 // exact value plus the wildcard
	}
	return st
}

func uniquePrefixes(rules []Rule, get func(*Rule) Prefix) []Prefix {
	seen := make(map[Prefix]struct{})
	var out []Prefix
	for i := range rules {
		p := get(&rules[i]).Canonical()
		if _, ok := seen[p]; !ok {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}

// maxPrefixNesting returns the length of the longest containment chain
// among the prefixes, i.e. the maximum number of prefixes that can match a
// single address.
func maxPrefixNesting(ps []Prefix) int {
	sorted := make([]Prefix, len(ps))
	copy(sorted, ps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Len < sorted[j].Len })
	best := 0
	// depth[i] = longest chain ending at sorted[i]. Quadratic, but only run
	// on distinct prefixes during offline analysis.
	depth := make([]int, len(sorted))
	for i := range sorted {
		depth[i] = 1
		for j := 0; j < i; j++ {
			if sorted[j].Len < sorted[i].Len && sorted[j].Contains(sorted[i]) && depth[j]+1 > depth[i] {
				depth[i] = depth[j] + 1
			}
		}
		if depth[i] > best {
			best = depth[i]
		}
	}
	return best
}

func uniqueRanges(rules []Rule, get func(*Rule) PortRange) []PortRange {
	seen := make(map[PortRange]struct{})
	var out []PortRange
	for i := range rules {
		r := get(&rules[i])
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	return out
}

// maxRangeOverlap returns the maximum number of ranges that contain one
// point, computed by a sweep over endpoints.
func maxRangeOverlap(rs []PortRange) int {
	type ev struct {
		at    int
		delta int
	}
	events := make([]ev, 0, 2*len(rs))
	for _, r := range rs {
		events = append(events, ev{at: int(r.Lo), delta: +1}, ev{at: int(r.Hi) + 1, delta: -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Close (-1) before open (+1) at the same point, so ranges that
		// touch without overlapping do not count as overlapping.
		return events[i].delta < events[j].delta
	})
	cur, best := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}
