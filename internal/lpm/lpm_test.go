package lpm

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/label"
)

// reference is a naive prefix store used as the differential-test oracle.
type reference[K Key[K]] struct {
	prefixes map[Prefix[K]]label.Label
}

func newReference[K Key[K]]() *reference[K] {
	return &reference[K]{prefixes: make(map[Prefix[K]]label.Label)}
}

func (r *reference[K]) insert(p Prefix[K], lab label.Label) { r.prefixes[p.Canonical()] = lab }
func (r *reference[K]) remove(p Prefix[K])                  { delete(r.prefixes, p.Canonical()) }

// lookup returns all matching labels most specific first.
func (r *reference[K]) lookup(k K) []label.Label {
	type match struct {
		plen uint8
		lab  label.Label
	}
	var ms []match
	for p, lab := range r.prefixes {
		if p.Matches(k) {
			ms = append(ms, match{plen: p.Len, lab: lab})
		}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].plen > ms[j].plen })
	out := make([]label.Label, len(ms))
	for i, m := range ms {
		out[i] = m.lab
	}
	return out
}

// longest returns only the most specific label, for the leaf-push engine.
func (r *reference[K]) longest(k K) (label.Label, bool) {
	ls := r.lookup(k)
	if len(ls) == 0 {
		return label.None, false
	}
	return ls[0], true
}

// randomV4Prefixes builds a hierarchical prefix set (like real tables:
// nested /8 -> /16 -> /24 -> /32 chains).
func randomV4Prefixes(rnd *rand.Rand, n int) []Prefix[V4] {
	var out []Prefix[V4]
	seen := make(map[Prefix[V4]]bool)
	for len(out) < n {
		addr := V4(rnd.Uint32())
		lens := []uint8{0, 8, 12, 16, 20, 24, 28, 32}
		p := Prefix[V4]{Key: addr, Len: lens[rnd.Intn(len(lens))]}.Canonical()
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func randomV6Prefixes(rnd *rand.Rand, n int) []Prefix[V6] {
	var out []Prefix[V6]
	seen := make(map[Prefix[V6]]bool)
	for len(out) < n {
		addr := V6{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
		lens := []uint8{0, 16, 32, 48, 64, 80, 96, 128}
		p := Prefix[V6]{Key: addr, Len: lens[rnd.Intn(len(lens))]}.Canonical()
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func equalLabels(a, b []label.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestV4SliceMaskedUpper(t *testing.T) {
	k := V4(0xc0a80180) // 192.168.1.128
	if got := k.Slice(0, 8); got != 0xc0 {
		t.Errorf("Slice(0,8) = %#x", got)
	}
	if got := k.Slice(8, 8); got != 0xa8 {
		t.Errorf("Slice(8,8) = %#x", got)
	}
	if got := k.Slice(16, 16); got != 0x0180 {
		t.Errorf("Slice(16,16) = %#x", got)
	}
	if got := k.Slice(0, 0); got != 0 {
		t.Errorf("Slice(0,0) = %#x", got)
	}
	if got := k.Masked(16); got != 0xc0a80000 {
		t.Errorf("Masked(16) = %#x", got)
	}
	if got := k.UpperBound(16); got != 0xc0a8ffff {
		t.Errorf("UpperBound(16) = %#x", got)
	}
	if got := k.Masked(0); got != 0 {
		t.Errorf("Masked(0) = %#x", got)
	}
	if got := k.UpperBound(32); got != k {
		t.Errorf("UpperBound(32) = %#x", got)
	}
}

func TestV6SliceAcrossBoundary(t *testing.T) {
	k := V6{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	if got := k.Slice(0, 16); got != 0x0123 {
		t.Errorf("Slice(0,16) = %#x", got)
	}
	if got := k.Slice(56, 16); got != 0xeffe {
		t.Errorf("Slice(56,16) = %#x, want 0xeffe (spans the 64-bit boundary)", got)
	}
	if got := k.Slice(64, 8); got != 0xfe {
		t.Errorf("Slice(64,8) = %#x", got)
	}
	if got := k.Slice(120, 8); got != 0x10 {
		t.Errorf("Slice(120,8) = %#x", got)
	}
	if got := k.Masked(72); (got != V6{Hi: 0x0123456789abcdef, Lo: 0xfe00000000000000}) {
		t.Errorf("Masked(72) = %#x", got)
	}
	if got := k.UpperBound(64); (got != V6{Hi: 0x0123456789abcdef, Lo: ^uint64(0)}) {
		t.Errorf("UpperBound(64) = %#x", got)
	}
}

func TestV6SliceConsistentWithV4Style(t *testing.T) {
	// Property: slicing bit by bit reconstructs Slice of wider chunks.
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		k := V6{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
		start := uint8(rnd.Intn(113))
		n := uint8(1 + rnd.Intn(16))
		var want uint32
		for b := uint8(0); b < n; b++ {
			want = want<<1 | k.Slice(start+b, 1)
		}
		if got := k.Slice(start, n); got != want {
			t.Fatalf("Slice(%d,%d) = %#x, want %#x", start, n, got, want)
		}
	}
}

func TestMBTMatchesReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, stride := range []int{1, 2, 4, 8} {
		trie, err := NewMultiBitTrie[V4](stride)
		if err != nil {
			t.Fatalf("NewMultiBitTrie(%d): %v", stride, err)
		}
		ref := newReference[V4]()
		ps := randomV4Prefixes(rnd, 300)
		for i, p := range ps {
			trie.Insert(p, label.Label(i))
			ref.insert(p, label.Label(i))
		}
		if trie.Len() != len(ref.prefixes) {
			t.Fatalf("stride %d: Len = %d, want %d", stride, trie.Len(), len(ref.prefixes))
		}
		verify := func(phase string) {
			for i := 0; i < 500; i++ {
				k := testAddr(rnd, ps)
				got, _ := trie.Lookup(k, nil)
				want := ref.lookup(k)
				if !equalLabels(got, want) {
					t.Fatalf("stride %d %s: lookup(%#x) = %v, want %v", stride, phase, k, got, want)
				}
			}
		}
		verify("initial")

		// Delete half and re-check.
		for i := 0; i < len(ps); i += 2 {
			lab, _, ok := trie.Delete(ps[i])
			if !ok {
				t.Fatalf("stride %d: Delete(%v) not found", stride, ps[i])
			}
			if lab != label.Label(i) {
				t.Fatalf("stride %d: Delete returned %v, want %v", stride, lab, label.Label(i))
			}
			ref.remove(ps[i])
		}
		verify("after delete")
	}
}

func TestBSTMatchesReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	tree := NewBST[V4]()
	ref := newReference[V4]()
	ps := randomV4Prefixes(rnd, 400)
	for i, p := range ps {
		tree.Insert(p, label.Label(i))
		ref.insert(p, label.Label(i))
	}
	if tree.Len() != len(ref.prefixes) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(ref.prefixes))
	}
	for i := 0; i < 800; i++ {
		k := testAddr(rnd, ps)
		got, _ := tree.Lookup(k, nil)
		want := ref.lookup(k)
		if !equalLabels(got, want) {
			t.Fatalf("BST lookup(%#x) = %v, want %v", k, got, want)
		}
	}
	for i := 0; i < len(ps); i += 2 {
		if _, _, ok := tree.Delete(ps[i]); !ok {
			t.Fatalf("Delete(%v) not found", ps[i])
		}
		ref.remove(ps[i])
	}
	for i := 0; i < 800; i++ {
		k := testAddr(rnd, ps)
		got, _ := tree.Lookup(k, nil)
		want := ref.lookup(k)
		if !equalLabels(got, want) {
			t.Fatalf("after delete: BST lookup(%#x) = %v, want %v", k, got, want)
		}
	}
}

// testAddr picks addresses biased to hit stored prefixes.
func testAddr(rnd *rand.Rand, ps []Prefix[V4]) V4 {
	if rnd.Intn(4) > 0 && len(ps) > 0 {
		p := ps[rnd.Intn(len(ps))]
		return p.Key | (V4(rnd.Uint32()) &^ (^V4(0) << (32 - p.Len))) // inside p
	}
	return V4(rnd.Uint32())
}

func TestMBTLookupAgainstBST(t *testing.T) {
	// Cross-check two independent implementations on the same data.
	rnd := rand.New(rand.NewSource(3))
	trie, err := NewMultiBitTrie[V4](4)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBST[V4]()
	ps := randomV4Prefixes(rnd, 500)
	for i, p := range ps {
		trie.Insert(p, label.Label(i))
		tree.Insert(p, label.Label(i))
	}
	for i := 0; i < 2000; i++ {
		k := testAddr(rnd, ps)
		a, _ := trie.Lookup(k, nil)
		b, _ := tree.Lookup(k, nil)
		if !equalLabels(a, b) {
			t.Fatalf("MBT %v != BST %v for %#x", a, b, k)
		}
	}
}

func TestMBTV6(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	trie, err := NewMultiBitTrie[V6](8)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBST[V6]()
	ref := newReference[V6]()
	ps := randomV6Prefixes(rnd, 200)
	for i, p := range ps {
		trie.Insert(p, label.Label(i))
		tree.Insert(p, label.Label(i))
		ref.insert(p, label.Label(i))
	}
	if trie.Depth() != 16 {
		t.Errorf("v6 stride-8 depth = %d, want 16", trie.Depth())
	}
	for i := 0; i < 500; i++ {
		var k V6
		if rnd.Intn(2) == 0 && len(ps) > 0 {
			p := ps[rnd.Intn(len(ps))]
			k = V6{Hi: p.Key.Hi | (rnd.Uint64() & ^v6mask(int(p.Len))), Lo: p.Key.Lo | (rnd.Uint64() & ^v6mask(int(p.Len)-64))}
		} else {
			k = V6{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
		}
		want := ref.lookup(k)
		if got, _ := trie.Lookup(k, nil); !equalLabels(got, want) {
			t.Fatalf("v6 MBT lookup = %v, want %v", got, want)
		}
		if got, _ := tree.Lookup(k, nil); !equalLabels(got, want) {
			t.Fatalf("v6 BST lookup = %v, want %v", got, want)
		}
	}
}

func TestLeafPushLongestMatch(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	trie := NewLeafPushTrie[V4]()
	ref := newReference[V4]()
	ps := randomV4Prefixes(rnd, 120)
	for i, p := range ps {
		trie.Insert(p, label.Label(i))
		ref.insert(p, label.Label(i))
	}
	if trie.Len() != len(ref.prefixes) {
		t.Fatalf("Len = %d, want %d", trie.Len(), len(ref.prefixes))
	}
	for i := 0; i < 1000; i++ {
		k := testAddr(rnd, ps)
		got, _ := trie.Lookup(k, nil)
		want, ok := ref.longest(k)
		if !ok {
			if len(got) != 0 {
				t.Fatalf("lookup(%#x) = %v, want empty", k, got)
			}
			continue
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("lookup(%#x) = %v, want [%v]", k, got, want)
		}
	}
	// Delete half (rebuild path) and re-check.
	for i := 0; i < len(ps); i += 2 {
		if _, _, ok := trie.Delete(ps[i]); !ok {
			t.Fatalf("Delete(%v) not found", ps[i])
		}
		ref.remove(ps[i])
	}
	for i := 0; i < 1000; i++ {
		k := testAddr(rnd, ps)
		got, _ := trie.Lookup(k, nil)
		want, ok := ref.longest(k)
		if !ok {
			if len(got) != 0 {
				t.Fatalf("after delete: lookup(%#x) = %v, want empty", k, got)
			}
			continue
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("after delete: lookup(%#x) = %v, want [%v]", k, got, want)
		}
	}
}

func TestMBTCostsAndMemory(t *testing.T) {
	trie, err := NewMultiBitTrie[V4](8)
	if err != nil {
		t.Fatal(err)
	}
	if trie.Depth() != 4 {
		t.Errorf("stride-8 v4 depth = %d, want 4", trie.Depth())
	}
	base := trie.Memory().TotalBytes()

	// A /24 lands exactly on a level boundary: one slot write plus two
	// node allocations, each costing a pointer write and a 256-bit valid
	// bitmap (8 words).
	c := trie.Insert(Prefix[V4]{Key: 0x0a000100, Len: 24}, 1)
	if want := 2*(1+8) + 1; c.Writes != want {
		t.Errorf("insert /24 writes = %d, want %d (2 node images + 1 slot)", c.Writes, want)
	}
	// A /25 in the last level expands into 2^(8-1)=128 slots.
	c = trie.Insert(Prefix[V4]{Key: 0x0a000100, Len: 25}, 2)
	if c.Writes < 128 {
		t.Errorf("insert /25 writes = %d, want >= 128 (expansion)", c.Writes)
	}
	if got := trie.Memory().TotalBytes(); got <= base {
		t.Error("memory did not grow with inserts")
	}

	// Lookup reads one slot per level.
	_, lc := trie.Lookup(V4(0x0a000180), nil)
	if lc.Reads != 4 {
		t.Errorf("lookup reads = %d, want 4", lc.Reads)
	}

	// Delete both, trie prunes back to the root.
	if _, _, ok := trie.Delete(Prefix[V4]{Key: 0x0a000100, Len: 24}); !ok {
		t.Fatal("delete /24 failed")
	}
	if _, _, ok := trie.Delete(Prefix[V4]{Key: 0x0a000100, Len: 25}); !ok {
		t.Fatal("delete /25 failed")
	}
	if trie.Nodes() != 1 {
		t.Errorf("nodes after full delete = %d, want 1 (root)", trie.Nodes())
	}
	if trie.Len() != 0 {
		t.Errorf("Len after full delete = %d", trie.Len())
	}
}

func TestBSTCheaperUpdatesThanMBT(t *testing.T) {
	// Fig. 3's premise: BST update lines are proportional to rules, while
	// MBT writes many more lines (trie node expansion).
	rnd := rand.New(rand.NewSource(7))
	trie, err := NewMultiBitTrie[V4](8)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBST[V4]()
	var mbtWrites, bstWrites int
	for i, p := range randomV4Prefixes(rnd, 500) {
		mbtWrites += trie.Insert(p, label.Label(i)).Writes
		bstWrites += tree.Insert(p, label.Label(i)).Writes
	}
	if mbtWrites <= 2*bstWrites {
		t.Errorf("expected MBT update writes (%d) >> BST update writes (%d)", mbtWrites, bstWrites)
	}
}

func TestBSTLowerMemoryThanMBT(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	trie, err := NewMultiBitTrie[V4](8)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBST[V4]()
	for i, p := range randomV4Prefixes(rnd, 1000) {
		trie.Insert(p, label.Label(i))
		tree.Insert(p, label.Label(i))
	}
	mbtB, bstB := trie.Memory().TotalBytes(), tree.Memory().TotalBytes()
	if bstB >= mbtB {
		t.Errorf("expected BST memory (%d) < MBT memory (%d)", bstB, mbtB)
	}
}

func TestBSTSlowerLookupThanMBT(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	trie, err := NewMultiBitTrie[V4](8)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBST[V4]()
	ps := randomV4Prefixes(rnd, 2000)
	for i, p := range ps {
		trie.Insert(p, label.Label(i))
		tree.Insert(p, label.Label(i))
	}
	var mbtCycles, bstCycles int
	for i := 0; i < 1000; i++ {
		k := testAddr(rnd, ps)
		_, c1 := trie.Lookup(k, nil)
		_, c2 := tree.Lookup(k, nil)
		mbtCycles += c1.Cycles
		bstCycles += c2.Cycles
	}
	if bstCycles <= 2*mbtCycles {
		t.Errorf("expected BST lookup cycles (%d) >> MBT cycles (%d)", bstCycles, mbtCycles)
	}
}

func TestChooseStrides(t *testing.T) {
	lens := []uint8{8, 16, 16, 24, 24, 24, 32, 32}
	strides := ChooseStrides(32, lens, 8)
	sum := 0
	for _, s := range strides {
		sum += int(s)
		if s == 0 || s > 8 {
			t.Errorf("stride %d out of range", s)
		}
	}
	if sum != 32 {
		t.Errorf("strides %v sum to %d, want 32", strides, sum)
	}
	trie, err := NewVariableStrideTrie[V4](strides)
	if err != nil {
		t.Fatalf("NewVariableStrideTrie(%v): %v", strides, err)
	}
	rnd := rand.New(rand.NewSource(10))
	ref := newReference[V4]()
	ps := randomV4Prefixes(rnd, 300)
	for i, p := range ps {
		trie.Insert(p, label.Label(i))
		ref.insert(p, label.Label(i))
	}
	for i := 0; i < 1000; i++ {
		k := testAddr(rnd, ps)
		got, _ := trie.Lookup(k, nil)
		if want := ref.lookup(k); !equalLabels(got, want) {
			t.Fatalf("AM-Trie lookup = %v, want %v", got, want)
		}
	}
}

func TestAMTrieLowerExpansionThanMismatchedStrides(t *testing.T) {
	// Adaptive strides aligned to the length distribution write fewer
	// expansion lines than a deliberately misaligned layout.
	rnd := rand.New(rand.NewSource(11))
	ps := randomV4Prefixes(rnd, 500)
	var lens []uint8
	for _, p := range ps {
		lens = append(lens, p.Len)
	}
	am, err := NewVariableStrideTrie[V4](ChooseStrides(32, lens, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Comparable node sizes, but level boundaries (6/14/22/30) avoid the
	// popular prefix lengths, forcing expansion.
	bad, err := NewVariableStrideTrie[V4]([]uint8{6, 8, 8, 8, 2})
	if err != nil {
		t.Fatal(err)
	}
	var amWrites, badWrites int
	for i, p := range ps {
		amWrites += am.Insert(p, label.Label(i)).Writes
		badWrites += bad.Insert(p, label.Label(i)).Writes
	}
	if amWrites >= badWrites {
		t.Errorf("adaptive strides wrote %d lines, misaligned %d; expected fewer", amWrites, badWrites)
	}
}

func TestTrieConstructorErrors(t *testing.T) {
	if _, err := NewMultiBitTrie[V4](0); err == nil {
		t.Error("stride 0 should fail")
	}
	if _, err := NewMultiBitTrie[V4](17); err == nil {
		t.Error("stride 17 should fail")
	}
	if _, err := NewVariableStrideTrie[V4]([]uint8{8, 8}); err == nil {
		t.Error("short strides should fail")
	}
	if _, err := NewVariableStrideTrie[V4]([]uint8{8, 8, 8, 8, 8}); err == nil {
		t.Error("long strides should fail")
	}
	if _, err := NewVariableStrideTrie[V4]([]uint8{0, 16, 16}); err == nil {
		t.Error("zero stride should fail")
	}
}

func TestDeleteMissingPrefix(t *testing.T) {
	trie, _ := NewMultiBitTrie[V4](8)
	if _, _, ok := trie.Delete(Prefix[V4]{Key: 1, Len: 32}); ok {
		t.Error("MBT delete of absent prefix reported found")
	}
	tree := NewBST[V4]()
	if _, _, ok := tree.Delete(Prefix[V4]{Key: 1, Len: 32}); ok {
		t.Error("BST delete of absent prefix reported found")
	}
	lp := NewLeafPushTrie[V4]()
	if _, _, ok := lp.Delete(Prefix[V4]{Key: 1, Len: 32}); ok {
		t.Error("leaf-push delete of absent prefix reported found")
	}
}

func TestWildcardPrefix(t *testing.T) {
	trie, _ := NewMultiBitTrie[V4](8)
	tree := NewBST[V4]()
	w := Prefix[V4]{Len: 0}
	trie.Insert(w, 42)
	tree.Insert(w, 42)
	got, _ := trie.Lookup(V4(0xdeadbeef), nil)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("MBT wildcard lookup = %v", got)
	}
	got, _ = tree.Lookup(V4(0xdeadbeef), nil)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("BST wildcard lookup = %v", got)
	}
	if _, _, ok := trie.Delete(w); !ok {
		t.Error("MBT wildcard delete failed")
	}
	got, _ = trie.Lookup(V4(0xdeadbeef), nil)
	if len(got) != 0 {
		t.Errorf("after wildcard delete, MBT lookup = %v", got)
	}
}
