package lpm

import (
	"testing"

	"repro/internal/label"
)

// TestMultiBitTrieLookupZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotation on MultiBitTrie.Lookup: with a caller-
// supplied result buffer the walk must stay off the heap.
func TestMultiBitTrieLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	trie, err := NewMultiBitTrie[V4](4)
	if err != nil {
		t.Fatal(err)
	}
	ps := []Prefix[V4]{
		Prefix[V4]{Key: 0x0a000000, Len: 8}.Canonical(),
		Prefix[V4]{Key: 0x0a0a0000, Len: 16}.Canonical(),
		Prefix[V4]{Key: 0x0a0a0100, Len: 24}.Canonical(),
	}
	for i, p := range ps {
		trie.Insert(p, label.Label(i+1))
	}
	buf := make([]label.Label, 0, 16)
	k := V4(0x0a0a0101)
	matched := 0
	allocs := testing.AllocsPerRun(1000, func() {
		out, _ := trie.Lookup(k, buf[:0])
		matched += len(out)
	})
	if allocs != 0 {
		t.Errorf("Lookup allocated %v times per run, want 0", allocs)
	}
	if matched == 0 {
		t.Fatal("nested prefixes should match")
	}
}
