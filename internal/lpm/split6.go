package lpm

import (
	"fmt"
	"sync"

	"repro/internal/hwsim"
	"repro/internal/label"
)

// Split6 is the first-class IPv6 LPM engine: instead of one 128-bit
// trie it keeps two 64-bit multi-bit tries — one over the high half of
// the address, one over the low half — plus a combination table mapping
// (hi label, lo label) pairs back to the caller's prefix labels. A
// 128-bit lookup is therefore two bounded 64-bit LPM probes and a
// handful of exact-match combination probes, which is how production
// v6 classifiers (yanet2's net6 classifier among them) keep IPv6 on
// the same pipeline budget as IPv4.
//
// The split of an inserted prefix is canonical: a prefix of length
// <= 64 becomes (hi prefix of that length, lo wildcard /0); a longer
// one becomes (exact hi /64, lo prefix of the remainder). Each distinct
// half-prefix gets one internal label, refcounted across the 128-bit
// prefixes sharing it, so the half tries stay as small as the distinct
// halves — the memory argument for splitting in the first place.
type Split6 struct {
	hi, lo *MultiBitTrie[K64]
	// hiRefs/loRefs refcount the internal label of each distinct
	// half-prefix.
	hiRefs           map[Prefix[K64]]*splitRef
	loRefs           map[Prefix[K64]]*splitRef
	hiAlloc, loAlloc label.Allocator
	// comb maps an internal (hi, lo) label pair to the external label
	// of the 128-bit prefix the pair reconstructs.
	comb  map[uint64]label.Label
	count int

	scratch sync.Pool
}

// splitRef is one refcounted internal half-prefix label.
type splitRef struct {
	lab  label.Label
	refs int
}

// split6Scratch holds the per-lookup label lists of the two half tries.
type split6Scratch struct {
	hi, lo []label.Label
}

// NewSplit6 returns a split hi/lo IPv6 engine whose half tries use the
// given multi-bit-trie stride (0 selects 8, the same default as the
// IPv4 pipeline — eight levels per 64-bit half).
func NewSplit6(stride int) (*Split6, error) {
	if stride == 0 {
		stride = 8
	}
	hi, err := NewMultiBitTrie[K64](stride)
	if err != nil {
		return nil, fmt.Errorf("split6 hi trie: %w", err)
	}
	lo, err := NewMultiBitTrie[K64](stride)
	if err != nil {
		return nil, fmt.Errorf("split6 lo trie: %w", err)
	}
	return &Split6{
		hi:      hi,
		lo:      lo,
		hiRefs:  make(map[Prefix[K64]]*splitRef),
		loRefs:  make(map[Prefix[K64]]*splitRef),
		comb:    make(map[uint64]label.Label),
		scratch: sync.Pool{New: func() any { return new(split6Scratch) }},
	}, nil
}

// splitPrefix maps a 128-bit prefix to its canonical (hi, lo) halves.
func splitPrefix(p Prefix[V6]) (hi, lo Prefix[K64]) {
	p = p.Canonical()
	if p.Len <= 64 {
		return Prefix[K64]{Key: K64(p.Key.Hi), Len: p.Len}, Prefix[K64]{}
	}
	return Prefix[K64]{Key: K64(p.Key.Hi), Len: 64},
		Prefix[K64]{Key: K64(p.Key.Lo), Len: p.Len - 64}
}

// combKey packs an internal label pair into the combination-table key.
func combKey(hi, lo label.Label) uint64 {
	return uint64(hi)<<32 | uint64(lo)
}

// acquire returns the ref for a half-prefix, inserting it into the half
// trie with a fresh internal label on first use.
func acquire(t *MultiBitTrie[K64], refs map[Prefix[K64]]*splitRef, alloc *label.Allocator, p Prefix[K64], cost *hwsim.Cost) *splitRef {
	r := refs[p]
	if r == nil {
		r = &splitRef{lab: alloc.Alloc()}
		refs[p] = r
		*cost = cost.Add(t.Insert(p, r.lab))
	}
	return r
}

// release drops one reference, deleting the half-prefix from its trie
// when the last 128-bit prefix using it goes away.
func release(t *MultiBitTrie[K64], refs map[Prefix[K64]]*splitRef, alloc *label.Allocator, p Prefix[K64], r *splitRef, cost *hwsim.Cost) {
	r.refs--
	if r.refs == 0 {
		_, c, _ := t.Delete(p)
		*cost = cost.Add(c)
		alloc.Free(r.lab)
		delete(refs, p)
	}
}

// Insert stores the prefix with its label, replacing the label if the
// prefix is already present. The cost covers the half-trie downloads
// (only on first use of a half) plus the combination-table write.
func (s *Split6) Insert(p Prefix[V6], lab label.Label) hwsim.Cost {
	var cost hwsim.Cost
	hp, lp := splitPrefix(p)
	hr := acquire(s.hi, s.hiRefs, &s.hiAlloc, hp, &cost)
	lr := acquire(s.lo, s.loRefs, &s.loAlloc, lp, &cost)
	key := combKey(hr.lab, lr.lab)
	if _, exists := s.comb[key]; !exists {
		hr.refs++
		lr.refs++
		s.count++
	}
	s.comb[key] = lab
	cost.Writes++
	cost.Cycles = cost.Reads + cost.Writes
	return cost
}

// Delete removes the prefix, returning its label and whether it was
// present.
func (s *Split6) Delete(p Prefix[V6]) (label.Label, hwsim.Cost, bool) {
	var cost hwsim.Cost
	cost.Reads = 2 // half-ref probes
	hp, lp := splitPrefix(p)
	hr := s.hiRefs[hp]
	lr := s.loRefs[lp]
	if hr == nil || lr == nil {
		cost.Cycles = cost.Reads
		return label.None, cost, false
	}
	key := combKey(hr.lab, lr.lab)
	ext, ok := s.comb[key]
	if !ok {
		cost.Cycles = cost.Reads
		return label.None, cost, false
	}
	delete(s.comb, key)
	s.count--
	cost.Writes++
	release(s.hi, s.hiRefs, &s.hiAlloc, hp, hr, &cost)
	release(s.lo, s.loRefs, &s.loAlloc, lp, lr, &cost)
	cost.Cycles = cost.Reads + cost.Writes
	return ext, cost, true
}

// Lookup appends the labels of all prefixes matching the key to buf and
// returns the hardware cost. The two half probes run in parallel in
// hardware (cycle cost combines by max); every (hi, lo) pair then costs
// one combination-table probe, mirroring the ULI's rule-filter probes
// one level down.
//
// The match set is exact: a 128-bit prefix matches the key iff its hi
// half matches the high 64 bits and its lo half matches the low 64
// bits, and each matching prefix contributes exactly one (hi, lo) pair.
// Labels are emitted hi-most-specific first.
//
//repro:noalloc
func (s *Split6) Lookup(k V6, buf []label.Label) ([]label.Label, hwsim.Cost) {
	sc := s.scratch.Get().(*split6Scratch)
	hiList, hiCost := s.hi.Lookup(K64(k.Hi), sc.hi[:0])
	loList, loCost := s.lo.Lookup(K64(k.Lo), sc.lo[:0])
	sc.hi, sc.lo = hiList, loList
	cost := hiCost.Max(loCost)
	cost.Reads = hiCost.Reads + loCost.Reads
	for _, hl := range hiList {
		for _, ll := range loList {
			cost.Reads++
			cost.Cycles++
			if ext, ok := s.comb[combKey(hl, ll)]; ok {
				buf = append(buf, ext)
			}
		}
	}
	s.scratch.Put(sc)
	return buf, cost
}

// Len returns the number of stored 128-bit prefixes.
func (s *Split6) Len() int { return s.count }

// combEntryBits is the modeled combination-table word: two internal
// labels and the external label.
const combEntryBits = 96

// Memory reports the two half tries plus the combination table.
func (s *Split6) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	for _, b := range s.hi.Memory().Blocks {
		mm.Add("net6-hi/"+b.Name, b.WordBits, b.Words)
	}
	for _, b := range s.lo.Memory().Blocks {
		mm.Add("net6-lo/"+b.Name, b.WordBits, b.Words)
	}
	mm.Add("net6-comb", combEntryBits, len(s.comb))
	return mm
}
