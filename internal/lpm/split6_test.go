package lpm

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/label"
)

// randPrefix6 draws a prefix with lengths covering both halves of the
// split (0, short, exactly 64, long, full 128).
func randPrefix6(rnd *rand.Rand) Prefix[V6] {
	lens := []uint8{0, 16, 32, 48, 64, 72, 96, 112, 128}
	p := Prefix[V6]{
		Key: V6{Hi: rnd.Uint64(), Lo: rnd.Uint64()},
		Len: lens[rnd.Intn(len(lens))],
	}
	return p.Canonical()
}

// TestSplit6MatchesLinearOracle cross-checks the split engine's label
// lists against a brute-force prefix scan through insert/delete churn.
func TestSplit6MatchesLinearOracle(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	s, err := NewSplit6(8)
	if err != nil {
		t.Fatal(err)
	}
	installed := map[Prefix[V6]]label.Label{}
	next := label.Label(1)

	check := func(k V6) {
		t.Helper()
		var want []label.Label
		for p, lab := range installed {
			if p.Matches(k) {
				want = append(want, lab)
			}
		}
		got, _ := s.Lookup(k, nil)
		if len(got) != len(want) {
			t.Fatalf("key %v: got %d labels %v, want %d %v", k, len(got), got, len(want), want)
		}
		gs := append([]label.Label(nil), got...)
		sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range gs {
			if gs[i] != want[i] {
				t.Fatalf("key %v: labels %v, want %v", k, got, want)
			}
		}
	}

	var pool []Prefix[V6]
	for step := 0; step < 400; step++ {
		if len(pool) == 0 || rnd.Intn(3) != 0 {
			p := randPrefix6(rnd)
			if _, dup := installed[p]; dup {
				continue
			}
			s.Insert(p, next)
			installed[p] = next
			next++
			pool = append(pool, p)
		} else {
			i := rnd.Intn(len(pool))
			p := pool[i]
			lab, _, ok := s.Delete(p)
			if !ok {
				t.Fatalf("delete of installed prefix %v failed", p)
			}
			if lab != installed[p] {
				t.Fatalf("delete of %v returned label %v, want %v", p, lab, installed[p])
			}
			delete(installed, p)
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
		if s.Len() != len(installed) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(installed))
		}
		// Probe keys correlated with installed prefixes plus pure noise.
		for probe := 0; probe < 4; probe++ {
			var k V6
			if len(pool) > 0 && probe%2 == 0 {
				p := pool[rnd.Intn(len(pool))]
				k = V6{Hi: p.Key.Hi | rnd.Uint64()&^v6mask(int(p.Len)),
					Lo: p.Key.Lo | rnd.Uint64()&^v6mask(int(p.Len)-64)}
			} else {
				k = V6{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
			}
			check(k)
		}
	}
	// Drain and confirm empty.
	for _, p := range pool {
		if _, _, ok := s.Delete(p); !ok {
			t.Fatalf("drain delete of %v failed", p)
		}
	}
	if s.Len() != 0 || s.hi.Len() != 0 || s.lo.Len() != 0 {
		t.Fatalf("drained engine not empty: %d prefixes, hi %d, lo %d", s.Len(), s.hi.Len(), s.lo.Len())
	}
}

// TestSplit6SharedHalves checks the refcounting: prefixes sharing a
// half keep it alive until the last user is deleted.
func TestSplit6SharedHalves(t *testing.T) {
	s, err := NewSplit6(8)
	if err != nil {
		t.Fatal(err)
	}
	site := uint64(0x20010db8_0000_0000)
	a := Prefix[V6]{Key: V6{Hi: site, Lo: 1 << 32}, Len: 96}.Canonical()
	b := Prefix[V6]{Key: V6{Hi: site, Lo: 2 << 32}, Len: 96}.Canonical()
	s.Insert(a, 1)
	s.Insert(b, 2)
	if s.hi.Len() != 1 {
		t.Fatalf("hi trie holds %d prefixes, want 1 shared /64", s.hi.Len())
	}
	if _, _, ok := s.Delete(a); !ok {
		t.Fatal("delete a")
	}
	if s.hi.Len() != 1 {
		t.Fatalf("hi trie holds %d prefixes after first delete, want 1", s.hi.Len())
	}
	got, _ := s.Lookup(V6{Hi: site, Lo: 2 << 32}, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("lookup after partial delete = %v, want [2]", got)
	}
	if _, _, ok := s.Delete(b); !ok {
		t.Fatal("delete b")
	}
	if s.hi.Len() != 0 || s.lo.Len() != 0 {
		t.Fatalf("half tries not drained: hi %d, lo %d", s.hi.Len(), s.lo.Len())
	}
}

// TestSplit6ReplaceLabel pins MBT-compatible replace semantics: a
// second Insert of the same prefix swaps the label in place.
func TestSplit6ReplaceLabel(t *testing.T) {
	s, err := NewSplit6(8)
	if err != nil {
		t.Fatal(err)
	}
	p := Prefix[V6]{Key: V6{Hi: 0xff00_0000_0000_0000}, Len: 8}.Canonical()
	s.Insert(p, 1)
	s.Insert(p, 9)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", s.Len())
	}
	got, _ := s.Lookup(V6{Hi: 0xff12_3456_0000_0000}, nil)
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("lookup = %v, want [9]", got)
	}
	if lab, _, ok := s.Delete(p); !ok || lab != 9 {
		t.Fatalf("delete = %v/%v, want 9/true", lab, ok)
	}
}

// TestSplit6Memory sanity-checks the memory map names the three blocks.
func TestSplit6Memory(t *testing.T) {
	s, err := NewSplit6(8)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(Prefix[V6]{Key: V6{Hi: 1 << 63, Lo: 1 << 63}, Len: 100}.Canonical(), 1)
	mm := s.Memory()
	seen := map[string]bool{}
	for _, b := range mm.Blocks {
		seen[b.Name] = true
	}
	for _, want := range []string{"net6-hi/mbt-slots", "net6-lo/mbt-slots", "net6-comb"} {
		if !seen[want] {
			t.Errorf("memory map missing block %q (have %v)", want, mm.Blocks)
		}
	}
}

// TestSplit6LookupZeroAllocs is the runtime half of the //repro:noalloc
// annotation on Split6.Lookup.
func TestSplit6LookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	s, err := NewSplit6(8)
	if err != nil {
		t.Fatal(err)
	}
	site := uint64(0x20010db8_0000_0000)
	ps := []Prefix[V6]{
		{Key: V6{Hi: site}, Len: 32},
		{Key: V6{Hi: site}, Len: 64},
		{Key: V6{Hi: site, Lo: 5 << 32}, Len: 96},
	}
	for i, p := range ps {
		s.Insert(p.Canonical(), label.Label(i+1))
	}
	k := V6{Hi: site, Lo: 5 << 32}
	buf := make([]label.Label, 0, 16)
	// Warm the scratch pool.
	if out, _ := s.Lookup(k, buf[:0]); len(out) != 3 {
		t.Fatalf("warm lookup matched %d labels, want 3", len(out))
	}
	matched := 0
	allocs := testing.AllocsPerRun(1000, func() {
		out, _ := s.Lookup(k, buf[:0])
		matched += len(out)
	})
	if allocs != 0 {
		t.Errorf("Lookup allocated %v times per run, want 0", allocs)
	}
	if matched == 0 {
		t.Fatal("nested v6 prefixes should match")
	}
}
