package lpm

import (
	"testing"
	"testing/quick"
)

// Property tests on the key abstraction, which every engine's correctness
// rests on.

func TestQuickV4MaskedIdempotent(t *testing.T) {
	f := func(k V4, n uint8) bool {
		n %= 33
		m := k.Masked(n)
		return m.Masked(n) == m && m == (Prefix[V4]{Key: k, Len: n}).Canonical().Key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickV4MaskedLEKeyLEUpper(t *testing.T) {
	f := func(k V4, n uint8) bool {
		n %= 33
		return k.Masked(n).Cmp(k) <= 0 && k.Cmp(k.UpperBound(n)) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickV4PrefixMatchEqualsIntervalMembership(t *testing.T) {
	// A key matches a prefix iff it lies in [Masked, UpperBound] of the
	// prefix — the equivalence the BST interval representation relies on.
	f := func(key, addr V4, n uint8) bool {
		n %= 33
		p := Prefix[V4]{Key: key, Len: n}.Canonical()
		inInterval := p.Key.Cmp(addr) <= 0 && addr.Cmp(p.Key.UpperBound(n)) <= 0
		return p.Matches(addr) == inInterval
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickV6PrefixMatchEqualsIntervalMembership(t *testing.T) {
	f := func(hi1, lo1, hi2, lo2 uint64, n uint8) bool {
		n %= 129
		key := V6{Hi: hi1, Lo: lo1}
		addr := V6{Hi: hi2, Lo: lo2}
		p := Prefix[V6]{Key: key, Len: n}.Canonical()
		inInterval := p.Key.Cmp(addr) <= 0 && addr.Cmp(p.Key.UpperBound(n)) <= 0
		return p.Matches(addr) == inInterval
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickV6CmpIsTotalOrder(t *testing.T) {
	f := func(a, b, c V6) bool {
		// Antisymmetry and transitivity on a sample.
		if a.Cmp(b) != -b.Cmp(a) {
			return false
		}
		if a.Cmp(b) <= 0 && b.Cmp(c) <= 0 && a.Cmp(c) > 0 {
			return false
		}
		return a.Cmp(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickV4SliceReassembles(t *testing.T) {
	// Slicing the key at stride 8 reassembles the original value.
	f := func(k V4) bool {
		var re uint32
		for s := uint8(0); s < 32; s += 8 {
			re = re<<8 | k.Slice(s, 8)
		}
		return re == uint32(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickV6SliceReassembles(t *testing.T) {
	f := func(k V6) bool {
		var hi, lo uint64
		for s := 0; s < 64; s += 16 {
			hi = hi<<16 | uint64(k.Slice(uint8(s), 16))
		}
		for s := 64; s < 128; s += 16 {
			lo = lo<<16 | uint64(k.Slice(uint8(s), 16))
		}
		return hi == k.Hi && lo == k.Lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
