package lpm

import (
	"repro/internal/hwsim"
	"repro/internal/label"
)

// LeafPushTrie is the "binary tree with leaf pushing" candidate from
// Table II. Labels live only at leaves: inserting a prefix pushes its
// label down to the uncovered leaves of its subtree. Lookup walks one bit
// per level to a leaf and returns a single label — the longest match only,
// so the engine cannot produce the label lists the decomposition
// architecture needs ("label method support: No"), and it is included for
// the single-field comparison rather than as a classifier building block.
type LeafPushTrie[K Key[K]] struct {
	root *lpNode
	// prefixes retains the inserted prefix set; leaf pushing destroys
	// enough structure that deletion rebuilds from it.
	prefixes map[Prefix[K]]label.Label
	nodes    int
}

type lpNode struct {
	// A node is a leaf iff both children are nil. Leaves carry the label
	// (has=false means no prefix covers this leaf).
	left, right *lpNode
	lab         label.Label
	has         bool
	plen        uint8 // length of the prefix whose label was pushed here
}

// NewLeafPushTrie returns an empty trie.
func NewLeafPushTrie[K Key[K]]() *LeafPushTrie[K] {
	return &LeafPushTrie[K]{
		root:     &lpNode{},
		prefixes: make(map[Prefix[K]]label.Label),
		nodes:    1,
	}
}

// Len returns the number of stored prefixes.
func (t *LeafPushTrie[K]) Len() int { return len(t.prefixes) }

// Insert stores the prefix, pushing its label to the leaves it covers.
func (t *LeafPushTrie[K]) Insert(p Prefix[K], lab label.Label) hwsim.Cost {
	p = p.Canonical()
	t.prefixes[p] = lab
	var cost hwsim.Cost
	t.insert(t.root, p.Key, 0, p.Len, lab, &cost)
	cost.Cycles = cost.Reads + cost.Writes
	return cost
}

func (t *LeafPushTrie[K]) insert(n *lpNode, k K, depth, plen uint8, lab label.Label, cost *hwsim.Cost) {
	cost.Reads++
	if depth == plen {
		t.push(n, lab, plen, cost)
		return
	}
	if n.left == nil && n.right == nil {
		// Split the leaf: both children inherit its label.
		n.left = &lpNode{lab: n.lab, has: n.has, plen: n.plen}
		n.right = &lpNode{lab: n.lab, has: n.has, plen: n.plen}
		n.has = false
		t.nodes += 2
		cost.Writes += 2
	}
	if k.Slice(depth, 1) == 0 {
		t.insert(n.left, k, depth+1, plen, lab, cost)
	} else {
		t.insert(n.right, k, depth+1, plen, lab, cost)
	}
}

// push writes the label into every leaf of the subtree not already covered
// by a more specific prefix.
func (t *LeafPushTrie[K]) push(n *lpNode, lab label.Label, plen uint8, cost *hwsim.Cost) {
	if n.left == nil && n.right == nil {
		if !n.has || n.plen <= plen {
			n.lab, n.has, n.plen = lab, true, plen
			cost.Writes++
		}
		return
	}
	cost.Reads++
	t.push(n.left, lab, plen, cost)
	t.push(n.right, lab, plen, cost)
}

// Delete removes a prefix. Leaf pushing loses the information needed for
// an in-place removal, so the trie is rebuilt from the retained prefix
// set — the expensive update path that disqualifies the structure for
// incrementally updated classifiers.
func (t *LeafPushTrie[K]) Delete(p Prefix[K]) (label.Label, hwsim.Cost, bool) {
	p = p.Canonical()
	lab, ok := t.prefixes[p]
	if !ok {
		return label.None, hwsim.Cost{Cycles: 1, Reads: 1}, false
	}
	delete(t.prefixes, p)
	var cost hwsim.Cost
	t.root = &lpNode{}
	t.nodes = 1
	for q, l := range t.prefixes {
		t.insert(t.root, q.Key, 0, q.Len, l, &cost)
	}
	cost.Cycles = cost.Reads + cost.Writes
	return lab, cost, true
}

// Lookup returns the single longest-match label (appended to buf for
// interface symmetry with the other engines). Cost: one read per bit
// level walked — the W-cycle lookup that makes the structure slow.
func (t *LeafPushTrie[K]) Lookup(k K, buf []label.Label) ([]label.Label, hwsim.Cost) {
	var cost hwsim.Cost
	n := t.root
	var depth uint8
	for n.left != nil || n.right != nil {
		cost.Reads++
		if k.Slice(depth, 1) == 0 {
			n = n.left
		} else {
			n = n.right
		}
		depth++
	}
	cost.Reads++
	cost.Cycles = cost.Reads
	if n.has {
		buf = append(buf, n.lab)
	}
	return buf, cost
}

// lpNodeBits is the modeled RAM word per node: two 20-bit child pointers
// plus a 16-bit label on leaves (shared field) and flags.
const lpNodeBits = 44

// Memory reports the node pool block. One-bit branching with label storage
// confined to leaves gives the "very low" memory figure of Table II.
func (t *LeafPushTrie[K]) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("leafpush-nodes", lpNodeBits, t.nodes)
	return mm
}

// Nodes returns the allocated node count.
func (t *LeafPushTrie[K]) Nodes() int { return t.nodes }
