package lpm

import (
	"repro/internal/hwsim"
	"repro/internal/label"
)

// BST is the paper's space-efficient LPM candidate: a self-balancing
// binary search tree over the address intervals of the stored prefixes
// (an AVL interval tree). One tree node per prefix gives the "low" memory
// figure of Table II, while lookup needs a root-to-leaf walk of
// O(log N + matches) sequential RAM reads — the "slow" lookup that makes
// the BST mode roughly 8x slower than the pipelined MBT in Fig. 4.
//
// Prefix intervals are nested or disjoint (a laminar family), so interval
// stabbing with a max-upper-bound augmentation visits few extra nodes.
type BST[K Key[K]] struct {
	root  *bstNode[K]
	count int
}

type bstNode[K Key[K]] struct {
	lo, hi K // interval covered by the prefix
	plen   uint8
	lab    label.Label

	left, right *bstNode[K]
	height      int8
	maxHi       K // maximum hi in this subtree
}

// NewBST returns an empty tree.
func NewBST[K Key[K]]() *BST[K] { return &BST[K]{} }

// Len returns the number of stored prefixes.
func (t *BST[K]) Len() int { return t.count }

// bstNodeBits is the modeled RAM word per tree node: interval bounds
// (2x key), label, two child pointers and balance bits. Key width enters
// via the generic parameter at Memory time.
func bstNodeBits(keyBits int) int { return 2*keyBits + 16 + 2*20 + 8 }

// Memory reports the single RAM block holding the node pool.
func (t *BST[K]) Memory() hwsim.MemoryMap {
	var zero K
	var mm hwsim.MemoryMap
	mm.Add("bst-nodes", bstNodeBits(zero.Bits()), t.count)
	return mm
}

// Insert stores the prefix, replacing its label if present. Cost: the
// nodes read along the insertion path plus the rebalancing writes — the
// "lines of information proportional to the number of rules" that make
// BST updates cheap in Fig. 3.
func (t *BST[K]) Insert(p Prefix[K], lab label.Label) hwsim.Cost {
	p = p.Canonical()
	lo, hi := p.Key, p.Key.UpperBound(p.Len)
	var cost hwsim.Cost
	var replaced bool
	t.root = t.insert(t.root, lo, hi, p.Len, lab, &cost, &replaced)
	if !replaced {
		t.count++
	}
	cost.Writes++ // the node (or label) write itself
	cost.Cycles = cost.Reads + cost.Writes
	return cost
}

func (t *BST[K]) insert(n *bstNode[K], lo, hi K, plen uint8, lab label.Label, cost *hwsim.Cost, replaced *bool) *bstNode[K] {
	if n == nil {
		nn := &bstNode[K]{lo: lo, hi: hi, plen: plen, lab: lab, height: 1, maxHi: hi}
		return nn
	}
	cost.Reads++
	switch c := cmpInterval(lo, hi, n.lo, n.hi); {
	case c < 0:
		n.left = t.insert(n.left, lo, hi, plen, lab, cost, replaced)
	case c > 0:
		n.right = t.insert(n.right, lo, hi, plen, lab, cost, replaced)
	default:
		n.lab = lab
		*replaced = true
		return n
	}
	return rebalance(n, cost)
}

// cmpInterval orders by lo ascending, then hi descending (outer interval
// first), which makes (lo,hi) a total order with equality exactly on
// identical prefixes.
func cmpInterval[K Key[K]](alo, ahi, blo, bhi K) int {
	if c := alo.Cmp(blo); c != 0 {
		return c
	}
	return bhi.Cmp(ahi)
}

// Delete removes the prefix, returning its label and presence.
func (t *BST[K]) Delete(p Prefix[K]) (label.Label, hwsim.Cost, bool) {
	p = p.Canonical()
	lo, hi := p.Key, p.Key.UpperBound(p.Len)
	var cost hwsim.Cost
	lab := label.None
	found := false
	t.root = t.remove(t.root, lo, hi, &lab, &found, &cost)
	if found {
		t.count--
		cost.Writes++
	}
	cost.Cycles = cost.Reads + cost.Writes
	return lab, cost, found
}

func (t *BST[K]) remove(n *bstNode[K], lo, hi K, lab *label.Label, found *bool, cost *hwsim.Cost) *bstNode[K] {
	if n == nil {
		return nil
	}
	cost.Reads++
	switch c := cmpInterval(lo, hi, n.lo, n.hi); {
	case c < 0:
		n.left = t.remove(n.left, lo, hi, lab, found, cost)
	case c > 0:
		n.right = t.remove(n.right, lo, hi, lab, found, cost)
	default:
		*lab, *found = n.lab, true
		switch {
		case n.left == nil:
			return n.right
		case n.right == nil:
			return n.left
		default:
			// Replace with in-order successor.
			succ := n.right
			for succ.left != nil {
				cost.Reads++
				succ = succ.left
			}
			n.lo, n.hi, n.plen, n.lab = succ.lo, succ.hi, succ.plen, succ.lab
			var f2 bool
			var l2 label.Label
			n.right = t.remove(n.right, succ.lo, succ.hi, &l2, &f2, cost)
		}
	}
	return rebalance(n, cost)
}

// Lookup appends the labels of all prefixes containing the key, most
// specific first. Cost: one read per node visited.
func (t *BST[K]) Lookup(k K, buf []label.Label) ([]label.Label, hwsim.Cost) {
	var cost hwsim.Cost
	type match struct {
		plen uint8
		lab  label.Label
	}
	var scratch [8]match
	matches := scratch[:0]
	var walk func(n *bstNode[K])
	walk = func(n *bstNode[K]) {
		if n == nil {
			return
		}
		cost.Reads++
		if n.maxHi.Cmp(k) < 0 {
			return // no interval below reaches k
		}
		walk(n.left)
		if n.lo.Cmp(k) <= 0 && k.Cmp(n.hi) <= 0 {
			matches = append(matches, match{plen: n.plen, lab: n.lab})
		}
		if n.lo.Cmp(k) <= 0 {
			walk(n.right)
		}
	}
	walk(t.root)
	// Matches arrive in in-order (lo asc, outer first); within a laminar
	// family the stabbed intervals are nested, so in-order is widest
	// first. Emit most specific first by reversing on plen order.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j].plen > matches[j-1].plen; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	for _, m := range matches {
		buf = append(buf, m.lab)
	}
	cost.Cycles = cost.Reads
	return buf, cost
}

func height[K Key[K]](n *bstNode[K]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[K Key[K]](n *bstNode[K]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	n.maxHi = n.hi
	if n.left != nil && n.left.maxHi.Cmp(n.maxHi) > 0 {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi.Cmp(n.maxHi) > 0 {
		n.maxHi = n.right.maxHi
	}
}

func rebalance[K Key[K]](n *bstNode[K], cost *hwsim.Cost) *bstNode[K] {
	fix(n)
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
			cost.Writes++
		}
		n = rotateRight(n)
		cost.Writes++
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
			cost.Writes++
		}
		n = rotateLeft(n)
		cost.Writes++
	}
	return n
}

func rotateLeft[K Key[K]](n *bstNode[K]) *bstNode[K] {
	r := n.right
	n.right = r.left
	r.left = n
	fix(n)
	fix(r)
	return r
}

func rotateRight[K Key[K]](n *bstNode[K]) *bstNode[K] {
	l := n.left
	n.left = l.right
	l.right = n
	fix(n)
	fix(l)
	return l
}
