//go:build !race

package lpm

// raceEnabled reports whether this binary was built with -race; see
// race_test.go.
const raceEnabled = false
