package lpm

import (
	"fmt"
	"sort"

	"repro/internal/hwsim"
	"repro/internal/label"
)

// MultiBitTrie is the paper's MBT engine: a fixed- or variable-stride trie
// with controlled prefix expansion. Each level consumes strides[d] key
// bits; a prefix whose length falls inside a level is expanded into
// 2^(levelBits-remainder) slots of that level's node. Lookup reads one
// node slot per level — in hardware each level is a pipeline stage backed
// by its own RAM block, which is why the paper runs the MBT mode "with
// deep pipelining to support high throughput".
//
// The same implementation covers the AM-Trie candidate: AM-Trie chooses
// asymmetric strides adapted to the prefix-length distribution (see
// ChooseStrides), trading lookup stages against expansion memory.
type MultiBitTrie[K Key[K]] struct {
	strides []uint8
	offsets []uint8 // offsets[d] = sum of strides[:d]
	root    *mbtNode
	// defaultLabel holds the len-0 (wildcard) prefix, which hardware
	// keeps in a register rather than the trie RAM.
	defaultLabel label.Label
	hasDefault   bool

	count int // stored prefixes
	nodes int // allocated nodes
	slots int // allocated slot words (expansion-inclusive memory)
}

type mbtNode struct {
	slots []mbtSlot
	// population counts stored entries plus child pointers, for pruning.
	population int
}

type mbtSlot struct {
	// entries hold the expanded prefixes covering this slot, sorted by
	// descending prefix length (most specific first).
	entries []mbtEntry
	child   *mbtNode
}

type mbtEntry struct {
	plen uint8
	lab  label.Label
}

// NewMultiBitTrie returns an MBT with a uniform stride. The paper's MBT
// configuration corresponds to stride 8 on IPv4 (four pipeline stages).
func NewMultiBitTrie[K Key[K]](stride int) (*MultiBitTrie[K], error) {
	var zero K
	bits := zero.Bits()
	if stride <= 0 || stride > 16 {
		return nil, fmt.Errorf("mbt: stride %d out of range [1,16]", stride)
	}
	var strides []uint8
	for got := 0; got < bits; got += stride {
		s := stride
		if got+s > bits {
			s = bits - got
		}
		strides = append(strides, uint8(s))
	}
	return NewVariableStrideTrie[K](strides)
}

// NewVariableStrideTrie returns a trie with explicit per-level strides,
// which must sum to the key width. This is the AM-Trie construction when
// used with ChooseStrides.
func NewVariableStrideTrie[K Key[K]](strides []uint8) (*MultiBitTrie[K], error) {
	var zero K
	bits := zero.Bits()
	total := 0
	offsets := make([]uint8, len(strides))
	for i, s := range strides {
		if s == 0 || s > 16 {
			return nil, fmt.Errorf("mbt: level %d stride %d out of range [1,16]", i, s)
		}
		offsets[i] = uint8(total)
		total += int(s)
	}
	if total != bits {
		return nil, fmt.Errorf("mbt: strides sum to %d, want %d", total, bits)
	}
	t := &MultiBitTrie[K]{strides: append([]uint8(nil), strides...), offsets: offsets}
	t.root = t.newNode(0)
	return t, nil
}

// ChooseStrides implements the AM-Trie stride-selection heuristic: level
// boundaries are placed at the most frequent prefix lengths (so those
// prefixes expand into exactly one slot), subject to a maximum stride.
func ChooseStrides(bits int, lens []uint8, maxStride int) []uint8 {
	if maxStride <= 0 || maxStride > 16 {
		maxStride = 8
	}
	freq := make(map[uint8]int)
	for _, l := range lens {
		if int(l) > 0 && int(l) <= bits {
			freq[l]++
		}
	}
	// Pick boundaries greedily by frequency.
	type lf struct {
		l uint8
		f int
	}
	var cand []lf
	for l, f := range freq {
		cand = append(cand, lf{l, f})
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].f != cand[j].f {
			return cand[i].f > cand[j].f
		}
		return cand[i].l < cand[j].l
	})
	boundaries := map[int]bool{bits: true}
	for _, c := range cand[:minInt(len(cand), 6)] {
		boundaries[int(c.l)] = true
	}
	var pts []int
	for b := range boundaries {
		pts = append(pts, b)
	}
	sort.Ints(pts)
	// Emit strides, splitting any gap larger than maxStride.
	var strides []uint8
	prev := 0
	for _, b := range pts {
		for b-prev > maxStride {
			strides = append(strides, uint8(maxStride))
			prev += maxStride
		}
		if b > prev {
			strides = append(strides, uint8(b-prev))
			prev = b
		}
	}
	return strides
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (t *MultiBitTrie[K]) newNode(level int) *mbtNode {
	n := &mbtNode{slots: make([]mbtSlot, 1<<t.strides[level])}
	t.nodes++
	t.slots += len(n.slots)
	return n
}

// levelOf returns the level whose span contains a prefix of length l>0:
// the unique d with offsets[d] < l <= offsets[d]+strides[d].
func (t *MultiBitTrie[K]) levelOf(l uint8) int {
	for d := range t.strides {
		if l <= t.offsets[d]+t.strides[d] {
			return d
		}
	}
	return len(t.strides) - 1
}

// Insert stores the prefix with its label, replacing the label if the
// prefix is already present, and returns the hardware cost: one write per
// expanded slot touched (the paper's "lines of information"), plus one
// write per node allocation.
func (t *MultiBitTrie[K]) Insert(p Prefix[K], lab label.Label) hwsim.Cost {
	p = p.Canonical()
	if p.Len == 0 {
		if !t.hasDefault {
			t.count++
		}
		t.hasDefault, t.defaultLabel = true, lab
		return hwsim.Cost{Cycles: 1, Writes: 1}
	}
	var cost hwsim.Cost
	d := t.levelOf(p.Len)
	n := t.root
	for lvl := 0; lvl < d; lvl++ {
		idx := p.Key.Slice(t.offsets[lvl], t.strides[lvl])
		s := &n.slots[idx]
		if s.child == nil {
			s.child = t.newNode(lvl + 1)
			n.population++
			// Allocating a node downloads its image: the child pointer
			// plus the node's valid bitmap (one bit per slot, packed in
			// 32-bit words). This per-node overhead is what makes the
			// MBT update in Fig. 3 markedly more expensive than the
			// BST's one-line-per-rule updates.
			cost.Writes += 1 + (len(s.child.slots)+31)/32
		}
		cost.Reads++
		n = s.child
	}
	inLevel := p.Len - t.offsets[d]
	base := p.Key.Slice(t.offsets[d], inLevel) << (t.strides[d] - inLevel)
	span := uint32(1) << (t.strides[d] - inLevel)
	replaced := false
	for i := uint32(0); i < span; i++ {
		s := &n.slots[base+i]
		if j := findEntry(s.entries, p.Len); j >= 0 {
			s.entries[j].lab = lab
			replaced = true
		} else {
			s.entries = insertEntry(s.entries, mbtEntry{plen: p.Len, lab: lab})
			n.population++
		}
		cost.Writes++
	}
	cost.Cycles = cost.Reads + cost.Writes
	if !replaced {
		t.count++
	}
	return cost
}

func findEntry(es []mbtEntry, plen uint8) int {
	for i := range es {
		if es[i].plen == plen {
			return i
		}
	}
	return -1
}

// insertEntry keeps entries sorted by descending prefix length.
func insertEntry(es []mbtEntry, e mbtEntry) []mbtEntry {
	i := sort.Search(len(es), func(i int) bool { return es[i].plen < e.plen })
	es = append(es, mbtEntry{})
	copy(es[i+1:], es[i:])
	es[i] = e
	return es
}

// Delete removes the prefix, returning its label and whether it was
// present, plus the hardware cost.
func (t *MultiBitTrie[K]) Delete(p Prefix[K]) (label.Label, hwsim.Cost, bool) {
	p = p.Canonical()
	if p.Len == 0 {
		if !t.hasDefault {
			return label.None, hwsim.Cost{Cycles: 1, Reads: 1}, false
		}
		lab := t.defaultLabel
		t.hasDefault = false
		t.count--
		return lab, hwsim.Cost{Cycles: 1, Writes: 1}, true
	}
	var cost hwsim.Cost
	d := t.levelOf(p.Len)
	// Record the path for pruning.
	type step struct {
		n   *mbtNode
		idx uint32
	}
	path := make([]step, 0, d)
	n := t.root
	for lvl := 0; lvl < d; lvl++ {
		idx := p.Key.Slice(t.offsets[lvl], t.strides[lvl])
		s := &n.slots[idx]
		cost.Reads++
		if s.child == nil {
			cost.Cycles = cost.Reads
			return label.None, cost, false
		}
		path = append(path, step{n: n, idx: idx})
		n = s.child
	}
	inLevel := p.Len - t.offsets[d]
	base := p.Key.Slice(t.offsets[d], inLevel) << (t.strides[d] - inLevel)
	span := uint32(1) << (t.strides[d] - inLevel)
	lab := label.None
	found := false
	for i := uint32(0); i < span; i++ {
		s := &n.slots[base+i]
		if j := findEntry(s.entries, p.Len); j >= 0 {
			lab = s.entries[j].lab
			s.entries = append(s.entries[:j], s.entries[j+1:]...)
			n.population--
			found = true
			cost.Writes++
		}
	}
	if !found {
		cost.Cycles = cost.Reads
		return label.None, cost, false
	}
	t.count--
	// Prune empty nodes bottom-up.
	for i := len(path) - 1; i >= 0 && n.population == 0; i-- {
		parent := path[i]
		parent.n.slots[parent.idx].child = nil
		parent.n.population--
		t.nodes--
		t.slots -= len(n.slots)
		cost.Writes++
		n = parent.n
	}
	cost.Cycles = cost.Reads + cost.Writes
	return lab, cost, true
}

// mbtMaxFastLevels bounds the per-lookup stack array of visited-slot
// entry lists. Strides of 2 bits and up keep even IPv6 within it; the
// (never default) deeper configurations take the sort-based slow path.
const mbtMaxFastLevels = 16

// Lookup appends the labels of all prefixes matching the key to buf, most
// specific first, and returns the hardware cost: one RAM read per level
// visited. In the pipelined hardware these reads are successive stages, so
// per-packet latency is the trie depth while the initiation interval stays
// constant.
//
// Slot entry lists are kept sorted most-specific-first at update time,
// and a deeper level holds strictly longer prefixes than a shallower
// one, so emitting the visited slots' lists deepest level first yields
// the sorted order directly — the walk records one slice header per
// level and never copies or sorts entries.
//
//repro:noalloc
func (t *MultiBitTrie[K]) Lookup(k K, buf []label.Label) ([]label.Label, hwsim.Cost) {
	if len(t.strides) > mbtMaxFastLevels {
		return t.lookupSort(k, buf)
	}
	var cost hwsim.Cost
	var lvls [mbtMaxFastLevels][]mbtEntry
	last := -1
	n := t.root
	for lvl := 0; n != nil && lvl < len(t.strides); lvl++ {
		idx := k.Slice(t.offsets[lvl], t.strides[lvl])
		s := &n.slots[idx]
		cost.Reads++
		lvls[lvl] = s.entries
		last = lvl
		n = s.child
	}
	for lvl := last; lvl >= 0; lvl-- {
		for _, e := range lvls[lvl] {
			buf = append(buf, e.lab)
		}
	}
	if t.hasDefault {
		buf = append(buf, t.defaultLabel)
	}
	cost.Cycles = cost.Reads
	return buf, cost
}

// lookupSort is the fallback for tries deeper than mbtMaxFastLevels:
// collect entries level by level into a stack scratch and sort. The
// insertion sort keeps the tiny match list on the stack — sort.Slice
// would heap-allocate its closure on every lookup.
//
//repro:noalloc
func (t *MultiBitTrie[K]) lookupSort(k K, buf []label.Label) ([]label.Label, hwsim.Cost) {
	var cost hwsim.Cost
	var scratch [8]mbtEntry
	matches := scratch[:0]
	n := t.root
	for lvl := 0; n != nil && lvl < len(t.strides); lvl++ {
		idx := k.Slice(t.offsets[lvl], t.strides[lvl])
		s := &n.slots[idx]
		cost.Reads++
		matches = append(matches, s.entries...)
		n = s.child
	}
	for i := 1; i < len(matches); i++ {
		m := matches[i]
		j := i - 1
		for j >= 0 && matches[j].plen < m.plen {
			matches[j+1] = matches[j]
			j--
		}
		matches[j+1] = m
	}
	for _, m := range matches {
		buf = append(buf, m.lab)
	}
	if t.hasDefault {
		buf = append(buf, t.defaultLabel)
	}
	cost.Cycles = cost.Reads
	return buf, cost
}

// Len returns the number of stored prefixes.
func (t *MultiBitTrie[K]) Len() int { return t.count }

// Depth returns the number of pipeline stages (trie levels).
func (t *MultiBitTrie[K]) Depth() int { return len(t.strides) }

// mbtSlotBits is the modeled RAM word per trie slot: a 16-bit label, a
// 6-bit prefix length, a 20-bit child pointer and validity flags.
const mbtSlotBits = 44

// Memory reports the RAM blocks the trie occupies. Expansion makes this
// the paper's "inefficient storage" number: every allocated slot word
// counts whether or not a prefix covers it.
func (t *MultiBitTrie[K]) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("mbt-slots", mbtSlotBits, t.slots)
	return mm
}

// Nodes returns the number of allocated trie nodes.
func (t *MultiBitTrie[K]) Nodes() int { return t.nodes }
