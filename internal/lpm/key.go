// Package lpm implements the Longest-Prefix-Matching engine candidates of
// the paper's Search Engine (Section III.C.1): the multi-bit trie (MBT),
// the binary search tree (BST), the AM-Trie, and the leaf-pushed binary
// trie included in the Table II comparison.
//
// All engines are generic over the address width, supporting both IPv4
// (32-bit) and IPv6 (128-bit) keys — the IPv6 migration flexibility the
// paper's introduction calls for. Engines return label lists ordered most
// specific first (the label-priority order the ULI consumes) together with
// the hardware cost of the operation.
package lpm

import "repro/internal/rule"

// Key is a fixed-width bit-addressable lookup key. The constraint is
// self-referential so methods can return the concrete key type.
type Key[K any] interface {
	comparable
	// Bits returns the key width in bits.
	Bits() int
	// Slice returns the n bits starting at MSB offset start,
	// right-aligned in a uint32. n must be at most 32 and start+n at
	// most Bits.
	Slice(start, n uint8) uint32
	// Masked returns the key with all but the top n bits cleared.
	Masked(n uint8) K
	// UpperBound returns the key with all but the top n bits set: the
	// last address covered by an n-bit prefix of this key.
	UpperBound(n uint8) K
	// Cmp returns -1, 0 or +1 comparing the keys as unsigned integers.
	Cmp(other K) int
}

// V4 is a 32-bit IPv4 address key.
type V4 uint32

// Bits returns 32.
func (V4) Bits() int { return 32 }

// Slice returns n bits at MSB offset start.
func (k V4) Slice(start, n uint8) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(k) << start >> (32 - n)
}

// Masked clears all but the top n bits.
func (k V4) Masked(n uint8) V4 {
	if n == 0 {
		return 0
	}
	if n >= 32 {
		return k
	}
	return k & (^V4(0) << (32 - n))
}

// UpperBound sets all but the top n bits.
func (k V4) UpperBound(n uint8) V4 {
	if n >= 32 {
		return k
	}
	return k | ^(^V4(0) << (32 - n))
}

// Cmp compares as unsigned integers.
func (k V4) Cmp(o V4) int {
	switch {
	case k < o:
		return -1
	case k > o:
		return 1
	default:
		return 0
	}
}

// K64 is a 64-bit key: one half of a split IPv6 address, letting the
// 64-bit-generic engines serve the hi/lo halves of the Split6 scheme.
type K64 uint64

// Bits returns 64.
func (K64) Bits() int { return 64 }

// Slice returns n bits at MSB offset start.
func (k K64) Slice(start, n uint8) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(uint64(k) << start >> (64 - uint64(n)))
}

// Masked clears all but the top n bits.
func (k K64) Masked(n uint8) K64 {
	if n == 0 {
		return 0
	}
	if n >= 64 {
		return k
	}
	return k & (^K64(0) << (64 - n))
}

// UpperBound sets all but the top n bits.
func (k K64) UpperBound(n uint8) K64 {
	if n >= 64 {
		return k
	}
	return k | ^(^K64(0) << (64 - n))
}

// Cmp compares as unsigned integers.
func (k K64) Cmp(o K64) int {
	switch {
	case k < o:
		return -1
	case k > o:
		return 1
	default:
		return 0
	}
}

// V6 is a 128-bit IPv6 address key.
type V6 struct {
	Hi, Lo uint64
}

// V6FromAddr converts the rule-model address.
func V6FromAddr(a rule.Addr6) V6 { return V6{Hi: a.Hi, Lo: a.Lo} }

// Bits returns 128.
func (V6) Bits() int { return 128 }

// Slice returns n bits at MSB offset start.
func (k V6) Slice(start, n uint8) uint32 {
	if n == 0 {
		return 0
	}
	var hi uint64
	switch {
	case start == 0:
		hi = k.Hi
	case start < 64:
		hi = k.Hi<<start | k.Lo>>(64-start)
	default:
		hi = k.Lo << (start - 64)
	}
	return uint32(hi >> (64 - uint64(n)))
}

func v6mask(bits int) uint64 {
	switch {
	case bits <= 0:
		return 0
	case bits >= 64:
		return ^uint64(0)
	default:
		return ^uint64(0) << (64 - bits)
	}
}

// Masked clears all but the top n bits.
func (k V6) Masked(n uint8) V6 {
	return V6{Hi: k.Hi & v6mask(int(n)), Lo: k.Lo & v6mask(int(n)-64)}
}

// UpperBound sets all but the top n bits.
func (k V6) UpperBound(n uint8) V6 {
	return V6{Hi: k.Hi | ^v6mask(int(n)), Lo: k.Lo | ^v6mask(int(n)-64)}
}

// Cmp compares as unsigned 128-bit integers.
func (k V6) Cmp(o V6) int {
	switch {
	case k.Hi < o.Hi:
		return -1
	case k.Hi > o.Hi:
		return 1
	case k.Lo < o.Lo:
		return -1
	case k.Lo > o.Lo:
		return 1
	default:
		return 0
	}
}

// Prefix is a prefix match over a generic key.
type Prefix[K Key[K]] struct {
	Key K
	Len uint8
}

// Canonical returns the prefix with don't-care bits cleared.
func (p Prefix[K]) Canonical() Prefix[K] {
	return Prefix[K]{Key: p.Key.Masked(p.Len), Len: p.Len}
}

// Matches reports whether k falls inside the prefix.
func (p Prefix[K]) Matches(k K) bool {
	return k.Masked(p.Len) == p.Key.Masked(p.Len)
}

// V4Prefix converts the rule-model IPv4 prefix.
func V4Prefix(p rule.Prefix) Prefix[V4] {
	return Prefix[V4]{Key: V4(p.Addr), Len: p.Len}.Canonical()
}

// V6Prefix converts the rule-model IPv6 prefix.
func V6Prefix(p rule.Prefix6) Prefix[V6] {
	return Prefix[V6]{Key: V6FromAddr(p.Addr), Len: p.Len}.Canonical()
}
