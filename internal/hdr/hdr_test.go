package hdr

import "testing"

func TestExactRange(t *testing.T) {
	for v := uint64(0); v < Exact; v++ {
		if i := Index(v); i != int(v) {
			t.Fatalf("Index(%d) = %d, want %d", v, i, v)
		}
		if got := Value(int(v)); got != v {
			t.Fatalf("Value(%d) = %d, want %d", v, got, v)
		}
	}
}

func TestIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 63, 64, 65, 100, 1000, 1 << 16, 1<<16 + 1, 1 << 32, 1<<63 - 1, 1 << 63} {
		i := Index(v)
		if i < prev {
			t.Fatalf("Index(%d) = %d < previous %d; not monotone", v, i, prev)
		}
		if i < 0 || i >= Buckets {
			t.Fatalf("Index(%d) = %d out of [0, %d)", v, i, Buckets)
		}
		prev = i
	}
}

// TestRelativeError locks the geometry's accuracy contract: every
// bucket midpoint is within ~3% (2^-SubBits) of any value mapped to it.
func TestRelativeError(t *testing.T) {
	for _, v := range []uint64{64, 100, 999, 12345, 1 << 20, 987654321, 1 << 40} {
		mid := Value(Index(v))
		diff := float64(mid) - float64(v)
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(v) > 1.0/(1<<SubBits) {
			t.Errorf("Value(Index(%d)) = %d: relative error %.4f exceeds 2^-%d", v, mid, diff/float64(v), SubBits)
		}
	}
}

func TestGeometryZeroAllocs(t *testing.T) {
	var sinkI int
	var sinkV uint64
	if n := testing.AllocsPerRun(100, func() { sinkI += Index(12345) }); n != 0 {
		t.Errorf("Index allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { sinkV += Value(200) }); n != 0 {
		t.Errorf("Value allocates %v/op, want 0", n)
	}
	_, _ = sinkI, sinkV
}
