// Package hdr defines the module's one HDR-histogram bucket geometry:
// values are bucketed with a bounded relative error (~3%, 5 significant
// bits) instead of a bounded absolute error, so one histogram spans
// nanosecond lookups and second stalls without losing tail resolution.
// The package holds only the value↔bucket arithmetic — a dependency-free
// leaf — so both internal/workload's single-writer replay histograms and
// internal/metrics' concurrent daemon histograms share exact bucket
// boundaries, and their counts merge losslessly bucket-by-bucket.
package hdr

import "math/bits"

const (
	// SubBits is the number of significant bits kept per bucket: each
	// power of two is split into 2^SubBits linear sub-buckets.
	SubBits = 5
	sub     = 1 << SubBits
	// Exact is the range [0, Exact) tracked exactly (one bucket per
	// nanosecond).
	Exact = 64
	// Buckets covers exact values plus every (exponent, sub-bucket)
	// pair up to the full uint64 range.
	Buckets = Exact + (63-SubBits)*sub
)

// Index maps a value to its bucket.
//
//repro:noalloc
func Index(v uint64) int {
	if v < Exact {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // v in [2^exp, 2^exp+1), exp >= 6
	frac := (v >> (exp - SubBits)) & (sub - 1)
	return Exact + (exp-6)*sub + int(frac)
}

// Value returns the midpoint of a bucket — the value reported for
// samples that landed in it.
//
//repro:noalloc
func Value(i int) uint64 {
	if i < Exact {
		return uint64(i)
	}
	exp := 6 + (i-Exact)/sub
	frac := uint64((i - Exact) % sub)
	lo := uint64(1)<<exp | frac<<(exp-SubBits)
	return lo + uint64(1)<<(exp-SubBits)/2
}
