package flowcache

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rule"
)

func hdr(i int) rule.Header {
	return rule.Header{SrcIP: uint32(i), DstIP: uint32(i >> 3), SrcPort: uint16(i), DstPort: 80, Proto: rule.ProtoTCP}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(256)
	h := hdr(1)
	if _, _, ok := c.Get(h); ok {
		t.Fatal("hit on empty cache")
	}
	res := core.Result{RuleID: 7, Priority: 3, Found: true}
	_, gen, _ := c.Get(h)
	c.Put(gen, h, res)
	got, _, ok := c.Get(h)
	if !ok || got != res {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, res)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses", st)
	}
}

func TestSizingAndEntries(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, MinEntries}, {1, MinEntries}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := New(tc.ask).Entries(); got != tc.want {
			t.Errorf("New(%d).Entries() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestInvalidateMakesEntriesStale is the generation-stamping contract: a
// Get issued after Invalidate returns must not see any pre-invalidation
// entry, and a Put stamped with a pre-invalidation generation must be a
// no-op for post-invalidation readers.
func TestInvalidateMakesEntriesStale(t *testing.T) {
	c := New(256)
	h := hdr(2)
	_, gen, _ := c.Get(h)
	c.Put(gen, h, core.Result{RuleID: 1, Found: true})
	if _, _, ok := c.Get(h); !ok {
		t.Fatal("warm entry missing")
	}
	c.Invalidate()
	if _, _, ok := c.Get(h); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	// A fill computed before the invalidation (stale gen) never becomes
	// visible.
	c.Put(gen, h, core.Result{RuleID: 99, Found: true})
	if _, _, ok := c.Get(h); ok {
		t.Fatal("stale-generation fill served")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestEvictionCounting fills two headers that collide on the same slot
// (same table index) and checks the displacement is counted.
func TestEvictionCounting(t *testing.T) {
	c := New(MinEntries)
	// Find two distinct headers hashing to the same slot.
	base := hdr(1)
	slot := hash(base) & c.mask
	var other rule.Header
	for i := 2; ; i++ {
		if h := hdr(i); hash(h)&c.mask == slot {
			other = h
			break
		}
	}
	_, gen, _ := c.Get(base)
	c.Put(gen, base, core.Result{RuleID: 1, Found: true})
	c.Put(gen, other, core.Result{RuleID: 2, Found: true})
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The displacing entry is the one served now.
	if got, _, ok := c.Get(other); !ok || got.RuleID != 2 {
		t.Errorf("Get(other) = %+v, %v", got, ok)
	}
	if _, _, ok := c.Get(base); ok {
		t.Error("displaced entry still served")
	}
}

// TestConcurrentGetPutInvalidate drives readers, fillers and an
// invalidator in parallel; run under -race this checks the lock-free
// slot publication and counter sharding.
func TestConcurrentGetPutInvalidate(t *testing.T) {
	c := New(1024)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				h := hdr(i % 512)
				res, gen, ok := c.Get(h)
				if !ok {
					c.Put(gen, h, core.Result{RuleID: i % 512, Found: true})
				} else if !res.Found {
					t.Error("cached miss result published by test")
					return
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		c.Invalidate()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
	if st.Invalidations != 100 {
		t.Errorf("invalidations = %d", st.Invalidations)
	}
}
