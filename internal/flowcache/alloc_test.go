package flowcache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rule"
)

// TestGetZeroAllocs is the runtime counterpart of the //repro:noalloc
// annotation on Get (and the hash it calls): the probe path must stay
// off the heap on both hits and misses.
func TestGetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	c := New(256)
	h := rule.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: rule.ProtoTCP}
	miss := rule.Header{SrcIP: 9, DstIP: 9, SrcPort: 9, DstPort: 9, Proto: rule.ProtoUDP}
	_, gen, _ := c.Get(h)
	c.Put(gen, h, core.Result{RuleID: 7, Found: true})
	if _, _, ok := c.Get(h); !ok {
		t.Fatal("warm entry should hit")
	}
	hits := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := c.Get(h); ok {
			hits++
		}
		c.Get(miss)
	})
	if allocs != 0 {
		t.Errorf("Get allocated %v times per run, want 0", allocs)
	}
	if hits == 0 {
		t.Fatal("hit path never exercised")
	}
}

// TestGetHashedZeroAllocs covers the raw-key probe pair (Hash +
// GetHashed) the bytes-ingestion path uses.
func TestGetHashedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	c := New(256)
	h := rule.Header{SrcIP: 4, DstIP: 5, SrcPort: 6, DstPort: 443, Proto: rule.ProtoTCP}
	k := c.Hash(h)
	_, gen, _ := c.GetHashed(k, h)
	c.PutHashed(k, gen, h, core.Result{RuleID: 3, Found: true})
	hits := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := c.GetHashed(c.Hash(h), h); ok {
			hits++
		}
	})
	if allocs != 0 {
		t.Errorf("Hash+GetHashed allocated %v times per run, want 0", allocs)
	}
	if hits == 0 {
		t.Fatal("hashed hit path never exercised")
	}
}
