// Package flowcache implements a sharded, lock-free exact-match header
// cache in front of any lookup engine — the software analogue of the
// exact-match flow caches production classifiers (OVS microflow cache,
// DPDK EMC) put before their full multi-dimensional pipeline. Real
// traffic is heavily skewed: a small set of flows carries most packets,
// so remembering the full classification verdict per exact 5-tuple
// converts the common case from a multi-field decomposition search into
// one hash probe.
//
// Concurrency model: the cache is an array of atomic.Pointer slots over
// immutable entries. Readers load one pointer and compare the stored
// header and generation — no locks, no retries. Fills publish a fresh
// entry with one atomic store; whichever store lands last wins, which is
// acceptable for a cache. Consistency with rule updates is by generation
// stamping: every entry carries the cache generation observed *before*
// the underlying engine lookup ran, and Invalidate (called by the engine
// wrapper after each Insert/Delete completes) bumps the generation, so
// every pre-update entry mismatches and reads fall through to the
// engine. A lookup racing an update may still serve the pre-update
// verdict — exactly the guarantee the RCU snapshot store already gives —
// but no Get that begins after an update returns can see a pre-update
// entry.
//
// The slot array is split into shards only for statistics: per-shard
// hit/miss/eviction counters keep the hot path free of a single
// contended cache line, while the slot indexing itself spans the whole
// table.
package flowcache

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rule"
)

// statShards is the number of counter shards; a power of two so the
// shard pick is a mask of the header hash.
const statShards = 16

// MinEntries is the smallest table the constructor will build.
const MinEntries = 64

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Entries is the slot capacity of the table.
	Entries int
	// Hits and Misses count Get outcomes; HitRate is their ratio.
	Hits, Misses uint64
	// Evictions counts fills that displaced a live (same-generation,
	// different-header) entry.
	Evictions uint64
	// Invalidations counts generation bumps (one per completed rule
	// update on the wrapped engine).
	Invalidations uint64
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// entry is one immutable cached verdict. gen is the cache generation
// loaded before the verdict was computed; a mismatch with the current
// generation marks the entry stale.
type entry struct {
	hdr rule.Header
	res core.Result
	gen uint64
}

// statShard keeps one shard of the counters, padded to a cache line so
// shards do not false-share.
type statShard struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	_         [5]uint64
}

// Cache is the sharded lock-free flow cache.
type Cache struct {
	gen   atomic.Uint64
	inval atomic.Uint64
	slots []atomic.Pointer[entry]
	mask  uint64
	stats [statShards]statShard
}

// New returns a cache with at least the requested number of entry slots
// (rounded up to a power of two, minimum MinEntries).
func New(entries int) *Cache {
	n := MinEntries
	for n < entries {
		n <<= 1
	}
	return &Cache{
		slots: make([]atomic.Pointer[entry], n),
		mask:  uint64(n - 1),
	}
}

// Entries returns the slot capacity.
func (c *Cache) Entries() int { return len(c.slots) }

// hash mixes the 5-tuple into a slot index (splitmix64 finalizer over
// the packed fields).
//
//repro:noalloc
func hash(h rule.Header) uint64 {
	x := uint64(h.SrcIP)<<32 | uint64(h.DstIP)
	x ^= (uint64(h.SrcPort)<<24 | uint64(h.DstPort)<<8 | uint64(h.Proto)) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash exposes the slot hash of a header — the raw-key probe for
// callers on the bytes-ingestion path, which compute the hash once off
// the freshly decoded 5-tuple and thread it through GetHashed and
// PutHashed instead of hashing the header struct twice per miss.
//
//repro:noalloc
func (c *Cache) Hash(h rule.Header) uint64 { return hash(h) }

// Get probes the cache. It returns the cached verdict on a hit, plus the
// generation observed at probe time: a caller that misses must thread
// that generation through to Put so the fill is stamped with a
// generation no newer than the engine state it read (see the package
// comment's staleness argument).
//
//repro:noalloc
func (c *Cache) Get(h rule.Header) (res core.Result, gen uint64, ok bool) {
	return c.GetHashed(hash(h), h)
}

// GetHashed is Get with the caller-computed hash k (which must equal
// Hash(h)).
//
//repro:noalloc
func (c *Cache) GetHashed(k uint64, h rule.Header) (res core.Result, gen uint64, ok bool) {
	gen = c.gen.Load()
	st := &c.stats[k&(statShards-1)]
	if e := c.slots[k&c.mask].Load(); e != nil && e.gen == gen && e.hdr == h {
		st.hits.Add(1)
		return e.res, gen, true
	}
	st.misses.Add(1)
	return core.Result{}, gen, false
}

// Put publishes a verdict computed against the engine state current at
// generation gen. A fill stamped with a stale generation is published
// anyway but can never be served, so a racing rule update silently turns
// the fill into a no-op.
func (c *Cache) Put(gen uint64, h rule.Header, res core.Result) {
	c.PutHashed(hash(h), gen, h, res)
}

// PutHashed is Put with the caller-computed hash k (which must equal
// Hash(h)).
func (c *Cache) PutHashed(k uint64, gen uint64, h rule.Header, res core.Result) {
	slot := &c.slots[k&c.mask]
	if old := slot.Load(); old != nil && old.hdr != h && old.gen == c.gen.Load() {
		c.stats[k&(statShards-1)].evictions.Add(1)
	}
	slot.Store(&entry{hdr: h, res: res, gen: gen})
}

// Invalidate marks every cached entry stale. The engine wrapper calls it
// after a rule update has fully completed, so the generation a reader
// observes is always no newer than the engine state it will read.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	c.inval.Add(1)
}

// Stats aggregates the per-shard counters.
func (c *Cache) Stats() Stats {
	s := Stats{Entries: len(c.slots), Invalidations: c.inval.Load()}
	for i := range c.stats {
		st := &c.stats[i]
		s.Hits += st.hits.Load()
		s.Misses += st.misses.Load()
		s.Evictions += st.evictions.Load()
	}
	return s
}
