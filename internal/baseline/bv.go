package baseline

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rule"
)

// bvField precomputes, for one dimension, the rule bitset matched by every
// elementary interval of the dimension's projections (the Lucent bit
// vector scheme's per-field structure). Lookup is a binary search to the
// elementary interval, returning its N-bit vector.
type bvField struct {
	bounds []uint32
	vecs   []bitset
}

// buildBVField constructs the field structure from per-rule intervals.
func buildBVField(n int, ivs [][2]uint32, max uint32) *bvField {
	pts := map[uint32]struct{}{0: {}}
	for _, iv := range ivs {
		pts[iv[0]] = struct{}{}
		if iv[1] < max {
			pts[iv[1]+1] = struct{}{}
		}
	}
	f := &bvField{}
	for p := range pts {
		f.bounds = append(f.bounds, p)
	}
	sort.Slice(f.bounds, func(i, j int) bool { return f.bounds[i] < f.bounds[j] })
	// Sweep the elementary intervals once, maintaining the current rule
	// set: O(N log N + intervals * N/w) instead of intervals * N.
	boundIdx := func(p uint32) int {
		lo, hi := 0, len(f.bounds)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if f.bounds[mid] <= p {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	starts := make([][]int, len(f.bounds)+1)
	ends := make([][]int, len(f.bounds)+1)
	for ri, iv := range ivs {
		s := boundIdx(iv[0])
		starts[s] = append(starts[s], ri)
		if iv[1] < max {
			ends[boundIdx(iv[1]+1)] = append(ends[boundIdx(iv[1]+1)], ri)
		}
	}
	f.vecs = make([]bitset, len(f.bounds))
	cur := newBitset(n)
	for i := range f.bounds {
		for _, ri := range starts[i] {
			cur.set(ri)
		}
		for _, ri := range ends[i] {
			cur[ri/64] &^= 1 << (ri % 64)
		}
		f.vecs[i] = cur.clone()
	}
	return f
}

// lookup returns the bit vector of the elementary interval containing p.
func (f *bvField) lookup(p uint32) bitset {
	lo, hi := 0, len(f.bounds)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.bounds[mid] <= p {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return f.vecs[lo]
}

func (f *bvField) memBytes() int {
	words := 0
	for _, v := range f.vecs {
		words += len(v)
	}
	return len(f.bounds)*4 + words*8
}

// ruleIntervals projects all rules onto dimension d.
func ruleIntervals(rules []rule.Rule, d int) ([][2]uint32, uint32) {
	ivs := make([][2]uint32, len(rules))
	var max uint32
	for i := range rules {
		b := ruleBox(&rules[i])
		ivs[i] = [2]uint32{b.lo[d], b.hi[d]}
	}
	switch d {
	case 0, 1:
		max = 0xffffffff
	case 2, 3:
		max = 0xffff
	default:
		max = 0xff
	}
	return ivs, max
}

// BitmapIntersection is the Lucent bit vector scheme (Lakshman &
// Stiliadis): one bit vector per field lookup, AND the five vectors, take
// the first set bit (rules are stored in priority order). Lookup touches
// O(d*N/w) memory words; storage is O(d*N^2/w) — the quadratic row of
// Table I — and updates rebuild the vectors.
type BitmapIntersection struct {
	built  bool
	rules  []rule.Rule
	fields [5]*bvField
	// scratch pools the per-lookup intersection buffers so concurrent
	// matches share no state without allocating two bitsets per packet.
	scratch *sync.Pool
}

type bvScratch struct {
	tmp, tmp2 bitset
}

// NewBitmapIntersection returns an empty BV classifier.
func NewBitmapIntersection() *BitmapIntersection { return &BitmapIntersection{} }

// Name implements Classifier.
func (c *BitmapIntersection) Name() string { return "Bitmap-Intersection" }

// IncrementalUpdate implements Classifier.
func (c *BitmapIntersection) IncrementalUpdate() bool { return false }

// Insert implements Classifier.
func (c *BitmapIntersection) Insert(rule.Rule) error { return ErrNoIncremental }

// Delete implements Classifier.
func (c *BitmapIntersection) Delete(int) error { return ErrNoIncremental }

// Build implements Classifier.
func (c *BitmapIntersection) Build(s *rule.Set) error {
	c.rules = append([]rule.Rule(nil), s.Rules()...)
	n := len(c.rules)
	for d := 0; d < 5; d++ {
		ivs, max := ruleIntervals(c.rules, d)
		c.fields[d] = buildBVField(n, ivs, max)
	}
	c.scratch = &sync.Pool{New: func() any {
		return &bvScratch{tmp: newBitset(n), tmp2: newBitset(n)}
	}}
	c.built = true
	return nil
}

// Match implements Classifier. The intersection scratch comes from a
// pool, so concurrent matches on one built instance never share state
// and the hot path stays allocation-free.
func (c *BitmapIntersection) Match(h rule.Header) (rule.Rule, bool) {
	if !c.built || len(c.rules) == 0 {
		return rule.Rule{}, false
	}
	p := headerPoint(h)
	s := c.scratch.Get().(*bvScratch)
	s.tmp.and(c.fields[0].lookup(p[0]), c.fields[1].lookup(p[1]))
	s.tmp2.and(s.tmp, c.fields[2].lookup(p[2]))
	s.tmp.and(s.tmp2, c.fields[3].lookup(p[3]))
	s.tmp2.and(s.tmp, c.fields[4].lookup(p[4]))
	ri := s.tmp2.firstSet()
	c.scratch.Put(s)
	if ri < 0 {
		return rule.Rule{}, false
	}
	return c.rules[ri], true
}

// MemoryBytes implements Classifier.
func (c *BitmapIntersection) MemoryBytes() int {
	if !c.built {
		return 0
	}
	total := 0
	for _, f := range c.fields {
		total += f.memBytes()
	}
	return total
}

// ABV is Aggregated Bit Vectors (Baboescu & Varghese): the Lucent scheme
// plus one aggregate bit per A-bit block of each vector, so the AND loop
// skips blocks whose aggregates are zero — trading a small storage
// overhead for far fewer word reads on sparse vectors.
type ABV struct {
	inner BitmapIntersection
	// agg[d][i] aggregates vector words of field d, elementary interval
	// i: bit j set iff word j is non-zero.
	agg [5][]bitset
	// stats: words actually read during Match, for the aggregation
	// effectiveness report. Atomic so concurrent matches stay race-free.
	wordsRead atomic.Int64
	matches   atomic.Int64
}

// abvBlockBits is the aggregation granularity: one aggregate bit per
// 64-bit vector word.
const abvBlockBits = 64

// NewABV returns an empty ABV classifier.
func NewABV() *ABV { return &ABV{} }

// Name implements Classifier.
func (c *ABV) Name() string { return "ABV" }

// IncrementalUpdate implements Classifier.
func (c *ABV) IncrementalUpdate() bool { return false }

// Insert implements Classifier.
func (c *ABV) Insert(rule.Rule) error { return ErrNoIncremental }

// Delete implements Classifier.
func (c *ABV) Delete(int) error { return ErrNoIncremental }

// Build implements Classifier.
func (c *ABV) Build(s *rule.Set) error {
	if err := c.inner.Build(s); err != nil {
		return err
	}
	for d := 0; d < 5; d++ {
		f := c.inner.fields[d]
		c.agg[d] = make([]bitset, len(f.vecs))
		for i, v := range f.vecs {
			a := newBitset(len(v))
			for w := range v {
				if v[w] != 0 {
					a.set(w)
				}
			}
			c.agg[d][i] = a
		}
	}
	c.wordsRead.Store(0)
	c.matches.Store(0)
	return nil
}

// Match implements Classifier: AND the aggregates first, then AND full
// vector words only where the combined aggregate is set.
func (c *ABV) Match(h rule.Header) (rule.Rule, bool) {
	if !c.inner.built || len(c.inner.rules) == 0 {
		return rule.Rule{}, false
	}
	p := headerPoint(h)
	var idx [5]int
	var vecs [5]bitset
	var aggs [5]bitset
	for d := 0; d < 5; d++ {
		f := c.inner.fields[d]
		lo, hi := 0, len(f.bounds)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if f.bounds[mid] <= p[d] {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		idx[d] = lo
		vecs[d] = f.vecs[lo]
		aggs[d] = c.agg[d][lo]
	}
	c.matches.Add(1)
	// Combined aggregate. wordsRead accumulates locally and is flushed
	// at each return to keep the hot path allocation-free.
	nWords := len(vecs[0])
	wordsRead := int64(0)
	for w := 0; w < (nWords+63)/64; w++ {
		a := aggs[0][w] & aggs[1][w] & aggs[2][w] & aggs[3][w] & aggs[4][w]
		for a != 0 {
			bit := bits.TrailingZeros64(a)
			a &^= 1 << bit
			word := w*64 + bit
			wordsRead++
			v := vecs[0][word] & vecs[1][word] & vecs[2][word] & vecs[3][word] & vecs[4][word]
			if v != 0 {
				ri := word*64 + bits.TrailingZeros64(v)
				c.wordsRead.Add(wordsRead)
				return c.inner.rules[ri], true
			}
		}
	}
	c.wordsRead.Add(wordsRead)
	return rule.Rule{}, false
}

// MemoryBytes implements Classifier: the BV storage plus aggregates.
func (c *ABV) MemoryBytes() int {
	total := c.inner.MemoryBytes()
	for d := 0; d < 5; d++ {
		for _, a := range c.agg[d] {
			total += len(a) * 8
		}
	}
	return total
}

// AvgWordsRead reports mean full-vector words read per match — the
// quantity aggregation reduces versus plain BV's N/w words.
func (c *ABV) AvgWordsRead() float64 {
	m := c.matches.Load()
	if m == 0 {
		return 0
	}
	return float64(c.wordsRead.Load()) / float64(m)
}
