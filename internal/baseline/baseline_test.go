package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/rule"
	"repro/internal/ruleset"
)

// testWorkload builds a ruleset and a correlated trace.
func testWorkload(t *testing.T, fam ruleset.Family, size int) (*rule.Set, []rule.Header) {
	t.Helper()
	s, err := ruleset.Generate(ruleset.Config{Family: fam, Size: size, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 1200, HitRatio: 0.75, Seed: 8})
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	return s, trace
}

func TestAllBaselinesMatchOracle(t *testing.T) {
	for _, cls := range All() {
		cls := cls
		t.Run(cls.Name(), func(t *testing.T) {
			for _, fam := range ruleset.Families() {
				s, trace := testWorkload(t, fam, 300)
				if err := cls.Build(s); err != nil {
					t.Fatalf("%v Build(%v): %v", cls.Name(), fam, err)
				}
				for i, h := range trace {
					got, ok := cls.Match(h)
					want, wantOK := s.Match(h)
					if ok != wantOK {
						t.Fatalf("%v header %d (%+v): found=%v oracle=%v", fam, i, h, ok, wantOK)
					}
					if ok && got.ID != want.ID {
						t.Fatalf("%v header %d (%+v): rule %d, oracle %d", fam, i, h, got.ID, want.ID)
					}
				}
				if cls.MemoryBytes() <= 0 {
					t.Errorf("%v: MemoryBytes = %d", fam, cls.MemoryBytes())
				}
			}
		})
	}
}

func TestIncrementalClassifiersInsertDelete(t *testing.T) {
	for _, cls := range All() {
		cls := cls
		if !cls.IncrementalUpdate() {
			continue
		}
		t.Run(cls.Name(), func(t *testing.T) {
			s, trace := testWorkload(t, ruleset.FW, 250)

			// Build incrementally via Insert only.
			if err := cls.Build(&rule.Set{}); err != nil {
				// Some classifiers may reject an empty set; fall back to
				// a build with the first rule only.
				t.Logf("empty build: %v", err)
			}
			for _, r := range s.Rules() {
				if err := cls.Insert(r); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			for _, h := range trace {
				got, ok := cls.Match(h)
				want, wantOK := s.Match(h)
				if ok != wantOK || (ok && got.ID != want.ID) {
					t.Fatalf("after inserts: (%d,%v) oracle (%d,%v) header %+v", got.ID, ok, want.ID, wantOK, h)
				}
			}

			// Delete every second rule; verify against the reduced set.
			var kept []rule.Rule
			for i, r := range s.Rules() {
				if i%2 == 0 {
					if err := cls.Delete(r.ID); err != nil {
						t.Fatalf("Delete(%d): %v", r.ID, err)
					}
				} else {
					kept = append(kept, r)
				}
			}
			s2, err := rule.NewSet(kept)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range trace {
				got, ok := cls.Match(h)
				want, wantOK := s2.Match(h)
				if ok != wantOK || (ok && got.ID != want.ID) {
					t.Fatalf("after deletes: (%d,%v) oracle (%d,%v) header %+v", got.ID, ok, want.ID, wantOK, h)
				}
			}
			// Error paths.
			if err := cls.Delete(-123); !errors.Is(err, ErrUnknownRule) {
				t.Errorf("Delete(unknown) = %v, want ErrUnknownRule", err)
			}
		})
	}
}

func TestNonIncrementalRejectUpdates(t *testing.T) {
	for _, cls := range All() {
		if cls.IncrementalUpdate() {
			continue
		}
		if err := cls.Insert(rule.Rule{}); !errors.Is(err, ErrNoIncremental) {
			t.Errorf("%s Insert = %v, want ErrNoIncremental", cls.Name(), err)
		}
		if err := cls.Delete(1); !errors.Is(err, ErrNoIncremental) {
			t.Errorf("%s Delete = %v, want ErrNoIncremental", cls.Name(), err)
		}
	}
}

func TestRangeToPrefixes(t *testing.T) {
	tests := []struct {
		r    rule.PortRange
		want int // expected cover size
	}{
		{rule.FullPortRange(), 1},
		{rule.ExactPort(80), 1},
		{rule.PortRange{Lo: 0, Hi: 1023}, 1},     // aligned block
		{rule.PortRange{Lo: 1024, Hi: 65535}, 6}, // 1024..2047,2048..4095,...32768..65535
		{rule.PortRange{Lo: 1, Hi: 65534}, 30},   // worst case 2W-2
	}
	for _, tc := range tests {
		got := rangeToPrefixes(tc.r)
		if len(got) != tc.want {
			t.Errorf("rangeToPrefixes(%v) = %d entries, want %d", tc.r, len(got), tc.want)
		}
		// The cover must be exact: every port in range matches exactly
		// one entry; ports outside match none.
		for p := 0; p <= 0xffff; p++ {
			cnt := 0
			for _, e := range got {
				if uint16(p)&e.mask == e.value {
					cnt++
				}
			}
			want := 0
			if tc.r.Matches(uint16(p)) {
				want = 1
			}
			if cnt != want {
				t.Fatalf("range %v port %d covered %d times, want %d", tc.r, p, cnt, want)
			}
		}
	}
}

func TestTCAMExpansionMeasured(t *testing.T) {
	// FW rulesets are range-heavy: expansion factor must exceed ACL's.
	aclSet, _ := testWorkload(t, ruleset.ACL, 400)
	fwSet, _ := testWorkload(t, ruleset.FW, 400)
	acl, fw := NewTCAM(), NewTCAM()
	if err := acl.Build(aclSet); err != nil {
		t.Fatal(err)
	}
	if err := fw.Build(fwSet); err != nil {
		t.Fatal(err)
	}
	if acl.Entries() < aclSet.Len() {
		t.Errorf("ACL entries %d < rules %d", acl.Entries(), aclSet.Len())
	}
	if fw.ExpansionFactor() <= acl.ExpansionFactor() {
		t.Errorf("FW expansion %.2f should exceed ACL expansion %.2f",
			fw.ExpansionFactor(), acl.ExpansionFactor())
	}
}

func TestRFCConstantLookupStructure(t *testing.T) {
	s, trace := testWorkload(t, ruleset.ACL, 300)
	c := NewRFC()
	if err := c.Build(s); err != nil {
		t.Fatal(err)
	}
	// RFC memory should dwarf linear memory (precomputation trade-off).
	lin := NewLinear()
	if err := lin.Build(s); err != nil {
		t.Fatal(err)
	}
	if c.MemoryBytes() < 10*lin.MemoryBytes() {
		t.Errorf("RFC memory %d not >> linear %d", c.MemoryBytes(), lin.MemoryBytes())
	}
	_ = trace
}

func TestHiCutsTreeShape(t *testing.T) {
	s, _ := testWorkload(t, ruleset.ACL, 500)
	c := NewHiCuts(DefaultHiCutsConfig())
	if err := c.Build(s); err != nil {
		t.Fatal(err)
	}
	nodes, leaves, refs := c.TreeStats()
	if nodes == 0 || leaves == 0 {
		t.Fatalf("tree not built: nodes=%d leaves=%d", nodes, leaves)
	}
	if refs < s.Len() {
		t.Errorf("rule refs %d < rules %d (every rule must reach a leaf)", refs, s.Len())
	}
}

func TestHyperCutsShallowerThanHiCuts(t *testing.T) {
	s, _ := testWorkload(t, ruleset.IPC, 500)
	hi := NewHiCuts(DefaultHiCutsConfig())
	hy := NewHyperCuts(DefaultHyperCutsConfig())
	if err := hi.Build(s); err != nil {
		t.Fatal(err)
	}
	if err := hy.Build(s); err != nil {
		t.Fatal(err)
	}
	hiN, _, _ := hi.TreeStats()
	hyN, _, _ := hy.TreeStats()
	if hyN == 0 || hiN == 0 {
		t.Fatal("trees not built")
	}
	// Multi-dimensional cuts should not need more nodes than
	// single-dimensional cuts on mixed rulesets. Allow slack: this is a
	// heuristic property, not a theorem.
	if float64(hyN) > 1.5*float64(hiN) {
		t.Errorf("HyperCuts nodes %d much larger than HiCuts %d", hyN, hiN)
	}
}

func TestCrossProductCacheGrowsWithTraffic(t *testing.T) {
	s, trace := testWorkload(t, ruleset.ACL, 200)
	c := NewCrossProduct()
	if err := c.Build(s); err != nil {
		t.Fatal(err)
	}
	if c.CachedEntries() != 0 {
		t.Errorf("cache should start empty, has %d", c.CachedEntries())
	}
	for _, h := range trace {
		c.Match(h)
	}
	if c.CachedEntries() == 0 {
		t.Error("cache empty after traffic")
	}
	// Memoized entries must be stable: rerunning the trace gives the same
	// results without growing the cache.
	size := c.CachedEntries()
	for _, h := range trace {
		got, ok := c.Match(h)
		want, wantOK := s.Match(h)
		if ok != wantOK || (ok && got.ID != want.ID) {
			t.Fatalf("memoized mismatch for %+v", h)
		}
	}
	if c.CachedEntries() != size {
		t.Errorf("cache grew on repeat traffic: %d -> %d", size, c.CachedEntries())
	}
}

func TestABVReadsFewerWordsThanBV(t *testing.T) {
	s, trace := testWorkload(t, ruleset.FW, 800)
	abv := NewABV()
	if err := abv.Build(s); err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		abv.Match(h)
	}
	// Plain BV reads N/64 words per field intersection; the aggregate
	// should cut the full-width reads substantially.
	fullWords := float64((s.Len() + 63) / 64)
	if avg := abv.AvgWordsRead(); avg >= fullWords/2 {
		t.Errorf("ABV avg words read %.1f not well below full %.1f", avg, fullWords)
	}
}

func TestTSSTupleCountSmall(t *testing.T) {
	s, _ := testWorkload(t, ruleset.ACL, 500)
	c := NewTSS()
	if err := c.Build(s); err != nil {
		t.Fatal(err)
	}
	if c.TupleCount() == 0 {
		t.Fatal("no tuples")
	}
	if c.TupleCount() > 150 {
		t.Errorf("tuple count %d unexpectedly large", c.TupleCount())
	}
}

func TestTSSRetupleOnNestingChange(t *testing.T) {
	c := NewTSS()
	mk := func(id int, sp rule.PortRange) rule.Rule {
		return rule.Rule{
			ID: id, Priority: id,
			SrcPort: sp, DstPort: rule.FullPortRange(),
			Proto: rule.ExactProto(rule.ProtoTCP),
		}
	}
	// Insert an inner range first, then an outer one that changes the
	// inner's nesting level... level is containment count, inner gains a
	// container.
	if err := c.Insert(mk(1, rule.PortRange{Lo: 100, Hi: 200})); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(mk(2, rule.PortRange{Lo: 50, Hi: 400})); err != nil {
		t.Fatal(err)
	}
	h := rule.Header{SrcPort: 150, Proto: rule.ProtoTCP}
	got, ok := c.Match(h)
	if !ok || got.ID != 1 {
		t.Fatalf("Match = (%d,%v), want rule 1", got.ID, ok)
	}
	h2 := rule.Header{SrcPort: 300, Proto: rule.ProtoTCP}
	got, ok = c.Match(h2)
	if !ok || got.ID != 2 {
		t.Fatalf("Match = (%d,%v), want rule 2", got.ID, ok)
	}
	// Delete the outer; inner must still match.
	if err := c.Delete(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Match(h2); ok {
		t.Error("deleted rule still matches")
	}
	if got, ok := c.Match(h); !ok || got.ID != 1 {
		t.Error("rule 1 lost after retuple")
	}
}

func TestRandomizedDifferential(t *testing.T) {
	// Adversarial random rules (not family-structured) across every
	// baseline, uniform random headers.
	rnd := rand.New(rand.NewSource(99))
	var rules []rule.Rule
	for i := 0; i < 150; i++ {
		rules = append(rules, randomRuleBL(rnd))
	}
	s, err := rule.NewSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	clss := All()
	for _, cls := range clss {
		if err := cls.Build(s); err != nil {
			t.Fatalf("%s: %v", cls.Name(), err)
		}
	}
	for i := 0; i < 3000; i++ {
		h := rule.Header{
			SrcIP: rnd.Uint32(), DstIP: rnd.Uint32(),
			SrcPort: uint16(rnd.Intn(1 << 16)), DstPort: uint16(rnd.Intn(1 << 16)),
			Proto: uint8(rnd.Intn(4)),
		}
		want, wantOK := s.Match(h)
		for _, cls := range clss {
			got, ok := cls.Match(h)
			if ok != wantOK || (ok && got.ID != want.ID) {
				t.Fatalf("%s: (%d,%v) oracle (%d,%v) header %+v", cls.Name(), got.ID, ok, want.ID, wantOK, h)
			}
		}
	}
}

func randomRuleBL(rnd *rand.Rand) rule.Rule {
	pfx := func() rule.Prefix {
		lens := []uint8{0, 4, 9, 13, 17, 22, 26, 30, 32}
		return rule.Prefix{Addr: rnd.Uint32(), Len: lens[rnd.Intn(len(lens))]}.Canonical()
	}
	rng := func() rule.PortRange {
		switch rnd.Intn(3) {
		case 0:
			return rule.FullPortRange()
		case 1:
			return rule.ExactPort(uint16(rnd.Intn(1 << 16)))
		default:
			lo := uint16(rnd.Intn(1 << 15))
			return rule.PortRange{Lo: lo, Hi: lo + uint16(rnd.Intn(1<<12))}
		}
	}
	pm := rule.AnyProto()
	if rnd.Intn(3) > 0 {
		pm = rule.ExactProto(uint8(rnd.Intn(4)))
	}
	return rule.Rule{SrcIP: pfx(), DstIP: pfx(), SrcPort: rng(), DstPort: rng(), Proto: pm}
}
