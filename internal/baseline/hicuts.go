package baseline

import (
	"repro/internal/rule"
)

// region is a 5-dimensional box of header space used by the cut-based
// classifiers (HiCuts/HyperCuts). Dimensions follow the field order
// src IP, dst IP, src port, dst port, proto.
type region struct {
	lo [5]uint32
	hi [5]uint32
}

func fullRegion() region {
	var r region
	r.hi = [5]uint32{0xffffffff, 0xffffffff, 0xffff, 0xffff, 0xff}
	return r
}

// ruleBox converts a rule into its box.
func ruleBox(r *rule.Rule) region {
	var b region
	b.lo[0], b.hi[0] = r.SrcIP.Addr, r.SrcIP.Addr|^r.SrcIP.Mask()
	b.lo[1], b.hi[1] = r.DstIP.Addr, r.DstIP.Addr|^r.DstIP.Mask()
	b.lo[2], b.hi[2] = uint32(r.SrcPort.Lo), uint32(r.SrcPort.Hi)
	b.lo[3], b.hi[3] = uint32(r.DstPort.Lo), uint32(r.DstPort.Hi)
	if r.Proto.IsWildcard() {
		b.lo[4], b.hi[4] = 0, 255
	} else {
		b.lo[4], b.hi[4] = uint32(r.Proto.Value), uint32(r.Proto.Value)
	}
	return b
}

func (a region) overlaps(b region) bool {
	for d := 0; d < 5; d++ {
		if a.lo[d] > b.hi[d] || b.lo[d] > a.hi[d] {
			return false
		}
	}
	return true
}

func headerPoint(h rule.Header) [5]uint32 {
	return [5]uint32{h.SrcIP, h.DstIP, uint32(h.SrcPort), uint32(h.DstPort), uint32(h.Proto)}
}

// HiCutsConfig tunes the HiCuts heuristics.
type HiCutsConfig struct {
	// Binth is the leaf threshold: nodes with at most Binth rules stop
	// cutting.
	Binth int
	// Spfac is the space factor limiting cuts per node: the children's
	// total rule replication may not exceed Spfac * rules(node).
	Spfac float64
	// MaxDepth bounds the tree (safety for pathological overlap).
	MaxDepth int
}

// DefaultHiCutsConfig matches the commonly used binth=8, spfac=4.
func DefaultHiCutsConfig() HiCutsConfig {
	return HiCutsConfig{Binth: 8, Spfac: 4, MaxDepth: 32}
}

// HiCuts implements Hierarchical Intelligent Cuttings (Gupta & McKeown,
// HotI'99): a decision tree where each node cuts one dimension into
// equal-sized intervals, chosen to spread the rules; leaves hold small
// rule lists searched linearly. Lookup is a tree walk (O(d*W) worst
// case); preprocessing replicates rules into multiple leaves and the tree
// cannot absorb incremental updates.
type HiCuts struct {
	cfg    HiCutsConfig
	root   *hcNode
	built  bool
	nodes  int
	leaves int
	refs   int // total rule references across leaves (replication)
}

type hcNode struct {
	// Leaf: rules sorted by priority. Internal: cut dimension, number of
	// cuts and children, plus the "pushed" rules that span the node's
	// whole cut range and would otherwise replicate into every child.
	leaf     bool
	rules    []rule.Rule
	dim      int
	ncuts    uint32
	lo, size uint32 // cut interval base and per-child width on dim
	children []*hcNode
}

// NewHiCuts returns a HiCuts classifier.
func NewHiCuts(cfg HiCutsConfig) *HiCuts {
	if cfg.Binth <= 0 {
		cfg.Binth = 8
	}
	if cfg.Spfac <= 1 {
		cfg.Spfac = 4
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 32
	}
	return &HiCuts{cfg: cfg}
}

// Name implements Classifier.
func (c *HiCuts) Name() string { return "HiCuts" }

// IncrementalUpdate implements Classifier.
func (c *HiCuts) IncrementalUpdate() bool { return false }

// Insert implements Classifier.
func (c *HiCuts) Insert(rule.Rule) error { return ErrNoIncremental }

// Delete implements Classifier.
func (c *HiCuts) Delete(int) error { return ErrNoIncremental }

// Build implements Classifier.
func (c *HiCuts) Build(s *rule.Set) error {
	c.nodes, c.leaves, c.refs = 0, 0, 0
	rules := append([]rule.Rule(nil), s.Rules()...)
	c.root = c.build(rules, fullRegion(), 0)
	c.built = true
	return nil
}

func (c *HiCuts) build(rules []rule.Rule, reg region, depth int) *hcNode {
	c.nodes++
	if len(rules) <= c.cfg.Binth || depth >= c.cfg.MaxDepth {
		c.leaves++
		c.refs += len(rules)
		return &hcNode{leaf: true, rules: rules}
	}
	dim := c.pickDim(rules, reg)
	// Rules spanning the node's entire range on the cut dimension would
	// replicate into every child; store them at the node instead (the
	// rule-pushing refinement that keeps wildcard-heavy rulesets from
	// exploding the tree).
	var pushed, cuttable []rule.Rule
	for i := range rules {
		b := ruleBox(&rules[i])
		if b.lo[dim] <= reg.lo[dim] && reg.hi[dim] <= b.hi[dim] {
			pushed = append(pushed, rules[i])
		} else {
			cuttable = append(cuttable, rules[i])
		}
	}
	c.refs += len(pushed)
	if len(cuttable) <= c.cfg.Binth {
		c.leaves++
		c.refs += len(cuttable)
		return &hcNode{leaf: true, rules: rules} // small enough: plain bucket
	}
	ncuts := c.pickCuts(cuttable, reg, dim)
	if ncuts < 2 {
		c.refs -= len(pushed)
		c.leaves++
		c.refs += len(rules)
		return &hcNode{leaf: true, rules: rules}
	}
	width := regWidth(reg, dim)
	size := width / ncuts
	if size == 0 {
		size = 1
		ncuts = width
	}
	n := &hcNode{dim: dim, ncuts: ncuts, lo: reg.lo[dim], size: size, rules: pushed}
	subs := make([][]rule.Rule, ncuts)
	regions := make([]region, ncuts)
	progress := false
	for i := uint32(0); i < ncuts; i++ {
		child := reg
		child.lo[dim] = reg.lo[dim] + i*size
		if i == ncuts-1 {
			child.hi[dim] = reg.hi[dim]
		} else {
			child.hi[dim] = reg.lo[dim] + (i+1)*size - 1
		}
		var sub []rule.Rule
		for j := range cuttable {
			if box := ruleBox(&cuttable[j]); box.overlaps(child) {
				sub = append(sub, cuttable[j])
			}
		}
		if len(sub) < len(cuttable) {
			progress = true
		}
		subs[i], regions[i] = sub, child
	}
	if !progress {
		// Defensive: with pushing this should not trigger, but never
		// recurse without shrinking.
		c.refs -= len(pushed)
		c.nodes--
		c.leaves++
		c.refs += len(rules)
		return &hcNode{leaf: true, rules: rules}
	}
	n.children = make([]*hcNode, ncuts)
	for i := range subs {
		n.children[i] = c.build(subs[i], regions[i], depth+1)
	}
	return n
}

// regWidth returns the number of points the region spans on dim (capped
// to avoid uint32 overflow on full IP dimensions).
func regWidth(reg region, dim int) uint32 {
	w := uint64(reg.hi[dim]-reg.lo[dim]) + 1
	if w > 1<<31 {
		return 1 << 31
	}
	return uint32(w)
}

// pickDim chooses the dimension with the most distinct rule projections
// inside the region (the "spread the rules" heuristic).
func (c *HiCuts) pickDim(rules []rule.Rule, reg region) int {
	bestDim, bestDistinct := 0, -1
	for d := 0; d < 5; d++ {
		if regWidth(reg, d) < 2 {
			continue
		}
		distinct := make(map[[2]uint32]struct{}, len(rules))
		for i := range rules {
			b := ruleBox(&rules[i])
			distinct[[2]uint32{b.lo[d], b.hi[d]}] = struct{}{}
		}
		if len(distinct) > bestDistinct {
			bestDistinct = len(distinct)
			bestDim = d
		}
	}
	return bestDim
}

// pickCuts grows the cut count until the space factor stops it.
func (c *HiCuts) pickCuts(rules []rule.Rule, reg region, dim int) uint32 {
	width := regWidth(reg, dim)
	budget := int(c.cfg.Spfac * float64(len(rules)))
	best := uint32(1)
	for ncuts := uint32(2); ncuts <= 64 && ncuts <= width; ncuts *= 2 {
		size := width / ncuts
		if size == 0 {
			break
		}
		// Estimate replication: total rule refs across children.
		total := 0
		for i := uint32(0); i < ncuts; i++ {
			child := reg
			child.lo[dim] = reg.lo[dim] + i*size
			if i == ncuts-1 {
				child.hi[dim] = reg.hi[dim]
			} else {
				child.hi[dim] = reg.lo[dim] + (i+1)*size - 1
			}
			for j := range rules {
				if box := ruleBox(&rules[j]); box.overlaps(child) {
					total++
				}
			}
		}
		if total+int(ncuts) > budget {
			break
		}
		best = ncuts
	}
	return best
}

// Match implements Classifier: walk to the leaf, scanning the pushed
// rules stored at each node on the way, and return the best-priority
// match. Rule lists are kept in priority order, so each scan stops at the
// first hit.
func (c *HiCuts) Match(h rule.Header) (rule.Rule, bool) {
	if !c.built {
		return rule.Rule{}, false
	}
	p := headerPoint(h)
	best := rule.Rule{Priority: int(^uint(0) >> 1)}
	found := false
	scan := func(rules []rule.Rule) {
		for i := range rules {
			if rules[i].Priority >= best.Priority {
				return // priority-ordered: nothing better follows
			}
			if rules[i].Matches(h) {
				best = rules[i]
				found = true
				return
			}
		}
	}
	n := c.root
	for n != nil && !n.leaf {
		scan(n.rules)
		idx := (p[n.dim] - n.lo) / n.size
		if idx >= n.ncuts {
			idx = n.ncuts - 1
		}
		n = n.children[idx]
	}
	if n != nil {
		scan(n.rules)
	}
	if !found {
		return rule.Rule{}, false
	}
	return best, true
}

// MemoryBytes implements Classifier: node headers plus replicated leaf
// rule references.
func (c *HiCuts) MemoryBytes() int { return c.nodes*24 + c.refs*8 }

// TreeStats reports structure counters for the Table I report.
func (c *HiCuts) TreeStats() (nodes, leaves, ruleRefs int) {
	return c.nodes, c.leaves, c.refs
}
