package baseline

import (
	"repro/internal/rule"
)

// TCAM simulates a Ternary Content Addressable Memory classifier. Each
// rule becomes one or more ternary entries: prefix and exact fields map
// directly, while port ranges must be converted to minimal prefix cover
// sets — the range-to-prefix expansion whose "memory blow-up" the paper
// cites as TCAM's weakness. Hardware compares all entries in parallel
// (O(1) lookup); the simulation scans entries in priority order.
type TCAM struct {
	entries []tcamEntry
	// byRule maps rule ID to its expanded entry count for delete and for
	// the expansion-factor report.
	byRule map[int]int
}

// tcamEntry is one ternary line: value/mask per field plus the rule it
// encodes.
type tcamEntry struct {
	srcV, srcM uint32
	dstV, dstM uint32
	spV, spM   uint16
	dpV, dpM   uint16
	prV, prM   uint8
	r          rule.Rule
}

func (e *tcamEntry) matches(h rule.Header) bool {
	return (h.SrcIP^e.srcV)&e.srcM == 0 &&
		(h.DstIP^e.dstV)&e.dstM == 0 &&
		(h.SrcPort^e.spV)&e.spM == 0 &&
		(h.DstPort^e.dpV)&e.dpM == 0 &&
		(h.Proto^e.prV)&e.prM == 0
}

// NewTCAM returns an empty TCAM.
func NewTCAM() *TCAM { return &TCAM{byRule: make(map[int]int)} }

// Name implements Classifier.
func (t *TCAM) Name() string { return "TCAM" }

// Build implements Classifier.
func (t *TCAM) Build(s *rule.Set) error {
	t.entries = t.entries[:0]
	t.byRule = make(map[int]int, s.Len())
	for _, r := range s.Rules() {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Insert expands the rule into ternary entries placed in priority order.
func (t *TCAM) Insert(r rule.Rule) error {
	if _, dup := t.byRule[r.ID]; dup {
		return rule.ErrDuplicateID
	}
	spCovers := rangeToPrefixes(r.SrcPort)
	dpCovers := rangeToPrefixes(r.DstPort)
	added := 0
	for _, sp := range spCovers {
		for _, dp := range dpCovers {
			e := tcamEntry{
				srcV: r.SrcIP.Addr, srcM: r.SrcIP.Mask(),
				dstV: r.DstIP.Addr, dstM: r.DstIP.Mask(),
				spV: sp.value, spM: sp.mask,
				dpV: dp.value, dpM: dp.mask,
				prV: r.Proto.Value, prM: r.Proto.Mask,
				r: r,
			}
			t.insertOrdered(e)
			added++
		}
	}
	t.byRule[r.ID] = added
	return nil
}

func (t *TCAM) insertOrdered(e tcamEntry) {
	i := 0
	for i < len(t.entries) && t.entries[i].r.Priority <= e.r.Priority {
		i++
	}
	t.entries = append(t.entries, tcamEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
}

// Delete removes all entries of a rule.
func (t *TCAM) Delete(id int) error {
	if _, ok := t.byRule[id]; !ok {
		return ErrUnknownRule
	}
	kept := t.entries[:0]
	for _, e := range t.entries {
		if e.r.ID != id {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	delete(t.byRule, id)
	return nil
}

// Match scans in priority order; hardware does this comparison in parallel
// in a single cycle.
func (t *TCAM) Match(h rule.Header) (rule.Rule, bool) {
	for i := range t.entries {
		if t.entries[i].matches(h) {
			return t.entries[i].r, true
		}
	}
	return rule.Rule{}, false
}

// MemoryBytes implements Classifier: each ternary line stores 104 bits of
// value and 104 bits of mask plus a rule pointer (TCAM cells are ~2x SRAM
// area per bit on top of that, which is part of the paper's cost point;
// we report raw bits).
func (t *TCAM) MemoryBytes() int { return len(t.entries) * (26 + 26 + 4) }

// IncrementalUpdate implements Classifier.
func (t *TCAM) IncrementalUpdate() bool { return true }

// Entries returns the ternary line count (the expansion measurement).
func (t *TCAM) Entries() int { return len(t.entries) }

// ExpansionFactor returns entries per rule, the range-expansion blow-up.
func (t *TCAM) ExpansionFactor() float64 {
	if len(t.byRule) == 0 {
		return 0
	}
	return float64(len(t.entries)) / float64(len(t.byRule))
}

// ternaryPort is a value/mask pair covering a power-of-two aligned port
// block.
type ternaryPort struct {
	value, mask uint16
}

// rangeToPrefixes computes the minimal prefix cover of an inclusive
// 16-bit range: the classic splitting that makes TCAM ranges expensive
// (worst case 2W-2 = 30 entries per range).
func rangeToPrefixes(r rule.PortRange) []ternaryPort {
	var out []ternaryPort
	lo, hi := uint32(r.Lo), uint32(r.Hi)
	for lo <= hi {
		// Largest power-of-two block starting at lo that fits in [lo,hi].
		size := uint32(1)
		for {
			next := size * 2
			if lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		out = append(out, ternaryPort{
			value: uint16(lo),
			mask:  uint16(^(size - 1)),
		})
		lo += size
		if lo == 0 {
			break // wrapped past 65535
		}
	}
	return out
}
