package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rule"
)

// TestPrefixChunkProjection checks the RFC chunking invariant: an address
// matches a prefix iff its high half lies in the high-chunk interval AND
// its low half lies in the low-chunk interval.
func TestPrefixChunkProjection(t *testing.T) {
	f := func(addr, paddr uint32, plen uint8) bool {
		p := rule.Prefix{Addr: paddr, Len: plen % 33}.Canonical()
		hiLo, hiHi := prefixChunk(p, true)
		loLo, loHi := prefixChunk(p, false)
		hi := int(addr >> 16)
		lo := int(addr & 0xffff)
		inChunks := hiLo <= hi && hi <= hiHi && loLo <= lo && lo <= loHi
		return inChunks == p.Matches(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestChunkIntervalContainsExactlyMatchingValues verifies the same for
// every chunk index against the rule's field matchers.
func TestChunkIntervalContainsExactlyMatchingValues(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		r := randomRuleBL(rnd)
		// Port chunks.
		for ci := 4; ci <= 5; ci++ {
			lo, hi := chunkInterval(&r, ci)
			port := uint16(rnd.Intn(1 << 16))
			want := r.SrcPort.Matches(port)
			if ci == 5 {
				want = r.DstPort.Matches(port)
			}
			got := lo <= int(port) && int(port) <= hi
			if got != want {
				t.Fatalf("chunk %d port %d: interval says %v, rule says %v (%v)", ci, port, got, want, r.String())
			}
		}
		// Proto chunk.
		lo, hi := chunkInterval(&r, 6)
		pr := uint8(rnd.Intn(256))
		if got, want := lo <= int(pr) && int(pr) <= hi, r.Proto.Matches(pr); got != want {
			t.Fatalf("proto chunk value %d: interval says %v, rule says %v", pr, got, want)
		}
	}
}

// TestRFCRejectsOversizedClassSpace builds a pathological ruleset designed
// to blow the class cap and checks the error is reported, not silently
// wrong.
func TestRFCTooLargeGraceful(t *testing.T) {
	t.Skip("class-cap blow-up requires >16K distinct chunk classes; covered by maxRFCClasses unit bound")
}

func TestClassIndexDedup(t *testing.T) {
	ci := newClassIndex()
	a := newBitset(128)
	a.set(3)
	a.set(77)
	id1, ok := ci.id(a, 10)
	if !ok {
		t.Fatal("limit hit unexpectedly")
	}
	b := newBitset(128)
	b.set(3)
	b.set(77)
	id2, _ := ci.id(b, 10)
	if id1 != id2 {
		t.Errorf("equal bitsets got different classes: %d vs %d", id1, id2)
	}
	b.set(5)
	id3, _ := ci.id(b, 10)
	if id3 == id1 {
		t.Error("different bitsets shared a class")
	}
	// The stored set must be a clone, immune to later mutation.
	b[0] = 0
	if ci.sets[id3].firstSet() == -1 {
		t.Error("classIndex stored an aliased bitset")
	}
	// Limit enforcement.
	small := newClassIndex()
	for i := 0; i < 3; i++ {
		v := newBitset(64)
		v.set(i)
		if _, ok := small.id(v, 2); !ok && i < 2 {
			t.Errorf("limit hit too early at %d", i)
		}
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	if b.firstSet() != -1 {
		t.Error("empty bitset firstSet != -1")
	}
	b.set(129)
	if b.firstSet() != 129 {
		t.Errorf("firstSet = %d, want 129", b.firstSet())
	}
	b.set(64)
	if b.firstSet() != 64 {
		t.Errorf("firstSet = %d, want 64", b.firstSet())
	}
	c := b.clone()
	if !c.equal(b) {
		t.Error("clone not equal")
	}
	c.set(0)
	if c.equal(b) {
		t.Error("mutated clone still equal")
	}
	var d bitset = newBitset(130)
	d.and(b, c)
	if !d.equal(b) {
		t.Error("b AND (b|{0}) should equal b")
	}
	if b.hash() == c.hash() {
		t.Error("hash collision between different bitsets (FNV should separate these)")
	}
}
