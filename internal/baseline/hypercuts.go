package baseline

import (
	"sort"

	"repro/internal/rule"
)

// HyperCutsConfig tunes the HyperCuts heuristics.
type HyperCutsConfig struct {
	// Binth is the leaf threshold.
	Binth int
	// Spfac is the space factor limiting total cuts per node.
	Spfac float64
	// MaxDepth bounds the tree.
	MaxDepth int
}

// DefaultHyperCutsConfig uses binth=8 with a tighter space factor than
// HiCuts: multi-dimensional cuts replicate more aggressively, and spfac=2
// with at most 16 children per node keeps total replication near-linear
// on wildcard-heavy rulesets.
func DefaultHyperCutsConfig() HyperCutsConfig {
	return HyperCutsConfig{Binth: 8, Spfac: 2, MaxDepth: 32}
}

// HyperCuts (Singh, Baboescu, Varghese, Wang — SIGCOMM'03) generalizes
// HiCuts by cutting up to two dimensions simultaneously at each node,
// which flattens the tree for rulesets whose structure spans several
// fields. Like HiCuts it replicates rules into leaves and does not
// support incremental update.
type HyperCuts struct {
	cfg    HyperCutsConfig
	root   *hyNode
	built  bool
	nodes  int
	leaves int
	refs   int
}

type hyNode struct {
	leaf  bool
	rules []rule.Rule
	// Up to two cut dimensions; dims[1] < 0 means a single-dimension cut.
	dims     [2]int
	ncuts    [2]uint32
	lo       [2]uint32
	size     [2]uint32
	children []*hyNode
}

// NewHyperCuts returns a HyperCuts classifier.
func NewHyperCuts(cfg HyperCutsConfig) *HyperCuts {
	if cfg.Binth <= 0 {
		cfg.Binth = 8
	}
	if cfg.Spfac <= 1 {
		cfg.Spfac = 4
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 32
	}
	return &HyperCuts{cfg: cfg}
}

// Name implements Classifier.
func (c *HyperCuts) Name() string { return "HyperCuts" }

// IncrementalUpdate implements Classifier.
func (c *HyperCuts) IncrementalUpdate() bool { return false }

// Insert implements Classifier.
func (c *HyperCuts) Insert(rule.Rule) error { return ErrNoIncremental }

// Delete implements Classifier.
func (c *HyperCuts) Delete(int) error { return ErrNoIncremental }

// Build implements Classifier.
func (c *HyperCuts) Build(s *rule.Set) error {
	c.nodes, c.leaves, c.refs = 0, 0, 0
	rules := append([]rule.Rule(nil), s.Rules()...)
	c.root = c.build(rules, fullRegion(), 0)
	c.built = true
	return nil
}

func (c *HyperCuts) build(rules []rule.Rule, reg region, depth int) *hyNode {
	c.nodes++
	if len(rules) <= c.cfg.Binth || depth >= c.cfg.MaxDepth {
		c.leaves++
		c.refs += len(rules)
		return &hyNode{leaf: true, rules: rules}
	}
	dims := c.pickDims(rules, reg)
	// Rule pushing (as in HiCuts): rules spanning the node's full range
	// on every cut dimension stay at the node instead of replicating.
	var pushed, cuttable []rule.Rule
	for i := range rules {
		b := ruleBox(&rules[i])
		spansAll := true
		for di := 0; di < 2; di++ {
			d := dims[di]
			if d < 0 {
				continue
			}
			if b.lo[d] > reg.lo[d] || reg.hi[d] > b.hi[d] {
				spansAll = false
				break
			}
		}
		if spansAll {
			pushed = append(pushed, rules[i])
		} else {
			cuttable = append(cuttable, rules[i])
		}
	}
	if len(cuttable) <= c.cfg.Binth {
		c.leaves++
		c.refs += len(rules)
		return &hyNode{leaf: true, rules: rules}
	}
	orig := rules
	c.refs += len(pushed)
	rules = cuttable
	n := &hyNode{dims: dims, rules: pushed}
	budget := int(c.cfg.Spfac * float64(len(rules)))

	// Grow cuts across the chosen dimensions round-robin while the
	// replication estimate stays within budget.
	ncuts := [2]uint32{1, 1}
	for grew := true; grew; {
		grew = false
		for di := 0; di < 2; di++ {
			if dims[di] < 0 {
				continue
			}
			trial := ncuts
			trial[di] *= 2
			if trial[di] > regWidth(reg, dims[di]) || trial[0]*trial[1] > 16 {
				continue
			}
			if c.replication(rules, reg, dims, trial)+int(trial[0]*trial[1]) <= budget {
				ncuts = trial
				grew = true
			}
		}
	}
	if ncuts[0]*ncuts[1] < 2 {
		c.refs -= len(pushed)
		c.leaves++
		c.refs += len(orig)
		return &hyNode{leaf: true, rules: orig}
	}
	n.ncuts = ncuts
	for di := 0; di < 2; di++ {
		if dims[di] < 0 {
			n.lo[di], n.size[di] = 0, 1
			continue
		}
		n.lo[di] = reg.lo[dims[di]]
		n.size[di] = regWidth(reg, dims[di]) / ncuts[di]
		if n.size[di] == 0 {
			n.size[di] = 1
		}
	}
	total := ncuts[0] * ncuts[1]
	subs := make([][]rule.Rule, total)
	regions := make([]region, total)
	progress := false
	for i := uint32(0); i < ncuts[0]; i++ {
		for j := uint32(0); j < ncuts[1]; j++ {
			child := subRegion(reg, dims, ncuts, n.size, i, j)
			var sub []rule.Rule
			for k := range rules {
				if box := ruleBox(&rules[k]); box.overlaps(child) {
					sub = append(sub, rules[k])
				}
			}
			if len(sub) < len(rules) {
				progress = true
			}
			subs[i*ncuts[1]+j], regions[i*ncuts[1]+j] = sub, child
		}
	}
	// Same inseparable-rules guard as HiCuts: without progress the
	// recursion would replicate the full list into every child forever.
	if !progress {
		c.refs -= len(pushed)
		c.leaves++
		c.refs += len(orig)
		return &hyNode{leaf: true, rules: orig}
	}
	n.children = make([]*hyNode, total)
	for idx := range subs {
		n.children[idx] = c.build(subs[idx], regions[idx], depth+1)
	}
	return n
}

func subRegion(reg region, dims [2]int, ncuts [2]uint32, size [2]uint32, i, j uint32) region {
	child := reg
	idx := [2]uint32{i, j}
	for di := 0; di < 2; di++ {
		d := dims[di]
		if d < 0 {
			continue
		}
		child.lo[d] = reg.lo[d] + idx[di]*size[di]
		if idx[di] == ncuts[di]-1 {
			child.hi[d] = reg.hi[d]
		} else {
			child.hi[d] = reg.lo[d] + (idx[di]+1)*size[di] - 1
		}
	}
	return child
}

func (c *HyperCuts) replication(rules []rule.Rule, reg region, dims [2]int, ncuts [2]uint32) int {
	size := [2]uint32{1, 1}
	for di := 0; di < 2; di++ {
		if dims[di] < 0 {
			continue
		}
		size[di] = regWidth(reg, dims[di]) / ncuts[di]
		if size[di] == 0 {
			size[di] = 1
		}
	}
	total := 0
	for i := uint32(0); i < ncuts[0]; i++ {
		for j := uint32(0); j < ncuts[1]; j++ {
			child := subRegion(reg, dims, ncuts, size, i, j)
			for k := range rules {
				if box := ruleBox(&rules[k]); box.overlaps(child) {
					total++
				}
			}
		}
	}
	return total
}

// pickDims selects the two dimensions with the most distinct projections
// (above-average, per the HyperCuts heuristic).
func (c *HyperCuts) pickDims(rules []rule.Rule, reg region) [2]int {
	type dimScore struct {
		dim      int
		distinct int
	}
	var scores []dimScore
	for d := 0; d < 5; d++ {
		if regWidth(reg, d) < 2 {
			continue
		}
		set := make(map[[2]uint32]struct{}, len(rules))
		for i := range rules {
			b := ruleBox(&rules[i])
			set[[2]uint32{b.lo[d], b.hi[d]}] = struct{}{}
		}
		scores = append(scores, dimScore{dim: d, distinct: len(set)})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].distinct > scores[j].distinct })
	out := [2]int{-1, -1}
	for i := 0; i < len(scores) && i < 2; i++ {
		if scores[i].distinct > 1 {
			out[i] = scores[i].dim
		}
	}
	if out[0] < 0 && len(scores) > 0 {
		out[0] = scores[0].dim
	}
	return out
}

// Match implements Classifier: walk to the leaf, scanning pushed rules at
// each node, returning the best-priority match.
func (c *HyperCuts) Match(h rule.Header) (rule.Rule, bool) {
	if !c.built {
		return rule.Rule{}, false
	}
	p := headerPoint(h)
	best := rule.Rule{Priority: int(^uint(0) >> 1)}
	found := false
	scan := func(rules []rule.Rule) {
		for i := range rules {
			if rules[i].Priority >= best.Priority {
				return
			}
			if rules[i].Matches(h) {
				best = rules[i]
				found = true
				return
			}
		}
	}
	n := c.root
	for n != nil && !n.leaf {
		scan(n.rules)
		var idx [2]uint32
		for di := 0; di < 2; di++ {
			d := n.dims[di]
			if d < 0 {
				continue
			}
			idx[di] = (p[d] - n.lo[di]) / n.size[di]
			if idx[di] >= n.ncuts[di] {
				idx[di] = n.ncuts[di] - 1
			}
		}
		n = n.children[idx[0]*n.ncuts[1]+idx[1]]
	}
	if n != nil {
		scan(n.rules)
	}
	if !found {
		return rule.Rule{}, false
	}
	return best, true
}

// MemoryBytes implements Classifier.
func (c *HyperCuts) MemoryBytes() int { return c.nodes*32 + c.refs*8 }

// TreeStats reports structure counters.
func (c *HyperCuts) TreeStats() (nodes, leaves, ruleRefs int) {
	return c.nodes, c.leaves, c.refs
}
