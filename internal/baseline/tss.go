package baseline

import (
	"sort"

	"repro/internal/rule"
)

// TSS implements Tuple Space Search (Srinivasan, Suri, Varghese —
// SIGCOMM'99): rules are grouped into tuples by the specified bits of each
// field, and each tuple is an exact-match hash table probed with the
// correspondingly masked header. Port ranges, which have no mask form, are
// handled as in the original paper by mapping each range to its nesting
// level within the field's stored ranges and probing with candidate range
// IDs per level.
//
// Lookup cost is one hash probe per occupied tuple (times port-range
// candidates); updates are a hash insert/delete (the "Yes" row of
// Table I), with the caveat that adding a range that changes nesting
// levels re-tuples the affected rules.
type TSS struct {
	rules  map[int]rule.Rule
	tuples map[tssTuple]map[tssKey][]ruleRefBL
	sp     *rangeRegistry
	dp     *rangeRegistry
}

// tssTuple identifies a hash table: IP prefix lengths, port nesting
// levels, and whether the protocol is specified.
type tssTuple struct {
	srcLen, dstLen uint8
	spLvl, dpLvl   int8 // -1 = wildcard range
	protoExact     bool
}

// tssKey is the masked exact-match key within a tuple.
type tssKey struct {
	src, dst uint32
	spID     int16 // range ID at the tuple's nesting level; -1 wildcard
	dpID     int16
	proto    uint8
}

// rangeRegistry tracks the distinct ranges of one port field with
// reference counts, assigning IDs and nesting levels. The wildcard range
// is level -1 with ID -1 (it matches everything, so it needs no ID).
type rangeRegistry struct {
	ranges map[rule.PortRange]*rangeInfo
	nextID int16
}

type rangeInfo struct {
	id    int16
	level int8
	refs  int
}

func newRangeRegistry() *rangeRegistry {
	return &rangeRegistry{ranges: make(map[rule.PortRange]*rangeInfo)}
}

// levelOf computes the nesting level of r among the stored ranges: the
// number of stored non-wildcard ranges strictly containing it.
func (g *rangeRegistry) levelOf(r rule.PortRange) int8 {
	if r.IsWildcard() {
		return -1
	}
	lvl := int8(0)
	for q := range g.ranges {
		if q != r && !q.IsWildcard() && q.Contains(r) {
			lvl++
		}
	}
	return lvl
}

// acquire registers a range, returning its info and whether any existing
// range's level changed (requiring re-tupling).
func (g *rangeRegistry) acquire(r rule.PortRange) (*rangeInfo, bool) {
	if info, ok := g.ranges[r]; ok {
		info.refs++
		return info, false
	}
	info := &rangeInfo{id: g.nextID, level: g.levelOf(r), refs: 1}
	if r.IsWildcard() {
		info.id = -1
	} else {
		g.nextID++
	}
	g.ranges[r] = info
	changed := g.refreshLevels()
	return info, changed
}

// release drops a reference; returns whether levels changed.
func (g *rangeRegistry) release(r rule.PortRange) bool {
	info, ok := g.ranges[r]
	if !ok {
		return false
	}
	info.refs--
	if info.refs > 0 {
		return false
	}
	delete(g.ranges, r)
	return g.refreshLevels()
}

// refreshLevels recomputes all nesting levels; reports any change.
func (g *rangeRegistry) refreshLevels() bool {
	changed := false
	for r, info := range g.ranges {
		if l := g.levelOf(r); l != info.level {
			info.level = l
			changed = true
		}
	}
	return changed
}

// candidates appends (level, id) pairs of stored ranges containing p,
// sorted by level so tuple probes line up.
func (g *rangeRegistry) candidates(p uint16) []rangeCandidate {
	var out []rangeCandidate
	for r, info := range g.ranges {
		if r.Matches(p) {
			out = append(out, rangeCandidate{level: info.level, id: info.id})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].level < out[j].level })
	return out
}

type rangeCandidate struct {
	level int8
	id    int16
}

// NewTSS returns an empty TSS classifier.
func NewTSS() *TSS {
	return &TSS{
		rules:  make(map[int]rule.Rule),
		tuples: make(map[tssTuple]map[tssKey][]ruleRefBL),
		sp:     newRangeRegistry(),
		dp:     newRangeRegistry(),
	}
}

// Name implements Classifier.
func (c *TSS) Name() string { return "TSS" }

// IncrementalUpdate implements Classifier.
func (c *TSS) IncrementalUpdate() bool { return true }

// Build implements Classifier.
func (c *TSS) Build(s *rule.Set) error {
	fresh := NewTSS()
	*c = *fresh
	for _, r := range s.Rules() {
		if err := c.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// place computes a rule's tuple and key from the current registries.
func (c *TSS) place(r rule.Rule) (tssTuple, tssKey) {
	spInfo := c.sp.ranges[r.SrcPort]
	dpInfo := c.dp.ranges[r.DstPort]
	t := tssTuple{
		srcLen: r.SrcIP.Len, dstLen: r.DstIP.Len,
		spLvl: spInfo.level, dpLvl: dpInfo.level,
		protoExact: !r.Proto.IsWildcard(),
	}
	k := tssKey{
		src: r.SrcIP.Addr & r.SrcIP.Mask(), dst: r.DstIP.Addr & r.DstIP.Mask(),
		spID: spInfo.id, dpID: dpInfo.id,
	}
	if t.protoExact {
		k.proto = r.Proto.Value
	}
	return t, k
}

func (c *TSS) addEntry(r rule.Rule) {
	t, k := c.place(r)
	tbl := c.tuples[t]
	if tbl == nil {
		tbl = make(map[tssKey][]ruleRefBL)
		c.tuples[t] = tbl
	}
	refs := tbl[k]
	i := 0
	for i < len(refs) && refs[i].priority < r.Priority {
		i++
	}
	refs = append(refs, ruleRefBL{})
	copy(refs[i+1:], refs[i:])
	refs[i] = ruleRefBL{id: r.ID, priority: r.Priority}
	tbl[k] = refs
}

func (c *TSS) removeEntry(r rule.Rule) {
	t, k := c.place(r)
	tbl := c.tuples[t]
	refs := tbl[k]
	for i := range refs {
		if refs[i].id == r.ID {
			refs = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(refs) == 0 {
		delete(tbl, k)
		if len(tbl) == 0 {
			delete(c.tuples, t)
		}
	} else {
		tbl[k] = refs
	}
}

// retuple rebuilds every entry after a nesting-level change (rare: only
// when a new distinct range alters containment structure).
func (c *TSS) retuple() {
	c.tuples = make(map[tssTuple]map[tssKey][]ruleRefBL)
	for _, r := range c.rules {
		c.addEntry(r)
	}
}

// Insert implements Classifier.
func (c *TSS) Insert(r rule.Rule) error {
	if _, dup := c.rules[r.ID]; dup {
		return rule.ErrDuplicateID
	}
	_, ch1 := c.sp.acquire(r.SrcPort)
	_, ch2 := c.dp.acquire(r.DstPort)
	c.rules[r.ID] = r
	if ch1 || ch2 {
		c.retuple()
	} else {
		c.addEntry(r)
	}
	return nil
}

// Delete implements Classifier.
func (c *TSS) Delete(id int) error {
	r, ok := c.rules[id]
	if !ok {
		return ErrUnknownRule
	}
	c.removeEntry(r)
	delete(c.rules, id)
	ch1 := c.sp.release(r.SrcPort)
	ch2 := c.dp.release(r.DstPort)
	if ch1 || ch2 {
		c.retuple()
	}
	return nil
}

// Match implements Classifier: probe every occupied tuple with the
// correspondingly masked header and candidate port-range IDs.
func (c *TSS) Match(h rule.Header) (rule.Rule, bool) {
	spCands := c.sp.candidates(h.SrcPort)
	dpCands := c.dp.candidates(h.DstPort)
	best := ruleRefBL{priority: int(^uint(0) >> 1)}
	found := false
	for t, tbl := range c.tuples {
		srcMask := (rule.Prefix{Len: t.srcLen}).Mask()
		dstMask := (rule.Prefix{Len: t.dstLen}).Mask()
		for _, spc := range spCands {
			if spc.level != t.spLvl {
				continue
			}
			for _, dpc := range dpCands {
				if dpc.level != t.dpLvl {
					continue
				}
				k := tssKey{
					src: h.SrcIP & srcMask, dst: h.DstIP & dstMask,
					spID: spc.id, dpID: dpc.id,
				}
				if t.protoExact {
					k.proto = h.Proto
				}
				if refs := tbl[k]; len(refs) > 0 && refs[0].priority < best.priority {
					best = refs[0]
					found = true
				}
			}
		}
	}
	if !found {
		return rule.Rule{}, false
	}
	return c.rules[best.id], true
}

// MemoryBytes implements Classifier: tuple tables plus range registries.
func (c *TSS) MemoryBytes() int {
	entries := 0
	for _, tbl := range c.tuples {
		entries += len(tbl)
	}
	return entries*20 + (len(c.sp.ranges)+len(c.dp.ranges))*8 + len(c.tuples)*16
}

// TupleCount reports the occupied tuple count (the M of Table I's O(M+N)).
func (c *TSS) TupleCount() int { return len(c.tuples) }
