package baseline

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rule"
)

// CrossProduct implements Cross-Producting (Srinivasan, Varghese, Suri,
// Waldvogel — SIGCOMM'98): independent best-match lookups per field,
// combined through a precomputed table addressed by the per-field results.
// IP fields use longest-matching rule projections (a laminar family, so
// the longest match determines the full matching set); port fields use the
// disjoint elementary intervals induced by all rule ranges; the protocol
// field uses exact values plus the wildcard.
//
// The full cross-product table is O(N^d); this implementation materializes
// entries lazily and memoizes them, which keeps construction feasible
// while still exposing the storage blow-up through MemoryBytes as the
// cache fills — the incremental variant the original paper suggests
// ("cross-producting with caching").
type CrossProduct struct {
	built bool
	rules []rule.Rule

	srcProj *prefixProjection
	dstProj *prefixProjection
	spProj  *elemIntervals
	dpProj  *elemIntervals
	// proto projections: exact values plus wildcard slot.
	protoVals map[uint8]int // value -> projection index (>=1); 0 = wildcard-only
	protoWild bool

	// cache maps the 5 projection indices to the HPMR rule index (-1 for
	// none). It is written during Match (the lazy table materialization),
	// so it is a sync.Map with an entry counter: concurrent lookups may
	// race to resolve the same key, but resolve is deterministic, so
	// whichever entry lands is correct.
	cache    sync.Map // [5]int32 -> int32
	cacheLen atomic.Int64
}

// NewCrossProduct returns an empty cross-producting classifier.
func NewCrossProduct() *CrossProduct { return &CrossProduct{} }

// Name implements Classifier.
func (c *CrossProduct) Name() string { return "Cross-Producting" }

// IncrementalUpdate implements Classifier: projections and table must be
// rebuilt on rule changes.
func (c *CrossProduct) IncrementalUpdate() bool { return false }

// Insert implements Classifier.
func (c *CrossProduct) Insert(rule.Rule) error { return ErrNoIncremental }

// Delete implements Classifier.
func (c *CrossProduct) Delete(int) error { return ErrNoIncremental }

// Build implements Classifier.
func (c *CrossProduct) Build(s *rule.Set) error {
	c.rules = append([]rule.Rule(nil), s.Rules()...)
	c.srcProj = newPrefixProjection(c.rules, func(r *rule.Rule) rule.Prefix { return r.SrcIP })
	c.dstProj = newPrefixProjection(c.rules, func(r *rule.Rule) rule.Prefix { return r.DstIP })
	c.spProj = newElemIntervals(c.rules, func(r *rule.Rule) rule.PortRange { return r.SrcPort })
	c.dpProj = newElemIntervals(c.rules, func(r *rule.Rule) rule.PortRange { return r.DstPort })
	c.protoVals = make(map[uint8]int)
	c.protoWild = false
	next := 1
	for i := range c.rules {
		p := c.rules[i].Proto
		if p.IsWildcard() {
			c.protoWild = true
			continue
		}
		if _, ok := c.protoVals[p.Value]; !ok {
			c.protoVals[p.Value] = next
			next++
		}
	}
	c.cache = sync.Map{}
	c.cacheLen.Store(0)
	c.built = true
	return nil
}

// Match implements Classifier.
func (c *CrossProduct) Match(h rule.Header) (rule.Rule, bool) {
	if !c.built {
		return rule.Rule{}, false
	}
	var key [5]int32
	key[0] = c.srcProj.lookup(h.SrcIP)
	key[1] = c.dstProj.lookup(h.DstIP)
	key[2] = c.spProj.lookup(h.SrcPort)
	key[3] = c.dpProj.lookup(h.DstPort)
	if idx, ok := c.protoVals[h.Proto]; ok {
		key[4] = int32(idx)
	} else {
		key[4] = 0
	}

	var ri int32
	if v, ok := c.cache.Load(key); ok {
		ri = v.(int32)
	} else {
		ri = c.resolve(key, h)
		if _, loaded := c.cache.LoadOrStore(key, ri); !loaded {
			c.cacheLen.Add(1)
		}
	}
	if ri < 0 {
		return rule.Rule{}, false
	}
	return c.rules[ri], true
}

// resolve computes a cross-product table entry: the best rule whose field
// specs cover every projection in the key. Covering the projection is
// equivalent to matching every packet that maps to this key, so the entry
// is exact for all such packets.
func (c *CrossProduct) resolve(key [5]int32, h rule.Header) int32 {
	srcPfx, srcOK := c.srcProj.prefixOf(key[0])
	dstPfx, dstOK := c.dstProj.prefixOf(key[1])
	spIv := c.spProj.interval(key[2])
	dpIv := c.dpProj.interval(key[3])
	for i := range c.rules {
		r := &c.rules[i]
		// Source: rule prefix must contain the longest matching
		// projection (no projection means only wildcard rules apply).
		if srcOK {
			if !r.SrcIP.Contains(srcPfx) {
				continue
			}
		} else if r.SrcIP.Len != 0 {
			continue
		}
		if dstOK {
			if !r.DstIP.Contains(dstPfx) {
				continue
			}
		} else if r.DstIP.Len != 0 {
			continue
		}
		if !r.SrcPort.Contains(spIv) || !r.DstPort.Contains(dpIv) {
			continue
		}
		if key[4] == 0 {
			if !r.Proto.IsWildcard() {
				continue
			}
		} else if !r.Proto.Matches(h.Proto) {
			continue
		}
		return int32(i) // rules are in priority order
	}
	return -1
}

// MemoryBytes implements Classifier: projections plus the materialized
// slice of the cross-product table.
func (c *CrossProduct) MemoryBytes() int {
	if !c.built {
		return 0
	}
	return c.srcProj.memBytes() + c.dstProj.memBytes() +
		c.spProj.memBytes() + c.dpProj.memBytes() +
		len(c.protoVals)*4 + int(c.cacheLen.Load())*(5*4+4)
}

// CachedEntries reports the materialized table size.
func (c *CrossProduct) CachedEntries() int { return int(c.cacheLen.Load()) }

// prefixProjection answers longest-matching-projection queries over the
// distinct prefixes of one IP field, via per-length hash sets.
type prefixProjection struct {
	lens    []uint8 // distinct lengths, descending
	byLen   map[uint8]map[uint32]int32
	byIndex []rule.Prefix
}

func newPrefixProjection(rules []rule.Rule, get func(*rule.Rule) rule.Prefix) *prefixProjection {
	p := &prefixProjection{byLen: make(map[uint8]map[uint32]int32)}
	for i := range rules {
		pf := get(&rules[i]).Canonical()
		if pf.Len == 0 {
			continue // wildcard handled by the "no projection" case
		}
		m := p.byLen[pf.Len]
		if m == nil {
			m = make(map[uint32]int32)
			p.byLen[pf.Len] = m
		}
		if _, ok := m[pf.Addr]; !ok {
			m[pf.Addr] = int32(len(p.byIndex))
			p.byIndex = append(p.byIndex, pf)
		}
	}
	for l := range p.byLen {
		p.lens = append(p.lens, l)
	}
	sort.Slice(p.lens, func(i, j int) bool { return p.lens[i] > p.lens[j] })
	return p
}

// lookup returns the index of the longest projection matching addr, or -1.
func (p *prefixProjection) lookup(addr uint32) int32 {
	for _, l := range p.lens {
		masked := addr & (rule.Prefix{Len: l}).Mask()
		if idx, ok := p.byLen[l][masked]; ok {
			return idx
		}
	}
	return -1
}

func (p *prefixProjection) prefixOf(idx int32) (rule.Prefix, bool) {
	if idx < 0 {
		return rule.Prefix{}, false
	}
	return p.byIndex[idx], true
}

func (p *prefixProjection) memBytes() int { return len(p.byIndex) * 10 }

// elemIntervals is the disjoint elementary-interval decomposition of one
// port field's ranges.
type elemIntervals struct {
	bounds []uint32 // interval i spans [bounds[i], bounds[i+1]-1]
}

func newElemIntervals(rules []rule.Rule, get func(*rule.Rule) rule.PortRange) *elemIntervals {
	pts := map[uint32]struct{}{0: {}}
	for i := range rules {
		r := get(&rules[i])
		pts[uint32(r.Lo)] = struct{}{}
		pts[uint32(r.Hi)+1] = struct{}{}
	}
	e := &elemIntervals{}
	for p := range pts {
		if p <= 0xffff {
			e.bounds = append(e.bounds, p)
		}
	}
	sort.Slice(e.bounds, func(i, j int) bool { return e.bounds[i] < e.bounds[j] })
	return e
}

// lookup returns the elementary interval index containing p.
func (e *elemIntervals) lookup(p uint16) int32 {
	lo, hi := 0, len(e.bounds)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.bounds[mid] <= uint32(p) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return int32(lo)
}

// interval returns the port range of elementary interval idx.
func (e *elemIntervals) interval(idx int32) rule.PortRange {
	lo := e.bounds[idx]
	hi := uint32(0xffff)
	if int(idx+1) < len(e.bounds) {
		hi = e.bounds[idx+1] - 1
	}
	return rule.PortRange{Lo: uint16(lo), Hi: uint16(hi)}
}

func (e *elemIntervals) memBytes() int { return len(e.bounds) * 4 }
