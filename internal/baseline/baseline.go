// Package baseline implements the classical multi-dimensional packet
// classification algorithms the paper's Table I compares against: linear
// search, TCAM, RFC, HiCuts, HyperCuts, Cross-Producting, DCFL, bitmap
// intersection (Lucent BV), ABV and Tuple Space Search. Each is an
// independent from-scratch implementation behind a common interface, and
// each is differential-tested against the linear-scan oracle — they exist
// so the repository can regenerate the Table I comparison with measured
// numbers rather than citations.
package baseline

import (
	"errors"
	"math/bits"

	"repro/internal/rule"
)

// Errors shared by the baseline classifiers.
var (
	// ErrTooLarge is returned by algorithms whose precomputed tables
	// would explode on the given ruleset (the storage-complexity column
	// of Table I made concrete).
	ErrTooLarge = errors.New("precomputed table too large for this ruleset")
	// ErrNoIncremental is returned by Insert/Delete on classifiers whose
	// data structure must be rebuilt (the incremental-update column).
	ErrNoIncremental = errors.New("incremental update not supported; rebuild required")
	// ErrNotBuilt is returned by Match before Build.
	ErrNotBuilt = errors.New("classifier not built")
	// ErrUnknownRule is returned when deleting a rule that is not
	// installed.
	ErrUnknownRule = errors.New("unknown rule id")
)

// Classifier is the common shape of the Table I comparators.
type Classifier interface {
	// Name returns the Table I row name.
	Name() string
	// Build constructs the data structure for a rule set, replacing any
	// previous contents.
	Build(s *rule.Set) error
	// Match returns the Highest-Priority Matching Rule for the header.
	Match(h rule.Header) (rule.Rule, bool)
	// MemoryBytes estimates the data-structure storage.
	MemoryBytes() int
	// IncrementalUpdate reports whether Insert/Delete work without a
	// rebuild.
	IncrementalUpdate() bool
	// Insert adds one rule; ErrNoIncremental if unsupported.
	Insert(r rule.Rule) error
	// Delete removes one rule by ID; ErrNoIncremental if unsupported.
	Delete(id int) error
}

// All returns one fresh instance of every baseline, keyed by name, for the
// differential test harness and the Table I bench.
func All() []Classifier {
	return []Classifier{
		NewLinear(),
		NewTCAM(),
		NewRFC(),
		NewHiCuts(DefaultHiCutsConfig()),
		NewHyperCuts(DefaultHyperCutsConfig()),
		NewCrossProduct(),
		NewDCFL(),
		NewBitmapIntersection(),
		NewABV(),
		NewTSS(),
	}
}

// Linear is the brute-force reference: O(N) match, minimal memory, trivial
// incremental update. Every other classifier is tested against it.
type Linear struct {
	rules []rule.Rule
	byID  map[int]int
}

// NewLinear returns an empty linear classifier.
func NewLinear() *Linear { return &Linear{byID: make(map[int]int)} }

// Name implements Classifier.
func (l *Linear) Name() string { return "Linear" }

// Build implements Classifier.
func (l *Linear) Build(s *rule.Set) error {
	l.rules = append(l.rules[:0], s.Rules()...)
	l.byID = make(map[int]int, len(l.rules))
	for i := range l.rules {
		l.byID[l.rules[i].ID] = i
	}
	return nil
}

// Match implements Classifier.
func (l *Linear) Match(h rule.Header) (rule.Rule, bool) {
	best := -1
	for i := range l.rules {
		if l.rules[i].Matches(h) && (best < 0 || l.rules[i].Priority < l.rules[best].Priority) {
			best = i
		}
	}
	if best < 0 {
		return rule.Rule{}, false
	}
	return l.rules[best], true
}

// MemoryBytes implements Classifier: ~38 bytes of match data per rule.
func (l *Linear) MemoryBytes() int { return len(l.rules) * 38 }

// IncrementalUpdate implements Classifier.
func (l *Linear) IncrementalUpdate() bool { return true }

// Insert implements Classifier.
func (l *Linear) Insert(r rule.Rule) error {
	if _, dup := l.byID[r.ID]; dup {
		return rule.ErrDuplicateID
	}
	l.byID[r.ID] = len(l.rules)
	l.rules = append(l.rules, r)
	return nil
}

// Delete implements Classifier.
func (l *Linear) Delete(id int) error {
	i, ok := l.byID[id]
	if !ok {
		return ErrUnknownRule
	}
	l.rules = append(l.rules[:i], l.rules[i+1:]...)
	delete(l.byID, id)
	for j := i; j < len(l.rules); j++ {
		l.byID[l.rules[j].ID] = j
	}
	return nil
}

// bitset is a fixed-capacity rule bitmap used by RFC, BV and ABV.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }

func (b bitset) and(a, c bitset) {
	for i := range b {
		b[i] = a[i] & c[i]
	}
}

// firstSet returns the lowest set bit index, or -1.
func (b bitset) firstSet() int {
	for i, w := range b {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// hash folds the bitset with an FNV-1a mix for class deduplication.
func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603)
	for _, w := range b {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// classIndex deduplicates bitsets into dense class IDs, comparing by hash
// bucket with full verification (no false sharing on hash collisions).
type classIndex struct {
	byHash map[uint64][]uint16
	sets   []bitset
}

func newClassIndex() *classIndex {
	return &classIndex{byHash: make(map[uint64][]uint16)}
}

// id returns the class of the bitset, adding a new class (cloning the
// bitset) when unseen. The second result reports whether the class count
// limit was exceeded.
func (ci *classIndex) id(b bitset, limit int) (uint16, bool) {
	h := b.hash()
	for _, cand := range ci.byHash[h] {
		if ci.sets[cand].equal(b) {
			return cand, true
		}
	}
	if len(ci.sets) >= limit {
		return 0, false
	}
	id := uint16(len(ci.sets))
	ci.sets = append(ci.sets, b.clone())
	ci.byHash[h] = append(ci.byHash[h], id)
	return id, true
}
