package baseline

import (
	"repro/internal/ruleset"
	"testing"
)

func TestHiCutsFWLargeNoBlowup(t *testing.T) {
	for _, size := range []int{2000, 5000} {
		s, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: size, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		hi := NewHiCuts(DefaultHiCutsConfig())
		if err := hi.Build(s); err != nil {
			t.Fatal(err)
		}
		hy := NewHyperCuts(DefaultHyperCutsConfig())
		if err := hy.Build(s); err != nil {
			t.Fatal(err)
		}
		n1, _, r1 := hi.TreeStats()
		n2, _, r2 := hy.TreeStats()
		t.Logf("FW-%d: hicuts nodes=%d refs=%d  hypercuts nodes=%d refs=%d", size, n1, r1, n2, r2)
		if r1 > 50*size || r2 > 50*size {
			t.Fatalf("replication blow-up: %d / %d refs for %d rules", r1, r2, size)
		}
	}
}
