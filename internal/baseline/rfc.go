package baseline

import (
	"fmt"

	"repro/internal/rule"
)

// RFC implements Recursive Flow Classification (Gupta & McKeown,
// SIGCOMM'99): the packet header is split into chunks, each chunk value is
// mapped to an equivalence-class ID by a direct-indexed table, and a
// reduction tree of cross-product tables combines class IDs until one
// table yields the matching rule. Lookup is a constant number of indexed
// memory reads (the O(d) row of Table I); the price is the preprocessed
// table storage, which grows multiplicatively (O(N^d) worst case) and the
// lack of incremental update.
//
// Chunking (the paper's canonical 5-tuple layout):
//
//	phase 0: srcIP[31:16], srcIP[15:0], dstIP[31:16], dstIP[15:0],
//	         srcPort, dstPort, proto            (7 chunks)
//	phase 1: (c0,c1)->srcEq, (c2,c3)->dstEq, (c4,c5)->portEq
//	phase 2: (srcEq,dstEq)->ipEq, (portEq,c6)->tpEq
//	phase 3: (ipEq,tpEq)->rule
type RFC struct {
	built bool
	rules []rule.Rule

	chunk [7][]uint16 // phase-0 tables: value -> eqID
	// phase tables: eqID pair -> next eqID, stored row-major.
	p1     [3]rfcTable
	p2     [2]rfcTable
	fin    rfcTable
	result []int32 // final class -> rule index (-1 = no match)

	memBytes int
}

type rfcTable struct {
	cols int
	ids  []uint16
}

func (t *rfcTable) at(a, b int) int { return int(t.ids[a*t.cols+b]) }

// maxRFCClasses bounds every table dimension; exceeding it means the
// ruleset drives RFC's multiplicative storage beyond what we are willing
// to precompute, and Build fails with ErrTooLarge.
const maxRFCClasses = 1 << 14

// maxRFCTableCells bounds any single cross-product table (cells are
// 2-byte class IDs, so this is a 32 MiB table); the multiplicative
// blow-up beyond it is exactly the O(N^d) storage row of Table I.
const maxRFCTableCells = 16 << 20

// NewRFC returns an empty RFC classifier.
func NewRFC() *RFC { return &RFC{} }

// Name implements Classifier.
func (c *RFC) Name() string { return "RFC" }

// IncrementalUpdate implements Classifier: the reduction tree must be
// rebuilt on any change.
func (c *RFC) IncrementalUpdate() bool { return false }

// Insert implements Classifier.
func (c *RFC) Insert(rule.Rule) error { return ErrNoIncremental }

// Delete implements Classifier.
func (c *RFC) Delete(int) error { return ErrNoIncremental }

// MemoryBytes implements Classifier.
func (c *RFC) MemoryBytes() int { return c.memBytes }

// Build implements Classifier.
func (c *RFC) Build(s *rule.Set) error {
	c.rules = append([]rule.Rule(nil), s.Rules()...)
	n := len(c.rules)

	// Phase 0: per-chunk equivalence classes. For each chunk, values with
	// identical matching-rule bitsets share a class.
	classSets := make([][]bitset, 7)
	var err error
	for ci := 0; ci < 7; ci++ {
		size := 1 << 16
		if ci == 6 {
			size = 256
		}
		c.chunk[ci], classSets[ci], err = c.phase0(ci, size)
		if err != nil {
			return err
		}
	}

	// Phase 1 and 2 reductions.
	s1, e1, err := combine(classSets[0], classSets[1])
	if err != nil {
		return err
	}
	s2, e2, err := combine(classSets[2], classSets[3])
	if err != nil {
		return err
	}
	s3, e3, err := combine(classSets[4], classSets[5])
	if err != nil {
		return err
	}
	c.p1[0], c.p1[1], c.p1[2] = s1, s2, s3

	s4, e4, err := combine(e1, e2)
	if err != nil {
		return err
	}
	s5, e5, err := combine(e3, classSets[6])
	if err != nil {
		return err
	}
	c.p2[0], c.p2[1] = s4, s5

	fin, efin, err := combine(e4, e5)
	if err != nil {
		return err
	}
	c.fin = fin

	// Final classes resolve to the highest-priority rule in the class
	// bitset. Rules are in priority order, so the first set bit wins.
	c.result = make([]int32, len(efin))
	for i, bs := range efin {
		c.result[i] = int32(bs.firstSet())
	}

	c.memBytes = 0
	for ci := 0; ci < 7; ci++ {
		c.memBytes += 2 * len(c.chunk[ci])
	}
	for _, t := range c.p1 {
		c.memBytes += 2 * len(t.ids)
	}
	for _, t := range c.p2 {
		c.memBytes += 2 * len(t.ids)
	}
	c.memBytes += 2*len(c.fin.ids) + 4*len(c.result)
	_ = n
	c.built = true
	return nil
}

// phase0 builds one chunk table: for every chunk value, the bitset of
// rules whose projection on this chunk matches the value; identical
// bitsets collapse to one class.
func (c *RFC) phase0(ci, size int) ([]uint16, []bitset, error) {
	n := len(c.rules)
	table := make([]uint16, size)
	classes := newClassIndex()

	// For efficiency, build per-rule chunk intervals and sweep instead of
	// testing every (value, rule) pair: each rule matches a contiguous
	// value interval on every chunk except the split IP halves, where it
	// matches either one interval (exact upper half) or all values.
	type iv struct {
		lo, hi int
		r      int
	}
	var ivs []iv
	for ri := range c.rules {
		lo, hi := chunkInterval(&c.rules[ri], ci)
		ivs = append(ivs, iv{lo: lo, hi: hi, r: ri})
	}
	// Sweep: delta events per value.
	starts := make([][]int, size+1)
	ends := make([][]int, size+1)
	for _, v := range ivs {
		starts[v.lo] = append(starts[v.lo], v.r)
		ends[v.hi+1] = append(ends[v.hi+1], v.r)
	}
	cur := newBitset(n)
	for v := 0; v < size; v++ {
		for _, r := range starts[v] {
			cur.set(r)
		}
		for _, r := range ends[v] {
			cur[r/64] &^= 1 << (r % 64)
		}
		id, ok := classes.id(cur, maxRFCClasses)
		if !ok {
			return nil, nil, fmt.Errorf("rfc chunk %d: %w", ci, ErrTooLarge)
		}
		table[v] = id
	}
	return table, classes.sets, nil
}

// chunkInterval returns the contiguous value interval a rule matches on
// chunk ci. For the lower IP halves the interval depends on the prefix
// crossing the 16-bit boundary.
func chunkInterval(r *rule.Rule, ci int) (int, int) {
	switch ci {
	case 0: // src high 16
		return prefixChunk(r.SrcIP, true)
	case 1: // src low 16
		return prefixChunk(r.SrcIP, false)
	case 2:
		return prefixChunk(r.DstIP, true)
	case 3:
		return prefixChunk(r.DstIP, false)
	case 4:
		return int(r.SrcPort.Lo), int(r.SrcPort.Hi)
	case 5:
		return int(r.DstPort.Lo), int(r.DstPort.Hi)
	default: // proto
		if r.Proto.IsWildcard() {
			return 0, 255
		}
		return int(r.Proto.Value), int(r.Proto.Value)
	}
}

// prefixChunk projects a prefix onto its high or low 16-bit half.
//
// The projection is exact for RFC chunking: a prefix of length <= 16
// constrains only the high half (low half is a full wildcard); a longer
// prefix pins the high half to one value and constrains the low half to
// one interval.
func prefixChunk(p rule.Prefix, high bool) (int, int) {
	hi16 := int(p.Addr >> 16)
	lo16 := int(p.Addr & 0xffff)
	switch {
	case p.Len == 0:
		return 0, 0xffff
	case p.Len <= 16:
		if high {
			span := 1<<(16-p.Len) - 1
			return hi16, hi16 + span
		}
		return 0, 0xffff
	default:
		if high {
			return hi16, hi16
		}
		span := 0
		if p.Len < 32 {
			span = 1<<(32-p.Len) - 1
		}
		return lo16, lo16 + span
	}
}

// combine builds the cross-product table of two class-set lists: entry
// (a,b) holds the class of setsA[a] AND setsB[b].
func combine(a, b []bitset) (rfcTable, []bitset, error) {
	if len(a)*len(b) > maxRFCTableCells {
		return rfcTable{}, nil, fmt.Errorf("rfc table %dx%d: %w", len(a), len(b), ErrTooLarge)
	}
	t := rfcTable{cols: len(b), ids: make([]uint16, len(a)*len(b))}
	classes := newClassIndex()
	if len(a) == 0 || len(b) == 0 {
		return t, classes.sets, nil
	}
	tmp := make(bitset, len(a[0]))
	for i, sa := range a {
		for j, sb := range b {
			tmp.and(sa, sb)
			id, ok := classes.id(tmp, maxRFCClasses)
			if !ok {
				return rfcTable{}, nil, fmt.Errorf("rfc reduction: %w", ErrTooLarge)
			}
			t.ids[i*t.cols+j] = id
		}
	}
	return t, classes.sets, nil
}

// Match implements Classifier: a fixed sequence of indexed reads.
func (c *RFC) Match(h rule.Header) (rule.Rule, bool) {
	if !c.built {
		return rule.Rule{}, false
	}
	c0 := int(c.chunk[0][h.SrcIP>>16])
	c1 := int(c.chunk[1][h.SrcIP&0xffff])
	c2 := int(c.chunk[2][h.DstIP>>16])
	c3 := int(c.chunk[3][h.DstIP&0xffff])
	c4 := int(c.chunk[4][h.SrcPort])
	c5 := int(c.chunk[5][h.DstPort])
	c6 := int(c.chunk[6][h.Proto])

	e1 := c.p1[0].at(c0, c1)
	e2 := c.p1[1].at(c2, c3)
	e3 := c.p1[2].at(c4, c5)
	e4 := c.p2[0].at(e1, e2)
	e5 := c.p2[1].at(e3, c6)
	fin := c.fin.at(e4, e5)
	ri := c.result[fin]
	if ri < 0 {
		return rule.Rule{}, false
	}
	return c.rules[ri], true
}
