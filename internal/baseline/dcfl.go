package baseline

import (
	"sort"

	"repro/internal/rule"
)

// DCFL implements Distributed Crossproducting of Field Labels (Taylor &
// Turner, INFOCOM'05): each field search returns the set of labels of the
// matching field values, and an aggregation network intersects label sets
// pairwise using hash tables of the label combinations that actually occur
// in the ruleset — avoiding the full cross-product table while keeping
// O(d) aggregation stages. Labels are stable, so DCFL supports incremental
// update (the "Yes" in Table I), with per-combination reference counts.
//
// Aggregation order: (src,dst) -> pair, (pair,sport) -> triple,
// (triple,dport) -> quad, (quad,proto) -> rule set.
type DCFL struct {
	rules map[int]rule.Rule

	src  *dcflPrefixField
	dst  *dcflPrefixField
	sp   *dcflRangeField
	dp   *dcflRangeField
	prW  bool // any wildcard-proto rule
	prWn int  // and how many

	// Aggregation tables: valid label tuples with refcounts. Values are
	// dense meta-label IDs.
	agg1 map[[2]int32]*dcflMeta // (srcLab, dstLab)
	agg2 map[[2]int32]*dcflMeta // (meta1, spLab)
	agg3 map[[2]int32]*dcflMeta // (meta2, dpLab)
	// final: (meta3, protoKey) -> rules sorted by priority. protoKey is
	// int32(value) for exact, -1 for wildcard.
	final map[[2]int32][]ruleRefBL

	nextMeta int32
}

type dcflMeta struct {
	id   int32
	refs int
}

type ruleRefBL struct {
	id       int
	priority int
}

// dcflPrefixField is the label table for one IP field: distinct prefixes
// with labels, queried for all matching labels per address.
type dcflPrefixField struct {
	specs map[rule.Prefix]*dcflSpec
	lens  []uint8 // distinct non-zero lengths, descending
}

type dcflSpec struct {
	lab  int32
	refs int
}

func newDCFLPrefixField() *dcflPrefixField {
	return &dcflPrefixField{specs: make(map[rule.Prefix]*dcflSpec)}
}

func (f *dcflPrefixField) acquire(p rule.Prefix, next *int32) int32 {
	p = p.Canonical()
	if s, ok := f.specs[p]; ok {
		s.refs++
		return s.lab
	}
	s := &dcflSpec{lab: *next, refs: 1}
	*next++
	f.specs[p] = s
	f.refreshLens()
	return s.lab
}

func (f *dcflPrefixField) release(p rule.Prefix) {
	p = p.Canonical()
	s, ok := f.specs[p]
	if !ok {
		return
	}
	s.refs--
	if s.refs == 0 {
		delete(f.specs, p)
		f.refreshLens()
	}
}

func (f *dcflPrefixField) refreshLens() {
	seen := make(map[uint8]bool)
	f.lens = f.lens[:0]
	for p := range f.specs {
		if p.Len > 0 && !seen[p.Len] {
			seen[p.Len] = true
			f.lens = append(f.lens, p.Len)
		}
	}
	sort.Slice(f.lens, func(i, j int) bool { return f.lens[i] > f.lens[j] })
}

// lookup appends the labels of all prefixes matching addr.
func (f *dcflPrefixField) lookup(addr uint32, out []int32) []int32 {
	for _, l := range f.lens {
		p := rule.Prefix{Addr: addr & (rule.Prefix{Len: l}).Mask(), Len: l}
		if s, ok := f.specs[p]; ok {
			out = append(out, s.lab)
		}
	}
	if s, ok := f.specs[rule.Prefix{}]; ok {
		out = append(out, s.lab)
	}
	return out
}

// dcflRangeField is the label table for one port field.
type dcflRangeField struct {
	specs map[rule.PortRange]*dcflSpec
}

func newDCFLRangeField() *dcflRangeField {
	return &dcflRangeField{specs: make(map[rule.PortRange]*dcflSpec)}
}

func (f *dcflRangeField) acquire(r rule.PortRange, next *int32) int32 {
	if s, ok := f.specs[r]; ok {
		s.refs++
		return s.lab
	}
	s := &dcflSpec{lab: *next, refs: 1}
	*next++
	f.specs[r] = s
	return s.lab
}

func (f *dcflRangeField) release(r rule.PortRange) {
	s, ok := f.specs[r]
	if !ok {
		return
	}
	s.refs--
	if s.refs == 0 {
		delete(f.specs, r)
	}
}

func (f *dcflRangeField) lookup(p uint16, out []int32) []int32 {
	for r, s := range f.specs {
		if r.Matches(p) {
			out = append(out, s.lab)
		}
	}
	return out
}

// NewDCFL returns an empty DCFL classifier.
func NewDCFL() *DCFL {
	return &DCFL{
		rules: make(map[int]rule.Rule),
		src:   newDCFLPrefixField(),
		dst:   newDCFLPrefixField(),
		sp:    newDCFLRangeField(),
		dp:    newDCFLRangeField(),
		agg1:  make(map[[2]int32]*dcflMeta),
		agg2:  make(map[[2]int32]*dcflMeta),
		agg3:  make(map[[2]int32]*dcflMeta),
		final: make(map[[2]int32][]ruleRefBL),
	}
}

// Name implements Classifier.
func (c *DCFL) Name() string { return "DCFL" }

// IncrementalUpdate implements Classifier.
func (c *DCFL) IncrementalUpdate() bool { return true }

// Build implements Classifier.
func (c *DCFL) Build(s *rule.Set) error {
	fresh := NewDCFL()
	*c = *fresh
	for _, r := range s.Rules() {
		if err := c.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// ruleLabels compiles a rule to its field labels and aggregation path,
// allocating as needed.
func (c *DCFL) ruleLabels(r rule.Rule) (m3 int32, protoKey int32) {
	srcLab := c.src.acquire(r.SrcIP, &c.nextMeta)
	dstLab := c.dst.acquire(r.DstIP, &c.nextMeta)
	spLab := c.sp.acquire(r.SrcPort, &c.nextMeta)
	dpLab := c.dp.acquire(r.DstPort, &c.nextMeta)

	m1 := c.acquireMeta(c.agg1, [2]int32{srcLab, dstLab})
	m2 := c.acquireMeta(c.agg2, [2]int32{m1, spLab})
	m3 = c.acquireMeta(c.agg3, [2]int32{m2, dpLab})
	if r.Proto.IsWildcard() {
		return m3, -1
	}
	return m3, int32(r.Proto.Value)
}

func (c *DCFL) acquireMeta(agg map[[2]int32]*dcflMeta, key [2]int32) int32 {
	if m, ok := agg[key]; ok {
		m.refs++
		return m.id
	}
	m := &dcflMeta{id: c.nextMeta, refs: 1}
	c.nextMeta++
	agg[key] = m
	return m.id
}

func (c *DCFL) releaseMeta(agg map[[2]int32]*dcflMeta, key [2]int32) {
	m, ok := agg[key]
	if !ok {
		return
	}
	m.refs--
	if m.refs == 0 {
		delete(agg, key)
	}
}

// Insert implements Classifier.
func (c *DCFL) Insert(r rule.Rule) error {
	if _, dup := c.rules[r.ID]; dup {
		return rule.ErrDuplicateID
	}
	m3, protoKey := c.ruleLabels(r)
	key := [2]int32{m3, protoKey}
	refs := c.final[key]
	i := 0
	for i < len(refs) && refs[i].priority < r.Priority {
		i++
	}
	refs = append(refs, ruleRefBL{})
	copy(refs[i+1:], refs[i:])
	refs[i] = ruleRefBL{id: r.ID, priority: r.Priority}
	c.final[key] = refs
	if r.Proto.IsWildcard() {
		c.prW = true
		c.prWn++
	}
	c.rules[r.ID] = r
	return nil
}

// Delete implements Classifier.
func (c *DCFL) Delete(id int) error {
	r, ok := c.rules[id]
	if !ok {
		return ErrUnknownRule
	}
	// Recompute the rule's aggregation path without allocating: the
	// specs still exist, so acquire/release pairs restore refcounts.
	m3, protoKey := c.ruleLabels(r)
	key := [2]int32{m3, protoKey}
	// Undo the extra references ruleLabels just took.
	c.releaseRule(r, m3)
	// And the original ones.
	c.releaseRule(r, m3)

	refs := c.final[key]
	for i := range refs {
		if refs[i].id == id {
			refs = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(refs) == 0 {
		delete(c.final, key)
	} else {
		c.final[key] = refs
	}
	if r.Proto.IsWildcard() {
		c.prWn--
		c.prW = c.prWn > 0
	}
	delete(c.rules, id)
	return nil
}

// releaseRule drops one reference along the rule's aggregation path.
func (c *DCFL) releaseRule(r rule.Rule, m3 int32) {
	srcLab := c.src.specs[r.SrcIP.Canonical()].lab
	dstLab := c.dst.specs[r.DstIP.Canonical()].lab
	spLab := c.sp.specs[r.SrcPort].lab
	dpLab := c.dp.specs[r.DstPort].lab
	m1 := c.agg1[[2]int32{srcLab, dstLab}].id
	m2 := c.agg2[[2]int32{m1, spLab}].id
	c.releaseMeta(c.agg3, [2]int32{m2, dpLab})
	c.releaseMeta(c.agg2, [2]int32{m1, spLab})
	c.releaseMeta(c.agg1, [2]int32{srcLab, dstLab})
	c.src.release(r.SrcIP)
	c.dst.release(r.DstIP)
	c.sp.release(r.SrcPort)
	c.dp.release(r.DstPort)
}

// Match implements Classifier: per-field label sets flow through the
// aggregation network, each stage keeping only combinations present in
// its table.
func (c *DCFL) Match(h rule.Header) (rule.Rule, bool) {
	var srcBuf, dstBuf, spBuf, dpBuf [8]int32
	srcLabs := c.src.lookup(h.SrcIP, srcBuf[:0])
	dstLabs := c.dst.lookup(h.DstIP, dstBuf[:0])
	spLabs := c.sp.lookup(h.SrcPort, spBuf[:0])
	dpLabs := c.dp.lookup(h.DstPort, dpBuf[:0])

	var m1s, m2s, m3s []int32
	for _, s := range srcLabs {
		for _, d := range dstLabs {
			if m, ok := c.agg1[[2]int32{s, d}]; ok {
				m1s = append(m1s, m.id)
			}
		}
	}
	for _, m1 := range m1s {
		for _, sp := range spLabs {
			if m, ok := c.agg2[[2]int32{m1, sp}]; ok {
				m2s = append(m2s, m.id)
			}
		}
	}
	for _, m2 := range m2s {
		for _, dp := range dpLabs {
			if m, ok := c.agg3[[2]int32{m2, dp}]; ok {
				m3s = append(m3s, m.id)
			}
		}
	}
	best := ruleRefBL{priority: int(^uint(0) >> 1)}
	found := false
	consider := func(key [2]int32) {
		if refs := c.final[key]; len(refs) > 0 && refs[0].priority < best.priority {
			best = refs[0]
			found = true
		}
	}
	for _, m3 := range m3s {
		consider([2]int32{m3, int32(h.Proto)})
		if c.prW {
			consider([2]int32{m3, -1})
		}
	}
	if !found {
		return rule.Rule{}, false
	}
	return c.rules[best.id], true
}

// MemoryBytes implements Classifier: field spec tables plus aggregation
// hash tables.
func (c *DCFL) MemoryBytes() int {
	return len(c.src.specs)*10 + len(c.dst.specs)*10 +
		len(c.sp.specs)*8 + len(c.dp.specs)*8 +
		(len(c.agg1)+len(c.agg2)+len(c.agg3))*12 +
		len(c.final)*16
}
