// Package metrics implements the daemon's per-table observability
// counters: cache-line-padded monotonic counters and a concurrent
// HDR-style latency histogram built on the repro/internal/hdr bucket
// geometry that internal/workload's replay histograms also use, so
// workload-replay results and live-daemon exposition report quantiles
// from identical bucket boundaries (and merge bucket-by-bucket through
// BucketCount and workload.Histogram.AddBucket).
//
// Everything in this package is wait-free on the record side — one
// atomic add per counter increment, two or three per histogram sample —
// so instrumentation can sit on the daemon's serving path without
// perturbing the engines' allocation-free lookup kernels. Readers
// (Prometheus scrapes, ctl STATS, the JSON admin API) take snapshots
// with plain atomic loads; a scrape racing a recorder observes
// monotonically advancing counts, never torn or decreasing values.
package metrics

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/hdr"
)

// Counter is a monotonic event counter padded to its own cache line,
// so adjacent counters in a Table never false-share under concurrent
// connections.
type Counter struct {
	n atomic.Uint64
	_ [56]byte
}

// Inc adds one event.
//
//repro:noalloc
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n events.
//
//repro:noalloc
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Load reads the current count.
//
//repro:noalloc
func (c *Counter) Load() uint64 { return c.n.Load() }

// Histogram is a concurrent HDR-style latency histogram: the same
// bucket geometry as workload.Histogram (~3% relative error, exact
// below 64 ns), but every bucket is an atomic counter, so many
// connections record into one histogram without locks and a scrape can
// read quantiles mid-traffic. Recording is three atomic adds plus
// bounded CAS loops for the extrema.
//
// The zero value is an empty histogram ready for use.
type Histogram struct {
	counts [hdr.Buckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	// min stores the smallest sample plus one; zero means no samples
	// yet, keeping the zero value ready for use.
	min atomic.Uint64
}

// Record adds one latency sample. Negative durations clamp to zero.
//
//repro:noalloc
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d.Nanoseconds())
	}
	h.counts[hdr.Index(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		if old != 0 && v+1 >= old {
			return
		}
		if h.min.CompareAndSwap(old, v+1) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the exact sum of all recorded samples in nanoseconds —
// the _sum series of a Prometheus summary, tracked exactly rather than
// reconstructed from bucket midpoints.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return time.Duration(m - 1)
}

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the latency at quantile q in [0, 1] with the same
// semantics as workload.Histogram.Quantile — the bucket midpoint below
// which at least q of the samples fall, clamped to the recorded
// min/max — so daemon exposition and workload replay report identical
// numbers for identical samples. Concurrent recording may land samples
// between the count read and the bucket walk; the result is then a
// quantile of a slightly stale sample set, never a torn one.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= target {
			v := hdr.Value(i)
			if min := h.min.Load(); min != 0 && v < min-1 {
				v = min - 1
			}
			if max := h.max.Load(); v > max {
				v = max
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// BucketCount reads one bucket's current count. Together with the
// shared hdr geometry this is the merge surface: folding every bucket
// through workload.Histogram.AddBucket turns a live daemon histogram
// into a replay-compatible one with identical bucket arithmetic.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// Table is the per-table instrumentation block: one padded counter per
// event class plus lookup and update latency histograms. The serving
// layer owns exactly one Table per registry table; all front ends
// (ctl, the JSON admin API, /metrics) read the same block, so the
// surfaces cannot disagree.
type Table struct {
	// Lookups counts classified headers (LOOKUP and each MLOOKUP
	// header); Updates counts applied incremental updates (INSERT,
	// DELETE, each BULK line); Swaps counts atomic whole-ruleset
	// replacements (SWAP, RESTORE, RESET); Errors counts commands that
	// failed after resolving the table.
	Lookups Counter
	Updates Counter
	Swaps   Counter
	Errors  Counter

	// LookupLatency records per-command classification latency (one
	// sample per LOOKUP, one per MLOOKUP batch); UpdateLatency records
	// per-update apply latency, including the RCU publish.
	LookupLatency Histogram
	UpdateLatency Histogram
}
