// External test package: workload transitively imports the ctl and
// tables packages (and through them this one), so the shared-geometry
// parity check must live outside package metrics to avoid an import
// cycle in the test binary.
package metrics_test

import (
	"testing"
	"time"

	"repro/internal/hdr"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestHistogramMatchesWorkloadGeometry locks the shared-bucket
// contract: the same samples recorded into a metrics.Histogram and a
// workload.Histogram produce identical quantiles, and folding the
// atomic buckets through AddBucket reproduces the workload counts
// bucket-exactly.
func TestHistogramMatchesWorkloadGeometry(t *testing.T) {
	var ch metrics.Histogram
	var wh workload.Histogram
	samples := []time.Duration{0, 1, 63, 64, 65, 1000, 123456, 9876543, time.Second}
	for _, d := range samples {
		ch.Record(d)
		wh.Record(d)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if got, want := ch.Quantile(q), wh.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, workload histogram says %v", q, got, want)
		}
	}
	var folded workload.Histogram
	for i := 0; i < hdr.Buckets; i++ {
		folded.AddBucket(i, ch.BucketCount(i))
	}
	if folded.Count() != wh.Count() {
		t.Fatalf("folded count = %d, want %d", folded.Count(), wh.Count())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := folded.Quantile(q), wh.Quantile(q); got != want {
			t.Errorf("folded Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}
