package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero-value Load = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("zero-value histogram not empty: count=%d", h.Count())
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("Max = %v, want 100µs", h.Max())
	}
	// The geometry holds ~3% relative error; allow 5% slack.
	p50 := h.Quantile(0.5)
	if p50 < 47*time.Microsecond || p50 > 53*time.Microsecond {
		t.Fatalf("p50 = %v, want ~50µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 94*time.Microsecond || p99 > 100*time.Microsecond {
		t.Fatalf("p99 = %v, want ~99µs", p99)
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("Quantile(1) = %v, want max %v", q, h.Max())
	}
	h.Record(-time.Second) // clamps to zero
	if h.Count() != 101 {
		t.Fatalf("Count after negative record = %d, want 101", h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if want := time.Duration(workers*per-1) * time.Nanosecond; h.Max() != want {
		t.Fatalf("Max = %v, want %v", h.Max(), want)
	}
}

// TestRecorderZeroAllocs guards every //repro:noalloc entry point in
// this package: instrumentation sits on the daemon's serving path next
// to the engines' allocation-free kernels and must stay allocation-free
// itself.
func TestRecorderZeroAllocs(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	var sink uint64
	if n := testing.AllocsPerRun(100, func() { sink += c.Load() }); n != 0 {
		t.Errorf("Counter.Load allocates %v/op, want 0", n)
	}
	_ = sink
	h := &Histogram{}
	d := 137 * time.Nanosecond
	if n := testing.AllocsPerRun(100, func() { h.Record(d) }); n != 0 {
		t.Errorf("Histogram.Record allocates %v/op, want 0", n)
	}
}
