package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// TestConcurrentChurnRace is the data-race regression test for the old
// "Lookup is not safe for concurrent use" caveat: reader goroutines
// classify continuously while the writer churns inserts and deletes.
// Run with -race; correctness of each observed snapshot is checked
// against the tuple the lookup was sampled from.
func TestConcurrentChurnRace(t *testing.T) {
	c, err := NewConcurrent[lpm.V4](Config{LPM: LPMMultiBitTrie, Range: RangeSegmentTree}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := ruleset.Generate(ruleset.Config{Family: ruleset.IPC, Size: 400, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	candidates := pool.Rules()

	var stop atomic.Bool
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(1000 + r)))
			var batch [16]Header[lpm.V4]
			for !stop.Load() {
				// Mix single lookups and batches; headers sampled from the
				// candidate pool so some hit and some miss.
				cand := candidates[rnd.Intn(len(candidates))]
				h := V4Header(ruleset.SampleHeader(rnd, &cand))
				res, cost := c.Lookup(h)
				if res.Found && cost.Cycles <= 0 {
					t.Error("found result with non-positive cycle cost")
					return
				}
				for i := range batch {
					cand := candidates[rnd.Intn(len(candidates))]
					batch[i] = V4Header(ruleset.SampleHeader(rnd, &cand))
				}
				rs, _ := c.LookupBatch(batch[:])
				if len(rs) != len(batch) {
					t.Errorf("batch returned %d results", len(rs))
					return
				}
				lookups.Add(int64(1 + len(batch)))
				_ = c.Stats()
			}
		}()
	}

	rnd := rand.New(rand.NewSource(7))
	live := make([]int, 0, len(candidates))
	nextIdx := 0
	for op := 0; op < 1500; op++ {
		if nextIdx < len(candidates) && (len(live) == 0 || rnd.Intn(3) > 0) {
			r := candidates[nextIdx]
			nextIdx++
			if _, err := c.Insert(V4Tuple(r)); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			live = append(live, r.ID)
			continue
		}
		if len(live) == 0 {
			break // candidate pool exhausted and table drained
		}
		i := rnd.Intn(len(live))
		if _, err := c.Delete(live[i]); err != nil {
			t.Fatalf("op %d delete(%d): %v", op, live[i], err)
		}
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	// Keep the table live until every reader has observed at least one
	// lookup, so the churn and the reads genuinely overlap.
	for lookups.Load() == 0 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if c.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(live))
	}
	if lookups.Load() == 0 {
		t.Fatal("readers performed no lookups")
	}
	if got := c.Stats().ProbeOps; got == 0 {
		t.Error("merged stats lost the reader lookups")
	}
}

// TestConcurrentFailedBuildLeavesNoPhantoms is the regression test for
// the snapshot-divergence bug: a Build that fails partway must roll the
// spare instance back, or the partially inserted rules become visible
// once a later successful update publishes that instance.
func TestConcurrentFailedBuildLeavesNoPhantoms(t *testing.T) {
	c, err := NewConcurrent[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, prio int, last byte) Tuple[lpm.V4] {
		return V4Tuple(rule.Rule{
			ID: id, Priority: prio,
			SrcIP:   rule.Prefix{Addr: 0x0a000000 | uint32(last), Len: 32},
			SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(80),
			Proto:  rule.ExactProto(rule.ProtoTCP),
			Action: rule.ActionPermit,
		})
	}
	if _, err := c.Insert(mk(9, 9, 1)); err != nil {
		t.Fatal(err)
	}
	// Build with a fresh rule followed by a duplicate of rule 9: the
	// batch must fail atomically.
	if _, err := c.Build([]Tuple[lpm.V4]{mk(2, 2, 2), mk(9, 9, 1)}); err == nil {
		t.Fatal("duplicate build should fail")
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len after failed build = %d, want 1", got)
	}
	phantom := Header[lpm.V4]{Src: lpm.V4(0x0a000002), DstPort: 80, Proto: rule.ProtoTCP}
	if res, _ := c.Lookup(phantom); res.Found {
		t.Fatalf("phantom rule visible after failed build: %+v", res)
	}
	// Publish the (previously failing) spare via successful updates and
	// re-check both instances stayed in sync.
	for i := 0; i < 2; i++ {
		if _, err := c.Insert(mk(100+i, 100+i, byte(10+i))); err != nil {
			t.Fatal(err)
		}
		if res, _ := c.Lookup(phantom); res.Found {
			t.Fatalf("phantom rule visible after publish %d: %+v", i, res)
		}
	}
	if _, err := c.Delete(9); err != nil {
		t.Fatalf("instances diverged: %v", err)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestConcurrentMatchesSequential verifies the concurrent wrapper is
// observationally identical to the bare classifier when used serially.
func TestConcurrentMatchesSequential(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 600, HitRatio: 0.8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewConcurrentV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := NewV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range trace {
		got, gc := cc.Lookup(V4Header(h))
		want, wc := sc.Lookup(V4Header(h))
		if got != want || gc != wc {
			t.Fatalf("header %d: concurrent (%+v,%+v), sequential (%+v,%+v)", i, got, gc, want, wc)
		}
	}
	if cc.Len() != sc.Len() {
		t.Fatalf("Len %d vs %d", cc.Len(), sc.Len())
	}
	// Both instances saw every lookup replayed... the concurrent wrapper
	// routes all of the serial lookups to the active instance, so the
	// merged counters must match the sequential classifier's.
	if g, w := cc.Stats().ProbeOps, sc.Stats().ProbeOps; g != w {
		t.Fatalf("ProbeOps %d vs %d", g, w)
	}
	if g, w := cc.Throughput(), sc.Throughput(); g != w {
		t.Fatalf("Throughput %+v vs %+v", g, w)
	}
	// Churn the concurrent wrapper and re-check a differential sample.
	rs := s.Rules()
	for i := 0; i < 50; i++ {
		if _, err := cc.Delete(rs[i].ID); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Delete(rs[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range trace[:200] {
		got, _ := cc.Lookup(V4Header(h))
		want, _ := sc.Lookup(V4Header(h))
		if got != want {
			t.Fatalf("after churn: %+v vs %+v", got, want)
		}
	}
}
