package core

import (
	"fmt"

	"repro/internal/lpm"
	"repro/internal/rule"
)

// This file hosts the decision-control-domain functions that run on the
// host CPU in the paper's system: ruleset optimization before download
// (Section III.D) and compilation of the rule model into lookup tuples.

// OptimizeSet applies the label-rule mapping optimization: rules that can
// never be the HPMR because an earlier rule covers them in every field are
// removed, reducing per-field overlap and therefore label-list length and
// combination time. It returns the optimized set and the removed rule IDs.
func OptimizeSet(s *rule.Set) (*rule.Set, []int, error) {
	shadowed := s.Shadowed()
	if len(shadowed) == 0 {
		return s, nil, nil
	}
	drop := make(map[int]bool, len(shadowed))
	for _, id := range shadowed {
		drop[id] = true
	}
	kept := make([]rule.Rule, 0, s.Len()-len(shadowed))
	for _, r := range s.Rules() {
		if !drop[r.ID] {
			kept = append(kept, r)
		}
	}
	out, err := rule.NewSet(kept)
	if err != nil {
		return nil, nil, fmt.Errorf("optimize ruleset: %w", err)
	}
	return out, shadowed, nil
}

// CompileSet converts a rule set into IPv4 lookup tuples in priority
// order.
func CompileSet(s *rule.Set) []Tuple[lpm.V4] {
	out := make([]Tuple[lpm.V4], 0, s.Len())
	for _, r := range s.Rules() {
		out = append(out, V4Tuple(r))
	}
	return out
}

// PrefixLens gathers the prefix-length histogram input for the AM-Trie
// stride chooser from both IP fields.
func PrefixLens(s *rule.Set) []uint8 {
	out := make([]uint8, 0, 2*s.Len())
	for _, r := range s.Rules() {
		out = append(out, r.SrcIP.Len, r.DstIP.Len)
	}
	return out
}

// NewV4 builds a classifier pre-loaded with a rule set, the common
// decision-control flow: optimize, select algorithms, compile and
// download. It returns the classifier and the total update cost.
func NewV4(cfg Config, s *rule.Set) (*Classifier[lpm.V4], Throughput, error) {
	c, err := New[lpm.V4](cfg, PrefixLens(s))
	if err != nil {
		return nil, Throughput{}, err
	}
	if _, err := c.Build(CompileSet(s)); err != nil {
		return nil, Throughput{}, err
	}
	return c, c.Throughput(), nil
}
