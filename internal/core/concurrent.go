package core

import (
	"repro/internal/hwsim"
	"repro/internal/lpm"
	"repro/internal/rcu"
	"repro/internal/rule"
)

// Concurrent is the concurrency-safe lookup domain: a Classifier pair
// managed by the RCU snapshot store, so any number of goroutines may look
// up while rules are inserted and deleted. Writers replay each update on
// both snapshot instances (preserving the O(1) incremental-update cost);
// readers acquire the published snapshot without locking. This is the
// software analogue of the paper's dual-port lookup hardware, where the
// update channel never stalls the lookup pipeline.
type Concurrent[K lpm.Key[K]] struct {
	store *rcu.Store[*Classifier[K]]
}

// NewConcurrent returns an empty concurrency-safe classifier for the
// configuration; the parameters mirror New.
func NewConcurrent[K lpm.Key[K]](cfg Config, prefixLens []uint8) (*Concurrent[K], error) {
	a, err := New[K](cfg, prefixLens)
	if err != nil {
		return nil, err
	}
	b, err := New[K](cfg, prefixLens)
	if err != nil {
		return nil, err
	}
	return &Concurrent[K]{store: rcu.NewStore(a, b)}, nil
}

// Config returns the active configuration.
func (c *Concurrent[K]) Config() Config {
	h := c.store.Acquire()
	defer h.Release()
	return h.Value().Config()
}

// Insert installs one rule; safe to call while lookups are in flight.
func (c *Concurrent[K]) Insert(t Tuple[K]) (hwsim.Cost, error) {
	var cost hwsim.Cost
	err := c.store.Update(func(cl *Classifier[K]) error {
		var e error
		cost, e = cl.Insert(t)
		return e
	}, nil) // Insert rolls back on failure, so no repair step is needed
	return cost, err
}

// Delete removes a rule by ID; safe to call while lookups are in flight.
func (c *Concurrent[K]) Delete(id int) (hwsim.Cost, error) {
	var cost hwsim.Cost
	err := c.store.Update(func(cl *Classifier[K]) error {
		var e error
		cost, e = cl.Delete(id)
		return e
	}, nil)
	return cost, err
}

// Replace atomically swaps the whole ruleset for ts. The new state is
// built on the quiesced spare instance and published with the store's
// single pointer swap, so concurrent Lookup/LookupBatch callers observe
// either the complete old ruleset or the complete new one — never an
// intermediate mix. On failure the published state is unchanged.
func (c *Concurrent[K]) Replace(ts []Tuple[K]) (hwsim.Cost, error) {
	var cost hwsim.Cost
	err := c.store.Update(func(cl *Classifier[K]) error {
		var e error
		cost, e = cl.Replace(ts)
		return e
	}, nil) // Replace restores the previous ruleset on failure
	return cost, err
}

// Tuples exports the installed rules sorted by ascending ID, read from
// one consistent snapshot.
func (c *Concurrent[K]) Tuples() []Tuple[K] {
	h := c.store.Acquire()
	defer h.Release()
	return h.Value().Tuples()
}

// Build bulk-loads a rule list, returning the total update cost.
func (c *Concurrent[K]) Build(ts []Tuple[K]) (hwsim.Cost, error) {
	var total hwsim.Cost
	err := c.store.Update(func(cl *Classifier[K]) error {
		var e error
		total, e = cl.Build(ts)
		return e
	}, nil)
	return total, err
}

// Len returns the number of installed rules.
func (c *Concurrent[K]) Len() int {
	h := c.store.Acquire()
	defer h.Release()
	return h.Value().Len()
}

// Lookup classifies one header. Safe for any number of concurrent
// callers, including during Insert/Delete.
//
//repro:noalloc
func (c *Concurrent[K]) Lookup(h Header[K]) (Result, hwsim.Cost) {
	hd := c.store.Acquire()
	res, cost := hd.Value().Lookup(h)
	hd.Release()
	return res, cost
}

// LookupBatch classifies headers in order against one consistent
// snapshot, amortizing the snapshot acquisition and the label-list
// buffers over the batch.
func (c *Concurrent[K]) LookupBatch(hs []Header[K]) ([]Result, hwsim.Cost) {
	hd := c.store.Acquire()
	res, cost := hd.Value().LookupBatch(hs)
	hd.Release()
	return res, cost
}

// LookupBatchInto classifies headers into a caller-owned result slab
// against one consistent snapshot — the allocation-free batch path.
// out must hold at least len(hs) results.
//
//repro:noalloc
func (c *Concurrent[K]) LookupBatchInto(hs []Header[K], out []Result) hwsim.Cost {
	hd := c.store.Acquire()
	cost := hd.Value().LookupBatchInto(hs, out)
	hd.Release()
	return cost
}

// Stats merges the statistics of both snapshot instances: lookups land on
// whichever instance was active, so the lookup counters are summed, while
// the rule and label population (identical in both) is read once.
func (c *Concurrent[K]) Stats() Stats {
	var s Stats
	c.store.Locked(func(active, spare *Classifier[K]) {
		s = active.Stats()
		spare.counters.addTo(&s)
	})
	return s
}

// ResetStats clears the lookup counters on both instances.
func (c *Concurrent[K]) ResetStats() {
	c.store.Locked(func(active, spare *Classifier[K]) {
		active.ResetStats()
		spare.ResetStats()
	})
}

// Memory reports the occupied hardware RAM blocks.
func (c *Concurrent[K]) Memory() hwsim.MemoryMap {
	h := c.store.Acquire()
	defer h.Release()
	return h.Value().Memory()
}

// PipelineModel derives the hardware pipeline parameters from the merged
// statistics.
func (c *Concurrent[K]) PipelineModel() hwsim.Pipeline {
	var p hwsim.Pipeline
	c.store.Locked(func(active, spare *Classifier[K]) {
		s := active.Stats()
		spare.counters.addTo(&s)
		p = active.pipelineFor(s)
	})
	return p
}

// Throughput reports the modeled forwarding performance.
func (c *Concurrent[K]) Throughput() Throughput {
	return throughputFrom(c.PipelineModel())
}

// LookupCycles models the clock cycles to stream n headers through the
// lookup pipeline.
func (c *Concurrent[K]) LookupCycles(n int) float64 {
	return c.PipelineModel().CyclesFor(n)
}

// NewConcurrentV4 builds a concurrency-safe classifier pre-loaded with a
// rule set — the concurrent counterpart of NewV4.
func NewConcurrentV4(cfg Config, s *rule.Set) (*Concurrent[lpm.V4], error) {
	var lens []uint8
	if s != nil {
		lens = PrefixLens(s)
	}
	c, err := NewConcurrent[lpm.V4](cfg, lens)
	if err != nil {
		return nil, err
	}
	if s != nil {
		if _, err := c.Build(CompileSet(s)); err != nil {
			return nil, err
		}
	}
	return c, nil
}
