package core

import (
	"testing"

	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// TestLookupBatchIntoMatchesBatch pins the caller-owned-slab batch path
// to the allocating one, on both the bare classifier and the RCU
// wrapper.
func TestLookupBatchIntoMatchesBatch(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 256, HitRatio: 0.8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	headers := make([]Header[lpm.V4], len(trace))
	for i, h := range trace {
		headers[i] = V4Header(h)
	}
	cc, err := NewConcurrentV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	want, wantCost := cc.LookupBatch(headers)
	out := make([]Result, len(headers))
	cost := cc.LookupBatchInto(headers, out)
	if cost != wantCost {
		t.Errorf("LookupBatchInto cost %+v, want %+v", cost, wantCost)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("result %d: %+v, want %+v", i, out[i], want[i])
		}
	}
}

// TestLookupBatchIntoZeroAllocs is the runtime half of the
// //repro:noalloc annotations on Classifier.LookupBatchInto and
// Concurrent.LookupBatchInto.
func TestLookupBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 64, HitRatio: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	headers := make([]Header[lpm.V4], len(trace))
	for i, h := range trace {
		headers[i] = V4Header(h)
	}
	out := make([]Result, len(headers))
	cl := buildClassifier(t, Config{}, s)
	cc, err := NewConcurrentV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	cl.LookupBatchInto(headers, out) // warm the pooled buffers
	cc.LookupBatchInto(headers, out)
	allocs := testing.AllocsPerRun(100, func() {
		cl.LookupBatchInto(headers, out)
		cc.LookupBatchInto(headers, out)
	})
	if allocs != 0 {
		t.Errorf("LookupBatchInto allocates %.1f objects/op steady-state, want 0", allocs)
	}
}

// TestSplit64Config wires the LPMSplit64 selection through the generic
// classifier: valid for the 128-bit key, rejected for IPv4.
func TestSplit64Config(t *testing.T) {
	cfg := Config{LPM: LPMSplit64}
	c6, err := NewConcurrent[lpm.V6](cfg, nil)
	if err != nil {
		t.Fatalf("LPMSplit64 over V6: %v", err)
	}
	r := rule.Rule6{
		ID: 1, Priority: 1,
		SrcIP:   rule.Prefix6{Addr: rule.Addr6{Hi: 0x20010db8_00000000}, Len: 96},
		DstIP:   rule.Prefix6{Len: 0},
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto:  rule.AnyProto(),
		Action: rule.ActionPermit,
	}
	if _, err := c6.Insert(V6Tuple(r)); err != nil {
		t.Fatal(err)
	}
	hit := rule.Header6{SrcIP: rule.Addr6{Hi: 0x20010db8_00000000, Lo: 42}, Proto: rule.ProtoTCP}
	res, _ := c6.Lookup(V6Header(hit))
	if !res.Found || res.RuleID != 1 {
		t.Fatalf("split64 lookup = %+v, want rule 1", res)
	}
	miss := rule.Header6{SrcIP: rule.Addr6{Hi: 0x20010db8_00000001}, Proto: rule.ProtoTCP}
	if res, _ := c6.Lookup(V6Header(miss)); res.Found {
		t.Fatalf("split64 lookup matched %+v, want miss", res)
	}
	if _, err := NewConcurrent[lpm.V4](cfg, nil); err == nil {
		t.Fatal("LPMSplit64 over V4 must be rejected")
	}
}
