package core

import (
	"fmt"
	"sort"

	"repro/internal/exactmatch"
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/lpm"
	"repro/internal/rangematch"
	"repro/internal/rule"
)

// Classifier is the programmable lookup domain. Field engines are selected
// once per configuration (the decision controller may later switch the LPM
// engine without touching Label Combination or Rule Filter, as Section
// III.E describes), and rules are inserted, deleted and looked up at run
// time.
type Classifier[K lpm.Key[K]] struct {
	cfg Config

	srcEngine lpmEngine[K]
	dstEngine lpmEngine[K]
	spEngine  rangematch.Engine
	dpEngine  rangematch.Engine
	prEngine  exactmatch.Engine

	// Per-field spec tables: unique match specification -> label+refs.
	srcSpecs specTable[lpm.Prefix[K]]
	dstSpecs specTable[lpm.Prefix[K]]
	spSpecs  specTable[rule.PortRange]
	dpSpecs  specTable[rule.PortRange]
	prSpecs  specTable[rule.ProtoMatch]

	// Per-field label priority bounds for ULI pruning: best (minimum)
	// rule priority among rules using the label in that field.
	bounds [numFields]prioTracker

	// filter is the Rule Filter: valid label combinations -> rules,
	// best priority first. It is a flat open-addressing table (see
	// flathash.go) written only at rule-update time, so the per-probe
	// read path costs one linear probe sequence and never allocates.
	filter flatTable[[]ruleRef]

	// Partial-combination validity tables, maintained by the label-rule
	// mapping module of the decision controller (Section III.D): the
	// refcount of rules whose label combination starts with the given
	// 2-, 3- or 4-label prefix (padded to comboKey with label.None). The
	// ULI skips combinations with no valid continuation, which
	// "dramatically reduces" label combination time.
	p2, p3, p4 countTable

	// rules indexes compiled rules by ID for deletion.
	rules map[int]compiledRule[K]

	// counters holds the lookup-path statistics. They are atomic so that
	// concurrent lookups on one snapshot (the Concurrent wrapper runs
	// many readers against the same instance) stay race-free; everything
	// else in the struct is written only while the instance is quiesced.
	counters lookupCounters
}

// numFields is the 5-tuple dimensionality.
const numFields = 5

// comboKey is one label per field, the Rule Filter address.
type comboKey [numFields]label.Label

type ruleRef struct {
	id       int
	priority int
	action   rule.Action
}

type compiledRule[K lpm.Key[K]] struct {
	tuple Tuple[K]
	key   comboKey
}

// Stats aggregates observable behaviour of the lookup domain.
type Stats struct {
	// Rules is the number of installed rules.
	Rules int
	// Labels is the per-field allocated label count.
	Labels [numFields]int
	// HardwareOverflows counts lookups where some field produced more
	// labels than Config.MaxLabels; software results stay exact but the
	// fixed-size hardware lists would have truncated.
	HardwareOverflows int
	// Probes counts Rule Filter probes issued by the ULI; ProbeOps
	// counts lookups, so Probes/ProbeOps is the mean label combination
	// effort.
	Probes   int
	ProbeOps int
	// MaxListLen is the longest per-field label list observed.
	MaxListLen int
	// EngineCycles sums the per-lookup critical-path engine cycles (the
	// slowest of the five parallel field searches).
	EngineCycles int
	// FirstHitProbes sums the probes up to and including the first valid
	// label combination per lookup (the paper's first-match retry loop;
	// for a lookup with no match, every probe counts). Probes beyond the
	// first hit belong to the exact-HPMR supplement and do not stall the
	// hardware pipeline.
	FirstHitProbes int
}

// New returns an empty classifier for the given configuration.
// prefixLens optionally hints the prefix-length distribution to the
// AM-Trie stride chooser; it is ignored by the other engines.
func New[K lpm.Key[K]](cfg Config, prefixLens []uint8) (*Classifier[K], error) {
	cfg = cfg.withDefaults()
	src, err := newLPMEngine[K](cfg, prefixLens)
	if err != nil {
		return nil, fmt.Errorf("source IP engine: %w", err)
	}
	dst, err := newLPMEngine[K](cfg, prefixLens)
	if err != nil {
		return nil, fmt.Errorf("destination IP engine: %w", err)
	}
	sp, err := newRangeEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("source port engine: %w", err)
	}
	dp, err := newRangeEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("destination port engine: %w", err)
	}
	pr, err := newExactEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("protocol engine: %w", err)
	}
	c := &Classifier[K]{
		cfg:       cfg,
		srcEngine: src,
		dstEngine: dst,
		spEngine:  sp,
		dpEngine:  dp,
		prEngine:  pr,
		rules:     make(map[int]compiledRule[K]),
	}
	c.srcSpecs.init()
	c.dstSpecs.init()
	c.spSpecs.init()
	c.dpSpecs.init()
	c.prSpecs.init()
	for f := range c.bounds {
		c.bounds[f].init()
	}
	return c, nil
}

// Config returns the active configuration.
func (c *Classifier[K]) Config() Config { return c.cfg }

// Len returns the number of installed rules.
func (c *Classifier[K]) Len() int { return len(c.rules) }

// Insert installs a rule, performing the update-phase work of the decision
// controller: acquire (or reuse) one label per field spec, write the new
// specs into the field engines, and add the label combination to the Rule
// Filter. The returned cost is the hardware update cost: engine line
// writes plus the two-cycles-per-rule filter write and the extra hash
// pipeline cycle (Section IV.B).
func (c *Classifier[K]) Insert(t Tuple[K]) (hwsim.Cost, error) {
	if _, dup := c.rules[t.ID]; dup {
		return hwsim.Cost{}, fmt.Errorf("rule %d: %w", t.ID, ErrDuplicateRule)
	}
	t.Src = t.Src.Canonical()
	t.Dst = t.Dst.Canonical()
	var cost hwsim.Cost

	var key comboKey
	// Source IP.
	lab, isNew := c.srcSpecs.acquire(t.Src)
	if isNew {
		cost = cost.Add(c.srcEngine.Insert(t.Src, lab))
	}
	key[fieldSrcIP] = lab
	// Destination IP.
	lab, isNew = c.dstSpecs.acquire(t.Dst)
	if isNew {
		cost = cost.Add(c.dstEngine.Insert(t.Dst, lab))
	}
	key[fieldDstIP] = lab
	// Source port.
	lab, isNew = c.spSpecs.acquire(t.SrcPort)
	if isNew {
		ec, err := c.spEngine.Insert(t.SrcPort, lab)
		if err != nil {
			c.rollbackAcquires(t, fieldSrcPort)
			return hwsim.Cost{}, fmt.Errorf("source port engine: %w", err)
		}
		cost = cost.Add(ec)
	}
	key[fieldSrcPort] = lab
	// Destination port.
	lab, isNew = c.dpSpecs.acquire(t.DstPort)
	if isNew {
		ec, err := c.dpEngine.Insert(t.DstPort, lab)
		if err != nil {
			c.rollbackAcquires(t, fieldDstPort)
			return hwsim.Cost{}, fmt.Errorf("destination port engine: %w", err)
		}
		cost = cost.Add(ec)
	}
	key[fieldDstPort] = lab
	// Protocol.
	lab, isNew = c.prSpecs.acquire(t.Proto)
	if isNew {
		if t.Proto.IsWildcard() {
			cost = cost.Add(c.prEngine.InsertWildcard(lab))
		} else {
			ec, err := c.prEngine.Insert(t.Proto.Value, lab)
			if err != nil {
				c.rollbackAcquires(t, fieldProto)
				return hwsim.Cost{}, fmt.Errorf("protocol engine: %w", err)
			}
			cost = cost.Add(ec)
		}
	}
	key[fieldProto] = lab

	// Track per-label priority bounds for the pruned ULI.
	for f := 0; f < numFields; f++ {
		c.bounds[f].add(key[f], t.Priority)
	}
	c.p2.inc(partialKey(key, 2))
	c.p3.inc(partialKey(key, 3))
	c.p4.inc(partialKey(key, 4))

	// Rule Filter write: labels combined and hashed into the table.
	refs := c.filter.ref(key)
	*refs = insertRef(*refs, ruleRef{id: t.ID, priority: t.Priority, action: t.Action})
	cost.Writes++

	// Update cycles follow the paper's download model: the decision
	// controller computes the update in software and streams "lines of
	// information" to the hardware at two clock cycles per line, plus
	// one extra cycle for the rule filter's hash index calculation
	// (Section IV.B). Engine-side reads happen in the control domain
	// and are reported in Reads without consuming hardware cycles.
	cost.Cycles = 2*cost.Writes + 1

	c.rules[t.ID] = compiledRule[K]{tuple: t, key: key}
	return cost, nil
}

// rollbackAcquires releases spec references acquired before a failed
// engine insert. upTo is the field whose engine rejected the spec; fields
// before it were fully acquired, the failing field's spec reference is
// released without touching its engine (the engine never stored it).
func (c *Classifier[K]) rollbackAcquires(t Tuple[K], upTo int) {
	if upTo > fieldSrcIP {
		if _, gone := c.srcSpecs.release(t.Src); gone {
			c.srcEngine.Delete(t.Src)
		}
	}
	if upTo > fieldDstIP {
		if _, gone := c.dstSpecs.release(t.Dst); gone {
			c.dstEngine.Delete(t.Dst)
		}
	}
	if upTo > fieldSrcPort {
		if _, gone := c.spSpecs.release(t.SrcPort); gone {
			c.spEngine.Delete(t.SrcPort)
		}
	}
	if upTo > fieldDstPort {
		if _, gone := c.dpSpecs.release(t.DstPort); gone {
			c.dpEngine.Delete(t.DstPort)
		}
	}
	switch upTo {
	case fieldSrcPort:
		c.spSpecs.release(t.SrcPort)
	case fieldDstPort:
		c.dpSpecs.release(t.DstPort)
	case fieldProto:
		c.prSpecs.release(t.Proto)
	}
}

// Delete removes a rule by ID, releasing labels and engine entries that no
// remaining rule references. Existing labels are never renumbered
// (Section III.D's stable-label requirement).
func (c *Classifier[K]) Delete(id int) (hwsim.Cost, error) {
	cr, ok := c.rules[id]
	if !ok {
		return hwsim.Cost{}, fmt.Errorf("rule %d: %w", id, ErrUnknownRule)
	}
	var cost hwsim.Cost
	t := cr.tuple

	if _, gone := c.srcSpecs.release(t.Src); gone {
		_, dc, _ := c.srcEngine.Delete(t.Src)
		cost = cost.Add(dc)
	}
	if _, gone := c.dstSpecs.release(t.Dst); gone {
		_, dc, _ := c.dstEngine.Delete(t.Dst)
		cost = cost.Add(dc)
	}
	if _, gone := c.spSpecs.release(t.SrcPort); gone {
		_, dc, _ := c.spEngine.Delete(t.SrcPort)
		cost = cost.Add(dc)
	}
	if _, gone := c.dpSpecs.release(t.DstPort); gone {
		_, dc, _ := c.dpEngine.Delete(t.DstPort)
		cost = cost.Add(dc)
	}
	if _, gone := c.prSpecs.release(t.Proto); gone {
		var dc hwsim.Cost
		if t.Proto.IsWildcard() {
			_, dc, _ = c.prEngine.DeleteWildcard()
		} else {
			_, dc, _ = c.prEngine.Delete(t.Proto.Value)
		}
		cost = cost.Add(dc)
	}
	for f := 0; f < numFields; f++ {
		c.bounds[f].remove(cr.key[f], t.Priority)
	}
	c.p2.dec(partialKey(cr.key, 2))
	c.p3.dec(partialKey(cr.key, 3))
	c.p4.dec(partialKey(cr.key, 4))

	if cur, ok := c.filter.get(cr.key); ok {
		if refs := removeRef(cur, id); len(refs) == 0 {
			c.filter.delete(cr.key)
		} else {
			*c.filter.ref(cr.key) = refs
		}
	}
	cost.Writes++
	cost.Cycles = 2*cost.Writes + 1 // same download model as Insert

	delete(c.rules, id)
	return cost, nil
}

// Build bulk-loads a rule list, returning the total update cost — the
// quantity Fig. 3 plots per ruleset. Build is transactional: if any rule
// is rejected, the rules inserted so far are removed again so the
// classifier is exactly as it was before the call (the Concurrent
// wrapper relies on this to keep its snapshot pair in sync across
// failed updates).
func (c *Classifier[K]) Build(ts []Tuple[K]) (hwsim.Cost, error) {
	var total hwsim.Cost
	for i, t := range ts {
		cost, err := c.Insert(t)
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				c.Delete(ts[j].ID)
			}
			return hwsim.Cost{}, fmt.Errorf("insert rule %d: %w", t.ID, err)
		}
		total = total.Add(cost)
	}
	return total, nil
}

// Tuples returns the installed rules sorted by ascending ID — the
// deterministic export order the snapshot subsystem serializes.
func (c *Classifier[K]) Tuples() []Tuple[K] {
	out := make([]Tuple[K], 0, len(c.rules))
	for _, cr := range c.rules {
		out = append(out, cr.tuple)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Replace swaps the entire ruleset for ts in one transactional step:
// every installed rule is removed (in ascending ID order, so replaying
// the mutation on the second RCU instance stays deterministic) and the
// new list is bulk-loaded. On failure the previous ruleset is restored
// and the error returned, so the classifier never ends half-replaced.
// The returned cost is the full teardown-plus-download cost.
func (c *Classifier[K]) Replace(ts []Tuple[K]) (hwsim.Cost, error) {
	old := c.Tuples()
	var total hwsim.Cost
	for _, t := range old {
		dc, err := c.Delete(t.ID)
		if err != nil {
			panic(fmt.Sprintf("core: replace teardown of rule %d failed: %v", t.ID, err))
		}
		total = total.Add(dc)
	}
	bc, err := c.Build(ts)
	if err != nil {
		// Build already unwound its partial inserts; reinstall the old
		// ruleset so the published state is exactly as before.
		if _, rerr := c.Build(old); rerr != nil {
			panic(fmt.Sprintf("core: replace rollback failed after %v: %v", err, rerr))
		}
		return hwsim.Cost{}, err
	}
	return total.Add(bc), nil
}

// Stats returns a snapshot of the accumulated statistics.
func (c *Classifier[K]) Stats() Stats {
	s := Stats{
		Rules: len(c.rules),
		Labels: [numFields]int{
			fieldSrcIP:   c.srcSpecs.len(),
			fieldDstIP:   c.dstSpecs.len(),
			fieldSrcPort: c.spSpecs.len(),
			fieldDstPort: c.dpSpecs.len(),
			fieldProto:   c.prSpecs.len(),
		},
	}
	c.counters.addTo(&s)
	return s
}

// ResetStats clears the lookup counters (rule and label counts are
// recomputed and unaffected).
func (c *Classifier[K]) ResetStats() { c.counters.reset() }

// Memory aggregates the RAM blocks of all engines plus the Rule Filter
// table and the per-field label lists.
func (c *Classifier[K]) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	for _, b := range c.srcEngine.Memory().Blocks {
		mm.Blocks = append(mm.Blocks, prefixBlock("src-", b))
	}
	for _, b := range c.dstEngine.Memory().Blocks {
		mm.Blocks = append(mm.Blocks, prefixBlock("dst-", b))
	}
	for _, b := range c.spEngine.Memory().Blocks {
		mm.Blocks = append(mm.Blocks, prefixBlock("sport-", b))
	}
	for _, b := range c.dpEngine.Memory().Blocks {
		mm.Blocks = append(mm.Blocks, prefixBlock("dport-", b))
	}
	for _, b := range c.prEngine.Memory().Blocks {
		mm.Blocks = append(mm.Blocks, prefixBlock("proto-", b))
	}
	// Rule Filter: one hash line per rule (label combination + rule id +
	// action), dimensioned with 2x slack for the hash load factor.
	mm.Add("rulefilter", numFields*16+20+8, 2*len(c.rules))
	return mm
}

func prefixBlock(prefix string, b hwsim.MemoryBlock) hwsim.MemoryBlock {
	b.Name = prefix + b.Name
	return b
}

// specTable tracks unique field specs with reference counts and stable
// labels.
type specTable[S comparable] struct {
	m     map[S]*specEntry
	alloc label.Allocator
}

type specEntry struct {
	lab  label.Label
	refs int
}

func (t *specTable[S]) init() { t.m = make(map[S]*specEntry) }

func (t *specTable[S]) len() int { return len(t.m) }

// acquire returns the spec's label, allocating one if the spec is new.
func (t *specTable[S]) acquire(s S) (label.Label, bool) {
	if e, ok := t.m[s]; ok {
		e.refs++
		return e.lab, false
	}
	e := &specEntry{lab: t.alloc.Alloc(), refs: 1}
	t.m[s] = e
	return e.lab, true
}

// release drops one reference; when the last reference goes, the label is
// recycled and (label, true) is returned so the caller can remove the spec
// from its engine.
func (t *specTable[S]) release(s S) (label.Label, bool) {
	e, ok := t.m[s]
	if !ok {
		return label.None, false
	}
	e.refs--
	if e.refs > 0 {
		return e.lab, false
	}
	delete(t.m, s)
	t.alloc.Free(e.lab)
	return e.lab, true
}

// prioTracker maintains, per label, the multiset of priorities of rules
// using it, exposing the minimum as the ULI pruning bound. Labels are
// dense small integers, so the minima live in a flat slice indexed by
// label — min() on the lookup hot path is one bounds check and one load,
// while the priority multiset (update-time only) stays in maps.
type prioTracker struct {
	counts map[label.Label]map[int]int
	mins   []labelBound
}

// labelBound is one slot of the flat minimum table; ok distinguishes an
// untracked (stale) label from any real priority value.
type labelBound struct {
	prio int
	ok   bool
}

func (p *prioTracker) init() {
	p.counts = make(map[label.Label]map[int]int)
}

func (p *prioTracker) add(l label.Label, prio int) {
	m := p.counts[l]
	if m == nil {
		m = make(map[int]int)
		p.counts[l] = m
	}
	m[prio]++
	for int(l) >= len(p.mins) {
		p.mins = append(p.mins, labelBound{})
	}
	if b := &p.mins[l]; !b.ok || prio < b.prio {
		b.prio, b.ok = prio, true
	}
}

func (p *prioTracker) remove(l label.Label, prio int) {
	m := p.counts[l]
	if m == nil {
		return
	}
	m[prio]--
	if m[prio] <= 0 {
		delete(m, prio)
	}
	if len(m) == 0 {
		delete(p.counts, l)
		p.mins[l] = labelBound{}
		return
	}
	if p.mins[l].prio == prio {
		best := -1
		for q := range m {
			if best < 0 || q < best {
				best = q
			}
		}
		p.mins[l].prio = best
	}
}

// min returns the best priority bound for the label; ok is false if the
// label is untracked.
func (p *prioTracker) min(l label.Label) (int, bool) {
	if int(l) >= len(p.mins) {
		return 0, false
	}
	b := p.mins[l]
	return b.prio, b.ok
}

func insertRef(refs []ruleRef, r ruleRef) []ruleRef {
	i := 0
	for i < len(refs) && refs[i].priority < r.priority {
		i++
	}
	refs = append(refs, ruleRef{})
	copy(refs[i+1:], refs[i:])
	refs[i] = r
	return refs
}

func removeRef(refs []ruleRef, id int) []ruleRef {
	for i := range refs {
		if refs[i].id == id {
			return append(refs[:i], refs[i+1:]...)
		}
	}
	return refs
}
