package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/rule"
)

// Field indices inside a comboKey, matching the paper's label naming
// L_IPs, L_IPd, L_Ps, L_Pd, L_PRT.
const (
	fieldSrcIP = iota
	fieldDstIP
	fieldSrcPort
	fieldDstPort
	fieldProto
)

// Result is the outcome of one lookup.
type Result struct {
	// RuleID and Priority identify the Highest-Priority Matching Rule.
	RuleID   int
	Priority int
	Action   rule.Action
	// Found is false when no rule matches; the paper discards such
	// packets or punts them to the control platform.
	Found bool
	// Probes is the number of Rule Filter probes the ULI issued — the
	// label combination time of Eq. 1 for this packet.
	Probes int
	// FirstHitProbes is the number of probes up to and including the
	// first valid combination (equal to Probes when nothing matched).
	FirstHitProbes int
}

// Lookup classifies one header: per-field engines produce label lists, the
// ULI combines them against the Rule Filter, and the HPMR (if any) is
// returned. The cost models the hardware pipeline: the engines search in
// parallel (their cycle counts combine by max — "the LPM engine defines
// the critical path"), then each ULI probe costs one cycle.
//
// Lookup mutates only the atomic statistics counters, so any number of
// goroutines may look up concurrently on one instance — provided no
// writer mutates it at the same time. The Concurrent wrapper provides
// that guarantee; bare Classifier users must serialize updates against
// lookups themselves.
//
//repro:noalloc
func (c *Classifier[K]) Lookup(h Header[K]) (Result, hwsim.Cost) {
	bufs := bufPool.Get().(*lookupBuffers)
	res, cost := c.lookupInto(h, bufs)
	bufPool.Put(bufs)
	return res, cost
}

// lookupBuffers holds reusable label-list storage for allocation-free
// lookups in hot loops.
type lookupBuffers struct {
	lists [numFields][]label.Label
}

// bufPool recycles lookupBuffers across lookups (and across classifier
// instances — the buffers carry no per-classifier state). After a few
// lookups the pooled slices hold enough capacity for any label list, so
// the steady-state single-header Lookup path performs zero heap
// allocations.
var bufPool = sync.Pool{New: func() any { return new(lookupBuffers) }}

// LookupBatch classifies headers in order, reusing buffers, and returns
// the results plus the summed cost.
func (c *Classifier[K]) LookupBatch(hs []Header[K]) ([]Result, hwsim.Cost) {
	out := make([]Result, len(hs))
	return out, c.LookupBatchInto(hs, out)
}

// LookupBatchInto classifies headers in order into out[:len(hs)] — the
// allocation-free batch path used by raw-frame ingestion, where the
// caller owns (and pools) the result slab. out must hold at least
// len(hs) results.
//
// Batches of burstFuseMin or more headers run through the stage-fused
// vector kernel (see burst.go), chunked at maxBurst headers per pass;
// shorter batches stay on the header-at-a-time path. Results, costs
// and statistics are identical either way.
//
//repro:noalloc
func (c *Classifier[K]) LookupBatchInto(hs []Header[K], out []Result) hwsim.Cost {
	if len(hs) < burstFuseMin {
		bufs := bufPool.Get().(*lookupBuffers)
		var total hwsim.Cost
		for i, h := range hs {
			r, cost := c.lookupInto(h, bufs)
			out[i] = r
			total = total.Add(cost)
		}
		bufPool.Put(bufs)
		return total
	}
	bufs := burstBufPool.Get().(*burstBuffers)
	var total hwsim.Cost
	for off := 0; off < len(hs); off += maxBurst {
		end := min(off+maxBurst, len(hs))
		total = total.Add(c.lookupBurstInto(hs[off:end], out[off:end], bufs))
	}
	burstBufPool.Put(bufs)
	return total
}

//repro:noalloc
func (c *Classifier[K]) lookupInto(h Header[K], bufs *lookupBuffers) (Result, hwsim.Cost) {
	// Packet Header Partition: each field goes to its engine. The five
	// searches run in parallel in hardware; the stage cost is the
	// slowest engine (the LPM critical path).
	var srcCost, dstCost, spCost, dpCost, prCost hwsim.Cost
	bufs.lists[fieldSrcIP], srcCost = c.srcEngine.Lookup(h.Src, bufs.lists[fieldSrcIP][:0])
	bufs.lists[fieldDstIP], dstCost = c.dstEngine.Lookup(h.Dst, bufs.lists[fieldDstIP][:0])
	bufs.lists[fieldSrcPort], spCost = c.spEngine.Lookup(h.SrcPort, bufs.lists[fieldSrcPort][:0])
	bufs.lists[fieldDstPort], dpCost = c.dpEngine.Lookup(h.DstPort, bufs.lists[fieldDstPort][:0])
	bufs.lists[fieldProto], prCost = c.prEngine.Lookup(h.Proto, bufs.lists[fieldProto][:0])

	engineStage := srcCost.Max(dstCost).Max(spCost).Max(dpCost).Max(prCost)
	cost := hwsim.Cost{
		Cycles: engineStage.Cycles,
		Reads:  srcCost.Reads + dstCost.Reads + spCost.Reads + dpCost.Reads + prCost.Reads,
	}
	c.counters.engineCycles.Add(int64(engineStage.Cycles))

	// Track hardware list-bound behaviour.
	overflow := false
	maxList := 0
	for f := 0; f < numFields; f++ {
		if n := len(bufs.lists[f]); n > maxList {
			maxList = n
		}
		if len(bufs.lists[f]) > c.cfg.MaxLabels {
			overflow = true
		}
	}
	c.counters.observeListLen(maxList)
	if overflow {
		c.counters.hardwareOverflows.Add(1)
	}

	res := c.combine(bufs)
	cost.Cycles += res.Probes + 1 // one cycle per probe, one to emit
	cost.Reads += res.Probes
	c.counters.probes.Add(int64(res.Probes))
	c.counters.firstHitProbes.Add(int64(res.FirstHitProbes))
	c.counters.probeOps.Add(1)
	return res, cost
}

// lookupCounters is the lookup-path slice of Stats, kept atomic so that
// concurrent readers of one snapshot can account without racing.
type lookupCounters struct {
	hardwareOverflows atomic.Int64
	probes            atomic.Int64
	probeOps          atomic.Int64
	maxListLen        atomic.Int64
	engineCycles      atomic.Int64
	firstHitProbes    atomic.Int64
}

// observeListLen raises the max-list-length watermark.
func (lc *lookupCounters) observeListLen(n int) {
	v := int64(n)
	for {
		cur := lc.maxListLen.Load()
		if v <= cur || lc.maxListLen.CompareAndSwap(cur, v) {
			return
		}
	}
}

// addTo merges the counters into a Stats snapshot. Concurrent keeps two
// snapshot instances whose readers alternate, so merging sums the
// counters of both.
func (lc *lookupCounters) addTo(s *Stats) {
	s.HardwareOverflows += int(lc.hardwareOverflows.Load())
	s.Probes += int(lc.probes.Load())
	s.ProbeOps += int(lc.probeOps.Load())
	if ml := int(lc.maxListLen.Load()); ml > s.MaxListLen {
		s.MaxListLen = ml
	}
	s.EngineCycles += int(lc.engineCycles.Load())
	s.FirstHitProbes += int(lc.firstHitProbes.Load())
}

func (lc *lookupCounters) reset() {
	lc.hardwareOverflows.Store(0)
	lc.probes.Store(0)
	lc.probeOps.Store(0)
	lc.maxListLen.Store(0)
	lc.engineCycles.Store(0)
	lc.firstHitProbes.Store(0)
}

// combine is the Unique Label Identifier: it walks label combinations
// (highest-priority labels first) and probes the Rule Filter until the
// HPMR is established. In CombinePruned mode the per-label priority bound
// from the label-rule mapping cuts combinations that cannot beat the best
// match found — the decision-control optimization of Section III.D. In
// CombineExhaustive mode every combination is probed (worst-case LCT,
// Eq. 1).
//
// The walker is iterative — per-field cursor positions plus a bound per
// level, all in fixed-size stack arrays — so the hot path builds no
// closure and performs no recursion; the probe order is the same
// depth-first, highest-priority-labels-first order the hardware follows.
//
//repro:noalloc
func (c *Classifier[K]) combine(bufs *lookupBuffers) Result {
	for f := 0; f < numFields; f++ {
		if len(bufs.lists[f]) == 0 {
			return Result{} // some field matched nothing: no rule can match
		}
	}
	res := Result{}
	best := ruleRef{priority: int(^uint(0) >> 1)}
	found := false
	prune := c.cfg.Combine == CombinePruned

	// key is kept None-padded beyond the current level as an invariant:
	// positions above f always hold label.None, restored on backtrack.
	// The partial-combination probes below can then hash key directly
	// instead of copying and re-padding it per probe (partialKey), which
	// was a measurable share of the ULI walk on ACL-scale rulesets.
	key := comboKey{label.None, label.None, label.None, label.None, label.None}
	var idx [numFields]int       // next label position per level
	var bound [numFields + 1]int // accumulated priority bound per level
	bound[0] = -1
	f := 0
	for f >= 0 {
		if idx[f] == len(bufs.lists[f]) {
			idx[f] = 0
			key[f] = label.None
			f--
			continue // level exhausted: backtrack
		}
		lab := bufs.lists[f][idx[f]]
		idx[f]++
		fieldBound, ok := c.bounds[f].min(lab)
		if !ok {
			continue // stale label: no rule currently uses it
		}
		nb := bound[f]
		if fieldBound > nb {
			nb = fieldBound
		}
		if prune && found && nb >= best.priority {
			continue // cannot beat the HPMR found so far
		}
		key[f] = lab
		// The label-rule mapping tables (Section III.D) record which
		// partial combinations occur in the ruleset; dead branches are
		// never expanded in pruned mode.
		if prune {
			switch f {
			case 1:
				if !c.p2.has(key) {
					continue
				}
			case 2:
				if !c.p3.has(key) {
					continue
				}
			case 3:
				if !c.p4.has(key) {
					continue
				}
			}
		}
		if f == numFields-1 {
			res.Probes++
			if refs, ok := c.filter.get(key); ok {
				if !found {
					res.FirstHitProbes = res.Probes
					found = true
				}
				if refs[0].priority < best.priority {
					best = refs[0]
				}
			}
			continue
		}
		bound[f+1] = nb
		f++
	}

	if !found {
		// No valid combination: hardware detects the miss only after
		// exhausting the permutations.
		res.FirstHitProbes = res.Probes
		return res
	}
	res.RuleID, res.Priority, res.Action, res.Found = best.id, best.priority, best.action, true
	return res
}
