package core

import (
	"math/rand"
	"testing"

	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// configsUnderTest enumerates representative algorithm selections.
func configsUnderTest() map[string]Config {
	return map[string]Config{
		"MBT/bank/direct":  {LPM: LPMMultiBitTrie, Range: RangeRegisterBank, Exact: ExactDirectIndex},
		"BST/bank/direct":  {LPM: LPMBinarySearchTree, Range: RangeRegisterBank, Exact: ExactDirectIndex},
		"AMT/bank/direct":  {LPM: LPMAMTrie, Range: RangeRegisterBank, Exact: ExactDirectIndex},
		"MBT/seg/hash":     {LPM: LPMMultiBitTrie, Range: RangeSegmentTree, Exact: ExactHashTable},
		"BST/rtree/direct": {LPM: LPMBinarySearchTree, Range: RangeRangeTree, Exact: ExactDirectIndex},
		"MBT/exhaustive":   {LPM: LPMMultiBitTrie, Combine: CombineExhaustive},
		"MBT/stride4":      {LPM: LPMMultiBitTrie, MBTStride: 4},
	}
}

func buildClassifier(t *testing.T, cfg Config, s *rule.Set) *Classifier[lpm.V4] {
	t.Helper()
	c, err := New[lpm.V4](cfg, PrefixLens(s))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Build(CompileSet(s)); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func checkAgainstOracle(t *testing.T, c *Classifier[lpm.V4], s *rule.Set, headers []rule.Header, phase string) {
	t.Helper()
	for i, h := range headers {
		got, _ := c.Lookup(V4Header(h))
		want, ok := s.Match(h)
		if got.Found != ok {
			t.Fatalf("%s header %d: Found=%v, oracle=%v (header %+v)", phase, i, got.Found, ok, h)
		}
		if ok && got.RuleID != want.ID {
			t.Fatalf("%s header %d: rule %d (prio %d), oracle rule %d (prio %d)",
				phase, i, got.RuleID, got.Priority, want.ID, want.Priority)
		}
		if ok && got.Action != want.Action {
			t.Fatalf("%s header %d: action %v, oracle %v", phase, i, got.Action, want.Action)
		}
	}
}

func TestClassifierMatchesOracleAllConfigs(t *testing.T) {
	for name, cfg := range configsUnderTest() {
		t.Run(name, func(t *testing.T) {
			for _, fam := range ruleset.Families() {
				s, err := ruleset.Generate(ruleset.Config{Family: fam, Size: 400, Seed: 3})
				if err != nil {
					t.Fatalf("Generate: %v", err)
				}
				trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 1500, HitRatio: 0.8, Seed: 5})
				if err != nil {
					t.Fatalf("GenerateTrace: %v", err)
				}
				c := buildClassifier(t, cfg, s)
				checkAgainstOracle(t, c, s, trace, fam.String())
			}
		})
	}
}

func TestIncrementalInsertEqualsRebuild(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.IPC, Size: 300, Seed: 9})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	tuples := CompileSet(s)
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 800, HitRatio: 0.8, Seed: 6})
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}

	// Classifier A: bulk build. Classifier B: insert shuffled.
	a, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Build(tuples); err != nil {
		t.Fatal(err)
	}
	b, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(4))
	shuffled := append([]Tuple[lpm.V4](nil), tuples...)
	rnd.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, tp := range shuffled {
		if _, err := b.Insert(tp); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for _, h := range trace {
		ra, _ := a.Lookup(V4Header(h))
		rb, _ := b.Lookup(V4Header(h))
		if ra != rb && (ra.RuleID != rb.RuleID || ra.Found != rb.Found) {
			t.Fatalf("order-dependent result: %+v vs %+v", ra, rb)
		}
	}
}

func TestDeleteThenLookup(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 300, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	c := buildClassifier(t, Config{}, s)

	// Delete every third rule, keep an equivalent oracle set.
	var kept []rule.Rule
	for i, r := range s.Rules() {
		if i%3 == 0 {
			if _, err := c.Delete(r.ID); err != nil {
				t.Fatalf("Delete(%d): %v", r.ID, err)
			}
		} else {
			kept = append(kept, r)
		}
	}
	s2, err := rule.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 1500, HitRatio: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, c, s2, trace, "after-delete")

	if c.Len() != len(kept) {
		t.Errorf("Len = %d, want %d", c.Len(), len(kept))
	}
}

func TestDeleteAllEmptiesClassifier(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := buildClassifier(t, Config{}, s)
	for _, r := range s.Rules() {
		if _, err := c.Delete(r.ID); err != nil {
			t.Fatalf("Delete(%d): %v", r.ID, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", c.Len())
	}
	st := c.Stats()
	for f, n := range st.Labels {
		if n != 0 {
			t.Errorf("field %d still has %d labels", f, n)
		}
	}
	res, _ := c.Lookup(Header[lpm.V4]{Src: 1, Dst: 2, Proto: rule.ProtoTCP})
	if res.Found {
		t.Error("empty classifier found a match")
	}
}

func TestDuplicateAndUnknownRuleErrors(t *testing.T) {
	c, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tp := V4Tuple(rule.Rule{
		ID: 1, Priority: 1,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto: rule.ExactProto(rule.ProtoTCP),
	})
	if _, err := c.Insert(tp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(tp); err == nil {
		t.Error("duplicate insert should fail")
	}
	if _, err := c.Delete(99); err == nil {
		t.Error("unknown delete should fail")
	}
}

func TestLabelReuseAcrossRules(t *testing.T) {
	// Two rules sharing the same source prefix must share its label.
	c, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := rule.Prefix{Addr: 0x0a000000, Len: 8}
	r1 := rule.Rule{ID: 1, Priority: 1, SrcIP: shared, SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(80), Proto: rule.ExactProto(rule.ProtoTCP)}
	r2 := rule.Rule{ID: 2, Priority: 2, SrcIP: shared, SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(443), Proto: rule.ExactProto(rule.ProtoTCP)}
	if _, err := c.Insert(V4Tuple(r1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(V4Tuple(r2)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Labels[fieldSrcIP]; got != 1 {
		t.Errorf("source labels = %d, want 1 (shared)", got)
	}
	// Deleting one rule must keep the shared label alive.
	if _, err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Lookup(Header[lpm.V4]{Src: 0x0a000001, Dst: 0, SrcPort: 1, DstPort: 443, Proto: rule.ProtoTCP})
	if !res.Found || res.RuleID != 2 {
		t.Fatalf("lookup after shared-label delete = %+v", res)
	}
}

func TestPrunedVsExhaustiveSameResultFewerProbes(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: 500, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pruned := buildClassifier(t, Config{Combine: CombinePruned}, s)
	exhaustive := buildClassifier(t, Config{Combine: CombineExhaustive}, s)
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 2000, HitRatio: 0.9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		a, _ := pruned.Lookup(V4Header(h))
		b, _ := exhaustive.Lookup(V4Header(h))
		if a.Found != b.Found || a.RuleID != b.RuleID {
			t.Fatalf("pruned %+v != exhaustive %+v", a, b)
		}
	}
	if p, e := pruned.Stats().Probes, exhaustive.Stats().Probes; p > e {
		t.Errorf("pruned probes (%d) exceed exhaustive probes (%d)", p, e)
	}
}

func TestOptimizeSetRemovesShadowedOnly(t *testing.T) {
	rules := []rule.Rule{
		{SrcIP: rule.Prefix{Addr: 0x0a000000, Len: 8}, SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(), Proto: rule.AnyProto()},
		{SrcIP: rule.Prefix{Addr: 0x0a010000, Len: 16}, SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(), Proto: rule.ExactProto(rule.ProtoTCP)}, // shadowed
		{SrcIP: rule.Prefix{Addr: 0x0b000000, Len: 8}, SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(), Proto: rule.AnyProto()},
	}
	s, err := rule.NewSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	opt, removed, err := OptimizeSet(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != 2 {
		t.Fatalf("removed = %v, want [2]", removed)
	}
	if opt.Len() != 2 {
		t.Fatalf("optimized size = %d, want 2", opt.Len())
	}
	// Optimization must not change classification results.
	trace := []rule.Header{
		{SrcIP: 0x0a010101, Proto: rule.ProtoTCP},
		{SrcIP: 0x0b000001, Proto: rule.ProtoUDP},
		{SrcIP: 0x0c000001},
	}
	for _, h := range trace {
		a, okA := s.Match(h)
		b, okB := opt.Match(h)
		if okA != okB || (okA && a.ID != b.ID) {
			t.Fatalf("optimization changed result for %+v: %v/%v vs %v/%v", h, a.ID, okA, b.ID, okB)
		}
	}
}

func TestStatsAndMemory(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := buildClassifier(t, Config{}, s)
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 500, HitRatio: 0.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		c.Lookup(V4Header(h))
	}
	st := c.Stats()
	if st.Rules != 200 {
		t.Errorf("Rules = %d", st.Rules)
	}
	if st.ProbeOps != len(trace) {
		t.Errorf("ProbeOps = %d, want %d", st.ProbeOps, len(trace))
	}
	if st.Probes == 0 {
		t.Error("Probes = 0 after a hit-heavy trace")
	}
	if st.MaxListLen == 0 {
		t.Error("MaxListLen = 0")
	}
	if st.MaxListLen > 5 {
		t.Errorf("MaxListLen = %d exceeds the paper's five-label bound", st.MaxListLen)
	}
	if c.Memory().TotalBytes() == 0 {
		t.Error("memory map empty")
	}
	c.ResetStats()
	if c.Stats().ProbeOps != 0 || c.Stats().Rules != 200 {
		t.Error("ResetStats wrong")
	}
}

func TestThroughputShape(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 3000, HitRatio: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	mbt := buildClassifier(t, Config{LPM: LPMMultiBitTrie}, s)
	bst := buildClassifier(t, Config{LPM: LPMBinarySearchTree}, s)
	for _, h := range trace {
		mbt.Lookup(V4Header(h))
		bst.Lookup(V4Header(h))
	}
	tm, tb := mbt.Throughput(), bst.Throughput()
	// Section IV.D: MBT ~95 Mpps at 200 MHz; BST several times slower.
	if tm.Mpps < 80 || tm.Mpps > 101 {
		t.Errorf("MBT Mpps = %.2f, want ~95", tm.Mpps)
	}
	if ratio := tm.Mpps / tb.Mpps; ratio < 4 || ratio > 16 {
		t.Errorf("MBT/BST throughput ratio = %.1f, want ~8", ratio)
	}
	if tm.Gbps < 40 {
		t.Errorf("MBT Gbps = %.1f, want ~54", tm.Gbps)
	}

	// Fig. 4 shape: lookup cycles grow linearly with PHS size and BST is
	// several times slower.
	mc, bc := mbt.LookupCycles(10000), bst.LookupCycles(10000)
	if bc < 4*mc {
		t.Errorf("BST PHS cycles (%.0f) not >> MBT (%.0f)", bc, mc)
	}
	if mbt.LookupCycles(20000) < 1.9*mc {
		t.Error("lookup cycles not linear in PHS size")
	}
}

func TestUpdateCostShape(t *testing.T) {
	// Fig. 3 shape: BST update lines are close to the rule count (like
	// the original rule filter), MBT update lines are much larger.
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tuples := CompileSet(s)

	mbt, err := New[lpm.V4](Config{LPM: LPMMultiBitTrie}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mbtCost, err := mbt.Build(tuples)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := New[lpm.V4](Config{LPM: LPMBinarySearchTree}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bstCost, err := bst.Build(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if mbtCost.Writes < 3*bstCost.Writes {
		t.Errorf("MBT update writes (%d) should be several times BST writes (%d)", mbtCost.Writes, bstCost.Writes)
	}
	// BST lines stay within a small factor of the rule count.
	if bstCost.Writes > 6*len(tuples) {
		t.Errorf("BST writes (%d) too far above rule count (%d)", bstCost.Writes, len(tuples))
	}
}

func TestClassifierV6(t *testing.T) {
	rnd := rand.New(rand.NewSource(20))
	var tuples []Tuple[lpm.V6]
	var rules6 []rule.Rule6
	for i := 0; i < 200; i++ {
		lens := []uint8{32, 48, 64, 64, 96, 128}
		src := rule.Prefix6{Addr: rule.Addr6{Hi: rnd.Uint64(), Lo: rnd.Uint64()}, Len: lens[rnd.Intn(len(lens))]}.Canonical()
		dst := rule.Prefix6{Addr: rule.Addr6{Hi: rnd.Uint64(), Lo: rnd.Uint64()}, Len: lens[rnd.Intn(len(lens))]}.Canonical()
		r := rule.Rule6{
			ID: i + 1, Priority: i + 1,
			SrcIP: src, DstIP: dst,
			SrcPort: rule.FullPortRange(),
			DstPort: rule.ExactPort(uint16(80 + rnd.Intn(4))),
			Proto:   rule.ExactProto(rule.ProtoTCP),
			Action:  rule.ActionPermit,
		}
		rules6 = append(rules6, r)
		tuples = append(tuples, V6Tuple(r))
	}
	c, err := New[lpm.V6](Config{LPM: LPMBinarySearchTree}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(tuples); err != nil {
		t.Fatal(err)
	}
	// Probe with headers sampled inside rules and random misses.
	for i := 0; i < 1000; i++ {
		var h rule.Header6
		if rnd.Intn(2) == 0 {
			r := rules6[rnd.Intn(len(rules6))]
			h = rule.Header6{
				SrcIP:   r.SrcIP.Addr,
				DstIP:   r.DstIP.Addr,
				SrcPort: uint16(rnd.Intn(1 << 16)),
				DstPort: r.DstPort.Lo,
				Proto:   rule.ProtoTCP,
			}
		} else {
			h = rule.Header6{
				SrcIP: rule.Addr6{Hi: rnd.Uint64(), Lo: rnd.Uint64()},
				DstIP: rule.Addr6{Hi: rnd.Uint64(), Lo: rnd.Uint64()},
				Proto: rule.ProtoUDP,
			}
		}
		got, _ := c.Lookup(V6Header(h))
		// Oracle: linear scan.
		bestPrio, bestID, found := int(^uint(0)>>1), 0, false
		for j := range rules6 {
			if rules6[j].Matches(h) && rules6[j].Priority < bestPrio {
				bestPrio, bestID, found = rules6[j].Priority, rules6[j].ID, true
			}
		}
		if got.Found != found || (found && got.RuleID != bestID) {
			t.Fatalf("v6 lookup = %+v, oracle = (%d,%v)", got, bestID, found)
		}
	}
}

func TestEngineSwitchKeepsResults(t *testing.T) {
	// Section III.E: switching the LPM algorithm leaves the rest of the
	// lookup domain (and results) unchanged. Build the same ruleset under
	// each LPM engine and compare outputs pairwise.
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.IPC, Size: 300, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 1000, HitRatio: 0.8, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	mbt := buildClassifier(t, Config{LPM: LPMMultiBitTrie}, s)
	bst := buildClassifier(t, Config{LPM: LPMBinarySearchTree}, s)
	amt := buildClassifier(t, Config{LPM: LPMAMTrie}, s)
	for _, h := range trace {
		a, _ := mbt.Lookup(V4Header(h))
		b, _ := bst.Lookup(V4Header(h))
		d, _ := amt.Lookup(V4Header(h))
		if a.RuleID != b.RuleID || a.Found != b.Found || a.RuleID != d.RuleID || a.Found != d.Found {
			t.Fatalf("engine switch changed result: MBT %+v BST %+v AMT %+v", a, b, d)
		}
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New[lpm.V4](Config{LPM: LPMAlgo(99)}, nil); err == nil {
		t.Error("bad LPM algo should fail")
	}
	if _, err := New[lpm.V4](Config{Range: RangeAlgo(99)}, nil); err == nil {
		t.Error("bad range algo should fail")
	}
	if _, err := New[lpm.V4](Config{Exact: ExactAlgo(99)}, nil); err == nil {
		t.Error("bad exact algo should fail")
	}
}

func TestNewV4Convenience(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := NewV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 100 {
		t.Errorf("Len = %d", c.Len())
	}
}
