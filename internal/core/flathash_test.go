package core

import (
	"math/rand"
	"testing"

	"repro/internal/label"
	"repro/internal/lpm"
	"repro/internal/ruleset"
)

// TestFlatTableAgainstMap drives a flatTable and a Go map with the same
// randomized insert/delete/get mix and requires identical contents
// throughout — in particular across growth and backward-shift deletion.
func TestFlatTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ft flatTable[int32]
	oracle := map[comboKey]int32{}
	randKey := func() comboKey {
		var k comboKey
		for f := 0; f < numFields; f++ {
			// A tiny label space forces dense collisions and long
			// probe chains.
			k[f] = label.Label(rng.Intn(6))
		}
		return k
	}
	keys := make([]comboKey, 0, 4096)
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(keys) == 0: // upsert
			k := randKey()
			v := int32(rng.Intn(1000))
			*ft.ref(k) = v
			if _, dup := oracle[k]; !dup {
				keys = append(keys, k)
			}
			oracle[k] = v
		case op == 1: // delete (sometimes a missing key)
			k := randKey()
			if rng.Intn(2) == 0 {
				k = keys[rng.Intn(len(keys))]
			}
			ft.delete(k)
			delete(oracle, k)
		default: // point get
			k := keys[rng.Intn(len(keys))]
			got, ok := ft.get(k)
			want, wantOK := oracle[k]
			if ok != wantOK || got != want {
				t.Fatalf("step %d: get(%v) = %d,%v want %d,%v", step, k, got, ok, want, wantOK)
			}
		}
		if ft.len() != len(oracle) {
			t.Fatalf("step %d: len %d, oracle %d", step, ft.len(), len(oracle))
		}
	}
	for k, want := range oracle {
		got, ok := ft.get(k)
		if !ok || got != want {
			t.Fatalf("final: get(%v) = %d,%v want %d,true", k, got, ok, want)
		}
	}
}

// TestCountTable checks the refcount semantics: presence tracks strictly
// positive counts, and dec of a missing key is a no-op.
func TestCountTable(t *testing.T) {
	var ct countTable
	k1 := partialKey(comboKey{1, 2}, 2)
	k2 := partialKey(comboKey{1, 3}, 2)
	ct.dec(k1) // missing: no-op
	if ct.has(k1) {
		t.Fatal("empty table claims presence")
	}
	ct.inc(k1)
	ct.inc(k1)
	ct.inc(k2)
	if !ct.has(k1) || !ct.has(k2) {
		t.Fatal("lost a live combination")
	}
	ct.dec(k1)
	if !ct.has(k1) {
		t.Fatal("count 1 must still be present")
	}
	ct.dec(k1)
	if ct.has(k1) {
		t.Fatal("count 0 must be absent")
	}
	if !ct.has(k2) {
		t.Fatal("unrelated key vanished")
	}
}

// TestLookupZeroAllocs is the steady-state allocation guard for the
// single-header hot path: once the pooled buffers are warm, Lookup must
// not allocate — per field engine, since each engine fills the label
// lists through its own code path.
func TestLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 64, HitRatio: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	headers := make([]Header[lpm.V4], len(trace))
	for i, h := range trace {
		headers[i] = V4Header(h)
	}
	for name, cfg := range configsUnderTest() {
		t.Run(name, func(t *testing.T) {
			c := buildClassifier(t, cfg, s)
			// Warm the pooled buffers and any lazily sized engine state.
			for _, h := range headers {
				c.Lookup(h)
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				c.Lookup(headers[i%len(headers)])
				i++
			})
			if allocs != 0 {
				t.Errorf("Lookup allocates %.1f objects/op on the steady-state path, want 0", allocs)
			}
		})
	}
}
