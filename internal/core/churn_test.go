package core

import (
	"math/rand"
	"testing"

	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// TestChurnDifferential interleaves inserts, deletes and lookups against a
// mirrored oracle rule list, exercising label recycling, partial-map
// refcounts and rule-filter maintenance under sustained update pressure —
// the per-flow-queue router scenario of Section IV.B.
func TestChurnDifferential(t *testing.T) {
	for _, cfgName := range []struct {
		name string
		cfg  Config
	}{
		{"MBT", Config{LPM: LPMMultiBitTrie, Range: RangeSegmentTree}},
		{"BST", Config{LPM: LPMBinarySearchTree, Range: RangeSegmentTree}},
	} {
		cfgName := cfgName
		t.Run(cfgName.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(77))
			c, err := New[lpm.V4](cfgName.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := ruleset.Generate(ruleset.Config{Family: ruleset.IPC, Size: 600, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			candidates := pool.Rules()

			live := make(map[int]rule.Rule)
			nextIdx := 0
			for op := 0; op < 3000; op++ {
				switch {
				case nextIdx < len(candidates) && (len(live) == 0 || rnd.Intn(3) > 0):
					r := candidates[nextIdx]
					nextIdx++
					if _, err := c.Insert(V4Tuple(r)); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					live[r.ID] = r
				case len(live) > 0:
					// Delete a random live rule.
					var id int
					k := rnd.Intn(len(live))
					for cand := range live {
						if k == 0 {
							id = cand
							break
						}
						k--
					}
					if _, err := c.Delete(id); err != nil {
						t.Fatalf("op %d delete(%d): %v", op, id, err)
					}
					delete(live, id)
				}

				// Every few ops, differential-check a handful of lookups.
				if op%7 != 0 {
					continue
				}
				for probe := 0; probe < 5; probe++ {
					var h rule.Header
					if len(live) > 0 && rnd.Intn(2) == 0 {
						// Sample inside a live rule.
						var r rule.Rule
						k := rnd.Intn(len(live))
						for _, cand := range live {
							if k == 0 {
								r = cand
								break
							}
							k--
						}
						h = ruleset.SampleHeader(rnd, &r)
					} else {
						h = rule.Header{
							SrcIP: rnd.Uint32(), DstIP: rnd.Uint32(),
							SrcPort: uint16(rnd.Intn(1 << 16)), DstPort: uint16(rnd.Intn(1 << 16)),
							Proto: uint8(rnd.Intn(256)),
						}
					}
					got, _ := c.Lookup(V4Header(h))
					// Oracle over the live map.
					bestPrio, bestID, found := int(^uint(0)>>1), 0, false
					for _, r := range live {
						if r.Matches(h) && r.Priority < bestPrio {
							bestPrio, bestID, found = r.Priority, r.ID, true
						}
					}
					if got.Found != found || (found && got.RuleID != bestID) {
						t.Fatalf("op %d: lookup %+v = (%d,%v), oracle (%d,%v); %d live rules",
							op, h, got.RuleID, got.Found, bestID, found, len(live))
					}
				}
			}
			if c.Len() != len(live) {
				t.Fatalf("Len = %d, oracle %d", c.Len(), len(live))
			}
		})
	}
}

// TestLabelSpaceStableAcrossChurn verifies the paper's stable-label
// requirement: churn must not grow the label space beyond the live spec
// population (labels are recycled, never renumbered).
func TestLabelSpaceStableAcrossChurn(t *testing.T) {
	c, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, last byte) Tuple[lpm.V4] {
		return V4Tuple(rule.Rule{
			ID: id, Priority: id,
			SrcIP:   rule.Prefix{Addr: 0x0a000000 | uint32(last), Len: 32},
			SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(80),
			Proto: rule.ExactProto(rule.ProtoTCP),
		})
	}
	// Insert/delete the same shape of rule many times.
	for i := 1; i <= 500; i++ {
		if _, err := c.Insert(mk(i, byte(i%8))); err != nil {
			t.Fatal(err)
		}
		if i > 4 {
			if _, err := c.Delete(i - 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	// Only 8 distinct source prefixes ever exist, at most 4 live at once
	// plus the shared port/proto specs; the label space must stay small.
	if st.Labels[fieldSrcIP] > 8 {
		t.Errorf("source label count %d, want <= 8 (labels must be recycled)", st.Labels[fieldSrcIP])
	}
}
