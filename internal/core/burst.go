package core

import (
	"sync"

	"repro/internal/hwsim"
	"repro/internal/label"
)

// The stage-fused vector lookup path. The header-at-a-time path
// (lookupInto) walks all five field engines and the full combine for
// packet i before touching packet i+1, so every header pays cold
// trie and flat-table cache lines: by the time packet i+1 probes the
// source trie, packet i's destination trie, range trees and Rule
// Filter probes have evicted it. The burst kernel instead runs each
// pipeline *stage* across the whole burst before advancing — src-LPM
// over all N headers, then dst-LPM over all N, then the port and
// protocol engines, then the combine+Rule-Filter stage over all N —
// so each stage's tables stay hot for N consecutive uses (the
// VPP/DPDK vector-processing discipline applied to the paper's
// decomposition pipeline).

// maxBurst bounds how many headers one fused pass processes; longer
// batches are chunked. 256 headers keeps the per-field offset tables
// inside the pooled slab small (fixed arrays, no bounds bookkeeping)
// while being far past the point where the locality win saturates.
const maxBurst = 256

// burstFuseMin is the batch length below which LookupBatchInto stays
// on the header-at-a-time path: a 2-3 header batch re-walks every
// stage's tables anyway, so fusion only adds offset bookkeeping.
const burstFuseMin = 4

// burstBuffers is the pooled SoA slab behind the fused kernel. Label
// lists are stored structure-of-arrays: one arena per field holds the
// lists of every header in the burst back to back, and off[f][i]
// delimits header i's slice of field f's arena (off[f][n] closes the
// last one). cyc and rds carry each header's running engine-stage
// cost (max cycles across engines, summed reads) between the engine
// stages and the combine stage.
type burstBuffers struct {
	arena [numFields][]label.Label
	off   [numFields][maxBurst + 1]int32
	cyc   [maxBurst]int32
	rds   [maxBurst]int32
}

// burstBufPool recycles burst slabs across lookups and classifier
// instances (like bufPool, the slabs carry no per-classifier state).
// After a warm-up burst the arenas hold enough capacity for any
// burst's label lists, so the fused batch path performs zero heap
// allocations in steady state.
var burstBufPool = sync.Pool{New: func() any { return new(burstBuffers) }}

// lookupBurstInto classifies hs (len ≤ maxBurst) into out[:len(hs)]
// stage by stage. Per-header results, costs and statistics are
// identical to lookupInto — the engine stage still combines by max
// (the LPM critical path), each ULI probe still costs one cycle, and
// the atomic counters receive the same totals, just batched into one
// update per counter per burst instead of one per header.
//
//repro:noalloc
func (c *Classifier[K]) lookupBurstInto(hs []Header[K], out []Result, bufs *burstBuffers) hwsim.Cost {
	n := len(hs)

	// Stage 1: source-address LPM over the whole burst. The first
	// stage seeds each header's cost accumulators, so no zeroing pass
	// is needed.
	{
		arena := bufs.arena[fieldSrcIP][:0]
		var ec hwsim.Cost
		for i := 0; i < n; i++ {
			bufs.off[fieldSrcIP][i] = int32(len(arena))
			arena, ec = c.srcEngine.Lookup(hs[i].Src, arena)
			bufs.cyc[i] = int32(ec.Cycles)
			bufs.rds[i] = int32(ec.Reads)
		}
		bufs.off[fieldSrcIP][n] = int32(len(arena))
		bufs.arena[fieldSrcIP] = arena
	}

	// Stage 2: destination-address LPM over the whole burst.
	{
		arena := bufs.arena[fieldDstIP][:0]
		var ec hwsim.Cost
		for i := 0; i < n; i++ {
			bufs.off[fieldDstIP][i] = int32(len(arena))
			arena, ec = c.dstEngine.Lookup(hs[i].Dst, arena)
			if v := int32(ec.Cycles); v > bufs.cyc[i] {
				bufs.cyc[i] = v
			}
			bufs.rds[i] += int32(ec.Reads)
		}
		bufs.off[fieldDstIP][n] = int32(len(arena))
		bufs.arena[fieldDstIP] = arena
	}

	// Stage 3: source-port range match over the whole burst.
	{
		arena := bufs.arena[fieldSrcPort][:0]
		var ec hwsim.Cost
		for i := 0; i < n; i++ {
			bufs.off[fieldSrcPort][i] = int32(len(arena))
			arena, ec = c.spEngine.Lookup(hs[i].SrcPort, arena)
			if v := int32(ec.Cycles); v > bufs.cyc[i] {
				bufs.cyc[i] = v
			}
			bufs.rds[i] += int32(ec.Reads)
		}
		bufs.off[fieldSrcPort][n] = int32(len(arena))
		bufs.arena[fieldSrcPort] = arena
	}

	// Stage 4: destination-port range match over the whole burst.
	{
		arena := bufs.arena[fieldDstPort][:0]
		var ec hwsim.Cost
		for i := 0; i < n; i++ {
			bufs.off[fieldDstPort][i] = int32(len(arena))
			arena, ec = c.dpEngine.Lookup(hs[i].DstPort, arena)
			if v := int32(ec.Cycles); v > bufs.cyc[i] {
				bufs.cyc[i] = v
			}
			bufs.rds[i] += int32(ec.Reads)
		}
		bufs.off[fieldDstPort][n] = int32(len(arena))
		bufs.arena[fieldDstPort] = arena
	}

	// Stage 5: protocol exact match over the whole burst.
	{
		arena := bufs.arena[fieldProto][:0]
		var ec hwsim.Cost
		for i := 0; i < n; i++ {
			bufs.off[fieldProto][i] = int32(len(arena))
			arena, ec = c.prEngine.Lookup(hs[i].Proto, arena)
			if v := int32(ec.Cycles); v > bufs.cyc[i] {
				bufs.cyc[i] = v
			}
			bufs.rds[i] += int32(ec.Reads)
		}
		bufs.off[fieldProto][n] = int32(len(arena))
		bufs.arena[fieldProto] = arena
	}

	// Stage 6: combine + Rule Filter over the whole burst. Each
	// header's label lists are recovered as views into the arenas;
	// the ULI walk and the Rule Filter's flat tables stay hot across
	// all N headers. Statistics accumulate locally and hit the atomic
	// counters once per burst — the sums (and the list-length
	// watermark) are exactly what per-header updates would produce.
	var view lookupBuffers
	var total hwsim.Cost
	var probes, firstHit, engCycles int64
	maxList := 0
	overflows := 0
	for i := 0; i < n; i++ {
		overflow := false
		for f := 0; f < numFields; f++ {
			s, e := bufs.off[f][i], bufs.off[f][i+1]
			view.lists[f] = bufs.arena[f][s:e]
			if l := int(e - s); l > maxList {
				maxList = l
			}
			if int(e-s) > c.cfg.MaxLabels {
				overflow = true
			}
		}
		if overflow {
			overflows++
		}
		res := c.combine(&view)
		out[i] = res
		probes += int64(res.Probes)
		firstHit += int64(res.FirstHitProbes)
		engCycles += int64(bufs.cyc[i])
		total.Cycles += int(bufs.cyc[i]) + res.Probes + 1 // one cycle per probe, one to emit
		total.Reads += int(bufs.rds[i]) + res.Probes
	}
	c.counters.engineCycles.Add(engCycles)
	c.counters.observeListLen(maxList)
	if overflows > 0 {
		c.counters.hardwareOverflows.Add(int64(overflows))
	}
	c.counters.probes.Add(probes)
	c.counters.firstHitProbes.Add(firstHit)
	c.counters.probeOps.Add(int64(n))
	return total
}
