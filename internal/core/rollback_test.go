package core

import (
	"math/rand"
	"testing"

	"repro/internal/lpm"
	"repro/internal/rule"
)

// TestInsertRollbackOnEngineFull fills a tiny register bank until the
// port engine rejects a rule, then verifies the failed insert left no
// residue: earlier rules still match, the failed rule does not, spec
// refcounts and labels are consistent, and capacity freed by deletes can
// be reused.
func TestInsertRollbackOnEngineFull(t *testing.T) {
	c, err := New[lpm.V4](Config{Range: RangeRegisterBank, BankCapacity: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, dport uint16) Tuple[lpm.V4] {
		return V4Tuple(rule.Rule{
			ID: id, Priority: id,
			SrcIP:   rule.Prefix{Addr: uint32(id) << 24, Len: 8},
			SrcPort: rule.FullPortRange(), // occupies one bank slot (shared)
			DstPort: rule.ExactPort(dport),
			Proto:   rule.ExactProto(rule.ProtoTCP),
			Action:  rule.ActionPermit,
		})
	}
	// Bank capacity 4: the shared full source range takes one slot in the
	// source bank; distinct destination ports fill the destination bank.
	inserted := 0
	var failedID int
	for i := 1; i <= 10; i++ {
		_, err := c.Insert(mk(i, uint16(1000+i)))
		if err != nil {
			failedID = i
			break
		}
		inserted++
	}
	if failedID == 0 {
		t.Fatal("expected the destination port bank to fill")
	}
	if c.Len() != inserted {
		t.Fatalf("Len = %d, want %d", c.Len(), inserted)
	}

	// Earlier rules still classify correctly.
	for i := 1; i <= inserted; i++ {
		h := Header[lpm.V4]{Src: lpm.V4(uint32(i) << 24), DstPort: uint16(1000 + i), Proto: rule.ProtoTCP}
		res, _ := c.Lookup(h)
		if !res.Found || res.RuleID != i {
			t.Fatalf("rule %d lost after rollback: %+v", i, res)
		}
	}
	// The failed rule must not match anything.
	h := Header[lpm.V4]{Src: lpm.V4(uint32(failedID) << 24), DstPort: uint16(1000 + failedID), Proto: rule.ProtoTCP}
	if res, _ := c.Lookup(h); res.Found {
		t.Fatalf("failed insert left residue: %+v", res)
	}

	// The failed rule's source prefix must not have leaked a label: the
	// label count equals the number of live source prefixes.
	if got := c.Stats().Labels[fieldSrcIP]; got != inserted {
		t.Fatalf("source labels = %d, want %d (no leak from rollback)", got, inserted)
	}

	// Deleting a rule frees bank capacity; the failed rule now fits.
	if _, err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(mk(failedID, uint16(1000+failedID))); err != nil {
		t.Fatalf("insert after freeing capacity: %v", err)
	}
	if res, _ := c.Lookup(h); !res.Found || res.RuleID != failedID {
		t.Fatalf("retried rule does not match: %+v", res)
	}
}

// TestInsertRollbackSharedSpecsSurvive checks that a failed insert does
// not tear down specs shared with live rules.
func TestInsertRollbackSharedSpecsSurvive(t *testing.T) {
	c, err := New[lpm.V4](Config{Range: RangeRegisterBank, BankCapacity: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := rule.Prefix{Addr: 0x0a000000, Len: 8}
	for i, port := range []uint16{80, 8080} {
		ok := V4Tuple(rule.Rule{
			ID: i + 1, Priority: i + 1, SrcIP: shared,
			SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(port),
			Proto: rule.ExactProto(rule.ProtoTCP), Action: rule.ActionPermit,
		})
		if _, err := c.Insert(ok); err != nil {
			t.Fatal(err)
		}
	}
	// This rule shares the source prefix and source range but needs a
	// third destination-bank slot (capacity 2: ports 80 and 8080), so the
	// destination port engine rejects it.
	bad := V4Tuple(rule.Rule{
		ID: 3, Priority: 3, SrcIP: shared,
		SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(443),
		Proto: rule.ExactProto(rule.ProtoTCP), Action: rule.ActionPermit,
	})
	if _, err := c.Insert(bad); err == nil {
		t.Fatal("expected bank-full failure")
	}
	// Rule 1 must still work: the shared specs survived the rollback.
	res, _ := c.Lookup(Header[lpm.V4]{Src: 0x0a000001, DstPort: 80, Proto: rule.ProtoTCP})
	if !res.Found || res.RuleID != 1 {
		t.Fatalf("shared spec torn down by rollback: %+v", res)
	}
	if got := c.Stats().Labels[fieldSrcIP]; got != 1 {
		t.Fatalf("source labels = %d, want 1", got)
	}
}

// TestChurnWithFailuresStaysConsistent mixes failing inserts (bank
// overflow) into churn and verifies the classifier tracks the oracle of
// successful operations only.
func TestChurnWithFailuresStaysConsistent(t *testing.T) {
	c, err := New[lpm.V4](Config{Range: RangeRegisterBank, BankCapacity: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(31))
	live := make(map[int]rule.Rule)
	for op := 0; op < 1500; op++ {
		if len(live) > 0 && rnd.Intn(3) == 0 {
			for id := range live {
				if _, err := c.Delete(id); err != nil {
					t.Fatalf("delete: %v", err)
				}
				delete(live, id)
				break
			}
			continue
		}
		r := rule.Rule{
			ID: op + 1, Priority: op + 1,
			SrcIP:   rule.Prefix{Addr: uint32(rnd.Intn(16)) << 24, Len: 8},
			SrcPort: rule.FullPortRange(),
			DstPort: rule.ExactPort(uint16(rnd.Intn(30))), // up to 30 distinct: overflows the 8-slot bank
			Proto:   rule.ExactProto(rule.ProtoTCP),
			Action:  rule.ActionPermit,
		}
		if _, err := c.Insert(V4Tuple(r)); err == nil {
			live[r.ID] = r
		}
		if op%11 != 0 {
			continue
		}
		// Differential probe.
		h := rule.Header{
			SrcIP:   uint32(rnd.Intn(16)) << 24,
			DstPort: uint16(rnd.Intn(30)),
			Proto:   rule.ProtoTCP,
		}
		got, _ := c.Lookup(V4Header(h))
		bestPrio, bestID, found := int(^uint(0)>>1), 0, false
		for _, r := range live {
			if r.Matches(h) && r.Priority < bestPrio {
				bestPrio, bestID, found = r.Priority, r.ID, true
			}
		}
		if got.Found != found || (found && got.RuleID != bestID) {
			t.Fatalf("op %d: (%d,%v) vs oracle (%d,%v)", op, got.RuleID, got.Found, bestID, found)
		}
	}
}
