package core

import "repro/internal/label"

// The Rule Filter and the partial-combination validity maps are probed on
// every ULI step, so they are stored as flat open-addressing hash tables
// rather than Go maps: one cache line of keys per probe, no per-probe
// hashing interface overhead, and no allocation on the read path. The
// tables are mutated only at rule-update time — the lookup path is
// strictly read-only — so they slot into the RCU snapshot scheme exactly
// like the maps they replace: writers mutate the quiesced instance, and a
// published instance is never resized or shifted under a reader.
//
// Deletion uses backward-shift compaction (no tombstones), keeping probe
// sequences short under churn. Partial keys (the 2-, 3- and 4-label
// prefixes of a combination) are padded with label.None, which no engine
// ever emits, so all tables share one comboKey layout.

// hashCombo mixes the five labels into a table index: each label lands
// in its own bit range of a 64-bit word (labels are small — the
// allocator hands them out densely from zero — so 13-bit rotations
// separate them), and a splitmix64 finalizer avalanches the combined
// word. One probe issues one hash, so its latency sits on the combine
// stage's critical path; the rotate-xor gather is a chain of 1-cycle
// ops where the multiply-per-field FNV chain it replaces cost ~3 cycles
// a field before the finalizer.
//
//repro:noalloc
func hashCombo(k comboKey) uint64 {
	h := uint64(k[0])
	h ^= rotl(uint64(k[1]), 13)
	h ^= rotl(uint64(k[2]), 26)
	h ^= rotl(uint64(k[3]), 39)
	h ^= rotl(uint64(k[4]), 52)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// rotl rotates x left by r (compiles to a single ROL instruction).
//
//repro:noalloc
func rotl(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// keyEqual compares two comboKeys field by field. The explicit compares
// inline to five register tests — spelled `a == b` the compiler routes a
// 20-byte array equality through runtime.memequal, which showed up as a
// top-five profile entry on the ACL-10K lookup path.
//
//repro:noalloc
func keyEqual(a, b comboKey) bool {
	return a[0] == b[0] && a[1] == b[1] && a[2] == b[2] && a[3] == b[3] && a[4] == b[4]
}

// flatTable is an open-addressing comboKey -> V hash table with linear
// probing and backward-shift deletion. The zero value is empty and
// read-only usable; the first put sizes it.
//
// Occupancy lives in a control-byte array (swiss-table style): ctrl[i]
// is 0 for an empty slot, else 0x80 | the top 7 hash bits of the
// resident key. A probe chain scans control bytes — 64 slots per cache
// line — and touches the 20-byte key array only when the tag matches,
// which for the mostly-missing partial-combination probes of the ULI
// walk means most probes cost a single line fetch.
type flatTable[V any] struct {
	ctrl []uint8
	keys []comboKey
	vals []V
	mask uint64
	live int
}

// ctrlTag extracts the control byte for hash h: the top 7 bits, with
// the occupancy bit set so a live tag can never equal the empty
// sentinel 0.
//
//repro:noalloc
func ctrlTag(h uint64) uint8 { return uint8(h>>57) | 0x80 }

const flatTableMinSize = 16 // slots; must be a power of two

// get returns the value stored under k and whether it is present. It is
// the hot-path operation: no allocation, one probe sequence.
//
//repro:noalloc
func (t *flatTable[V]) get(k comboKey) (V, bool) {
	if t.live == 0 {
		var zero V
		return zero, false
	}
	h := hashCombo(k)
	tag := ctrlTag(h)
	i := h & t.mask
	for {
		c := t.ctrl[i]
		if c == 0 {
			var zero V
			return zero, false
		}
		if c == tag && keyEqual(t.keys[i], k) {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// ref returns a pointer to the value stored under k, inserting a zero
// value if absent. The pointer is valid only until the next put/delete
// (growth and backward shifts move entries).
func (t *flatTable[V]) ref(k comboKey) *V {
	if t.live >= len(t.keys)*3/4 {
		t.grow()
	}
	h := hashCombo(k)
	tag := ctrlTag(h)
	i := h & t.mask
	for t.ctrl[i] != 0 {
		if t.ctrl[i] == tag && keyEqual(t.keys[i], k) {
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
	t.ctrl[i] = tag
	t.keys[i] = k
	t.live++
	return &t.vals[i]
}

// delete removes k if present, compacting the probe chain by shifting
// displaced entries back toward their home slots.
func (t *flatTable[V]) delete(k comboKey) {
	if t.live == 0 {
		return
	}
	h := hashCombo(k)
	tag := ctrlTag(h)
	i := h & t.mask
	for t.ctrl[i] != 0 {
		if t.ctrl[i] == tag && keyEqual(t.keys[i], k) {
			t.shiftBack(i)
			t.live--
			return
		}
		i = (i + 1) & t.mask
	}
}

// shiftBack empties slot i, moving each follower of the probe chain back
// one slot unless it already sits at (or cannot reach past) its home.
func (t *flatTable[V]) shiftBack(i uint64) {
	var zero V
	for {
		t.ctrl[i] = 0
		t.vals[i] = zero // release references held by the value
		j := i
		for {
			j = (j + 1) & t.mask
			if t.ctrl[j] == 0 {
				return
			}
			home := hashCombo(t.keys[j]) & t.mask
			// Move j back into i only if its home slot does not lie
			// (cyclically) between i exclusive and j inclusive — i.e. the
			// entry was displaced past i by the chain we are compacting.
			if (j > i && (home <= i || home > j)) || (j < i && home <= i && home > j) {
				t.ctrl[i] = t.ctrl[j]
				t.keys[i] = t.keys[j]
				t.vals[i] = t.vals[j]
				i = j
				break
			}
		}
	}
}

// grow doubles the table (or creates it) and rehashes every live entry.
func (t *flatTable[V]) grow() {
	n := len(t.keys) * 2
	if n < flatTableMinSize {
		n = flatTableMinSize
	}
	oldKeys, oldVals, oldCtrl := t.keys, t.vals, t.ctrl
	t.ctrl = make([]uint8, n)
	t.keys = make([]comboKey, n)
	t.vals = make([]V, n)
	t.mask = uint64(n - 1)
	t.live = 0
	for i, c := range oldCtrl {
		if c != 0 {
			*t.ref(oldKeys[i]) = oldVals[i]
		}
	}
}

// len returns the number of live entries.
func (t *flatTable[V]) len() int { return t.live }

// partialKey pads an f-label combination prefix into the shared comboKey
// layout. label.None never appears in an engine's output list, so padded
// keys cannot collide with shorter or longer prefixes within one table.
func partialKey(k comboKey, f int) comboKey {
	for i := f; i < numFields; i++ {
		k[i] = label.None
	}
	return k
}

// countTable is a flatTable specialized to refcounts: inc/dec maintain
// the invariant that stored counts are strictly positive, so the hot
// path's presence test is get()'s ok bit alone.
type countTable struct {
	flatTable[int32]
}

func (t *countTable) inc(k comboKey) { *t.ref(k)++ }

func (t *countTable) dec(k comboKey) {
	if t.live == 0 {
		return
	}
	h := hashCombo(k)
	tag := ctrlTag(h)
	i := h & t.mask
	for t.ctrl[i] != 0 {
		if t.ctrl[i] == tag && keyEqual(t.keys[i], k) {
			if t.vals[i]--; t.vals[i] <= 0 {
				t.shiftBack(i)
				t.live--
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// has reports whether the combination prefix is live — the ULI's
// partial-combination validity probe.
func (t *countTable) has(k comboKey) bool {
	_, ok := t.get(k)
	return ok
}
