package core

import "repro/internal/label"

// The Rule Filter and the partial-combination validity maps are probed on
// every ULI step, so they are stored as flat open-addressing hash tables
// rather than Go maps: one cache line of keys per probe, no per-probe
// hashing interface overhead, and no allocation on the read path. The
// tables are mutated only at rule-update time — the lookup path is
// strictly read-only — so they slot into the RCU snapshot scheme exactly
// like the maps they replace: writers mutate the quiesced instance, and a
// published instance is never resized or shifted under a reader.
//
// Deletion uses backward-shift compaction (no tombstones), keeping probe
// sequences short under churn. Partial keys (the 2-, 3- and 4-label
// prefixes of a combination) are padded with label.None, which no engine
// ever emits, so all tables share one comboKey layout.

// hashCombo mixes the five labels into a table index. The per-field
// multiply-xor (FNV-style) keeps adjacent label values — the common case,
// since the allocator hands them out densely — well distributed, and the
// splitmix64 finalizer avalanches the low bits that the power-of-two
// masks consume.
//
//repro:noalloc
func hashCombo(k comboKey) uint64 {
	h := uint64(1469598103934665603)
	for f := 0; f < numFields; f++ {
		h ^= uint64(k[f])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// flatTable is an open-addressing comboKey -> V hash table with linear
// probing and backward-shift deletion. The zero value is empty and
// read-only usable; the first put sizes it.
type flatTable[V any] struct {
	keys []comboKey
	vals []V
	used []bool
	mask uint64
	live int
}

const flatTableMinSize = 16 // slots; must be a power of two

// get returns the value stored under k and whether it is present. It is
// the hot-path operation: no allocation, one probe sequence.
//
//repro:noalloc
func (t *flatTable[V]) get(k comboKey) (V, bool) {
	if t.live == 0 {
		var zero V
		return zero, false
	}
	i := hashCombo(k) & t.mask
	for t.used[i] {
		if t.keys[i] == k {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
	var zero V
	return zero, false
}

// ref returns a pointer to the value stored under k, inserting a zero
// value if absent. The pointer is valid only until the next put/delete
// (growth and backward shifts move entries).
func (t *flatTable[V]) ref(k comboKey) *V {
	if t.live >= len(t.keys)*3/4 {
		t.grow()
	}
	i := hashCombo(k) & t.mask
	for t.used[i] {
		if t.keys[i] == k {
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
	t.used[i] = true
	t.keys[i] = k
	t.live++
	return &t.vals[i]
}

// delete removes k if present, compacting the probe chain by shifting
// displaced entries back toward their home slots.
func (t *flatTable[V]) delete(k comboKey) {
	if t.live == 0 {
		return
	}
	i := hashCombo(k) & t.mask
	for t.used[i] {
		if t.keys[i] == k {
			t.shiftBack(i)
			t.live--
			return
		}
		i = (i + 1) & t.mask
	}
}

// shiftBack empties slot i, moving each follower of the probe chain back
// one slot unless it already sits at (or cannot reach past) its home.
func (t *flatTable[V]) shiftBack(i uint64) {
	var zero V
	for {
		t.used[i] = false
		t.vals[i] = zero // release references held by the value
		j := i
		for {
			j = (j + 1) & t.mask
			if !t.used[j] {
				return
			}
			home := hashCombo(t.keys[j]) & t.mask
			// Move j back into i only if its home slot does not lie
			// (cyclically) between i exclusive and j inclusive — i.e. the
			// entry was displaced past i by the chain we are compacting.
			if (j > i && (home <= i || home > j)) || (j < i && home <= i && home > j) {
				t.keys[i] = t.keys[j]
				t.vals[i] = t.vals[j]
				t.used[i] = true
				i = j
				break
			}
		}
	}
}

// grow doubles the table (or creates it) and rehashes every live entry.
func (t *flatTable[V]) grow() {
	n := len(t.keys) * 2
	if n < flatTableMinSize {
		n = flatTableMinSize
	}
	oldKeys, oldVals, oldUsed := t.keys, t.vals, t.used
	t.keys = make([]comboKey, n)
	t.vals = make([]V, n)
	t.used = make([]bool, n)
	t.mask = uint64(n - 1)
	t.live = 0
	for i, u := range oldUsed {
		if u {
			*t.ref(oldKeys[i]) = oldVals[i]
		}
	}
}

// len returns the number of live entries.
func (t *flatTable[V]) len() int { return t.live }

// partialKey pads an f-label combination prefix into the shared comboKey
// layout. label.None never appears in an engine's output list, so padded
// keys cannot collide with shorter or longer prefixes within one table.
func partialKey(k comboKey, f int) comboKey {
	for i := f; i < numFields; i++ {
		k[i] = label.None
	}
	return k
}

// countTable is a flatTable specialized to refcounts: inc/dec maintain
// the invariant that stored counts are strictly positive, so the hot
// path's presence test is get()'s ok bit alone.
type countTable struct {
	flatTable[int32]
}

func (t *countTable) inc(k comboKey) { *t.ref(k)++ }

func (t *countTable) dec(k comboKey) {
	if t.live == 0 {
		return
	}
	i := hashCombo(k) & t.mask
	for t.used[i] {
		if t.keys[i] == k {
			if t.vals[i]--; t.vals[i] <= 0 {
				t.shiftBack(i)
				t.live--
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// has reports whether the combination prefix is live — the ULI's
// partial-combination validity probe.
func (t *countTable) has(k comboKey) bool {
	_, ok := t.get(k)
	return ok
}
