// Package core implements the paper's contribution: the programmable
// multi-dimensional lookup architecture of Fig. 1. A Classifier is the
// lookup domain — Packet Header Partition, per-field Search Engines, Label
// Combination (Unique Label Identifier) and Rule Filter — configured and
// updated by the decision-control functions in this package (algorithm
// selection, rule-to-label compilation, incremental update).
//
// The classifier is generic over the IP address width, so the same
// architecture serves IPv4 and IPv6 rulesets, one of the paper's
// motivating requirements.
package core

import (
	"errors"
	"fmt"

	"repro/internal/exactmatch"
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/lpm"
	"repro/internal/rangematch"
	"repro/internal/rule"
)

// Errors returned by the classifier.
var (
	ErrUnknownAlgorithm = errors.New("unknown algorithm selection")
	ErrDuplicateRule    = errors.New("duplicate rule id")
	ErrUnknownRule      = errors.New("unknown rule id")
)

// LPMAlgo selects the IP-field engine.
type LPMAlgo int

// LPM engine candidates (Section III.C.1).
const (
	// LPMMultiBitTrie is the paper's MBT mode: fast pipelined lookup,
	// storage-hungry updates.
	LPMMultiBitTrie LPMAlgo = iota + 1
	// LPMBinarySearchTree is the paper's BST mode: space-efficient, slow
	// sequential lookup.
	LPMBinarySearchTree
	// LPMAMTrie is the adaptive variable-stride trie.
	LPMAMTrie
	// LPMSplit64 is the first-class IPv6 mode: two 64-bit LPM probes
	// (hi/lo halves of the address) plus a combination table, the yanet2
	// net6 decomposition. Valid only for 128-bit keys.
	LPMSplit64
)

// String returns the mode name used in the figures.
func (a LPMAlgo) String() string {
	switch a {
	case LPMMultiBitTrie:
		return "MBT"
	case LPMBinarySearchTree:
		return "BST"
	case LPMAMTrie:
		return "AM-Trie"
	case LPMSplit64:
		return "Split64"
	default:
		return fmt.Sprintf("lpm(%d)", int(a))
	}
}

// RangeAlgo selects the port-field engine.
type RangeAlgo int

// Range engine candidates (Section III.C.2).
const (
	RangeRegisterBank RangeAlgo = iota + 1
	RangeSegmentTree
	RangeRangeTree
)

// String returns the engine name.
func (a RangeAlgo) String() string {
	switch a {
	case RangeRegisterBank:
		return "RegisterBank"
	case RangeSegmentTree:
		return "SegmentTree"
	case RangeRangeTree:
		return "RangeTree"
	default:
		return fmt.Sprintf("range(%d)", int(a))
	}
}

// ExactAlgo selects the protocol-field engine.
type ExactAlgo int

// Exact engine candidates (Section III.C.3).
const (
	ExactDirectIndex ExactAlgo = iota + 1
	ExactHashTable
)

// String returns the engine name.
func (a ExactAlgo) String() string {
	switch a {
	case ExactDirectIndex:
		return "DirectIndex"
	case ExactHashTable:
		return "HashTable"
	default:
		return fmt.Sprintf("exact(%d)", int(a))
	}
}

// CombineMode selects the ULI strategy.
type CombineMode int

// ULI strategies.
const (
	// CombinePruned is the optimized mode: the decision controller's
	// label-rule mapping provides a per-label best-priority bound, and
	// the ULI prunes label combinations that cannot beat the best match
	// found so far (Section III.D's reduction of label combination time).
	CombinePruned CombineMode = iota + 1
	// CombineExhaustive probes every label combination — the worst-case
	// LCT of Eq. 1, kept for the ablation study.
	CombineExhaustive
)

// Config selects the algorithm set, the pre-lookup decision the paper
// assigns to the Decision Control Domain.
type Config struct {
	LPM   LPMAlgo
	Range RangeAlgo
	Exact ExactAlgo
	// MBTStride is the stride for LPMMultiBitTrie; 0 selects 8 (the
	// four-stage IPv4 pipeline).
	MBTStride int
	// BankCapacity sizes the register bank; 0 selects the default.
	BankCapacity int
	// MaxLabels bounds the per-field label lists; 0 selects the paper's
	// five. Lists that would exceed the bound are still evaluated
	// correctly in software but counted in Stats as hardware overflows.
	MaxLabels int
	// Combine selects the ULI strategy; 0 selects CombinePruned.
	Combine CombineMode
}

func (c Config) withDefaults() Config {
	if c.LPM == 0 {
		c.LPM = LPMMultiBitTrie
	}
	if c.Range == 0 {
		c.Range = RangeRegisterBank
	}
	if c.Exact == 0 {
		c.Exact = ExactDirectIndex
	}
	if c.MBTStride == 0 {
		c.MBTStride = 8
	}
	if c.MaxLabels == 0 {
		c.MaxLabels = label.MaxPerField
	}
	if c.Combine == 0 {
		c.Combine = CombinePruned
	}
	return c
}

// Tuple is a compiled-for-lookup rule over a generic address key.
type Tuple[K lpm.Key[K]] struct {
	ID       int
	Priority int
	Src, Dst lpm.Prefix[K]
	SrcPort  rule.PortRange
	DstPort  rule.PortRange
	Proto    rule.ProtoMatch
	Action   rule.Action
}

// Matches reports whether the tuple matches the header (the reference
// semantics the classifier must agree with).
func (t *Tuple[K]) Matches(h Header[K]) bool {
	return t.Src.Matches(h.Src) && t.Dst.Matches(h.Dst) &&
		t.SrcPort.Matches(h.SrcPort) && t.DstPort.Matches(h.DstPort) &&
		t.Proto.Matches(h.Proto)
}

// Header is the partitioned 5-tuple point over a generic address key.
type Header[K lpm.Key[K]] struct {
	Src, Dst K
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
}

// V4Tuple converts a rule-model rule.
func V4Tuple(r rule.Rule) Tuple[lpm.V4] {
	return Tuple[lpm.V4]{
		ID:       r.ID,
		Priority: r.Priority,
		Src:      lpm.V4Prefix(r.SrcIP),
		Dst:      lpm.V4Prefix(r.DstIP),
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		Proto:    r.Proto,
		Action:   r.Action,
	}
}

// V4Rule converts a compiled IPv4 tuple back to the rule model — the
// inverse of V4Tuple, used by the snapshot path to export installed
// rules. Prefixes come back canonical (Insert canonicalizes them), which
// is the form every parser and engine accepts.
func V4Rule(t Tuple[lpm.V4]) rule.Rule {
	return rule.Rule{
		ID:       t.ID,
		Priority: t.Priority,
		SrcIP:    rule.Prefix{Addr: uint32(t.Src.Key), Len: t.Src.Len},
		DstIP:    rule.Prefix{Addr: uint32(t.Dst.Key), Len: t.Dst.Len},
		SrcPort:  t.SrcPort,
		DstPort:  t.DstPort,
		Proto:    t.Proto,
		Action:   t.Action,
	}
}

// V4Header converts a rule-model header.
func V4Header(h rule.Header) Header[lpm.V4] {
	return Header[lpm.V4]{
		Src: lpm.V4(h.SrcIP), Dst: lpm.V4(h.DstIP),
		SrcPort: h.SrcPort, DstPort: h.DstPort, Proto: h.Proto,
	}
}

// V6Tuple converts a rule-model IPv6 rule.
func V6Tuple(r rule.Rule6) Tuple[lpm.V6] {
	return Tuple[lpm.V6]{
		ID:       r.ID,
		Priority: r.Priority,
		Src:      lpm.V6Prefix(r.SrcIP),
		Dst:      lpm.V6Prefix(r.DstIP),
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		Proto:    r.Proto,
		Action:   r.Action,
	}
}

// V6Rule converts a compiled IPv6 tuple back to the rule model — the
// inverse of V6Tuple, used by the snapshot path. Prefixes come back
// canonical, like V4Rule.
func V6Rule(t Tuple[lpm.V6]) rule.Rule6 {
	return rule.Rule6{
		ID:       t.ID,
		Priority: t.Priority,
		SrcIP:    rule.Prefix6{Addr: rule.Addr6{Hi: t.Src.Key.Hi, Lo: t.Src.Key.Lo}, Len: t.Src.Len},
		DstIP:    rule.Prefix6{Addr: rule.Addr6{Hi: t.Dst.Key.Hi, Lo: t.Dst.Key.Lo}, Len: t.Dst.Len},
		SrcPort:  t.SrcPort,
		DstPort:  t.DstPort,
		Proto:    t.Proto,
		Action:   t.Action,
	}
}

// V6Header converts a rule-model IPv6 header.
func V6Header(h rule.Header6) Header[lpm.V6] {
	return Header[lpm.V6]{
		Src: lpm.V6FromAddr(h.SrcIP), Dst: lpm.V6FromAddr(h.DstIP),
		SrcPort: h.SrcPort, DstPort: h.DstPort, Proto: h.Proto,
	}
}

// lpmEngine is the label-method LPM engine shape shared by MBT and BST.
type lpmEngine[K lpm.Key[K]] interface {
	Insert(p lpm.Prefix[K], lab label.Label) hwsim.Cost
	Delete(p lpm.Prefix[K]) (label.Label, hwsim.Cost, bool)
	Lookup(k K, buf []label.Label) ([]label.Label, hwsim.Cost)
	Len() int
	Memory() hwsim.MemoryMap
}

func newLPMEngine[K lpm.Key[K]](cfg Config, lens []uint8) (lpmEngine[K], error) {
	switch cfg.LPM {
	case LPMMultiBitTrie:
		return lpm.NewMultiBitTrie[K](cfg.MBTStride)
	case LPMBinarySearchTree:
		return lpm.NewBST[K](), nil
	case LPMAMTrie:
		var zero K
		return lpm.NewVariableStrideTrie[K](lpm.ChooseStrides(zero.Bits(), lens, cfg.MBTStride))
	case LPMSplit64:
		var zero K
		if zero.Bits() != 128 {
			return nil, fmt.Errorf("lpm split64 is 128-bit-only (key is %d bits): %w", zero.Bits(), ErrUnknownAlgorithm)
		}
		e, err := lpm.NewSplit6(cfg.MBTStride)
		if err != nil {
			return nil, err
		}
		// The Bits check above guarantees K is the 128-bit key type.
		return any(e).(lpmEngine[K]), nil
	default:
		return nil, fmt.Errorf("lpm algorithm %d: %w", int(cfg.LPM), ErrUnknownAlgorithm)
	}
}

func newRangeEngine(cfg Config) (rangematch.Engine, error) {
	switch cfg.Range {
	case RangeRegisterBank:
		return rangematch.NewRegisterBank(cfg.BankCapacity), nil
	case RangeSegmentTree:
		return rangematch.NewSegmentTree(), nil
	case RangeRangeTree:
		return rangematch.NewRangeTree(), nil
	default:
		return nil, fmt.Errorf("range algorithm %d: %w", int(cfg.Range), ErrUnknownAlgorithm)
	}
}

func newExactEngine(cfg Config) (exactmatch.Engine, error) {
	switch cfg.Exact {
	case ExactDirectIndex:
		return exactmatch.NewDirectIndex(), nil
	case ExactHashTable:
		return exactmatch.NewHashTable(64, 0), nil
	default:
		return nil, fmt.Errorf("exact algorithm %d: %w", int(cfg.Exact), ErrUnknownAlgorithm)
	}
}
