package core

import (
	"testing"

	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

func TestWorstCaseLCT(t *testing.T) {
	c, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.WorstCaseLCT(); got != 1 {
		t.Errorf("empty classifier LCT = %d, want 1", got)
	}
	// Two distinct specs per field -> LCT 2^5 = 32 until the per-field
	// cap kicks in.
	for i := 0; i < 2; i++ {
		r := rule.Rule{
			ID: i + 1, Priority: i + 1,
			SrcIP:   rule.Prefix{Addr: uint32(i+1) << 24, Len: 8},
			DstIP:   rule.Prefix{Addr: uint32(i+10) << 24, Len: 8},
			SrcPort: rule.ExactPort(uint16(100 + i)),
			DstPort: rule.ExactPort(uint16(200 + i)),
			Proto:   rule.ExactProto([]uint8{rule.ProtoTCP, rule.ProtoUDP}[i]),
		}
		if _, err := c.Insert(V4Tuple(r)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.WorstCaseLCT(); got != 32 {
		t.Errorf("LCT = %d, want 32", got)
	}

	// With many specs per field, the paper's five-label bound caps each
	// factor: LCT <= 5^5.
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New[lpm.V4](Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Build(CompileSet(s)); err != nil {
		t.Fatal(err)
	}
	if got, max := big.WorstCaseLCT(), 5*5*5*5*5; got > max {
		t.Errorf("LCT = %d exceeds Eq. 1 bound %d", got, max)
	}
}

func TestPipelineModelShapes(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 2000, HitRatio: 0.9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mbt, _, err := NewV4(Config{LPM: LPMMultiBitTrie}, s)
	if err != nil {
		t.Fatal(err)
	}
	bst, _, err := NewV4(Config{LPM: LPMBinarySearchTree}, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		mbt.Lookup(V4Header(h))
		bst.Lookup(V4Header(h))
	}
	pm, pb := mbt.PipelineModel(), bst.PipelineModel()
	if pm.II != 2 {
		t.Errorf("MBT II = %v, want 2 (pipelined)", pm.II)
	}
	if pb.II <= pm.II {
		t.Errorf("BST II (%v) must exceed MBT II (%v): no pipelining", pb.II, pm.II)
	}
	if pm.Latency <= pm.II {
		t.Errorf("MBT latency (%v) should exceed its II (fill time)", pm.Latency)
	}
	// Stall probability is a probability.
	if pm.StallProb < 0 || pm.StallProb > 1 {
		t.Errorf("StallProb = %v", pm.StallProb)
	}
}
