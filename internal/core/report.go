package core

import (
	"repro/internal/hwsim"
)

// PipelineModel derives the hardware pipeline parameters for the current
// configuration from the observed lookup statistics. Trie engines (MBT,
// AM-Trie) map onto a deeply pipelined datapath: per-level RAM stages
// accept a new header every II cycles, and ULI retries (probes beyond the
// first) stall the pipe. The BST walk is data-dependent and not
// pipelineable, so its initiation interval is the full per-packet cycle
// count.
func (c *Classifier[K]) PipelineModel() hwsim.Pipeline {
	return c.pipelineFor(c.Stats())
}

// pipelineFor derives the pipeline parameters from an explicit statistics
// snapshot — the Concurrent wrapper passes the merged statistics of both
// snapshot instances here.
func (c *Classifier[K]) pipelineFor(s Stats) hwsim.Pipeline {
	ops := s.ProbeOps
	avgEngine := 0.0
	avgProbes := 1.0
	avgFirstHit := 1.0
	if ops > 0 {
		avgEngine = float64(s.EngineCycles) / float64(ops)
		avgProbes = float64(s.Probes) / float64(ops)
		avgFirstHit = float64(s.FirstHitProbes) / float64(ops)
	}
	// Only retries before the first valid combination stall the pipe —
	// the first-match loop of the paper's ULI. The exact-HPMR supplement
	// probes run in the shadow of the next packet's engine stage.
	extra := avgFirstHit - 1
	if extra < 0 {
		extra = 0
	}
	switch c.cfg.LPM {
	case LPMMultiBitTrie, LPMAMTrie:
		depth := 4
		if d, ok := c.srcEngine.(interface{ Depth() int }); ok {
			depth = d.Depth()
		}
		// II of 2: each trie level is a dual-use RAM stage shared with
		// the update port, admitting a new header every other cycle.
		return hwsim.Pipeline{
			Latency:      float64(depth) + 3, // trie stages + ULI + filter + emit
			II:           2,
			StallProb:    clamp01(extra),
			StallPenalty: 2,
		}
	default:
		// Sequential walk: the engine occupies its RAM for the whole
		// lookup, so a new packet starts only when the previous one
		// finishes.
		perPacket := avgEngine + avgProbes + 1
		return hwsim.Pipeline{Latency: perPacket, II: perPacket}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Throughput converts the pipeline model to packet and line rate at the
// paper's 200 MHz clock and 72-byte minimum frames (Section IV.D).
type Throughput struct {
	CyclesPerPacket float64
	Mpps            float64
	Gbps            float64
}

// Throughput reports the steady-state forwarding performance implied by
// the observed statistics.
func (c *Classifier[K]) Throughput() Throughput {
	return throughputFrom(c.PipelineModel())
}

// throughputFrom converts a pipeline model to the paper's Section IV.D
// quantities.
func throughputFrom(p hwsim.Pipeline) Throughput {
	cycles := p.EffectiveII()
	pps := hwsim.PacketsPerSecond(hwsim.DefaultClockHz, cycles)
	return Throughput{
		CyclesPerPacket: cycles,
		Mpps:            hwsim.Mpps(pps),
		Gbps:            hwsim.Gbps(pps, hwsim.MinFrameBytes),
	}
}

// LookupCycles models the total clock cycles to stream n headers through
// the lookup domain with the current pipeline model — the quantity Fig. 4
// plots against packet-header-set size.
func (c *Classifier[K]) LookupCycles(n int) float64 {
	return c.PipelineModel().CyclesFor(n)
}

// WorstCaseLCT evaluates Eq. 1 of the paper: the worst-case label
// combination time, the product of the per-field label-list bounds
// (each capped at Config.MaxLabels, the paper's five). The ULI's pruned
// mode stays far below this; the exhaustive mode approaches it.
func (c *Classifier[K]) WorstCaseLCT() int {
	bound := func(distinct int) int {
		if distinct > c.cfg.MaxLabels {
			return c.cfg.MaxLabels
		}
		if distinct == 0 {
			return 1
		}
		return distinct
	}
	lct := 1
	for _, n := range [numFields]int{
		c.srcSpecs.len(), c.dstSpecs.len(),
		c.spSpecs.len(), c.dpSpecs.len(), c.prSpecs.len(),
	} {
		lct *= bound(n)
	}
	return lct
}
