package core

import (
	"testing"

	"repro/internal/lpm"
	"repro/internal/ruleset"
)

func TestLookupBatchMatchesSingle(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 400, HitRatio: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := NewV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewV4(Config{}, s)
	if err != nil {
		t.Fatal(err)
	}
	headers := make([]Header[lpm.V4], len(trace))
	for i, h := range trace {
		headers[i] = V4Header(h)
	}
	batch, total := a.LookupBatch(headers)
	if len(batch) != len(headers) {
		t.Fatalf("batch returned %d results", len(batch))
	}
	var sum int
	for i, h := range headers {
		single, cost := b.Lookup(h)
		if batch[i] != single {
			t.Fatalf("batch[%d] = %+v, single = %+v", i, batch[i], single)
		}
		sum += cost.Cycles
	}
	if total.Cycles != sum {
		t.Errorf("batch total cycles %d != summed %d", total.Cycles, sum)
	}
}
