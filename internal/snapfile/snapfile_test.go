package snapfile

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rule"
	"repro/internal/ruleset"
)

// corpus generates rulesets across every family — the same generator
// the engines are conformance-tested with, so the snapshot format is
// property-tested against the full spec space (prefix nestings, port
// ranges, wildcard and exact protocols).
func corpus(t *testing.T) map[string][]rule.Rule {
	t.Helper()
	out := make(map[string][]rule.Rule)
	for name, cfg := range map[string]ruleset.Config{
		"acl":  {Family: ruleset.ACL, Size: 150, Seed: 3},
		"fw":   {Family: ruleset.FW, Size: 120, Seed: 4},
		"ipc":  {Family: ruleset.IPC, Size: 100, Seed: 5},
		"acl2": {Family: ruleset.ACL, Size: 40, Seed: 99},
	} {
		s, err := ruleset.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s.Rules()
	}
	out["empty"] = nil
	out["one"] = []rule.Rule{{
		ID: 7, Priority: 9,
		SrcIP:   rule.Prefix{Addr: 0x0a000000, Len: 8},
		SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(443),
		Proto: rule.ExactProto(rule.ProtoTCP), Action: rule.ActionMirror,
	}}
	return out
}

func TestRoundTripProperty(t *testing.T) {
	for name, rules := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			snap := Snapshot{
				Attrs: map[string]string{"backend": "linear", "shards": "4"},
				Rules: rules,
			}
			var buf bytes.Buffer
			if err := Write(&buf, snap); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if len(got.Rules) != len(rules) {
				t.Fatalf("round trip lost rules: %d vs %d", len(got.Rules), len(rules))
			}
			for i := range rules {
				if got.Rules[i] != rules[i] {
					t.Fatalf("rule %d changed:\n  in:  %+v\n  out: %+v", i, rules[i], got.Rules[i])
				}
			}
			if got.Attrs["backend"] != "linear" || got.Attrs["shards"] != "4" {
				t.Fatalf("attrs changed: %v", got.Attrs)
			}
			// Write→Read→Write must be byte-for-byte stable: the format
			// is the persistence layer's identity function.
			var buf2 bytes.Buffer
			if err := Write(&buf2, got); err != nil {
				t.Fatalf("re-Write: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("write/read/write is not byte-stable")
			}
		})
	}
}

// TestRoundTripAgainstRulesetParsing cross-checks the rule body
// serialization against the ClassBench parser the rest of the
// repository uses: the @-body of every snapshot line must re-parse to
// the identical match specification.
func TestRoundTripAgainstRulesetParsing(t *testing.T) {
	for name, rules := range corpus(t) {
		for i := range rules {
			line := FormatRule(rules[i])
			at := strings.Index(line, "@")
			if at < 0 {
				t.Fatalf("%s rule %d: no @ body in %q", name, i, line)
			}
			parsed, err := rule.ParseRule(line[at:])
			if err != nil {
				t.Fatalf("%s rule %d: ParseRule(%q): %v", name, i, line[at:], err)
			}
			want := rules[i]
			parsed.ID, parsed.Priority, parsed.Action = want.ID, want.Priority, want.Action
			if parsed != want {
				t.Fatalf("%s rule %d: classbench round trip changed the rule:\n  in:  %+v\n  out: %+v",
					name, i, want, parsed)
			}
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	rules := corpus(t)["acl"]
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{Rules: rules}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte inside the rule body (past the header lines).
	i := bytes.LastIndexByte(data, '6')
	if i < 0 {
		t.Skip("no mutable digit found")
	}
	mut := append([]byte(nil), data...)
	mut[i] = '7'
	if _, err := Read(bytes.NewReader(mut)); err == nil {
		t.Fatal("corrupted snapshot read back cleanly")
	} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "rule") {
		t.Fatalf("unexpected corruption error: %v", err)
	}
}

func TestRejectsTruncationAndFraming(t *testing.T) {
	rules := corpus(t)["fw"]
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{Rules: rules}); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.SplitAfter(full, "\n")

	cases := map[string]string{
		"truncated":     strings.Join(lines[:len(lines)/2], ""),
		"no magic":      strings.Replace(full, "#repro-snapshot v1", "#repro-snapshot v9", 1),
		"extra rule":    full + lines[len(lines)-2],
		"missing crc":   strings.Replace(full, "#crc32 ", "#crcXX ", 1),
		"empty":         "",
		"garbage":       "hello\nworld\n",
		"header mangle": strings.Replace(full, "#rules ", "#rules x", 1),
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted a malformed snapshot", name)
		}
	}
}

func TestRejectsContractViolations(t *testing.T) {
	ok := rule.Rule{ID: 1, Priority: 1, SrcPort: rule.FullPortRange(),
		DstPort: rule.FullPortRange(), Proto: rule.AnyProto(), Action: rule.ActionPermit}
	for name, rules := range map[string][]rule.Rule{
		"zero id":       {{Priority: 1, SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(), Action: rule.ActionPermit}},
		"zero priority": {{ID: 2, SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(), Action: rule.ActionPermit}},
		"duplicate id":  {ok, ok},
		"bad range": {{ID: 3, Priority: 1, SrcPort: rule.PortRange{Lo: 9, Hi: 1},
			DstPort: rule.FullPortRange(), Action: rule.ActionPermit}},
	} {
		var buf bytes.Buffer
		if err := Write(&buf, Snapshot{Rules: rules}); err == nil {
			t.Errorf("%s: Write accepted an invalid ruleset", name)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{Attrs: map[string]string{"Bad Key": "v"}, Rules: nil}); err == nil {
		t.Error("Write accepted an invalid attr key")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "main.snap")
	rules := corpus(t)["ipc"]
	snap := Snapshot{Attrs: map[string]string{"backend": "tss"}, Rules: rules}
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different snapshot: rename must replace whole
	// files, and no temp litter may remain.
	if err := Save(path, Snapshot{Rules: rules[:10]}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 10 {
		t.Fatalf("loaded %d rules, want 10", len(got.Rules))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1 (temp files must not leak)", len(ents))
	}
	if _, err := Load(filepath.Join(dir, "absent.snap")); err == nil {
		t.Fatal("loading a missing snapshot should fail")
	}
}

func TestReadEOFOnlyAfterFullBody(t *testing.T) {
	// A reader that errors mid-stream must surface the error, not a
	// truncated snapshot.
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{Rules: corpus(t)["acl2"]}); err != nil {
		t.Fatal(err)
	}
	half := io.LimitReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()/2))
	if _, err := Read(half); err == nil {
		t.Fatal("half a snapshot read back cleanly")
	}
}

// TestRoundTripV6 property-tests the IPv6 snapshot family: embedded
// rulesets survive a write/read cycle bit-exactly, and the family
// cross-checks reject mixed or mislabeled snapshots.
func TestRoundTripV6(t *testing.T) {
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 120, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rules6 := ruleset.Embed6Set(s)
	snap := Snapshot{
		Attrs:  map[string]string{FamilyAttr: "v6", "backend": "decomposition"},
		Rules6: rules6,
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Rules) != 0 || len(got.Rules6) != len(rules6) {
		t.Fatalf("round trip families: %d v4 + %d v6, want 0 + %d",
			len(got.Rules), len(got.Rules6), len(rules6))
	}
	for i := range rules6 {
		if got.Rules6[i] != rules6[i] {
			t.Fatalf("rule %d round-tripped to %+v, want %+v", i, got.Rules6[i], rules6[i])
		}
	}
	// A second write of the read-back snapshot must be byte-identical.
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("write-read-write is not byte-stable for v6 snapshots")
	}
	// Family cross-checks.
	if err := Write(io.Discard, Snapshot{Rules6: rules6}); err == nil {
		t.Fatal("IPv6 rules without family=v6 must be rejected")
	}
	if err := Write(io.Discard, Snapshot{
		Attrs: map[string]string{FamilyAttr: "v6"},
		Rules: []rule.Rule{{ID: 1, Priority: 1, SrcPort: rule.FullPortRange(),
			DstPort: rule.FullPortRange(), Proto: rule.AnyProto()}},
	}); err == nil {
		t.Fatal("IPv4 rules in a family=v6 snapshot must be rejected")
	}
	if err := Write(io.Discard, Snapshot{
		Attrs: map[string]string{FamilyAttr: "v9"},
	}); err == nil {
		t.Fatal("unknown family attr must be rejected")
	}
	// ParseRuleLine6 round trip with checksum agreement.
	if Checksum6(rules6) == 0 && len(rules6) > 0 {
		t.Fatal("suspicious zero checksum")
	}
	for i := range rules6 {
		rl, err := ParseRuleLine6(FormatRule6(rules6[i]))
		if err != nil {
			t.Fatalf("ParseRuleLine6: %v", err)
		}
		if rl != rules6[i] {
			t.Fatalf("rule line round trip: %+v vs %+v", rl, rules6[i])
		}
	}
}
