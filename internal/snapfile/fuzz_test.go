package snapfile

import (
	"strings"
	"testing"
)

// FuzzParseRuleLine fuzzes the shared control-plane rule grammar — the
// shape of every ctl INSERT argument list, BULK/SWAP body line and
// snapshot file rule line. The property: the parser never panics, and
// any accepted rule re-renders through FormatRule to a line that parses
// back to the identical rule (the wire and disk forms can never drift).
func FuzzParseRuleLine(f *testing.F) {
	f.Add("1 1 permit @0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00")
	f.Add("42 7 deny @10.0.0.0/8 192.168.1.0/24 1024 : 60000 80 : 80 0x06/0xff")
	f.Add("9 2 queue @255.255.255.255/32 0.0.0.0/0 0 : 0 65535 : 65535 0x11/0xff")
	f.Add("3 1 mirror @1.2.3.4/32 5.6.7.8/32 5 : 5 6 : 6 0x01/0xff")
	f.Add("")
	f.Add("1 1 permit")
	f.Add("0 0 nothing @")
	f.Add("-1 -1 permit @0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00")
	f.Add("1 1 permit @0.0.0.0/40 0.0.0.0/0 9 : 1 0 : 65535 0x00/0x00")
	f.Add("999999999999999999999 1 permit @x")
	f.Add("1 1 permit @\x00\xff garbage")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRuleLine(line)
		if err != nil {
			return
		}
		if r.ID <= 0 || r.Priority <= 0 {
			t.Fatalf("accepted rule with non-positive identity: %+v (from %q)", r, line)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("accepted invalid rule %+v from %q: %v", r, line, err)
		}
		round, err := ParseRuleLine(FormatRule(r))
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", FormatRule(r), line, err)
		}
		if round != r {
			t.Fatalf("round trip changed the rule: %+v -> %+v", r, round)
		}
	})
}

// FuzzRead fuzzes the whole snapshot file grammar. The property: Read
// never panics, and any accepted snapshot survives a Write/Read round
// trip with identical attrs and rules — so no reachable input can
// produce a snapshot the writer cannot faithfully persist.
func FuzzRead(f *testing.F) {
	valid := "#repro-snapshot v1\n" +
		"#attr backend linear\n" +
		"#attr shards 2\n" +
		"#rules 1\n" +
		"#crc32 321f112b\n" +
		"1 1 permit @0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n"
	f.Add([]byte(valid))
	f.Add([]byte("#repro-snapshot v1\n#rules 0\n#crc32 00000000\n"))
	f.Add([]byte("#repro-snapshot v2\n"))
	f.Add([]byte(""))
	f.Add([]byte("#repro-snapshot v1\n#rules 4096\n#crc32 deadbeef\n"))
	f.Add([]byte("#repro-snapshot v1\n#attr a b\n#attr a c\n#rules 0\n#crc32 00000000\n"))
	f.Add([]byte("#repro-snapshot v1\n#rules -1\n#crc32 00000000\n"))
	f.Add([]byte(strings.Repeat("#attr k v\n", 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := Write(&b, s); err != nil {
			t.Fatalf("accepted snapshot does not re-serialize: %v", err)
		}
		back, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("serialized accepted snapshot does not re-read: %v\n%s", err, b.String())
		}
		if len(back.Rules) != len(s.Rules) || len(back.Attrs) != len(s.Attrs) {
			t.Fatalf("round trip changed shape: %d/%d rules, %d/%d attrs",
				len(s.Rules), len(back.Rules), len(s.Attrs), len(back.Attrs))
		}
		for i := range s.Rules {
			if back.Rules[i] != s.Rules[i] {
				t.Fatalf("rule %d changed: %+v -> %+v", i, s.Rules[i], back.Rules[i])
			}
		}
		for k, v := range s.Attrs {
			if back.Attrs[k] != v {
				t.Fatalf("attr %q changed: %q -> %q", k, v, back.Attrs[k])
			}
		}
	})
}
