// Package snapfile defines the on-disk snapshot format for a ruleset:
// the unit the control plane saves, ships and restores atomically. The
// paper's hardware model downloads a whole ruleset as one unit; this
// package is the serialized form of that unit, used by the ctl
// protocol's SNAPSHOT/RESTORE commands and by classifierd's
// -snapshot-dir persistence (save-on-drain, load-on-start).
//
// # File format (version 1)
//
// A snapshot is a line-oriented text file:
//
//	#repro-snapshot v1
//	#attr <key> <value>      (zero or more, sorted by key)
//	#rules <n>
//	#crc32 <8 lowercase hex digits>
//	<id> <prio> <action> @<classbench rule>    (exactly n lines)
//
// The leading magic line carries the format version; unknown versions
// are rejected so a future format change cannot be half-read. Attr
// lines carry optional engine metadata (classifierd records backend,
// shards and cache so a table can be rebuilt from its snapshot alone);
// keys are lowercase [a-z0-9_-], values are single-line. The crc32
// line is an IEEE CRC-32 over the canonical payload — every attr line
// and every rule line, each terminated by '\n' — so truncation,
// reordering and bit rot are all detected before a single rule is
// applied. Rule lines use the shared control-plane shape: numeric ID
// and priority, the action mnemonic, then the rule body in ClassBench
// notation (the same shape as a ctl BULK body line), so a snapshot
// body is both machine-checked and human-diffable. A "family" attr of
// "v6" switches the rule lines to the IPv6 grammar (colon-hex prefixes,
// see FormatRule6); absent or "v4" means IPv4, so existing files stay
// readable.
//
// Rules are written in the order given; engines export snapshots
// sorted by ascending rule ID, which makes a save→restore→save cycle
// byte-for-byte stable. Read validates the version, the rule count,
// the checksum, every rule's structural validity, the non-zero ID and
// priority contract, and ID uniqueness; any failure rejects the whole
// file, never a prefix of it.
package snapfile

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rule"
)

// magic is the version-1 header line.
const magic = "#repro-snapshot v1"

// maxRules bounds one snapshot so a corrupt count cannot drive
// allocation; it comfortably exceeds any ruleset in the paper's scale.
const maxRules = 1 << 22

// Snapshot is one serializable ruleset plus optional engine metadata.
// A snapshot holds either IPv4 rules (Rules) or IPv6 rules (Rules6),
// never both; the "family" attr selects which, defaulting to IPv4 when
// absent so every version-1 file stays readable.
type Snapshot struct {
	// Attrs carries optional key/value metadata (e.g. backend, shards,
	// cache, family). Keys must be lowercase [a-z0-9_-]; values one line.
	Attrs map[string]string
	// Rules is the IPv4 ruleset in serialization order. Every rule must
	// carry a unique non-zero ID and a non-zero priority.
	Rules []rule.Rule
	// Rules6 is the IPv6 ruleset, under the same contract; it requires
	// the "family" attr to be "v6".
	Rules6 []rule.Rule6
}

// FamilyAttr is the attr key selecting the snapshot's rule family.
const FamilyAttr = "family"

// family resolves the snapshot's rule family from its attrs: "" or
// "v4" select IPv4, "v6" selects IPv6, anything else is rejected.
func family(attrs map[string]string) (v6 bool, err error) {
	switch attrs[FamilyAttr] {
	case "", "v4":
		return false, nil
	case "v6":
		return true, nil
	default:
		return false, fmt.Errorf("snapfile: unknown family attr %q", attrs[FamilyAttr])
	}
}

// checkFamily verifies the rule slices agree with the family attr.
func checkFamily(s Snapshot) (v6 bool, err error) {
	v6, err = family(s.Attrs)
	if err != nil {
		return false, err
	}
	if v6 && len(s.Rules) > 0 {
		return false, fmt.Errorf("snapfile: IPv4 rules in a family=v6 snapshot")
	}
	if !v6 && len(s.Rules6) > 0 {
		return false, fmt.Errorf("snapfile: IPv6 rules require the family=v6 attr")
	}
	return v6, nil
}

// FormatRule renders one rule in the shared control-plane line shape:
// "<id> <prio> <action> @<classbench rule>".
func FormatRule(r rule.Rule) string {
	return fmt.Sprintf("%d %d %s %s", r.ID, r.Priority, r.Action, r.String())
}

// ParseRuleLine parses the FormatRule shape — the same grammar as a ctl
// INSERT argument list or BULK body line.
func ParseRuleLine(line string) (rule.Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return rule.Rule{}, fmt.Errorf("want <id> <prio> <action> @rule")
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil || id <= 0 {
		return rule.Rule{}, fmt.Errorf("rule id %q", fields[0])
	}
	prio, err := strconv.Atoi(fields[1])
	if err != nil || prio <= 0 {
		return rule.Rule{}, fmt.Errorf("priority %q", fields[1])
	}
	action, err := rule.ParseAction(strings.ToLower(fields[2]))
	if err != nil {
		return rule.Rule{}, err
	}
	at := strings.Index(line, "@")
	if at < 0 {
		return rule.Rule{}, fmt.Errorf("missing @rule body")
	}
	r, err := rule.ParseRule(line[at:])
	if err != nil {
		return rule.Rule{}, err
	}
	r.ID, r.Priority, r.Action = id, prio, action
	return r, nil
}

// FormatRule6 renders one IPv6 rule in the same line shape, with
// colon-hex prefixes in the address slots.
func FormatRule6(r rule.Rule6) string {
	return fmt.Sprintf("%d %d %s %s", r.ID, r.Priority, r.Action, r.String())
}

// ParseRuleLine6 parses the FormatRule6 shape — the grammar of an IPv6
// table's INSERT argument list and snapshot body lines.
func ParseRuleLine6(line string) (rule.Rule6, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return rule.Rule6{}, fmt.Errorf("want <id> <prio> <action> @rule")
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil || id <= 0 {
		return rule.Rule6{}, fmt.Errorf("rule id %q", fields[0])
	}
	prio, err := strconv.Atoi(fields[1])
	if err != nil || prio <= 0 {
		return rule.Rule6{}, fmt.Errorf("priority %q", fields[1])
	}
	action, err := rule.ParseAction(strings.ToLower(fields[2]))
	if err != nil {
		return rule.Rule6{}, err
	}
	at := strings.Index(line, "@")
	if at < 0 {
		return rule.Rule6{}, fmt.Errorf("missing @rule body")
	}
	r, err := rule.ParseRule6(line[at:])
	if err != nil {
		return rule.Rule6{}, err
	}
	r.ID, r.Priority, r.Action = id, prio, action
	return r, nil
}

// validAttrKey reports whether an attr key is format-safe.
func validAttrKey(k string) bool {
	if k == "" {
		return false
	}
	for _, c := range k {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// attrLines renders the attr header lines sorted by key.
func attrLines(s Snapshot) (string, error) {
	var b strings.Builder
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := s.Attrs[k]
		if !validAttrKey(k) {
			return "", fmt.Errorf("snapfile: invalid attr key %q", k)
		}
		if strings.ContainsAny(v, "\n\r") || v == "" {
			return "", fmt.Errorf("snapfile: invalid attr value %q for key %q", v, k)
		}
		fmt.Fprintf(&b, "#attr %s %s\n", k, v)
	}
	return b.String(), nil
}

// payload renders the checksummed region: sorted attr lines followed by
// rule lines, each '\n'-terminated.
func payload(s Snapshot) (string, error) {
	attrs, err := attrLines(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(attrs)
	for i := range s.Rules {
		b.WriteString(FormatRule(s.Rules[i]))
		b.WriteByte('\n')
	}
	for i := range s.Rules6 {
		b.WriteString(FormatRule6(s.Rules6[i]))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// validateRules enforces the snapshot rule contract shared with the
// Engine API: structural validity, non-zero identity, unique IDs.
func validateRules(rules []rule.Rule) error {
	seen := make(map[int]struct{}, len(rules))
	for i := range rules {
		r := &rules[i]
		if r.ID <= 0 {
			return fmt.Errorf("rule %d: non-positive id %d", i+1, r.ID)
		}
		if r.Priority <= 0 {
			return fmt.Errorf("rule %d: non-positive priority %d", r.ID, r.Priority)
		}
		if err := r.Validate(); err != nil {
			return err
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("rule id %d: %w", r.ID, rule.ErrDuplicateID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}

// validateRules6 is the IPv6 counterpart of validateRules.
func validateRules6(rules []rule.Rule6) error {
	seen := make(map[int]struct{}, len(rules))
	for i := range rules {
		r := &rules[i]
		if r.ID <= 0 {
			return fmt.Errorf("rule %d: non-positive id %d", i+1, r.ID)
		}
		if r.Priority <= 0 {
			return fmt.Errorf("rule %d: non-positive priority %d", r.ID, r.Priority)
		}
		if err := r.Validate(); err != nil {
			return err
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("rule id %d: %w", r.ID, rule.ErrDuplicateID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}

// Write serializes the snapshot. The rules are written in the order
// given; callers wanting the canonical byte-stable form pass them
// sorted by ascending ID (what Engine.Snapshot returns).
func Write(w io.Writer, s Snapshot) error {
	if _, err := checkFamily(s); err != nil {
		return err
	}
	count := len(s.Rules) + len(s.Rules6)
	if count > maxRules {
		return fmt.Errorf("snapfile: %d rules exceeds the %d-rule format bound", count, maxRules)
	}
	if err := validateRules(s.Rules); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	if err := validateRules6(s.Rules6); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	attrs, err := attrLines(s)
	if err != nil {
		return err
	}
	body, err := payload(s)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(magic)
	b.WriteByte('\n')
	b.WriteString(attrs)
	// The count and checksum precede the rules so a reader can size and
	// verify before applying anything.
	fmt.Fprintf(&b, "#rules %d\n", count)
	fmt.Fprintf(&b, "#crc32 %08x\n", crc32.ChecksumIEEE([]byte(body)))
	for i := range s.Rules {
		b.WriteString(FormatRule(s.Rules[i]))
		b.WriteByte('\n')
	}
	for i := range s.Rules6 {
		b.WriteString(FormatRule6(s.Rules6[i]))
		b.WriteByte('\n')
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("snapfile: write: %w", err)
	}
	return nil
}

// Read deserializes and fully validates one snapshot.
func Read(r io.Reader) (Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line, err := nextLine(sc)
	if err != nil {
		return Snapshot{}, err
	}
	if line != magic {
		return Snapshot{}, fmt.Errorf("snapfile: not a snapshot (or unsupported version): %q", line)
	}
	s := Snapshot{}
	var count = -1
	var sum uint32
	var haveSum bool
	// Header lines: attrs, then #rules, then #crc32.
	for {
		line, err = nextLine(sc)
		if err != nil {
			return Snapshot{}, err
		}
		if rest, isAttr := strings.CutPrefix(line, "#attr "); isAttr {
			k, v, ok := strings.Cut(rest, " ")
			if !ok || !validAttrKey(k) || v == "" {
				return Snapshot{}, fmt.Errorf("snapfile: bad attr line %q", line)
			}
			if s.Attrs == nil {
				s.Attrs = make(map[string]string)
			}
			if _, dup := s.Attrs[k]; dup {
				return Snapshot{}, fmt.Errorf("snapfile: duplicate attr %q", k)
			}
			s.Attrs[k] = v
			continue
		}
		if n, ok := strings.CutPrefix(line, "#rules "); ok {
			count, err = strconv.Atoi(n)
			if err != nil || count < 0 || count > maxRules {
				return Snapshot{}, fmt.Errorf("snapfile: bad rule count %q", n)
			}
			continue
		}
		if h, ok := strings.CutPrefix(line, "#crc32 "); ok {
			v, err := strconv.ParseUint(h, 16, 32)
			if err != nil || len(h) != 8 {
				return Snapshot{}, fmt.Errorf("snapfile: bad checksum %q", h)
			}
			sum, haveSum = uint32(v), true
			break // the checksum line closes the header
		}
		return Snapshot{}, fmt.Errorf("snapfile: unexpected header line %q", line)
	}
	if count < 0 || !haveSum {
		return Snapshot{}, fmt.Errorf("snapfile: header missing #rules or #crc32")
	}
	v6, err := family(s.Attrs)
	if err != nil {
		return Snapshot{}, err
	}
	if v6 {
		s.Rules6 = make([]rule.Rule6, 0, count)
	} else {
		s.Rules = make([]rule.Rule, 0, count)
	}
	for i := 0; i < count; i++ {
		line, err = nextLine(sc)
		if err != nil {
			return Snapshot{}, fmt.Errorf("snapfile: rule %d of %d: %w", i+1, count, err)
		}
		if v6 {
			rl, err := ParseRuleLine6(line)
			if err != nil {
				return Snapshot{}, fmt.Errorf("snapfile: rule %d: %w", i+1, err)
			}
			s.Rules6 = append(s.Rules6, rl)
			continue
		}
		rl, err := ParseRuleLine(line)
		if err != nil {
			return Snapshot{}, fmt.Errorf("snapfile: rule %d: %w", i+1, err)
		}
		s.Rules = append(s.Rules, rl)
	}
	if line, err = nextLine(sc); err == nil {
		return Snapshot{}, fmt.Errorf("snapfile: trailing content after %d rules: %q", count, line)
	}
	body, err := payload(s)
	if err != nil {
		return Snapshot{}, err
	}
	if got := crc32.ChecksumIEEE([]byte(body)); got != sum {
		return Snapshot{}, fmt.Errorf("snapfile: checksum mismatch: file says %08x, content is %08x", sum, got)
	}
	if err := validateRules(s.Rules); err != nil {
		return Snapshot{}, fmt.Errorf("snapfile: %w", err)
	}
	if err := validateRules6(s.Rules6); err != nil {
		return Snapshot{}, fmt.Errorf("snapfile: %w", err)
	}
	return s, nil
}

// nextLine returns the next non-empty line, or io.EOF.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// Checksum returns the IEEE CRC-32 of a bare rule list rendered in the
// format's line shape ('\n'-terminated FormatRule lines, no attrs) —
// the integrity check the ctl protocol's SNAPSHOT dump carries so a
// transfer is verifiable end to end with the same arithmetic as the
// file format.
func Checksum(rules []rule.Rule) uint32 {
	h := crc32.NewIEEE()
	for i := range rules {
		io.WriteString(h, FormatRule(rules[i]))
		h.Write([]byte{'\n'})
	}
	return h.Sum32()
}

// Checksum6 is Checksum over IPv6 rule lines.
func Checksum6(rules []rule.Rule6) uint32 {
	h := crc32.NewIEEE()
	for i := range rules {
		io.WriteString(h, FormatRule6(rules[i]))
		h.Write([]byte{'\n'})
	}
	return h.Sum32()
}

// Save writes the snapshot to path atomically: a temp file in the same
// directory is written, synced and renamed over the target, so a crash
// mid-save leaves either the old snapshot or the new one, never a torn
// file — the on-disk analogue of the engine's RCU swap.
func Save(path string, s Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapfile: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapfile: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapfile: %w", err)
	}
	return nil
}

// Load reads and validates the snapshot at path.
func Load(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("snapfile: %w", err)
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}
