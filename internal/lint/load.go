package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checking failures. Analyzers are not run
	// over a package that failed to type-check.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and returns the
// decoded package stream. -export compiles each package just far
// enough to produce export data in the build cache, which is what lets
// the loader type-check against dependencies without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newImporter builds a types.Importer that resolves every import from
// the export-data files go list reported.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkFiles parses and type-checks one package's files with the shared
// importer; type errors are collected rather than aborting so one
// broken package does not hide diagnostics in the others.
func checkFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Fset: fset}
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// Load lists the patterns in module directory dir and returns every
// matched package parsed and type-checked from source (dependencies are
// resolved from export data, never re-checked). Test files are not
// included: the analyzers gate shipped code, and tests legitimately
// exercise states the invariants forbid.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := checkFiles(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// CheckDir type-checks a single directory (a testdata fixture package,
// invisible to go list) against the module rooted at modDir. Imports
// are resolved by listing them with -export, so fixtures may import
// both the standard library and repro packages.
func CheckDir(modDir, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(fileNames)

	// A first parse pass collects the fixture's imports so one go list
	// call can produce export data for exactly what it needs.
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "C" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(modDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	return checkFiles(fset, newImporter(fset, exports), filepath.Base(dir), dir, fileNames)
}
