package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomic field access, the bug
// class the generation counters (flowcache.Cache.gen) and the replica
// pointer (shard.Sharded.replicas) are most exposed to:
//
//   - a plain-typed struct field whose address is passed to a
//     sync/atomic function anywhere in the package must be accessed
//     through sync/atomic everywhere — a single plain load of a
//     generation counter reintroduces exactly the torn read the atomic
//     was bought to prevent;
//
//   - a field whose type is one of the sync/atomic wrapper types
//     (atomic.Uint64, atomic.Pointer[T], ...) must only be used as a
//     method receiver or have its address taken — copying it smuggles
//     a non-atomic read of the underlying word out of the type.
//
// The check is per package, the granularity at which unexported fields
// are reachable.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "flag mixed atomic/plain access to a struct field",
	Run:  runAtomicField,
}

// atomicFuncs is the set of sync/atomic package functions that take
// &field as their first argument.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect the struct fields the package accesses atomically
	// via &field arguments to sync/atomic functions, and remember which
	// selector expressions those arguments are so pass 2 can skip them.
	atomicallyUsed := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !isAtomicPkg(fn.Pkg()) || !atomicFuncs[fn.Name()] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if f, sel := fieldAddrArg(pass.Info, call.Args[0]); f != nil {
				atomicallyUsed[f] = true
				sanctioned[sel] = true
			}
			return true
		})
	}

	// Pass 2: flag every other plain access to those fields, and every
	// copying use of a field whose type is itself a sync/atomic wrapper.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := selectedField(pass.Info, sel)
			if f == nil {
				return true
			}
			if atomicallyUsed[f] && !sanctioned[sel] {
				pass.Reportf(sel.Sel.Pos(),
					"plain access to field %s, which is accessed atomically elsewhere in this package (use sync/atomic consistently)",
					fieldLabel(pass.Info, sel, f))
				return true
			}
			if isAtomicWrapperType(f.Type()) && !atomicMethodContext(stack) {
				pass.Reportf(sel.Sel.Pos(),
					"non-atomic use of %s field %s (copying or overwriting it bypasses the atomic API)",
					f.Type().String(), fieldLabel(pass.Info, sel, f))
			}
			return true
		})
	}
	return nil
}

// fieldAddrArg matches the &x.f shape of a sync/atomic argument and
// returns the field object (origin, so generic instantiations collapse)
// plus the selector node.
func fieldAddrArg(info *types.Info, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return selectedField(info, sel), sel
}

// selectedField resolves a selector to the struct field it names, or
// nil for methods, package selectors and qualified identifiers.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var).Origin()
}

// isAtomicWrapperType reports whether t is one of the sync/atomic
// wrapper types (atomic.Bool through atomic.Value, incl. Pointer[T]).
func isAtomicWrapperType(t types.Type) bool {
	n := namedOrigin(t)
	return n != nil && isAtomicPkg(n.Obj().Pkg())
}

// atomicMethodContext reports whether the innermost selector on the
// stack is used in one of the sanctioned shapes for an atomic-typed
// field: as the receiver of a (method) selector, or with its address
// taken.
func atomicMethodContext(stack []ast.Node) bool {
	// stack[len-1] is the selector itself; find its parent, skipping
	// any wrapping parentheses.
	i := len(stack) - 2
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.SelectorExpr:
		// Field is the base of a further selection: x.f.Load() — the
		// method selector on the atomic value.
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// fieldLabel renders Type.field for diagnostics.
func fieldLabel(info *types.Info, sel *ast.SelectorExpr, f *types.Var) string {
	if n := namedOrigin(info.TypeOf(sel.X)); n != nil {
		return n.Obj().Name() + "." + f.Name()
	}
	return f.Name()
}
