package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestNoAllocAnnotationsHaveGuards cross-checks the two halves of the
// allocation-free contract: the //repro:noalloc directive gives the
// build-time (analyzer) half, and a testing.AllocsPerRun guard in the
// same package gives the runtime half. Every exported annotated
// function must be called from a test file in its package that uses
// AllocsPerRun — so neither half can silently rot while the other
// appears green. (Unexported helpers are covered transitively through
// the exported entry points that call them.)
func TestNoAllocAnnotationsHaveGuards(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	annotated := map[string][]string{}      // package dir -> exported annotated function names
	guarded := map[string]map[string]bool{} // package dir -> names called in AllocsPerRun test files

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".go" {
			return nil
		}
		dir := filepath.Dir(path)
		if strings.HasSuffix(path, "_test.go") {
			f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			usesAllocsPerRun := false
			calls := map[string]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fn := call.Fun.(type) {
				case *ast.Ident:
					calls[fn.Name] = true
				case *ast.SelectorExpr:
					calls[fn.Sel.Name] = true
					if fn.Sel.Name == "AllocsPerRun" {
						usesAllocsPerRun = true
					}
				}
				return true
			})
			if usesAllocsPerRun {
				if guarded[dir] == nil {
					guarded[dir] = map[string]bool{}
				}
				for c := range calls {
					guarded[dir][c] = true
				}
			}
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !lint.HasNoAllocDirective(fd) || !fd.Name.IsExported() {
				continue
			}
			annotated[dir] = append(annotated[dir], fd.Name.Name)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(annotated) == 0 {
		t.Fatal("no //repro:noalloc annotations found anywhere; the hot-path contract has been deleted, not satisfied")
	}
	for dir, names := range annotated {
		rel, _ := filepath.Rel(root, dir)
		for _, name := range names {
			if !guarded[dir][name] {
				t.Errorf("%s: %s is annotated %s but no test in the package calls it under testing.AllocsPerRun",
					rel, name, lint.NoAllocDirective)
			}
		}
	}
}
