package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// CtlErr enforces the ctl line protocol's first-token contract: every
// line written on a control connection leads with a known protocol
// verb, so clients (and the future typed control plane) can dispatch on
// the first word without ever guessing. Two shapes are checked:
//
//   - return values of response-producing functions — methods on a
//     `session` type and functions named dispatch* whose first result
//     is a string;
//
//   - fmt.Fprint/Fprintf/Fprintln writes whose destination is a
//     net.Conn.
//
// Only statically-analyzable strings are checked: literals, literal
// Sprintf formats, constants, "ERR " + err concatenations, and locals
// whose initializer is one of those. A response assembled dynamically
// (strings.Builder) is skipped, not guessed at.
var CtlErr = &Analyzer{
	Name: "ctlerr",
	Doc:  "flag ctl protocol lines whose first token is not a known protocol verb",
	Run:  runCtlErr,
}

// ctlVerbs is every token that may legally start a line of the ctl
// protocol, responses and requests both (the client and server share
// one wire, so both directions are gated). Mirrors the grammar in the
// internal/ctl package comment.
var ctlVerbs = map[string]bool{
	// Response verbs.
	"OK": true, "ERR": true, "MATCH": true, "NOMATCH": true,
	"RESULTS": true, "STATS": true, "THROUGHPUT": true, "TABLES": true,
	"SNAPSHOT": true, "BYE": true,
	// Request verbs.
	"TABLE": true, "INSERT": true, "BULK": true, "DELETE": true,
	"LOOKUP": true, "MLOOKUP": true, "RESTORE": true, "RESET": true,
	"SWAP": true, "QUIT": true,
}

func runCtlErr(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isResponseProducer(pass, fd) {
				checkResponseReturns(pass, fd)
			}
			checkConnWrites(pass, fd)
		}
	}
	return nil
}

// isResponseProducer reports whether fd's return values are protocol
// responses: a method on a type named session, or a dispatch* function,
// whose first result is a string.
func isResponseProducer(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	first := pass.Info.TypeOf(fd.Type.Results.List[0].Type)
	if !isStringType(first) {
		return false
	}
	if strings.HasPrefix(fd.Name.Name, "dispatch") {
		return true
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if n := namedOrigin(pass.Info.TypeOf(fd.Recv.List[0].Type)); n != nil {
			return n.Obj().Name() == "session"
		}
	}
	return false
}

// checkResponseReturns validates the first token of every statically-
// known string returned as the response value.
func checkResponseReturns(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		checkProtocolString(pass, fd, ret.Results[0])
		return true
	})
}

// checkConnWrites validates fmt.Fprint* calls that write directly to a
// net.Conn.
func checkConnWrites(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
			return true
		}
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
		default:
			return true
		}
		if len(call.Args) < 2 || !isNetConn(pass.Info.TypeOf(call.Args[0])) {
			return true
		}
		checkProtocolString(pass, fd, call.Args[1])
		return true
	})
}

// isNetConn reports whether t is net.Conn (or implements it as a named
// non-interface connection type from package net).
func isNetConn(t types.Type) bool {
	n := namedOrigin(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net" &&
		(obj.Name() == "Conn" || strings.HasSuffix(obj.Name(), "Conn"))
}

// checkProtocolString extracts the statically-known leading text of the
// expression and reports when its first token is not a protocol verb.
func checkProtocolString(pass *Pass, fd *ast.FuncDecl, e ast.Expr) {
	prefix, known := staticPrefix(pass, fd, e, 4)
	if !known {
		return
	}
	tok := firstToken(prefix)
	if tok == "" {
		// The static prefix ended before a token boundary (e.g. a
		// format starting with a verb placeholder); nothing to judge.
		return
	}
	if !ctlVerbs[tok] {
		pass.Reportf(e.Pos(),
			"ctl protocol line starts with %q, not a protocol verb (want one of the grammar's first tokens, e.g. OK/ERR/MATCH)", tok)
	}
}

// staticPrefix computes the compile-time-known leading text of a string
// expression: literals and constants yield themselves, Sprintf yields
// its literal format, X + Y yields X's prefix, and a local variable
// yields the prefix of its initializer. known is false when nothing
// static can be said.
func staticPrefix(pass *Pass, fd *ast.FuncDecl, e ast.Expr, depth int) (prefix string, known bool) {
	if depth == 0 {
		return "", false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
		return "", false
	case *ast.Ident:
		// A constant: use its value. A local variable: follow its
		// initializer once.
		obj := pass.Info.Uses[e]
		switch obj := obj.(type) {
		case *types.Const:
			if obj.Val().Kind() == constant.String {
				return constant.StringVal(obj.Val()), true
			}
		case *types.Var:
			if init := localInit(pass, fd, obj); init != nil {
				return staticPrefix(pass, fd, init, depth-1)
			}
		}
		return "", false
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return staticPrefix(pass, fd, e.X, depth-1)
		}
		return "", false
	case *ast.CallExpr:
		fn := calleeFunc(pass.Info, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf" && len(e.Args) > 0 {
			format, ok := staticPrefix(pass, fd, e.Args[0], depth-1)
			if !ok {
				return "", false
			}
			// The format is static only up to its first verb.
			if i := strings.IndexByte(format, '%'); i >= 0 {
				format = format[:i]
			}
			return format, true
		}
		return "", false
	}
	return "", false
}

// localInit finds the := / var initializer of a local variable inside
// fd, or nil when the variable is assigned more than once (its value is
// then not static).
func localInit(pass *Pass, fd *ast.FuncDecl, v *types.Var) ast.Expr {
	var init ast.Expr
	assigns := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if pass.Info.Defs[id] == v {
					if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
						init = n.Rhs[i]
					}
				} else if pass.Info.Uses[id] == v && n.Tok != token.ADD_ASSIGN {
					// Reassigned (not just appended to): the initial
					// prefix no longer describes the returned value.
					assigns++
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.Defs[name] == v && i < len(n.Values) {
					init = n.Values[i]
				}
			}
		}
		return true
	})
	if assigns > 0 {
		return nil
	}
	return init
}

// firstToken returns the first space-delimited token of s fully
// contained in the static prefix: the token must be terminated by a
// space, newline or the end of a string that is known in full. A
// prefix that ends mid-word (Sprintf format cut at a verb) yields "".
func firstToken(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\n' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}
