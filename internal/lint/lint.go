// Package lint is the repro static-analysis suite: a minimal, self-
// contained go/analysis-style framework plus four analyzers that turn
// the repository's hand-maintained concurrency and hot-path invariants
// into machine-checked build-time properties.
//
// The framework mirrors the golang.org/x/tools/go/analysis surface
// (Analyzer, Pass, Diagnostic) but is built entirely on the standard
// library — go/parser and go/types over export data produced by
// `go list -export` — so the suite runs offline with no module
// dependencies. cmd/reprolint is the multichecker binary over these
// analyzers; `go run ./cmd/reprolint ./...` checks the whole module.
//
// # Checked invariants
//
// rcusafe: a value obtained from an RCU read — rcu.Handle.Value, an
// atomic.Pointer Load, or an engine Snapshot — is a published snapshot
// and must be treated as frozen. The analyzer flags writes to memory
// reachable from such a value, including slice-element, map and
// aliased writes.
//
// atomicfield: a struct field accessed via sync/atomic anywhere must
// be accessed atomically everywhere. The analyzer flags plain reads
// and writes of fields that are elsewhere passed to sync/atomic
// functions, and plain copies or stores of fields whose type is one of
// the sync/atomic wrapper types.
//
// noalloc: functions carrying a `//repro:noalloc` directive in their
// doc comment must not contain allocation-introducing constructs. The
// check is intraprocedural and complements the runtime AllocsPerRun
// guards (which cannot run under -race).
//
// ctlerr: ctl responses and wire writes must keep the line protocol's
// first-token contract: every statically-analyzable response string
// must lead with a known protocol verb.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, structurally compatible with the
// golang.org/x/tools/go/analysis Analyzer so the suite can migrate to
// the upstream framework without rewriting the checks.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI filters.
	Name string
	// Doc is the one-paragraph description shown by reprolint -help.
	Doc string
	// Run reports diagnostics for one type-checked package via
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Report records one diagnostic. The framework fills in the
	// analyzer name.
	Report func(Diagnostic)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the repro analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{RCUSafe, AtomicField, NoAlloc, CtlErr}
}

// Run executes the analyzers over one loaded package and returns the
// diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// NoAllocDirective is the annotation that opts a function into the
// noalloc analyzer; it must appear as its own line in the function's
// doc comment, directive-style (no space after the slashes).
const NoAllocDirective = "//repro:noalloc"

// HasNoAllocDirective reports whether the function declaration carries
// the //repro:noalloc annotation.
func HasNoAllocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == NoAllocDirective || strings.HasPrefix(text, NoAllocDirective+" ") {
			return true
		}
	}
	return false
}

// pointerShaped reports whether a value of type t is represented as a
// single pointer word at runtime, so converting it to an interface
// stores the value inline without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// aliasKind reports whether a value of type t shares underlying memory
// when copied (so taint must follow assignments of it).
func aliasKind(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// isAtomicPkg reports whether pkg is sync/atomic (or its race-build
// internal twin).
func isAtomicPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "sync/atomic" || pkg.Path() == "internal/race/atomic")
}

// namedOrigin returns the origin named type behind t, unwrapping
// pointers, aliases and generic instantiation; nil when t has none.
func namedOrigin(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
