package lint

import (
	"go/ast"
	"go/types"
)

// RCUSafe flags writes to memory reachable from an RCU-published value.
//
// The left-right snapshot scheme (internal/rcu), the flow cache's
// atomic.Pointer slots and every engine's Snapshot export all share one
// contract: once a value is published through an atomic pointer, it is
// frozen — readers hold it without locks, so any in-place mutation is a
// data race even when -race happens not to catch it. The analyzer
// treats the results of
//
//   - rcu.Handle.Value (and rcu.Store.Acquire via Value),
//   - any (*sync/atomic.Pointer[T]).Load, and
//   - any zero-argument Snapshot method returning a slice
//
// as frozen, propagates that taint through aliasing assignments
// (pointers, slices, maps, interfaces — value copies of structs and
// scalars drop it), and reports assignments, copy calls and appends
// whose destination lies inside frozen memory. The analysis is
// intraprocedural: taint does not cross function boundaries.
var RCUSafe = &Analyzer{
	Name: "rcusafe",
	Doc:  "flag writes to memory reachable from RCU snapshots, atomic.Pointer loads and engine Snapshot results",
	Run:  runRCUSafe,
}

func runRCUSafe(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkRCUFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// frozenSource reports whether the call produces an RCU-frozen value.
func frozenSource(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOrigin(sig.Recv().Type())
	switch fn.Name() {
	case "Value":
		return recv != nil && recv.Obj().Name() == "Handle" &&
			recv.Obj().Pkg() != nil && recv.Obj().Pkg().Name() == "rcu"
	case "Load":
		return recv != nil && recv.Obj().Name() == "Pointer" && isAtomicPkg(recv.Obj().Pkg())
	case "Snapshot":
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return false
		}
		_, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice)
		return isSlice
	}
	return false
}

// rcuState is the per-function taint set.
type rcuState struct {
	pass   *Pass
	frozen map[types.Object]bool
}

// isFrozen reports whether evaluating e yields a view of frozen memory.
func (st *rcuState) isFrozen(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.pass.Info.Uses[e]
		return obj != nil && st.frozen[obj]
	case *ast.CallExpr:
		return frozenSource(st.pass.Info, e)
	case *ast.SelectorExpr:
		// A field of a frozen struct (or through a frozen pointer) lives
		// in frozen memory. Package-qualified selectors have no base
		// expression taint.
		if sel, ok := st.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return st.isFrozen(e.X)
		}
		return false
	case *ast.IndexExpr:
		return st.isFrozen(e.X)
	case *ast.SliceExpr:
		return st.isFrozen(e.X)
	case *ast.StarExpr:
		return st.isFrozen(e.X)
	case *ast.TypeAssertExpr:
		return st.isFrozen(e.X)
	}
	return false
}

// checkRCUFunc runs the taint walk over one function body. Statements
// are visited in source order, which matches the dominance order of
// straight-line taint introduction well enough for this analysis:
// over-approximation only ever adds diagnostics inside the same
// function that produced the frozen value.
func checkRCUFunc(pass *Pass, body *ast.BlockStmt) {
	st := &rcuState{pass: pass, frozen: map[types.Object]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // has its own walk
		case *ast.AssignStmt:
			st.checkAssign(n)
		case *ast.IncDecStmt:
			if st.writesFrozen(n.X) {
				pass.Reportf(n.Pos(), "write to RCU-frozen memory (value obtained from a published snapshot)")
			}
		case *ast.RangeStmt:
			st.propagateRange(n)
		case *ast.CallExpr:
			st.checkCall(n)
		}
		return true
	})
}

// writesFrozen reports whether the assignable expression lhs denotes a
// location inside frozen memory. Rebinding a tainted variable itself
// (`v = ...`) is not a write into frozen memory.
func (st *rcuState) writesFrozen(lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.StarExpr:
		return st.isFrozen(e.X)
	case *ast.IndexExpr:
		return st.isFrozen(e.X)
	case *ast.SelectorExpr:
		if sel, ok := st.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return st.isFrozen(e.X)
		}
		return false
	}
	return false
}

// checkAssign reports frozen-memory writes on the left side and
// propagates taint from right to left.
func (st *rcuState) checkAssign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if st.writesFrozen(lhs) {
			st.pass.Reportf(lhs.Pos(), "write to RCU-frozen memory (value obtained from a published snapshot)")
		}
	}
	// Taint propagation: only 1:1 assignments and the single-call tuple
	// form can transfer aliases.
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			st.bind(as.Lhs[i], rhs)
		}
	} else if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && frozenSource(st.pass.Info, call) {
			for _, lhs := range as.Lhs {
				st.taintIdent(lhs)
			}
		}
	}
}

// bind transfers (or clears) taint for one lhs := rhs pair.
func (st *rcuState) bind(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := st.pass.Info.Defs[id]
	if obj == nil {
		obj = st.pass.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if st.isFrozen(rhs) && aliasKind(st.pass.Info.TypeOf(ast.Unparen(rhs))) {
		st.frozen[obj] = true
	} else {
		delete(st.frozen, obj) // rebound to something unfrozen
	}
}

// taintIdent marks an identifier frozen when its type can alias.
func (st *rcuState) taintIdent(lhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := st.pass.Info.Defs[id]
	if obj == nil {
		obj = st.pass.Info.Uses[id]
	}
	if obj != nil && aliasKind(obj.Type()) {
		st.frozen[obj] = true
	}
}

// propagateRange taints range variables that alias frozen memory:
// ranging over a frozen slice of pointers hands out frozen pointers,
// while ranging over a slice of structs copies the elements.
func (st *rcuState) propagateRange(rs *ast.RangeStmt) {
	if rs.X == nil || !st.isFrozen(rs.X) {
		return
	}
	if rs.Value != nil {
		st.taintIdent(rs.Value)
	}
}

// checkCall flags builtin calls that mutate frozen memory.
func (st *rcuState) checkCall(call *ast.CallExpr) {
	switch {
	case isBuiltin(st.pass.Info, call, "copy"):
		if len(call.Args) == 2 && st.isFrozen(call.Args[0]) {
			st.pass.Reportf(call.Pos(), "copy into RCU-frozen slice")
		}
	case isBuiltin(st.pass.Info, call, "append"):
		if len(call.Args) > 0 && st.isFrozen(call.Args[0]) {
			st.pass.Reportf(call.Pos(), "append to RCU-frozen slice (may write the shared backing array in place)")
		}
	case isBuiltin(st.pass.Info, call, "clear"), isBuiltin(st.pass.Info, call, "delete"):
		if len(call.Args) > 0 && st.isFrozen(call.Args[0]) {
			st.pass.Reportf(call.Pos(), "mutating builtin on RCU-frozen value")
		}
	}
}
