// Package linttest drives lint analyzers over testdata fixture
// packages, in the style of golang.org/x/tools' analysistest: fixture
// source lines carry `// want "regexp"` comments naming the diagnostics
// the analyzer must produce on that line, and the runner fails the test
// on both missed expectations and unexpected diagnostics.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches one expectation comment. Several expectations may
// share a line: `// want "a" "b"`.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one `// want` entry, keyed by file base name and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	hit  bool
}

// Run loads the fixture package at dir (relative to the caller's
// working directory, conventionally testdata/src/<analyzer>), runs the
// analyzer over it, and cross-checks diagnostics against the fixture's
// `// want` comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()

	modDir := moduleRoot(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := lint.CheckDir(modDir, abs)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("linttest: %s: fixture does not type-check: %v", dir, terr)
	}
	if t.Failed() {
		return
	}

	wants, err := collectWants(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := lint.Run(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(pos.Filename) || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.src)
		}
	}
}

// collectWants parses every fixture file's comments for `// want`
// expectations.
func collectWants(dir string) ([]*expectation, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", e.Name(), line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", e.Name(), line, p, err)
					}
					wants = append(wants, &expectation{file: e.Name(), line: line, re: re, src: p})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// splitPatterns decodes the quoted regexps after `want`.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
		// Find the end of this Go-quoted string and unquote it.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == s[0] && (s[0] == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+1], err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the go.mod, so
// fixtures can import repro packages regardless of which package runs
// the test.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}
