// Fixture for the rcusafe analyzer: writes through RCU-published
// values must be flagged, value copies and rebinding must not.
package rcusafe

import (
	"sync/atomic"

	"repro/internal/rcu"
)

type config struct {
	limit int
	tags  []string
}

type rule struct{ id int }

type table struct{ rules []rule }

// Snapshot matches the frozen-source shape: zero arguments, slice
// result. The body itself builds a fresh copy, which is the point.
func (t *table) Snapshot() []rule {
	out := make([]rule, len(t.rules))
	copy(out, t.rules)
	return out
}

type node struct{ val int }

type ptable struct{ nodes []*node }

func (p *ptable) Snapshot() []*node { return p.nodes }

func badHandle(s *rcu.Store[*config]) {
	h := s.Acquire()
	defer h.Release()
	cfg := h.Value()
	cfg.limit = 99 // want `write to RCU-frozen memory`
}

func badLoad(p *atomic.Pointer[config]) {
	c := p.Load()
	c.limit = 1     // want `write to RCU-frozen memory`
	c.tags[0] = "x" // want `write to RCU-frozen memory`
}

func badStar(p *atomic.Pointer[config]) {
	c := p.Load()
	*c = config{} // want `write to RCU-frozen memory`
}

func badSnapshot(t *table) {
	rs := t.Snapshot()
	rs[0] = rule{}              // want `write to RCU-frozen memory`
	_ = append(rs, rule{id: 1}) // want `append to RCU-frozen slice`
}

func badCopy(t *table) {
	rs := t.Snapshot()
	copy(rs, []rule{{id: 2}}) // want `copy into RCU-frozen slice`
}

func badRange(p *ptable) {
	for _, n := range p.Snapshot() {
		n.val = 1 // want `write to RCU-frozen memory`
	}
}

func goodCopyOut(t *table) []rule {
	rs := t.Snapshot()
	out := make([]rule, len(rs))
	copy(out, rs) // destination is fresh memory: fine
	out[0] = rule{id: 3}
	return out
}

func goodRebind(p *atomic.Pointer[config]) {
	c := p.Load()
	c = &config{limit: 5}
	c.limit = 6 // c now points at private memory
	_ = c
}

func goodValueCopy(p *atomic.Pointer[config]) int {
	c := p.Load()
	v := *c     // struct copy: does not alias the snapshot
	v.limit = 7 // mutating the copy is fine
	return v.limit
}

func goodRead(s *rcu.Store[*config]) int {
	h := s.Acquire()
	defer h.Release()
	return h.Value().limit // reads are the whole point
}
