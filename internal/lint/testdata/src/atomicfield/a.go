// Fixture for the atomicfield analyzer: a field touched by sync/atomic
// anywhere must be touched by sync/atomic everywhere, and wrapper-typed
// fields must not be copied.
package atomicfield

import "sync/atomic"

type counter struct {
	gen   uint64
	hits  uint64
	slot  atomic.Pointer[int]
	flags atomic.Uint32
}

func (c *counter) bump() {
	atomic.AddUint64(&c.gen, 1)
}

func (c *counter) badRead() uint64 {
	return c.gen // want `plain access to field counter\.gen`
}

func (c *counter) badWrite() {
	c.gen = 0 // want `plain access to field counter\.gen`
}

func (c *counter) badCopy() {
	s := c.slot // want `non-atomic use of .*Pointer.* field counter\.slot`
	_ = s
}

func (c *counter) okPlain() uint64 {
	return c.hits // never accessed atomically: plain access is fine
}

func (c *counter) okLoad() uint64 {
	return atomic.LoadUint64(&c.gen)
}

func (c *counter) okWrapperMethod() *int {
	return c.slot.Load()
}

func (c *counter) okWrapperAddr() *atomic.Uint32 {
	return &c.flags
}

func (c *counter) okWrapperStore(v uint32) {
	c.flags.Store(v)
}
