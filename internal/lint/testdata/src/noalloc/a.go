// Fixture for the noalloc analyzer: //repro:noalloc functions must be
// free of allocation-introducing constructs; unannotated code and the
// sanctioned buffer idioms must pass.
package noalloc

import "fmt"

type entry struct{ k, v uint64 }

type store struct {
	buf []entry
}

//repro:noalloc
func badMake(n int) []entry {
	return make([]entry, n) // want `make allocates`
}

//repro:noalloc
func badNew() *entry {
	return new(entry) // want `new allocates`
}

//repro:noalloc
func badLit() *entry {
	return &entry{k: 1} // want `&composite literal escapes`
}

//repro:noalloc
func badMap() map[uint64]uint64 {
	return map[uint64]uint64{1: 2} // want `map literal allocates`
}

//repro:noalloc
func badSlice() []int {
	return []int{1, 2} // want `slice literal allocates`
}

//repro:noalloc
func badClosure() func() int {
	return func() int { return 1 } // want `closure literal`
}

//repro:noalloc
func badGo() {
	go helper() // want `go statement`
}

//repro:noalloc
func badAppend(e entry) []entry {
	var out []entry
	return append(out, e) // want `append to a slice of unknown capacity`
}

//repro:noalloc
func badBox(x int) any {
	return x // want `return as interface boxes a int`
}

//repro:noalloc
func badFmt(x int) {
	fmt.Println(x) // want `call to fmt\.Println` `argument passed as interface boxes a int`
}

//repro:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//repro:noalloc
func badBytes(s string) []byte {
	return []byte(s) // want `string <-> byte/rune slice conversion`
}

//repro:noalloc
func okAppendParam(buf []entry, e entry) []entry {
	return append(buf, e) // caller-supplied buffer
}

//repro:noalloc
func okScratch(src []entry) int {
	var scratch [8]entry
	tmp := scratch[:0] // stack scratch: append stays in the array
	for i := range src {
		tmp = append(tmp, src[i])
	}
	return len(tmp)
}

//repro:noalloc
func (s *store) okAppendField(e entry) {
	s.buf = append(s.buf, e) // pre-sized struct buffer
}

//repro:noalloc
func okConstBox() any {
	return 42 // constants box to static data
}

//repro:noalloc
func okPointerBox(e *entry) any {
	return e // pointer-shaped values store inline in the interface
}

func helper() {}

func unannotated() []entry {
	return make([]entry, 4) // no directive: anything goes
}
