// Fixture for the ctlerr analyzer: statically-known response strings
// and conn writes must lead with a protocol verb.
package ctlerr

import (
	"fmt"
	"net"
)

type session struct{ n int }

func (s *session) dispatchPing() (string, bool) {
	return "OK pong", false
}

func (s *session) dispatchBad() (string, bool) {
	return "FAIL nope", false // want `starts with "FAIL"`
}

func (s *session) dispatchStats() (string, bool) {
	resp := fmt.Sprintf("STATS n=%d", s.n)
	resp += " uptime=1"
	return resp, false
}

func (s *session) dispatchOops() (string, bool) {
	resp := fmt.Sprintf("oops %d", s.n)
	return resp, false // want `starts with "oops"`
}

func (s *session) dispatchErr(err error) (string, bool) {
	return "ERR " + err.Error(), false
}

func (s *session) dynamic(b fmt.Stringer) (string, bool) {
	return b.String(), false // not statically analyzable: skipped
}

func dispatchHelp() string {
	return "TABLES v4 v6"
}

func dispatchBroken() string {
	return "sorry, no" // want `starts with "sorry,"`
}

func writeLines(conn net.Conn, err error) {
	fmt.Fprintf(conn, "ERR read: %v\n", err)
	fmt.Fprintln(conn, "QUIT")
	fmt.Fprintln(conn, "goodbye") // want `starts with "goodbye"`
}

// notAResponse returns a string but is neither a session method nor a
// dispatch function, so its returns are unchecked.
func notAResponse() string {
	return "hello world"
}
