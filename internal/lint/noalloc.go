package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated //repro:noalloc for allocation-
// introducing constructs. The runtime AllocsPerRun guards prove the
// steady state empirically but are skipped under -race (the race
// runtime allocates on clean paths); this analyzer gives the same
// invariant build-time coverage, including in race CI legs.
//
// Flagged inside an annotated function:
//
//   - make, new, map/slice composite literals, &T{...}
//   - append whose destination does not trace to a caller-supplied
//     buffer (parameter, receiver, struct field, package variable) or
//     a slice of a local fixed-size array (the stack-scratch idiom)
//   - conversions of non-constant, non-pointer-shaped values to
//     interface types, explicit or implicit (call arguments, returns,
//     assignments) — interface boxing allocates
//   - calls into package fmt, string concatenation and string<->[]byte
//     conversions
//   - closure literals and go statements
//
// The check is intraprocedural: callees are not inspected, so an
// annotated function may call helpers that are themselves annotated or
// dynamically guarded. Composition is what the AllocsPerRun guards and
// the annotations meta-test cover.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation-introducing constructs in //repro:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !HasNoAllocDirective(fd) {
				continue
			}
			checkNoAllocFunc(pass, fd)
		}
	}
	return nil
}

func checkNoAllocFunc(pass *Pass, fd *ast.FuncDecl) {
	c := &noallocCheck{pass: pass, fd: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "closure literal (may allocate at each evaluation)")
			return false // the closure body is the closure's problem
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement (spawning a goroutine allocates)")
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.TypeOf(n)) {
				c.reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

type noallocCheck struct {
	pass *Pass
	fd   *ast.FuncDecl
}

func (c *noallocCheck) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "%s is annotated %s but contains: "+format,
		append([]any{c.fd.Name.Name, NoAllocDirective}, args...)...)
}

// checkCompositeLit flags literals whose construction heap-allocates:
// maps and slices. Struct and array value literals live on the stack
// (their &-escape is caught at the UnaryExpr).
func (c *noallocCheck) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates")
	}
}

func (c *noallocCheck) checkCall(call *ast.CallExpr) {
	info := c.pass.Info
	switch {
	case isBuiltin(info, call, "make"):
		c.reportf(call.Pos(), "make allocates")
		return
	case isBuiltin(info, call, "new"):
		c.reportf(call.Pos(), "new allocates")
		return
	case isBuiltin(info, call, "append"):
		if len(call.Args) > 0 && !c.allowedAppendBase(call.Args[0]) {
			c.reportf(call.Pos(), "append to a slice of unknown capacity (grow allocates); append into a caller-supplied or fixed-size buffer instead")
		}
		return
	}

	// Conversion to a type (T(x)): boxing when T is an interface,
	// copying when it crosses the string/byte-slice boundary.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			switch {
			case types.IsInterface(tv.Type):
				c.checkBoxing(call.Args[0], tv.Type, "explicit interface conversion")
			case stringBytesConversion(tv.Type, info.TypeOf(call.Args[0])):
				c.reportf(call.Pos(), "string <-> byte/rune slice conversion copies and allocates")
			}
		}
		return
	}

	if fn := calleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.reportf(call.Pos(), "call to fmt.%s (fmt formats through reflection and allocates)", fn.Name())
			// Fall through: the variadic boxing of the arguments is
			// reported per argument below, which keeps each diagnostic
			// attached to the value that would be boxed.
		}
		c.checkCallArgs(call, fn)
		return
	}
	// Indirect calls (function values, interface methods): parameter
	// types still come from the call expression's static type.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		c.checkArgsAgainst(call, sig)
	}
}

// checkCallArgs boxes-checks the arguments of a resolved call.
func (c *noallocCheck) checkCallArgs(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	c.checkArgsAgainst(call, sig)
}

// checkArgsAgainst flags arguments that are implicitly converted to an
// interface parameter type.
func (c *noallocCheck) checkArgsAgainst(call *ast.CallExpr, sig *types.Signature) {
	if call.Ellipsis != token.NoPos {
		return // s... forwards the slice, no per-element boxing
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			last := params.At(n - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) {
			c.checkBoxing(arg, pt, "argument passed as interface")
		}
	}
}

// checkBoxing reports a conversion of expr to an interface type when
// it would allocate: the value is non-constant (constants are boxed to
// static data by the compiler), not already an interface, and not
// pointer-shaped (pointers are stored inline in the interface word).
func (c *noallocCheck) checkBoxing(expr ast.Expr, to types.Type, what string) {
	tv, ok := c.pass.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Value != nil { // constant: boxed at compile time
		return
	}
	from := tv.Type
	if from == nil || types.IsInterface(from) || pointerShaped(from) {
		return
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.reportf(expr.Pos(), "%s boxes a %s (interface conversion allocates)", what, from.String())
}

// checkAssign flags implicit boxing on assignment to interface-typed
// destinations and string conversions hiding in multi-assigns.
func (c *noallocCheck) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := c.pass.Info.TypeOf(lhs)
		if lt != nil && types.IsInterface(lt) {
			c.checkBoxing(as.Rhs[i], lt, "assignment to interface")
		}
	}
}

// checkValueSpec flags boxing in `var x interface{} = expr` forms.
func (c *noallocCheck) checkValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		t := c.pass.Info.TypeOf(name)
		if t != nil && types.IsInterface(t) {
			c.checkBoxing(vs.Values[i], t, "assignment to interface")
		}
	}
}

// checkReturn flags boxing of returned values into interface results.
func (c *noallocCheck) checkReturn(ret *ast.ReturnStmt) {
	if c.fd.Type.Results == nil {
		return
	}
	def, ok := c.pass.Info.Defs[c.fd.Name]
	if !ok {
		return
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if len(ret.Results) != res.Len() {
		return // bare return or tuple-forwarding call
	}
	for i, r := range ret.Results {
		if types.IsInterface(res.At(i).Type()) {
			c.checkBoxing(r, res.At(i).Type(), "return as interface")
		}
	}
}

// allowedAppendBase reports whether the append destination traces to
// storage the caller supplied or the function pre-sized: a parameter or
// receiver, a struct field, a package-level variable, a slice of a
// local fixed-size array, or a local variable initialized from one of
// those (one level of indirection — `out := buf[:0]`).
func (c *noallocCheck) allowedAppendBase(e ast.Expr) bool {
	return c.appendBaseOK(e, 4)
}

func (c *noallocCheck) appendBaseOK(e ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, ok := c.pass.Info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if obj.IsField() || c.isParamOrRecv(obj) || obj.Parent() == c.pass.Pkg.Scope() {
			return true
		}
		// A local: accept when its initialization traces to an allowed
		// base (e.g. out := buf[:0] / scratch[:0]).
		if init := c.findInit(obj); init != nil {
			return c.appendBaseOK(init, depth-1)
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true // struct field: pooled/pre-sized buffer
		}
		// Package-qualified variable.
		_, isVar := c.pass.Info.Uses[e.Sel].(*types.Var)
		return isVar
	case *ast.SliceExpr:
		// buf[:0] of an allowed base, or scratch[:0] of a local array.
		if t := c.pass.Info.TypeOf(e.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Array:
				return true
			case *types.Pointer:
				return true // *[N]T scratch
			}
		}
		return c.appendBaseOK(e.X, depth-1)
	case *ast.IndexExpr:
		return c.appendBaseOK(e.X, depth-1)
	case *ast.StarExpr:
		return c.appendBaseOK(e.X, depth-1)
	}
	return false
}

// isParamOrRecv reports whether v is a parameter or the receiver of the
// function under check.
func (c *noallocCheck) isParamOrRecv(v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if c.pass.Info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(c.fd.Recv) || check(c.fd.Type.Params) || check(c.fd.Type.Results)
}

// findInit locates the defining expression of a local variable: the
// right-hand side paired with it in its := statement or var spec.
func (c *noallocCheck) findInit(v *types.Var) ast.Expr {
	var init ast.Expr
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if init != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && c.pass.Info.Defs[id] == v {
					init = n.Rhs[i]
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if c.pass.Info.Defs[name] == v && i < len(n.Values) {
					init = n.Values[i]
					return false
				}
			}
		}
		return true
	})
	return init
}

// stringBytesConversion reports whether a conversion from `from` to
// `to` crosses the string / []byte / []rune boundary (a copying,
// allocating conversion in either direction).
func stringBytesConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
		b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
