package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestRCUSafe(t *testing.T) {
	linttest.Run(t, "testdata/src/rcusafe", lint.RCUSafe)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield", lint.AtomicField)
}

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/noalloc", lint.NoAlloc)
}

func TestCtlErr(t *testing.T) {
	linttest.Run(t, "testdata/src/ctlerr", lint.CtlErr)
}

// moduleRoot walks up to go.mod so the module-wide tests work from the
// package directory go test runs them in.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

// TestLoadModule exercises the export-data loader over the whole
// module: every package must parse and type-check from source.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := lint.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("Load(./...) = %d packages, want at least the core packages", len(pkgs))
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.PkgPath] = true
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.PkgPath, e)
		}
	}
	for _, want := range []string{"repro", "repro/internal/core", "repro/internal/rcu", "repro/internal/ctl"} {
		if !seen[want] {
			t.Errorf("Load(./...) missed %s", want)
		}
	}
}

// TestRepoClean is the gate the CI step automates: the shipped tree
// must be free of diagnostics from every analyzer in the suite.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: not type-checked, skipping analysis", p.PkgPath)
			continue
		}
		diags, err := lint.Run(p, lint.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			t.Errorf("%s: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
}
