// Package shard partitions a ruleset across N replicas of one lookup
// engine, the software analogue of replicating the paper's lookup
// domain across parallel hardware banks. Updates are routed to one
// replica by a hash of the rule ID, so each replica holds roughly 1/N
// of the rules and the per-update work shrinks with N. Lookups fan out
// to every replica — any replica may hold the highest-priority match —
// and the per-replica results are merged by priority. Each replica
// keeps its own RCU snapshot pair, so the sharded engine inherits the
// lock-free read path: batch lookups run the replicas on parallel
// goroutines against their individually consistent snapshots.
//
// The replica set itself is published through an atomic pointer, which
// is what makes whole-ruleset Replace atomic across shards: a
// replacement builds N fresh replicas off to the side (one rebuild per
// replica, run in parallel) and installs them with a single pointer
// store. A reader that loaded the old set keeps using it — retired
// replicas are never mutated again — so every lookup, and every batch,
// observes one complete ruleset generation, never a mix of old and new
// shards.
//
// The package is deliberately below the public repro API: it speaks the
// same structural Engine contract (minus the backend tag, which only
// the root package can name) so the root package can wrap any backend
// in a Sharded without an import cycle.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/packet"
	"repro/internal/rule"
)

// Engine is the structural subset of the public repro.Engine interface
// the shard layer needs: every public engine satisfies it because the
// public Rule/Header/Result/Cost types alias the internal ones.
type Engine interface {
	Insert(r rule.Rule) (hwsim.Cost, error)
	Delete(id int) (hwsim.Cost, error)
	Len() int
	Lookup(h rule.Header) (core.Result, hwsim.Cost)
	LookupBatch(hs []rule.Header) []core.Result
	LookupBatchInto(hs []rule.Header, out []core.Result)
	Memory() hwsim.MemoryMap
	IncrementalUpdate() bool
	Snapshot() []rule.Rule
	Replace(rules []rule.Rule) (hwsim.Cost, error)
}

// For returns the replica owning rule id among n shards. It is a
// stand-alone finalizer-style integer hash (splitmix64 tail) rather
// than id%n so that sequentially allocated rule IDs spread evenly.
// Deterministic: Insert and Delete route the same ID to the same shard.
//
//repro:noalloc
func For(id, n int) int {
	x := uint64(int64(id))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// Sharded is N replicas of one engine behind the Engine contract.
//
// Readers load the current replica set from an atomic pointer; writers
// (Insert, Delete, Replace) serialize behind a mutex so an update can
// never land on a replica set that Replace has already retired.
type Sharded struct {
	mu       sync.Mutex // serializes writers against the replica-set swap
	replicas atomic.Pointer[[]Engine]
	// factory builds one fresh, empty replica for Replace; nil disables
	// whole-set replacement (Replace then fails without touching state).
	factory func() (Engine, error)
}

// New wraps the replicas. The replicas must be empty or pre-partitioned
// with For — loading a rule into the wrong replica would make Delete
// miss it. factory builds one fresh, empty replica of the same
// configuration; Replace uses it to construct the next replica set off
// to the side. A nil factory is allowed for wiring that never replaces.
func New(shards []Engine, factory func() (Engine, error)) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: need at least one shard")
	}
	s := &Sharded{factory: factory}
	set := append([]Engine(nil), shards...)
	s.replicas.Store(&set)
	return s, nil
}

// engines returns the current published replica set.
func (s *Sharded) engines() []Engine { return *s.replicas.Load() }

// Shards returns the replica count.
func (s *Sharded) Shards() int { return len(s.engines()) }

// Insert routes the rule to its owning replica; the replica's own
// validation and duplicate detection apply (a duplicate ID always hashes
// to the replica already holding it).
func (s *Sharded) Insert(r rule.Rule) (hwsim.Cost, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.engines()
	return set[For(r.ID, len(set))].Insert(r)
}

// Delete routes the removal by the same hash as Insert.
func (s *Sharded) Delete(id int) (hwsim.Cost, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.engines()
	return set[For(id, len(set))].Delete(id)
}

// Replace atomically swaps the whole sharded ruleset: the rules are
// partitioned with For, one fresh replica per shard is built off to the
// side (replica rebuilds run in parallel — each is a whole-partition
// download), and the completed set is published with a single atomic
// pointer store. Concurrent lookups that loaded the old set finish
// against it unharmed; lookups that load after the store see the new
// ruleset on every shard. On any build error the published set is
// untouched. The returned cost is the per-replica maximum, modeling the
// parallel download completing with the slowest bank.
func (s *Sharded) Replace(rules []rule.Rule) (hwsim.Cost, error) {
	if s.factory == nil {
		return hwsim.Cost{}, fmt.Errorf("shard: no replica factory; Replace unavailable")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.engines())
	parts := make([][]rule.Rule, n)
	for _, r := range rules {
		i := For(r.ID, n)
		parts[i] = append(parts[i], r)
	}
	next := make([]Engine, n)
	costs := make([]hwsim.Cost, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := s.factory()
			if err != nil {
				errs[i] = err
				return
			}
			c, err := e.Replace(parts[i])
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			next[i], costs[i] = e, c
		}(i)
	}
	wg.Wait()
	var total hwsim.Cost
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return hwsim.Cost{}, errs[i]
		}
		total = total.Max(costs[i])
	}
	s.replicas.Store(&next)
	return total, nil
}

// Snapshot merges the replica snapshots of one published replica set,
// sorted by ascending rule ID (each replica already exports in ID
// order, but the partition hash interleaves the ID space).
func (s *Sharded) Snapshot() []rule.Rule {
	var out []rule.Rule
	for _, e := range s.engines() {
		out = append(out, e.Snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len sums the replica populations.
func (s *Sharded) Len() int {
	n := 0
	for _, e := range s.engines() {
		n += e.Len()
	}
	return n
}

// ShardLens reports the per-replica rule populations from one published
// replica set — the shard-balance exposition of the metrics plane.
func (s *Sharded) ShardLens() []int {
	set := s.engines()
	out := make([]int, len(set))
	for i, e := range set {
		out[i] = e.Len()
	}
	return out
}

// Lookup fans the header out to every replica and merges by priority.
// The cost is the per-component maximum across replicas, modeling the
// replicas searching in parallel and the merge completing with the
// slowest.
//
//repro:noalloc
func (s *Sharded) Lookup(h rule.Header) (core.Result, hwsim.Cost) {
	var best core.Result
	var cost hwsim.Cost
	for _, e := range s.engines() {
		r, c := e.Lookup(h)
		cost = cost.Max(c)
		best = better(best, r)
	}
	return best, cost
}

// smallBatchFanout is the batch length below which LookupBatch runs the
// replicas sequentially: for a handful of headers the goroutine spawn
// and WaitGroup handoff cost more than the replica searches they would
// parallelize.
const smallBatchFanout = 16

// LookupBatch runs the whole batch through every replica — each against
// its own consistent RCU snapshot — and merges the per-replica result
// columns by priority. Large batches fan the replicas out on parallel
// goroutines; batches under smallBatchFanout walk them sequentially.
// Either way the merge folds each column into one output as it arrives,
// so no per-replica column collection is retained. The replica set is
// loaded once for the whole batch, so every result comes from one
// ruleset generation even while a Replace is publishing the next.
func (s *Sharded) LookupBatch(hs []rule.Header) []core.Result {
	shards := s.engines()
	if len(shards) == 1 {
		return shards[0].LookupBatch(hs)
	}
	if len(hs) < smallBatchFanout {
		out := shards[0].LookupBatch(hs)
		for _, e := range shards[1:] {
			col := e.LookupBatch(hs)
			for j := range out {
				out[j] = better(out[j], col[j])
			}
		}
		return out
	}
	var (
		mu        sync.Mutex
		out       []core.Result
		baseShard int
		wg        sync.WaitGroup
	)
	for i, e := range shards {
		wg.Add(1)
		go func(i int, e Engine) {
			defer wg.Done()
			col := e.LookupBatch(hs)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case out == nil:
				out = col // first column done becomes the merge output
				baseShard = i
			case i < baseShard:
				// Keep the merge deterministic regardless of completion
				// order: better() resolves an all-miss entry to its first
				// argument, so the miss-state fields (probe counts) must
				// always come from the lowest-index column — the same
				// result the sequential path and single Lookup produce.
				for j := range out {
					out[j] = better(col[j], out[j])
				}
				baseShard = i
			default:
				for j := range out {
					out[j] = better(out[j], col[j])
				}
			}
		}(i, e)
	}
	wg.Wait()
	return out
}

// colScratch is a pooled per-replica result column: LookupBatchInto
// merges each non-first replica's verdicts out of one reused slab, and
// LookupBytesBatch classifies decoded headers into the same shape.
type colScratch struct {
	col []core.Result
}

var colPool = sync.Pool{New: func() any { return new(colScratch) }}

// LookupBatchInto runs the whole batch through every replica into
// caller-owned memory: the first replica classifies directly into out,
// each further replica classifies into one pooled column that is folded
// in by priority. Unlike LookupBatch's goroutine fan-out this walks the
// replicas sequentially — the allocation-free contract (no per-call
// column collection, no WaitGroup) is what keeps the flow-cache and
// raw-frame compositions at zero allocations per batch, and each
// replica's batch still runs the stage-fused burst kernel over its own
// consistent snapshot.
//
//repro:noalloc
func (s *Sharded) LookupBatchInto(hs []rule.Header, out []core.Result) {
	shards := s.engines()
	shards[0].LookupBatchInto(hs, out[:len(hs)])
	if len(shards) == 1 {
		return
	}
	sc := colPool.Get().(*colScratch)
	col := sc.col[:0]
	for range hs {
		col = append(col, core.Result{})
	}
	sc.col = col
	for _, e := range shards[1:] {
		e.LookupBatchInto(hs, col)
		for j := range hs {
			out[j] = better(out[j], col[j])
		}
	}
	colPool.Put(sc)
}

// burstPool recycles the frame-slab decoders of LookupBytesBatch.
var burstPool = sync.Pool{New: func() any { return new(packet.Burst) }}

// LookupBytes decodes a raw IPv4-over-Ethernet frame in place and fans
// it out across the replicas like Lookup — the sharded leg of the
// bytes-in/verdict-out path.
//
//repro:noalloc
func (s *Sharded) LookupBytes(frame []byte) (core.Result, error) {
	var h rule.Header
	if err := packet.DecodeEthernet(frame, &h); err != nil {
		return core.Result{}, err
	}
	res, _ := s.Lookup(h)
	return res, nil
}

// LookupBytesBatch decodes a frame slab with a pooled burst decoder and
// runs the decoded headers through the pooled LookupBatchInto merge, so
// the burst crosses the replicas' RCU snapshots exactly like a header
// batch without allocating. Frames that fail to decode produce the zero
// Result at their index; the return value is the number of frames
// decoded. out must hold at least len(frames) results.
//
//repro:noalloc
func (s *Sharded) LookupBytesBatch(frames [][]byte, out []core.Result) int {
	b := burstPool.Get().(*packet.Burst)
	hdrs, idx := b.DecodeV4(frames)
	for i := range frames {
		out[i] = core.Result{}
	}
	if len(hdrs) > 0 {
		sc := colPool.Get().(*colScratch)
		res := sc.col[:0]
		for range hdrs {
			res = append(res, core.Result{})
		}
		sc.col = res
		s.LookupBatchInto(hdrs, res)
		for j, r := range res {
			out[idx[j]] = r
		}
		colPool.Put(sc)
	}
	n := len(hdrs)
	burstPool.Put(b)
	return n
}

// better returns the higher-priority of two per-shard results (lower
// Priority value wins; rule ID breaks exact priority ties so the merge
// is deterministic regardless of shard order). Insertion order — the
// tie-break an unsharded linear scan falls back to — does not exist
// across replicas, so equal-priority resolution is part of the sharding
// contract: callers wanting oracle-identical answers keep priorities
// unique.
//
//repro:noalloc
func better(a, b core.Result) core.Result {
	switch {
	case !b.Found:
		return a
	case !a.Found:
		return b
	case b.Priority < a.Priority:
		return b
	case b.Priority == a.Priority && b.RuleID < a.RuleID:
		return b
	default:
		return a
	}
}

// Memory aggregates the replica memory maps, prefixing each block with
// its shard index.
func (s *Sharded) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	for i, e := range s.engines() {
		for _, b := range e.Memory().Blocks {
			mm.Add(fmt.Sprintf("shard%d/%s", i, b.Name), b.WordBits, b.Words)
		}
	}
	return mm
}

// IncrementalUpdate reports the replicas' shared Table I property.
func (s *Sharded) IncrementalUpdate() bool {
	return s.engines()[0].IncrementalUpdate()
}

// Stats aggregates replica statistics for replicas that expose them
// (the decomposition backend); replicas without a Stats method
// contribute their rule count only, so Rules is always the full
// population.
func (s *Sharded) Stats() core.Stats {
	var total core.Stats
	for _, e := range s.engines() {
		st, ok := e.(interface{ Stats() core.Stats })
		if !ok {
			total.Rules += e.Len()
			continue
		}
		sub := st.Stats()
		total.Rules += sub.Rules
		total.HardwareOverflows += sub.HardwareOverflows
		total.Probes += sub.Probes
		total.ProbeOps += sub.ProbeOps
		total.EngineCycles += sub.EngineCycles
		total.FirstHitProbes += sub.FirstHitProbes
		for i, l := range sub.Labels {
			total.Labels[i] += l
		}
		if sub.MaxListLen > total.MaxListLen {
			total.MaxListLen = sub.MaxListLen
		}
	}
	return total
}

// AggregateThroughput sums the modeled forwarding rate of replicas that
// model one (parallel replicas each sustain their own packet stream);
// ok is false when no replica exposes the hardware model.
func (s *Sharded) AggregateThroughput() (core.Throughput, bool) {
	var pps float64
	any := false
	for _, e := range s.engines() {
		tp, ok := e.(interface{ ModelThroughput() core.Throughput })
		if !ok {
			continue
		}
		any = true
		pps += tp.ModelThroughput().Mpps * 1e6
	}
	if !any || pps <= 0 {
		return core.Throughput{}, any
	}
	return core.Throughput{
		CyclesPerPacket: hwsim.DefaultClockHz / pps,
		Mpps:            hwsim.Mpps(pps),
		Gbps:            hwsim.Gbps(pps, hwsim.MinFrameBytes),
	}, true
}
