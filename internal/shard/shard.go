// Package shard partitions a ruleset across N replicas of one lookup
// engine, the software analogue of replicating the paper's lookup
// domain across parallel hardware banks. Updates are routed to one
// replica by a hash of the rule ID, so each replica holds roughly 1/N
// of the rules and the per-update work shrinks with N. Lookups fan out
// to every replica — any replica may hold the highest-priority match —
// and the per-replica results are merged by priority. Each replica
// keeps its own RCU snapshot pair, so the sharded engine inherits the
// lock-free read path: batch lookups run the replicas on parallel
// goroutines against their individually consistent snapshots.
//
// The package is deliberately below the public repro API: it speaks the
// same structural Engine contract (minus the backend tag, which only
// the root package can name) so the root package can wrap any backend
// in a Sharded without an import cycle.
package shard

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/rule"
)

// Engine is the structural subset of the public repro.Engine interface
// the shard layer needs: every public engine satisfies it because the
// public Rule/Header/Result/Cost types alias the internal ones.
type Engine interface {
	Insert(r rule.Rule) (hwsim.Cost, error)
	Delete(id int) (hwsim.Cost, error)
	Len() int
	Lookup(h rule.Header) (core.Result, hwsim.Cost)
	LookupBatch(hs []rule.Header) []core.Result
	Memory() hwsim.MemoryMap
	IncrementalUpdate() bool
}

// For returns the replica owning rule id among n shards. It is a
// stand-alone finalizer-style integer hash (splitmix64 tail) rather
// than id%n so that sequentially allocated rule IDs spread evenly.
// Deterministic: Insert and Delete route the same ID to the same shard.
func For(id, n int) int {
	x := uint64(int64(id))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// Sharded is N replicas of one engine behind the Engine contract.
type Sharded struct {
	shards []Engine
}

// New wraps the replicas. The replicas must be empty or pre-partitioned
// with For — loading a rule into the wrong replica would make Delete
// miss it.
func New(shards []Engine) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: need at least one shard")
	}
	return &Sharded{shards: shards}, nil
}

// Shards returns the replica count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Insert routes the rule to its owning replica; the replica's own
// validation and duplicate detection apply (a duplicate ID always hashes
// to the replica already holding it).
func (s *Sharded) Insert(r rule.Rule) (hwsim.Cost, error) {
	return s.shards[For(r.ID, len(s.shards))].Insert(r)
}

// Delete routes the removal by the same hash as Insert.
func (s *Sharded) Delete(id int) (hwsim.Cost, error) {
	return s.shards[For(id, len(s.shards))].Delete(id)
}

// Len sums the replica populations.
func (s *Sharded) Len() int {
	n := 0
	for _, e := range s.shards {
		n += e.Len()
	}
	return n
}

// Lookup fans the header out to every replica and merges by priority.
// The cost is the per-component maximum across replicas, modeling the
// replicas searching in parallel and the merge completing with the
// slowest.
func (s *Sharded) Lookup(h rule.Header) (core.Result, hwsim.Cost) {
	var best core.Result
	var cost hwsim.Cost
	for _, e := range s.shards {
		r, c := e.Lookup(h)
		cost = cost.Max(c)
		best = better(best, r)
	}
	return best, cost
}

// smallBatchFanout is the batch length below which LookupBatch runs the
// replicas sequentially: for a handful of headers the goroutine spawn
// and WaitGroup handoff cost more than the replica searches they would
// parallelize.
const smallBatchFanout = 16

// LookupBatch runs the whole batch through every replica — each against
// its own consistent RCU snapshot — and merges the per-replica result
// columns by priority. Large batches fan the replicas out on parallel
// goroutines; batches under smallBatchFanout walk them sequentially.
// Either way the merge folds each column into one output as it arrives,
// so no per-replica column collection is retained.
func (s *Sharded) LookupBatch(hs []rule.Header) []core.Result {
	if len(s.shards) == 1 {
		return s.shards[0].LookupBatch(hs)
	}
	if len(hs) < smallBatchFanout {
		out := s.shards[0].LookupBatch(hs)
		for _, e := range s.shards[1:] {
			col := e.LookupBatch(hs)
			for j := range out {
				out[j] = better(out[j], col[j])
			}
		}
		return out
	}
	var (
		mu        sync.Mutex
		out       []core.Result
		baseShard int
		wg        sync.WaitGroup
	)
	for i, e := range s.shards {
		wg.Add(1)
		go func(i int, e Engine) {
			defer wg.Done()
			col := e.LookupBatch(hs)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case out == nil:
				out = col // first column done becomes the merge output
				baseShard = i
			case i < baseShard:
				// Keep the merge deterministic regardless of completion
				// order: better() resolves an all-miss entry to its first
				// argument, so the miss-state fields (probe counts) must
				// always come from the lowest-index column — the same
				// result the sequential path and single Lookup produce.
				for j := range out {
					out[j] = better(col[j], out[j])
				}
				baseShard = i
			default:
				for j := range out {
					out[j] = better(out[j], col[j])
				}
			}
		}(i, e)
	}
	wg.Wait()
	return out
}

// better returns the higher-priority of two per-shard results (lower
// Priority value wins; rule ID breaks exact priority ties so the merge
// is deterministic regardless of shard order). Insertion order — the
// tie-break an unsharded linear scan falls back to — does not exist
// across replicas, so equal-priority resolution is part of the sharding
// contract: callers wanting oracle-identical answers keep priorities
// unique.
func better(a, b core.Result) core.Result {
	switch {
	case !b.Found:
		return a
	case !a.Found:
		return b
	case b.Priority < a.Priority:
		return b
	case b.Priority == a.Priority && b.RuleID < a.RuleID:
		return b
	default:
		return a
	}
}

// Memory aggregates the replica memory maps, prefixing each block with
// its shard index.
func (s *Sharded) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	for i, e := range s.shards {
		for _, b := range e.Memory().Blocks {
			mm.Add(fmt.Sprintf("shard%d/%s", i, b.Name), b.WordBits, b.Words)
		}
	}
	return mm
}

// IncrementalUpdate reports the replicas' shared Table I property.
func (s *Sharded) IncrementalUpdate() bool {
	return s.shards[0].IncrementalUpdate()
}

// Stats aggregates replica statistics for replicas that expose them
// (the decomposition backend); replicas without a Stats method
// contribute their rule count only, so Rules is always the full
// population.
func (s *Sharded) Stats() core.Stats {
	var total core.Stats
	for _, e := range s.shards {
		st, ok := e.(interface{ Stats() core.Stats })
		if !ok {
			total.Rules += e.Len()
			continue
		}
		sub := st.Stats()
		total.Rules += sub.Rules
		total.HardwareOverflows += sub.HardwareOverflows
		total.Probes += sub.Probes
		total.ProbeOps += sub.ProbeOps
		total.EngineCycles += sub.EngineCycles
		total.FirstHitProbes += sub.FirstHitProbes
		for i, l := range sub.Labels {
			total.Labels[i] += l
		}
		if sub.MaxListLen > total.MaxListLen {
			total.MaxListLen = sub.MaxListLen
		}
	}
	return total
}

// AggregateThroughput sums the modeled forwarding rate of replicas that
// model one (parallel replicas each sustain their own packet stream);
// ok is false when no replica exposes the hardware model.
func (s *Sharded) AggregateThroughput() (core.Throughput, bool) {
	var pps float64
	any := false
	for _, e := range s.shards {
		tp, ok := e.(interface{ ModelThroughput() core.Throughput })
		if !ok {
			continue
		}
		any = true
		pps += tp.ModelThroughput().Mpps * 1e6
	}
	if !any || pps <= 0 {
		return core.Throughput{}, any
	}
	return core.Throughput{
		CyclesPerPacket: hwsim.DefaultClockHz / pps,
		Mpps:            hwsim.Mpps(pps),
		Gbps:            hwsim.Gbps(pps, hwsim.MinFrameBytes),
	}, true
}
