package shard

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/rule"
)

// fakeEngine is a minimal linear-scan Engine for wiring tests, with a
// fixed per-lookup cost so cost aggregation is observable.
type fakeEngine struct {
	rules  []rule.Rule
	cycles int
}

func (f *fakeEngine) Insert(r rule.Rule) (hwsim.Cost, error) {
	for _, have := range f.rules {
		if have.ID == r.ID {
			return hwsim.Cost{}, fmt.Errorf("duplicate %d", r.ID)
		}
	}
	f.rules = append(f.rules, r)
	return hwsim.Cost{Cycles: 1, Writes: 1}, nil
}

func (f *fakeEngine) Delete(id int) (hwsim.Cost, error) {
	for i, have := range f.rules {
		if have.ID == id {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
			return hwsim.Cost{Cycles: 1}, nil
		}
	}
	return hwsim.Cost{}, fmt.Errorf("unknown rule %d", id)
}

func (f *fakeEngine) Len() int { return len(f.rules) }

func (f *fakeEngine) Lookup(h rule.Header) (core.Result, hwsim.Cost) {
	var best core.Result
	for _, r := range f.rules {
		if r.Matches(h) && (!best.Found || r.Priority < best.Priority) {
			best = core.Result{RuleID: r.ID, Priority: r.Priority, Action: r.Action, Found: true}
		}
	}
	return best, hwsim.Cost{Cycles: f.cycles}
}

func (f *fakeEngine) LookupBatch(hs []rule.Header) []core.Result {
	out := make([]core.Result, len(hs))
	f.LookupBatchInto(hs, out)
	return out
}

func (f *fakeEngine) LookupBatchInto(hs []rule.Header, out []core.Result) {
	for i, h := range hs {
		out[i], _ = f.Lookup(h)
	}
}

func (f *fakeEngine) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("rules", 64, len(f.rules))
	return mm
}

func (f *fakeEngine) IncrementalUpdate() bool { return true }

func (f *fakeEngine) Snapshot() []rule.Rule {
	out := append([]rule.Rule(nil), f.rules...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (f *fakeEngine) Replace(rules []rule.Rule) (hwsim.Cost, error) {
	for i := range rules {
		for j := range rules[:i] {
			if rules[i].ID == rules[j].ID {
				return hwsim.Cost{}, fmt.Errorf("duplicate %d", rules[i].ID)
			}
		}
	}
	f.rules = append(f.rules[:0:0], rules...)
	return hwsim.Cost{Cycles: 2*len(rules) + 1, Writes: len(rules)}, nil
}

func wildcard(id, prio int) rule.Rule {
	return rule.Rule{
		ID: id, Priority: prio,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto: rule.AnyProto(), Action: rule.ActionPermit,
	}
}

func TestForDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		counts := make([]int, n)
		for id := 1; id <= 4096; id++ {
			i := For(id, n)
			if i < 0 || i >= n {
				t.Fatalf("For(%d, %d) = %d out of range", id, n, i)
			}
			if j := For(id, n); j != i {
				t.Fatalf("For(%d, %d) not deterministic: %d vs %d", id, n, i, j)
			}
			counts[i]++
		}
		// Sequential IDs must spread: no shard may be empty or hold
		// more than twice its fair share.
		for i, c := range counts {
			if c == 0 {
				t.Errorf("n=%d: shard %d empty", n, i)
			}
			if c > 2*4096/n {
				t.Errorf("n=%d: shard %d holds %d of 4096", n, i, c)
			}
		}
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("New(nil) should fail")
	}
}

func TestRoutingAndMerge(t *testing.T) {
	shards := []Engine{&fakeEngine{cycles: 3}, &fakeEngine{cycles: 5}, &fakeEngine{cycles: 2}}
	s, err := New(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	for id := 1; id <= 60; id++ {
		if _, err := s.Insert(wildcard(id, id)); err != nil {
			t.Fatalf("insert %d: %v", id, err)
		}
	}
	if s.Len() != 60 {
		t.Fatalf("Len = %d, want 60", s.Len())
	}
	// Each rule must live exactly on its hashed replica.
	for id := 1; id <= 60; id++ {
		want := For(id, 3)
		for i, e := range shards {
			_, err := e.(*fakeEngine).find(id)
			if (err == nil) != (i == want) {
				t.Fatalf("rule %d on shard %d, want shard %d", id, i, want)
			}
		}
	}
	// The global best is priority 1 regardless of which shard holds it.
	h := rule.Header{SrcIP: 1, Proto: rule.ProtoTCP}
	res, cost := s.Lookup(h)
	if !res.Found || res.RuleID != 1 || res.Priority != 1 {
		t.Fatalf("Lookup = %+v", res)
	}
	if cost.Cycles != 5 {
		t.Fatalf("parallel lookup cost = %d cycles, want max 5", cost.Cycles)
	}
	// Delete the global best; the runner-up (priority 2) takes over.
	if _, err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.Lookup(h); res.RuleID != 2 {
		t.Fatalf("after delete: %+v", res)
	}
	if _, err := s.Delete(999); err == nil {
		t.Fatal("delete of unknown rule should fail")
	}
	if _, err := s.Insert(wildcard(2, 2)); err == nil {
		t.Fatal("duplicate insert should fail")
	}
}

func (f *fakeEngine) find(id int) (rule.Rule, error) {
	for _, r := range f.rules {
		if r.ID == id {
			return r, nil
		}
	}
	return rule.Rule{}, fmt.Errorf("absent")
}

func TestMergeTieBreak(t *testing.T) {
	// Two shards each holding a rule with the same priority: the merge
	// must pick the lower rule ID deterministically.
	a, b := &fakeEngine{}, &fakeEngine{}
	a.rules = append(a.rules, wildcard(7, 4))
	b.rules = append(b.rules, wildcard(3, 4))
	s, err := New([]Engine{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.Lookup(rule.Header{})
	if res.RuleID != 3 {
		t.Fatalf("tie broke to rule %d, want 3", res.RuleID)
	}
	// Same tie-break through the batch path.
	out := s.LookupBatch([]rule.Header{{}, {}})
	for i, r := range out {
		if r.RuleID != 3 {
			t.Fatalf("batch[%d] tie broke to rule %d, want 3", i, r.RuleID)
		}
	}
}

func TestLookupBatchMatchesSingle(t *testing.T) {
	shards := []Engine{&fakeEngine{}, &fakeEngine{}, &fakeEngine{}, &fakeEngine{}}
	s, err := New(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 40; id++ {
		r := wildcard(id, id)
		r.SrcIP = rule.Prefix{Addr: uint32(id) << 24, Len: 8}
		if _, err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	hs := make([]rule.Header, 0, 50)
	for i := 0; i < 50; i++ {
		hs = append(hs, rule.Header{SrcIP: uint32(i%45) << 24, DstPort: uint16(i)})
	}
	batch := s.LookupBatch(hs)
	if len(batch) != len(hs) {
		t.Fatalf("batch len %d, want %d", len(batch), len(hs))
	}
	for i, h := range hs {
		single, _ := s.Lookup(h)
		if single != batch[i] {
			t.Fatalf("header %d: single %+v vs batch %+v", i, single, batch[i])
		}
	}
	if out := s.LookupBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}

	// The sequential small-batch path and the parallel fan-out must
	// produce identical merges: exercise both sides of the threshold.
	for _, n := range []int{1, smallBatchFanout - 1, smallBatchFanout, smallBatchFanout + 1, len(hs)} {
		sub := hs[:n]
		got := s.LookupBatch(sub)
		if len(got) != n {
			t.Fatalf("batch[%d] len %d", n, len(got))
		}
		for i, h := range sub {
			single, _ := s.Lookup(h)
			if got[i] != single {
				t.Fatalf("batch size %d header %d: %+v vs %+v", n, i, got[i], single)
			}
		}
	}
}

func TestAggregatedMemoryAndStats(t *testing.T) {
	shards := []Engine{&fakeEngine{}, &fakeEngine{}}
	s, err := New(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 16; id++ {
		if _, err := s.Insert(wildcard(id, id)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.Memory().TotalBytes(), 16*8; got != want {
		t.Fatalf("Memory = %d B, want %d", got, want)
	}
	if !s.IncrementalUpdate() {
		t.Fatal("fake replicas are incremental")
	}
	// fakeEngine has no Stats method: the aggregate falls back to rule
	// counts, keeping Rules authoritative.
	if st := s.Stats(); st.Rules != 16 {
		t.Fatalf("Stats.Rules = %d, want 16", st.Rules)
	}
	if _, ok := s.AggregateThroughput(); ok {
		t.Fatal("fake replicas must not report a hardware throughput model")
	}
}

func TestReplaceRepartitionsAndSnapshots(t *testing.T) {
	shards := []Engine{&fakeEngine{}, &fakeEngine{}, &fakeEngine{}}
	s, err := New(shards, func() (Engine, error) { return &fakeEngine{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 20; id++ {
		if _, err := s.Insert(wildcard(id, id)); err != nil {
			t.Fatal(err)
		}
	}
	// Replace with a disjoint ruleset; every rule must land on its
	// hashed replica of the NEW set and the old rules must be gone.
	next := make([]rule.Rule, 0, 10)
	for id := 100; id < 110; id++ {
		next = append(next, wildcard(id, id))
	}
	if _, err := s.Replace(next); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d after replace, want 10", s.Len())
	}
	snap := s.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("Snapshot len = %d, want 10", len(snap))
	}
	for i, r := range snap {
		if r.ID != 100+i {
			t.Fatalf("snapshot[%d].ID = %d, want %d (ascending IDs)", i, r.ID, 100+i)
		}
	}
	// Updates after the swap must route within the new replica set.
	if _, err := s.Delete(105); err != nil {
		t.Fatalf("delete of replaced rule: %v", err)
	}
	if _, err := s.Delete(5); err == nil {
		t.Fatal("old-generation rule should be gone")
	}
	// Replace(nil) resets every shard.
	if _, err := s.Replace(nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || len(s.Snapshot()) != 0 {
		t.Fatalf("reset left %d rules", s.Len())
	}
}

func TestReplaceFailureLeavesPublishedSet(t *testing.T) {
	s, err := New([]Engine{&fakeEngine{}, &fakeEngine{}},
		func() (Engine, error) { return &fakeEngine{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(wildcard(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Duplicate IDs hash to the same replica, whose Replace rejects them.
	bad := []rule.Rule{wildcard(7, 1), wildcard(7, 2)}
	if _, err := s.Replace(bad); err == nil {
		t.Fatal("duplicate-ID replace should fail")
	}
	if s.Len() != 1 {
		t.Fatalf("failed replace changed population: %d", s.Len())
	}
	if res, _ := s.Lookup(rule.Header{}); res.RuleID != 1 {
		t.Fatalf("failed replace changed published rules: %+v", res)
	}
}

func TestReplaceWithoutFactoryFails(t *testing.T) {
	s, err := New([]Engine{&fakeEngine{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replace(nil); err == nil {
		t.Fatal("Replace without a factory should fail")
	}
}
