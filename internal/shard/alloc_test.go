package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/rule"
)

// TestLookupZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotations on Sharded.Lookup, For and better: the
// single-header fan-out and merge must stay off the heap.
func TestLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	a, b := &fakeEngine{}, &fakeEngine{}
	if _, err := a.Insert(wildcard(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(wildcard(2, 1)); err != nil {
		t.Fatal(err)
	}
	s, err := New([]Engine{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := rule.Header{Proto: rule.ProtoTCP}
	found := 0
	allocs := testing.AllocsPerRun(1000, func() {
		res, _ := s.Lookup(h)
		if res.Found {
			found++
		}
		_ = For(res.RuleID, 3)
	})
	if allocs != 0 {
		t.Errorf("Lookup allocated %v times per run, want 0", allocs)
	}
	if found == 0 {
		t.Fatal("wildcard rule should match")
	}
}

// TestLookupBatchIntoZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotations on Sharded.LookupBatchInto and
// Sharded.LookupBytesBatch: the sequential replica walk with its pooled
// merge column, and the frame-slab leg on top of it, must stay off the
// heap once the pools are warm.
func TestLookupBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	a, b := &fakeEngine{}, &fakeEngine{}
	if _, err := a.Insert(wildcard(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(wildcard(2, 1)); err != nil {
		t.Fatal(err)
	}
	s, err := New([]Engine{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]rule.Header, 64)
	for i := range hs {
		hs[i] = rule.Header{SrcIP: uint32(i), Proto: rule.ProtoTCP}
	}
	out := make([]core.Result, len(hs))
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = packet.BuildEthernet(packet.BuildIPv4(rule.Header{
			SrcIP: uint32(i), DstIP: 0x0a000002,
			SrcPort: 1234, DstPort: 80, Proto: rule.ProtoTCP,
		}))
	}
	bout := make([]core.Result, len(frames))
	s.LookupBatchInto(hs, out) // warm the pooled column
	s.LookupBytesBatch(frames, bout)
	allocs := testing.AllocsPerRun(200, func() {
		s.LookupBatchInto(hs, out)
		if s.LookupBytesBatch(frames, bout) != len(frames) {
			t.Fatal("frames should decode")
		}
	})
	if allocs != 0 {
		t.Errorf("batch fan-out allocated %v times per run, want 0", allocs)
	}
	if !out[0].Found || !bout[0].Found {
		t.Fatal("wildcard rule should match")
	}
}

// TestLookupBytesZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotation on Sharded.LookupBytes: frame decode plus
// replica fan-out must stay off the heap.
func TestLookupBytesZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	a, b := &fakeEngine{}, &fakeEngine{}
	if _, err := a.Insert(wildcard(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(wildcard(2, 1)); err != nil {
		t.Fatal(err)
	}
	s, err := New([]Engine{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame := packet.BuildEthernet(packet.BuildIPv4(rule.Header{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 1234, DstPort: 80, Proto: rule.ProtoTCP,
	}))
	found := 0
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := s.LookupBytes(frame)
		if err == nil && res.Found {
			found++
		}
	})
	if allocs != 0 {
		t.Errorf("LookupBytes allocated %v times per run, want 0", allocs)
	}
	if found == 0 {
		t.Fatal("wildcard rule should match the decoded frame")
	}
}
