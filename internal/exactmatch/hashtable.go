package exactmatch

import (
	"repro/internal/hwsim"
	"repro/internal/label"
)

// HashTable is an open-addressing (linear probing) hash engine sized for
// "future expansions of the data set" beyond the protocol byte: it keys on
// 32-bit values so wider exact-match fields can reuse it. Collisions cost
// extra probe reads — the trade-off the paper notes for hash-based
// lookups.
type HashTable struct {
	slots []htSlot
	wild  wildcard
	count int
	// maxSlots bounds growth; 0 means unbounded.
	maxSlots int
}

type htSlot struct {
	key   uint32
	lab   label.Label
	state uint8 // 0 empty, 1 occupied, 2 tombstone
}

const (
	htEmpty uint8 = iota
	htUsed
	htDead
)

// NewHashTable returns a table with the given initial capacity (rounded up
// to a power of two, minimum 16). maxSlots, if positive, caps growth to
// model a fixed hardware RAM.
func NewHashTable(initial, maxSlots int) *HashTable {
	capacity := 16
	for capacity < initial {
		capacity *= 2
	}
	return &HashTable{slots: make([]htSlot, capacity), maxSlots: maxSlots}
}

// Len returns the number of stored exact values.
func (h *HashTable) Len() int { return h.count }

// hash is a 32-bit Fibonacci/xor mix, cheap enough for a hardware hash
// unit.
func (h *HashTable) hash(key uint32) int {
	x := key
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x) & (len(h.slots) - 1)
}

// Insert stores the key's label.
func (h *HashTable) Insert(v uint8, lab label.Label) (hwsim.Cost, error) {
	return h.InsertKey(uint32(v), lab)
}

// InsertKey stores a full-width key (the expansion path the paper
// anticipates).
func (h *HashTable) InsertKey(key uint32, lab label.Label) (hwsim.Cost, error) {
	if h.count+1 > len(h.slots)*3/4 {
		if err := h.grow(); err != nil {
			return hwsim.Cost{Cycles: 1, Reads: 1}, err
		}
	}
	var cost hwsim.Cost
	i := h.hash(key)
	firstDead := -1
	for {
		cost.Reads++
		s := &h.slots[i]
		switch {
		case s.state == htUsed && s.key == key:
			s.lab = lab
			cost.Writes++
			cost.Cycles = cost.Reads + cost.Writes
			return cost, nil
		case s.state == htEmpty:
			if firstDead >= 0 {
				i = firstDead
			}
			h.slots[i] = htSlot{key: key, lab: lab, state: htUsed}
			h.count++
			cost.Writes++
			cost.Cycles = cost.Reads + cost.Writes
			return cost, nil
		case s.state == htDead && firstDead < 0:
			firstDead = i
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

func (h *HashTable) grow() error {
	newCap := len(h.slots) * 2
	if h.maxSlots > 0 && newCap > h.maxSlots {
		return ErrFull
	}
	old := h.slots
	h.slots = make([]htSlot, newCap)
	h.count = 0
	for _, s := range old {
		if s.state == htUsed {
			if _, err := h.InsertKey(s.key, s.lab); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes the key.
func (h *HashTable) Delete(v uint8) (label.Label, hwsim.Cost, bool) {
	return h.DeleteKey(uint32(v))
}

// DeleteKey removes a full-width key.
func (h *HashTable) DeleteKey(key uint32) (label.Label, hwsim.Cost, bool) {
	var cost hwsim.Cost
	i := h.hash(key)
	for {
		cost.Reads++
		s := &h.slots[i]
		switch {
		case s.state == htUsed && s.key == key:
			lab := s.lab
			s.state = htDead
			h.count--
			cost.Writes++
			cost.Cycles = cost.Reads + cost.Writes
			return lab, cost, true
		case s.state == htEmpty:
			cost.Cycles = cost.Reads
			return label.None, cost, false
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

// InsertWildcard stores the wildcard label.
func (h *HashTable) InsertWildcard(lab label.Label) hwsim.Cost {
	h.wild.set(lab)
	return hwsim.Cost{Cycles: 1, Writes: 1}
}

// DeleteWildcard removes the wildcard label.
func (h *HashTable) DeleteWildcard() (label.Label, hwsim.Cost, bool) {
	lab, ok := h.wild.clear()
	return lab, hwsim.Cost{Cycles: 1, Writes: 1}, ok
}

// Lookup probes for the exact value, then appends the wildcard.
func (h *HashTable) Lookup(v uint8, buf []label.Label) ([]label.Label, hwsim.Cost) {
	return h.LookupKey(uint32(v), buf)
}

// LookupKey probes a full-width key.
func (h *HashTable) LookupKey(key uint32, buf []label.Label) ([]label.Label, hwsim.Cost) {
	var cost hwsim.Cost
	i := h.hash(key)
	for {
		cost.Reads++
		s := &h.slots[i]
		switch {
		case s.state == htUsed && s.key == key:
			cost.Cycles = cost.Reads
			return h.wild.append(append(buf, s.lab)), cost
		case s.state == htEmpty:
			cost.Cycles = cost.Reads
			return h.wild.append(buf), cost
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

// Memory reports the slot array (32-bit key + 16-bit label + state).
func (h *HashTable) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("hashtable", 50, len(h.slots))
	return mm
}
