// Package exactmatch implements the exact-matching engine candidates for
// the protocol field (Section III.C.3): direct indexing for the small
// protocol value set, and a hash table "for future expansions of the data
// set". Both support the label method and single-cycle-class lookups.
//
// Protocol rules may also be wildcards; the engines store an optional
// wildcard label that is appended after any exact match (the exact value
// is more specific, so it has higher label priority).
package exactmatch

import (
	"errors"

	"repro/internal/hwsim"
	"repro/internal/label"
)

// ErrFull is returned when the hash table cannot grow further.
var ErrFull = errors.New("exact-match engine full")

// Engine is the common shape of the exact-matching candidates, keyed by
// the 8-bit protocol value. A wildcard entry is stored via InsertWildcard.
type Engine interface {
	// Insert stores the value with its label, replacing any existing
	// label for the value.
	Insert(v uint8, lab label.Label) (hwsim.Cost, error)
	// Delete removes the value, returning its label and presence.
	Delete(v uint8) (label.Label, hwsim.Cost, bool)
	// InsertWildcard stores the wildcard label.
	InsertWildcard(lab label.Label) hwsim.Cost
	// DeleteWildcard removes the wildcard label.
	DeleteWildcard() (label.Label, hwsim.Cost, bool)
	// Lookup appends the labels matching v: the exact label first if
	// present, then the wildcard label if set.
	Lookup(v uint8, buf []label.Label) ([]label.Label, hwsim.Cost)
	// Len returns the number of stored exact values (excluding the
	// wildcard).
	Len() int
	// Memory reports the occupied RAM.
	Memory() hwsim.MemoryMap
}

// wildcard is the shared wildcard-label slot.
type wildcard struct {
	lab label.Label
	has bool
}

func (w *wildcard) set(lab label.Label) { w.lab, w.has = lab, true }

func (w *wildcard) clear() (label.Label, bool) {
	if !w.has {
		return label.None, false
	}
	lab := w.lab
	w.has = false
	return lab, true
}

func (w *wildcard) append(buf []label.Label) []label.Label {
	if w.has {
		buf = append(buf, w.lab)
	}
	return buf
}
