package exactmatch

import (
	"math/rand"
	"testing"

	"repro/internal/label"
	"repro/internal/rule"
)

func engines() map[string]func() Engine {
	return map[string]func() Engine{
		"directindex": func() Engine { return NewDirectIndex() },
		"hashtable":   func() Engine { return NewHashTable(16, 0) },
	}
}

func TestEnginesBasic(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			e := mk()
			if _, err := e.Insert(rule.ProtoTCP, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Insert(rule.ProtoUDP, 2); err != nil {
				t.Fatal(err)
			}
			if e.Len() != 2 {
				t.Fatalf("Len = %d, want 2", e.Len())
			}
			got, _ := e.Lookup(rule.ProtoTCP, nil)
			if len(got) != 1 || got[0] != 1 {
				t.Fatalf("Lookup(TCP) = %v", got)
			}
			got, _ = e.Lookup(rule.ProtoICMP, nil)
			if len(got) != 0 {
				t.Fatalf("Lookup(ICMP) = %v, want empty", got)
			}
			// Replace.
			if _, err := e.Insert(rule.ProtoTCP, 9); err != nil {
				t.Fatal(err)
			}
			if e.Len() != 2 {
				t.Fatalf("Len after replace = %d", e.Len())
			}
			got, _ = e.Lookup(rule.ProtoTCP, nil)
			if len(got) != 1 || got[0] != 9 {
				t.Fatalf("Lookup after replace = %v", got)
			}
			// Delete.
			lab, _, ok := e.Delete(rule.ProtoTCP)
			if !ok || lab != 9 {
				t.Fatalf("Delete = %v,%v", lab, ok)
			}
			if _, _, ok := e.Delete(rule.ProtoTCP); ok {
				t.Error("double delete reported found")
			}
			got, _ = e.Lookup(rule.ProtoTCP, nil)
			if len(got) != 0 {
				t.Fatalf("Lookup after delete = %v", got)
			}
		})
	}
}

func TestWildcardOrdering(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			e := mk()
			e.InsertWildcard(7)
			if _, err := e.Insert(rule.ProtoTCP, 3); err != nil {
				t.Fatal(err)
			}
			// Exact match first (higher label priority), wildcard second.
			got, _ := e.Lookup(rule.ProtoTCP, nil)
			if len(got) != 2 || got[0] != 3 || got[1] != 7 {
				t.Fatalf("Lookup = %v, want [L3 L7]", got)
			}
			got, _ = e.Lookup(rule.ProtoUDP, nil)
			if len(got) != 1 || got[0] != 7 {
				t.Fatalf("Lookup(UDP) = %v, want [L7]", got)
			}
			lab, _, ok := e.DeleteWildcard()
			if !ok || lab != 7 {
				t.Fatalf("DeleteWildcard = %v,%v", lab, ok)
			}
			if _, _, ok := e.DeleteWildcard(); ok {
				t.Error("double wildcard delete reported found")
			}
			got, _ = e.Lookup(rule.ProtoUDP, nil)
			if len(got) != 0 {
				t.Fatalf("Lookup after wildcard delete = %v", got)
			}
		})
	}
}

func TestDirectIndexSingleCycle(t *testing.T) {
	d := NewDirectIndex()
	if _, err := d.Insert(rule.ProtoTCP, 1); err != nil {
		t.Fatal(err)
	}
	_, cost := d.Lookup(rule.ProtoTCP, nil)
	if cost.Cycles != 1 {
		t.Errorf("direct index lookup cycles = %d, want 1 (paper Section IV.C)", cost.Cycles)
	}
}

func TestEnginesMatchEachOther(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	d, h := NewDirectIndex(), NewHashTable(16, 0)
	present := make(map[uint8]label.Label)
	for i := 0; i < 2000; i++ {
		v := uint8(rnd.Intn(256))
		switch rnd.Intn(3) {
		case 0:
			lab := label.Label(rnd.Intn(1000))
			if _, err := d.Insert(v, lab); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Insert(v, lab); err != nil {
				t.Fatal(err)
			}
			present[v] = lab
		case 1:
			_, _, okD := d.Delete(v)
			_, _, okH := h.Delete(v)
			if okD != okH {
				t.Fatalf("delete presence mismatch for %d: %v vs %v", v, okD, okH)
			}
			delete(present, v)
		default:
			a, _ := d.Lookup(v, nil)
			b, _ := h.Lookup(v, nil)
			if len(a) != len(b) || (len(a) == 1 && a[0] != b[0]) {
				t.Fatalf("lookup mismatch for %d: %v vs %v", v, a, b)
			}
			if want, ok := present[v]; ok {
				if len(a) != 1 || a[0] != want {
					t.Fatalf("lookup(%d) = %v, want [%v]", v, a, want)
				}
			} else if len(a) != 0 {
				t.Fatalf("lookup(%d) = %v, want empty", v, a)
			}
		}
	}
	if d.Len() != len(present) || h.Len() != len(present) {
		t.Fatalf("Len mismatch: direct=%d hash=%d want=%d", d.Len(), h.Len(), len(present))
	}
}

func TestHashTableGrowsAndWideKeys(t *testing.T) {
	h := NewHashTable(16, 0)
	for i := 0; i < 5000; i++ {
		if _, err := h.InsertKey(uint32(i*2654435761), label.Label(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", h.Len())
	}
	for i := 0; i < 5000; i += 37 {
		got, _ := h.LookupKey(uint32(i*2654435761), nil)
		if len(got) != 1 || got[0] != label.Label(i) {
			t.Fatalf("LookupKey(%d) = %v", i, got)
		}
	}
	// Delete everything; tombstones must not break lookups.
	for i := 0; i < 5000; i++ {
		if _, _, ok := h.DeleteKey(uint32(i * 2654435761)); !ok {
			t.Fatalf("DeleteKey(%d) not found", i)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after deletes = %d", h.Len())
	}
	got, _ := h.LookupKey(42, nil)
	if len(got) != 0 {
		t.Fatalf("lookup in emptied table = %v", got)
	}
}

func TestHashTableCapacityBound(t *testing.T) {
	h := NewHashTable(16, 32)
	var sawFull bool
	for i := 0; i < 100; i++ {
		if _, err := h.InsertKey(uint32(i), label.Label(i)); err == ErrFull {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Error("bounded hash table never reported ErrFull")
	}
}

func TestMemoryReports(t *testing.T) {
	d, h := NewDirectIndex(), NewHashTable(1024, 0)
	if d.Memory().TotalBytes() == 0 || h.Memory().TotalBytes() == 0 {
		t.Error("memory reports should be non-zero")
	}
	// Direct index is fixed-size regardless of content.
	before := d.Memory().TotalBytes()
	if _, err := d.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if d.Memory().TotalBytes() != before {
		t.Error("direct index memory should be constant")
	}
}
