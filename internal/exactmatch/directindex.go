package exactmatch

import (
	"repro/internal/hwsim"
	"repro/internal/label"
)

// DirectIndex is a 256-entry table addressed directly by the protocol
// value: the single-cycle engine of the paper ("the protocol label search
// is executed in a single clock cycle").
type DirectIndex struct {
	table [256]struct {
		lab label.Label
		has bool
	}
	wild  wildcard
	count int
}

// NewDirectIndex returns an empty table.
func NewDirectIndex() *DirectIndex { return &DirectIndex{} }

// Len returns the number of stored exact values.
func (d *DirectIndex) Len() int { return d.count }

// Insert stores the value's label; always succeeds.
func (d *DirectIndex) Insert(v uint8, lab label.Label) (hwsim.Cost, error) {
	if !d.table[v].has {
		d.count++
	}
	d.table[v].lab, d.table[v].has = lab, true
	return hwsim.Cost{Cycles: 1, Writes: 1}, nil
}

// Delete removes the value.
func (d *DirectIndex) Delete(v uint8) (label.Label, hwsim.Cost, bool) {
	if !d.table[v].has {
		return label.None, hwsim.Cost{Cycles: 1, Reads: 1}, false
	}
	lab := d.table[v].lab
	d.table[v].has = false
	d.count--
	return lab, hwsim.Cost{Cycles: 1, Writes: 1}, true
}

// InsertWildcard stores the wildcard label.
func (d *DirectIndex) InsertWildcard(lab label.Label) hwsim.Cost {
	d.wild.set(lab)
	return hwsim.Cost{Cycles: 1, Writes: 1}
}

// DeleteWildcard removes the wildcard label.
func (d *DirectIndex) DeleteWildcard() (label.Label, hwsim.Cost, bool) {
	lab, ok := d.wild.clear()
	return lab, hwsim.Cost{Cycles: 1, Writes: 1}, ok
}

// Lookup reads one table word: exact label first, then wildcard.
//
//repro:noalloc
func (d *DirectIndex) Lookup(v uint8, buf []label.Label) ([]label.Label, hwsim.Cost) {
	cost := hwsim.Cost{Cycles: 1, Reads: 1}
	if d.table[v].has {
		buf = append(buf, d.table[v].lab)
	}
	return d.wild.append(buf), cost
}

// Memory reports the fixed 256-word table (16-bit label + valid bit).
func (d *DirectIndex) Memory() hwsim.MemoryMap {
	var mm hwsim.MemoryMap
	mm.Add("directindex", 17, 256)
	return mm
}
