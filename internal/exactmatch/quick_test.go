package exactmatch

import (
	"testing"
	"testing/quick"

	"repro/internal/label"
)

// TestQuickEnginesAgree drives the direct index and the hash table with
// identical operation sequences; both must expose identical contents.
func TestQuickEnginesAgree(t *testing.T) {
	type op struct {
		V      uint8
		Lab    uint16
		Delete bool
	}
	f := func(ops []op, probes []uint8) bool {
		d, h := NewDirectIndex(), NewHashTable(16, 0)
		for _, o := range ops {
			if o.Delete {
				_, _, okD := d.Delete(o.V)
				_, _, okH := h.Delete(o.V)
				if okD != okH {
					return false
				}
				continue
			}
			if _, err := d.Insert(o.V, label.Label(o.Lab)); err != nil {
				return false
			}
			if _, err := h.Insert(o.V, label.Label(o.Lab)); err != nil {
				return false
			}
		}
		if d.Len() != h.Len() {
			return false
		}
		for _, p := range probes {
			a, _ := d.Lookup(p, nil)
			b, _ := h.Lookup(p, nil)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickHashTableMirrorsMap checks the hash table against a plain map
// under wide 32-bit keys, including tombstone reuse.
func TestQuickHashTableMirrorsMap(t *testing.T) {
	type op struct {
		Key    uint32
		Lab    uint16
		Delete bool
	}
	f := func(ops []op) bool {
		h := NewHashTable(16, 0)
		ref := make(map[uint32]label.Label)
		for _, o := range ops {
			if o.Delete {
				_, _, ok := h.DeleteKey(o.Key)
				_, want := ref[o.Key]
				if ok != want {
					return false
				}
				delete(ref, o.Key)
				continue
			}
			if _, err := h.InsertKey(o.Key, label.Label(o.Lab)); err != nil {
				return false
			}
			ref[o.Key] = label.Label(o.Lab)
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			got, _ := h.LookupKey(k, nil)
			if len(got) != 1 || got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
