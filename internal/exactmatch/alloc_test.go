package exactmatch

import (
	"testing"

	"repro/internal/label"
	"repro/internal/rule"
)

// TestDirectIndexLookupZeroAllocs is the runtime counterpart of the
// //repro:noalloc annotation on DirectIndex.Lookup: with a caller-
// supplied result buffer the single-probe path must stay off the heap.
func TestDirectIndexLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	d := NewDirectIndex()
	if _, err := d.Insert(uint8(rule.ProtoTCP), 1); err != nil {
		t.Fatal(err)
	}
	d.InsertWildcard(7)
	buf := make([]label.Label, 0, 8)
	matched := 0
	allocs := testing.AllocsPerRun(1000, func() {
		out, _ := d.Lookup(uint8(rule.ProtoTCP), buf[:0])
		matched += len(out)
	})
	if allocs != 0 {
		t.Errorf("Lookup allocated %v times per run, want 0", allocs)
	}
	if matched == 0 {
		t.Fatal("exact + wildcard labels should match")
	}
}
