package ctl

import (
	"bytes"
	"net"
	"testing"
	"time"

	repro "repro"
)

// fuzzConn is a one-directional fake net.Conn: the server reads the
// fuzz input as its request stream and every response is discarded.
// Deadlines are no-ops, so the read loop runs the input to EOF.
type fuzzConn struct {
	r *bytes.Reader
}

func (c *fuzzConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fuzzConn) Close() error                     { return nil }
func (c *fuzzConn) LocalAddr() net.Addr              { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr             { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error      { return nil }
func (c *fuzzConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(time.Time) error { return nil }

type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz" }

var _ net.Conn = (*fuzzConn)(nil)

// FuzzServerStream feeds arbitrary bytes to the server's connection
// read loop — command dispatch, the header and rule-line parsers, and
// the pipelined BULK/SWAP body framing included. The property is
// simply that no input panics or wedges the handler: every parse error
// must surface as an ERR response (discarded here), never a crash.
func FuzzServerStream(f *testing.F) {
	f.Add([]byte("LOOKUP 10.0.0.1 8.8.8.8 999 80 6\nQUIT\n"))
	f.Add([]byte("INSERT 1 1 permit @10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xff\nDELETE 1\n"))
	f.Add([]byte("BULK 2\n1 1 permit @0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n2 2 deny @0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n"))
	f.Add([]byte("SWAP 1\n1 1 permit @0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\n"))
	f.Add([]byte("BULK 99999999\n"))
	f.Add([]byte("BULK -3\nSWAP x\n"))
	f.Add([]byte("MLOOKUP 1.2.3.4 5.6.7.8 1 2 3 9.9.9.9 8.8.8.8 4 5 6\n"))
	f.Add([]byte("TABLE CREATE t linear 2 64\nTABLE USE t\nTABLE LIST\nTABLE DROP t\n"))
	f.Add([]byte("SNAPSHOT\nSNAPSHOT SAVE x\nRESTORE x\nRESET\nSTATS\nTHROUGHPUT\n"))
	f.Add([]byte("LOOKUP 999.0.0.1 8.8.8.8 70000 80 600\n"))
	f.Add([]byte("\x00\xff\xfe\n\n\n  \t \nQUIT extra\n"))
	f.Add([]byte("TABLE\nTABLE FROB\nTABLE CREATE bad/name linear\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := repro.New(repro.WithBackend(repro.BackendLinear))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(eng)
		srv.IdleTimeout = -1 // the fake conn has no deadlines anyway
		srv.MaxLineBytes = 1 << 16
		srv.handle(&fuzzConn{r: bytes.NewReader(data)})
	})
}
