// Package ctl implements the decision-control channel between the host
// and the lookup domain. In the paper's prototype the two domains share a
// network interface over PCIe, with the control platform driving updates
// and receiving lookup results; here the same split runs over any
// net.Conn with a line-oriented text protocol, so the classifier can be
// deployed as a standalone daemon (cmd/classifierd) with remote rule
// updates — the software-programmability story of the paper's conclusion.
//
// Protocol (one request per line, one response per line):
//
//	INSERT <id> <prio> <action> @<classbench rule>   -> OK <cycles>
//	DELETE <id>                                      -> OK <cycles>
//	LOOKUP <src> <dst> <sport> <dport> <proto>       -> MATCH <id> <prio> <action> | NOMATCH
//	STATS                                            -> STATS <rules> <probes> <ops> <maxlist> <overflows>
//	THROUGHPUT                                       -> THROUGHPUT <cycles/pkt> <mpps> <gbps>
//	QUIT                                             -> BYE
//
// Errors are reported as "ERR <message>". The protocol is deliberately
// text-based and stateless per line: it stands in for the paper's
// file-driven control simulation while staying debuggable with netcat.
package ctl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rule"
)

// Command names.
const (
	cmdInsert     = "INSERT"
	cmdDelete     = "DELETE"
	cmdLookup     = "LOOKUP"
	cmdStats      = "STATS"
	cmdThroughput = "THROUGHPUT"
	cmdQuit       = "QUIT"
)

// parseAction maps the protocol action token.
func parseAction(s string) (rule.Action, error) {
	switch strings.ToLower(s) {
	case "permit":
		return rule.ActionPermit, nil
	case "deny":
		return rule.ActionDeny, nil
	case "queue":
		return rule.ActionQueue, nil
	case "mirror":
		return rule.ActionMirror, nil
	case "count":
		return rule.ActionCount, nil
	default:
		return 0, fmt.Errorf("unknown action %q", s)
	}
}

// parseInsert parses "INSERT <id> <prio> <action> @rule...".
func parseInsert(args string) (rule.Rule, error) {
	fields := strings.Fields(args)
	if len(fields) < 4 {
		return rule.Rule{}, fmt.Errorf("INSERT wants <id> <prio> <action> @rule")
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil || id <= 0 {
		return rule.Rule{}, fmt.Errorf("rule id %q", fields[0])
	}
	prio, err := strconv.Atoi(fields[1])
	if err != nil || prio <= 0 {
		return rule.Rule{}, fmt.Errorf("priority %q", fields[1])
	}
	action, err := parseAction(fields[2])
	if err != nil {
		return rule.Rule{}, err
	}
	at := strings.Index(args, "@")
	if at < 0 {
		return rule.Rule{}, fmt.Errorf("missing @rule body")
	}
	r, err := rule.ParseRule(args[at:])
	if err != nil {
		return rule.Rule{}, err
	}
	r.ID, r.Priority, r.Action = id, prio, action
	return r, nil
}

// parseLookup parses "LOOKUP <src> <dst> <sport> <dport> <proto>" with
// dotted-quad addresses.
func parseLookup(args string) (rule.Header, error) {
	fields := strings.Fields(args)
	if len(fields) != 5 {
		return rule.Header{}, fmt.Errorf("LOOKUP wants 5 fields, got %d", len(fields))
	}
	src, err := parseAddr(fields[0])
	if err != nil {
		return rule.Header{}, err
	}
	dst, err := parseAddr(fields[1])
	if err != nil {
		return rule.Header{}, err
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("source port %q", fields[2])
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("destination port %q", fields[3])
	}
	pr, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return rule.Header{}, fmt.Errorf("protocol %q", fields[4])
	}
	return rule.Header{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(pr),
	}, nil
}

func parseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q", s)
		}
		addr = addr<<8 | uint32(b)
	}
	return addr, nil
}

func formatAddr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}
