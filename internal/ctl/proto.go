// Package ctl implements the decision-control channel between the host
// and the lookup domain. In the paper's prototype the two domains share a
// network interface over PCIe, with the control platform driving updates
// and receiving lookup results; here the same split runs over any
// net.Conn with a line-oriented text protocol, so the classifier can be
// deployed as a standalone daemon (cmd/classifierd) with remote rule
// updates — the software-programmability story of the paper's conclusion.
//
// The server is multi-tenant but owns no table state itself: the named
// tables live in the shared repro/internal/tables registry (each backed
// by its own engine — any repro backend, optionally sharded), and this
// package is only the line-protocol front end over that registry.
// TABLE CREATE/DROP/LIST delegate to the registry's lifecycle, data
// commands resolve their table through its lock-free read path, and the
// daemon's HTTP plane (JSON admin API, Prometheus /metrics) shares the
// same registry, so every surface sees the same tables and the same
// per-table counters. Every connection addresses one current table
// (initially "main"); lookups and updates go to the engine of the
// current table, so one daemon serves heterogeneous workloads side by
// side.
//
// Protocol grammar (one request per line, one response per line, except
// BULK which pipelines n body lines before its single response):
//
//	TABLE CREATE <name> <backend> [<shards> [<cache> [<state>]]] -> OK
//	TABLE CREATE <name> v6                           -> OK
//	TABLE DROP <name>                                -> OK
//	TABLE USE <name>                                 -> OK
//	TABLE LIST                                       -> TABLES <name>:<backend>:<shards>:<rules> ...
//	INSERT <id> <prio> <action> @<classbench rule>   -> OK <cycles>
//	BULK <n>                                         -> OK <n> <cycles>
//	  (followed by n lines, each "<id> <prio> <action> @<classbench rule>")
//	DELETE <id>                                      -> OK <cycles>
//	LOOKUP <src> <dst> <sport> <dport> <proto>       -> MATCH <id> <prio> <action> | NOMATCH
//	MLOOKUP (<src> <dst> <sport> <dport> <proto>)+   -> RESULTS <r>... with r = <id>:<prio>:<action> | -
//	SNAPSHOT                                         -> SNAPSHOT <n> <crc32>, then n rule lines
//	SNAPSHOT SAVE <name>                             -> OK <n>
//	RESTORE <name>                                   -> OK <n> <cycles>
//	RESET                                            -> OK <cycles>
//	SWAP <n>                                         -> OK <n> <cycles>
//	  (followed by n lines, each "<id> <prio> <action> @<classbench rule>")
//	STATS                                            -> STATS <rules> <probes> <ops> <maxlist> <overflows>
//	                                                    [CACHE <hits> <misses> <evictions>]
//	                                                    [STATE <installs> <hits> <expiries> <evictions>]
//	                                                    OPS <lookups> <updates> <swaps> <errors>
//	THROUGHPUT                                       -> THROUGHPUT <cycles/pkt> <mpps> <gbps>
//	QUIT                                             -> BYE
//
// <backend> is any spelling repro.ParseBackend accepts ("decomposition",
// "linear", "tss", ...); <shards> defaults to 1. <cache> fronts the
// table's engine with an exact-match flow cache of that many slots
// (repro.WithFlowCache); cached tables append their hit/miss/eviction
// counters to the STATS response. <state> fronts the engine with a
// flow-state (conntrack) table of that many entries
// (repro.WithFlowState, with the default TTL): a lookup whose matched
// rule carries the "allow-established" action installs a flow entry
// covering both directions, so reply traffic is accepted by state
// before the classifier runs, and a whole-ruleset SWAP clears
// established state by a single generation bump. Stateful tables append
// a STATE section (installs, state hits, TTL expiries, evictions) to
// the STATS response, between the CACHE section (when present) and OPS.
// Every STATS response ends with an OPS section carrying the table's
// serving-layer counters (lookups, updates, swaps, errors) — the same
// typed tables.TableStats record the JSON admin API and /metrics
// render, so the surfaces cannot disagree.
//
// Rule actions on the wire use the rule.ParseAction mnemonics: permit,
// deny, queue, mirror, count and allow-established — the INSERT,
// BULK/SWAP body and snapshot-file grammars all accept them.
//
// "TABLE CREATE <name> v6" creates an IPv6 table instead, backed by a
// split-64 decomposition engine (repro.New6); IPv6 tables take no shard
// or cache arguments and list their backend as "v6". Every data command
// keeps its line shape on an IPv6 table but switches address grammar:
// rule lines (INSERT, BULK/SWAP bodies, SNAPSHOT dumps) use the
// rule.ParseRule6 colon-hex prefix notation, and LOOKUP/MLOOKUP
// addresses are eight colon-separated 16-bit hex groups (no "::"
// compression — the spelling Prefix6.String emits). Snapshot files of
// IPv6 tables carry the snapfile "family" attr, so RESTORE refuses to
// load a snapshot across families. MLOOKUP takes k headers
// (5 fields each) on one line and classifies them as one batch against a
// single consistent snapshot per shard; BULK streams k inserts and
// returns one summed response, so a client can pipeline a whole ruleset
// without per-rule round trips.
//
// The snapshot commands treat a whole ruleset as one unit, mirroring
// the paper's full-ruleset download model. SNAPSHOT dumps the current
// table's rules from one consistent engine snapshot: the first response
// line carries the rule count and an IEEE CRC-32 over the rule lines
// (the same arithmetic as the repro/internal/snapfile format), followed
// by one line per rule in the BULK body shape, sorted by ascending rule
// ID. SNAPSHOT SAVE writes that dump as a checksummed snapshot file
// named <name>.snap in the server's snapshot directory (an error if the
// server was started without one); RESTORE reads <name>.snap back and
// atomically replaces the current table's ruleset with it. RESET
// atomically clears the current table. SWAP pipelines n rule lines like
// BULK but applies them as ONE atomic replacement: concurrent lookups
// observe the complete old ruleset or the complete new one, never the
// partial states an Insert/Delete churn would expose. Snapshot names
// follow the table-name syntax, so they cannot escape the snapshot
// directory.
//
// The protocol is pipelining-safe: the server reads one line at a
// time and answers strictly in order, so a client may write several
// requests before draining their responses. Client.PipelineLookups
// exploits this for workload replay — a backlog of LOOKUP lines goes
// out as one write and the verdicts stream back in request order, each
// lookup still dispatched independently against the freshest ruleset
// (MLOOKUP, by contrast, classifies its whole batch against one
// consistent snapshot per shard; choose by whether snapshot consistency
// or update freshness is the point).
//
// Errors are reported as "ERR <message>". Errors inside an accepted
// BULK or SWAP transfer still drain all n body lines, keeping the
// stream in sync; a count that cannot be accepted closes the
// connection, since the pipelined body cannot be framed without it. A
// connection that violates the transport itself — a line over the
// server's size limit, or idling past the server's deadline — receives
// a final "ERR read: ..." line before the connection closes. The
// protocol is deliberately text-based: it stands in for the paper's
// file-driven control simulation while staying debuggable with netcat.
package ctl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rule"
	"repro/internal/snapfile"
	"repro/internal/tables"
)

// Command names.
const (
	cmdInsert     = "INSERT"
	cmdBulk       = "BULK"
	cmdDelete     = "DELETE"
	cmdLookup     = "LOOKUP"
	cmdMLookup    = "MLOOKUP"
	cmdSnapshot   = "SNAPSHOT"
	cmdRestore    = "RESTORE"
	cmdReset      = "RESET"
	cmdSwap       = "SWAP"
	cmdStats      = "STATS"
	cmdThroughput = "THROUGHPUT"
	cmdTable      = "TABLE"
	cmdQuit       = "QUIT"
)

// TABLE and SNAPSHOT subcommands.
const (
	subCreate = "CREATE"
	subDrop   = "DROP"
	subUse    = "USE"
	subList   = "LIST"
	subSave   = "SAVE"
)

// tokenV6 selects the IPv6 data path: it replaces the backend argument
// in TABLE CREATE, stands for the backend in the TABLES listing, and is
// the snapfile family attr value of IPv6 snapshots.
const tokenV6 = "v6"

// parseInsert parses "<id> <prio> <action> @rule...", the argument shape
// shared by INSERT, each BULK/SWAP body line, and the snapshot file
// format — the grammar lives in repro/internal/snapfile so the wire and
// disk forms can never drift apart.
func parseInsert(args string) (rule.Rule, error) {
	return snapfile.ParseRuleLine(args)
}

// parseHeader decodes one 5-field header group (dotted-quad addresses).
func parseHeader(fields []string) (rule.Header, error) {
	src, err := parseAddr(fields[0])
	if err != nil {
		return rule.Header{}, err
	}
	dst, err := parseAddr(fields[1])
	if err != nil {
		return rule.Header{}, err
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("source port %q", fields[2])
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("destination port %q", fields[3])
	}
	pr, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return rule.Header{}, fmt.Errorf("protocol %q", fields[4])
	}
	return rule.Header{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(pr),
	}, nil
}

// parseLookup parses the LOOKUP argument list: exactly one header.
func parseLookup(args string) (rule.Header, error) {
	fields := strings.Fields(args)
	if len(fields) != 5 {
		return rule.Header{}, fmt.Errorf("LOOKUP wants 5 fields, got %d", len(fields))
	}
	return parseHeader(fields)
}

// parseInsert6 parses the IPv6 spelling of the INSERT argument shape,
// shared with BULK/SWAP body lines on IPv6 tables and the IPv6 snapshot
// file format.
func parseInsert6(args string) (rule.Rule6, error) {
	return snapfile.ParseRuleLine6(args)
}

// parseAddr6 decodes an IPv6 address as eight colon-separated 16-bit
// hex groups — the uncompressed spelling Prefix6.String emits ("::"
// runs are not accepted, keeping the wire and disk grammars identical).
func parseAddr6(s string) (rule.Addr6, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 8 {
		return rule.Addr6{}, fmt.Errorf("IPv6 address %q", s)
	}
	var a rule.Addr6
	for i, p := range parts {
		g, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return rule.Addr6{}, fmt.Errorf("IPv6 address %q", s)
		}
		if i < 4 {
			a.Hi = a.Hi<<16 | g
		} else {
			a.Lo = a.Lo<<16 | g
		}
	}
	return a, nil
}

// parseHeader6 decodes one 5-field header group with colon-hex
// addresses, the IPv6 twin of parseHeader.
func parseHeader6(fields []string) (rule.Header6, error) {
	src, err := parseAddr6(fields[0])
	if err != nil {
		return rule.Header6{}, err
	}
	dst, err := parseAddr6(fields[1])
	if err != nil {
		return rule.Header6{}, err
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return rule.Header6{}, fmt.Errorf("source port %q", fields[2])
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return rule.Header6{}, fmt.Errorf("destination port %q", fields[3])
	}
	pr, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return rule.Header6{}, fmt.Errorf("protocol %q", fields[4])
	}
	return rule.Header6{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(pr),
	}, nil
}

// parseLookup6 parses the LOOKUP argument list on an IPv6 table.
func parseLookup6(args string) (rule.Header6, error) {
	fields := strings.Fields(args)
	if len(fields) != 5 {
		return rule.Header6{}, fmt.Errorf("LOOKUP wants 5 fields, got %d", len(fields))
	}
	return parseHeader6(fields)
}

// parseMLookup6 parses the MLOOKUP argument list on an IPv6 table.
func parseMLookup6(args string) ([]rule.Header6, error) {
	fields := strings.Fields(args)
	if len(fields) == 0 || len(fields)%5 != 0 {
		return nil, fmt.Errorf("MLOOKUP wants k*5 fields, got %d", len(fields))
	}
	hs := make([]rule.Header6, len(fields)/5)
	for i := range hs {
		h, err := parseHeader6(fields[i*5 : i*5+5])
		if err != nil {
			return nil, fmt.Errorf("header %d: %w", i, err)
		}
		hs[i] = h
	}
	return hs, nil
}

// parseMLookup parses the MLOOKUP argument list: k headers, 5 fields
// each, on one line.
func parseMLookup(args string) ([]rule.Header, error) {
	fields := strings.Fields(args)
	if len(fields) == 0 || len(fields)%5 != 0 {
		return nil, fmt.Errorf("MLOOKUP wants k*5 fields, got %d", len(fields))
	}
	hs := make([]rule.Header, len(fields)/5)
	for i := range hs {
		h, err := parseHeader(fields[i*5 : i*5+5])
		if err != nil {
			return nil, fmt.Errorf("header %d: %w", i, err)
		}
		hs[i] = h
	}
	return hs, nil
}

// formatResult encodes one batch lookup outcome as a RESULTS token.
func formatResult(r core.Result) string {
	if !r.Found {
		return "-"
	}
	return fmt.Sprintf("%d:%d:%s", r.RuleID, r.Priority, r.Action)
}

// validTableName reports whether a table name is protocol-safe:
// non-empty and free of whitespace and the ':' used by the TABLES
// listing. The registry owns the one definition so every surface
// accepts the same names.
func validTableName(name string) bool { return tables.ValidName(name) }

func parseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q", s)
		}
		addr = addr<<8 | uint32(b)
	}
	return addr, nil
}

func formatAddr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

func formatAddr6(a rule.Addr6) string {
	return fmt.Sprintf("%04x:%04x:%04x:%04x:%04x:%04x:%04x:%04x",
		uint16(a.Hi>>48), uint16(a.Hi>>32), uint16(a.Hi>>16), uint16(a.Hi),
		uint16(a.Lo>>48), uint16(a.Lo>>32), uint16(a.Lo>>16), uint16(a.Lo))
}
