package ctl

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/rule"
	"repro/internal/snapfile"
	"repro/internal/tables"
)

// Client is the host-side decision controller's view of a remote lookup
// domain. It is safe for sequential use only (one request in flight), like
// the paper's single PCIe channel.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a classifier daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close tears the channel down, sending QUIT best-effort.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, cmdQuit)
	return c.conn.Close()
}

func (c *Client) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", fmt.Errorf("ctl send: %w", err)
	}
	return c.readResponse()
}

func (c *Client) readResponse() (string, error) {
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("ctl recv: %w", err)
	}
	resp = strings.TrimSpace(resp)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("ctl: %s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// expectOK consumes a bare "OK" response.
func (c *Client) expectOK(line string) error {
	resp, err := c.roundTrip(line)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("ctl: unexpected response %q", resp)
	}
	return nil
}

// TableCreate creates a named table backed by a fresh engine on the
// daemon; backend is a repro.ParseBackend spelling and shards >= 1.
func (c *Client) TableCreate(name, backend string, shards int) error {
	return c.expectOK(fmt.Sprintf("%s %s %s %s %d", cmdTable, subCreate, name, backend, shards))
}

// TableCreateCached creates a named table whose engine is fronted by an
// exact-match flow cache of cacheEntries slots.
func (c *Client) TableCreateCached(name, backend string, shards, cacheEntries int) error {
	return c.expectOK(fmt.Sprintf("%s %s %s %s %d %d", cmdTable, subCreate, name, backend, shards, cacheEntries))
}

// TableCreateStateful creates a named table whose engine carries a
// flow-state (conntrack) table of stateEntries slots on top of any
// shards/cache composition; pass cacheEntries 0 for no cache.
func (c *Client) TableCreateStateful(name, backend string, shards, cacheEntries, stateEntries int) error {
	return c.expectOK(fmt.Sprintf("%s %s %s %s %d %d %d",
		cmdTable, subCreate, name, backend, shards, cacheEntries, stateEntries))
}

// TableCreateV6 creates a named IPv6 table backed by a fresh split-64
// decomposition engine on the daemon.
func (c *Client) TableCreateV6(name string) error {
	return c.expectOK(fmt.Sprintf("%s %s %s %s", cmdTable, subCreate, name, tokenV6))
}

// TableDrop removes a named table.
func (c *Client) TableDrop(name string) error {
	return c.expectOK(fmt.Sprintf("%s %s %s", cmdTable, subDrop, name))
}

// TableUse switches this connection's current table.
func (c *Client) TableUse(name string) error {
	return c.expectOK(fmt.Sprintf("%s %s %s", cmdTable, subUse, name))
}

// TableInfo is one row of the daemon's table listing.
type TableInfo struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	Shards  int    `json:"shards"`
	Rules   int    `json:"rules"`
}

// Tables lists the daemon's tables.
func (c *Client) Tables() ([]TableInfo, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %s", cmdTable, subList))
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(resp)
	if len(fields) == 0 || fields[0] != "TABLES" {
		return nil, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	infos := make([]TableInfo, 0, len(fields)-1)
	for _, tok := range fields[1:] {
		parts := strings.Split(tok, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("ctl: table entry %q", tok)
		}
		shards, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("ctl: table entry %q", tok)
		}
		rules, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("ctl: table entry %q", tok)
		}
		infos = append(infos, TableInfo{Name: parts[0], Backend: parts[1], Shards: shards, Rules: rules})
	}
	return infos, nil
}

// Insert installs a rule remotely, returning the hardware update cycles.
func (c *Client) Insert(r rule.Rule) (int, error) {
	line := fmt.Sprintf("%s %s", cmdInsert, insertArgs(r))
	resp, err := c.roundTrip(line)
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp)
}

// insertArgs renders the "<id> <prio> <action> @rule" argument shape
// shared by INSERT and BULK/SWAP body lines — the snapfile line format,
// so the wire and disk forms stay identical.
func insertArgs(r rule.Rule) string { return snapfile.FormatRule(r) }

// Insert6 installs an IPv6 rule remotely; the current table must be an
// IPv6 table.
func (c *Client) Insert6(r rule.Rule6) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %s", cmdInsert, snapfile.FormatRule6(r)))
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp)
}

// bulkChunk bounds the rules per BULK transfer, keeping every transfer
// well inside the server's count limit whatever the caller passes.
const bulkChunk = 4096

// BulkInsert pipelines the rules through BULK transfers of up to 4096
// rules each: all body lines of a chunk are streamed before its single
// response is read, so a whole ruleset loads without per-rule round
// trips. It returns the summed hardware update cycles; on error,
// chunks already acknowledged remain installed.
func (c *Client) BulkInsert(rules []rule.Rule) (cycles int, err error) {
	if len(rules) > bulkChunk {
		for off := 0; off < len(rules); off += bulkChunk {
			end := off + bulkChunk
			if end > len(rules) {
				end = len(rules)
			}
			n, err := c.BulkInsert(rules[off:end])
			cycles += n
			if err != nil {
				return cycles, err
			}
		}
		return cycles, nil
	}
	if len(rules) == 0 {
		return 0, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", cmdBulk, len(rules))
	for _, r := range rules {
		b.WriteString(insertArgs(r))
		b.WriteByte('\n')
	}
	if _, err := c.conn.Write([]byte(b.String())); err != nil {
		return 0, fmt.Errorf("ctl send: %w", err)
	}
	resp, err := c.readResponse()
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "OK %d %d", &n, &cycles); err != nil {
		return 0, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	if n != len(rules) {
		return cycles, fmt.Errorf("ctl: bulk inserted %d of %d rules", n, len(rules))
	}
	return cycles, nil
}

// Snapshot dumps the current table's ruleset from one consistent
// engine snapshot, verifying the transfer against the server's CRC-32
// before returning it. Rules come back sorted by ascending ID.
func (c *Client) Snapshot() ([]rule.Rule, error) {
	resp, err := c.roundTrip(cmdSnapshot)
	if err != nil {
		return nil, err
	}
	var n int
	var sum uint32
	if _, err := fmt.Sscanf(resp, "SNAPSHOT %d %x", &n, &sum); err != nil {
		return nil, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	rules := make([]rule.Rule, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("ctl recv: snapshot rule %d of %d: %w", i+1, n, err)
		}
		r, err := snapfile.ParseRuleLine(strings.TrimSpace(line))
		if err != nil {
			return nil, fmt.Errorf("ctl: snapshot rule %d: %w", i+1, err)
		}
		rules = append(rules, r)
	}
	if got := snapfile.Checksum(rules); got != sum {
		return nil, fmt.Errorf("ctl: snapshot checksum mismatch: server %08x, received %08x", sum, got)
	}
	return rules, nil
}

// Snapshot6 dumps an IPv6 table's ruleset from one consistent engine
// snapshot, verifying the transfer against the server's CRC-32.
func (c *Client) Snapshot6() ([]rule.Rule6, error) {
	resp, err := c.roundTrip(cmdSnapshot)
	if err != nil {
		return nil, err
	}
	var n int
	var sum uint32
	if _, err := fmt.Sscanf(resp, "SNAPSHOT %d %x", &n, &sum); err != nil {
		return nil, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	rules := make([]rule.Rule6, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("ctl recv: snapshot rule %d of %d: %w", i+1, n, err)
		}
		r, err := snapfile.ParseRuleLine6(strings.TrimSpace(line))
		if err != nil {
			return nil, fmt.Errorf("ctl: snapshot rule %d: %w", i+1, err)
		}
		rules = append(rules, r)
	}
	if got := snapfile.Checksum6(rules); got != sum {
		return nil, fmt.Errorf("ctl: snapshot checksum mismatch: server %08x, received %08x", sum, got)
	}
	return rules, nil
}

// SnapshotSave persists the current table's ruleset as <name>.snap in
// the daemon's snapshot directory, returning the rule count written.
func (c *Client) SnapshotSave(name string) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %s %s", cmdSnapshot, subSave, name))
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp) // same "OK <n>" shape, n = rules written
}

// Restore atomically replaces the current table's ruleset with the
// contents of <name>.snap, returning the rule count and the hardware
// download cycles of the swap.
func (c *Client) Restore(name string) (rules, cycles int, err error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %s", cmdRestore, name))
	if err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "OK %d %d", &rules, &cycles); err != nil {
		return 0, 0, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	return rules, cycles, nil
}

// Reset atomically clears the current table's ruleset.
func (c *Client) Reset() (int, error) {
	resp, err := c.roundTrip(cmdReset)
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp)
}

// Swap pipelines the rules like BulkInsert but applies them as one
// atomic replacement of the current table's ruleset: remote lookups
// observe the complete old or the complete new ruleset, never a
// partial state. Unlike BulkInsert it never chunks — atomicity is the
// point — so the rule count must fit one SWAP transfer (the server
// bound is 2^20 lines). It returns the hardware download cycles.
func (c *Client) Swap(rules []rule.Rule) (cycles int, err error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", cmdSwap, len(rules))
	for _, r := range rules {
		b.WriteString(insertArgs(r))
		b.WriteByte('\n')
	}
	if _, err := c.conn.Write([]byte(b.String())); err != nil {
		return 0, fmt.Errorf("ctl send: %w", err)
	}
	resp, err := c.readResponse()
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "OK %d %d", &n, &cycles); err != nil {
		return 0, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	if n != len(rules) {
		return cycles, fmt.Errorf("ctl: swap applied %d of %d rules", n, len(rules))
	}
	return cycles, nil
}

// Delete removes a rule remotely.
func (c *Client) Delete(id int) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %d", cmdDelete, id))
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp)
}

func parseOKCycles(resp string) (int, error) {
	fields := strings.Fields(resp)
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	return strconv.Atoi(fields[1])
}

// LookupResult is the remote classification outcome.
type LookupResult struct {
	Found    bool
	RuleID   int
	Priority int
	Action   string
}

func headerArgs(h rule.Header) string {
	return fmt.Sprintf("%s %s %d %d %d",
		formatAddr(h.SrcIP), formatAddr(h.DstIP), h.SrcPort, h.DstPort, h.Proto)
}

// Lookup classifies a header remotely.
func (c *Client) Lookup(h rule.Header) (LookupResult, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %s", cmdLookup, headerArgs(h)))
	if err != nil {
		return LookupResult{}, err
	}
	if resp == "NOMATCH" {
		return LookupResult{}, nil
	}
	return parseMatch(resp)
}

func headerArgs6(h rule.Header6) string {
	return fmt.Sprintf("%s %s %d %d %d",
		formatAddr6(h.SrcIP), formatAddr6(h.DstIP), h.SrcPort, h.DstPort, h.Proto)
}

// Lookup6 classifies an IPv6 header remotely; the current table must be
// an IPv6 table.
func (c *Client) Lookup6(h rule.Header6) (LookupResult, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %s", cmdLookup, headerArgs6(h)))
	if err != nil {
		return LookupResult{}, err
	}
	if resp == "NOMATCH" {
		return LookupResult{}, nil
	}
	return parseMatch(resp)
}

// parseMatch decodes a "MATCH <id> <prio> <action>" response line.
func parseMatch(resp string) (LookupResult, error) {
	fields := strings.Fields(resp)
	if len(fields) != 4 || fields[0] != "MATCH" {
		return LookupResult{}, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return LookupResult{}, fmt.Errorf("ctl: rule id in %q", resp)
	}
	prio, err := strconv.Atoi(fields[2])
	if err != nil {
		return LookupResult{}, fmt.Errorf("ctl: priority in %q", resp)
	}
	return LookupResult{Found: true, RuleID: id, Priority: prio, Action: fields[3]}, nil
}

// pipelineChunk bounds the LOOKUP lines in flight per PipelineLookups
// write: both directions stay far below the kernel socket buffers, so
// the client can finish its write before draining a single response.
const pipelineChunk = 1024

// PipelineLookups classifies the headers as pipelined LOOKUP requests:
// all request lines go out in one write, then the responses are read
// back in order — one round trip for the whole run instead of one per
// header. Unlike MLookup (a single server-side batch against one
// consistent snapshot per shard), each pipelined lookup is dispatched
// independently and sees the freshest installed ruleset, which is the
// semantics a workload replay interleaving updates wants. A NOMATCH
// comes back as a zero LookupResult, like Lookup.
func (c *Client) PipelineLookups(hs []rule.Header) ([]LookupResult, error) {
	if len(hs) > pipelineChunk {
		out := make([]LookupResult, 0, len(hs))
		for off := 0; off < len(hs); off += pipelineChunk {
			end := off + pipelineChunk
			if end > len(hs) {
				end = len(hs)
			}
			part, err := c.PipelineLookups(hs[off:end])
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	}
	if len(hs) == 0 {
		return nil, nil
	}
	var b strings.Builder
	for _, h := range hs {
		b.WriteString(cmdLookup)
		b.WriteByte(' ')
		b.WriteString(headerArgs(h))
		b.WriteByte('\n')
	}
	if _, err := c.conn.Write([]byte(b.String())); err != nil {
		return nil, fmt.Errorf("ctl send: %w", err)
	}
	// Every request line has a response in flight: after the first bad
	// response the remaining ones are still drained, so the connection
	// stays framed and usable for the caller's next command. Only a
	// transport failure aborts the drain — nothing more can arrive.
	out := make([]LookupResult, len(hs))
	var firstErr error
	for i := range hs {
		raw, err := c.r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("ctl recv: pipelined lookup %d of %d: %w", i+1, len(hs), err)
		}
		resp := strings.TrimSpace(raw)
		if firstErr != nil {
			continue // draining
		}
		switch {
		case strings.HasPrefix(resp, "ERR "):
			firstErr = fmt.Errorf("ctl: pipelined lookup %d of %d: %s",
				i+1, len(hs), strings.TrimPrefix(resp, "ERR "))
		case resp == "NOMATCH":
		default:
			res, err := parseMatch(resp)
			if err != nil {
				firstErr = fmt.Errorf("pipelined lookup %d of %d: %w", i+1, len(hs), err)
				continue
			}
			out[i] = res
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// mlookupChunk bounds the headers per MLOOKUP line (~35 B each), so
// client batches of any size stay far below the server's line limit.
const mlookupChunk = 512

// MLookup classifies a batch of headers; each chunk of up to 512
// headers is one round trip that the daemon runs as a single
// LookupBatch against one consistent snapshot per shard (batches beyond
// the chunk size span snapshots chunk by chunk).
func (c *Client) MLookup(hs []rule.Header) ([]LookupResult, error) {
	if len(hs) > mlookupChunk {
		out := make([]LookupResult, 0, len(hs))
		for off := 0; off < len(hs); off += mlookupChunk {
			end := off + mlookupChunk
			if end > len(hs) {
				end = len(hs)
			}
			part, err := c.MLookup(hs[off:end])
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	}
	if len(hs) == 0 {
		return nil, nil
	}
	var b strings.Builder
	b.WriteString(cmdMLookup)
	for _, h := range hs {
		b.WriteByte(' ')
		b.WriteString(headerArgs(h))
	}
	resp, err := c.roundTrip(b.String())
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(resp)
	if len(fields) == 0 || fields[0] != "RESULTS" {
		return nil, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	if len(fields)-1 != len(hs) {
		return nil, fmt.Errorf("ctl: %d results for %d headers", len(fields)-1, len(hs))
	}
	out := make([]LookupResult, len(hs))
	for i, tok := range fields[1:] {
		if tok == "-" {
			continue
		}
		parts := strings.Split(tok, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("ctl: result token %q", tok)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("ctl: result token %q", tok)
		}
		prio, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("ctl: result token %q", tok)
		}
		out[i] = LookupResult{Found: true, RuleID: id, Priority: prio, Action: parts[2]}
	}
	return out, nil
}

// Stats fetches remote classifier statistics.
func (c *Client) Stats() (rules, probes, ops, maxList, overflows int, err error) {
	resp, err := c.roundTrip(cmdStats)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "STATS %d %d %d %d %d", &rules, &probes, &ops, &maxList, &overflows); err != nil {
		return 0, 0, 0, 0, 0, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	return rules, probes, ops, maxList, overflows, nil
}

// TableStats fetches the current table's statistics as the typed
// tables.TableStats record every surface shares, parsed from the full
// STATS wire line (engine fields, the CACHE section of cached tables,
// and the serving-layer OPS counters). Fields the wire line does not
// carry — identity, latency quantiles, memory, shard balance — stay
// zero; callers wanting them merge the TABLES listing or scrape the
// daemon's HTTP plane, which renders the complete record.
func (c *Client) TableStats() (tables.TableStats, error) {
	resp, err := c.roundTrip(cmdStats)
	if err != nil {
		return tables.TableStats{}, err
	}
	return parseStats(resp)
}

// parseStats decodes a STATS wire line into the typed record — the
// inverse of the server's formatStats.
func parseStats(resp string) (tables.TableStats, error) {
	var st tables.TableStats
	if _, err := fmt.Sscanf(resp, "STATS %d %d %d %d %d",
		&st.Rules, &st.Probes, &st.ProbeOps, &st.MaxListLen, &st.HardwareOverflows); err != nil {
		return tables.TableStats{}, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	if i := strings.Index(resp, " CACHE "); i >= 0 {
		cc := &tables.CacheCounters{}
		if _, err := fmt.Sscanf(resp[i:], " CACHE %d %d %d", &cc.Hits, &cc.Misses, &cc.Evictions); err != nil {
			return tables.TableStats{}, fmt.Errorf("ctl: parse %q: %w", resp, err)
		}
		st.Cache = cc
	}
	if i := strings.Index(resp, " STATE "); i >= 0 {
		sc := &tables.StateCounters{}
		if _, err := fmt.Sscanf(resp[i:], " STATE %d %d %d %d",
			&sc.Installs, &sc.Hits, &sc.Expiries, &sc.Evictions); err != nil {
			return tables.TableStats{}, fmt.Errorf("ctl: parse %q: %w", resp, err)
		}
		st.State = sc
	}
	if i := strings.Index(resp, " OPS "); i >= 0 {
		if _, err := fmt.Sscanf(resp[i:], " OPS %d %d %d %d",
			&st.Ops.Lookups, &st.Ops.Updates, &st.Ops.Swaps, &st.Ops.Errors); err != nil {
			return tables.TableStats{}, fmt.Errorf("ctl: parse %q: %w", resp, err)
		}
	}
	return st, nil
}

// CacheStats fetches the current table's flow-cache counters; cached is
// false when the table's engine has no flow cache (no CACHE section in
// the STATS response).
func (c *Client) CacheStats() (hits, misses, evictions uint64, cached bool, err error) {
	resp, err := c.roundTrip(cmdStats)
	if err != nil {
		return 0, 0, 0, false, err
	}
	i := strings.Index(resp, " CACHE ")
	if i < 0 {
		return 0, 0, 0, false, nil
	}
	if _, err := fmt.Sscanf(resp[i:], " CACHE %d %d %d", &hits, &misses, &evictions); err != nil {
		return 0, 0, 0, false, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	return hits, misses, evictions, true, nil
}

// StateStats fetches the current table's flow-state (conntrack)
// counters; stateful is false when the table's engine has no flow-state
// table (no STATE section in the STATS response).
func (c *Client) StateStats() (installs, hits, expiries, evictions uint64, stateful bool, err error) {
	resp, err := c.roundTrip(cmdStats)
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	i := strings.Index(resp, " STATE ")
	if i < 0 {
		return 0, 0, 0, 0, false, nil
	}
	if _, err := fmt.Sscanf(resp[i:], " STATE %d %d %d %d", &installs, &hits, &expiries, &evictions); err != nil {
		return 0, 0, 0, 0, false, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	return installs, hits, expiries, evictions, true, nil
}

// Throughput fetches the modeled forwarding rate.
func (c *Client) Throughput() (cyclesPerPkt, mpps, gbps float64, err error) {
	resp, err := c.roundTrip(cmdThroughput)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "THROUGHPUT %f %f %f", &cyclesPerPkt, &mpps, &gbps); err != nil {
		return 0, 0, 0, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	return cyclesPerPkt, mpps, gbps, nil
}
