package ctl

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/rule"
)

// Client is the host-side decision controller's view of a remote lookup
// domain. It is safe for sequential use only (one request in flight), like
// the paper's single PCIe channel.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a classifier daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close tears the channel down, sending QUIT best-effort.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, cmdQuit)
	return c.conn.Close()
}

func (c *Client) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", fmt.Errorf("ctl send: %w", err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("ctl recv: %w", err)
	}
	resp = strings.TrimSpace(resp)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("ctl: %s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// Insert installs a rule remotely, returning the hardware update cycles.
func (c *Client) Insert(r rule.Rule) (int, error) {
	line := fmt.Sprintf("%s %d %d %s %s", cmdInsert, r.ID, r.Priority, r.Action, r.String())
	resp, err := c.roundTrip(line)
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp)
}

// Delete removes a rule remotely.
func (c *Client) Delete(id int) (int, error) {
	resp, err := c.roundTrip(fmt.Sprintf("%s %d", cmdDelete, id))
	if err != nil {
		return 0, err
	}
	return parseOKCycles(resp)
}

func parseOKCycles(resp string) (int, error) {
	fields := strings.Fields(resp)
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	return strconv.Atoi(fields[1])
}

// LookupResult is the remote classification outcome.
type LookupResult struct {
	Found    bool
	RuleID   int
	Priority int
	Action   string
}

// Lookup classifies a header remotely.
func (c *Client) Lookup(h rule.Header) (LookupResult, error) {
	line := fmt.Sprintf("%s %s %s %d %d %d", cmdLookup,
		formatAddr(h.SrcIP), formatAddr(h.DstIP), h.SrcPort, h.DstPort, h.Proto)
	resp, err := c.roundTrip(line)
	if err != nil {
		return LookupResult{}, err
	}
	if resp == "NOMATCH" {
		return LookupResult{}, nil
	}
	fields := strings.Fields(resp)
	if len(fields) != 4 || fields[0] != "MATCH" {
		return LookupResult{}, fmt.Errorf("ctl: unexpected response %q", resp)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return LookupResult{}, fmt.Errorf("ctl: rule id in %q", resp)
	}
	prio, err := strconv.Atoi(fields[2])
	if err != nil {
		return LookupResult{}, fmt.Errorf("ctl: priority in %q", resp)
	}
	return LookupResult{Found: true, RuleID: id, Priority: prio, Action: fields[3]}, nil
}

// Stats fetches remote classifier statistics.
func (c *Client) Stats() (rules, probes, ops, maxList, overflows int, err error) {
	resp, err := c.roundTrip(cmdStats)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "STATS %d %d %d %d %d", &rules, &probes, &ops, &maxList, &overflows); err != nil {
		return 0, 0, 0, 0, 0, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	return rules, probes, ops, maxList, overflows, nil
}

// Throughput fetches the modeled forwarding rate.
func (c *Client) Throughput() (cyclesPerPkt, mpps, gbps float64, err error) {
	resp, err := c.roundTrip(cmdThroughput)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "THROUGHPUT %f %f %f", &cyclesPerPkt, &mpps, &gbps); err != nil {
		return 0, 0, 0, fmt.Errorf("ctl: parse %q: %w", resp, err)
	}
	return cyclesPerPkt, mpps, gbps, nil
}
