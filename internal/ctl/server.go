package ctl

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	repro "repro"
	"repro/internal/rule"
	"repro/internal/snapfile"
	"repro/internal/tables"
)

// DefaultTable is the table every connection starts on.
const DefaultTable = "main"

// DefaultIdleTimeout bounds how long a connection may sit idle between
// protocol lines before the server reclaims it.
const DefaultIdleTimeout = 5 * time.Minute

// maxBulk bounds one BULK transfer so a bad count cannot pin a
// connection forever.
const maxBulk = 1 << 20

// Server is the line-protocol front end over the shared table
// registry. It owns no table state of its own: lifecycle commands
// (TABLE CREATE/DROP/LIST) delegate to the tables.Registry, data
// commands resolve their table through the registry's lock-free read
// path, and per-table instrumentation lands in the registry's
// metrics blocks — so the HTTP plane sharing the registry reports the
// same tables and the same counters. Engines make their own
// concurrency guarantees (lookups are lock-free snapshot reads and
// updates serialize behind each engine's snapshot writer), so
// connections are served fully in parallel.
type Server struct {
	reg *tables.Registry

	wg       sync.WaitGroup
	listener net.Listener
	closed   chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// IdleTimeout bounds the wait for the next protocol line (including
	// BULK body lines). Zero means DefaultIdleTimeout; negative disables
	// the deadline. Set before Serve.
	IdleTimeout time.Duration
	// MaxLineBytes bounds one protocol line; longer lines terminate the
	// connection with an "ERR read" notice. Zero means 1 MiB. Set
	// before Serve.
	MaxLineBytes int
	// SnapshotDir is where SNAPSHOT SAVE / RESTORE and the daemon's
	// save-on-drain persistence keep their <name>.snap files. Empty
	// disables the file-backed commands (the wire-level SNAPSHOT dump,
	// SWAP and RESET still work). Set before Serve.
	SnapshotDir string
}

// NewServer wraps an engine as the "main" table of a fresh server,
// deriving the registry spec from the engine's capabilities.
func NewServer(eng repro.Engine) *Server {
	s := &Server{
		reg:    tables.NewRegistry(),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	if _, err := s.reg.Add(tables.SpecFor(DefaultTable, eng), eng); err != nil {
		// Registering one table into a fresh registry cannot collide;
		// a failure here is a programming error.
		panic(fmt.Sprintf("ctl: register default table: %v", err))
	}
	return s
}

// Registry returns the server's table registry, shared with the other
// control surfaces (the HTTP metrics and admin plane).
func (s *Server) Registry() *tables.Registry { return s.reg }

// AddTable creates a named table backed by a fresh engine — the same
// path the protocol's TABLE CREATE takes, exported for daemon
// bootstrapping from flags. cacheEntries > 0 fronts the engine with a
// flow cache of that many slots; stateEntries > 0 additionally fronts
// it with a flow-state (conntrack) table of that many entries.
func (s *Server) AddTable(name string, backend repro.Backend, shards, cacheEntries, stateEntries int) error {
	_, err := s.reg.Create(tables.Spec{
		Name: name, Backend: backend, Shards: shards, Cache: cacheEntries, State: stateEntries,
	})
	return err
}

// AddTable6 creates a named IPv6 table backed by a fresh split-64
// decomposition engine (repro.New6) — the path the protocol's
// "TABLE CREATE <name> v6" takes. IPv6 engines are unsharded and
// uncached.
func (s *Server) AddTable6(name string) error {
	_, err := s.reg.Create(tables.Spec{Name: name, Family: tables.V6})
	return err
}

// snapshotPath resolves a snapshot name inside the configured
// directory; the table-name syntax (no separators) keeps names from
// escaping it.
func (s *Server) snapshotPath(name string) (string, error) {
	if s.SnapshotDir == "" {
		return "", fmt.Errorf("no snapshot directory configured")
	}
	if !validTableName(name) {
		return "", fmt.Errorf("invalid snapshot name %q", name)
	}
	return filepath.Join(s.SnapshotDir, name+".snap"), nil
}

// saveTable persists one table's ruleset as <name>.snap, returning the
// rule count written. The engine snapshot is one consistent RCU read
// and the file write is atomic (temp + rename), so a crash mid-save
// leaves the previous snapshot intact.
func (s *Server) saveTable(t *tables.Table, name string, asTable bool) (int, error) {
	path, err := s.snapshotPath(name)
	if err != nil {
		return 0, err
	}
	if t.V6() {
		rules := t.Eng6().Snapshot()
		if err := snapfile.Save(path, snapfile.Snapshot{Attrs: t.Attrs(asTable), Rules6: rules}); err != nil {
			return 0, err
		}
		return len(rules), nil
	}
	rules := t.Eng().Snapshot()
	if err := snapfile.Save(path, snapfile.Snapshot{Attrs: t.Attrs(asTable), Rules: rules}); err != nil {
		return 0, err
	}
	return len(rules), nil
}

// loadSnapshot reads and validates <name>.snap.
func (s *Server) loadSnapshot(name string) (snapfile.Snapshot, error) {
	path, err := s.snapshotPath(name)
	if err != nil {
		return snapfile.Snapshot{}, err
	}
	return snapfile.Load(path)
}

// SaveSnapshots persists every table as <table>.snap in SnapshotDir —
// the daemon's save-on-drain hook. Tables are saved independently; the
// first error is returned after attempting all of them.
func (s *Server) SaveSnapshots() error {
	if s.SnapshotDir == "" {
		return fmt.Errorf("ctl: no snapshot directory configured")
	}
	var firstErr error
	for _, t := range s.reg.List() {
		if _, err := s.saveTable(t, t.Name(), true); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("table %q: %w", t.Name(), err)
		}
	}
	return firstErr
}

// LoadSnapshots restores every table-persistence snapshot in
// SnapshotDir (the save-on-drain files, identified by their "table"
// attr; user checkpoints from SNAPSHOT SAVE are left alone) — the
// daemon's load-on-start hook. A snapshot whose table already exists
// (the flag-built "main", or a -tables entry) has its ruleset swapped
// into the existing engine, so flags keep authority over engine
// configuration; other snapshots recreate their table from the file's
// backend/shards/cache attrs.
//
// Files that cannot be read as table snapshots — an irregular name, a
// failed checksum, a truncation — are skipped and reported in warns
// rather than failing startup: a rotted user checkpoint is only ever
// needed by an explicit RESTORE, and a daemon that refuses to boot over
// it turns one bad file into a full outage. A *valid* table snapshot
// that fails to apply is still a hard error, since silently serving an
// empty table would be worse. Returns the number of tables restored.
func (s *Server) LoadSnapshots() (restored int, warns []string, err error) {
	if s.SnapshotDir == "" {
		return 0, nil, fmt.Errorf("ctl: no snapshot directory configured")
	}
	ents, err := os.ReadDir(s.SnapshotDir)
	if err != nil {
		return 0, nil, fmt.Errorf("ctl: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".snap") {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), ".snap")
		if !validTableName(name) {
			warns = append(warns, fmt.Sprintf("snapshot file %q does not name a table; skipped", ent.Name()))
			continue
		}
		snap, err := s.loadSnapshot(name)
		if err != nil {
			warns = append(warns, fmt.Sprintf("snapshot %q unreadable: %v; skipped", name, err))
			continue
		}
		if tables.PersistedTable(snap.Attrs) != name {
			continue // a user checkpoint, not daemon table persistence
		}
		spec, err := tables.ParseAttrs(snap.Attrs)
		if err != nil {
			return restored, warns, fmt.Errorf("ctl: snapshot %q: %w", name, err)
		}
		t, lookupErr := s.reg.Resolve(name)
		if lookupErr != nil {
			spec.Name = name
			if t, err = s.reg.Create(spec); err != nil {
				return restored, warns, fmt.Errorf("ctl: snapshot %q: %w", name, err)
			}
		}
		if (spec.Family == tables.V6) != t.V6() {
			return restored, warns, fmt.Errorf("ctl: snapshot %q: address family does not match table %q", name, t.Name())
		}
		if t.V6() {
			if _, err := t.Eng6().Replace(snap.Rules6); err != nil {
				return restored, warns, fmt.Errorf("ctl: snapshot %q: %w", name, err)
			}
		} else if _, err := t.Eng().Replace(snap.Rules); err != nil {
			return restored, warns, fmt.Errorf("ctl: snapshot %q: %w", name, err)
		}
		restored++
	}
	return restored, warns, nil
}

// Serve accepts connections until the listener is closed (via Shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	s.listener = l
	select {
	case <-s.closed:
		// Shutdown already ran (e.g. a signal landed before the Serve
		// goroutine was scheduled); close the listener it never saw.
		s.connMu.Unlock()
		l.Close()
		return nil
	default:
	}
	s.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil // orderly shutdown
			default:
				return fmt.Errorf("ctl accept: %w", err)
			}
		}
		s.wg.Add(1)
		s.track(conn, true)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			s.handle(conn)
		}()
	}
}

// track registers or forgets a live connection for Shutdown's drain.
func (s *Server) track(conn net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// Shutdown stops accepting, wakes every connection blocked waiting for
// its next request (an in-flight response still finishes — only the
// read side is expired), and waits for the handlers to drain.
func (s *Server) Shutdown() {
	close(s.closed)
	s.connMu.Lock()
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// session is one connection's protocol state: the scanner it reads
// from (shared with BULK body reads) and its current table name. The
// name is resolved per command, so a DROP by another connection
// surfaces as an unknown-table error rather than a stale engine.
type session struct {
	srv   *Server
	conn  net.Conn
	sc    *bufio.Scanner
	table string
	// res is the MLOOKUP result slab, reused across commands via the
	// engines' LookupBatchInto form; one goroutine serves a connection,
	// so the slab is never shared.
	res []repro.Result
}

// resScratch returns the session's result slab resized to n.
func (s *session) resScratch(n int) []repro.Result {
	if cap(s.res) < n {
		s.res = make([]repro.Result, n)
	}
	return s.res[:n]
}

// handle serves one connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	max := s.MaxLineBytes
	if max <= 0 {
		max = 1 << 20
	}
	sc := bufio.NewScanner(conn)
	// The scanner's effective token limit is the larger of max and the
	// initial buffer capacity, so the buffer must not exceed max.
	initial := 4096
	if initial > max {
		initial = max
	}
	sc.Buffer(make([]byte, 0, initial), max)
	sess := &session{srv: s, conn: conn, sc: sc, table: DefaultTable}
	w := bufio.NewWriter(conn)
	for sess.scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp, quit := sess.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
	if err := sc.Err(); err != nil {
		select {
		case <-s.closed:
			return // shutdown drain, not a protocol violation
		default:
		}
		// Surface read-loop failures — an oversized line or an expired
		// idle deadline — instead of closing silently. Best-effort: the
		// peer may already be gone.
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		fmt.Fprintf(conn, "ERR read: %v\n", err)
	}
}

// scan arms the idle deadline and reads the next line. The re-check of
// the closed channel after arming closes the race with Shutdown: a
// shutdown observed here (or by Shutdown's own deadline sweep, for
// reads already blocked) expires the deadline immediately, so no
// connection can re-arm itself past the drain.
func (sess *session) scan() bool {
	t := sess.srv.IdleTimeout
	if t == 0 {
		t = DefaultIdleTimeout
	}
	if t > 0 {
		sess.conn.SetReadDeadline(time.Now().Add(t))
	}
	select {
	case <-sess.srv.closed:
		sess.conn.SetReadDeadline(time.Now())
	default:
	}
	return sess.sc.Scan()
}

// tbl resolves the session's current table. Commands branch on the
// table's address family from here: Eng6 carries the IPv6 data path,
// Eng everything else.
func (sess *session) tbl() (*tables.Table, error) {
	return sess.srv.reg.Resolve(sess.table)
}

// fail counts one failed command against the resolved table and
// returns the error response — commands that die before resolving a
// table have no table to charge.
func fail(t *tables.Table, resp string) string {
	t.Metrics().Errors.Inc()
	return resp
}

// dispatch executes one protocol line.
func (sess *session) dispatch(line string) (resp string, quit bool) {
	cmd := line
	args := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, args = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch strings.ToUpper(cmd) {
	case cmdTable:
		return sess.dispatchTable(args), false

	case cmdInsert:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var cost repro.Cost
		start := time.Now()
		if t.V6() {
			r, err := parseInsert6(args)
			if err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
			if cost, err = t.Eng6().Insert(r); err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
		} else {
			r, err := parseInsert(args)
			if err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
			if cost, err = t.Eng().Insert(r); err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
		}
		m := t.Metrics()
		m.Updates.Inc()
		m.UpdateLatency.Record(time.Since(start))
		return fmt.Sprintf("OK %d", cost.Cycles), false

	case cmdBulk:
		return sess.dispatchBulk(args)

	case cmdSnapshot:
		return sess.dispatchSnapshot(args), false

	case cmdRestore:
		return sess.dispatchRestore(args), false

	case cmdReset:
		if args != "" {
			return "ERR RESET takes no arguments", false
		}
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var cost repro.Cost
		start := time.Now()
		if t.V6() {
			cost, err = t.Eng6().Replace(nil)
		} else {
			cost, err = t.Eng().Replace(nil)
		}
		if err != nil {
			return fail(t, "ERR "+err.Error()), false
		}
		m := t.Metrics()
		m.Swaps.Inc()
		m.UpdateLatency.Record(time.Since(start))
		return fmt.Sprintf("OK %d", cost.Cycles), false

	case cmdSwap:
		return sess.dispatchSwap(args)

	case cmdDelete:
		id, err := strconv.Atoi(args)
		if err != nil {
			return "ERR rule id: " + err.Error(), false
		}
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var cost repro.Cost
		start := time.Now()
		if t.V6() {
			cost, err = t.Eng6().Delete(id)
		} else {
			cost, err = t.Eng().Delete(id)
		}
		if err != nil {
			return fail(t, "ERR "+err.Error()), false
		}
		m := t.Metrics()
		m.Updates.Inc()
		m.UpdateLatency.Record(time.Since(start))
		return fmt.Sprintf("OK %d", cost.Cycles), false

	case cmdLookup:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var res repro.Result
		start := time.Now()
		if t.V6() {
			h, err := parseLookup6(args)
			if err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
			res, _ = t.Eng6().Lookup(h)
		} else {
			h, err := parseLookup(args)
			if err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
			res, _ = t.Eng().Lookup(h)
		}
		m := t.Metrics()
		m.Lookups.Inc()
		m.LookupLatency.Record(time.Since(start))
		if !res.Found {
			return "NOMATCH", false
		}
		return fmt.Sprintf("MATCH %d %d %s", res.RuleID, res.Priority, res.Action), false

	case cmdMLookup:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var results []repro.Result
		start := time.Now()
		var batch int
		if t.V6() {
			hs, err := parseMLookup6(args)
			if err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
			results = sess.resScratch(len(hs))
			t.Eng6().LookupBatchInto(hs, results)
			batch = len(hs)
		} else {
			hs, err := parseMLookup(args)
			if err != nil {
				return fail(t, "ERR "+err.Error()), false
			}
			results = sess.resScratch(len(hs))
			t.Eng().LookupBatchInto(hs, results)
			batch = len(hs)
		}
		m := t.Metrics()
		m.Lookups.Add(uint64(batch))
		m.LookupLatency.Record(time.Since(start))
		var b strings.Builder
		b.WriteString("RESULTS")
		for _, r := range results {
			b.WriteByte(' ')
			b.WriteString(formatResult(r))
		}
		return b.String(), false

	case cmdStats:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return formatStats(t.Stats()), false

	case cmdThroughput:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		if t.V6() {
			tp := t.Eng6().ModelThroughput()
			return fmt.Sprintf("THROUGHPUT %.2f %.2f %.2f", tp.CyclesPerPacket, tp.Mpps, tp.Gbps), false
		}
		te, ok := tables.Unwrapped(t.Eng()).(interface{ ModelThroughput() repro.Throughput })
		if !ok {
			return fail(t, fmt.Sprintf("ERR backend %s does not model throughput", t.Eng().Backend())), false
		}
		tp := te.ModelThroughput()
		return fmt.Sprintf("THROUGHPUT %.2f %.2f %.2f", tp.CyclesPerPacket, tp.Mpps, tp.Gbps), false

	case cmdQuit:
		return "BYE", true

	default:
		return fmt.Sprintf("ERR unknown command %q", cmd), false
	}
}

// formatStats renders the typed stats record as the STATS wire line.
// The five leading fields and the CACHE section predate the typed
// struct and keep their positions; the STATE section (stateful tables
// only) and the OPS section follow. fmt.Sscanf parsers of the older
// prefixes tolerate the trailing sections, so old clients keep working.
func formatStats(st tables.TableStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STATS %d %d %d %d %d",
		st.Rules, st.Probes, st.ProbeOps, st.MaxListLen, st.HardwareOverflows)
	if st.Cache != nil {
		fmt.Fprintf(&b, " CACHE %d %d %d", st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions)
	}
	if st.State != nil {
		fmt.Fprintf(&b, " STATE %d %d %d %d",
			st.State.Installs, st.State.Hits, st.State.Expiries, st.State.Evictions)
	}
	fmt.Fprintf(&b, " OPS %d %d %d %d",
		st.Ops.Lookups, st.Ops.Updates, st.Ops.Swaps, st.Ops.Errors)
	return b.String()
}

// dispatchTable executes the TABLE subcommands.
func (sess *session) dispatchTable(args string) string {
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return "ERR TABLE wants CREATE, DROP, USE or LIST"
	}
	switch strings.ToUpper(fields[0]) {
	case subCreate:
		if len(fields) < 3 || len(fields) > 6 {
			return "ERR TABLE CREATE wants <name> <backend> [<shards> [<cache> [<state>]]]"
		}
		if strings.EqualFold(fields[2], tokenV6) {
			if len(fields) != 3 {
				return "ERR TABLE CREATE v6 takes no shard, cache or state arguments"
			}
			if err := sess.srv.AddTable6(fields[1]); err != nil {
				return "ERR " + err.Error()
			}
			return "OK"
		}
		backend, err := repro.ParseBackend(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		shards := 1
		if len(fields) >= 4 {
			shards, err = strconv.Atoi(fields[3])
			if err != nil || shards < 1 {
				return fmt.Sprintf("ERR shard count %q", fields[3])
			}
		}
		cache := 0
		if len(fields) >= 5 {
			cache, err = strconv.Atoi(fields[4])
			if err != nil || cache < 0 {
				return fmt.Sprintf("ERR cache size %q", fields[4])
			}
		}
		state := 0
		if len(fields) == 6 {
			state, err = strconv.Atoi(fields[5])
			if err != nil || state < 0 {
				return fmt.Sprintf("ERR state size %q", fields[5])
			}
		}
		if err := sess.srv.AddTable(fields[1], backend, shards, cache, state); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"

	case subDrop:
		if len(fields) != 2 {
			return "ERR TABLE DROP wants <name>"
		}
		if err := sess.srv.reg.Drop(fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"

	case subUse:
		if len(fields) != 2 {
			return "ERR TABLE USE wants <name>"
		}
		if _, err := sess.srv.reg.Resolve(fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		sess.table = fields[1]
		return "OK"

	case subList:
		var b strings.Builder
		b.WriteString("TABLES")
		for _, t := range sess.srv.reg.List() {
			fmt.Fprintf(&b, " %s:%s:%d:%d",
				t.Name(), t.Spec().BackendLabel(), t.Spec().Shards, t.Rules())
		}
		return b.String()

	default:
		return fmt.Sprintf("ERR unknown TABLE subcommand %q", fields[0])
	}
}

// dispatchSnapshot executes "SNAPSHOT" (wire dump of the current
// table's ruleset from one consistent engine snapshot) and
// "SNAPSHOT SAVE <name>" (persist it as <name>.snap in the server's
// snapshot directory).
func (sess *session) dispatchSnapshot(args string) string {
	fields := strings.Fields(args)
	switch {
	case len(fields) == 0:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error()
		}
		var b strings.Builder
		if t.V6() {
			rules := t.Eng6().Snapshot()
			fmt.Fprintf(&b, "SNAPSHOT %d %08x", len(rules), snapfile.Checksum6(rules))
			for i := range rules {
				b.WriteByte('\n')
				b.WriteString(snapfile.FormatRule6(rules[i]))
			}
			return b.String()
		}
		rules := t.Eng().Snapshot()
		fmt.Fprintf(&b, "SNAPSHOT %d %08x", len(rules), snapfile.Checksum(rules))
		for i := range rules {
			b.WriteByte('\n')
			b.WriteString(snapfile.FormatRule(rules[i]))
		}
		return b.String()

	case strings.EqualFold(fields[0], subSave) && len(fields) == 2:
		t, err := sess.tbl()
		if err != nil {
			return "ERR " + err.Error()
		}
		// Checkpoints and table persistence share the <name>.snap
		// namespace; a checkpoint named after a live table would be
		// overwritten by the next drain (or shadow the table's
		// persisted ruleset after a crash), so the collision is
		// rejected up front.
		if _, exists := sess.srv.reg.Resolve(fields[1]); exists == nil {
			return fail(t, fmt.Sprintf("ERR snapshot name %q collides with a table; the drain would overwrite it", fields[1]))
		}
		n, err := sess.srv.saveTable(t, fields[1], false)
		if err != nil {
			return fail(t, "ERR "+err.Error())
		}
		return fmt.Sprintf("OK %d", n)

	default:
		return "ERR SNAPSHOT wants no arguments or SAVE <name>"
	}
}

// dispatchRestore executes "RESTORE <name>": it loads <name>.snap from
// the snapshot directory and atomically replaces the current table's
// ruleset with its contents.
func (sess *session) dispatchRestore(args string) string {
	name := strings.TrimSpace(args)
	if name == "" || len(strings.Fields(name)) != 1 {
		return "ERR RESTORE wants <name>"
	}
	snap, err := sess.srv.loadSnapshot(name)
	if err != nil {
		return "ERR " + err.Error()
	}
	t, err := sess.tbl()
	if err != nil {
		return "ERR " + err.Error()
	}
	// Restoring across address families would silently install an empty
	// ruleset (the other family's slice), so the mismatch is rejected.
	if snapV6 := snap.Attrs[snapfile.FamilyAttr] == tokenV6; snapV6 != t.V6() {
		return fail(t, fmt.Sprintf("ERR snapshot %q: address family does not match table %q", name, t.Name()))
	}
	start := time.Now()
	if t.V6() {
		cost, err := t.Eng6().Replace(snap.Rules6)
		if err != nil {
			return fail(t, "ERR "+err.Error())
		}
		m := t.Metrics()
		m.Swaps.Inc()
		m.UpdateLatency.Record(time.Since(start))
		return fmt.Sprintf("OK %d %d", len(snap.Rules6), cost.Cycles)
	}
	cost, err := t.Eng().Replace(snap.Rules)
	if err != nil {
		return fail(t, "ERR "+err.Error())
	}
	m := t.Metrics()
	m.Swaps.Inc()
	m.UpdateLatency.Record(time.Since(start))
	return fmt.Sprintf("OK %d %d", len(snap.Rules), cost.Cycles)
}

// readBody consumes n pipelined body lines, the shared transfer
// protocol of BULK and SWAP: each line is handed to the callback until
// the first error (or an initial error, e.g. an unresolvable table),
// after which the remaining lines are still drained so the stream
// stays framed. ok is false when the stream died mid-transfer — no
// response can resync it, so the caller must close the connection —
// with consumed reporting how many lines arrived before it died.
func (sess *session) readBody(n int, firstErr error, each func(i int, line string) error) (err error, consumed int, ok bool) {
	for i := 0; i < n; i++ {
		if !sess.scan() {
			return firstErr, i, false
		}
		if firstErr != nil {
			continue // drain remaining body lines
		}
		firstErr = each(i, strings.TrimSpace(sess.sc.Text()))
	}
	return firstErr, n, true
}

// bodyPrealloc caps slice capacity reserved ahead of a pipelined body:
// the count is client-controlled, so buffering capacity for the full
// maxBulk before any line arrives would let one idle request pin tens
// of megabytes per connection.
const bodyPrealloc = 4096

// dispatchSwap executes "SWAP <n>": it consumes n pipelined rule lines
// like BULK, but applies them as ONE atomic replacement of the current
// table's ruleset — readers see the complete old or complete new
// ruleset, never the intermediate states an insert/delete churn
// exposes. Any error after the count is accepted still drains all n
// lines so the protocol stream stays in sync; an unusable count closes
// the connection, like BULK.
func (sess *session) dispatchSwap(args string) (resp string, quit bool) {
	n, err := strconv.Atoi(args)
	if err != nil || n < 0 || n > maxBulk {
		return fmt.Sprintf("ERR SWAP wants a count in [0, %d]; closing", maxBulk), true
	}
	t, tblErr := sess.tbl()
	v6 := tblErr == nil && t.V6()
	var rules []rule.Rule
	var rules6 []rule.Rule6
	if v6 {
		rules6 = make([]rule.Rule6, 0, min(n, bodyPrealloc))
	} else {
		rules = make([]rule.Rule, 0, min(n, bodyPrealloc))
	}
	firstErr, consumed, ok := sess.readBody(n, tblErr, func(i int, line string) error {
		if v6 {
			r, err := parseInsert6(line)
			if err != nil {
				return fmt.Errorf("swap line %d: %w", i+1, err)
			}
			rules6 = append(rules6, r)
			return nil
		}
		r, err := parseInsert(line)
		if err != nil {
			return fmt.Errorf("swap line %d: %w", i+1, err)
		}
		rules = append(rules, r)
		return nil
	})
	if !ok {
		return fmt.Sprintf("ERR swap: stream ended after %d of %d lines", consumed, n), true
	}
	if firstErr != nil {
		if tblErr == nil {
			t.Metrics().Errors.Inc()
		}
		return "ERR " + firstErr.Error(), false
	}
	start := time.Now()
	if v6 {
		cost, err := t.Eng6().Replace(rules6)
		if err != nil {
			return fail(t, "ERR "+err.Error()), false
		}
		m := t.Metrics()
		m.Swaps.Inc()
		m.UpdateLatency.Record(time.Since(start))
		return fmt.Sprintf("OK %d %d", len(rules6), cost.Cycles), false
	}
	cost, err := t.Eng().Replace(rules)
	if err != nil {
		return fail(t, "ERR "+err.Error()), false
	}
	m := t.Metrics()
	m.Swaps.Inc()
	m.UpdateLatency.Record(time.Since(start))
	return fmt.Sprintf("OK %d %d", len(rules), cost.Cycles), false
}

// dispatchBulk executes "BULK <n>": it consumes n pipelined body lines
// from the connection and answers with one summed response. Any error
// after the count is accepted — an unresolvable table or a bad body
// line — still drains all n lines so the protocol stream stays in
// sync; an unusable count itself closes the connection, because the
// pipelined body cannot be framed without it.
func (sess *session) dispatchBulk(args string) (resp string, quit bool) {
	n, err := strconv.Atoi(args)
	if err != nil || n < 1 || n > maxBulk {
		return fmt.Sprintf("ERR BULK wants a count in [1, %d]; closing", maxBulk), true
	}
	t, tblErr := sess.tbl()
	v6 := tblErr == nil && t.V6()
	inserted, cycles := 0, 0
	firstErr, consumed, ok := sess.readBody(n, tblErr, func(i int, line string) error {
		var cost repro.Cost
		var err error
		start := time.Now()
		if v6 {
			var r rule.Rule6
			if r, err = parseInsert6(line); err == nil {
				cost, err = t.Eng6().Insert(r)
			}
		} else {
			var r rule.Rule
			if r, err = parseInsert(line); err == nil {
				cost, err = t.Eng().Insert(r)
			}
		}
		if err == nil {
			inserted++
			cycles += cost.Cycles
			m := t.Metrics()
			m.Updates.Inc()
			m.UpdateLatency.Record(time.Since(start))
			return nil
		}
		return fmt.Errorf("bulk line %d: %w (inserted %d)", i+1, err, inserted)
	})
	if !ok {
		return fmt.Sprintf("ERR bulk: stream ended after %d of %d lines", consumed, n), true
	}
	if firstErr != nil {
		if tblErr == nil {
			t.Metrics().Errors.Inc()
		}
		return "ERR " + firstErr.Error(), false
	}
	return fmt.Sprintf("OK %d %d", inserted, cycles), false
}
