package ctl

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/lpm"
)

// Server exposes one classifier over the control protocol. The
// concurrent classifier makes its own guarantees — lookups are lock-free
// snapshot reads and updates serialize behind the snapshot writer — so
// connections are served fully in parallel with no server-side mutex.
type Server struct {
	cls *core.Concurrent[lpm.V4]

	wg       sync.WaitGroup
	listener net.Listener
	closed   chan struct{}
}

// NewServer wraps a classifier.
func NewServer(cls *core.Concurrent[lpm.V4]) *Server {
	return &Server{cls: cls, closed: make(chan struct{})}
}

// Serve accepts connections until the listener is closed (via Shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.listener = l
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil // orderly shutdown
			default:
				return fmt.Errorf("ctl accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown stops accepting and waits for in-flight connections.
func (s *Server) Shutdown() {
	close(s.closed)
	if s.listener != nil {
		s.listener.Close()
	}
	s.wg.Wait()
}

// handle serves one connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp, quit := s.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one protocol line.
func (s *Server) dispatch(line string) (resp string, quit bool) {
	cmd := line
	args := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, args = line[:i], line[i+1:]
	}
	switch strings.ToUpper(cmd) {
	case cmdInsert:
		r, err := parseInsert(args)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		cost, err := s.cls.Insert(core.V4Tuple(r))
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return fmt.Sprintf("OK %d", cost.Cycles), false

	case cmdDelete:
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(args), "%d", &id); err != nil {
			return "ERR rule id: " + err.Error(), false
		}
		cost, err := s.cls.Delete(id)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return fmt.Sprintf("OK %d", cost.Cycles), false

	case cmdLookup:
		h, err := parseLookup(args)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		res, _ := s.cls.Lookup(core.V4Header(h))
		if !res.Found {
			return "NOMATCH", false
		}
		return fmt.Sprintf("MATCH %d %d %s", res.RuleID, res.Priority, res.Action), false

	case cmdStats:
		st := s.cls.Stats()
		return fmt.Sprintf("STATS %d %d %d %d %d",
			st.Rules, st.Probes, st.ProbeOps, st.MaxListLen, st.HardwareOverflows), false

	case cmdThroughput:
		tp := s.cls.Throughput()
		return fmt.Sprintf("THROUGHPUT %.2f %.2f %.2f", tp.CyclesPerPacket, tp.Mpps, tp.Gbps), false

	case cmdQuit:
		return "BYE", true

	default:
		return fmt.Sprintf("ERR unknown command %q", cmd), false
	}
}
