package ctl

import (
	"testing"

	"repro/internal/rule"
	"repro/internal/tables"
)

// TestParseStatsRoundTrip pins the STATS wire format: formatStats and
// parseStats must be exact inverses for the fields the line carries,
// with and without the optional CACHE section.
func TestParseStatsRoundTrip(t *testing.T) {
	cases := []tables.TableStats{
		{
			Rules: 7, Probes: 11, ProbeOps: 13, MaxListLen: 3, HardwareOverflows: 1,
			Ops: tables.OpCounters{Lookups: 100, Updates: 20, Swaps: 2, Errors: 5},
		},
		{
			Rules: 1, Probes: 2, ProbeOps: 3, MaxListLen: 4, HardwareOverflows: 5,
			Cache: &tables.CacheCounters{Hits: 8, Misses: 9, Evictions: 10},
			Ops:   tables.OpCounters{Lookups: 1, Updates: 2, Swaps: 3, Errors: 4},
		},
		{}, // all-zero line must survive too
	}
	for _, want := range cases {
		line := formatStats(want)
		got, err := parseStats(line)
		if err != nil {
			t.Fatalf("parseStats(%q): %v", line, err)
		}
		if got.Rules != want.Rules || got.Probes != want.Probes || got.ProbeOps != want.ProbeOps ||
			got.MaxListLen != want.MaxListLen || got.HardwareOverflows != want.HardwareOverflows {
			t.Errorf("%q: engine fields %+v, want %+v", line, got, want)
		}
		if got.Ops != want.Ops {
			t.Errorf("%q: ops %+v, want %+v", line, got.Ops, want.Ops)
		}
		if (got.Cache == nil) != (want.Cache == nil) {
			t.Errorf("%q: cache presence %v, want %v", line, got.Cache != nil, want.Cache != nil)
		} else if want.Cache != nil &&
			(got.Cache.Hits != want.Cache.Hits || got.Cache.Misses != want.Cache.Misses ||
				got.Cache.Evictions != want.Cache.Evictions) {
			t.Errorf("%q: cache %+v, want %+v", line, got.Cache, want.Cache)
		}
	}

	// The pre-OPS wire format (old daemons) must still parse.
	old, err := parseStats("STATS 7 11 13 3 1")
	if err != nil {
		t.Fatalf("parse legacy line: %v", err)
	}
	if old.Rules != 7 || old.Ops != (tables.OpCounters{}) {
		t.Errorf("legacy line parsed as %+v", old)
	}
}

// TestStatsOpsCounters drives one of each operation class through the
// protocol and asserts the serving-layer counters the STATS OPS section
// reports: lookups (including each MLOOKUP header), updates (including
// each BULK line), swaps and errors.
func TestStatsOpsCounters(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	mk := func(id, prio int, plen uint8) rule.Rule {
		return rule.Rule{
			ID: id, Priority: prio,
			SrcIP:   rule.Prefix{Addr: 0x0a000000, Len: plen},
			SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
			Proto: rule.AnyProto(), Action: rule.ActionPermit,
		}
	}

	if _, err := client.Insert(mk(1, 1, 8)); err != nil { // 1 update
		t.Fatal(err)
	}
	if _, err := client.BulkInsert([]rule.Rule{mk(2, 2, 16), mk(3, 3, 24)}); err != nil { // 2 updates
		t.Fatal(err)
	}
	if _, err := client.Delete(2); err != nil { // 1 update
		t.Fatal(err)
	}
	if _, err := client.Lookup(rule.Header{SrcIP: 0x0a010203}); err != nil { // 1 lookup
		t.Fatal(err)
	}
	hs := []rule.Header{{SrcIP: 0x0a010203}, {SrcIP: 0x0b000001}, {SrcIP: 0x0a000001}}
	if _, err := client.MLookup(hs); err != nil { // 3 lookups
		t.Fatal(err)
	}
	if _, err := client.Swap([]rule.Rule{mk(9, 1, 8)}); err != nil { // 1 swap
		t.Fatal(err)
	}
	if _, err := client.Reset(); err != nil { // 1 swap
		t.Fatal(err)
	}
	if _, err := client.Delete(424242); err == nil { // 1 error
		t.Fatal("Delete of unknown rule succeeded")
	}

	st, err := client.TableStats()
	if err != nil {
		t.Fatal(err)
	}
	want := tables.OpCounters{Lookups: 4, Updates: 4, Swaps: 2, Errors: 1}
	if st.Ops != want {
		t.Errorf("OPS counters %+v, want %+v", st.Ops, want)
	}
	if st.Rules != 0 {
		t.Errorf("rules after reset = %d, want 0", st.Rules)
	}
}
