package ctl

import (
	"fmt"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/rule"
	"repro/internal/ruleset"
	"repro/internal/snapfile"
)

// v6Fixture builds an embedded IPv6 ruleset plus a trace of embedded
// headers whose verdicts are pinned by the IPv4 oracle (the embedding
// preserves verdicts verbatim, see ruleset.Embed6Set).
func v6Fixture(t *testing.T, size int, seed int64) (rules6 []rule.Rule6, hs6 []rule.Header6, oracle *rule.Set, trace []rule.Header) {
	t.Helper()
	s, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	trace, err = ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: 192, HitRatio: 0.7, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	rules6 = ruleset.Embed6Set(s)
	hs6 = make([]rule.Header6, len(trace))
	for i := range trace {
		hs6[i] = ruleset.Embed6Header(trace[i])
	}
	return rules6, hs6, s, trace
}

func TestV6TableEndToEnd(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	if err := client.TableCreateV6("six"); err != nil {
		t.Fatalf("TableCreateV6: %v", err)
	}
	if err := client.TableUse("six"); err != nil {
		t.Fatal(err)
	}
	infos, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.Name == "six" {
			found = true
			if info.Backend != "v6" || info.Shards != 1 {
				t.Fatalf("six listed as %+v, want backend v6, 1 shard", info)
			}
		}
	}
	if !found {
		t.Fatal("v6 table missing from TABLES listing")
	}

	rules6, hs6, oracle, trace := v6Fixture(t, 150, 41)
	for _, r := range rules6 {
		if _, err := client.Insert6(r); err != nil {
			t.Fatalf("Insert6 rule %d: %v", r.ID, err)
		}
	}

	// Remote IPv6 lookups must reproduce the IPv4 oracle's verdicts.
	for i, h := range hs6 {
		got, err := client.Lookup6(h)
		if err != nil {
			t.Fatalf("Lookup6 header %d: %v", i, err)
		}
		want, wantOK := oracle.Match(trace[i])
		if got.Found != wantOK || (wantOK && got.RuleID != want.ID) {
			t.Fatalf("header %d: remote (%d,%v), oracle (%d,%v)",
				i, got.RuleID, got.Found, want.ID, wantOK)
		}
	}

	// MLOOKUP keeps its line shape with colon-hex addresses.
	var b strings.Builder
	b.WriteString(cmdMLookup)
	for _, h := range hs6[:8] {
		b.WriteByte(' ')
		b.WriteString(headerArgs6(h))
	}
	resp, err := client.roundTrip(b.String())
	if err != nil {
		t.Fatalf("v6 MLOOKUP: %v", err)
	}
	if toks := strings.Fields(resp); len(toks) != 9 || toks[0] != "RESULTS" {
		t.Fatalf("v6 MLOOKUP response %q", resp)
	}

	// Wire snapshot round-trips through the v6 rule-line grammar.
	snap, err := client.Snapshot6()
	if err != nil {
		t.Fatalf("Snapshot6: %v", err)
	}
	if len(snap) != len(rules6) {
		t.Fatalf("snapshot has %d rules, want %d", len(snap), len(rules6))
	}

	// STATS and THROUGHPUT serve the v6 engine's pipeline model.
	nrules, _, _, _, _, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nrules != len(rules6) {
		t.Fatalf("STATS reports %d rules, want %d", nrules, len(rules6))
	}
	if _, mpps, _, err := client.Throughput(); err != nil || mpps <= 0 {
		t.Fatalf("THROUGHPUT = %v mpps, err %v", mpps, err)
	}

	// DELETE is family-agnostic; the rule must stop matching.
	victim := rules6[0].ID
	if _, err := client.Delete(victim); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if snap, err = client.Snapshot6(); err != nil || len(snap) != len(rules6)-1 {
		t.Fatalf("after delete: %d rules, err %v", len(snap), err)
	}

	// SWAP applies v6 body lines as one atomic replacement.
	b.Reset()
	fmt.Fprintf(&b, "%s %d\n", cmdSwap, 2)
	for _, r := range rules6[:2] {
		b.WriteString(snapfile.FormatRule6(r))
		b.WriteByte('\n')
	}
	if _, err := client.conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	if resp, err = client.readResponse(); err != nil {
		t.Fatalf("v6 SWAP: %v", err)
	}
	if snap, err = client.Snapshot6(); err != nil || len(snap) != 2 {
		t.Fatalf("after swap: %d rules, err %v (%q)", len(snap), err, resp)
	}

	// RESET clears the v6 table.
	if _, err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	if snap, err = client.Snapshot6(); err != nil || len(snap) != 0 {
		t.Fatalf("reset left %d rules, err %v", len(snap), err)
	}

	// The IPv4 grammar is rejected on an IPv6 table — dotted-quad rule
	// lines and lookup addresses do not parse as colon-hex.
	v4 := rule.Rule{ID: 1, Priority: 1, SrcPort: rule.FullPortRange(),
		DstPort: rule.FullPortRange(), Proto: rule.AnyProto(), Action: rule.ActionPermit}
	if _, err := client.Insert(v4); err == nil {
		t.Fatal("IPv4 INSERT line accepted on an IPv6 table")
	}
	if _, err := client.Lookup(rule.Header{SrcIP: 1, DstIP: 2}); err == nil {
		t.Fatal("IPv4 LOOKUP accepted on an IPv6 table")
	}
}

func TestV6TableCreateArguments(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	if _, err := client.roundTrip("TABLE CREATE bad v6 4"); err == nil {
		t.Fatal("TABLE CREATE v6 with a shard count should fail")
	}
	// The family token is case-insensitive like backend spellings.
	if _, err := client.roundTrip("TABLE CREATE upper V6"); err != nil {
		t.Fatalf("TABLE CREATE V6: %v", err)
	}
	if err := client.TableCreateV6("upper"); err == nil {
		t.Fatal("duplicate v6 table name should fail")
	}
}

func TestV6SnapshotSaveRestore(t *testing.T) {
	dir := t.TempDir()
	client, _, stop := startServerWith(t, func(s *Server) { s.SnapshotDir = dir })
	defer stop()

	rules6, _, _, _ := v6Fixture(t, 80, 43)
	if err := client.TableCreateV6("six"); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("six"); err != nil {
		t.Fatal(err)
	}
	for _, r := range rules6 {
		if _, err := client.Insert6(r); err != nil {
			t.Fatal(err)
		}
	}
	n, err := client.SnapshotSave("chk6")
	if err != nil {
		t.Fatalf("SnapshotSave: %v", err)
	}
	if n != len(rules6) {
		t.Fatalf("saved %d rules, want %d", n, len(rules6))
	}
	if _, err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	got, cycles, err := client.Restore("chk6")
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got != len(rules6) || cycles <= 0 {
		t.Fatalf("Restore = (%d rules, %d cycles)", got, cycles)
	}
	if snap, err := client.Snapshot6(); err != nil || len(snap) != len(rules6) {
		t.Fatalf("restored %d rules, err %v", len(snap), err)
	}

	// Cross-family restores are rejected in both directions.
	if err := client.TableUse(DefaultTable); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Restore("chk6"); err == nil {
		t.Fatal("IPv6 snapshot restored into an IPv4 table")
	}
	if _, err := client.SnapshotSave("chk4"); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("six"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Restore("chk4"); err == nil {
		t.Fatal("IPv4 snapshot restored into an IPv6 table")
	}
}

// TestV6ServerPersistence exercises the daemon hooks: a v6 table must
// survive SaveSnapshots/LoadSnapshots with its family and ruleset.
func TestV6ServerPersistence(t *testing.T) {
	dir := t.TempDir()
	build := func() *Server {
		eng, err := repro.New()
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(eng)
		s.SnapshotDir = dir
		return s
	}
	srv := build()
	if err := srv.AddTable6("six"); err != nil {
		t.Fatal(err)
	}
	six, err := srv.reg.Resolve("six")
	if err != nil {
		t.Fatal(err)
	}
	rules6, _, _, _ := v6Fixture(t, 60, 47)
	if _, err := six.Eng6().Replace(rules6); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveSnapshots(); err != nil {
		t.Fatalf("SaveSnapshots: %v", err)
	}

	srv2 := build()
	restored, warns, err := srv2.LoadSnapshots()
	if err != nil {
		t.Fatalf("LoadSnapshots: %v", err)
	}
	if len(warns) != 0 {
		t.Fatalf("LoadSnapshots warnings: %v", warns)
	}
	if restored != 2 { // main + six
		t.Fatalf("restored %d tables, want 2", restored)
	}
	six2, err := srv2.reg.Resolve("six")
	if err != nil {
		t.Fatalf("v6 table did not survive restart: %v", err)
	}
	if !six2.V6() {
		t.Fatal("restored table lost its address family")
	}
	snap := six2.Eng6().Snapshot()
	if len(snap) != len(rules6) {
		t.Fatalf("restored %d rules, want %d", len(snap), len(rules6))
	}
	byID := make(map[int]bool, len(rules6))
	for _, r := range rules6 {
		byID[r.ID] = true
	}
	for _, r := range snap {
		if !byID[r.ID] {
			t.Fatalf("unknown rule %d after restart", r.ID)
		}
	}
}
