package ctl

import (
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lpm"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

func startServer(t *testing.T) (*Client, func()) {
	t.Helper()
	cls, err := core.NewConcurrent[lpm.V4](core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cls)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return client, func() {
		client.Close()
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func TestEndToEndInsertLookupDelete(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	r := rule.Rule{
		ID: 1, Priority: 1,
		SrcIP:   rule.Prefix{Addr: 0x0a000000, Len: 8},
		SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(80),
		Proto:  rule.ExactProto(rule.ProtoTCP),
		Action: rule.ActionPermit,
	}
	cycles, err := client.Insert(r)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if cycles <= 0 {
		t.Errorf("insert cycles = %d", cycles)
	}

	h := rule.Header{SrcIP: 0x0a010203, DstIP: 1, SrcPort: 999, DstPort: 80, Proto: rule.ProtoTCP}
	res, err := client.Lookup(h)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !res.Found || res.RuleID != 1 || res.Action != "permit" {
		t.Fatalf("Lookup = %+v", res)
	}

	miss, err := client.Lookup(rule.Header{SrcIP: 0xc0000001, DstPort: 22, Proto: rule.ProtoTCP})
	if err != nil {
		t.Fatalf("Lookup(miss): %v", err)
	}
	if miss.Found {
		t.Errorf("miss reported found: %+v", miss)
	}

	rules, _, ops, _, _, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if rules != 1 || ops != 2 {
		t.Errorf("Stats rules=%d ops=%d, want 1, 2", rules, ops)
	}

	if _, err := client.Delete(1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	res, err = client.Lookup(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("rule still matches after remote delete")
	}

	// Error paths surface as ERR responses.
	if _, err := client.Delete(999); err == nil {
		t.Error("remote delete of unknown rule should fail")
	}
	if _, err := client.Insert(rule.Rule{ID: -1}); err == nil {
		t.Error("bad rule should fail")
	}

	if _, _, gbps, err := client.Throughput(); err != nil || gbps <= 0 {
		t.Errorf("Throughput = %v gbps, err %v", gbps, err)
	}
}

func TestRemoteMatchesLocalOracle(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range set.Rules() {
		if _, err := client.Insert(r); err != nil {
			t.Fatalf("Insert rule %d: %v", r.ID, err)
		}
	}
	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: 300, HitRatio: 0.8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		got, err := client.Lookup(h)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := set.Match(h)
		if got.Found != ok || (ok && got.RuleID != want.ID) {
			t.Fatalf("remote (%d,%v) vs oracle (%d,%v) for %+v", got.RuleID, got.Found, want.ID, ok, h)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	if _, err := client.Insert(rule.Rule{
		ID: 1, Priority: 1,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto: rule.AnyProto(), Action: rule.ActionPermit,
	}); err != nil {
		t.Fatal(err)
	}

	// Several clients hammer lookups while one churns rules.
	addr := client.conn.RemoteAddr().String()
	errs := make(chan error, 4)
	for w := 0; w < 3; w++ {
		go func() {
			c2, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c2.Close()
			for i := 0; i < 200; i++ {
				if _, err := c2.Lookup(rule.Header{SrcIP: uint32(i), Proto: rule.ProtoTCP}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	go func() {
		for i := 2; i < 50; i++ {
			r := rule.Rule{
				ID: i, Priority: i,
				SrcIP:   rule.Prefix{Addr: uint32(i) << 24, Len: 8},
				SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
				Proto: rule.AnyProto(), Action: rule.ActionDeny,
			}
			if _, err := client.Insert(r); err != nil {
				errs <- err
				return
			}
			if _, err := client.Delete(i); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	cls, err := core.NewConcurrent[lpm.V4](core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cls)
	for _, line := range []string{
		"FROB",
		"INSERT",
		"INSERT x y z @bad",
		"INSERT 1 1 permit @not-a-rule",
		"LOOKUP 1.2.3.4 5.6.7.8 80",
		"LOOKUP 1.2.3 5.6.7.8 80 80 6",
		"DELETE abc",
	} {
		resp, quit := srv.dispatch(line)
		if quit {
			t.Errorf("%q should not quit", line)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Errorf("dispatch(%q) = %q, want ERR", line, resp)
		}
	}
	if resp, quit := srv.dispatch("QUIT"); !quit || resp != "BYE" {
		t.Errorf("QUIT = %q, %v", resp, quit)
	}
}
