package ctl

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// startServerWith serves a fresh engine as "main", applying mut (may be
// nil) to the server before it starts listening.
func startServerWith(t *testing.T, mut func(*Server)) (*Client, string, func()) {
	t.Helper()
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	if mut != nil {
		mut(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return client, l.Addr().String(), func() {
		client.Close()
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func startServer(t *testing.T) (*Client, func()) {
	t.Helper()
	client, _, stop := startServerWith(t, nil)
	return client, stop
}

func TestEndToEndInsertLookupDelete(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	r := rule.Rule{
		ID: 1, Priority: 1,
		SrcIP:   rule.Prefix{Addr: 0x0a000000, Len: 8},
		SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(80),
		Proto:  rule.ExactProto(rule.ProtoTCP),
		Action: rule.ActionPermit,
	}
	cycles, err := client.Insert(r)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if cycles <= 0 {
		t.Errorf("insert cycles = %d", cycles)
	}

	h := rule.Header{SrcIP: 0x0a010203, DstIP: 1, SrcPort: 999, DstPort: 80, Proto: rule.ProtoTCP}
	res, err := client.Lookup(h)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !res.Found || res.RuleID != 1 || res.Action != "permit" {
		t.Fatalf("Lookup = %+v", res)
	}

	miss, err := client.Lookup(rule.Header{SrcIP: 0xc0000001, DstPort: 22, Proto: rule.ProtoTCP})
	if err != nil {
		t.Fatalf("Lookup(miss): %v", err)
	}
	if miss.Found {
		t.Errorf("miss reported found: %+v", miss)
	}

	rules, _, ops, _, _, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if rules != 1 || ops != 2 {
		t.Errorf("Stats rules=%d ops=%d, want 1, 2", rules, ops)
	}

	if _, err := client.Delete(1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	res, err = client.Lookup(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("rule still matches after remote delete")
	}

	// Error paths surface as ERR responses.
	if _, err := client.Delete(999); err == nil {
		t.Error("remote delete of unknown rule should fail")
	}
	if _, err := client.Insert(rule.Rule{ID: -1}); err == nil {
		t.Error("bad rule should fail")
	}

	if _, _, gbps, err := client.Throughput(); err != nil || gbps <= 0 {
		t.Errorf("Throughput = %v gbps, err %v", gbps, err)
	}
}

func TestRemoteMatchesLocalOracle(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range set.Rules() {
		if _, err := client.Insert(r); err != nil {
			t.Fatalf("Insert rule %d: %v", r.ID, err)
		}
	}
	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: 300, HitRatio: 0.8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		got, err := client.Lookup(h)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := set.Match(h)
		if got.Found != ok || (ok && got.RuleID != want.ID) {
			t.Fatalf("remote (%d,%v) vs oracle (%d,%v) for %+v", got.RuleID, got.Found, want.ID, ok, h)
		}
	}
}

// TestFlowCachedTable covers the flow-cache protocol surface: TABLE
// CREATE with a cache size, the CACHE section of STATS, invalidation on
// DELETE, and the absence of the section on uncached tables.
func TestFlowCachedTable(t *testing.T) {
	client, _, stop := startServerWith(t, nil)
	defer stop()

	// The default main table has no cache.
	if _, _, _, cached, err := client.CacheStats(); err != nil || cached {
		t.Fatalf("main CacheStats cached=%v err=%v, want false, nil", cached, err)
	}

	if err := client.TableCreateCached("hot", "decomposition", 2, 512); err != nil {
		t.Fatalf("TableCreateCached: %v", err)
	}
	if err := client.TableUse("hot"); err != nil {
		t.Fatal(err)
	}
	wild := rule.Rule{
		ID: 1, Priority: 1,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto: rule.AnyProto(), Action: rule.ActionDeny,
	}
	if _, err := client.Insert(wild); err != nil {
		t.Fatal(err)
	}
	h := rule.Header{SrcIP: 9, DstIP: 9, SrcPort: 1, DstPort: 2, Proto: rule.ProtoTCP}
	for i := 0; i < 3; i++ {
		res, err := client.Lookup(h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.RuleID != 1 {
			t.Fatalf("lookup %d = %+v", i, res)
		}
	}
	hits, misses, _, cached, err := client.CacheStats()
	if err != nil || !cached {
		t.Fatalf("CacheStats cached=%v err=%v", cached, err)
	}
	if hits != 2 || misses != 1 {
		t.Errorf("CacheStats hits=%d misses=%d, want 2, 1", hits, misses)
	}

	// Deleting the rule invalidates the cache: the same header must now
	// miss both the cache and the ruleset.
	if _, err := client.Delete(1); err != nil {
		t.Fatal(err)
	}
	res, err := client.Lookup(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("stale cached verdict served after DELETE: %+v", res)
	}

	// Bad cache sizes are rejected at the protocol level.
	if err := client.TableCreateCached("bad", "linear", 1, -1); err == nil {
		t.Error("negative cache size should fail")
	}
}

// TestStatefulTable covers the flow-state protocol surface: TABLE
// CREATE with a state size, allow-established semantics over the wire
// (reverse direction accepted by state, not by the ruleset), the STATE
// section of STATS, SWAP clearing established flows, and the absence of
// the section on stateless tables.
func TestStatefulTable(t *testing.T) {
	client, _, stop := startServerWith(t, nil)
	defer stop()

	// The default main table has no flow state.
	if _, _, _, _, stateful, err := client.StateStats(); err != nil || stateful {
		t.Fatalf("main StateStats stateful=%v err=%v, want false, nil", stateful, err)
	}

	if err := client.TableCreateStateful("ct", "tss", 1, 0, 4096); err != nil {
		t.Fatalf("TableCreateStateful: %v", err)
	}
	if err := client.TableUse("ct"); err != nil {
		t.Fatal(err)
	}
	est := rule.Rule{
		ID: 1, Priority: 1,
		SrcIP:   rule.Prefix{Addr: 0x0a000000, Len: 8},
		SrcPort: rule.FullPortRange(), DstPort: rule.ExactPort(443),
		Proto:  rule.ExactProto(rule.ProtoTCP),
		Action: rule.ActionEstablish,
	}
	if _, err := client.Insert(est); err != nil {
		t.Fatal(err)
	}

	fwd := rule.Header{SrcIP: 0x0a000001, DstIP: 0x08080808, SrcPort: 1234, DstPort: 443, Proto: rule.ProtoTCP}
	rev := rule.Header{SrcIP: 0x08080808, DstIP: 0x0a000001, SrcPort: 443, DstPort: 1234, Proto: rule.ProtoTCP}

	// Before the forward packet, the reverse direction matches nothing.
	res, err := client.Lookup(rev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("reverse matched before establishment: %+v", res)
	}
	// The forward packet matches the establish rule and installs a flow.
	res, err = client.Lookup(fwd)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.RuleID != 1 || res.Action != "allow-established" {
		t.Fatalf("forward lookup = %+v", res)
	}
	// Now the reverse direction is accepted purely by flow state.
	res, err = client.Lookup(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.RuleID != 1 {
		t.Fatalf("reverse lookup after establishment = %+v", res)
	}

	installs, hits, _, _, stateful, err := client.StateStats()
	if err != nil || !stateful {
		t.Fatalf("StateStats stateful=%v err=%v", stateful, err)
	}
	if installs != 1 || hits < 1 {
		t.Errorf("StateStats installs=%d hits=%d, want 1, >=1", installs, hits)
	}
	// The typed record carries the same section.
	st, err := client.TableStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.State == nil || st.State.Installs != 1 {
		t.Fatalf("TableStats.State = %+v", st.State)
	}

	// SWAP atomically replaces the ruleset and clears established flows:
	// the reverse direction must re-establish.
	if _, err := client.Swap([]rule.Rule{est}); err != nil {
		t.Fatal(err)
	}
	res, err = client.Lookup(rev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("established flow survived SWAP: %+v", res)
	}

	// Bad state sizes are rejected at the protocol level.
	if err := client.TableCreateStateful("bad", "linear", 1, 0, -1); err == nil {
		t.Error("negative state size should fail")
	}
}

// TestTablesLifecycle covers the multi-tenant protocol surface: create,
// use, isolation between tables, list, drop and the error paths.
func TestTablesLifecycle(t *testing.T) {
	client, addr, stop := startServerWith(t, nil)
	defer stop()

	if err := client.TableCreate("fast", "tss", 4); err != nil {
		t.Fatalf("TableCreate: %v", err)
	}
	wild := rule.Rule{
		ID: 1, Priority: 1,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto: rule.AnyProto(), Action: rule.ActionDeny,
	}
	// Insert into "main", then a different rule into "fast".
	if _, err := client.Insert(wild); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("fast"); err != nil {
		t.Fatalf("TableUse: %v", err)
	}
	permit := wild
	permit.ID, permit.Action = 2, rule.ActionPermit
	if _, err := client.Insert(permit); err != nil {
		t.Fatal(err)
	}

	// The two tables classify independently.
	h := rule.Header{SrcIP: 7, Proto: rule.ProtoUDP}
	res, err := client.Lookup(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleID != 2 || res.Action != "permit" {
		t.Fatalf("fast table lookup = %+v", res)
	}
	if err := client.TableUse(DefaultTable); err != nil {
		t.Fatal(err)
	}
	if res, err = client.Lookup(h); err != nil || res.RuleID != 1 || res.Action != "deny" {
		t.Fatalf("main table lookup = %+v, err %v", res, err)
	}

	// A second connection starts on "main", not on this session's table.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := c2.Lookup(h); err != nil || res.RuleID != 1 {
		t.Fatalf("second connection lookup = %+v, err %v", res, err)
	}
	c2.Close()

	infos, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("Tables = %+v", infos)
	}
	if infos[0].Name != "fast" || infos[0].Backend != "tss" || infos[0].Shards != 4 || infos[0].Rules != 1 {
		t.Errorf("fast entry = %+v", infos[0])
	}
	if infos[1].Name != DefaultTable || infos[1].Backend != "decomposition" || infos[1].Shards != 1 {
		t.Errorf("main entry = %+v", infos[1])
	}

	// STATS on a baseline-backed table falls back to population-only.
	if err := client.TableUse("fast"); err != nil {
		t.Fatal(err)
	}
	rules, _, _, _, _, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rules != 1 {
		t.Errorf("fast Stats rules = %d", rules)
	}
	// ... and has no hardware throughput model.
	if _, _, _, err := client.Throughput(); err == nil {
		t.Error("TSS table should not model throughput")
	}

	// Error paths: duplicate create, bad backend, bad shards, bad name,
	// unknown table for USE/DROP.
	if err := client.TableCreate("fast", "linear", 1); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := client.TableCreate("x", "frobnicate", 1); err == nil {
		t.Error("unknown backend should fail")
	}
	if err := client.TableCreate("x", "linear", 0); err == nil {
		t.Error("zero shards should fail")
	}
	if err := client.TableCreate("bad name:", "linear", 1); err == nil {
		t.Error("invalid name should fail")
	}
	if err := client.TableUse("ghost"); err == nil {
		t.Error("use of unknown table should fail")
	}
	if err := client.TableDrop("ghost"); err == nil {
		t.Error("drop of unknown table should fail")
	}

	// Dropping the current table makes further commands fail until the
	// session switches back to a live one.
	if err := client.TableDrop("fast"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Lookup(h); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("lookup on dropped table: %v", err)
	}
	if err := client.TableUse(DefaultTable); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Lookup(h); err != nil {
		t.Errorf("after switching back: %v", err)
	}
}

// TestBulkAndMLookupMatchOracle loads a generated ruleset through one
// pipelined BULK transfer into a sharded table and differential-checks
// MLOOKUP batches against the linear oracle.
func TestBulkAndMLookupMatchOracle(t *testing.T) {
	client, _, stop := startServerWith(t, nil)
	defer stop()

	if err := client.TableCreate("sharded", "decomposition", 4); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("sharded"); err != nil {
		t.Fatal(err)
	}
	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: 120, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := client.BulkInsert(set.Rules())
	if err != nil {
		t.Fatalf("BulkInsert: %v", err)
	}
	if cycles <= 0 {
		t.Errorf("bulk cycles = %d", cycles)
	}
	infos, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Name == "sharded" && info.Rules != set.Len() {
			t.Errorf("sharded table holds %d rules, want %d", info.Rules, set.Len())
		}
	}

	// A trace larger than the client's per-line chunk exercises the
	// chunked transfer against the server's line limit.
	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: mlookupChunk + 200, HitRatio: 0.8, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.MLookup(trace)
	if err != nil {
		t.Fatalf("MLookup: %v", err)
	}
	if len(got) != len(trace) {
		t.Fatalf("MLookup returned %d results for %d headers", len(got), len(trace))
	}
	for i, h := range trace {
		want, ok := set.Match(h)
		if got[i].Found != ok || (ok && got[i].RuleID != want.ID) {
			t.Fatalf("header %+v: remote (%d,%v) vs oracle (%d,%v)",
				h, got[i].RuleID, got[i].Found, want.ID, ok)
		}
	}
}

// TestBulkErrorKeepsStreamInSync verifies that a bad line mid-BULK
// aborts the transfer with one error response while the remaining body
// lines are drained, so the next command still parses.
func TestBulkErrorKeepsStreamInSync(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	good := func(id int) rule.Rule {
		return rule.Rule{
			ID: id, Priority: id,
			SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
			Proto: rule.AnyProto(), Action: rule.ActionPermit,
		}
	}
	// Hand-roll a BULK with a malformed middle line.
	lines := []string{
		"BULK 3",
		insertArgs(good(1)),
		"not a rule at all",
		insertArgs(good(3)),
	}
	if _, err := client.conn.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.readResponse(); err == nil || !strings.Contains(err.Error(), "bulk line 2") {
		t.Fatalf("bulk error = %v", err)
	}
	// The stream is in sync: a normal command round-trips, and only the
	// first rule landed.
	rules, _, _, _, _, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats after failed bulk: %v", err)
	}
	if rules != 1 {
		t.Errorf("rules after failed bulk = %d, want 1", rules)
	}

	// A BULK against a table dropped mid-session drains its body lines:
	// the command after the transfer still round-trips.
	if err := client.TableCreate("tmp", "linear", 1); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := client.TableDrop("tmp"); err != nil {
		t.Fatal(err)
	}
	body := []string{"BULK 2", insertArgs(good(11)), insertArgs(good(12))}
	if _, err := client.conn.Write([]byte(strings.Join(body, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.readResponse(); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("bulk on dropped table = %v", err)
	}
	if err := client.TableUse(DefaultTable); err != nil {
		t.Fatalf("stream out of sync after drained bulk: %v", err)
	}
}

// TestBulkBadCountClosesConnection verifies that an unframeable BULK
// count — where the pipelined body cannot be delimited — errors and
// closes the connection rather than leaving it desynced.
func TestBulkBadCountClosesConnection(t *testing.T) {
	_, addr, stop := startServerWith(t, nil)
	defer stop()
	for _, count := range []string{"99999999", "x", "0"} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.roundTrip("BULK " + count); err == nil {
			t.Errorf("BULK %s should fail", count)
		}
		if _, err := c.roundTrip("TABLE LIST"); err == nil {
			t.Errorf("connection should be closed after BULK %s", count)
		}
		c.conn.Close()
	}
}

// TestBulkInsertChunks loads more rules than one BULK transfer carries,
// exercising the client-side chunking end to end.
func TestBulkInsertChunks(t *testing.T) {
	client, _, stop := startServerWith(t, nil)
	defer stop()
	if err := client.TableCreate("big", "linear", 2); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("big"); err != nil {
		t.Fatal(err)
	}
	n := bulkChunk + 100
	rules := make([]rule.Rule, n)
	for i := range rules {
		rules[i] = rule.Rule{
			ID: i + 1, Priority: i + 1,
			SrcIP:   rule.Prefix{Addr: uint32(i) << 8, Len: 24},
			SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
			Proto: rule.AnyProto(), Action: rule.ActionPermit,
		}
	}
	cycles, err := client.BulkInsert(rules)
	if err != nil {
		t.Fatalf("BulkInsert(%d): %v", n, err)
	}
	if cycles <= 0 {
		t.Errorf("cycles = %d", cycles)
	}
	infos, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Name == "big" && info.Rules != n {
			t.Errorf("big table holds %d rules, want %d", info.Rules, n)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	client, addr, stop := startServerWith(t, nil)
	defer stop()
	if _, err := client.Insert(rule.Rule{
		ID: 1, Priority: 1,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto: rule.AnyProto(), Action: rule.ActionPermit,
	}); err != nil {
		t.Fatal(err)
	}

	// Several clients hammer lookups while one churns rules.
	errs := make(chan error, 4)
	for w := 0; w < 3; w++ {
		go func() {
			c2, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c2.Close()
			for i := 0; i < 200; i++ {
				if _, err := c2.Lookup(rule.Header{SrcIP: uint32(i), Proto: rule.ProtoTCP}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	go func() {
		for i := 2; i < 50; i++ {
			r := rule.Rule{
				ID: i, Priority: i,
				SrcIP:   rule.Prefix{Addr: uint32(i) << 24, Len: 8},
				SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
				Proto: rule.AnyProto(), Action: rule.ActionDeny,
			}
			if _, err := client.Insert(r); err != nil {
				errs <- err
				return
			}
			if _, err := client.Delete(i); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestIdleDeadline verifies that a silent connection is reclaimed with a
// final "ERR read" notice.
func TestIdleDeadline(t *testing.T) {
	_, addr, stop := startServerWith(t, func(s *Server) { s.IdleTimeout = 50 * time.Millisecond })
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf) // blocks until the server's idle deadline fires
	if got := string(buf[:n]); !strings.HasPrefix(got, "ERR read:") {
		t.Fatalf("idle connection got %q, want ERR read notice", got)
	}
}

// TestOversizedLineSurfaced verifies that a line beyond MaxLineBytes no
// longer ends the connection silently — including limits below the
// scanner's 4 KiB initial buffer, which would otherwise mask them.
func TestOversizedLineSurfaced(t *testing.T) {
	_, addr, stop := startServerWith(t, func(s *Server) { s.MaxLineBytes = 128 })
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	line := "LOOKUP " + strings.Repeat("x", 300) + "\n" // over 128, under 4096
	if _, err := conn.Write([]byte(line)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	got := string(buf[:n])
	if !strings.HasPrefix(got, "ERR read:") || !strings.Contains(got, "too long") {
		t.Fatalf("oversized line got %q, want ERR read: ... too long", got)
	}
}

// TestShutdownDrainsIdleConnections verifies Shutdown returns promptly
// even while clients sit idle at the prompt, instead of waiting out
// their idle deadline.
func TestShutdownDrainsIdleConnections(t *testing.T) {
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng) // default 5-minute IdleTimeout
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.conn.Close()
	// One round trip proves the connection is established and idle.
	if _, err := client.roundTrip("TABLE LIST"); err != nil {
		t.Fatal(err)
	}

	finished := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not drain the idle connection")
	}
	if err := <-done; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestProtocolErrors(t *testing.T) {
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	sess := &session{srv: srv, table: DefaultTable}
	for _, line := range []string{
		"FROB",
		"INSERT",
		"INSERT x y z @bad",
		"INSERT 1 1 permit @not-a-rule",
		"LOOKUP 1.2.3.4 5.6.7.8 80",
		"LOOKUP 1.2.3 5.6.7.8 80 80 6",
		"MLOOKUP",
		"MLOOKUP 1.2.3.4 5.6.7.8 80 80",
		"MLOOKUP 1.2.3.4 5.6.7.8 80 80 6 9.9.9.9",
		"DELETE abc",
		"TABLE",
		"TABLE FROB x",
		"TABLE CREATE",
		"TABLE CREATE x",
		"TABLE CREATE x linear -2",
		"TABLE USE",
		"TABLE DROP",
	} {
		resp, quit := sess.dispatch(line)
		if quit {
			t.Errorf("%q should not quit", line)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Errorf("dispatch(%q) = %q, want ERR", line, resp)
		}
	}
	if resp, quit := sess.dispatch("QUIT"); !quit || resp != "BYE" {
		t.Errorf("QUIT = %q, %v", resp, quit)
	}
}

// snapTestRules builds a deterministic ruleset for the snapshot tests.
func snapTestRules(t *testing.T, size int, seed int64) []rule.Rule {
	t.Helper()
	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return set.Rules()
}

func TestSnapshotSwapResetRoundTrip(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	rules := snapTestRules(t, 80, 21)
	if _, err := client.BulkInsert(rules); err != nil {
		t.Fatal(err)
	}

	// Wire dump: rules come back complete, checksummed and ID-sorted.
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(snap) != len(rules) {
		t.Fatalf("snapshot has %d rules, want %d", len(snap), len(rules))
	}
	byID := make(map[int]rule.Rule, len(rules))
	for _, r := range rules {
		byID[r.ID] = r
	}
	for i, r := range snap {
		if i > 0 && snap[i-1].ID >= r.ID {
			t.Fatalf("snapshot not ID-sorted at %d: %d >= %d", i, snap[i-1].ID, r.ID)
		}
		if want := byID[r.ID]; r != want {
			t.Fatalf("snapshot rule %d differs:\n  got  %+v\n  want %+v", r.ID, r, want)
		}
	}

	// SWAP to a disjoint ruleset in one atomic step.
	next := snapTestRules(t, 40, 22)
	for i := range next {
		next[i].ID += 10000
	}
	cycles, err := client.Swap(next)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if cycles <= 0 {
		t.Errorf("swap cycles = %d", cycles)
	}
	after, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(next) {
		t.Fatalf("after swap: %d rules, want %d", len(after), len(next))
	}
	for _, r := range after {
		if r.ID <= 10000 {
			t.Fatalf("old-generation rule %d survived the swap", r.ID)
		}
	}

	// RESET clears the table atomically.
	if _, err := client.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	empty, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("reset left %d rules", len(empty))
	}
}

func TestSnapshotSaveRestorePersistence(t *testing.T) {
	dir := t.TempDir()
	client, _, stop := startServerWith(t, func(s *Server) { s.SnapshotDir = dir })
	defer stop()

	rules := snapTestRules(t, 60, 23)
	if _, err := client.BulkInsert(rules); err != nil {
		t.Fatal(err)
	}
	n, err := client.SnapshotSave("checkpoint")
	if err != nil {
		t.Fatalf("SnapshotSave: %v", err)
	}
	if n != len(rules) {
		t.Fatalf("saved %d rules, want %d", n, len(rules))
	}

	// Mutate the table, then restore: the checkpoint must win, atomically.
	if _, err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	extra := rule.Rule{ID: 99999, Priority: 7, SrcPort: rule.FullPortRange(),
		DstPort: rule.FullPortRange(), Proto: rule.AnyProto(), Action: rule.ActionDeny}
	if _, err := client.Insert(extra); err != nil {
		t.Fatal(err)
	}
	got, cycles, err := client.Restore("checkpoint")
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got != len(rules) || cycles <= 0 {
		t.Fatalf("Restore = (%d rules, %d cycles)", got, cycles)
	}
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(rules) {
		t.Fatalf("restored %d rules, want %d", len(snap), len(rules))
	}
	for _, r := range snap {
		if r.ID == extra.ID {
			t.Fatal("post-checkpoint rule survived the restore")
		}
	}

	if _, _, err := client.Restore("absent"); err == nil {
		t.Fatal("restoring a missing snapshot should fail")
	}
	if _, _, err := client.Restore("../escape"); err == nil {
		t.Fatal("path-escaping snapshot name should fail")
	}
}

func TestSnapshotSaveWithoutDirFails(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	if _, err := client.SnapshotSave("x"); err == nil {
		t.Fatal("SNAPSHOT SAVE without -snapshot-dir should fail")
	}
	if _, _, err := client.Restore("x"); err == nil {
		t.Fatal("RESTORE without -snapshot-dir should fail")
	}
}

func TestSwapErrorKeepsStreamAndState(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	seedRule := rule.Rule{ID: 1, Priority: 1, SrcPort: rule.FullPortRange(),
		DstPort: rule.FullPortRange(), Proto: rule.AnyProto(), Action: rule.ActionPermit}
	if _, err := client.Insert(seedRule); err != nil {
		t.Fatal(err)
	}
	// A SWAP with a bad body line must drain the stream, report ERR and
	// leave the published ruleset untouched.
	bad := "SWAP 2\n1 1 permit @10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xff\nnot a rule\n"
	if _, err := client.conn.Write([]byte(bad)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.readResponse(); err == nil {
		t.Fatal("bad swap body should ERR")
	}
	// Stream still in sync: the next command round-trips normally.
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatalf("stream out of sync after failed swap: %v", err)
	}
	if len(snap) != 1 || snap[0].ID != 1 {
		t.Fatalf("failed swap changed state: %+v", snap)
	}
	// Duplicate IDs inside one SWAP are rejected atomically too.
	dup := snapTestRules(t, 10, 24)[:2]
	dup[1].ID = dup[0].ID
	if _, err := client.Swap(dup); err == nil {
		t.Fatal("duplicate-ID swap should fail")
	}
	if snap, err = client.Snapshot(); err != nil || len(snap) != 1 {
		t.Fatalf("failed swap changed state: %v %d", err, len(snap))
	}
}

// TestServerSnapshotPersistence exercises the daemon persistence hooks
// directly: SaveSnapshots on a populated server, LoadSnapshots on a
// fresh one, tables and rulesets must survive byte-for-byte.
func TestServerSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()

	build := func() (*Server, repro.Engine) {
		eng, err := repro.New()
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(eng)
		s.SnapshotDir = dir
		return s, eng
	}
	srv, mainEng := build()
	if err := srv.AddTable("edge", repro.BackendLinear, 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable("hot", repro.BackendTSS, 1, 256, 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable("ct", repro.BackendTSS, 1, 0, 4096); err != nil {
		t.Fatal(err)
	}
	mainRules := snapTestRules(t, 50, 27)
	if _, err := mainEng.Replace(mainRules); err != nil {
		t.Fatal(err)
	}
	edge, err := srv.reg.Resolve("edge")
	if err != nil {
		t.Fatal(err)
	}
	edgeRules := snapTestRules(t, 30, 28)
	if _, err := edge.Eng().Replace(edgeRules); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveSnapshots(); err != nil {
		t.Fatalf("SaveSnapshots: %v", err)
	}

	// Fresh server, same dir: everything must come back.
	srv2, _ := build()
	restored, warns, err := srv2.LoadSnapshots()
	if err != nil {
		t.Fatalf("LoadSnapshots: %v", err)
	}
	if len(warns) != 0 {
		t.Fatalf("LoadSnapshots warnings: %v", warns)
	}
	if restored != 4 {
		t.Fatalf("restored %d tables, want 4", restored)
	}
	for _, tc := range []struct {
		table string
		rules []rule.Rule
	}{{"main", mainRules}, {"edge", edgeRules}, {"hot", nil}, {"ct", nil}} {
		tab, err := srv2.reg.Resolve(tc.table)
		if err != nil {
			t.Fatalf("table %q did not survive: %v", tc.table, err)
		}
		snap := tab.Eng().Snapshot()
		if len(snap) != len(tc.rules) {
			t.Fatalf("table %q: %d rules after restart, want %d", tc.table, len(snap), len(tc.rules))
		}
		byID := make(map[int]rule.Rule, len(tc.rules))
		for _, r := range tc.rules {
			byID[r.ID] = r
		}
		for _, r := range snap {
			if want, ok := byID[r.ID]; !ok || r != want {
				t.Fatalf("table %q rule %d changed across restart", tc.table, r.ID)
			}
		}
	}
	// Recreated tables keep their engine construction.
	edge2, _ := srv2.reg.Resolve("edge")
	if edge2.Spec().Backend != repro.BackendLinear || edge2.Spec().Shards != 2 {
		t.Fatalf("edge came back as %v/%d shards", edge2.Spec().Backend, edge2.Spec().Shards)
	}
	hot2, _ := srv2.reg.Resolve("hot")
	if hot2.Spec().Cache == 0 {
		t.Fatal("hot table lost its flow cache across restart")
	}
	if _, ok := hot2.Eng().(interface{ CacheStats() repro.FlowCacheStats }); !ok {
		t.Fatal("restored hot table engine is uncached")
	}
	ct2, _ := srv2.reg.Resolve("ct")
	if ct2.Spec().State == 0 {
		t.Fatal("ct table lost its flow-state table across restart")
	}
	if _, ok := ct2.Eng().(interface{ StateStats() repro.FlowStateStats }); !ok {
		t.Fatal("restored ct table engine is stateless")
	}

	// A second save must be byte-for-byte identical: the format is
	// deterministic end to end.
	before := readSnapDir(t, dir)
	if err := srv2.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}
	after := readSnapDir(t, dir)
	if len(before) != len(after) {
		t.Fatalf("snapshot count changed: %d vs %d", len(before), len(after))
	}
	for name, b := range before {
		if string(after[name]) != string(b) {
			t.Fatalf("snapshot %q not byte-stable across save/load/save", name)
		}
	}
}

func readSnapDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(ents))
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestLoadSnapshotsSkipsBadCheckpoints: a corrupt or irregularly named
// file in the snapshot directory must not prevent startup — only
// warnings — while intact table snapshots still restore.
func TestLoadSnapshotsSkipsBadCheckpoints(t *testing.T) {
	dir := t.TempDir()
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	srv.SnapshotDir = dir
	if _, err := eng.Replace(snapTestRules(t, 20, 29)); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}
	// A truncated user checkpoint and a foreign file join the directory.
	if err := os.WriteFile(filepath.Join(dir, "rotted.snap"), []byte("#repro-snapshot v1\n#rules 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "My Backup.snap"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(eng2)
	srv2.SnapshotDir = dir
	restored, warns, err := srv2.LoadSnapshots()
	if err != nil {
		t.Fatalf("LoadSnapshots must not fail over bad checkpoints: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d tables, want 1", restored)
	}
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want 2", warns)
	}
	if eng2.Len() != 20 {
		t.Fatalf("main came back with %d rules, want 20", eng2.Len())
	}
}

// TestSnapshotSaveRejectsTableNameCollision: a user checkpoint named
// after a live table would be clobbered by the next drain, so the save
// is refused.
func TestSnapshotSaveRejectsTableNameCollision(t *testing.T) {
	dir := t.TempDir()
	client, _, stop := startServerWith(t, func(s *Server) { s.SnapshotDir = dir })
	defer stop()
	if err := client.TableCreate("edge", "linear", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.SnapshotSave("main"); err == nil {
		t.Fatal("checkpoint named after the main table should be rejected")
	}
	if _, err := client.SnapshotSave("edge"); err == nil {
		t.Fatal("checkpoint named after a live table should be rejected")
	}
	if _, err := client.SnapshotSave("edge-backup"); err != nil {
		t.Fatalf("non-colliding checkpoint: %v", err)
	}
}

// TestPipelineLookups verifies the pipelined LOOKUP path: verdicts come
// back in request order, match the one-at-a-time path, and interleave
// correctly with updates on the same connection.
func TestPipelineLookups(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 60, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.BulkInsert(set.Rules()); err != nil {
		t.Fatal(err)
	}
	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: 300, HitRatio: 0.8, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.PipelineLookups(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("%d results for %d headers", len(got), len(trace))
	}
	for i, h := range trace {
		single, err := client.Lookup(h)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != single {
			t.Fatalf("header %d: pipelined %+v, single %+v", i, got[i], single)
		}
	}
	// Empty batch is a no-op.
	if out, err := client.PipelineLookups(nil); err != nil || out != nil {
		t.Fatalf("empty pipeline: %v, %v", out, err)
	}
	// The connection stays usable for ordinary commands afterwards.
	if _, err := client.Delete(set.Rules()[0].ID); err != nil {
		t.Fatalf("delete after pipeline: %v", err)
	}
}

// TestPipelineLookupsChunking pushes a batch beyond the pipeline chunk
// to exercise the chunked write path.
func TestPipelineLookupsChunking(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	r := rule.Rule{
		ID: 1, Priority: 1,
		SrcPort: rule.FullPortRange(), DstPort: rule.FullPortRange(),
		Proto:  rule.AnyProto(),
		Action: rule.ActionDeny,
	}
	if _, err := client.Insert(r); err != nil {
		t.Fatal(err)
	}
	hs := make([]rule.Header, pipelineChunk+37)
	for i := range hs {
		hs[i] = rule.Header{SrcIP: uint32(i), DstIP: uint32(i * 7), SrcPort: uint16(i), DstPort: 80}
	}
	out, err := client.PipelineLookups(hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(hs) {
		t.Fatalf("%d results for %d headers", len(out), len(hs))
	}
	for i, res := range out {
		if !res.Found || res.RuleID != 1 {
			t.Fatalf("header %d: %+v, want the catch-all rule", i, res)
		}
	}
}

// TestPipelineLookupsErrorKeepsStreamInSync covers mid-pipeline server
// errors: the client must drain every in-flight response so the
// connection stays framed, report the first error, and remain usable —
// no later command may consume a stale pipelined response.
func TestPipelineLookupsErrorKeepsStreamInSync(t *testing.T) {
	client, addr, stop := startServerWith(t, nil)
	defer stop()
	if err := client.TableCreate("t", "linear", 1); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("t"); err != nil {
		t.Fatal(err)
	}
	// A second client drops the table out from under the first: every
	// pipelined lookup on the dropped table answers ERR.
	other, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.TableDrop("t"); err != nil {
		t.Fatal(err)
	}
	hs := make([]rule.Header, 20)
	for i := range hs {
		hs[i] = rule.Header{SrcIP: uint32(i), DstPort: 80}
	}
	if _, err := client.PipelineLookups(hs); err == nil {
		t.Fatal("pipelined lookups on a dropped table should fail")
	} else if !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("error %v does not surface the table failure", err)
	}
	// The stream must be in sync: the next commands get their own
	// responses, not stale pipelined ones.
	if err := client.TableUse(DefaultTable); err != nil {
		t.Fatalf("TableUse after failed pipeline: %v", err)
	}
	res, err := client.Lookup(rule.Header{SrcIP: 1, DstPort: 80})
	if err != nil {
		t.Fatalf("Lookup after failed pipeline: %v", err)
	}
	if res.Found {
		t.Fatalf("empty main table matched: %+v", res)
	}
}
