package ruleset

import (
	"math/rand"
	"testing"

	"repro/internal/rule"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Family: ACL, Size: 500, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d != %d", a.Len(), b.Len())
	}
	for i := range a.Rules() {
		if a.Rules()[i] != b.Rules()[i] {
			t.Fatalf("rule %d differs between identical configs", i)
		}
	}
	c, err := Generate(Config{Family: ACL, Size: 500, Seed: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	same := 0
	for i := range c.Rules() {
		if c.Rules()[i].SrcIP == a.Rules()[i].SrcIP && c.Rules()[i].DstIP == a.Rules()[i].DstIP {
			same++
		}
	}
	if same == c.Len() {
		t.Error("different seeds produced identical rulesets")
	}
}

func TestGenerateSizesAndValidity(t *testing.T) {
	for _, fam := range Families() {
		for _, size := range []int{100, 1000} {
			s, err := Generate(Config{Family: fam, Size: size, Seed: 3})
			if err != nil {
				t.Fatalf("Generate(%v,%d): %v", fam, size, err)
			}
			if s.Len() != size {
				t.Errorf("%v size = %d, want %d", fam, s.Len(), size)
			}
			for i := range s.Rules() {
				r := s.Rules()[i]
				if err := r.Validate(); err != nil {
					t.Fatalf("%v rule %d invalid: %v", fam, i, err)
				}
			}
		}
	}
}

func TestGenerateNoDuplicateMatches(t *testing.T) {
	s, err := Generate(Config{Family: FW, Size: 2000, Seed: 11})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	seen := make(map[matchKey]int)
	for i := range s.Rules() {
		r := s.Rules()[i]
		k := keyOf(&r)
		if j, dup := seen[k]; dup {
			t.Fatalf("rules %d and %d have identical match fields", j, i)
		}
		seen[k] = i
	}
}

func TestFamilyCharacteristics(t *testing.T) {
	acl, err := Generate(Config{Family: ACL, Size: 2000, Seed: 5})
	if err != nil {
		t.Fatalf("Generate ACL: %v", err)
	}
	fw, err := Generate(Config{Family: FW, Size: 2000, Seed: 5})
	if err != nil {
		t.Fatalf("Generate FW: %v", err)
	}

	countSrcWild := func(s *rule.Set) int {
		n := 0
		for i := range s.Rules() {
			if s.Rules()[i].SrcIP.IsWildcard() {
				n++
			}
		}
		return n
	}
	countRangePorts := func(s *rule.Set) int {
		n := 0
		for i := range s.Rules() {
			dp := s.Rules()[i].DstPort
			if !dp.IsExact() && !dp.IsWildcard() {
				n++
			}
		}
		return n
	}

	if aw, fww := countSrcWild(acl), countSrcWild(fw); aw >= fww {
		t.Errorf("ACL should have fewer wildcard sources than FW: %d vs %d", aw, fww)
	}
	if ar, fwr := countRangePorts(acl), countRangePorts(fw); ar >= fwr {
		t.Errorf("ACL should have fewer range ports than FW: %d vs %d", ar, fwr)
	}
}

func TestNestingBounded(t *testing.T) {
	// The decomposition architecture relies on the observation that only a
	// small set of field specs match any packet (≤5 labels per field). The
	// generator's hierarchical prefix pool must keep nesting shallow.
	for _, fam := range Families() {
		s, err := Generate(Config{Family: fam, Size: 5000, Seed: 1})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		st := s.Stats()
		if st.MaxSrcNesting > 5 || st.MaxDstNesting > 5 {
			t.Errorf("%v: prefix nesting too deep: src=%d dst=%d", fam, st.MaxSrcNesting, st.MaxDstNesting)
		}
		if st.MaxSrcPortOver > 5 || st.MaxDstPortOver > 5 {
			t.Errorf("%v: port overlap too deep: src=%d dst=%d", fam, st.MaxSrcPortOver, st.MaxDstPortOver)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Family: ACL, Size: 0}); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Generate(Config{Family: Family(99), Size: 10}); err == nil {
		t.Error("unknown family should fail")
	}
}

func TestGenerateTraceHitRatio(t *testing.T) {
	s, err := Generate(Config{Family: ACL, Size: 1000, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trace, err := GenerateTrace(s, TraceConfig{Size: 5000, HitRatio: 0.9, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	if len(trace) != 5000 {
		t.Fatalf("trace size = %d, want 5000", len(trace))
	}
	hits := 0
	for _, h := range trace {
		if _, ok := s.Match(h); ok {
			hits++
		}
	}
	// At least the sampled fraction should match (uniform headers may
	// accidentally match too).
	if frac := float64(hits) / float64(len(trace)); frac < 0.85 {
		t.Errorf("hit fraction = %.3f, want >= 0.85", frac)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	s, err := Generate(Config{Family: IPC, Size: 200, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := TraceConfig{Size: 100, HitRatio: 0.5, Seed: 9}
	a, err := GenerateTrace(s, cfg)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	b, err := GenerateTrace(s, cfg)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace differs at %d between identical configs", i)
		}
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	s, _ := Generate(Config{Family: ACL, Size: 10, Seed: 1})
	if _, err := GenerateTrace(s, TraceConfig{Size: 0}); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := GenerateTrace(s, TraceConfig{Size: 1, HitRatio: 1.5}); err == nil {
		t.Error("hit ratio > 1 should fail")
	}
	if _, err := GenerateTrace(s, TraceConfig{Size: 1, Locality: 1.0}); err == nil {
		t.Error("locality 1.0 should fail")
	}
}

func TestSampleHeaderInRule(t *testing.T) {
	s, err := Generate(Config{Family: FW, Size: 300, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rnd := rand.New(rand.NewSource(12))
	for i := range s.Rules() {
		r := s.Rules()[i]
		for k := 0; k < 3; k++ {
			h := SampleHeader(rnd, &r)
			if !r.Matches(h) {
				t.Fatalf("sampled header %+v does not match its rule %v", h, r.String())
			}
		}
	}
}

func TestStandard(t *testing.T) {
	sets, err := Standard()
	if err != nil {
		t.Fatalf("Standard: %v", err)
	}
	if len(sets) != 9 {
		t.Fatalf("Standard returned %d sets, want 9", len(sets))
	}
	for _, name := range []string{"ACL-1K", "FW-5K", "IPC-10K"} {
		s, ok := sets[name]
		if !ok {
			t.Fatalf("missing set %q", name)
		}
		if s.Len() == 0 {
			t.Errorf("set %q empty", name)
		}
	}
	if sets["ACL-10K"].Len() != 10000 {
		t.Errorf("ACL-10K has %d rules", sets["ACL-10K"].Len())
	}
}

func TestSizeName(t *testing.T) {
	if SizeName(5000) != "5K" || SizeName(1234) != "1234" {
		t.Errorf("SizeName wrong: %q %q", SizeName(5000), SizeName(1234))
	}
}

func TestAppendDefault(t *testing.T) {
	s, err := Generate(Config{Family: FW, Size: 50, Seed: 1, AppendDefault: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if s.Len() != 51 {
		t.Fatalf("size = %d, want 51", s.Len())
	}
	last := s.Rules()[50]
	if !last.SrcIP.IsWildcard() || !last.Proto.IsWildcard() || last.Action != rule.ActionDeny {
		t.Errorf("default rule wrong: %+v", last)
	}
	// Every header must match something now.
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		h := rule.Header{SrcIP: rnd.Uint32(), DstIP: rnd.Uint32(), SrcPort: uint16(rnd.Intn(65536)), DstPort: uint16(rnd.Intn(65536)), Proto: uint8(rnd.Intn(256))}
		if _, ok := s.Match(h); !ok {
			t.Fatal("catch-all set failed to match a header")
		}
	}
}
