// Package ruleset generates synthetic ClassBench-style rulesets and packet
// header traces. The paper evaluates on Access Control List (ACL), Firewall
// (FW) and IP Chain (IPC) rule filters at 1K/5K/10K rules; the real
// ClassBench seeds are not published with the paper, so this package
// reproduces the structural characteristics that drive the published
// curves: the prefix-length mix, port-range style and field-overlap
// behaviour of each family.
//
// Generation is fully deterministic for a given (family, size, seed).
package ruleset

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/rule"
)

// Family selects the structural style of a generated ruleset.
type Family int

// The three rule-filter families of the paper's evaluation (Section IV.B).
const (
	// ACL rulesets use specific source/destination prefixes, exact
	// well-known destination ports and exact protocols.
	ACL Family = iota + 1
	// FW rulesets use wildcard-heavy source fields, arbitrary port ranges
	// and a protocol mix that includes wildcards.
	FW
	// IPC rulesets sit between the two, with prefix pairs of moderate
	// specificity and mixed port styles.
	IPC
)

// String returns the family mnemonic used in the paper's figures.
func (f Family) String() string {
	switch f {
	case ACL:
		return "ACL"
	case FW:
		return "FW"
	case IPC:
		return "IPC"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// Families lists all generated families in figure order.
func Families() []Family { return []Family{ACL, FW, IPC} }

// ParseFamily resolves a family from its flag spelling (case-
// insensitive: "acl", "fw" or "ipc") — the shared parser behind every
// command's -family flag.
func ParseFamily(s string) (Family, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "acl":
		return ACL, nil
	case "fw":
		return FW, nil
	case "ipc":
		return IPC, nil
	default:
		return 0, fmt.Errorf("unknown family %q (want acl, fw or ipc)", s)
	}
}

// Config parameterizes generation.
type Config struct {
	Family Family
	// Size is the number of rules to generate (e.g. 1000, 5000, 10000).
	Size int
	// Seed makes generation deterministic; the same Config yields the
	// same ruleset.
	Seed int64
	// AppendDefault adds a final catch-all deny rule, as firewall
	// rulesets conventionally have. Default false to match ClassBench.
	AppendDefault bool
}

// Generate builds a synthetic ruleset with the family's structure.
func Generate(cfg Config) (*rule.Set, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("ruleset size %d: must be positive", cfg.Size)
	}
	switch cfg.Family {
	case ACL, FW, IPC:
	default:
		return nil, fmt.Errorf("unknown ruleset family %d", int(cfg.Family))
	}
	rnd := rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Family)<<32 ^ int64(cfg.Size)))
	pool := newFieldPool(rnd)

	rules := make([]rule.Rule, 0, cfg.Size+1)
	seen := make(map[matchKey]struct{}, cfg.Size)
	for len(rules) < cfg.Size {
		r := generateRule(rnd, cfg.Family, pool)
		k := keyOf(&r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		rules = append(rules, r)
	}
	if cfg.AppendDefault {
		rules = append(rules, rule.Rule{
			SrcPort: rule.FullPortRange(),
			DstPort: rule.FullPortRange(),
			Proto:   rule.AnyProto(),
			Action:  rule.ActionDeny,
		})
	}
	return rule.NewSet(rules)
}

// matchKey identifies a rule by its match fields only (not priority or
// action), used to avoid exact duplicates.
type matchKey struct {
	src, dst rule.Prefix
	sp, dp   rule.PortRange
	proto    rule.ProtoMatch
}

func keyOf(r *rule.Rule) matchKey {
	return matchKey{src: r.SrcIP, dst: r.DstIP, sp: r.SrcPort, dp: r.DstPort, proto: r.Proto}
}

// fieldPool holds the universe of field values a generated ruleset draws
// from. Prefixes come from a hierarchy so they nest in shallow chains, and
// arbitrary port ranges come from a small disjoint pool — together these
// maintain the paper's observation that only a small set of field specs
// (at most five labels per field) match any packet.
type fieldPool struct {
	slash8  []uint32 // network bits of /8s
	slash16 []uint32
	slash24 []uint32
	// segments are disjoint arbitrary port ranges, cut at the
	// privileged/ephemeral boundary so they nest inside the conventional
	// ranges rather than straddling them.
	segments []rule.PortRange
}

func newFieldPool(rnd *rand.Rand) *fieldPool {
	p := &fieldPool{}
	for i := 0; i < 24; i++ {
		p.slash8 = append(p.slash8, uint32(rnd.Intn(224))<<24)
	}
	for i := 0; i < 160; i++ {
		base := p.slash8[rnd.Intn(len(p.slash8))]
		p.slash16 = append(p.slash16, base|uint32(rnd.Intn(256))<<16)
	}
	for i := 0; i < 640; i++ {
		base := p.slash16[rnd.Intn(len(p.slash16))]
		p.slash24 = append(p.slash24, base|uint32(rnd.Intn(256))<<8)
	}
	p.segments = disjointSegments(rnd, 40)
	return p
}

// disjointSegments partitions parts of the port space into n disjoint
// ranges, always cutting at 1024 so no segment straddles the
// privileged/ephemeral boundary.
func disjointSegments(rnd *rand.Rand, n int) []rule.PortRange {
	cuts := map[int]struct{}{0: {}, 1024: {}, 65536: {}}
	for len(cuts) < n+1 {
		cuts[rnd.Intn(65536)] = struct{}{}
	}
	points := make([]int, 0, len(cuts))
	for c := range cuts {
		points = append(points, c)
	}
	sortInts(points)
	segs := make([]rule.PortRange, 0, len(points)-1)
	for i := 1; i < len(points); i++ {
		segs = append(segs, rule.PortRange{Lo: uint16(points[i-1]), Hi: uint16(points[i] - 1)})
	}
	return segs
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// pick returns a prefix of the requested length from the hierarchy.
func (p *fieldPool) pick(rnd *rand.Rand, length int) rule.Prefix {
	switch {
	case length == 0:
		return rule.Prefix{}
	case length <= 8:
		return rule.Prefix{Addr: p.slash8[rnd.Intn(len(p.slash8))], Len: uint8(length)}.Canonical()
	case length <= 16:
		return rule.Prefix{Addr: p.slash16[rnd.Intn(len(p.slash16))], Len: uint8(length)}.Canonical()
	case length <= 24:
		return rule.Prefix{Addr: p.slash24[rnd.Intn(len(p.slash24))], Len: uint8(length)}.Canonical()
	default:
		base := p.slash24[rnd.Intn(len(p.slash24))]
		host := uint32(rnd.Intn(256))
		return rule.Prefix{Addr: base | host, Len: uint8(length)}.Canonical()
	}
}

// Well-known destination ports common in ACL-style filters.
var wellKnownPorts = []uint16{20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 179, 389, 443, 445, 993, 995, 1433, 3306, 3389, 5060, 8080}

func generateRule(rnd *rand.Rand, f Family, pool *fieldPool) rule.Rule {
	var r rule.Rule
	switch f {
	case ACL:
		r.SrcIP = pool.pick(rnd, choose(rnd, []int{16, 24, 24, 28, 32, 32}))
		r.DstIP = pool.pick(rnd, choose(rnd, []int{8, 16, 24, 24, 32}))
		r.SrcPort = rule.FullPortRange()
		r.DstPort = aclPort(rnd)
		r.Proto = exactProtoMix(rnd, 0.02) // almost always exact
		r.Action = pickAction(rnd, 0.65)
	case FW:
		r.SrcIP = pool.pick(rnd, choose(rnd, []int{0, 0, 8, 16, 16, 24}))
		r.DstIP = pool.pick(rnd, choose(rnd, []int{8, 16, 16, 24, 32}))
		r.SrcPort = pool.fwPort(rnd)
		r.DstPort = pool.fwPort(rnd)
		r.Proto = exactProtoMix(rnd, 0.15)
		r.Action = pickAction(rnd, 0.4)
	case IPC:
		r.SrcIP = pool.pick(rnd, choose(rnd, []int{8, 16, 24, 24, 32, 32}))
		r.DstIP = pool.pick(rnd, choose(rnd, []int{8, 16, 24, 24, 32, 32}))
		if rnd.Intn(2) == 0 {
			r.SrcPort = rule.FullPortRange()
			r.DstPort = aclPort(rnd)
		} else {
			r.SrcPort = pool.fwPort(rnd)
			r.DstPort = pool.fwPort(rnd)
		}
		r.Proto = exactProtoMix(rnd, 0.08)
		r.Action = pickAction(rnd, 0.5)
	}
	return r
}

func choose(rnd *rand.Rand, opts []int) int { return opts[rnd.Intn(len(opts))] }

func pickAction(rnd *rand.Rand, permitP float64) rule.Action {
	if rnd.Float64() < permitP {
		return rule.ActionPermit
	}
	return rule.ActionDeny
}

// aclPort: mostly exact well-known ports, occasionally ephemeral range or
// wildcard.
func aclPort(rnd *rand.Rand) rule.PortRange {
	switch v := rnd.Float64(); {
	case v < 0.70:
		return rule.ExactPort(wellKnownPorts[rnd.Intn(len(wellKnownPorts))])
	case v < 0.80:
		// Registered application ports: drawn from a bounded pool, as in
		// real filter sets where the distinct port population is small.
		return rule.ExactPort(uint16(1024 + 97*rnd.Intn(80)))
	case v < 0.90:
		return rule.PortRange{Lo: 1024, Hi: 65535}
	default:
		return rule.FullPortRange()
	}
}

// fwPort: ranges are common; sourced from a small set of conventional
// boundaries plus the pool's disjoint arbitrary segments.
func (p *fieldPool) fwPort(rnd *rand.Rand) rule.PortRange {
	switch v := rnd.Float64(); {
	case v < 0.30:
		return rule.FullPortRange()
	case v < 0.45:
		return rule.ExactPort(wellKnownPorts[rnd.Intn(len(wellKnownPorts))])
	case v < 0.60:
		return rule.PortRange{Lo: 0, Hi: 1023} // privileged
	case v < 0.75:
		return rule.PortRange{Lo: 1024, Hi: 65535} // ephemeral
	default:
		return p.segments[rnd.Intn(len(p.segments))]
	}
}

func exactProtoMix(rnd *rand.Rand, wildcardP float64) rule.ProtoMatch {
	if rnd.Float64() < wildcardP {
		return rule.AnyProto()
	}
	switch v := rnd.Float64(); {
	case v < 0.62:
		return rule.ExactProto(rule.ProtoTCP)
	case v < 0.92:
		return rule.ExactProto(rule.ProtoUDP)
	default:
		return rule.ExactProto(rule.ProtoICMP)
	}
}
