package ruleset

import "repro/internal/rule"

// IPv6 embedding of the IPv4 benchmark universe. The synthetic
// generator produces IPv4 rulesets and traces; the IPv6 engines are
// exercised by mapping both through one injective address embedding, so
// every IPv4 verdict carries over verbatim:
//
//	Hi = 2001:db8:<v4 address>      (the documentation /32 plus v4)
//	Lo = <v4 address> << 32
//
// An IPv4 /l prefix with l < 32 becomes a /(32+l) IPv6 prefix — it ends
// inside the high 64-bit half, exercising the hi-trie of the split-64
// decomposition with the lo-trie wildcarded. An exact /32 becomes a /96
// — hi half exact plus 32 bits of the lo half — exercising both tries
// and the combination table. Ports, protocol, identity and action copy
// through unchanged, so a linear scan over the embedded Rule6 list
// yields exactly the IPv4 oracle's verdicts on embedded traffic.

// embed6Site is the 2001:db8::/32 documentation prefix the embedding
// plants in the top 32 address bits.
const embed6Site = uint64(0x20010db8)

// Embed6Addr maps one IPv4 address into the embedded IPv6 universe.
func Embed6Addr(a uint32) rule.Addr6 {
	return rule.Addr6{Hi: embed6Site<<32 | uint64(a), Lo: uint64(a) << 32}
}

// Embed6Header maps an IPv4 5-tuple into the embedded IPv6 universe.
func Embed6Header(h rule.Header) rule.Header6 {
	return rule.Header6{
		SrcIP:   Embed6Addr(h.SrcIP),
		DstIP:   Embed6Addr(h.DstIP),
		SrcPort: h.SrcPort,
		DstPort: h.DstPort,
		Proto:   h.Proto,
	}
}

// embed6Prefix maps one IPv4 prefix into the embedded universe.
func embed6Prefix(p rule.Prefix) rule.Prefix6 {
	if p.Len < rule.MaxPrefixLen {
		return rule.Prefix6{
			Addr: rule.Addr6{Hi: embed6Site<<32 | uint64(p.Addr)},
			Len:  32 + p.Len,
		}.Canonical()
	}
	return rule.Prefix6{Addr: Embed6Addr(p.Addr), Len: 96}
}

// Embed6Rule maps an IPv4 rule into the embedded IPv6 universe,
// preserving identity, priority, ports, protocol and action.
func Embed6Rule(r rule.Rule) rule.Rule6 {
	return rule.Rule6{
		ID:       r.ID,
		Priority: r.Priority,
		SrcIP:    embed6Prefix(r.SrcIP),
		DstIP:    embed6Prefix(r.DstIP),
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		Proto:    r.Proto,
		Action:   r.Action,
	}
}

// Embed6Set maps a whole IPv4 ruleset into embedded Rule6 values in
// priority order.
func Embed6Set(s *rule.Set) []rule.Rule6 {
	rs := s.Rules()
	out := make([]rule.Rule6, len(rs))
	for i := range rs {
		out[i] = Embed6Rule(rs[i])
	}
	return out
}
