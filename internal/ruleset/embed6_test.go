package ruleset

import (
	"testing"

	"repro/internal/rule"
)

// TestEmbed6PreservesVerdicts is the embedding's correctness contract:
// a linear scan over the embedded Rule6 list returns exactly the IPv4
// oracle's verdict for every embedded trace header.
func TestEmbed6PreservesVerdicts(t *testing.T) {
	s, err := Generate(Config{Family: ACL, Size: 400, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(s, TraceConfig{Size: 512, HitRatio: 0.7, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	rules6 := Embed6Set(s)
	for i := range rules6 {
		if err := rules6[i].Validate(); err != nil {
			t.Fatalf("embedded rule %d invalid: %v", rules6[i].ID, err)
		}
	}
	for _, h := range trace {
		want, wantOK := s.Match(h)
		h6 := Embed6Header(h)
		gotID, gotOK := 0, false
		best := 0
		for i := range rules6 {
			if rules6[i].Matches(h6) && (!gotOK || rules6[i].Priority < best) {
				gotID, best, gotOK = rules6[i].ID, rules6[i].Priority, true
			}
		}
		if gotOK != wantOK || (wantOK && gotID != want.ID) {
			t.Fatalf("header %+v: embedded verdict (%d,%v), v4 oracle (%d,%v)",
				h, gotID, gotOK, want.ID, wantOK)
		}
	}
}

// TestEmbed6PrefixShapes pins the split-64 coverage intent: short v4
// prefixes land entirely in the high half, exact /32s straddle into the
// low half as /96s.
func TestEmbed6PrefixShapes(t *testing.T) {
	short := embed6Prefix(rule.Prefix{Addr: 0x0a000000, Len: 8})
	if short.Len != 40 || short.Addr.Lo != 0 {
		t.Errorf("embedded /8 = %v, want /40 with zero low half", short)
	}
	exact := embed6Prefix(rule.Prefix{Addr: 0xc0a80101, Len: 32})
	if exact.Len != 96 || exact.Addr.Lo != uint64(0xc0a80101)<<32 {
		t.Errorf("embedded /32 = %v, want /96 carrying the address in the low half", exact)
	}
	if !exact.Matches(Embed6Addr(0xc0a80101)) {
		t.Error("embedded /96 must match its own embedded address")
	}
	if exact.Matches(Embed6Addr(0xc0a80102)) {
		t.Error("embedded /96 must not match a different embedded address")
	}
}
