package ruleset

import (
	"fmt"
	"math/rand"

	"repro/internal/rule"
)

// TraceConfig parameterizes packet-header-set (PHS) generation. The paper
// stimulates its test bench with binary files of packet headers of
// different set sizes (Fig. 4); this generator plays the same role.
type TraceConfig struct {
	// Size is the number of headers in the set.
	Size int
	// HitRatio is the fraction of headers drawn from inside some rule's
	// match region; the rest are uniform random (likely misses).
	HitRatio float64
	// Locality, in [0,1), biases hits towards a small subset of rules,
	// imitating flow locality in real traffic. 0 is uniform over rules.
	Locality float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateTrace builds a PHS correlated with the given ruleset.
func GenerateTrace(s *rule.Set, cfg TraceConfig) ([]rule.Header, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("trace size %d: must be positive", cfg.Size)
	}
	if cfg.HitRatio < 0 || cfg.HitRatio > 1 {
		return nil, fmt.Errorf("hit ratio %v: must be in [0,1]", cfg.HitRatio)
	}
	if cfg.Locality < 0 || cfg.Locality >= 1 {
		return nil, fmt.Errorf("locality %v: must be in [0,1)", cfg.Locality)
	}
	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x7068735f))
	headers := make([]rule.Header, 0, cfg.Size)
	rules := s.Rules()
	for i := 0; i < cfg.Size; i++ {
		if len(rules) > 0 && rnd.Float64() < cfg.HitRatio {
			idx := ruleIndex(rnd, len(rules), cfg.Locality)
			headers = append(headers, SampleHeader(rnd, &rules[idx]))
			continue
		}
		headers = append(headers, rule.Header{
			SrcIP:   rnd.Uint32(),
			DstIP:   rnd.Uint32(),
			SrcPort: uint16(rnd.Intn(1 << 16)),
			DstPort: uint16(rnd.Intn(1 << 16)),
			Proto:   randomProto(rnd),
		})
	}
	return headers, nil
}

// ruleIndex picks a rule index with optional locality bias: with
// probability Locality the index is drawn from the first 10% of rules.
func ruleIndex(rnd *rand.Rand, n int, locality float64) int {
	if locality > 0 && rnd.Float64() < locality {
		hot := n / 10
		if hot == 0 {
			hot = 1
		}
		return rnd.Intn(hot)
	}
	return rnd.Intn(n)
}

// SampleHeader draws a header uniformly from inside the rule's match
// region, so the rule (or a higher-priority rule overlapping it) matches.
func SampleHeader(rnd *rand.Rand, r *rule.Rule) rule.Header {
	proto := r.Proto.Value
	if r.Proto.IsWildcard() {
		proto = randomProto(rnd)
	}
	return rule.Header{
		SrcIP:   r.SrcIP.Addr | (rnd.Uint32() &^ r.SrcIP.Mask()),
		DstIP:   r.DstIP.Addr | (rnd.Uint32() &^ r.DstIP.Mask()),
		SrcPort: r.SrcPort.Lo + uint16(rnd.Intn(r.SrcPort.Width())),
		DstPort: r.DstPort.Lo + uint16(rnd.Intn(r.DstPort.Width())),
		Proto:   proto,
	}
}

func randomProto(rnd *rand.Rand) uint8 {
	// Weighted towards the transport protocols the rulesets use.
	switch v := rnd.Float64(); {
	case v < 0.55:
		return rule.ProtoTCP
	case v < 0.85:
		return rule.ProtoUDP
	case v < 0.95:
		return rule.ProtoICMP
	default:
		return uint8(rnd.Intn(256))
	}
}

// StandardSizes are the ruleset sizes of the paper's evaluation.
var StandardSizes = []int{1000, 5000, 10000}

// SizeName formats a size the way the paper labels it (1K/5K/10K).
func SizeName(n int) string {
	if n%1000 == 0 {
		return fmt.Sprintf("%dK", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// Standard generates the nine standard paper rulesets
// (ACL/FW/IPC × 1K/5K/10K) with a fixed seed, keyed "FAM-NK".
func Standard() (map[string]*rule.Set, error) {
	out := make(map[string]*rule.Set, 9)
	for _, fam := range Families() {
		for _, size := range StandardSizes {
			s, err := Generate(Config{Family: fam, Size: size, Seed: 1})
			if err != nil {
				return nil, fmt.Errorf("generate %v %d: %w", fam, size, err)
			}
			out[fmt.Sprintf("%s-%s", fam, SizeName(size))] = s
		}
	}
	return out, nil
}
