// Package packet parses raw packets into the 5-tuple headers the lookup
// domain classifies, implementing the Packet Header Partition/Selector
// block of the paper's Fig. 1: the packet header is split into fields and
// each field is steered to the engine selected for it.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/rule"
)

// Parsing errors.
var (
	ErrTruncated   = errors.New("truncated packet")
	ErrNotIP       = errors.New("not an IPv4/IPv6 packet")
	ErrBadIHL      = errors.New("bad IPv4 header length")
	ErrBadVersion  = errors.New("bad IP version")
	ErrNoTransport = errors.New("no transport header")
)

// EtherType values understood by the parser.
const (
	etherTypeIPv4 = 0x0800
	etherTypeIPv6 = 0x86dd

	etherHeaderLen = 14
	ipv4MinHeader  = 20
	ipv6HeaderLen  = 40
)

// ParseEthernet extracts the IPv4 5-tuple from an Ethernet frame.
func ParseEthernet(frame []byte) (rule.Header, error) {
	if len(frame) < etherHeaderLen {
		return rule.Header{}, fmt.Errorf("ethernet header: %w", ErrTruncated)
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	switch et {
	case etherTypeIPv4:
		return ParseIPv4(frame[etherHeaderLen:])
	default:
		return rule.Header{}, fmt.Errorf("ethertype 0x%04x: %w", et, ErrNotIP)
	}
}

// ParseIPv4 extracts the 5-tuple from an IPv4 packet (starting at the IP
// header). For TCP/UDP the transport ports are parsed; for other protocols
// the ports are zero, matching the convention of the paper's rulesets where
// non-TCP/UDP rules use wildcard port ranges.
func ParseIPv4(pkt []byte) (rule.Header, error) {
	if len(pkt) < ipv4MinHeader {
		return rule.Header{}, fmt.Errorf("ipv4 header: %w", ErrTruncated)
	}
	if v := pkt[0] >> 4; v != 4 {
		return rule.Header{}, fmt.Errorf("version %d: %w", v, ErrBadVersion)
	}
	ihl := int(pkt[0]&0x0f) * 4
	if ihl < ipv4MinHeader {
		return rule.Header{}, fmt.Errorf("ihl %d: %w", ihl, ErrBadIHL)
	}
	if len(pkt) < ihl {
		return rule.Header{}, fmt.Errorf("ipv4 options: %w", ErrTruncated)
	}
	h := rule.Header{
		Proto: pkt[9],
		SrcIP: binary.BigEndian.Uint32(pkt[12:16]),
		DstIP: binary.BigEndian.Uint32(pkt[16:20]),
	}
	// Fragments past the first carry no transport header.
	fragOffset := binary.BigEndian.Uint16(pkt[6:8]) & 0x1fff
	if fragOffset != 0 {
		return h, nil
	}
	if h.Proto == rule.ProtoTCP || h.Proto == rule.ProtoUDP {
		if len(pkt) < ihl+4 {
			return rule.Header{}, fmt.Errorf("transport ports: %w", ErrTruncated)
		}
		h.SrcPort = binary.BigEndian.Uint16(pkt[ihl : ihl+2])
		h.DstPort = binary.BigEndian.Uint16(pkt[ihl+2 : ihl+4])
	}
	return h, nil
}

// ParseEthernet6 extracts the IPv6 5-tuple from an Ethernet frame.
func ParseEthernet6(frame []byte) (rule.Header6, error) {
	if len(frame) < etherHeaderLen {
		return rule.Header6{}, fmt.Errorf("ethernet header: %w", ErrTruncated)
	}
	if et := binary.BigEndian.Uint16(frame[12:14]); et != etherTypeIPv6 {
		return rule.Header6{}, fmt.Errorf("ethertype 0x%04x: %w", et, ErrNotIP)
	}
	return ParseIPv6(frame[etherHeaderLen:])
}

// ParseIPv6 extracts the 5-tuple from an IPv6 packet. Only the base header
// is walked; extension headers other than hop-by-hop, routing and
// destination options stop the port parse (ports stay zero).
func ParseIPv6(pkt []byte) (rule.Header6, error) {
	if len(pkt) < ipv6HeaderLen {
		return rule.Header6{}, fmt.Errorf("ipv6 header: %w", ErrTruncated)
	}
	if v := pkt[0] >> 4; v != 6 {
		return rule.Header6{}, fmt.Errorf("version %d: %w", v, ErrBadVersion)
	}
	h := rule.Header6{
		SrcIP: rule.Addr6{
			Hi: binary.BigEndian.Uint64(pkt[8:16]),
			Lo: binary.BigEndian.Uint64(pkt[16:24]),
		},
		DstIP: rule.Addr6{
			Hi: binary.BigEndian.Uint64(pkt[24:32]),
			Lo: binary.BigEndian.Uint64(pkt[32:40]),
		},
	}
	next := pkt[6]
	off := ipv6HeaderLen
	// Skip chainable extension headers: hop-by-hop (0), routing (43),
	// destination options (60).
	for next == 0 || next == 43 || next == 60 {
		if len(pkt) < off+8 {
			return rule.Header6{}, fmt.Errorf("ipv6 extension header: %w", ErrTruncated)
		}
		l := int(pkt[off+1])*8 + 8
		next = pkt[off]
		off += l
	}
	h.Proto = next
	if next == rule.ProtoTCP || next == rule.ProtoUDP {
		if len(pkt) < off+4 {
			return rule.Header6{}, fmt.Errorf("transport ports: %w", ErrTruncated)
		}
		h.SrcPort = binary.BigEndian.Uint16(pkt[off : off+2])
		h.DstPort = binary.BigEndian.Uint16(pkt[off+2 : off+4])
	}
	return h, nil
}

// BuildIPv4 serializes a header into a minimal valid IPv4 packet with an
// empty transport payload. It is the inverse of ParseIPv4 for test
// stimulus, mirroring the paper's binary stimulus files.
func BuildIPv4(h rule.Header) []byte {
	transport := 0
	if h.Proto == rule.ProtoTCP {
		transport = 20
	} else if h.Proto == rule.ProtoUDP {
		transport = 8
	}
	pkt := make([]byte, ipv4MinHeader+transport)
	pkt[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(pkt[2:4], uint16(len(pkt)))
	pkt[8] = 64 // TTL
	pkt[9] = h.Proto
	binary.BigEndian.PutUint32(pkt[12:16], h.SrcIP)
	binary.BigEndian.PutUint32(pkt[16:20], h.DstIP)
	binary.BigEndian.PutUint16(pkt[10:12], ipv4Checksum(pkt[:ipv4MinHeader]))
	if transport > 0 {
		binary.BigEndian.PutUint16(pkt[20:22], h.SrcPort)
		binary.BigEndian.PutUint16(pkt[22:24], h.DstPort)
		if h.Proto == rule.ProtoUDP {
			binary.BigEndian.PutUint16(pkt[24:26], 8) // UDP length
		} else {
			pkt[32] = 5 << 4 // TCP data offset
		}
	}
	return pkt
}

// BuildIPv6 serializes a header into a minimal valid IPv6 packet with an
// empty transport payload — the inverse of ParseIPv6/DecodeIPv6 for test
// stimulus and raw-replay frame synthesis. Headers whose Proto is an
// extension-header value (0, 43, 60) are not representable as a minimal
// packet; the decoders would walk a nonexistent extension chain.
func BuildIPv6(h rule.Header6) []byte {
	transport := 0
	if h.Proto == rule.ProtoTCP {
		transport = 20
	} else if h.Proto == rule.ProtoUDP {
		transport = 8
	}
	pkt := make([]byte, ipv6HeaderLen+transport)
	pkt[0] = 6 << 4
	binary.BigEndian.PutUint16(pkt[4:6], uint16(transport)) // payload length
	pkt[6] = h.Proto
	pkt[7] = 64 // hop limit
	binary.BigEndian.PutUint64(pkt[8:16], h.SrcIP.Hi)
	binary.BigEndian.PutUint64(pkt[16:24], h.SrcIP.Lo)
	binary.BigEndian.PutUint64(pkt[24:32], h.DstIP.Hi)
	binary.BigEndian.PutUint64(pkt[32:40], h.DstIP.Lo)
	if transport > 0 {
		binary.BigEndian.PutUint16(pkt[40:42], h.SrcPort)
		binary.BigEndian.PutUint16(pkt[42:44], h.DstPort)
		if h.Proto == rule.ProtoUDP {
			binary.BigEndian.PutUint16(pkt[44:46], 8) // UDP length
		} else {
			pkt[52] = 5 << 4 // TCP data offset
		}
	}
	return pkt
}

// BuildEthernet6 serializes a header into a complete IPv6-over-Ethernet
// frame: BuildIPv6 wrapped by BuildEthernet.
func BuildEthernet6(h rule.Header6) []byte {
	return BuildEthernet(BuildIPv6(h))
}

// BuildEthernet wraps an IP packet in an Ethernet frame with the given
// EtherType inferred from the IP version byte.
func BuildEthernet(ip []byte) []byte {
	frame := make([]byte, etherHeaderLen+len(ip))
	et := uint16(etherTypeIPv4)
	if len(ip) > 0 && ip[0]>>4 == 6 {
		et = etherTypeIPv6
	}
	// Locally-administered placeholder MACs.
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 2})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 1})
	binary.BigEndian.PutUint16(frame[12:14], et)
	copy(frame[etherHeaderLen:], ip)
	return frame
}

func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Partition names the five header fields in the order the Search Engine
// consumes them. It exists so engine wiring, cost reports and logs agree on
// field identity and order.
type Field int

// The five classic 5-tuple fields.
const (
	FieldSrcIP Field = iota
	FieldDstIP
	FieldSrcPort
	FieldDstPort
	FieldProto
	NumFields // sentinel: number of fields
)

// String returns the short field mnemonic used in reports (matches the
// paper's L_IPs, L_IPd, L_Ps, L_Pd, L_PRT label naming).
func (f Field) String() string {
	switch f {
	case FieldSrcIP:
		return "IPs"
	case FieldDstIP:
		return "IPd"
	case FieldSrcPort:
		return "Ps"
	case FieldDstPort:
		return "Pd"
	case FieldProto:
		return "PRT"
	default:
		return fmt.Sprintf("field(%d)", int(f))
	}
}
