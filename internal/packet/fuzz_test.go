package packet

import (
	"testing"

	"repro/internal/rule"
)

// Fuzz seed corpus: round-trippable frames plus adversarial shapes
// (extension-header chains, fragments, bad versions/IHL, truncations).
func seedFrames() [][]byte {
	tcp4 := BuildEthernet(BuildIPv4(rule.Header{SrcIP: 0x0a000001, DstIP: 0xc0a80001, SrcPort: 1234, DstPort: 80, Proto: rule.ProtoTCP}))
	udp4 := BuildEthernet(BuildIPv4(rule.Header{SrcIP: 1, DstIP: 2, SrcPort: 53, DstPort: 53, Proto: rule.ProtoUDP}))
	icmp4 := BuildEthernet(BuildIPv4(rule.Header{SrcIP: 3, DstIP: 4, Proto: rule.ProtoICMP}))
	tcp6 := BuildEthernet6(rule.Header6{SrcIP: rule.Addr6{Hi: 0x20010db800000000, Lo: 1}, DstIP: rule.Addr6{Hi: 0x20010db800000000, Lo: 2}, SrcPort: 443, DstPort: 40000, Proto: rule.ProtoTCP})
	udp6 := BuildEthernet6(rule.Header6{SrcIP: rule.Addr6{Lo: 9}, DstIP: rule.Addr6{Hi: 7}, SrcPort: 53, DstPort: 53, Proto: rule.ProtoUDP})

	// Fragmented IPv4: non-zero fragment offset, no transport header.
	frag := BuildIPv4(rule.Header{SrcIP: 5, DstIP: 6, Proto: rule.ProtoUDP})
	frag[6], frag[7] = 0x00, 0x10

	// IPv6 with a hop-by-hop extension header chained to UDP.
	ext6 := make([]byte, 40+8+8)
	ext6[0] = 6 << 4
	ext6[6] = 0 // hop-by-hop
	ext6[40] = rule.ProtoUDP
	ext6[41] = 0 // 8-byte extension

	// IPv4 with options (IHL 6) and a huge claimed IHL.
	opts := make([]byte, 28)
	opts[0] = 0x46
	opts[9] = rule.ProtoICMP
	badIHL := BuildIPv4(rule.Header{})
	badIHL[0] = 0x4f

	return [][]byte{
		tcp4, udp4, icmp4, tcp6, udp6,
		BuildEthernet(frag), BuildEthernet(ext6), BuildEthernet(opts), BuildEthernet(badIHL),
		tcp4[:20], tcp6[:30], {}, {0x45},
	}
}

// FuzzParseIPv4 cross-checks ParseIPv4 against DecodeIPv4 on arbitrary
// bytes: both must agree on success and header, and neither may panic
// or over-read.
func FuzzParseIPv4(f *testing.F) {
	for _, fr := range seedFrames() {
		if len(fr) > etherHeaderLen {
			f.Add(fr[etherHeaderLen:])
		}
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, pkt []byte) {
		ph, perr := ParseIPv4(pkt)
		var dh rule.Header
		derr := DecodeIPv4(pkt, &dh)
		if (perr == nil) != (derr == nil) {
			t.Fatalf("ParseIPv4 err %v, DecodeIPv4 err %v", perr, derr)
		}
		if perr == nil && ph != dh {
			t.Fatalf("ParseIPv4 %+v, DecodeIPv4 %+v", ph, dh)
		}
	})
}

// FuzzParseIPv6 does the same for the IPv6 pair, whose extension-header
// walk is the likeliest over-read site.
func FuzzParseIPv6(f *testing.F) {
	for _, fr := range seedFrames() {
		if len(fr) > etherHeaderLen {
			f.Add(fr[etherHeaderLen:])
		}
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, pkt []byte) {
		ph, perr := ParseIPv6(pkt)
		var dh rule.Header6
		derr := DecodeIPv6(pkt, &dh)
		if (perr == nil) != (derr == nil) {
			t.Fatalf("ParseIPv6 err %v, DecodeIPv6 err %v", perr, derr)
		}
		if perr == nil && ph != dh {
			t.Fatalf("ParseIPv6 %+v, DecodeIPv6 %+v", ph, dh)
		}
	})
}

// FuzzParseEthernet covers the frame-level dispatch of both families,
// the burst decoder included.
func FuzzParseEthernet(f *testing.F) {
	for _, fr := range seedFrames() {
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		ph4, perr4 := ParseEthernet(frame)
		var dh4 rule.Header
		derr4 := DecodeEthernet(frame, &dh4)
		if (perr4 == nil) != (derr4 == nil) {
			t.Fatalf("ParseEthernet err %v, DecodeEthernet err %v", perr4, derr4)
		}
		if perr4 == nil && ph4 != dh4 {
			t.Fatalf("ParseEthernet %+v, DecodeEthernet %+v", ph4, dh4)
		}
		ph6, perr6 := ParseEthernet6(frame)
		var dh6 rule.Header6
		derr6 := DecodeEthernet6(frame, &dh6)
		if (perr6 == nil) != (derr6 == nil) {
			t.Fatalf("ParseEthernet6 err %v, DecodeEthernet6 err %v", perr6, derr6)
		}
		if perr6 == nil && ph6 != dh6 {
			t.Fatalf("ParseEthernet6 %+v, DecodeEthernet6 %+v", ph6, dh6)
		}
		var b Burst
		hdrs, idx := b.DecodeV4([][]byte{frame, frame})
		if len(hdrs) != len(idx) {
			t.Fatal("burst v4 slab length mismatch")
		}
		hdrs6, idx6 := b.DecodeV6([][]byte{frame, frame})
		if len(hdrs6) != len(idx6) {
			t.Fatal("burst v6 slab length mismatch")
		}
	})
}
