package packet

import (
	"encoding/binary"

	"repro/internal/rule"
)

// In-place decoders: the allocation-free counterparts of the Parse*
// functions. A raw-packet front end (pcap, AF_PACKET, a DPDK-style
// ring) hands the classifier frame slabs at line rate, where a
// per-frame header allocation or a wrapped error would dominate the
// lookup itself. The decoders below write into a caller-provided
// header, return the bare sentinel errors (no fmt wrapping) and never
// read past len(pkt), so the whole frame→verdict path can run with
// zero heap allocations in steady state.

// DecodeEthernet extracts the IPv4 5-tuple from an Ethernet frame into
// *h without allocating. On error *h is left unspecified.
//
//repro:noalloc
func DecodeEthernet(frame []byte, h *rule.Header) error {
	if len(frame) < etherHeaderLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return ErrNotIP
	}
	return DecodeIPv4(frame[etherHeaderLen:], h)
}

// DecodeIPv4 extracts the 5-tuple from an IPv4 packet into *h without
// allocating. The field conventions match ParseIPv4: ports stay zero
// for non-TCP/UDP protocols and for non-first fragments.
//
//repro:noalloc
func DecodeIPv4(pkt []byte, h *rule.Header) error {
	if len(pkt) < ipv4MinHeader {
		return ErrTruncated
	}
	if pkt[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(pkt[0]&0x0f) * 4
	if ihl < ipv4MinHeader {
		return ErrBadIHL
	}
	if len(pkt) < ihl {
		return ErrTruncated
	}
	h.Proto = pkt[9]
	h.SrcIP = binary.BigEndian.Uint32(pkt[12:16])
	h.DstIP = binary.BigEndian.Uint32(pkt[16:20])
	h.SrcPort, h.DstPort = 0, 0
	// Fragments past the first carry no transport header.
	if binary.BigEndian.Uint16(pkt[6:8])&0x1fff != 0 {
		return nil
	}
	if h.Proto == rule.ProtoTCP || h.Proto == rule.ProtoUDP {
		if len(pkt) < ihl+4 {
			return ErrTruncated
		}
		h.SrcPort = binary.BigEndian.Uint16(pkt[ihl : ihl+2])
		h.DstPort = binary.BigEndian.Uint16(pkt[ihl+2 : ihl+4])
	}
	return nil
}

// DecodeEthernet6 extracts the IPv6 5-tuple from an Ethernet frame into
// *h without allocating.
//
//repro:noalloc
func DecodeEthernet6(frame []byte, h *rule.Header6) error {
	if len(frame) < etherHeaderLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv6 {
		return ErrNotIP
	}
	return DecodeIPv6(frame[etherHeaderLen:], h)
}

// DecodeIPv6 extracts the 5-tuple from an IPv6 packet into *h without
// allocating, walking the same chainable extension headers as
// ParseIPv6 (hop-by-hop, routing, destination options).
//
//repro:noalloc
func DecodeIPv6(pkt []byte, h *rule.Header6) error {
	if len(pkt) < ipv6HeaderLen {
		return ErrTruncated
	}
	if pkt[0]>>4 != 6 {
		return ErrBadVersion
	}
	h.SrcIP.Hi = binary.BigEndian.Uint64(pkt[8:16])
	h.SrcIP.Lo = binary.BigEndian.Uint64(pkt[16:24])
	h.DstIP.Hi = binary.BigEndian.Uint64(pkt[24:32])
	h.DstIP.Lo = binary.BigEndian.Uint64(pkt[32:40])
	h.SrcPort, h.DstPort = 0, 0
	next := pkt[6]
	off := ipv6HeaderLen
	for next == 0 || next == 43 || next == 60 {
		if len(pkt) < off+8 {
			return ErrTruncated
		}
		l := int(pkt[off+1])*8 + 8
		next = pkt[off]
		off += l
	}
	h.Proto = next
	if next == rule.ProtoTCP || next == rule.ProtoUDP {
		if len(pkt) < off+4 {
			return ErrTruncated
		}
		h.SrcPort = binary.BigEndian.Uint16(pkt[off : off+2])
		h.DstPort = binary.BigEndian.Uint16(pkt[off+2 : off+4])
	}
	return nil
}

// Burst is a reusable frame-slab decoder: it walks a [][]byte slab and
// produces a compacted header slab plus the original index of each
// successfully decoded frame, reusing its internal storage across
// calls. After the first call on a slab size the steady-state decode
// performs zero heap allocations. A Burst is not safe for concurrent
// use; pool instances across goroutines.
type Burst struct {
	hdrs  []rule.Header
	hdrs6 []rule.Header6
	idx   []int
}

// DecodeV4 decodes every IPv4-over-Ethernet frame in the slab. It
// returns the decoded headers (compacted, in slab order) and the slab
// index each header came from; frames that fail to decode are skipped.
// Both returned slices are owned by the Burst and valid until the next
// Decode call.
//
//repro:noalloc
func (b *Burst) DecodeV4(frames [][]byte) ([]rule.Header, []int) {
	b.hdrs = b.hdrs[:0]
	b.idx = b.idx[:0]
	var h rule.Header
	for i, f := range frames {
		if DecodeEthernet(f, &h) != nil {
			continue
		}
		b.hdrs = append(b.hdrs, h)
		b.idx = append(b.idx, i)
	}
	return b.hdrs, b.idx
}

// DecodeV6 is the IPv6 counterpart of DecodeV4.
//
//repro:noalloc
func (b *Burst) DecodeV6(frames [][]byte) ([]rule.Header6, []int) {
	b.hdrs6 = b.hdrs6[:0]
	b.idx = b.idx[:0]
	var h rule.Header6
	for i, f := range frames {
		if DecodeEthernet6(f, &h) != nil {
			continue
		}
		b.hdrs6 = append(b.hdrs6, h)
		b.idx = append(b.idx, i)
	}
	return b.hdrs6, b.idx
}
