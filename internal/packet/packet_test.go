package packet

import (
	"math/rand"
	"testing"

	"repro/internal/rule"
)

func TestParseIPv4RoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	protos := []uint8{rule.ProtoTCP, rule.ProtoUDP, rule.ProtoICMP, 89 /* OSPF */}
	for i := 0; i < 500; i++ {
		want := rule.Header{
			SrcIP:   rnd.Uint32(),
			DstIP:   rnd.Uint32(),
			SrcPort: uint16(rnd.Intn(1 << 16)),
			DstPort: uint16(rnd.Intn(1 << 16)),
			Proto:   protos[rnd.Intn(len(protos))],
		}
		if want.Proto != rule.ProtoTCP && want.Proto != rule.ProtoUDP {
			want.SrcPort, want.DstPort = 0, 0 // no transport ports
		}
		got, err := ParseIPv4(BuildIPv4(want))
		if err != nil {
			t.Fatalf("ParseIPv4: %v", err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestParseEthernetRoundTrip(t *testing.T) {
	want := rule.Header{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: rule.ProtoTCP}
	got, err := ParseEthernet(BuildEthernet(BuildIPv4(want)))
	if err != nil {
		t.Fatalf("ParseEthernet: %v", err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	good := BuildIPv4(rule.Header{Proto: rule.ProtoTCP, DstPort: 80})

	if _, err := ParseIPv4(good[:10]); err == nil {
		t.Error("truncated header should fail")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x65 // version 6 in an ipv4 parse
	if _, err := ParseIPv4(bad); err == nil {
		t.Error("wrong version should fail")
	}
	bad = append([]byte(nil), good...)
	bad[0] = 0x44 // IHL 4 words < minimum 5
	if _, err := ParseIPv4(bad); err == nil {
		t.Error("bad IHL should fail")
	}
	// TCP packet cut before the ports.
	if _, err := ParseIPv4(good[:22]); err == nil {
		t.Error("truncated transport should fail")
	}
}

func TestParseIPv4Fragment(t *testing.T) {
	pkt := BuildIPv4(rule.Header{SrcIP: 1, DstIP: 2, SrcPort: 1000, DstPort: 2000, Proto: rule.ProtoTCP})
	pkt[6], pkt[7] = 0x00, 0x10 // fragment offset 16
	h, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if h.SrcPort != 0 || h.DstPort != 0 {
		t.Errorf("non-first fragment should have zero ports, got %d/%d", h.SrcPort, h.DstPort)
	}
	if h.SrcIP != 1 || h.DstIP != 2 || h.Proto != rule.ProtoTCP {
		t.Errorf("fragment IP fields wrong: %+v", h)
	}
}

func TestParseIPv6(t *testing.T) {
	// Hand-built IPv6 + TCP packet.
	pkt := make([]byte, 40+20)
	pkt[0] = 0x60
	pkt[6] = rule.ProtoTCP
	// src 2001:db8::1, dst 2001:db8::2
	pkt[8], pkt[9], pkt[10], pkt[11] = 0x20, 0x01, 0x0d, 0xb8
	pkt[23] = 1
	pkt[24], pkt[25], pkt[26], pkt[27] = 0x20, 0x01, 0x0d, 0xb8
	pkt[39] = 2
	pkt[40], pkt[41] = 0x30, 0x39 // src port 12345
	pkt[42], pkt[43] = 0x01, 0xbb // dst port 443

	h, err := ParseIPv6(pkt)
	if err != nil {
		t.Fatalf("ParseIPv6: %v", err)
	}
	if h.SrcIP.Hi != 0x20010db8_00000000 || h.SrcIP.Lo != 1 {
		t.Errorf("src = %x/%x", h.SrcIP.Hi, h.SrcIP.Lo)
	}
	if h.DstIP.Lo != 2 || h.SrcPort != 12345 || h.DstPort != 443 || h.Proto != rule.ProtoTCP {
		t.Errorf("header = %+v", h)
	}
}

func TestParseIPv6ExtensionHeaders(t *testing.T) {
	// IPv6 with a hop-by-hop extension header before UDP.
	pkt := make([]byte, 40+8+8)
	pkt[0] = 0x60
	pkt[6] = 0 // next header: hop-by-hop
	pkt[40] = rule.ProtoUDP
	pkt[41] = 0                   // ext length: 8 bytes total
	pkt[48], pkt[49] = 0x00, 0x35 // src port 53
	pkt[50], pkt[51] = 0x00, 0x35 // dst port 53
	h, err := ParseIPv6(pkt)
	if err != nil {
		t.Fatalf("ParseIPv6: %v", err)
	}
	if h.Proto != rule.ProtoUDP || h.SrcPort != 53 || h.DstPort != 53 {
		t.Errorf("header = %+v", h)
	}
}

func TestFieldString(t *testing.T) {
	want := map[Field]string{
		FieldSrcIP: "IPs", FieldDstIP: "IPd",
		FieldSrcPort: "Ps", FieldDstPort: "Pd", FieldProto: "PRT",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("Field(%d).String() = %q, want %q", f, f.String(), s)
		}
	}
	if NumFields != 5 {
		t.Errorf("NumFields = %d, want 5", NumFields)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	pkt := BuildIPv4(rule.Header{SrcIP: 0x01020304, DstIP: 0x05060708, Proto: rule.ProtoUDP, SrcPort: 9, DstPort: 10})
	// Recomputing the checksum over the header including the stored
	// checksum must yield 0xffff-complement consistency: sum of all words
	// including checksum == 0xffff.
	var sum uint32
	for i := 0; i+1 < 20; i += 2 {
		sum += uint32(pkt[i])<<8 | uint32(pkt[i+1])
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Errorf("header checksum does not verify: folded sum = %#x", sum)
	}
}
