package packet

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/rule"
)

func randHeader4(rnd *rand.Rand) rule.Header {
	protos := []uint8{rule.ProtoTCP, rule.ProtoUDP, rule.ProtoICMP, 89 /* OSPF */}
	h := rule.Header{
		SrcIP: rnd.Uint32(),
		DstIP: rnd.Uint32(),
		Proto: protos[rnd.Intn(len(protos))],
	}
	if h.Proto == rule.ProtoTCP || h.Proto == rule.ProtoUDP {
		h.SrcPort = uint16(rnd.Intn(1 << 16))
		h.DstPort = uint16(rnd.Intn(1 << 16))
	}
	return h
}

func randHeader6(rnd *rand.Rand) rule.Header6 {
	protos := []uint8{rule.ProtoTCP, rule.ProtoUDP, 58 /* ICMPv6 */}
	h := rule.Header6{
		SrcIP: rule.Addr6{Hi: rnd.Uint64(), Lo: rnd.Uint64()},
		DstIP: rule.Addr6{Hi: rnd.Uint64(), Lo: rnd.Uint64()},
		Proto: protos[rnd.Intn(len(protos))],
	}
	if h.Proto == rule.ProtoTCP || h.Proto == rule.ProtoUDP {
		h.SrcPort = uint16(rnd.Intn(1 << 16))
		h.DstPort = uint16(rnd.Intn(1 << 16))
	}
	return h
}

// TestDecodeMatchesParseIPv4 pins the in-place decoder to the allocating
// parser on round-tripped frames and on every truncation of them.
func TestDecodeMatchesParseIPv4(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		want := randHeader4(rnd)
		frame := BuildEthernet(BuildIPv4(want))
		var got rule.Header
		if err := DecodeEthernet(frame, &got); err != nil {
			t.Fatalf("DecodeEthernet: %v", err)
		}
		if got != want {
			t.Fatalf("DecodeEthernet = %+v, want %+v", got, want)
		}
		for cut := 0; cut < len(frame); cut++ {
			ph, perr := ParseEthernet(frame[:cut])
			var dh rule.Header
			derr := DecodeEthernet(frame[:cut], &dh)
			if (perr == nil) != (derr == nil) {
				t.Fatalf("cut %d: parse err %v, decode err %v", cut, perr, derr)
			}
			if perr == nil && ph != dh {
				t.Fatalf("cut %d: parse %+v, decode %+v", cut, ph, dh)
			}
		}
	}
}

// TestDecodeMatchesParseIPv6 does the same for the IPv6 pair, via
// BuildEthernet6 round trips.
func TestDecodeMatchesParseIPv6(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		want := randHeader6(rnd)
		frame := BuildEthernet6(want)
		var got rule.Header6
		if err := DecodeEthernet6(frame, &got); err != nil {
			t.Fatalf("DecodeEthernet6: %v", err)
		}
		if got != want {
			t.Fatalf("DecodeEthernet6 = %+v, want %+v", got, want)
		}
		for cut := 0; cut < len(frame); cut++ {
			ph, perr := ParseEthernet6(frame[:cut])
			var dh rule.Header6
			derr := DecodeEthernet6(frame[:cut], &dh)
			if (perr == nil) != (derr == nil) {
				t.Fatalf("cut %d: parse err %v, decode err %v", cut, perr, derr)
			}
			if perr == nil && ph != dh {
				t.Fatalf("cut %d: parse %+v, decode %+v", cut, ph, dh)
			}
		}
	}
}

// TestDecodeSentinelErrors checks the decoders return the bare package
// sentinels (the allocation-free error contract).
func TestDecodeSentinelErrors(t *testing.T) {
	var h4 rule.Header
	var h6 rule.Header6
	if err := DecodeEthernet(nil, &h4); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty frame: %v, want ErrTruncated", err)
	}
	v6frame := BuildEthernet6(rule.Header6{Proto: rule.ProtoTCP})
	if err := DecodeEthernet(v6frame, &h4); !errors.Is(err, ErrNotIP) {
		t.Errorf("v6 frame on v4 decoder: %v, want ErrNotIP", err)
	}
	v4frame := BuildEthernet(BuildIPv4(rule.Header{Proto: rule.ProtoTCP}))
	if err := DecodeEthernet6(v4frame, &h6); !errors.Is(err, ErrNotIP) {
		t.Errorf("v4 frame on v6 decoder: %v, want ErrNotIP", err)
	}
	bad := BuildIPv4(rule.Header{})
	bad[0] = 6 << 4
	if err := DecodeIPv4(bad, &h4); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version 6 on v4 decoder: %v, want ErrBadVersion", err)
	}
	bad = BuildIPv4(rule.Header{})
	bad[0] = 0x42 // IHL 2 < 5
	if err := DecodeIPv4(bad, &h4); !errors.Is(err, ErrBadIHL) {
		t.Errorf("short IHL: %v, want ErrBadIHL", err)
	}
	bad6 := BuildIPv6(rule.Header6{})
	bad6[0] = 4 << 4
	if err := DecodeIPv6(bad6, &h6); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version 4 on v6 decoder: %v, want ErrBadVersion", err)
	}
}

// TestDecodeStaleHeaderOverwrite feeds one reused header through frames
// of different shapes: a portless decode after a ported one must clear
// the stale ports.
func TestDecodeStaleHeaderOverwrite(t *testing.T) {
	var h rule.Header
	tcp := rule.Header{SrcIP: 1, DstIP: 2, SrcPort: 100, DstPort: 200, Proto: rule.ProtoTCP}
	if err := DecodeEthernet(BuildEthernet(BuildIPv4(tcp)), &h); err != nil {
		t.Fatal(err)
	}
	icmp := rule.Header{SrcIP: 3, DstIP: 4, Proto: rule.ProtoICMP}
	if err := DecodeEthernet(BuildEthernet(BuildIPv4(icmp)), &h); err != nil {
		t.Fatal(err)
	}
	if h != icmp {
		t.Fatalf("reused header = %+v, want %+v", h, icmp)
	}
}

// TestBurstDecode drives the slab decoder over a mixed slab (valid v4,
// valid v6, garbage) and checks compaction and index bookkeeping, twice
// to exercise storage reuse.
func TestBurstDecode(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var b Burst
	for round := 0; round < 2; round++ {
		var frames [][]byte
		var want4 []rule.Header
		var wantIdx []int
		for i := 0; i < 64; i++ {
			switch i % 3 {
			case 0:
				h := randHeader4(rnd)
				frames = append(frames, BuildEthernet(BuildIPv4(h)))
				want4 = append(want4, h)
				wantIdx = append(wantIdx, i)
			case 1:
				frames = append(frames, BuildEthernet6(randHeader6(rnd)))
			default:
				frames = append(frames, []byte{0xde, 0xad})
			}
		}
		hdrs, idx := b.DecodeV4(frames)
		if len(hdrs) != len(want4) || len(idx) != len(wantIdx) {
			t.Fatalf("round %d: decoded %d/%d, want %d", round, len(hdrs), len(idx), len(want4))
		}
		for j := range hdrs {
			if hdrs[j] != want4[j] || idx[j] != wantIdx[j] {
				t.Fatalf("round %d entry %d: got %+v@%d, want %+v@%d",
					round, j, hdrs[j], idx[j], want4[j], wantIdx[j])
			}
		}
		hdrs6, idx6 := b.DecodeV6(frames)
		if len(hdrs6) == 0 || len(hdrs6) != len(idx6) {
			t.Fatalf("round %d: v6 decode %d headers, %d indices", round, len(hdrs6), len(idx6))
		}
		for j, k := range idx6 {
			if k%3 != 1 {
				t.Fatalf("round %d: v6 index %d not a v6 slab slot", round, k)
			}
			_ = hdrs6[j]
		}
	}
}

// TestDecodeZeroAllocs is the runtime half of the //repro:noalloc
// contract on every in-place decoder: frame→header must stay off the
// heap.
func TestDecodeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-runtime allocations")
	}
	f4 := BuildEthernet(BuildIPv4(rule.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rule.ProtoTCP}))
	f6 := BuildEthernet6(rule.Header6{SrcIP: rule.Addr6{Hi: 1}, DstIP: rule.Addr6{Lo: 2}, SrcPort: 3, DstPort: 4, Proto: rule.ProtoUDP})
	var h4 rule.Header
	var h6 rule.Header6
	if allocs := testing.AllocsPerRun(500, func() {
		if err := DecodeEthernet(f4, &h4); err != nil {
			t.Fatal(err)
		}
		if err := DecodeIPv4(f4[14:], &h4); err != nil {
			t.Fatal(err)
		}
		if err := DecodeEthernet6(f6, &h6); err != nil {
			t.Fatal(err)
		}
		if err := DecodeIPv6(f6[14:], &h6); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("single-frame decoders allocated %v times per run, want 0", allocs)
	}

	frames := [][]byte{f4, f6, {0x01}, f4, f6}
	var b Burst
	b.DecodeV4(frames) // warm the slab storage
	b.DecodeV6(frames)
	if allocs := testing.AllocsPerRun(500, func() {
		hdrs, _ := b.DecodeV4(frames)
		if len(hdrs) != 2 {
			t.Fatal("v4 burst decode count")
		}
		hdrs6, _ := b.DecodeV6(frames)
		if len(hdrs6) != 2 {
			t.Fatal("v6 burst decode count")
		}
	}); allocs != 0 {
		t.Errorf("burst decoder allocated %v times per run, want 0", allocs)
	}
}
