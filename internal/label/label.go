// Package label defines the label method at the heart of the paper's
// decomposition architecture. Each unique field match specification (an IP
// prefix, a port range, a protocol value) is assigned a small integer
// label; per-field search engines return priority-ordered lists of the
// labels matching the input field value, and the Unique Label Identifier
// combines one label per field to address the Rule Filter.
//
// Labels are stable across incremental updates: inserting or deleting a
// rule never renumbers the labels of the remaining rules (Section III.D:
// "the new labels created should not change the existing labels").
package label

import "fmt"

// Label identifies one field match specification. Labels are dense small
// integers assigned by an Allocator.
type Label uint32

// None is the absent label, used where hardware would drive an invalid
// label code.
const None Label = ^Label(0)

// String formats the label, with None rendered symbolically.
func (l Label) String() string {
	if l == None {
		return "L-"
	}
	return fmt.Sprintf("L%d", uint32(l))
}

// Allocator hands out labels and recycles freed ones, keeping the label
// space dense so hardware tables stay small. The zero value is ready to
// use.
type Allocator struct {
	next Label
	free []Label
}

// Alloc returns an unused label.
func (a *Allocator) Alloc() Label {
	if n := len(a.free); n > 0 {
		l := a.free[n-1]
		a.free = a.free[:n-1]
		return l
	}
	l := a.next
	a.next++
	return l
}

// Free returns a label to the pool. Freeing a label that is still in use
// elsewhere is a caller bug; the allocator does not detect it.
func (a *Allocator) Free(l Label) {
	a.free = append(a.free, l)
}

// InUse returns the number of currently allocated labels.
func (a *Allocator) InUse() int {
	return int(a.next) - len(a.free)
}

// Space returns the size of the label space handed out so far (the
// high-water mark hardware tables must be dimensioned for).
func (a *Allocator) Space() int { return int(a.next) }

// MaxPerField is the label-list bound from the paper: "the maximum number
// of labels in each field is limited to five labels", based on the
// observation (from the RFC and ABV studies) that only a small set of
// rules match any input packet.
const MaxPerField = 5

// List is a bounded, priority-ordered label list: the first label refers
// to the highest-priority (most specific) matching specification, mirroring
// the per-field output register lists of the paper's Search Engine. The
// zero value is an empty list with the default bound.
type List struct {
	labels   []Label
	limit    int
	overflow bool
}

// NewList returns an empty list with the given bound; limit <= 0 selects
// MaxPerField.
func NewList(limit int) List {
	if limit <= 0 {
		limit = MaxPerField
	}
	return List{limit: limit}
}

// Push appends a label in priority order (callers push highest priority
// first). Labels beyond the bound are dropped and recorded as overflow,
// the condition the decision controller's ruleset optimizer must prevent.
func (s *List) Push(l Label) {
	if s.limit == 0 {
		s.limit = MaxPerField
	}
	if len(s.labels) >= s.limit {
		s.overflow = true
		return
	}
	s.labels = append(s.labels, l)
}

// Labels returns the labels in priority order. The slice is shared; do not
// modify.
func (s *List) Labels() []Label { return s.labels }

// Len returns the number of valid labels (the paper's per-list counter
// value consumed by the ULI).
func (s *List) Len() int { return len(s.labels) }

// Overflowed reports whether pushes were dropped by the bound.
func (s *List) Overflowed() bool { return s.overflow }

// Reset empties the list, keeping its bound.
func (s *List) Reset() {
	s.labels = s.labels[:0]
	s.overflow = false
}
