package label

import (
	"testing"
	"testing/quick"
)

func TestAllocatorDense(t *testing.T) {
	var a Allocator
	l0, l1, l2 := a.Alloc(), a.Alloc(), a.Alloc()
	if l0 != 0 || l1 != 1 || l2 != 2 {
		t.Fatalf("labels = %v %v %v, want 0 1 2", l0, l1, l2)
	}
	if a.InUse() != 3 || a.Space() != 3 {
		t.Errorf("InUse=%d Space=%d", a.InUse(), a.Space())
	}
	a.Free(l1)
	if a.InUse() != 2 {
		t.Errorf("InUse after free = %d", a.InUse())
	}
	if got := a.Alloc(); got != l1 {
		t.Errorf("recycled label = %v, want %v", got, l1)
	}
	if a.Space() != 3 {
		t.Errorf("Space grew on recycle: %d", a.Space())
	}
}

func TestAllocatorNeverDuplicates(t *testing.T) {
	f := func(ops []bool) bool {
		var a Allocator
		live := make(map[Label]bool)
		var pool []Label
		for _, alloc := range ops {
			if alloc || len(pool) == 0 {
				l := a.Alloc()
				if live[l] {
					return false // duplicate live label
				}
				live[l] = true
				pool = append(pool, l)
			} else {
				l := pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				delete(live, l)
				a.Free(l)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListPriorityOrderAndBound(t *testing.T) {
	s := NewList(3)
	for i := 0; i < 5; i++ {
		s.Push(Label(i))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Overflowed() {
		t.Error("expected overflow")
	}
	want := []Label{0, 1, 2}
	for i, l := range s.Labels() {
		if l != want[i] {
			t.Errorf("label[%d] = %v, want %v", i, l, want[i])
		}
	}
	s.Reset()
	if s.Len() != 0 || s.Overflowed() {
		t.Error("Reset did not clear")
	}
	s.Push(9)
	if s.Len() != 1 {
		t.Error("Push after Reset failed")
	}
}

func TestListDefaultBound(t *testing.T) {
	var s List // zero value
	for i := 0; i < 10; i++ {
		s.Push(Label(i))
	}
	if s.Len() != MaxPerField {
		t.Errorf("zero-value List bound = %d, want %d", s.Len(), MaxPerField)
	}
}

func TestLabelString(t *testing.T) {
	if Label(7).String() != "L7" || None.String() != "L-" {
		t.Errorf("String wrong: %q %q", Label(7).String(), None.String())
	}
}
