package workload

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/rule"
	"repro/internal/ruleset"
)

func testRuleset(t *testing.T, size int) *rule.Set {
	t.Helper()
	rs, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: size, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func baseConfig(m Model) Config {
	return Config{
		Model: m, Events: 2000, Duration: time.Second, Seed: 42,
		UpdateRatio: 0.1, Swaps: 3,
	}
}

// TestGenerateDeterministic pins the reproducibility contract: the same
// (ruleset, Config) pair yields byte-identical schedules.
func TestGenerateDeterministic(t *testing.T) {
	rs := testRuleset(t, 80)
	for _, m := range Models() {
		a, err := Generate(rs, baseConfig(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		b, err := Generate(rs, baseConfig(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed produced different schedules", m)
		}
		c, err := Generate(rs, func() Config { cfg := baseConfig(m); cfg.Seed = 43; return cfg }())
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Events, c.Events) {
			t.Fatalf("%v: different seeds produced identical events", m)
		}
	}
}

// TestGenerateScheduleInvariants checks the structural contract every
// model must satisfy: sorted timestamps inside the horizon, the
// requested op mix, valid deletes, and unique IDs/priorities across the
// whole run.
func TestGenerateScheduleInvariants(t *testing.T) {
	rs := testRuleset(t, 80)
	for _, m := range Models() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			s, err := Generate(rs, baseConfig(m))
			if err != nil {
				t.Fatal(err)
			}
			if s.Model != m {
				t.Fatalf("model = %v", s.Model)
			}
			if len(s.Events) != 2000 {
				t.Fatalf("events = %d", len(s.Events))
			}
			counts := s.Counts()
			if counts[OpSwap] != 3 || len(s.Swaps) != 3 {
				t.Fatalf("swaps = %d (payloads %d), want 3", counts[OpSwap], len(s.Swaps))
			}
			if counts[OpInsert] == 0 || counts[OpDelete] == 0 {
				t.Fatalf("no updates generated: %v", counts)
			}
			updates := float64(counts[OpInsert]+counts[OpDelete]) / 2000
			if updates < 0.05 || updates > 0.2 {
				t.Fatalf("update fraction %.3f far from 0.1", updates)
			}
			prev := time.Duration(-1)
			for i := range s.Events {
				if at := s.Events[i].At; at < prev || at < 0 || at >= 2*time.Second {
					t.Fatalf("event %d: arrival %v (prev %v)", i, at, prev)
				}
				prev = s.Events[i].At
			}
			checkSequenceValid(t, s)
		})
	}
}

// checkSequenceValid replays the schedule's update sequence against a
// map and asserts every delete targets a live rule, inserts never
// collide, and IDs/priorities stay globally unique.
func checkSequenceValid(t *testing.T, s *Schedule) {
	t.Helper()
	live := map[int]bool{}
	prios := map[int]int{} // priority -> id
	noteRule := func(r rule.Rule) {
		if id, dup := prios[r.Priority]; dup && id != r.ID {
			t.Fatalf("priority %d shared by rules %d and %d", r.Priority, id, r.ID)
		}
		prios[r.Priority] = r.ID
	}
	for _, r := range s.Initial {
		live[r.ID] = true
		noteRule(r)
	}
	for i, ev := range s.Events {
		switch ev.Op {
		case OpInsert:
			if live[ev.Rule.ID] {
				t.Fatalf("event %d: insert of live rule %d", i, ev.Rule.ID)
			}
			live[ev.Rule.ID] = true
			noteRule(ev.Rule)
		case OpDelete:
			if !live[ev.RuleID] {
				t.Fatalf("event %d: delete of dead rule %d", i, ev.RuleID)
			}
			delete(live, ev.RuleID)
		case OpSwap:
			payload := s.Swaps[ev.Swap]
			next := make(map[int]bool, len(payload))
			for _, r := range payload {
				if !live[r.ID] {
					t.Fatalf("event %d: swap resurrects rule %d", i, r.ID)
				}
				if next[r.ID] {
					t.Fatalf("event %d: swap payload duplicates rule %d", i, r.ID)
				}
				next[r.ID] = true
			}
			live = next
		case OpLookup:
		default:
			t.Fatalf("event %d: bad op %v", i, ev.Op)
		}
	}
}

// TestZipfSkewsPopularity verifies the zipf model concentrates events on
// few flows while uniform spreads them.
func TestZipfSkewsPopularity(t *testing.T) {
	rs := testRuleset(t, 50)
	top := func(m Model) float64 {
		cfg := Config{Model: m, Events: 8000, Duration: time.Second, Seed: 3, ZipfSkew: 1.5}
		s, err := Generate(rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		freq := map[rule.Header]int{}
		total, max := 0, 0
		for i := range s.Events {
			if s.Events[i].Op != OpLookup {
				continue
			}
			freq[s.Events[i].Header]++
			total++
			if freq[s.Events[i].Header] > max {
				max = freq[s.Events[i].Header]
			}
		}
		return float64(max) / float64(total)
	}
	zipf, uniform := top(ModelZipf), top(ModelUniform)
	if zipf < 10*uniform {
		t.Fatalf("zipf top-flow share %.4f not ≫ uniform %.4f", zipf, uniform)
	}
	if zipf < 0.05 {
		t.Fatalf("zipf top-flow share %.4f suspiciously flat", zipf)
	}
}

// TestShiftMigratesHotSet verifies the shift model's hottest flow
// changes between the first and last phase.
func TestShiftMigratesHotSet(t *testing.T) {
	rs := testRuleset(t, 50)
	s, err := Generate(rs, Config{
		Model: ModelShift, Events: 9000, Duration: time.Second, Seed: 3,
		ZipfSkew: 1.5, Shifts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hottest := func(evs []Event) rule.Header {
		freq := map[rule.Header]int{}
		var best rule.Header
		for i := range evs {
			if evs[i].Op != OpLookup {
				continue
			}
			freq[evs[i].Header]++
			if freq[evs[i].Header] > freq[best] {
				best = evs[i].Header
			}
		}
		return best
	}
	third := len(s.Events) / 3
	first, last := hottest(s.Events[:third]), hottest(s.Events[2*third:])
	if first == last {
		t.Fatalf("hot set did not migrate: %+v stayed hottest", first)
	}
}

// TestBurstyArrivals verifies the bursty model leaves silent gaps: no
// arrivals inside the off-windows.
func TestBurstyArrivals(t *testing.T) {
	rs := testRuleset(t, 30)
	on, off := 10*time.Millisecond, 30*time.Millisecond
	s, err := Generate(rs, Config{
		Model: ModelBursty, Events: 4000, Duration: time.Second, Seed: 8,
		BurstOn: on, BurstOff: off,
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle := on + off
	for i := range s.Events {
		if phase := s.Events[i].At % cycle; phase >= on {
			t.Fatalf("event %d arrives at %v, inside the off-window (phase %v)", i, s.Events[i].At, phase)
		}
	}
	// The 25% duty cycle spreads the bursts across the horizon: the last
	// burst must start near the end, not collapse everything up front.
	if lastAt := s.Events[len(s.Events)-1].At; lastAt < 500*time.Millisecond {
		t.Fatalf("bursty schedule ends at %v, expected bursts across the horizon", lastAt)
	}
}

// conntrackFlowKey normalizes a header to its direction-agnostic flow
// identity, the way a conntrack table would.
func conntrackFlowKey(h rule.Header) rule.Header {
	a := uint64(h.SrcIP)<<16 | uint64(h.SrcPort)
	b := uint64(h.DstIP)<<16 | uint64(h.DstPort)
	if a > b {
		h = rule.Header{SrcIP: h.DstIP, DstIP: h.SrcIP,
			SrcPort: h.DstPort, DstPort: h.SrcPort, Proto: h.Proto}
	}
	return h
}

// TestConntrackModel verifies the connection-shaped traffic contract:
// bidirectional flows (both orientations of the same 5-tuple occur, the
// forward one first), connection churn well beyond the live pool, and —
// with the SYN-flood aggressor at full throttle — a schedule dominated
// by one-shot flows.
func TestConntrackModel(t *testing.T) {
	rs := testRuleset(t, 50)
	gen := func(flood float64) map[rule.Header][]rule.Header {
		s, err := Generate(rs, Config{
			Model: ModelConntrack, Events: 6000, Duration: time.Second, Seed: 7,
			Connections: 64, ConnPackets: 8, FloodRatio: flood,
		})
		if err != nil {
			t.Fatal(err)
		}
		flows := map[rule.Header][]rule.Header{}
		for i := range s.Events {
			if s.Events[i].Op != OpLookup {
				continue
			}
			h := s.Events[i].Header
			k := conntrackFlowKey(h)
			flows[k] = append(flows[k], h)
		}
		return flows
	}

	flows := gen(0)
	// Churn: the run walks through far more distinct connections than the
	// 64 concurrently live, but far fewer than one per event.
	if n := len(flows); n < 200 || n > 3000 {
		t.Fatalf("distinct flows = %d, want connection churn in (200, 3000)", n)
	}
	bidir := 0
	for _, pkts := range flows {
		// pkts is in schedule order, so pkts[0] is the connection's
		// opening (forward) packet; any later packet differing from it is
		// the reverse orientation.
		for _, h := range pkts[1:] {
			if h != pkts[0] {
				bidir++
				break
			}
		}
	}
	if bidir < len(flows)/4 {
		t.Fatalf("only %d of %d flows are bidirectional", bidir, len(flows))
	}

	// Full-throttle aggressor: almost every flow is a one-shot SYN.
	flood := gen(1)
	oneShot := 0
	for _, pkts := range flood {
		if len(pkts) == 1 {
			oneShot++
		}
	}
	if len(flood) < 4000 || oneShot < len(flood)*9/10 {
		t.Fatalf("flood run: %d flows, %d one-shot — aggressor not flooding", len(flood), oneShot)
	}
}

func TestGenerateValidation(t *testing.T) {
	rs := testRuleset(t, 10)
	cases := []Config{
		{},                             // no model
		{Model: ModelZipf},             // no events
		{Model: ModelZipf, Events: 10}, // no duration
		{Model: ModelZipf, Events: 10, Duration: 1, ZipfSkew: 0.5},    // bad skew
		{Model: ModelZipf, Events: 10, Duration: 1, UpdateRatio: 1.5}, // bad ratio
		{Model: ModelZipf, Events: 10, Duration: 1, Swaps: 10},        // too many swaps
		{Model: ModelZipf, Events: 10, Duration: 1, HitRatio: 2},      // bad hit ratio
		{Model: ModelZipf, Events: 10, Duration: 1, HeaderPool: -1},   // bad pool
		{Model: ModelZipf, Events: 10, Duration: 1, Shifts: -1},       // bad shifts
	}
	for i, cfg := range cases {
		if _, err := Generate(rs, cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
	if _, err := Generate(nil, baseConfig(ModelZipf)); err == nil {
		t.Error("nil ruleset: expected error")
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range Models() {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Error("ParseModel(nope) should fail")
	}
	if Model(99).String() == "" || Op(99).String() == "" {
		t.Error("unknown enums must still format")
	}
}
