package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/hdr"
)

func TestHistogramExactRegion(t *testing.T) {
	var h Histogram
	for v := 0; v < hdr.Exact; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != hdr.Exact {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != hdr.Exact-1 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Small values are stored exactly: the median of 0..63 is 32 (ceil
	// quantile over 64 samples picks the 32nd).
	if got := h.Quantile(0.5); got != 31 {
		t.Fatalf("p50 = %v, want 31ns", got)
	}
}

// TestHistogramRelativeError checks the ~3% bucket error bound across
// magnitudes against exact order statistics.
func TestHistogramRelativeError(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1µs, 1s) to span many buckets.
		v := time.Duration(float64(time.Microsecond) * pow10(rnd.Float64()*6))
		samples = append(samples, float64(v))
		h.Record(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := float64(h.Quantile(q))
		if rel := abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q%g: hist %v, exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func pow10(x float64) float64 {
	out := 1.0
	for x >= 1 {
		out *= 10
		x--
	}
	// Linear interpolation within the last decade is fine for a spread.
	return out * (1 + 9*x)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := time.Duration(rnd.Intn(1 << 20))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatalf("merge count/max/min mismatch")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%g: merged %v, direct %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-time.Second) // clamps to 0
	h.Record(time.Hour)
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
	if got := h.Quantile(1); got != time.Hour {
		t.Fatalf("p100 = %v, want clamped max", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want clamped min", got)
	}
}

// TestHistIndexRoundTrip pins the bucket arithmetic: every bucket's
// midpoint maps back to that bucket, and indexes are monotone.
func TestHistIndexRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		if got := histIndex(histValue(i)); got != i {
			t.Fatalf("bucket %d: midpoint %d maps to %d", i, histValue(i), got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 63, 64, 127, 128, 1 << 10, 1<<20 + 12345, 1 << 40, 1<<63 + 1} {
		idx := histIndex(v)
		if idx <= prev {
			t.Fatalf("index not monotone at %d", v)
		}
		prev = idx
	}
}
