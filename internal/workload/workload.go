// Package workload generates and replays deterministic trace workloads:
// timestamped event schedules that mix lookups, incremental rule updates
// and whole-ruleset swaps, the way the paper's evaluation stimulates its
// test bench with packet-header traces over ClassBench rulesets — but
// extended with the arrival and popularity structure of live traffic.
//
// A Schedule is produced by Generate from a ruleset and a Config: every
// event carries an arrival offset from replay start (open-loop pacing)
// and an operation (lookup, insert, delete, or an atomic swap of the
// whole ruleset). Generation is fully deterministic for a given
// (ruleset, Config) pair, so a schedule is a reproducible experiment:
// replaying it against two engines yields comparable measurements and —
// in sequential mode — identical verdict sequences, which the
// conformance suite exploits as a differential oracle.
//
// Four traffic models shape which headers arrive and when:
//
//   - ModelUniform: headers drawn uniformly from the flow pool, Poisson
//     arrivals at a constant mean rate.
//   - ModelZipf: Zipf(s)-skewed flow popularity — a few hot flows carry
//     most events — with Poisson arrivals; the shape flow caches are
//     judged on.
//   - ModelBursty: Zipf popularity with on/off square-wave arrivals:
//     events bunch into bursts at BurstOn/BurstOff duty cycle, so a
//     replay exercises queueing at many times the mean rate.
//   - ModelShift: Zipf popularity whose hot set migrates at fixed points
//     during the run (the popularity ranking rotates through the pool),
//     stressing caches and any state keyed on recent traffic — a cold
//     hot-set right after each shift.
//   - ModelConntrack: connection-shaped traffic for stateful (flow
//     tracking) compositions. Events belong to a churning pool of live
//     connections, each opened by a forward packet (which installs flow
//     state when it matches an allow-established rule), carried by a
//     steady mix of forward and reverse packets, and closed after a
//     bounded packet budget — plus an optional SYN-flood aggressor
//     (FloodRatio) emitting one-shot never-repeating flows that pressure
//     the state table without ever earning a state hit. Combine with
//     Swaps to exercise swap-while-connections-live invalidation.
//
// The replay engine (Replay) drives a Schedule against any Target — an
// in-process repro.Engine composition or a remote classifierd over the
// ctl protocol — with N concurrent lookup workers, a dedicated in-order
// control lane for updates, an open-loop pacer, and per-operation
// HDR-style latency histograms (see Histogram).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/rule"
	"repro/internal/ruleset"
)

// Op is the kind of one replay event.
type Op uint8

// Replay operations.
const (
	// OpLookup classifies one header.
	OpLookup Op = iota + 1
	// OpInsert installs one rule incrementally.
	OpInsert
	// OpDelete removes one rule by ID.
	OpDelete
	// OpSwap atomically replaces the whole ruleset.
	OpSwap
)

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpSwap:
		return "swap"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Ops lists every operation kind in report order.
func Ops() []Op { return []Op{OpLookup, OpInsert, OpDelete, OpSwap} }

// Model selects the traffic shape of a generated schedule.
type Model int

// Traffic models.
const (
	// ModelUniform draws headers uniformly from the flow pool.
	ModelUniform Model = iota + 1
	// ModelZipf draws headers with Zipf(s)-skewed popularity.
	ModelZipf
	// ModelBursty is ModelZipf with on/off square-wave arrivals.
	ModelBursty
	// ModelShift is ModelZipf with a hot set that migrates mid-run.
	ModelShift
	// ModelConntrack emits connection-shaped bidirectional traffic with
	// open/steady/close churn and an optional SYN-flood aggressor.
	ModelConntrack
)

// String returns the model's flag spelling.
func (m Model) String() string {
	switch m {
	case ModelUniform:
		return "uniform"
	case ModelZipf:
		return "zipf"
	case ModelBursty:
		return "bursty"
	case ModelShift:
		return "shift"
	case ModelConntrack:
		return "conntrack"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Models lists every traffic model in flag order.
func Models() []Model {
	return []Model{ModelUniform, ModelZipf, ModelBursty, ModelShift, ModelConntrack}
}

// ParseModel resolves a model from its flag spelling.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform":
		return ModelUniform, nil
	case "zipf":
		return ModelZipf, nil
	case "bursty":
		return ModelBursty, nil
	case "shift", "locality-shift":
		return ModelShift, nil
	case "conntrack", "connections":
		return ModelConntrack, nil
	default:
		return 0, fmt.Errorf("unknown traffic model %q", s)
	}
}

// Event is one timestamped replay operation. Exactly one payload field
// is meaningful, selected by Op.
type Event struct {
	// At is the scheduled arrival offset from replay start; the pacer
	// does not issue the event before it, and open-loop latency is
	// measured from it.
	At time.Duration
	// Op selects the operation.
	Op Op
	// Header is the OpLookup payload.
	Header rule.Header
	// Rule is the OpInsert payload.
	Rule rule.Rule
	// RuleID is the OpDelete target.
	RuleID int
	// Swap indexes Schedule.Swaps for OpSwap.
	Swap int
}

// Schedule is one generated workload: the initial ruleset to install,
// the swap payloads, and the timestamped event sequence. Replaying the
// events in order against any engine yields the same verdict sequence —
// the schedule is the experiment, the engine is the variable.
type Schedule struct {
	// Model records the traffic model that generated the schedule.
	Model Model
	// Initial is the ruleset installed (as one atomic swap) before the
	// replay clock starts.
	Initial []rule.Rule
	// Swaps holds the whole-ruleset payloads referenced by OpSwap events.
	Swaps [][]rule.Rule
	// Events is the schedule body, sorted by ascending At.
	Events []Event
}

// Counts tallies the schedule's events per operation.
func (s *Schedule) Counts() map[Op]int {
	out := make(map[Op]int, 4)
	for i := range s.Events {
		out[s.Events[i].Op]++
	}
	return out
}

// Config parameterizes Generate. The zero value of every optional field
// selects a sensible default; Events and Duration are required.
type Config struct {
	// Model selects the traffic shape.
	Model Model
	// Events is the number of events in the schedule.
	Events int
	// Duration is the schedule horizon: arrival offsets span [0, Duration).
	Duration time.Duration
	// Seed makes generation deterministic.
	Seed int64

	// ZipfSkew is the s parameter of the Zipf popularity distribution
	// (must be > 1; default 1.2). Ignored by ModelUniform.
	ZipfSkew float64
	// HeaderPool is the number of distinct flows in the pool the models
	// draw from (default 4096).
	HeaderPool int
	// HitRatio is the fraction of pool headers drawn from inside some
	// rule's match region (default 0.9).
	HitRatio float64

	// UpdateRatio is the fraction of events that are incremental updates,
	// split evenly between inserts and deletes (default 0).
	UpdateRatio float64
	// Swaps is the number of whole-ruleset swap events, spread evenly
	// through the schedule (default 0). Each swap installs a subset of
	// the rules live at that point.
	Swaps int
	// Family shapes the rules drawn for insert events (default ACL).
	Family ruleset.Family

	// BurstOn and BurstOff set ModelBursty's square-wave duty cycle
	// (defaults 50ms / 50ms).
	BurstOn, BurstOff time.Duration
	// Shifts is the number of hot-set migrations for ModelShift
	// (default 3).
	Shifts int

	// Connections is ModelConntrack's live-connection pool size
	// (default 256): the number of flows simultaneously open.
	Connections int
	// ConnPackets is ModelConntrack's per-connection packet budget
	// (default 16): a connection closes — and a fresh one opens in its
	// slot — after this many events, so the run churns through roughly
	// Events/ConnPackets distinct connections.
	ConnPackets int
	// FloodRatio is the fraction of ModelConntrack lookup events emitted
	// by the SYN-flood aggressor: one-shot flows with a never-repeating
	// source port, each eligible to install state but never revisited
	// (default 0).
	FloodRatio float64
}

// withDefaults validates the config and fills the optional defaults.
func (cfg Config) withDefaults() (Config, error) {
	switch cfg.Model {
	case ModelUniform, ModelZipf, ModelBursty, ModelShift, ModelConntrack:
	default:
		return cfg, fmt.Errorf("workload: unknown model %d", int(cfg.Model))
	}
	if cfg.Events <= 0 {
		return cfg, fmt.Errorf("workload: event count %d, want > 0", cfg.Events)
	}
	if cfg.Duration <= 0 {
		return cfg, fmt.Errorf("workload: duration %v, want > 0", cfg.Duration)
	}
	if cfg.ZipfSkew == 0 {
		cfg.ZipfSkew = 1.2
	}
	if cfg.ZipfSkew <= 1 {
		return cfg, fmt.Errorf("workload: zipf skew %v, want > 1", cfg.ZipfSkew)
	}
	if cfg.HeaderPool == 0 {
		cfg.HeaderPool = 4096
	}
	if cfg.HeaderPool < 1 {
		return cfg, fmt.Errorf("workload: header pool %d, want >= 1", cfg.HeaderPool)
	}
	if cfg.HitRatio == 0 {
		cfg.HitRatio = 0.9
	}
	if cfg.HitRatio < 0 || cfg.HitRatio > 1 {
		return cfg, fmt.Errorf("workload: hit ratio %v, want [0,1]", cfg.HitRatio)
	}
	if cfg.UpdateRatio < 0 || cfg.UpdateRatio >= 1 {
		return cfg, fmt.Errorf("workload: update ratio %v, want [0,1)", cfg.UpdateRatio)
	}
	if cfg.Swaps < 0 || cfg.Swaps >= cfg.Events {
		return cfg, fmt.Errorf("workload: swap count %v, want [0,%d)", cfg.Swaps, cfg.Events)
	}
	if cfg.Family == 0 {
		cfg.Family = ruleset.ACL
	}
	if cfg.BurstOn == 0 {
		cfg.BurstOn = 50 * time.Millisecond
	}
	if cfg.BurstOff == 0 {
		cfg.BurstOff = 50 * time.Millisecond
	}
	if cfg.BurstOn < 0 || cfg.BurstOff < 0 {
		return cfg, fmt.Errorf("workload: burst periods %v/%v, want >= 0", cfg.BurstOn, cfg.BurstOff)
	}
	if cfg.Shifts == 0 {
		cfg.Shifts = 3
	}
	if cfg.Shifts < 1 {
		return cfg, fmt.Errorf("workload: shift count %d, want >= 1", cfg.Shifts)
	}
	if cfg.Connections == 0 {
		cfg.Connections = 256
	}
	if cfg.Connections < 1 {
		return cfg, fmt.Errorf("workload: connection pool %d, want >= 1", cfg.Connections)
	}
	if cfg.ConnPackets == 0 {
		cfg.ConnPackets = 16
	}
	if cfg.ConnPackets < 1 {
		return cfg, fmt.Errorf("workload: connection packet budget %d, want >= 1", cfg.ConnPackets)
	}
	if cfg.FloodRatio < 0 || cfg.FloodRatio > 1 {
		return cfg, fmt.Errorf("workload: flood ratio %v, want [0,1]", cfg.FloodRatio)
	}
	return cfg, nil
}

// Generate builds a deterministic schedule over the ruleset: the same
// (ruleset, Config) pair always yields the same schedule. Insert events
// draw fresh rules with IDs and priorities above everything in rs, so
// the whole run keeps the unique-ID, unique-priority contract that makes
// sharded and unsharded replays verdict-identical. Delete events only
// ever target rules live at that point in the sequence, so an in-order
// replay never provokes a spurious not-found error.
func Generate(rs *rule.Set, cfg Config) (*Schedule, error) {
	if rs == nil {
		return nil, fmt.Errorf("workload: nil ruleset")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x776b6c64))

	pool, err := ruleset.GenerateTrace(rs, ruleset.TraceConfig{
		Size: cfg.HeaderPool, HitRatio: cfg.HitRatio, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	initial := append([]rule.Rule(nil), rs.Rules()...)
	maxID, maxPrio := 0, 0
	for i := range initial {
		if initial[i].ID > maxID {
			maxID = initial[i].ID
		}
		if initial[i].Priority > maxPrio {
			maxPrio = initial[i].Priority
		}
	}
	inserts, err := insertPool(cfg, rnd, maxID, maxPrio)
	if err != nil {
		return nil, err
	}

	s := &Schedule{Model: cfg.Model, Initial: initial}
	s.Events = make([]Event, 0, cfg.Events)
	arrivals := arrivalTimes(cfg, rnd)
	var headerFor func(i int) rule.Header
	if cfg.Model == ModelConntrack {
		headerFor = conntrackPicker(cfg, rnd, pool)
	} else {
		headerAt := headerPicker(cfg, rnd, len(pool))
		headerFor = func(i int) rule.Header { return pool[headerAt(i)] }
	}

	// live tracks the installed ruleset through the sequence so deletes
	// and swap payloads stay valid whatever the random op mix does.
	live := append([]rule.Rule(nil), initial...)
	swapEvery := 0
	if cfg.Swaps > 0 {
		swapEvery = cfg.Events / (cfg.Swaps + 1)
	}
	nextInsert := 0
	for i := 0; i < cfg.Events; i++ {
		ev := Event{At: arrivals[i]}
		switch {
		case swapEvery > 0 && i > 0 && i%swapEvery == 0 && len(s.Swaps) < cfg.Swaps:
			payload := swapPayload(rnd, live)
			ev.Op, ev.Swap = OpSwap, len(s.Swaps)
			s.Swaps = append(s.Swaps, payload)
			live = append(live[:0:0], payload...)
		case cfg.UpdateRatio > 0 && rnd.Float64() < cfg.UpdateRatio:
			doInsert := rnd.Intn(2) == 0
			switch {
			case doInsert && nextInsert < len(inserts):
				ev.Op, ev.Rule = OpInsert, inserts[nextInsert]
				live = append(live, inserts[nextInsert])
				nextInsert++
			case len(live) > 0:
				j := rnd.Intn(len(live))
				ev.Op, ev.RuleID = OpDelete, live[j].ID
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				ev.Op, ev.Header = OpLookup, headerFor(i)
			}
		default:
			ev.Op, ev.Header = OpLookup, headerFor(i)
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

// insertPool generates the fresh rules insert events consume, with IDs
// and priorities strictly above the initial ruleset's.
func insertPool(cfg Config, rnd *rand.Rand, maxID, maxPrio int) ([]rule.Rule, error) {
	// Expected inserts = Events * UpdateRatio / 2; double it so the
	// random op mix virtually never exhausts the pool (events past the
	// pool fall back to deletes or lookups).
	n := int(float64(cfg.Events)*cfg.UpdateRatio) + 8
	if cfg.UpdateRatio == 0 {
		return nil, nil
	}
	set, err := ruleset.Generate(ruleset.Config{Family: cfg.Family, Size: n, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	out := append([]rule.Rule(nil), set.Rules()...)
	rnd.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	for i := range out {
		out[i].ID = maxID + 1 + i
		out[i].Priority = maxPrio + 1 + i
	}
	return out, nil
}

// swapPayload builds a whole-ruleset swap body: a random ~75% subset of
// the rules live at the swap point, so a swap both churns membership and
// keeps the ruleset populated.
func swapPayload(rnd *rand.Rand, live []rule.Rule) []rule.Rule {
	payload := make([]rule.Rule, 0, len(live))
	for i := range live {
		if rnd.Float64() < 0.75 {
			payload = append(payload, live[i])
		}
	}
	return payload
}

// arrivalTimes builds the per-event arrival offsets: Poisson arrivals
// normalized to the duration for the steady models, an on/off square
// wave for ModelBursty.
func arrivalTimes(cfg Config, rnd *rand.Rand) []time.Duration {
	out := make([]time.Duration, cfg.Events)
	if cfg.Model == ModelBursty {
		// Compress all arrivals into the on-windows of the duty cycle:
		// within a window events are evenly spaced at the burst rate,
		// between windows nothing arrives.
		cycle := cfg.BurstOn + cfg.BurstOff
		if cycle <= 0 || cfg.BurstOn <= 0 {
			cycle, cfg.BurstOn = 100*time.Millisecond, 50*time.Millisecond
		}
		totalOn := float64(cfg.Duration) * float64(cfg.BurstOn) / float64(cycle)
		for i := range out {
			tOn := totalOn * float64(i) / float64(cfg.Events)
			k := int(tOn / float64(cfg.BurstOn))
			within := tOn - float64(k)*float64(cfg.BurstOn)
			out[i] = time.Duration(float64(k)*float64(cycle) + within)
		}
		return out
	}
	gaps := make([]float64, cfg.Events)
	total := 0.0
	for i := range gaps {
		gaps[i] = rnd.ExpFloat64()
		total += gaps[i]
	}
	cum := 0.0
	for i := range out {
		cum += gaps[i]
		out[i] = time.Duration(float64(cfg.Duration) * cum / (total + 1))
	}
	return out
}

// conntrackPicker returns ModelConntrack's per-event header generator: a
// pool of cfg.Connections live connections, each seeded from the flow
// pool with a distinct ephemeral source port. A connection's first
// packet travels forward (the opening packet a stateful composition
// turns into a flow install when it matches an allow-established rule);
// subsequent packets mix forward and reverse until the per-connection
// budget closes it and a fresh connection opens in its slot. With
// FloodRatio > 0 the aggressor interleaves one-shot forward packets
// whose source port never repeats — each a distinct flow that can
// install state but is never looked up again.
func conntrackPicker(cfg Config, rnd *rand.Rand, pool []rule.Header) func(i int) rule.Header {
	type conn struct {
		fwd  rule.Header
		sent int // packets emitted so far; 0 = not yet opened
		life int // budget before close
	}
	// Ephemeral source ports walk [32768, 61000) so every connection and
	// every flood packet is a distinct 5-tuple even when two draws share
	// a pool flow. Non-TCP/UDP flows keep their pool ports: a port twist
	// would not survive the wire encoding the raw replay targets use.
	const ephLo, ephHi = 32768, 61000
	eph := uint16(ephLo)
	nextEph := func() uint16 {
		p := eph
		if eph++; eph >= ephHi {
			eph = ephLo
		}
		return p
	}
	open := func() conn {
		h := pool[rnd.Intn(len(pool))]
		if h.Proto == rule.ProtoTCP || h.Proto == rule.ProtoUDP {
			h.SrcPort = nextEph()
		}
		return conn{fwd: h, life: 1 + rnd.Intn(2*cfg.ConnPackets)}
	}
	conns := make([]conn, cfg.Connections)
	for i := range conns {
		conns[i] = open()
	}
	reverse := func(h rule.Header) rule.Header {
		return rule.Header{SrcIP: h.DstIP, DstIP: h.SrcIP,
			SrcPort: h.DstPort, DstPort: h.SrcPort, Proto: h.Proto}
	}
	return func(int) rule.Header {
		if cfg.FloodRatio > 0 && rnd.Float64() < cfg.FloodRatio {
			h := pool[rnd.Intn(len(pool))]
			if h.Proto == rule.ProtoTCP || h.Proto == rule.ProtoUDP {
				h.SrcPort = nextEph()
			}
			return h
		}
		j := rnd.Intn(len(conns))
		c := &conns[j]
		h := c.fwd
		if c.sent > 0 && rnd.Intn(2) == 1 {
			h = reverse(c.fwd)
		}
		c.sent++
		if c.sent >= c.life {
			*c = open()
		}
		return h
	}
}

// headerPicker returns the per-event flow selector for the model.
func headerPicker(cfg Config, rnd *rand.Rand, pool int) func(i int) int {
	switch cfg.Model {
	case ModelUniform:
		return func(int) int { return rnd.Intn(pool) }
	case ModelShift:
		z := rand.NewZipf(rnd, cfg.ZipfSkew, 1, uint64(pool-1))
		phaseLen := cfg.Events / (cfg.Shifts + 1)
		if phaseLen == 0 {
			phaseLen = 1
		}
		stride := pool / (cfg.Shifts + 1)
		if stride == 0 {
			stride = 1
		}
		return func(i int) int {
			// The popularity ranking rotates by stride at each phase
			// boundary: rank 0 (the hottest flow) lands on a different
			// pool index every phase, migrating the whole hot set.
			offset := (i / phaseLen) * stride
			return (int(z.Uint64()) + offset) % pool
		}
	default: // ModelZipf, ModelBursty
		z := rand.NewZipf(rnd, cfg.ZipfSkew, 1, uint64(pool-1))
		return func(int) int { return int(z.Uint64()) }
	}
}
