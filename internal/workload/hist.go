package workload

import (
	"math"
	"time"

	"repro/internal/hdr"
)

// Histogram is an HDR-style latency histogram: values are bucketed with
// a bounded relative error (~3%, 5 significant bits) instead of a bounded
// absolute error, so one histogram spans nanosecond lookups and second
// stalls without losing tail resolution. Recording is allocation-free;
// replay gives each worker its own histogram and merges at the end, so
// the hot path needs no atomics.
//
// The zero value is an empty histogram ready for use.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
	min    uint64
}

// histBuckets is the shared geometry's bucket count; the value↔bucket
// arithmetic lives in repro/internal/hdr so the daemon's concurrent
// histograms (repro/internal/metrics) use identical bucket boundaries.
const histBuckets = hdr.Buckets

// AddBucket folds c samples valued at bucket i's midpoint into the
// histogram — the merge entry point for externally-bucketed counts
// (internal/metrics' atomic histograms, folded via their BucketCount
// accessor) that share the repro/internal/hdr geometry.
func (h *Histogram) AddBucket(i int, c uint64) {
	if c == 0 {
		return
	}
	v := histValue(i)
	h.counts[i] += c
	h.sum += v * c
	if v > h.max {
		h.max = v
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	h.count += c
}

// histIndex maps a value to its bucket (the shared hdr geometry).
func histIndex(v uint64) int { return hdr.Index(v) }

// histValue returns the midpoint of a bucket — the value reported for
// samples that landed in it.
func histValue(i int) uint64 { return hdr.Value(i) }

// Record adds one latency sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d.Nanoseconds())
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.count == 1 || v < h.min {
		h.min = v
	}
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if o.max > h.max {
		h.max = o.max
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the latency at quantile q in [0, 1]: the bucket
// midpoint below which at least q of the samples fall, clamped to the
// recorded min/max so q=0 and q=1 report exact extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := histValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}
