package workload

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/packet"
	"repro/internal/rule"
)

// Verdict is the classification outcome of one replayed lookup — the
// identity of the Highest-Priority Matching Rule, which is what the
// differential property test compares across backends.
type Verdict struct {
	Found    bool
	RuleID   int
	Priority int
}

// Target is the replay surface: anything that can classify headers and
// apply rule updates. EngineTarget adapts an in-process repro.Engine;
// ClientTarget adapts a ctl connection to a live classifierd.
type Target interface {
	Lookup(h rule.Header) (Verdict, error)
	Insert(r rule.Rule) error
	Delete(id int) error
	// Swap atomically replaces the whole installed ruleset.
	Swap(rules []rule.Rule) error
}

// BatchTarget is implemented by targets that can classify several
// headers in one call; the replay workers use it to drain arrival
// backlog in one round trip when they fall behind the pacer.
type BatchTarget interface {
	Target
	LookupBatch(hs []rule.Header) ([]Verdict, error)
}

// EngineTarget replays against an in-process Engine — any backend ×
// shards × flow-cache composition built with repro.New. The engines are
// safe for concurrent use, so one EngineTarget may back every worker.
type EngineTarget struct {
	Eng repro.Engine
}

// Lookup implements Target.
func (t EngineTarget) Lookup(h rule.Header) (Verdict, error) {
	res, _ := t.Eng.Lookup(h)
	return Verdict{Found: res.Found, RuleID: res.RuleID, Priority: res.Priority}, nil
}

// engineBatchScratch is the pooled result slab behind
// EngineTarget.LookupBatch. EngineTarget is a shared value (one target
// may back every replay worker), so the slab lives in a pool rather
// than a field.
type engineBatchScratch struct {
	res []repro.Result
}

var engineBatchPool = sync.Pool{New: func() any { return new(engineBatchScratch) }}

// LookupBatch implements BatchTarget via the engine's pooled
// LookupBatchInto form, so a replay backlog drain stops allocating a
// result slice per burst (the verdict slice is the caller's to keep).
func (t EngineTarget) LookupBatch(hs []rule.Header) ([]Verdict, error) {
	sc := engineBatchPool.Get().(*engineBatchScratch)
	res := sc.res[:0]
	for range hs {
		res = append(res, repro.Result{})
	}
	sc.res = res
	t.Eng.LookupBatchInto(hs, res)
	out := make([]Verdict, len(res))
	for i, r := range res {
		out[i] = Verdict{Found: r.Found, RuleID: r.RuleID, Priority: r.Priority}
	}
	engineBatchPool.Put(sc)
	return out, nil
}

// Insert implements Target.
func (t EngineTarget) Insert(r rule.Rule) error {
	_, err := t.Eng.Insert(r)
	return err
}

// Delete implements Target.
func (t EngineTarget) Delete(id int) error {
	_, err := t.Eng.Delete(id)
	return err
}

// Swap implements Target.
func (t EngineTarget) Swap(rules []rule.Rule) error {
	_, err := t.Eng.Replace(rules)
	return err
}

// RawEngineTarget replays lookups through the raw-frame ingress path:
// each header is synthesized into its Ethernet+IPv4 wire form and
// classified via LookupBytes / LookupBytesBatch, exercising the
// in-place decoders and the pooled burst path the way a NIC-fed
// pipeline would. Ports of protocols without a wire port encoding
// (anything but TCP/UDP) are zeroed before synthesis, so the header the
// decoder recovers is exactly the one the frame was built from. Updates
// pass through to the engine unchanged. The frame slab and result
// buffer are reused across calls, so a RawEngineTarget is NOT safe for
// concurrent use — give each replay worker its own.
type RawEngineTarget struct {
	Eng    repro.Engine
	frames [][]byte
	out    []repro.Result
}

// wireHeader normalizes a header to its wire-representable form.
func wireHeader(h rule.Header) rule.Header {
	if h.Proto != rule.ProtoTCP && h.Proto != rule.ProtoUDP {
		h.SrcPort, h.DstPort = 0, 0
	}
	return h
}

// Lookup implements Target.
func (t *RawEngineTarget) Lookup(h rule.Header) (Verdict, error) {
	res, err := t.Eng.LookupBytes(packet.BuildEthernet(packet.BuildIPv4(wireHeader(h))))
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Found: res.Found, RuleID: res.RuleID, Priority: res.Priority}, nil
}

// LookupBatch implements BatchTarget: the backlog becomes one frame
// slab classified by a single LookupBytesBatch burst.
func (t *RawEngineTarget) LookupBatch(hs []rule.Header) ([]Verdict, error) {
	t.frames = t.frames[:0]
	for _, h := range hs {
		t.frames = append(t.frames, packet.BuildEthernet(packet.BuildIPv4(wireHeader(h))))
	}
	if cap(t.out) < len(hs) {
		t.out = make([]repro.Result, len(hs))
	}
	out := t.out[:len(hs)]
	t.Eng.LookupBytesBatch(t.frames, out)
	vs := make([]Verdict, len(hs))
	for i, r := range out {
		vs[i] = Verdict{Found: r.Found, RuleID: r.RuleID, Priority: r.Priority}
	}
	return vs, nil
}

// Insert implements Target.
func (t *RawEngineTarget) Insert(r rule.Rule) error {
	_, err := t.Eng.Insert(r)
	return err
}

// Delete implements Target.
func (t *RawEngineTarget) Delete(id int) error {
	_, err := t.Eng.Delete(id)
	return err
}

// Swap implements Target.
func (t *RawEngineTarget) Swap(rules []rule.Rule) error {
	_, err := t.Eng.Replace(rules)
	return err
}

// ClientTarget replays against a live classifierd over one ctl
// connection. A ctl client is sequential (one request in flight), so
// every replay worker needs its own ClientTarget over its own
// connection.
type ClientTarget struct {
	C *ctl.Client
}

// Lookup implements Target.
func (t ClientTarget) Lookup(h rule.Header) (Verdict, error) {
	res, err := t.C.Lookup(h)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Found: res.Found, RuleID: res.RuleID, Priority: res.Priority}, nil
}

// LookupBatch implements BatchTarget: the headers go out as one
// pipelined write of LOOKUP lines — one round trip for the whole
// backlog, with each lookup still classified against the freshest
// ruleset (unlike MLOOKUP's single-snapshot batch semantics).
func (t ClientTarget) LookupBatch(hs []rule.Header) ([]Verdict, error) {
	res, err := t.C.PipelineLookups(hs)
	if err != nil {
		return nil, err
	}
	out := make([]Verdict, len(res))
	for i, r := range res {
		out[i] = Verdict{Found: r.Found, RuleID: r.RuleID, Priority: r.Priority}
	}
	return out, nil
}

// Insert implements Target.
func (t ClientTarget) Insert(r rule.Rule) error {
	_, err := t.C.Insert(r)
	return err
}

// Delete implements Target.
func (t ClientTarget) Delete(id int) error {
	_, err := t.C.Delete(id)
	return err
}

// Swap implements Target.
func (t ClientTarget) Swap(rules []rule.Rule) error {
	_, err := t.C.Swap(rules)
	return err
}

// ReplayConfig parameterizes Replay.
type ReplayConfig struct {
	// Lookups are the per-worker lookup targets; len(Lookups) is the
	// lookup concurrency. In-process engines are concurrency-safe, so
	// the same EngineTarget may appear at every index; remote replays
	// need one ClientTarget (one connection) per slot.
	Lookups []Target
	// Control handles updates (insert/delete/swap) on a dedicated
	// in-order lane — the paper's single decision-control channel — so
	// the update sequence applies exactly as generated whatever the
	// lookup workers are doing. Nil uses Lookups[0] (only valid for
	// concurrency-safe in-process targets).
	Control Target
	// Batch bounds how many overdue consecutive lookups a worker may
	// drain through one BatchTarget call when it falls behind the pacer
	// (default 1 = no batching).
	Batch int
	// Sequential replays every event in schedule order on the calling
	// goroutine with no pacing: latencies are pure service times and the
	// verdict sequence is deterministic — the differential-test mode.
	Sequential bool
	// CollectVerdicts records every lookup's verdict in event order.
	// Only meaningful with Sequential (concurrent replay interleaves
	// updates nondeterministically), and rejected otherwise.
	CollectVerdicts bool
	// SkipInstall starts replaying without first swapping in
	// Schedule.Initial (for targets already holding the ruleset).
	SkipInstall bool
}

// OpStats aggregates one operation kind across the replay.
type OpStats struct {
	// Count is the number of issued operations; Errors how many failed.
	Count  int
	Errors int
	// Latency is the operation's latency distribution. Under the pacer
	// it is open-loop latency — completion minus scheduled arrival, so
	// queueing delay is charged to the laggard, never silently omitted;
	// in sequential mode it is pure service time.
	Latency Histogram
}

// Report is the outcome of one replay.
type Report struct {
	// Elapsed is the wall-clock replay time (installation excluded).
	Elapsed time.Duration
	// Ops maps each operation kind to its aggregated stats.
	Ops map[Op]*OpStats
	// Verdicts holds the per-lookup verdicts in event order when
	// ReplayConfig.CollectVerdicts was set.
	Verdicts []Verdict
	// FirstError samples the first operation failure (nil when every
	// operation succeeded); the per-op Errors counters carry the totals.
	FirstError error
}

// EventsPerSec is the achieved event throughput.
func (r *Report) EventsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	n := 0
	for _, st := range r.Ops {
		n += st.Count
	}
	return float64(n) / r.Elapsed.Seconds()
}

// TotalErrors sums the per-op error counts.
func (r *Report) TotalErrors() int {
	n := 0
	for _, st := range r.Ops {
		n += st.Errors
	}
	return n
}

// opSet is one goroutine's private stats, merged into the report at the
// end so the replay hot path touches no shared state.
type opSet struct {
	stats    [4]OpStats // indexed by Op-1
	firstErr error
}

func (s *opSet) record(op Op, d time.Duration, err error) {
	st := &s.stats[op-1]
	st.Count++
	if err != nil {
		st.Errors++
		if s.firstErr == nil {
			s.firstErr = fmt.Errorf("%s: %w", op, err)
		}
		return
	}
	st.Latency.Record(d)
}

// Replay drives the schedule against the configured targets and reports
// latency histograms, throughput and per-op error counts. Updates apply
// in schedule order on the control lane; lookups are striped across the
// workers, each an open-loop pacer over its stripe.
func Replay(s *Schedule, cfg ReplayConfig) (*Report, error) {
	if len(cfg.Lookups) == 0 {
		return nil, fmt.Errorf("workload: replay needs at least one lookup target")
	}
	for i, t := range cfg.Lookups {
		if t == nil {
			return nil, fmt.Errorf("workload: nil lookup target %d", i)
		}
	}
	control := cfg.Control
	if control == nil {
		control = cfg.Lookups[0]
	}
	if cfg.CollectVerdicts && !cfg.Sequential {
		return nil, fmt.Errorf("workload: CollectVerdicts requires Sequential replay")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if !cfg.SkipInstall {
		if err := control.Swap(s.Initial); err != nil {
			return nil, fmt.Errorf("workload: install initial ruleset: %w", err)
		}
	}
	if cfg.Sequential {
		return replaySequential(s, cfg.Lookups[0], control, cfg.CollectVerdicts)
	}
	return replayPaced(s, cfg, control)
}

// replaySequential executes every event in order on one goroutine.
func replaySequential(s *Schedule, lookups, control Target, collect bool) (*Report, error) {
	var set opSet
	var verdicts []Verdict
	if collect {
		verdicts = make([]Verdict, 0, len(s.Events))
	}
	start := time.Now()
	for i := range s.Events {
		ev := &s.Events[i]
		t0 := time.Now()
		var err error
		switch ev.Op {
		case OpLookup:
			var v Verdict
			v, err = lookups.Lookup(ev.Header)
			if collect && err == nil {
				verdicts = append(verdicts, v)
			}
		case OpInsert:
			err = control.Insert(ev.Rule)
		case OpDelete:
			err = control.Delete(ev.RuleID)
		case OpSwap:
			err = control.Swap(s.Swaps[ev.Swap])
		}
		set.record(ev.Op, time.Since(t0), err)
	}
	rep := newReport(time.Since(start), []*opSet{&set})
	rep.Verdicts = verdicts
	return rep, nil
}

// replayPaced runs the open-loop replay: a control goroutine applies the
// updates in order at their scheduled times while the workers pace the
// lookup stripes.
func replayPaced(s *Schedule, cfg ReplayConfig, control Target) (*Report, error) {
	workers := len(cfg.Lookups)
	// Pre-split the schedule: update events keep their global order on
	// the control lane; lookup events stripe round-robin across workers,
	// preserving each stripe's time order.
	var updates []*Event
	stripes := make([][]*Event, workers)
	li := 0
	for i := range s.Events {
		ev := &s.Events[i]
		if ev.Op == OpLookup {
			stripes[li%workers] = append(stripes[li%workers], ev)
			li++
		} else {
			updates = append(updates, ev)
		}
	}
	sets := make([]*opSet, 0, workers+1)
	var wg sync.WaitGroup
	start := time.Now()
	ctlSet := &opSet{}
	sets = append(sets, ctlSet)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ev := range updates {
			sleepUntil(start, ev.At)
			var err error
			switch ev.Op {
			case OpInsert:
				err = control.Insert(ev.Rule)
			case OpDelete:
				err = control.Delete(ev.RuleID)
			case OpSwap:
				err = control.Swap(s.Swaps[ev.Swap])
			}
			ctlSet.record(ev.Op, time.Since(start)-ev.At, err)
		}
	}()
	for w := 0; w < workers; w++ {
		set := &opSet{}
		sets = append(sets, set)
		wg.Add(1)
		go func(target Target, stripe []*Event) {
			defer wg.Done()
			runStripe(target, stripe, start, cfg.Batch, set)
		}(cfg.Lookups[w], stripes[w])
	}
	wg.Wait()
	return newReport(time.Since(start), sets), nil
}

// runStripe paces one worker's lookup stripe. When the worker is behind
// schedule and the target batches, all overdue events (up to batch) go
// out as one call, each still measured from its own scheduled arrival.
func runStripe(target Target, stripe []*Event, start time.Time, batch int, set *opSet) {
	bt, canBatch := target.(BatchTarget)
	var headers []rule.Header
	if canBatch && batch > 1 {
		headers = make([]rule.Header, 0, batch)
	}
	for i := 0; i < len(stripe); {
		ev := stripe[i]
		sleepUntil(start, ev.At)
		if canBatch && batch > 1 {
			// Drain the overdue run: ev plus every consecutive event
			// whose arrival has already passed.
			now := time.Since(start)
			end := i + 1
			for end < len(stripe) && end-i < batch && stripe[end].At <= now {
				end++
			}
			if end-i > 1 {
				headers = headers[:0]
				for _, e := range stripe[i:end] {
					headers = append(headers, e.Header)
				}
				_, err := bt.LookupBatch(headers)
				done := time.Since(start)
				for _, e := range stripe[i:end] {
					set.record(OpLookup, done-e.At, err)
				}
				i = end
				continue
			}
		}
		_, err := target.Lookup(ev.Header)
		set.record(OpLookup, time.Since(start)-ev.At, err)
		i++
	}
}

// sleepUntil blocks until offset `at` past start. The coarse wait uses
// the OS timer, but the final stretch is a yield loop: time.Sleep wakes
// up to ~1ms late under load, and charging that pacer jitter to every
// event would swamp microsecond-scale service times in the open-loop
// latency distribution.
func sleepUntil(start time.Time, at time.Duration) {
	const spin = 500 * time.Microsecond
	if d := at - time.Since(start); d > spin {
		time.Sleep(d - spin)
	}
	for time.Since(start) < at {
		runtime.Gosched()
	}
}

// newReport merges the per-goroutine stat sets.
func newReport(elapsed time.Duration, sets []*opSet) *Report {
	rep := &Report{Elapsed: elapsed, Ops: make(map[Op]*OpStats, 4)}
	for _, op := range Ops() {
		agg := &OpStats{}
		for _, s := range sets {
			st := &s.stats[op-1]
			agg.Count += st.Count
			agg.Errors += st.Errors
			agg.Latency.Merge(&st.Latency)
		}
		if agg.Count > 0 {
			rep.Ops[op] = agg
		}
	}
	for _, s := range sets {
		if s.firstErr != nil {
			rep.FirstError = s.firstErr
			break
		}
	}
	return rep
}
