package workload

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

func testSchedule(t *testing.T, m Model, events int, updateRatio float64, swaps int) *Schedule {
	t.Helper()
	rs := testRuleset(t, 60)
	s, err := Generate(rs, Config{
		Model: m, Events: events, Duration: 50 * time.Millisecond, Seed: 17,
		UpdateRatio: updateRatio, Swaps: swaps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func linearTarget(t *testing.T) EngineTarget {
	t.Helper()
	eng, err := repro.New(repro.WithBackend(repro.BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	return EngineTarget{Eng: eng}
}

// TestReplaySequential pins the sequential mode: every event issued,
// zero errors, verdicts collected in order, non-empty latencies.
func TestReplaySequential(t *testing.T) {
	s := testSchedule(t, ModelZipf, 1500, 0.1, 2)
	target := linearTarget(t)
	rep, err := Replay(s, ReplayConfig{
		Lookups: []Target{target}, Sequential: true, CollectVerdicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := s.Counts()
	for _, op := range Ops() {
		st := rep.Ops[op]
		want := counts[op]
		if want == 0 {
			if st != nil {
				t.Fatalf("%v: unexpected stats %+v", op, st)
			}
			continue
		}
		if st == nil || st.Count != want {
			t.Fatalf("%v: count %+v, want %d", op, st, want)
		}
		if st.Errors != 0 {
			t.Fatalf("%v: %d errors (first: %v)", op, st.Errors, rep.FirstError)
		}
		if st.Latency.Count() != uint64(want) {
			t.Fatalf("%v: %d latency samples, want %d", op, st.Latency.Count(), want)
		}
	}
	if len(rep.Verdicts) != counts[OpLookup] {
		t.Fatalf("verdicts %d, want %d", len(rep.Verdicts), counts[OpLookup])
	}
	if rep.TotalErrors() != 0 || rep.FirstError != nil {
		t.Fatalf("errors: %d, %v", rep.TotalErrors(), rep.FirstError)
	}
	if rep.EventsPerSec() <= 0 {
		t.Fatal("non-positive throughput")
	}
	// A verdict sequence must be reproducible run to run.
	rep2, err := Replay(s, ReplayConfig{
		Lookups: []Target{linearTarget(t)}, Sequential: true, CollectVerdicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Verdicts {
		if rep.Verdicts[i] != rep2.Verdicts[i] {
			t.Fatalf("verdict %d differs across replays: %+v vs %+v", i, rep.Verdicts[i], rep2.Verdicts[i])
		}
	}
}

// TestReplayPaced runs the concurrent open-loop path with several
// workers sharing one engine, updates included.
func TestReplayPaced(t *testing.T) {
	s := testSchedule(t, ModelShift, 2000, 0.1, 2)
	target := linearTarget(t)
	rep, err := Replay(s, ReplayConfig{
		Lookups: []Target{target, target, target}, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := s.Counts()
	issued := 0
	for _, st := range rep.Ops {
		issued += st.Count
	}
	if issued != len(s.Events) {
		t.Fatalf("issued %d of %d events", issued, len(s.Events))
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("%d errors, first: %v", rep.TotalErrors(), rep.FirstError)
	}
	lk := rep.Ops[OpLookup]
	if lk.Count != counts[OpLookup] {
		t.Fatalf("lookups %d, want %d", lk.Count, counts[OpLookup])
	}
	if lk.Latency.Quantile(0.5) <= 0 || lk.Latency.Quantile(0.99) <= 0 {
		t.Fatalf("empty latency quantiles: p50=%v p99=%v",
			lk.Latency.Quantile(0.5), lk.Latency.Quantile(0.99))
	}
	// The pacer stretches the replay to (about) the schedule horizon.
	if rep.Elapsed < 40*time.Millisecond {
		t.Fatalf("paced replay finished in %v, pacer not pacing", rep.Elapsed)
	}
}

// TestReplayRemote drives the replay through ClientTargets against a
// live ctl server, exercising the pipelined-lookup batch path.
func TestReplayRemote(t *testing.T) {
	eng, err := repro.New(repro.WithBackend(repro.BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	srv := ctl.NewServer(eng)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	s := testSchedule(t, ModelBursty, 600, 0.05, 1)
	var targets []Target
	for i := 0; i < 3; i++ {
		c, err := ctl.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		targets = append(targets, ClientTarget{C: c})
	}
	rep, err := Replay(s, ReplayConfig{
		Lookups: targets[:2], Control: targets[2], Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("%d errors, first: %v", rep.TotalErrors(), rep.FirstError)
	}
	if got := rep.Ops[OpLookup].Count; got != s.Counts()[OpLookup] {
		t.Fatalf("lookups %d, want %d", got, s.Counts()[OpLookup])
	}
	// The remote engine must end in the same state as a local replay.
	local, err := repro.New(repro.WithBackend(repro.BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(s, ReplayConfig{Lookups: []Target{EngineTarget{Eng: local}}, Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != local.Len() {
		t.Fatalf("remote engine holds %d rules, local replay %d", eng.Len(), local.Len())
	}
}

// errTarget fails every operation.
type errTarget struct{ EngineTarget }

var errBoom = errors.New("boom")

func (errTarget) Lookup(rule.Header) (Verdict, error) { return Verdict{}, errBoom }
func (errTarget) Insert(rule.Rule) error              { return errBoom }
func (errTarget) Delete(int) error                    { return errBoom }

// TestReplayErrorsCounted verifies failures are tallied per op and
// sampled, not dropped and not fatal.
func TestReplayErrorsCounted(t *testing.T) {
	s := testSchedule(t, ModelUniform, 400, 0.2, 0)
	base := linearTarget(t)
	target := errTarget{base}
	rep, err := Replay(s, ReplayConfig{
		Lookups: []Target{target}, Sequential: true, SkipInstall: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := s.Counts()
	if rep.Ops[OpLookup].Errors != counts[OpLookup] {
		t.Fatalf("lookup errors %d, want %d", rep.Ops[OpLookup].Errors, counts[OpLookup])
	}
	if rep.Ops[OpInsert].Errors != counts[OpInsert] {
		t.Fatalf("insert errors %d, want %d", rep.Ops[OpInsert].Errors, counts[OpInsert])
	}
	if rep.FirstError == nil || !errors.Is(rep.FirstError, errBoom) {
		t.Fatalf("FirstError = %v", rep.FirstError)
	}
	if rep.TotalErrors() != len(s.Events) {
		t.Fatalf("total errors %d, want %d", rep.TotalErrors(), len(s.Events))
	}
}

func TestReplayConfigValidation(t *testing.T) {
	s := testSchedule(t, ModelUniform, 10, 0, 0)
	if _, err := Replay(s, ReplayConfig{}); err == nil {
		t.Error("no targets: expected error")
	}
	if _, err := Replay(s, ReplayConfig{Lookups: []Target{nil}}); err == nil {
		t.Error("nil target: expected error")
	}
	if _, err := Replay(s, ReplayConfig{
		Lookups: []Target{linearTarget(t)}, CollectVerdicts: true,
	}); err == nil {
		t.Error("CollectVerdicts without Sequential: expected error")
	}
}

// TestEngineTargetAgainstOracle cross-checks EngineTarget verdicts with
// the ruleset oracle on a mixed schedule.
func TestEngineTargetAgainstOracle(t *testing.T) {
	rs := testRuleset(t, 60)
	s, err := Generate(rs, Config{
		Model: ModelZipf, Events: 800, Duration: 20 * time.Millisecond, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(s, ReplayConfig{
		Lookups: []Target{linearTarget(t)}, Sequential: true, CollectVerdicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vi := 0
	for i := range s.Events {
		if s.Events[i].Op != OpLookup {
			continue
		}
		want, ok := rs.Match(s.Events[i].Header)
		got := rep.Verdicts[vi]
		vi++
		if got.Found != ok || (ok && got.RuleID != want.ID) {
			t.Fatalf("lookup %d: verdict %+v, oracle (%d, %v)", i, got, want.ID, ok)
		}
	}
}

// TestEngineTargetBatchMatchesSingle pins the BatchTarget adapter: the
// batched verdicts must equal the one-at-a-time verdicts.
func TestEngineTargetBatchMatchesSingle(t *testing.T) {
	rs := testRuleset(t, 50)
	eng, err := repro.New(repro.WithBackend(repro.BackendLinear), repro.WithRules(rs))
	if err != nil {
		t.Fatal(err)
	}
	target := EngineTarget{Eng: eng}
	trace, err := ruleset.GenerateTrace(rs, ruleset.TraceConfig{Size: 100, HitRatio: 0.8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := target.LookupBatch(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range trace {
		single, err := target.Lookup(h)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Fatalf("header %d: batch %+v, single %+v", i, batch[i], single)
		}
	}
}

// slowTarget delays every single lookup so the pacer falls behind and
// the worker is forced onto the batch path.
type slowTarget struct {
	EngineTarget
	batched atomic.Int64
}

func (s *slowTarget) Lookup(h rule.Header) (Verdict, error) {
	time.Sleep(200 * time.Microsecond)
	return s.EngineTarget.Lookup(h)
}

func (s *slowTarget) LookupBatch(hs []rule.Header) ([]Verdict, error) {
	s.batched.Add(int64(len(hs)))
	return s.EngineTarget.LookupBatch(hs)
}

// TestReplayBatchesBacklog verifies a worker that falls behind drains
// the overdue run through the BatchTarget path.
func TestReplayBatchesBacklog(t *testing.T) {
	rs := testRuleset(t, 40)
	// 2000 lookups over 50ms = one every 25µs, but each single lookup
	// takes 200µs: the worker must batch to keep up.
	s, err := Generate(rs, Config{
		Model: ModelZipf, Events: 2000, Duration: 50 * time.Millisecond, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := &slowTarget{EngineTarget: linearTarget(t)}
	rep, err := Replay(s, ReplayConfig{Lookups: []Target{target}, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("errors: %d (%v)", rep.TotalErrors(), rep.FirstError)
	}
	if got := rep.Ops[OpLookup].Count; got != 2000 {
		t.Fatalf("lookups %d, want 2000", got)
	}
	if target.batched.Load() == 0 {
		t.Fatal("overloaded worker never used the batch path")
	}
}
