// Package httpapi is the daemon's machine-oriented control plane: a
// stdlib-only HTTP handler over the shared table registry serving a
// Prometheus text-format /metrics exposition and a typed JSON admin
// API. It is the "equivalently typed" counterpart of the ctl line
// protocol — both front ends resolve tables through the same
// tables.Registry and report from the same tables.TableStats record,
// so a scrape, a ctl STATS and a JSON stats fetch can never disagree
// about a table.
//
// Routes:
//
//	GET    /metrics                  Prometheus text exposition
//	GET    /v1/tables                list tables (JSON array of Table)
//	POST   /v1/tables                create a table from a CreateRequest
//	DELETE /v1/tables/{name}         drop a table
//	GET    /v1/tables/{name}/stats   full tables.TableStats record
//
// Errors are returned as {"error": "..."} with a conventional status
// code (400 bad request, 404 unknown table, 409 duplicate create).
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/tables"
)

// Table is the JSON listing row of one table — the identity and
// construction shape; stats live behind /v1/tables/{name}/stats.
type Table struct {
	Name    string `json:"name"`
	Family  string `json:"family"`
	Backend string `json:"backend"`
	Shards  int    `json:"shards"`
	Cache   int    `json:"cache,omitempty"`
	State   int    `json:"state,omitempty"`
	Rules   int    `json:"rules"`
}

// CreateRequest is the POST /v1/tables body. Family defaults to "v4";
// "v6" creates a split-64 IPv6 table, which takes no backend, shard,
// cache or state fields. Backend is a repro.ParseBackend spelling,
// defaulting to the paper's decomposition architecture; Shards defaults
// to 1. State > 0 wraps the engine in a flow-state (conntrack) table of
// that many slots.
type CreateRequest struct {
	Name    string `json:"name"`
	Family  string `json:"family,omitempty"`
	Backend string `json:"backend,omitempty"`
	Shards  int    `json:"shards,omitempty"`
	Cache   int    `json:"cache,omitempty"`
	State   int    `json:"state,omitempty"`
}

// errorReply is the JSON error envelope.
type errorReply struct {
	Error string `json:"error"`
}

// NewHandler builds the HTTP plane over a shared registry.
func NewHandler(reg *tables.Registry) http.Handler {
	h := &handler{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /v1/tables", h.listTables)
	mux.HandleFunc("POST /v1/tables", h.createTable)
	mux.HandleFunc("DELETE /v1/tables/{name}", h.dropTable)
	mux.HandleFunc("GET /v1/tables/{name}/stats", h.tableStats)
	return mux
}

type handler struct {
	reg *tables.Registry
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

// summary renders one registry table as its listing row.
func summary(t *tables.Table) Table {
	spec := t.Spec()
	return Table{
		Name:    t.Name(),
		Family:  spec.Family.String(),
		Backend: spec.BackendLabel(),
		Shards:  spec.Shards,
		Cache:   spec.Cache,
		State:   spec.State,
		Rules:   t.Rules(),
	}
}

// listTables serves GET /v1/tables.
func (h *handler) listTables(w http.ResponseWriter, r *http.Request) {
	list := h.reg.List()
	out := make([]Table, len(list))
	for i, t := range list {
		out[i] = summary(t)
	}
	writeJSON(w, http.StatusOK, out)
}

// createTable serves POST /v1/tables.
func (h *handler) createTable(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	spec := tables.Spec{Name: req.Name, Shards: req.Shards, Cache: req.Cache, State: req.State}
	switch strings.ToLower(req.Family) {
	case "", "v4":
		if req.Backend != "" {
			backend, err := repro.ParseBackend(req.Backend)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			spec.Backend = backend
		}
	case tables.LabelV6:
		spec.Family = tables.V6
		if req.Backend != "" {
			writeError(w, http.StatusBadRequest, "IPv6 tables take no backend field")
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "family %q, want v4 or v6", req.Family)
		return
	}
	t, err := h.reg.Create(spec)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "exists") {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, summary(t))
}

// dropTable serves DELETE /v1/tables/{name}.
func (h *handler) dropTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.reg.Drop(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// tableStats serves GET /v1/tables/{name}/stats.
func (h *handler) tableStats(w http.ResponseWriter, r *http.Request) {
	t, err := h.reg.Resolve(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

// metric is one Prometheus family: name, type, help and a renderer
// emitting the family's series for one table's stats.
type metric struct {
	name string
	typ  string // "counter", "gauge" or "summary"
	help string
	emit func(b *strings.Builder, st *tables.TableStats)
}

// series writes one sample line with the table label plus extras
// ("shard", "0"-style pairs appended verbatim).
func series(b *strings.Builder, name, table string, extra ...string) {
	b.WriteString(name)
	b.WriteString(`{table="`)
	b.WriteString(table)
	b.WriteByte('"')
	for i := 0; i+1 < len(extra); i += 2 {
		b.WriteByte(',')
		b.WriteString(extra[i])
		b.WriteString(`="`)
		b.WriteString(extra[i+1])
		b.WriteByte('"')
	}
	b.WriteString("} ")
}

// uintSeries writes one labeled integer sample.
func uintSeries(b *strings.Builder, name, table string, v uint64, extra ...string) {
	series(b, name, table, extra...)
	b.WriteString(strconv.FormatUint(v, 10))
	b.WriteByte('\n')
}

// secondsSeries writes one labeled sample converted from nanoseconds
// to seconds (the Prometheus base unit for time).
func secondsSeries(b *strings.Builder, name, table string, ns uint64, extra ...string) {
	series(b, name, table, extra...)
	b.WriteString(strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64))
	b.WriteByte('\n')
}

// latencySummary emits one summary family (quantiles + _sum + _count)
// for a table.
func latencySummary(b *strings.Builder, name, table string, ls *tables.LatencySummary) {
	secondsSeries(b, name, table, ls.P50Ns, "quantile", "0.5")
	secondsSeries(b, name, table, ls.P99Ns, "quantile", "0.99")
	secondsSeries(b, name, table, ls.P999Ns, "quantile", "0.999")
	secondsSeries(b, name+"_sum", table, ls.SumNs)
	uintSeries(b, name+"_count", table, ls.Count)
}

// families is the fixed exposition schema: every family is emitted for
// every table (cache families only for cached tables), grouped by
// family with tables in registry (name) order, so the output is
// deterministic for a fixed registry state.
var families = []metric{
	{"repro_table_rules", "gauge", "Installed rules per table.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_rules", st.Name, uint64(st.Rules))
		}},
	{"repro_table_shards", "gauge", "Engine replica count per table.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_shards", st.Name, uint64(st.Shards))
		}},
	{"repro_table_shard_rules", "gauge", "Per-replica rule population of sharded tables (shard balance).",
		func(b *strings.Builder, st *tables.TableStats) {
			for i, n := range st.ShardRules {
				uintSeries(b, "repro_table_shard_rules", st.Name, uint64(n), "shard", strconv.Itoa(i))
			}
		}},
	{"repro_table_memory_bytes", "gauge", "Modeled hardware RAM occupied by the table's engine.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_memory_bytes", st.Name, uint64(st.MemoryBytes))
		}},
	{"repro_table_probes_total", "counter", "Rule Filter probes issued by the decomposition pipeline.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_probes_total", st.Name, uint64(st.Probes))
		}},
	{"repro_table_hardware_overflows_total", "counter", "Lookups whose per-field label lists overflowed the modeled hardware bound.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_hardware_overflows_total", st.Name, uint64(st.HardwareOverflows))
		}},
	{"repro_table_lookups_total", "counter", "Headers classified through the serving layer.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_lookups_total", st.Name, st.Ops.Lookups)
		}},
	{"repro_table_updates_total", "counter", "Incremental rule updates applied (inserts, deletes, bulk lines).",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_updates_total", st.Name, st.Ops.Updates)
		}},
	{"repro_table_swaps_total", "counter", "Atomic whole-ruleset replacements (swap, restore, reset).",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_swaps_total", st.Name, st.Ops.Swaps)
		}},
	{"repro_table_errors_total", "counter", "Commands that failed after resolving the table.",
		func(b *strings.Builder, st *tables.TableStats) {
			uintSeries(b, "repro_table_errors_total", st.Name, st.Ops.Errors)
		}},
	{"repro_table_cache_entries", "gauge", "Flow-cache slot capacity of cached tables.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.Cache != nil {
				uintSeries(b, "repro_table_cache_entries", st.Name, uint64(st.Cache.Entries))
			}
		}},
	{"repro_table_cache_hits_total", "counter", "Flow-cache hits of cached tables.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.Cache != nil {
				uintSeries(b, "repro_table_cache_hits_total", st.Name, st.Cache.Hits)
			}
		}},
	{"repro_table_cache_misses_total", "counter", "Flow-cache misses of cached tables.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.Cache != nil {
				uintSeries(b, "repro_table_cache_misses_total", st.Name, st.Cache.Misses)
			}
		}},
	{"repro_table_cache_evictions_total", "counter", "Flow-cache evictions of cached tables.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.Cache != nil {
				uintSeries(b, "repro_table_cache_evictions_total", st.Name, st.Cache.Evictions)
			}
		}},
	{"repro_table_state_entries", "gauge", "Flow-state slot capacity of stateful tables.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.State != nil {
				uintSeries(b, "repro_table_state_entries", st.Name, uint64(st.State.Entries))
			}
		}},
	{"repro_table_state_installs_total", "counter", "Flow entries installed by allow-established verdicts.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.State != nil {
				uintSeries(b, "repro_table_state_installs_total", st.Name, st.State.Installs)
			}
		}},
	{"repro_table_state_hits_total", "counter", "Lookups answered by an established flow entry.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.State != nil {
				uintSeries(b, "repro_table_state_hits_total", st.Name, st.State.Hits)
			}
		}},
	{"repro_table_state_expiries_total", "counter", "Flow entries lapsed by TTL on probe.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.State != nil {
				uintSeries(b, "repro_table_state_expiries_total", st.Name, st.State.Expiries)
			}
		}},
	{"repro_table_state_evictions_total", "counter", "Live flow entries displaced by slot collisions.",
		func(b *strings.Builder, st *tables.TableStats) {
			if st.State != nil {
				uintSeries(b, "repro_table_state_evictions_total", st.Name, st.State.Evictions)
			}
		}},
	{"repro_table_lookup_latency_seconds", "summary", "Serving-layer classification latency.",
		func(b *strings.Builder, st *tables.TableStats) {
			latencySummary(b, "repro_table_lookup_latency_seconds", st.Name, &st.LookupLatency)
		}},
	{"repro_table_update_latency_seconds", "summary", "Serving-layer update latency, including the RCU publish.",
		func(b *strings.Builder, st *tables.TableStats) {
			latencySummary(b, "repro_table_update_latency_seconds", st.Name, &st.UpdateLatency)
		}},
}

// metrics serves GET /metrics: the Prometheus text exposition of every
// table's stats. Each table's record is read once (one consistent set
// of atomic loads per table), then rendered family by family.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	list := h.reg.List()
	stats := make([]tables.TableStats, len(list))
	for i, t := range list {
		stats[i] = t.Stats()
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	var b strings.Builder
	for _, fam := range families {
		mark := b.Len()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		header := b.Len()
		for i := range stats {
			fam.emit(&b, &stats[i])
		}
		if b.Len() == header {
			// No table emitted a series (e.g. cache families with no
			// cached tables); drop the dangling HELP/TYPE header.
			s := b.String()[:mark]
			b.Reset()
			b.WriteString(s)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
