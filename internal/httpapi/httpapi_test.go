package httpapi

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rule"
	"repro/internal/tables"
)

var update = flag.Bool("update", false, "rewrite golden files")

func newTestServer(t *testing.T) (*tables.Registry, *httptest.Server) {
	t.Helper()
	reg := tables.NewRegistry()
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return reg, srv
}

func doJSON(t *testing.T, method, url string, body string, out any) *http.Response {
	t.Helper()
	var req *http.Request
	var err error
	if body != "" {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp
}

// TestAdminRoundTrip drives the full table lifecycle through the JSON
// API: create (v4 sharded+cached and v6), list, stats, drop, plus the
// error statuses.
func TestAdminRoundTrip(t *testing.T) {
	_, srv := newTestServer(t)

	var created Table
	resp := doJSON(t, "POST", srv.URL+"/v1/tables",
		`{"name":"edge","backend":"decomposition","shards":2,"cache":64}`, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create edge: status %d", resp.StatusCode)
	}
	if created.Name != "edge" || created.Backend != "decomposition" || created.Shards != 2 || created.Cache != 64 {
		t.Fatalf("create reply %+v", created)
	}

	var created6 Table
	resp = doJSON(t, "POST", srv.URL+"/v1/tables", `{"name":"six","family":"v6"}`, &created6)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create six: status %d", resp.StatusCode)
	}
	if created6.Family != "v6" || created6.Backend != "v6" {
		t.Fatalf("v6 create reply %+v", created6)
	}

	var list []Table
	resp = doJSON(t, "GET", srv.URL+"/v1/tables", "", &list)
	if resp.StatusCode != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: status %d, %d tables", resp.StatusCode, len(list))
	}
	if list[0].Name != "edge" || list[1].Name != "six" {
		t.Fatalf("list order %+v", list)
	}

	var st tables.TableStats
	resp = doJSON(t, "GET", srv.URL+"/v1/tables/edge/stats", "", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if st.Name != "edge" || st.Shards != 2 || st.Cache == nil || st.Cache.Entries != 64 {
		t.Fatalf("stats record %+v", st)
	}
	if len(st.ShardRules) != 2 {
		t.Fatalf("shard balance %v, want 2 entries", st.ShardRules)
	}
	if st.MemoryBytes <= 0 {
		t.Fatalf("memory bytes %d, want > 0", st.MemoryBytes)
	}

	// A stateful create carries its flow-state capacity through the
	// listing row and grows a state section in the stats record.
	var createdCT Table
	resp = doJSON(t, "POST", srv.URL+"/v1/tables",
		`{"name":"ct","backend":"tss","state":4096}`, &createdCT)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create ct: status %d", resp.StatusCode)
	}
	if createdCT.State != 4096 || createdCT.Cache != 0 {
		t.Fatalf("stateful create reply %+v", createdCT)
	}
	var ctStats tables.TableStats
	resp = doJSON(t, "GET", srv.URL+"/v1/tables/ct/stats", "", &ctStats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ct stats: status %d", resp.StatusCode)
	}
	if ctStats.State == nil || ctStats.State.Entries != 4096 {
		t.Fatalf("ct stats record %+v", ctStats.State)
	}
	if ctStats.Cache != nil {
		t.Fatalf("stateless-cache table grew a cache section: %+v", ctStats.Cache)
	}
	if resp = doJSON(t, "DELETE", srv.URL+"/v1/tables/ct", "", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop ct: status %d, want 204", resp.StatusCode)
	}
	// IPv6 tables are stateless by construction.
	if resp = doJSON(t, "POST", srv.URL+"/v1/tables", `{"name":"z","family":"v6","state":64}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v6 with state: status %d, want 400", resp.StatusCode)
	}

	// Error statuses: duplicate create, unknown stats/drop, bad bodies.
	if resp = doJSON(t, "POST", srv.URL+"/v1/tables", `{"name":"edge"}`, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", resp.StatusCode)
	}
	if resp = doJSON(t, "GET", srv.URL+"/v1/tables/ghost/stats", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stats: status %d, want 404", resp.StatusCode)
	}
	if resp = doJSON(t, "DELETE", srv.URL+"/v1/tables/ghost", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown drop: status %d, want 404", resp.StatusCode)
	}
	if resp = doJSON(t, "POST", srv.URL+"/v1/tables", `{"name":"x","family":"v5"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad family: status %d, want 400", resp.StatusCode)
	}
	if resp = doJSON(t, "POST", srv.URL+"/v1/tables", `{"name":"x","nope":1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	if resp = doJSON(t, "POST", srv.URL+"/v1/tables", `{"name":"y","family":"v6","backend":"linear"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v6 with backend: status %d, want 400", resp.StatusCode)
	}

	if resp = doJSON(t, "DELETE", srv.URL+"/v1/tables/edge", "", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop: status %d, want 204", resp.StatusCode)
	}
	resp = doJSON(t, "GET", srv.URL+"/v1/tables", "", &list)
	if resp.StatusCode != http.StatusOK || len(list) != 1 || list[0].Name != "six" {
		t.Fatalf("list after drop: %+v", list)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// TestMetricsGolden locks the exposition format: a deterministic
// registry state (fixed counters, fixed latency samples) must render
// byte-for-byte as testdata/metrics.golden. Regenerate with -update
// after intentional format changes.
func TestMetricsGolden(t *testing.T) {
	reg, srv := newTestServer(t)
	edge, err := reg.Create(tables.Spec{Name: "edge", Shards: 2, Cache: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(tables.Spec{Name: "six", Family: tables.V6}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(tables.Spec{Name: "ct", State: 64}); err != nil {
		t.Fatal(err)
	}
	m := edge.Metrics()
	m.Lookups.Add(1000)
	m.Updates.Add(40)
	m.Swaps.Add(3)
	m.Errors.Add(2)
	for i := 0; i < 10; i++ {
		m.LookupLatency.Record(100 * time.Microsecond)
		m.UpdateLatency.Record(2 * time.Millisecond)
	}

	got := scrape(t, srv.URL)
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("/metrics drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// metricValue extracts one series value from an exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(line[len(series)+1:], 64)
			if err != nil {
				t.Fatalf("parse series %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition", series)
	return 0
}

// TestScrapeDuringSwap scrapes /metrics while a writer hammers the
// table with atomic whole-ruleset swaps and a reader records lookups:
// every counter must advance monotonically across scrapes, and the
// rules gauge must always read a complete generation — len(A) or
// len(B), never a mix.
func TestScrapeDuringSwap(t *testing.T) {
	reg, srv := newTestServer(t)
	tab, err := reg.Create(tables.Spec{Name: "main"})
	if err != nil {
		t.Fatal(err)
	}
	mkRules := func(n, base int) []rule.Rule {
		out := make([]rule.Rule, n)
		for i := range out {
			out[i] = rule.Rule{
				ID:       base + i,
				Priority: i + 1,
				SrcIP:    rule.Prefix{Addr: uint32(i) << 8, Len: 24},
				SrcPort:  rule.FullPortRange(),
				DstPort:  rule.FullPortRange(),
				Proto:    rule.AnyProto(),
				Action:   rule.ActionPermit,
			}
		}
		return out
	}
	genA, genB := mkRules(8, 1000), mkRules(17, 2000)

	stop := make(chan struct{})
	var writerErr atomic.Value
	go func() {
		m := tab.Metrics()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rules := genA
			if i%2 == 1 {
				rules = genB
			}
			start := time.Now()
			if _, err := tab.Eng().Replace(rules); err != nil {
				writerErr.Store(err)
				return
			}
			m.Swaps.Inc()
			m.UpdateLatency.Record(time.Since(start))
		}
	}()
	go func() {
		m := tab.Metrics()
		h := rule.Header{SrcIP: 1 << 8, DstPort: 80, Proto: 6}
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			tab.Eng().Lookup(h)
			m.Lookups.Inc()
			m.LookupLatency.Record(time.Since(start))
		}
	}()

	var prevSwaps, prevLookups, prevLatCount float64
	for i := 0; i < 25; i++ {
		body := scrape(t, srv.URL)
		rules := metricValue(t, body, `repro_table_rules{table="main"}`)
		if rules != 0 && rules != float64(len(genA)) && rules != float64(len(genB)) {
			t.Fatalf("scrape %d: rules gauge %v mixes generations (want 0, %d or %d)", i, rules, len(genA), len(genB))
		}
		swaps := metricValue(t, body, `repro_table_swaps_total{table="main"}`)
		lookups := metricValue(t, body, `repro_table_lookups_total{table="main"}`)
		latCount := metricValue(t, body, `repro_table_lookup_latency_seconds_count{table="main"}`)
		if swaps < prevSwaps || lookups < prevLookups || latCount < prevLatCount {
			t.Fatalf("scrape %d: counter went backwards (swaps %v->%v, lookups %v->%v, lat %v->%v)",
				i, prevSwaps, swaps, prevLookups, lookups, prevLatCount, latCount)
		}
		prevSwaps, prevLookups, prevLatCount = swaps, lookups, latCount
	}
	close(stop)
	if err := writerErr.Load(); err != nil {
		t.Fatalf("swap writer: %v", err)
	}
	if prevSwaps == 0 || prevLookups == 0 {
		t.Fatalf("no traffic observed (swaps %v, lookups %v)", prevSwaps, prevLookups)
	}
}
