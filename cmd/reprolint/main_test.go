package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d; stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"rcusafe", "atomicfield", "noalloc", "ctlerr"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should name the bad analyzer, got: %s", stderr.String())
	}
}

// TestCleanPackagePasses drives the full load-and-analyze pipeline over
// one real package; internal/rcu is small and must always be clean.
func TestCleanPackagePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-C", moduleRoot(t), "./internal/rcu"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run(./internal/rcu) = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
