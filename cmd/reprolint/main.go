// Command reprolint is the multichecker for the repro static-analysis
// suite (internal/lint): it loads the requested packages from source,
// runs every analyzer, and prints diagnostics in the familiar
// file:line:col format. It exits non-zero when any diagnostic (or type
// error) is found, so CI can gate on it exactly like go vet.
//
// Usage:
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -only rcusafe,noalloc ./internal/core
//	go run ./cmd/reprolint -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "module directory to analyze in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reprolint [-only a,b] [-C dir] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: %v\n", err)
		return 2
	}

	exit := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "reprolint: %s: %v\n", pkg.PkgPath, e)
			}
			exit = 1
			continue
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "reprolint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
			exit = 1
		}
	}
	return exit
}

// selectAnalyzers resolves the -only filter against the suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
