package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rule"
	"repro/internal/ruleset"
)

func TestParseFamily(t *testing.T) {
	for s, want := range map[string]ruleset.Family{
		"acl": ruleset.ACL, "ACL": ruleset.ACL,
		"fw": ruleset.FW, "ipc": ruleset.IPC,
	} {
		got, err := ruleset.ParseFamily(s)
		if err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ruleset.ParseFamily("bogus"); err == nil {
		t.Error("bogus family should fail")
	}
}

func TestWriteRulesAndTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rulesPath := filepath.Join(dir, "rules.txt")
	if err := writeRules(rulesPath, set); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := rule.ParseSet(f)
	if err != nil {
		t.Fatalf("generated ruleset does not re-parse: %v", err)
	}
	if parsed.Len() != set.Len() {
		t.Fatalf("round trip lost rules: %d != %d", parsed.Len(), set.Len())
	}

	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: 20, HitRatio: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.phs")
	if err := writeTrace(tracePath, trace); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 20 {
		t.Fatalf("trace lines = %d, want 20", len(lines))
	}
	for _, line := range lines {
		if len(strings.Fields(line)) != 5 {
			t.Fatalf("bad trace line %q", line)
		}
	}
}
