// Command rulegen generates ClassBench-style rulesets and packet header
// set (PHS) traces, the workloads of the paper's evaluation.
//
// Usage:
//
//	rulegen -family acl -size 10000 -o acl10k.txt
//	rulegen -family fw -size 5000 -trace 100000 -trace-out fw5k.phs
//
// Rulesets are written in ClassBench filter format (one '@'-prefixed rule
// per line); traces are written as one 5-tuple per line:
// "srcIP dstIP srcPort dstPort proto".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/rule"
	"repro/internal/ruleset"
)

func main() {
	var (
		family   = flag.String("family", "acl", "ruleset family: acl, fw or ipc")
		size     = flag.Int("size", 1000, "number of rules")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("o", "-", "ruleset output file (- for stdout)")
		traceN   = flag.Int("trace", 0, "also generate a PHS trace with this many headers")
		traceOut = flag.String("trace-out", "", "trace output file (defaults to stdout after the ruleset)")
		hitRatio = flag.Float64("hit", 0.9, "trace hit ratio")
		withDef  = flag.Bool("default", false, "append a catch-all deny rule")
	)
	flag.Parse()

	fam, err := ruleset.ParseFamily(*family)
	if err != nil {
		fatal(err)
	}
	set, err := ruleset.Generate(ruleset.Config{Family: fam, Size: *size, Seed: *seed, AppendDefault: *withDef})
	if err != nil {
		fatal(err)
	}
	if err := writeRules(*out, set); err != nil {
		fatal(err)
	}
	if *traceN > 0 {
		trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: *traceN, HitRatio: *hitRatio, Seed: *seed + 1})
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(*traceOut, trace); err != nil {
			fatal(err)
		}
	}
}

func writeRules(path string, set *rule.Set) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()
	return rule.WriteSet(w, set)
}

func writeTrace(path string, trace []rule.Header) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeFn()
	bw := bufio.NewWriter(w)
	for _, h := range trace {
		if _, err := fmt.Fprintf(bw, "%d.%d.%d.%d %d.%d.%d.%d %d %d %d\n",
			byte(h.SrcIP>>24), byte(h.SrcIP>>16), byte(h.SrcIP>>8), byte(h.SrcIP),
			byte(h.DstIP>>24), byte(h.DstIP>>16), byte(h.DstIP>>8), byte(h.DstIP),
			h.SrcPort, h.DstPort, h.Proto); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func openOut(path string) (*os.File, func(), error) {
	if path == "" || path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rulegen:", err)
	os.Exit(1)
}
