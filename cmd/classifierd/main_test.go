package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

func TestParseTables(t *testing.T) {
	specs, err := parseTables(" edge=linear , core=decomposition:8, cache=tss:2:4096, ct=tss:1:0:8192 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []tableSpec{
		{name: "edge", backend: repro.BackendLinear, shards: 1},
		{name: "core", backend: repro.BackendDecomposition, shards: 8},
		{name: "cache", backend: repro.BackendTSS, shards: 2, cache: 4096},
		{name: "ct", backend: repro.BackendTSS, shards: 1, cache: 0, state: 8192},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %+v", specs)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	if specs, err := parseTables("  "); err != nil || specs != nil {
		t.Errorf("empty spec = %+v, %v", specs, err)
	}
	for _, bad := range []string{
		"noequals", "=linear", "x=", "x=frob", "x=linear:0", "x=linear:abc", "x=linear,,y=tss",
		"x=linear:2:-1", "x=linear:2:abc",
		"x=linear:2:0:-1", "x=linear:2:0:abc",
	} {
		if _, err := parseTables(bad); err == nil {
			t.Errorf("parseTables(%q) should fail", bad)
		}
	}
}

func TestLPMConfig(t *testing.T) {
	for _, algo := range []string{"mbt", "BST", "amtrie"} {
		if _, err := lpmConfig(algo); err != nil {
			t.Errorf("lpmConfig(%q): %v", algo, err)
		}
	}
	if _, err := lpmConfig("quadtree"); err == nil {
		t.Error("unknown LPM engine should fail")
	}
}

func TestBuildServerErrors(t *testing.T) {
	for _, c := range []struct {
		backend, tables, lpm, rules string
		shards                      int
	}{
		{"frob", "", "mbt", "", 1},
		{"decomposition", "", "mbt", "", 0},
		{"decomposition", "x=frob", "mbt", "", 1},
		{"decomposition", "main=linear", "mbt", "", 1}, // collides with default table
		{"decomposition", "", "quadtree", "", 1},
		{"decomposition", "", "mbt", "/nonexistent/rules.txt", 1},
	} {
		if _, err := buildServer(c.backend, c.shards, 0, 0, c.tables, c.lpm, c.rules, ""); err == nil {
			t.Errorf("buildServer(%+v) should fail", c)
		}
	}
}

// TestDaemonEndToEnd boots the full daemon assembly — a sharded
// decomposition main table pre-loaded from a ClassBench file, plus two
// extra tables with different backends — and drives it over real TCP:
// bulk-load, batched lookups differential-checked against the linear
// oracle, per-table isolation, and graceful shutdown.
func TestDaemonEndToEnd(t *testing.T) {
	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 100, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	rulesPath := filepath.Join(t.TempDir(), "rules.txt")
	f, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rule.WriteSet(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv, err := buildServer("decomposition", 4, 1024, 0, "edge=linear:2,fast=tss", "mbt", rulesPath, "")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	client, err := ctl.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	// The daemon serves three tables, main sharded 4 ways and
	// pre-loaded from the ClassBench file.
	infos, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ctl.TableInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if len(byName) != 3 {
		t.Fatalf("tables = %+v", infos)
	}
	if m := byName["main"]; m.Backend != "decomposition" || m.Shards != 4 || m.Rules != set.Len() {
		t.Errorf("main = %+v", m)
	}
	if e := byName["edge"]; e.Backend != "linear" || e.Shards != 2 || e.Rules != 0 {
		t.Errorf("edge = %+v", e)
	}
	if f := byName["fast"]; f.Backend != "tss" || f.Shards != 1 {
		t.Errorf("fast = %+v", f)
	}

	// Batched lookups on the sharded main table agree with the oracle.
	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: 128, HitRatio: 0.8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.MLookup(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range trace {
		want, ok := set.Match(h)
		if got[i].Found != ok || (ok && got[i].RuleID != want.ID) {
			t.Fatalf("header %d: remote (%d,%v) vs oracle (%d,%v)",
				i, got[i].RuleID, got[i].Found, want.ID, ok)
		}
	}

	// A second connection bulk-loads a different ruleset into "edge";
	// main is unaffected.
	edgeSet, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: 60, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ctl.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.TableUse("edge"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.BulkInsert(edgeSet.Rules()); err != nil {
		t.Fatalf("BulkInsert: %v", err)
	}
	edgeGot, err := c2.MLookup(trace[:32])
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range trace[:32] {
		want, ok := edgeSet.Match(h)
		if edgeGot[i].Found != ok || (ok && edgeGot[i].RuleID != want.ID) {
			t.Fatalf("edge header %d: remote (%d,%v) vs oracle (%d,%v)",
				i, edgeGot[i].RuleID, edgeGot[i].Found, want.ID, ok)
		}
	}
	mainAgain, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range mainAgain {
		if info.Name == "main" && info.Rules != set.Len() {
			t.Errorf("main grew to %d rules after edge bulk", info.Rules)
		}
	}

	client.Close()
	c2.Close()
	srv.Shutdown()
	if err := <-done; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

// TestDaemonSnapshotRestart is the persistence contract: a daemon built
// with -snapshot-dir saves every table on drain and a fresh daemon with
// the same directory comes back serving identical tables — including a
// table that only ever existed via TABLE CREATE, which must be
// recreated from its snapshot's recorded backend/shards/cache.
func TestDaemonSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 80, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	dynSet, err := ruleset.Generate(ruleset.Config{Family: ruleset.FW, Size: 40, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}

	boot := func() (*ctl.Server, *ctl.Client, chan error) {
		srv, err := buildServer("decomposition", 2, 0, 0, "edge=linear", "mbt", "", dir)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		client, err := ctl.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return srv, client, done
	}

	// First life: populate main, edge and a runtime-created table.
	srv, client, done := boot()
	if _, err := client.BulkInsert(set.Rules()); err != nil {
		t.Fatal(err)
	}
	if err := client.TableCreateCached("dyn", "tss", 1, 128); err != nil {
		t.Fatal(err)
	}
	if err := client.TableUse("dyn"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.BulkInsert(dynSet.Rules()); err != nil {
		t.Fatal(err)
	}
	// A user checkpoint shares the directory but must NOT become a
	// table on restart.
	if _, err := client.SnapshotSave("usercp"); err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Shutdown()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The daemon's drain hook (main runs this after Shutdown returns).
	if err := srv.SaveSnapshots(); err != nil {
		t.Fatalf("SaveSnapshots: %v", err)
	}

	// Second life: same flags, same dir — everything must be back.
	srv2, client2, done2 := boot()
	defer func() {
		client2.Close()
		srv2.Shutdown()
		<-done2
	}()
	infos, err := client2.Tables()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ctl.TableInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if m := byName["main"]; m.Rules != set.Len() || m.Shards != 2 {
		t.Fatalf("main after restart = %+v", m)
	}
	if d := byName["dyn"]; d.Backend != "tss" || d.Rules != dynSet.Len() {
		t.Fatalf("dyn after restart = %+v", d)
	}
	if e := byName["edge"]; e.Rules != 0 {
		t.Fatalf("edge after restart = %+v", e)
	}
	if _, resurrected := byName["usercp"]; resurrected {
		t.Fatal("user checkpoint came back as a table")
	}
	// But it is still restorable as a checkpoint.
	if err := client2.TableUse("dyn"); err != nil {
		t.Fatal(err)
	}
	if n, _, err := client2.Restore("usercp"); err != nil || n != dynSet.Len() {
		t.Fatalf("Restore(usercp) = %d, %v", n, err)
	}
	if err := client2.TableUse("main"); err != nil {
		t.Fatal(err)
	}

	// Byte-for-byte: the restored main table's snapshot equals the set
	// that was loaded, rule by rule.
	snap, err := client2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]rule.Rule{}
	for _, r := range set.Rules() {
		byID[r.ID] = r
	}
	if len(snap) != set.Len() {
		t.Fatalf("main snapshot has %d rules, want %d", len(snap), set.Len())
	}
	for _, r := range snap {
		if want, ok := byID[r.ID]; !ok || r != want {
			t.Fatalf("rule %d changed across restart:\n  got  %+v\n  want %+v", r.ID, r, byID[r.ID])
		}
	}
	// And the restored tables still answer like the oracle.
	trace, err := ruleset.GenerateTrace(set, ruleset.TraceConfig{Size: 64, HitRatio: 0.8, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client2.MLookup(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range trace {
		want, ok := set.Match(h)
		if got[i].Found != ok || (ok && got[i].RuleID != want.ID) {
			t.Fatalf("restored main header %d: remote (%d,%v) vs oracle (%d,%v)",
				i, got[i].RuleID, got[i].Found, want.ID, ok)
		}
	}
}
