// Command classifierd runs the lookup domain as a network daemon: the
// decision-control channel of the paper's system exposed over TCP. The
// daemon is multi-tenant and sharded: it serves named tables, each
// backed by its own engine (any repro backend, optionally partitioned
// across shard replicas), and speaks the batched ctl protocol
// (TABLE CREATE/USE/DROP/LIST, INSERT, pipelined BULK, LOOKUP, batched
// MLOOKUP, STATS, THROUGHPUT; see repro/internal/ctl for the grammar —
// try it with netcat). Rules can be pre-loaded from a ClassBench file
// into the default "main" table and then updated remotely.
//
// Usage:
//
//	classifierd -listen 127.0.0.1:9099 -rules acl10k.txt -lpm mbt
//	classifierd -backend tss -shards 4 -tables "edge=linear,core=decomposition:8"
//	classifierd -snapshot-dir /var/lib/classifierd
//	printf 'LOOKUP 10.0.0.1 8.8.8.8 999 80 6\n' | nc 127.0.0.1 9099
//
// With -snapshot-dir the daemon is persistent: every table is saved as
// a checksummed <table>.snap snapshot (see repro/internal/snapfile) when
// the daemon drains, and all snapshots in the directory are restored on
// the next start — tables that exist from flags get their saved ruleset
// swapped in atomically, other snapshots recreate their table from the
// file's recorded backend/shards/cache. Clients can also checkpoint at
// runtime with the ctl SNAPSHOT SAVE / RESTORE commands.
//
// With -http the daemon also serves an observability plane over HTTP:
// a Prometheus text exposition at /metrics (per-table operation rates,
// lookup/update latency quantiles, shard balance, modeled memory) and a
// typed JSON admin API under /v1/tables (list/create/drop tables, fetch
// per-table stats). Both surfaces read the same registry and counters
// the ctl protocol serves, so the planes cannot disagree:
//
//	classifierd -listen 127.0.0.1:9099 -http 127.0.0.1:9100
//	curl -s http://127.0.0.1:9100/metrics
//	curl -s http://127.0.0.1:9100/v1/tables/main/stats
//
// The process exits cleanly on SIGINT/SIGTERM: both listeners close,
// in-flight connections drain, and (with -snapshot-dir) every table is
// snapshotted before the daemon returns.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/httpapi"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9099", "TCP listen address")
		rulesPath = flag.String("rules", "", "optional ClassBench ruleset to pre-load into the main table")
		backendF  = flag.String("backend", "decomposition", "main table backend (see repro.ParseBackend)")
		shardsF   = flag.Int("shards", 1, "main table shard count (replicas of the backend)")
		cacheF    = flag.Int("flowcache", 0, "main table flow-cache slots (0 disables)")
		stateF    = flag.Int("fwstate", 0, "main table flow-state (conntrack) slots (0 disables)")
		tablesF   = flag.String("tables", "", `extra tables, "name=backend[:shards[:cache[:state]]],..."`)
		lpmAlgo   = flag.String("lpm", "mbt", "decomposition LPM engine: mbt, bst or amtrie")
		snapDir   = flag.String("snapshot-dir", "", "directory for table snapshots: restored on start, saved on drain (empty disables persistence)")
		httpAddr  = flag.String("http", "", "HTTP listen address for /metrics and the /v1 admin API (empty disables)")
	)
	flag.Parse()

	srv, err := buildServer(*backendF, *shardsF, *cacheF, *stateF, *tablesF, *lpmAlgo, *rulesPath, *snapDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "classifierd: %v\n", err)
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("classifierd: %v", err)
	}
	log.Printf("classifier daemon listening on %s", l.Addr())

	var hsrv *http.Server
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("classifierd: http: %v", err)
		}
		hsrv = &http.Server{Handler: httpapi.NewHandler(srv.Registry())}
		go func() {
			if err := hsrv.Serve(hl); err != nil && err != http.ErrServerClosed {
				log.Printf("classifierd: http: %v", err)
			}
		}()
		log.Printf("http plane (metrics + admin API) on %s", hl.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("classifierd: %v", err)
		}
	case s := <-sig:
		log.Printf("caught %v; draining connections", s)
		srv.Shutdown()
		<-done
	}
	if hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := hsrv.Shutdown(ctx); err != nil {
			log.Printf("classifierd: http shutdown: %v", err)
		}
		cancel()
	}
	if *snapDir != "" {
		if err := srv.SaveSnapshots(); err != nil {
			log.Fatalf("classifierd: snapshot save: %v", err)
		}
		log.Printf("tables snapshotted to %s", *snapDir)
	}
	log.Printf("shutdown complete")
}

// buildServer assembles the table registry from flag values: the main
// table from backend/shards/flowcache/fwstate/lpm (pre-loaded from
// rulesPath if given) plus the extra tables of the -tables spec. With a
// snapshot directory, saved tables are restored last, so a persisted
// ruleset overrides a -rules pre-load while flags keep authority over
// engine configuration.
func buildServer(backendSpec string, shards, flowCache, flowState int, tablesSpec, lpmAlgo, rulesPath, snapDir string) (*ctl.Server, error) {
	backend, err := repro.ParseBackend(backendSpec)
	if err != nil {
		return nil, err
	}
	cfg, err := lpmConfig(lpmAlgo)
	if err != nil {
		return nil, err
	}
	opts := []repro.Option{repro.WithBackend(backend), repro.WithConfig(cfg),
		repro.WithShards(shards), repro.WithFlowCache(flowCache),
		repro.WithFlowState(flowState, 0)}
	var loaded int
	if rulesPath != "" {
		f, err := os.Open(rulesPath)
		if err != nil {
			return nil, err
		}
		set, err := repro.ParseRules(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("parse rules: %w", err)
		}
		opts = append(opts, repro.WithRules(set))
		loaded = set.Len()
	}
	eng, err := repro.New(opts...)
	if err != nil {
		return nil, err
	}
	if loaded > 0 {
		log.Printf("loaded %d rules into table %q (%s, %d shard(s))",
			loaded, ctl.DefaultTable, backend, shards)
	}
	srv := ctl.NewServer(eng)
	extras, err := parseTables(tablesSpec)
	if err != nil {
		return nil, err
	}
	for _, spec := range extras {
		if err := srv.AddTable(spec.name, spec.backend, spec.shards, spec.cache, spec.state); err != nil {
			return nil, fmt.Errorf("table %q: %w", spec.name, err)
		}
	}
	if snapDir != "" {
		if err := os.MkdirAll(snapDir, 0o755); err != nil {
			return nil, fmt.Errorf("snapshot dir: %w", err)
		}
		srv.SnapshotDir = snapDir
		restored, warns, err := srv.LoadSnapshots()
		for _, w := range warns {
			log.Printf("snapshot warning: %s", w)
		}
		if err != nil {
			return nil, err
		}
		if restored > 0 {
			log.Printf("restored %d table(s) from %s", restored, snapDir)
		}
	}
	return srv, nil
}

// lpmConfig maps the -lpm flag to the decomposition configuration.
func lpmConfig(algo string) (repro.Config, error) {
	var cfg repro.Config
	switch strings.ToLower(algo) {
	case "mbt":
		cfg.LPM = repro.LPMMultiBitTrie
	case "bst":
		cfg.LPM = repro.LPMBinarySearchTree
	case "amtrie":
		cfg.LPM = repro.LPMAMTrie
	default:
		return cfg, fmt.Errorf("unknown LPM engine %q", algo)
	}
	return cfg, nil
}

// tableSpec is one parsed -tables entry.
type tableSpec struct {
	name    string
	backend repro.Backend
	shards  int
	cache   int
	state   int
}

// parseTables decodes the -tables flag: comma-separated
// "name=backend[:shards[:cache[:state]]]" entries.
func parseTables(spec string) ([]tableSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []tableSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("table spec %q, want name=backend[:shards[:cache[:state]]]", entry)
		}
		backendSpec, shardsSpec, hasShards := strings.Cut(rest, ":")
		backend, err := repro.ParseBackend(backendSpec)
		if err != nil {
			return nil, fmt.Errorf("table spec %q: %w", entry, err)
		}
		shards, cache, state := 1, 0, 0
		if hasShards {
			shardsSpec, cacheSpec, hasCache := strings.Cut(shardsSpec, ":")
			shards, err = strconv.Atoi(shardsSpec)
			if err != nil || shards < 1 {
				return nil, fmt.Errorf("table spec %q: shard count %q", entry, shardsSpec)
			}
			if hasCache {
				cacheSpec, stateSpec, hasState := strings.Cut(cacheSpec, ":")
				cache, err = strconv.Atoi(cacheSpec)
				if err != nil || cache < 0 {
					return nil, fmt.Errorf("table spec %q: cache size %q", entry, cacheSpec)
				}
				if hasState {
					state, err = strconv.Atoi(stateSpec)
					if err != nil || state < 0 {
						return nil, fmt.Errorf("table spec %q: state size %q", entry, stateSpec)
					}
				}
			}
		}
		out = append(out, tableSpec{name: name, backend: backend, shards: shards, cache: cache, state: state})
	}
	return out, nil
}
